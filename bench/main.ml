(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§8).  One sub-benchmark per artifact:

     fig7        verification time for four properties across the
                 152-network enterprise fleet (§8.1, Figure 7)
     violations  violation counts per property class (§8.1 text)
     fig8        verification time for the property suite across
                 folded-Clos data centers of increasing size (Figure 8)
     opts        optimization ablation (§8.3): naive bit-vector
                 encoding vs prefix hoisting vs hoisting+slicing
     batch       incremental verification session vs N fresh solvers
                 on the fig7 property suite; writes BENCH_batch.json
                 (--smoke: subsampled, exits 1 if the session path is
                 not faster or any verdict diverges)
     parallel    process-pool sharding of the fig7 suite (plus an
                 all-pairs fan-out) at -j1/-j2/-j4 and a strategy
                 portfolio on the hardest query; writes
                 BENCH_parallel.json.  Verdict agreement with the
                 sequential session is always gated; wall-clock
                 speedup is gated only when the machine actually has
                 the cores (single-core CI cannot speed up forks)
     solver      ablation of the four solver-throughput fronts
                 (polarity-aware CNF, level-0 preprocessing, theory
                 propagation, LBD clause management) plus the
                 restart-mode / rephasing strategy grid ({Luby,
                 Ema_lbd} x {rephase on, off}) on the enterprise and
                 fattree suites; writes BENCH_solver.json (--smoke:
                 verdict agreement always gated for both grids, all-on
                 speedup gated only when the baseline is slow enough
                 to measure)
     certify     certification overhead: the enterprise + fattree
                 suites answered plain and with --certify (UNSAT
                 proofs replayed through the independent checker, SAT
                 models evaluated and simulated); writes
                 BENCH_certify.json.  Verdict agreement, zero
                 uncertified verdicts, and both certificate kinds are
                 always gated; the 2x overhead budget is gated above a
                 noise floor
     scale       symmetry-reduction sweep over fat-trees of paper
                 scale (pods 2-18, i.e. 5-405 routers): the all-ToR
                 query set (two pinned destination ToRs) with the
                 quotient encoding vs one incremental session on the
                 full encoding; writes BENCH_scale.json and (--full)
                 checkpoints each completed point to
                 BENCH_scale.rows.jsonl, restored by --resume.
                 Verdict agreement (quotient vs full, Ema_lbd vs Luby
                 restarts, clause sharing vs off) is gated on every
                 completed point; once one full-mode point blows the
                 wall-clock budget the remaining full points are
                 skipped with an explicit label (the quotient points
                 always run to 405 routers).  The quotient ratio is a
                 gated speedup only where classes actually collapse
                 devices, and labelled overhead elsewhere; --smoke
                 additionally gates clause sharing firing on the full
                 encoding
     arena       memory behavior of the arena SAT core: steady-state
                 minor-heap allocation per propagation on a long
                 implication chain, hardest-query all-off/all-on
                 speedup, and compaction under reduction stress;
                 writes BENCH_arena.json (--smoke: gates verdict
                 agreement, the ~0 words/propagation ceiling, the
                 compaction path, and the 2x hardest-query floor)
     serve       the verification-as-a-service loop: a delta daemon
                 absorbing config churn via diff + core-disjoint
                 verdict replay vs a cold daemon re-verifying each
                 step from scratch; writes BENCH_serve.json.  Verdict
                 agreement is always gated; --smoke additionally gates
                 non-zero replay/cache-hit counters and a 2x speedup
                 floor for diffs touching <= 20% of the devices
     fault       <=k-failure invariance (k in {1,2,3}) on both
                 generators, answered twice: the hybrid engine (graph
                 min-cut fast path racing the two-copy SMT encoding)
                 vs the SMT encoding alone; writes BENCH_fault.json.
                 Cross-path verdict agreement is always gated;
                 --smoke additionally gates the graph path deciding
                 at least one query and a 2x hybrid speedup on the
                 graph-decided subset above a noise floor
     micro       Bechamel micro-benchmarks of the SMT substrate
     all         everything above

   Usage: dune exec bench/main.exe -- [fig7|fig8|opts|violations|batch|parallel|solver|certify|scale|arena|serve|fault|micro|all] [--full|--smoke] [--resume]

   By default the expensive sweeps are subsampled so the whole harness
   finishes in minutes; pass --full for the complete paper-scale runs
   (the largest fabrics take several minutes per query). *)

module MS = Minesweeper
module G = Generators
module A = Config.Ast

let full = ref false

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let outcome_str = function MS.Verify.Holds -> "verified" | MS.Verify.Violation _ -> "violated"

(* shims over the Query/Report API for the single-shot outcomes the
   benchmarks time *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))

let verify_net net opts make =
  let enc = MS.Encode.build net opts in
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.v "query" make))

let query_with_stats enc prop =
  let r = MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop) in
  (MS.Verify.Report.to_outcome r, r.MS.Verify.Report.stats)

(* ---------------- Figure 7: the enterprise fleet ---------------- *)

(* The four §8.1 checks, each returning (outcome, milliseconds). *)
let check_mgmt (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  time (fun () ->
      let enc = MS.Encode.build net MS.Options.default in
      verify_check enc
        (MS.Property.reachability enc ~sources:devices
           (MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target))))

let check_equiv (t : G.Enterprise.t) =
  match t.G.Enterprise.rack_role with
  | r1 :: r2 :: _ ->
    Some
      (time (fun () ->
           let enc = MS.Encode.build t.G.Enterprise.network MS.Options.default in
           verify_check enc (MS.Property.acl_equivalence enc r1 r2)))
  | _ -> None

let check_blackholes (t : G.Enterprise.t) =
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  time (fun () ->
      let enc = MS.Encode.build t.G.Enterprise.network MS.Options.default in
      verify_check enc (MS.Property.no_blackholes enc ~allowed ()))

(* Fault invariance over day-to-day (host-space) reachability, matching
   the paper's all-router-pairs check; management reachability is the
   separate hijack audit. *)
let check_fault_invariance (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target, prefix =
    match List.rev t.G.Enterprise.rack_role with
    | r :: _ -> (r, t.G.Enterprise.rack_subnet r)
    | [] ->
      let d = List.hd (List.rev devices) in
      (d, t.G.Enterprise.mgmt_prefix d)
  in
  time (fun () ->
      MS.Verify.Report.to_outcome
        (MS.Verify.fault_invariant net MS.Options.default ~k:1 ~sources:devices
           (MS.Property.Subnet (target, prefix))))

let summarize name times =
  match times with
  | [] -> ()
  | _ ->
    let n = List.length times in
    let total = List.fold_left ( +. ) 0.0 times in
    let sorted = List.sort compare times in
    Printf.printf
      "  %-28s n=%-4d min=%8.1f ms  median=%8.1f ms  max=%8.1f ms  mean=%8.1f ms\n%!" name n
      (List.nth sorted 0)
      (List.nth sorted (n / 2))
      (List.nth sorted (n - 1))
      (total /. float_of_int n)

let fleet_sample () =
  let fleet = G.Enterprise.fleet () in
  if !full then fleet else List.filteri (fun i _ -> i mod 4 = 0) fleet

let fig7 () =
  print_endline "== Figure 7: per-network verification time, enterprise fleet ==";
  print_endline "   (rows sorted by configuration size, as in the paper)";
  Printf.printf "   %-4s %-6s %12s %12s %12s\n%!" "rtrs" "lines" "mgmt-reach" "local-equiv"
    "blackholes";
  let nets = fleet_sample () in
  let m_times = ref [] and e_times = ref [] and b_times = ref [] and f_times = ref [] in
  List.iter
    (fun (t : G.Enterprise.t) ->
      let lines = Config.Printer.network_config_lines t.G.Enterprise.network in
      let routers = List.length t.G.Enterprise.network.A.net_devices in
      let _, mt = check_mgmt t in
      m_times := mt :: !m_times;
      let et =
        match check_equiv t with
        | Some (_, et) ->
          e_times := et :: !e_times;
          Printf.sprintf "%10.1f" et
        | None -> "         -"
      in
      let _, bt = check_blackholes t in
      b_times := bt :: !b_times;
      Printf.printf "   %-4d %-6d %10.1f %12s %10.1f\n%!" routers lines mt et bt)
    (List.sort
       (fun a b ->
         compare
           (Config.Printer.network_config_lines a.G.Enterprise.network)
           (Config.Printer.network_config_lines b.G.Enterprise.network))
       nets);
  (* fault-invariance doubles the encoding; sample it *)
  let fi_nets = List.filteri (fun i _ -> i mod 2 = 0) nets in
  List.iter
    (fun t ->
      let _, ft = check_fault_invariance t in
      f_times := ft :: !f_times)
    fi_nets;
  print_endline
    "  -- summary (paper, 2-25 rtr networks: 2-60ms reach, 5-400ms equiv, <1.5s others) --";
  summarize "management reachability" !m_times;
  summarize "local equivalence" !e_times;
  summarize "no blackholes" !b_times;
  summarize "fault invariance" !f_times

(* ---------------- §8.1 violation counts ---------------- *)

let violations () =
  print_endline
    "== Violations across the 152-network fleet (paper: 67 / 29 / 24 / 0; fleet adds 16 \
     injected single-homed racks) ==";
  let fleet = G.Enterprise.fleet () in
  let hijacks = ref 0 and equivs = ref 0 and holes = ref 0 and fault = ref 0 in
  let checked_fi = ref 0 in
  List.iteri
    (fun i (t : G.Enterprise.t) ->
      (match fst (check_mgmt t) with MS.Verify.Violation _ -> incr hijacks | MS.Verify.Holds -> ());
      (match check_equiv t with
       | Some (MS.Verify.Violation _, _) -> incr equivs
       | Some (MS.Verify.Holds, _) | None -> ());
      (match fst (check_blackholes t) with
       | MS.Verify.Violation _ -> incr holes
       | MS.Verify.Holds -> ());
      if !full || i mod 8 = 0 then begin
        incr checked_fi;
        match fst (check_fault_invariance t) with
        | MS.Verify.Violation _ -> incr fault
        | MS.Verify.Holds -> ()
      end;
      if i mod 19 = 18 then Printf.printf "  ... %d/152 networks audited\n%!" (i + 1))
    fleet;
  Printf.printf "  management-interface hijacks : %d (paper: 67)\n" !hijacks;
  Printf.printf "  local-equivalence violations : %d (paper: 29)\n" !equivs;
  Printf.printf "  blackhole violations         : %d (paper: 24)\n" !holes;
  Printf.printf
    "  fault-invariance violations  : %d of %d checked (fleet injects 16 single-homed racks; \
     paper found 0)\n%!"
    !fault !checked_fi

(* ---------------- Figure 8: folded-Clos sweep ---------------- *)

let fig8_one pods =
  let ft = G.Fattree.make ~pods in
  let net = ft.G.Fattree.network in
  let n = List.length net.A.net_devices in
  Printf.printf "  -- %d pods (%d routers) --\n%!" pods n;
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  (* ToRs of one pod other than the destination's, for the equal-length query *)
  let other_pod_tors =
    List.filter
      (fun t ->
        match String.split_on_char '_' t with
        | [ _; p; _ ] -> p = "1"
        | _ -> false)
      ft.G.Fattree.tors
  in
  let run name prop =
    let o, ms =
      time (fun () ->
          let enc = MS.Encode.build net MS.Options.default in
          verify_check enc (prop enc))
    in
    Printf.printf "     %-28s %-9s %10.1f ms\n%!" name (outcome_str o) ms
  in
  run "no blackholes" (fun enc -> MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores ());
  run "multipath consistency" (fun enc -> MS.Property.multipath_consistency enc dest);
  (match ft.G.Fattree.cores with
   | c1 :: c2 :: _ ->
     run "local consistency (spines)" (fun enc -> MS.Property.local_equivalence enc c1 c2)
   | _ -> ());
  run "single-ToR reachability" (fun enc ->
      MS.Property.reachability enc ~sources:[ List.hd other_tors ] dest);
  run "all-ToR reachability" (fun enc -> MS.Property.reachability enc ~sources:other_tors dest);
  run "single-ToR bounded length" (fun enc ->
      MS.Property.bounded_length enc ~sources:[ List.hd other_tors ] dest ~bound:4);
  run "all-ToR bounded length" (fun enc ->
      MS.Property.bounded_length enc ~sources:other_tors dest ~bound:4);
  match other_pod_tors with
  | _ :: _ :: _ ->
    run "equal length (one pod)" (fun enc ->
        MS.Property.equal_lengths enc ~sources:other_pod_tors dest)
  | _ -> ()

let fig8 () =
  print_endline "== Figure 8: property verification time vs fabric size ==";
  let sizes = if !full then [ 2; 4; 6; 8; 10 ] else [ 2; 4; 6 ] in
  print_endline
    (if !full then
       "   (pods 2-10, i.e. 5-125 routers; the paper runs 2-18 pods on Z3 - same shape, reduced scale)"
     else "   (pods 2-6, i.e. 5-45 routers, by default; pass --full for pods 8-10)");
  List.iter fig8_one sizes

(* ---------------- §8.3 optimization ablation ---------------- *)

let opts_bench () =
  print_endline "== \xc2\xa78.3: optimization effectiveness (single-source reachability) ==";
  let scenarios =
    [
      ("fattree pods=2 (5 rtrs)", (G.Fattree.make ~pods:2).G.Fattree.network, "tor_0_0", "tor_1_0");
      ("fattree pods=4 (20 rtrs)", (G.Fattree.make ~pods:4).G.Fattree.network, "tor_0_0", "tor_1_0");
    ]
  in
  let variants =
    [
      ("naive (bit-vector prefixes)", MS.Options.naive);
      ("+ prefix hoisting", { MS.Options.naive with MS.Options.hoist_prefixes = true });
      ("+ slicing and merging", MS.Options.default);
    ]
  in
  List.iter
    (fun (name, net, src, dst_tor) ->
      Printf.printf "  -- %s --\n%!" name;
      let dst_prefix =
        match String.split_on_char '_' dst_tor with
        | [ _; p; i ] ->
          Net.Prefix.make (Net.Ipv4.of_octets 10 (int_of_string p) (int_of_string i) 0) 24
        | _ -> assert false
      in
      let baseline = ref None in
      List.iter
        (fun (vname, opts) ->
          let o, ms =
            time (fun () ->
                let enc = MS.Encode.build net opts in
                verify_check enc
                  (MS.Property.reachability enc ~sources:[ src ]
                     (MS.Property.Subnet (dst_tor, dst_prefix))))
          in
          let speedup =
            match !baseline with
            | None ->
              baseline := Some ms;
              ""
            | Some b -> Printf.sprintf "  (%.1fx vs naive)" (b /. ms)
          in
          Printf.printf "     %-30s %-9s %10.1f ms%s\n%!" vname (outcome_str o) ms speedup)
        variants)
    scenarios;
  print_endline "  (paper: hoisting ~200x on average, slicing a further ~2.3x, up to 460x total)"

(* ---------------- incremental batch verification ---------------- *)

(* The fig7 §8.1 suite over one enterprise network, as labelled query
   builders sharing an encoding (fault invariance is excluded: its
   two-copy encoding cannot share a session). *)
let batch_suite (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  let mgmt_dest = MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target) in
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  let equiv =
    match t.G.Enterprise.rack_role with
    | r1 :: r2 :: _ -> [ ("acl-equivalence", fun enc -> MS.Property.acl_equivalence enc r1 r2) ]
    | _ -> []
  in
  [
    ("mgmt-reachability", fun enc -> MS.Property.reachability enc ~sources:devices mgmt_dest);
    ("no-blackholes", fun enc -> MS.Property.no_blackholes enc ~allowed ());
    ("no-loops", fun enc -> MS.Property.no_loops enc ());
  ]
  @ equiv

let batch ~smoke () =
  print_endline "== batch verification: one incremental session vs N fresh solvers ==";
  let routers = if smoke then 8 else if !full then 24 else 12 in
  let seed = 3 in
  let t = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let net = t.G.Enterprise.network in
  let opts = MS.Options.default in
  let suite = batch_suite t in
  let n = List.length suite in
  Printf.printf "   enterprise seed=%d routers=%d, %d-property suite (fig7)\n%!" seed routers n;
  (* Baseline: each query pays for its own encoding and its own solver,
     exactly what N independent fresh-solver run_query calls do. *)
  let baseline =
    List.map
      (fun (name, make) ->
        let o, ms = time (fun () -> verify_net net opts make) in
        Printf.printf "   fresh    %-20s %-9s %10.1f ms\n%!" name (outcome_str o) ms;
        (name, o, ms))
      suite
  in
  (* Session: encode and assert the network once, then check each
     property under a fresh activation literal on the same solver. *)
  let session, setup_ms = time (fun () -> MS.Verify.Session.create net opts) in
  Printf.printf "   session  %-20s %20.1f ms\n%!" "(encode + assert)" setup_ms;
  let session_reports =
    MS.Verify.Session.run session
      (List.map (fun (name, make) -> MS.Verify.Query.v name make) suite)
  in
  List.iter
    (fun (r : MS.Verify.Report.t) ->
      Printf.printf "   session  %-20s %-9s %10.1f ms\n%!" r.MS.Verify.Report.label
        (MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict)
        r.MS.Verify.Report.wall_ms)
    session_reports;
  let baseline_total = List.fold_left (fun a (_, _, ms) -> a +. ms) 0.0 baseline in
  let session_total =
    setup_ms
    +. List.fold_left
         (fun a (r : MS.Verify.Report.t) -> a +. r.MS.Verify.Report.wall_ms)
         0.0 session_reports
  in
  let agree =
    List.for_all2
      (fun (_, a, _) (r : MS.Verify.Report.t) ->
        outcome_str a = MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict)
      baseline session_reports
  in
  let st = MS.Verify.Session.stats session in
  Printf.printf
    "   baseline %.1f ms | session %.1f ms (setup %.1f) | speedup %.2fx | amortized %.1f \
     ms/query\n\
     %!"
    baseline_total session_total setup_ms
    (baseline_total /. session_total)
    (session_total /. float_of_int n);
  Printf.printf "   session solver: %d conflicts, %d learned clauses, %d restarts over %d checks\n%!"
    st.Smt.Solver.conflicts st.Smt.Solver.learned_clauses st.Smt.Solver.restarts
    st.Smt.Solver.checks;
  if not agree then print_endline "   !! verdict mismatch between fresh and session paths";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"network\": { \"kind\": \"enterprise\", \"seed\": %d, \"routers\": %d },\n" seed
       routers);
  Buffer.add_string buf "  \"queries\": [\n";
  (* The session side is rendered by Verify.Report.to_json — the same
     renderer behind `verify --format json` — so the schemas agree. *)
  List.iteri
    (fun i ((name, bo, bms), r) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"fresh_verdict\": \"%s\", \"fresh_ms\": %.2f, \
            \"session\": %s }%s\n"
           name (outcome_str bo) bms
           (MS.Verify.Report.to_json r)
           (if i = n - 1 then "" else ",")))
    (List.combine baseline session_reports);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"session_setup_ms\": %.2f,\n" setup_ms);
  Buffer.add_string buf (Printf.sprintf "  \"baseline_total_ms\": %.2f,\n" baseline_total);
  Buffer.add_string buf (Printf.sprintf "  \"session_total_ms\": %.2f,\n" session_total);
  Buffer.add_string buf
    (Printf.sprintf "  \"amortized_ms_per_query\": %.2f,\n"
       (session_total /. float_of_int n));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup\": %.3f,\n" (baseline_total /. session_total));
  Buffer.add_string buf
    (Printf.sprintf "  \"learned_clauses\": %d,\n" st.Smt.Solver.learned_clauses);
  Buffer.add_string buf (Printf.sprintf "  \"restarts\": %d,\n" st.Smt.Solver.restarts);
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_agree\": %b\n" agree);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_batch.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_batch.json";
  if smoke then
    if not agree then begin
      prerr_endline "bench-smoke: verdict mismatch between fresh and session paths";
      exit 1
    end
    else if session_total >= baseline_total then begin
      Printf.eprintf
        "bench-smoke: session path (%.1f ms) not faster than %d fresh solves (%.1f ms)\n"
        session_total n baseline_total;
      exit 1
    end
    else print_endline "   smoke OK: session faster than fresh solves, identical verdicts"

(* ---------------- parallel verification (process pool) ---------------- *)

(* The fig7 suite plus a per-destination all-pairs fan-out over one
   enterprise network: enough independent queries for sharding to
   matter.  Correctness (verdict agreement with the in-process
   sequential session) is gated unconditionally; wall-clock speedup is
   gated only when the machine exposes at least [jobs] cores, because a
   fork pool cannot beat sequential on a single core no matter how the
   scheduler behaves. *)
let parallel ~smoke () =
  print_endline "== parallel verification: process-pool sharding of the fig7 suite ==";
  let cores = Engine.available_cores () in
  let routers = if smoke then 10 else if !full then 20 else 14 in
  let seed = 3 in
  let t = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let net = t.G.Enterprise.network in
  let enc = MS.Encode.build net MS.Options.default in
  let devices = MS.Encode.devices enc in
  let all_pairs =
    List.filter_map
      (fun d ->
        if MS.Encode.subnets enc d = [] then None
        else begin
          let srcs = List.filter (fun s -> s <> d) devices in
          Some
            (MS.Verify.Query.v
               ("reachability *->" ^ d)
               (fun enc -> MS.Property.reachability enc ~sources:srcs (MS.Property.Device d)))
        end)
      devices
  in
  let queries =
    List.map (fun (name, make) -> MS.Verify.Query.v name make) (batch_suite t) @ all_pairs
  in
  let n = List.length queries in
  Printf.printf "   enterprise seed=%d routers=%d: %d queries, %d core(s) visible\n%!" seed
    routers n cores;
  let seq_reports, seq_ms = time (fun () -> Engine.run ~jobs:1 enc queries) in
  Printf.printf "   -j1 (in-process)  %10.1f ms\n%!" seq_ms;
  let verdicts rs =
    List.map
      (fun (r : MS.Verify.Report.t) ->
        (r.MS.Verify.Report.label, MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict))
      rs
  in
  let seq_verdicts = verdicts seq_reports in
  let job_counts = if smoke then [ 2 ] else [ 2; 4 ] in
  let runs =
    List.map
      (fun jobs ->
        let reports, ms = time (fun () -> Engine.run ~jobs enc queries) in
        let agree = verdicts reports = seq_verdicts in
        let measured =
          if cores >= jobs then Printf.sprintf "speedup %5.2fx" (seq_ms /. ms)
          else "skipped_low_cores"
        in
        Printf.printf "   -j%-2d              %10.1f ms  %s%s\n%!" jobs ms measured
          (if agree then "" else "  !! verdicts diverge from -j1");
        (jobs, ms, agree))
      job_counts
  in
  (* Portfolio: race the strategy variants on the hardest query of the
     sequential run. *)
  let hardest_q, hardest_r =
    List.fold_left
      (fun ((_, (br : MS.Verify.Report.t)) as best) ((_, (r : MS.Verify.Report.t)) as cur) ->
        if r.MS.Verify.Report.wall_ms > br.MS.Verify.Report.wall_ms then cur else best)
      (List.hd (List.combine queries seq_reports))
      (List.combine queries seq_reports)
  in
  let port_report, port_ms = time (fun () -> Engine.portfolio enc hardest_q) in
  let port_agree =
    MS.Verify.Report.verdict_name port_report.MS.Verify.Report.verdict
    = MS.Verify.Report.verdict_name hardest_r.MS.Verify.Report.verdict
  in
  Printf.printf "   portfolio on %-20s %8.1f ms  winner %s%s\n%!"
    port_report.MS.Verify.Report.label port_ms
    (match port_report.MS.Verify.Report.strategy with Some s -> s | None -> "-")
    (if port_agree then "" else "  !! verdict diverges from -j1");
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"network\": { \"kind\": \"enterprise\", \"seed\": %d, \"routers\": %d },\n" seed
       routers);
  Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string buf (Printf.sprintf "  \"queries\": %d,\n" n);
  Buffer.add_string buf (Printf.sprintf "  \"sequential_ms\": %.2f,\n" seq_ms);
  Buffer.add_string buf "  \"runs\": [\n";
  (* A fork pool on fewer cores than jobs cannot speed anything up: the
     run is labelled skipped_low_cores (agreement still recorded)
     instead of reporting a regression-shaped "speedup" number. *)
  List.iteri
    (fun i (jobs, ms, agree) ->
      let measured =
        if cores >= jobs then
          Printf.sprintf "\"status\": \"ok\", \"speedup\": %.3f" (seq_ms /. ms)
        else "\"status\": \"skipped_low_cores\""
      in
      Buffer.add_string buf
        (Printf.sprintf "    { \"jobs\": %d, \"ms\": %.2f, %s, \"verdicts_agree\": %b }%s\n"
           jobs ms measured agree
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"portfolio\": { \"label\": \"%s\", \"ms\": %.2f, \"winner\": \"%s\", \
        \"verdicts_agree\": %b },\n"
       (MS.Verify.Report.json_escape port_report.MS.Verify.Report.label)
       port_ms
       (match port_report.MS.Verify.Report.strategy with Some s -> s | None -> "")
       port_agree);
  Buffer.add_string buf
    (Printf.sprintf "  \"reports\": %s\n" (MS.Verify.Report.list_to_json seq_reports));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_parallel.json";
  let all_agree = port_agree && List.for_all (fun (_, _, a) -> a) runs in
  if not all_agree then begin
    prerr_endline "bench parallel: verdict divergence between parallel and sequential runs";
    exit 1
  end;
  List.iter
    (fun (jobs, ms, _) ->
      let target = if smoke then 1.3 else 2.0 in
      if cores >= jobs && seq_ms /. ms < target then begin
        Printf.eprintf "bench parallel: -j%d speedup %.2fx below the %.1fx target on %d cores\n"
          jobs (seq_ms /. ms) target cores;
        exit 1
      end
      else if cores < jobs then
        Printf.printf
          "   (speedup gate for -j%d skipped: only %d core(s) — agreement still enforced)\n%!"
          jobs cores)
    runs;
  if all_agree then print_endline "   parallel OK: verdicts identical to the sequential session"

(* ---------------- solver-throughput ablation ---------------- *)

(* The fattree property suite as labelled query builders (the fig8
   checks that share one encoding). *)
let fattree_suite (ft : G.Fattree.t) =
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  [
    ( "single-tor-reachability",
      fun enc -> MS.Property.reachability enc ~sources:[ List.hd other_tors ] dest );
    ("all-tor-reachability", fun enc -> MS.Property.reachability enc ~sources:other_tors dest);
    ( "bounded-length",
      fun enc -> MS.Property.bounded_length enc ~sources:other_tors dest ~bound:4 );
    ("multipath-consistency", fun enc -> MS.Property.multipath_consistency enc dest);
    ("no-blackholes", fun enc -> MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores ())
  ]

(* Ablation of the four solver-throughput fronts: every query of the
   enterprise + fattree suites is answered on a fresh single-shot
   solver under six feature configurations (all off, each front alone,
   all on).  Verdicts must agree everywhere — the fronts only change
   how fast the search converges — and the JSON records per-front
   speedups plus the decisions-per-conflict ratio on the hardest query
   (how much blind walking over don't-care variables each front
   eliminates). *)
let solver_bench ~smoke () =
  print_endline "== solver throughput: four-front ablation (fresh solver per query) ==";
  let routers = if smoke then 8 else if !full then 16 else 12 in
  let pods = if smoke then 2 else 4 in
  let seed = 3 in
  let ent = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let ft = G.Fattree.make ~pods in
  let nets =
    [
      ("ent", ent.G.Enterprise.network, batch_suite ent);
      ("ft", ft.G.Fattree.network, fattree_suite ft);
    ]
  in
  Printf.printf "   enterprise seed=%d routers=%d + fattree pods=%d: %d queries per config\n%!"
    seed routers pods
    (List.fold_left (fun a (_, _, qs) -> a + List.length qs) 0 nets);
  let off = Smt.Solver.no_features in
  let configs =
    [
      ("all-off", off);
      ("pg-cnf", { off with Smt.Solver.pg_cnf = true });
      ("preprocess", { off with Smt.Solver.preprocess = true });
      ("theory-prop", { off with Smt.Solver.theory_prop = true });
      ("lbd", { off with Smt.Solver.lbd = true });
      ("all-on", Smt.Solver.default_features);
    ]
  in
  (* (config name, total ms, reports in suite order).  The search is
     deterministic per configuration, so two passes over the suite do
     identical solver work: taking the per-query minimum wall time
     filters scheduler/GC noise without changing what is measured. *)
  let passes = 2 in
  let run_suite opts =
    List.concat_map
      (fun (nname, net, suite) ->
        let enc = MS.Encode.build net opts in
        List.map
          (fun (qname, make) ->
            MS.Verify.run_query enc (MS.Verify.Query.v (nname ^ ":" ^ qname) make))
          suite)
      nets
  in
  let min_over_passes opts =
    let reports = ref (run_suite opts) in
    for _ = 2 to passes do
      reports :=
        List.map2
          (fun (a : MS.Verify.Report.t) (b : MS.Verify.Report.t) ->
            if b.MS.Verify.Report.wall_ms < a.MS.Verify.Report.wall_ms then b else a)
          !reports (run_suite opts)
    done;
    !reports
  in
  let results =
    List.map
      (fun (cname, feats) ->
        let reports = min_over_passes (MS.Options.with_features feats MS.Options.default) in
        let total =
          List.fold_left
            (fun a (r : MS.Verify.Report.t) -> a +. r.MS.Verify.Report.wall_ms)
            0.0 reports
        in
        Printf.printf "   %-12s %10.1f ms total (min over %d passes)\n%!" cname total passes;
        (cname, total, reports))
      configs
  in
  let find name = List.find (fun (n, _, _) -> n = name) results in
  let _, off_total, off_reports = find "all-off" in
  let _, on_total, on_reports = find "all-on" in
  let verdict_sig reports =
    List.map
      (fun (r : MS.Verify.Report.t) ->
        (r.MS.Verify.Report.label, MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict))
      reports
  in
  let base_verdicts = verdict_sig off_reports in
  let agree = List.for_all (fun (_, _, rs) -> verdict_sig rs = base_verdicts) results in
  (* Restart-mode / rephasing grid: the same suites under the four
     corners of {Luby, Ema_lbd} x {rephase off, rephase on}, with the
     production feature set.  Any strategy is sound and complete, so
     the verdicts must agree; the wall totals and the new scheduler
     counters (adaptive restarts, blocked restarts, rephases) show what
     each scheduler actually did on these instances.  The grid is what
     isolates the PR's restart-mode change: the scale sweep shows the
     adaptive default winning at large pods, this shows it is at worst
     noise-level on the small suites. *)
  let d = Smt.Solver.default_strategy in
  let strategies =
    [
      ("luby", d);
      ("luby+rephase", { d with Smt.Solver.rephase = true });
      ("ema", { d with Smt.Solver.restart_mode = Smt.Solver.Ema_lbd });
      ("ema+rephase",
       { d with Smt.Solver.restart_mode = Smt.Solver.Ema_lbd; rephase = true });
    ]
  in
  let strat_results =
    List.map
      (fun (sname, strategy) ->
        let reports = min_over_passes (MS.Options.with_strategy strategy MS.Options.default) in
        let total =
          List.fold_left
            (fun a (r : MS.Verify.Report.t) -> a +. r.MS.Verify.Report.wall_ms)
            0.0 reports
        in
        let sum f =
          List.fold_left (fun a (r : MS.Verify.Report.t) -> a + f r.MS.Verify.Report.stats) 0 reports
        in
        let restarts = sum (fun st -> st.Smt.Solver.restarts) in
        let ema_restarts = sum (fun st -> st.Smt.Solver.ema_restarts) in
        let blocked = sum (fun st -> st.Smt.Solver.blocked_restarts) in
        let rephases = sum (fun st -> st.Smt.Solver.rephases) in
        Printf.printf
          "   strategy %-12s %10.1f ms total  restarts %d (adaptive %d, blocked %d) rephases %d\n%!"
          sname total restarts ema_restarts blocked rephases;
        (sname, total, reports, (restarts, ema_restarts, blocked, rephases)))
      strategies
  in
  let strat_agree =
    List.for_all (fun (_, _, rs, _) -> verdict_sig rs = base_verdicts) strat_results
  in
  let _, luby_total, _, _ = List.hd strat_results in
  (* hardest query under the baseline configuration *)
  let hardest =
    List.fold_left
      (fun (b : MS.Verify.Report.t) (r : MS.Verify.Report.t) ->
        if r.MS.Verify.Report.wall_ms > b.MS.Verify.Report.wall_ms then r else b)
      (List.hd off_reports) off_reports
  in
  let hlabel = hardest.MS.Verify.Report.label in
  let dpc (rs : MS.Verify.Report.t list) =
    let r = List.find (fun (r : MS.Verify.Report.t) -> r.MS.Verify.Report.label = hlabel) rs in
    MS.Verify.Report.decisions_per_conflict r.MS.Verify.Report.stats
  in
  List.iter
    (fun (cname, total, rs) ->
      if cname <> "all-off" then
        Printf.printf "   %-12s speedup %5.2fx vs all-off  (hardest query %s: %.1f dec/cfl)\n%!"
          cname (off_total /. total) hlabel (dpc rs))
    results;
  Printf.printf "   hardest query %s: %.1f dec/cfl all-off -> %.1f dec/cfl all-on\n%!" hlabel
    (dpc off_reports) (dpc on_reports);
  if not agree then print_endline "   !! verdict divergence between feature configurations";
  if not strat_agree then print_endline "   !! verdict divergence between strategy configurations";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"networks\": { \"enterprise\": { \"seed\": %d, \"routers\": %d }, \"fattree\": { \
        \"pods\": %d } },\n"
       seed routers pods);
  Buffer.add_string buf "  \"configs\": [\n";
  let nconf = List.length results in
  List.iteri
    (fun i (cname, total, rs) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"total_ms\": %.2f, \"speedup_vs_all_off\": %.3f, \
            \"reports\": %s }%s\n"
           cname total (off_total /. total)
           (MS.Verify.Report.list_to_json rs)
           (if i = nconf - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"strategies\": [\n";
  let nstrat = List.length strat_results in
  List.iteri
    (fun i (sname, total, _, (restarts, ema_restarts, blocked, rephases)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"total_ms\": %.2f, \"speedup_vs_luby\": %.3f, \
            \"restarts\": %d, \"ema_restarts\": %d, \"blocked_restarts\": %d, \"rephases\": \
            %d }%s\n"
           sname total (luby_total /. total) restarts ema_restarts blocked rephases
           (if i = nstrat - 1 then "" else ",")))
    strat_results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"strategy_verdicts_agree\": %b,\n" strat_agree);
  let query_ms (rs : MS.Verify.Report.t list) =
    let r = List.find (fun (r : MS.Verify.Report.t) -> r.MS.Verify.Report.label = hlabel) rs in
    r.MS.Verify.Report.wall_ms
  in
  let hardest_off_ms = query_ms off_reports and hardest_on_ms = query_ms on_reports in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"hardest_query\": { \"label\": \"%s\", \"all_off_ms\": %.2f, \"all_on_ms\": %.2f, \
        \"all_on_speedup\": %.3f, \"decisions_per_conflict\": { %s } },\n"
       (MS.Verify.Report.json_escape hlabel)
       hardest_off_ms hardest_on_ms
       (hardest_off_ms /. hardest_on_ms)
       (String.concat ", "
          (List.map
             (fun (cname, _, rs) -> Printf.sprintf "\"%s\": %.2f" cname (dpc rs))
             results)));
  Buffer.add_string buf (Printf.sprintf "  \"all_off_total_ms\": %.2f,\n" off_total);
  Buffer.add_string buf (Printf.sprintf "  \"all_on_total_ms\": %.2f,\n" on_total);
  Buffer.add_string buf
    (Printf.sprintf "  \"all_on_speedup\": %.3f,\n" (off_total /. on_total));
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n" agree);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_solver.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_solver.json";
  if smoke then begin
    if not agree then begin
      prerr_endline "bench-solver-smoke: verdict divergence between feature configurations";
      exit 1
    end;
    if not strat_agree then begin
      prerr_endline "bench-solver-smoke: verdict divergence between strategy configurations";
      exit 1
    end;
    (* Speedup is only gated when the baseline suite is slow enough for
       the ratio to be signal rather than timer noise. *)
    let floor_ms = 300.0 in
    let target = 1.1 in
    if off_total >= floor_ms && off_total /. on_total < target then begin
      Printf.eprintf
        "bench-solver-smoke: all-on speedup %.2fx below the %.1fx target (baseline %.1f ms)\n"
        (off_total /. on_total) target off_total;
      exit 1
    end;
    (* The 2x hardest-query floor is gated by bench-arena-smoke, which
       runs that query at the full (non-smoke) network size where the
       ratio is meaningful; here the smoke-scale value is only
       recorded. *)
    if off_total < floor_ms then
      Printf.printf
        "   (speedup gate skipped: baseline %.1f ms under the %.0f ms floor — agreement still \
         enforced)\n%!"
        off_total floor_ms
    else
      Printf.printf
        "   smoke OK: identical verdicts, all-on %.2fx faster than all-off (hardest query \
         %.2fx)\n%!"
        (off_total /. on_total)
        (hardest_off_ms /. hardest_on_ms)
  end

(* ---------------- certification overhead ---------------- *)

(* Certified verdicts: every query of the enterprise + fattree suites
   answered twice — plain, then with [Options.certify] so UNSAT
   verdicts replay their DRAT-style trace through the independent
   checker and SAT verdicts are model-evaluated and replayed through
   the concrete simulator.  A deliberately-violated isolation query
   guarantees the SAT side is exercised even when both suites hold.
   Gated: verdict agreement between the passes, every certified verdict
   carrying a positive certificate (zero Uncertified, zero failures),
   both certificate kinds appearing, and — above a noise floor —
   certification costing at most 2x the plain solve time. *)
let certify_bench ~smoke () =
  print_endline "== certified verdicts: independent-checker overhead and proof sizes ==";
  let routers = if smoke then 8 else if !full then 16 else 12 in
  let pods = if smoke then 2 else 4 in
  let seed = 3 in
  let ent = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let ft = G.Fattree.make ~pods in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  let violated_suite =
    (* isolating a ToR that can reach the destination is false, so this
       query yields a model whose counterexample must replay cleanly *)
    [
      ( "isolation-should-fail",
        fun enc -> MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest );
    ]
  in
  let nets =
    [
      ("ent", ent.G.Enterprise.network, batch_suite ent);
      ("ft", ft.G.Fattree.network, fattree_suite ft @ violated_suite);
    ]
  in
  let nq = List.fold_left (fun a (_, _, qs) -> a + List.length qs) 0 nets in
  Printf.printf "   enterprise seed=%d routers=%d + fattree pods=%d: %d queries per pass\n%!"
    seed routers pods nq;
  let run_all opts =
    List.concat_map
      (fun (nname, net, suite) ->
        let enc = MS.Encode.build net opts in
        List.map
          (fun (qname, make) ->
            MS.Verify.run_query enc (MS.Verify.Query.v (nname ^ ":" ^ qname) make))
          suite)
      nets
  in
  (* min wall time over two passes filters scheduler/GC noise, exactly
     as in the solver ablation; the work per pass is deterministic *)
  let passes = 2 in
  let min_passes opts =
    let rs = ref (run_all opts) in
    for _ = 2 to passes do
      rs :=
        List.map2
          (fun (a : MS.Verify.Report.t) (b : MS.Verify.Report.t) ->
            if b.MS.Verify.Report.wall_ms < a.MS.Verify.Report.wall_ms then b else a)
          !rs (run_all opts)
    done;
    !rs
  in
  let base = min_passes MS.Options.default in
  let cert = min_passes (MS.Options.with_certify MS.Options.default) in
  let proofs = ref 0 and models = ref 0 and uncert = ref 0 and failed = ref 0 in
  List.iter2
    (fun (b : MS.Verify.Report.t) (c : MS.Verify.Report.t) ->
      let detail =
        match c.MS.Verify.Report.certificate with
        | MS.Verify.Report.Checked_unsat_proof { trace_steps; clauses; lemmas } ->
          incr proofs;
          Printf.sprintf "proof: %d steps, %d clauses, %d lemmas" trace_steps clauses lemmas
        | MS.Verify.Report.Checked_model ->
          incr models;
          "model evaluated + replayed"
        | MS.Verify.Report.Uncertified ->
          incr uncert;
          "UNCERTIFIED"
        | MS.Verify.Report.Certification_failed msg ->
          incr failed;
          "FAILED: " ^ msg
      in
      Printf.printf "   %-28s %-9s %8.1f -> %8.1f ms  (%s)\n%!" c.MS.Verify.Report.label
        (MS.Verify.Report.verdict_name c.MS.Verify.Report.verdict)
        b.MS.Verify.Report.wall_ms c.MS.Verify.Report.wall_ms detail)
    base cert;
  let total rs =
    List.fold_left (fun a (r : MS.Verify.Report.t) -> a +. r.MS.Verify.Report.wall_ms) 0.0 rs
  in
  let base_total = total base and cert_total = total cert in
  let overhead = cert_total /. base_total in
  let verdict_sig rs =
    List.map
      (fun (r : MS.Verify.Report.t) ->
        (r.MS.Verify.Report.label, MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict))
      rs
  in
  let agree = verdict_sig base = verdict_sig cert in
  Printf.printf
    "   plain %.1f ms | certified %.1f ms | overhead %.2fx | %d proofs checked, %d models \
     replayed\n\
     %!"
    base_total cert_total overhead !proofs !models;
  if not agree then print_endline "   !! verdict mismatch between plain and certified passes";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"networks\": { \"enterprise\": { \"seed\": %d, \"routers\": %d }, \"fattree\": { \
        \"pods\": %d } },\n"
       seed routers pods);
  Buffer.add_string buf "  \"queries\": [\n";
  List.iteri
    (fun i ((b : MS.Verify.Report.t), (c : MS.Verify.Report.t)) ->
      (* the certified side is Verify.Report.to_json, which renders the
         certificate object — same schema as `verify --format json` *)
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"plain_ms\": %.2f, \"certified\": %s }%s\n"
           (MS.Verify.Report.json_escape c.MS.Verify.Report.label)
           b.MS.Verify.Report.wall_ms
           (MS.Verify.Report.to_json c)
           (if i = nq - 1 then "" else ",")))
    (List.combine base cert);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"plain_total_ms\": %.2f,\n" base_total);
  Buffer.add_string buf (Printf.sprintf "  \"certified_total_ms\": %.2f,\n" cert_total);
  Buffer.add_string buf (Printf.sprintf "  \"overhead\": %.3f,\n" overhead);
  Buffer.add_string buf (Printf.sprintf "  \"unsat_proofs_checked\": %d,\n" !proofs);
  Buffer.add_string buf (Printf.sprintf "  \"models_replayed\": %d,\n" !models);
  Buffer.add_string buf (Printf.sprintf "  \"uncertified\": %d,\n" !uncert);
  Buffer.add_string buf (Printf.sprintf "  \"certification_failures\": %d,\n" !failed);
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n" agree);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_certify.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_certify.json";
  (* correctness gates hold in every mode: they are deterministic *)
  if not agree then begin
    prerr_endline "bench certify: verdict mismatch between plain and certified passes";
    exit 1
  end;
  if !uncert > 0 || !failed > 0 then begin
    Printf.eprintf "bench certify: %d uncertified verdict(s), %d certification failure(s)\n"
      !uncert !failed;
    exit 1
  end;
  if !proofs = 0 || !models = 0 then begin
    Printf.eprintf
      "bench certify: suite exercised only one certificate kind (%d proofs, %d models)\n"
      !proofs !models;
    exit 1
  end;
  (* the overhead ratio is only signal when the plain pass is slow
     enough to measure *)
  let floor_ms = 300.0 in
  let target = 2.0 in
  if base_total >= floor_ms && overhead > target then begin
    Printf.eprintf "bench certify: overhead %.2fx above the %.1fx budget (plain %.1f ms)\n"
      overhead target base_total;
    exit 1
  end;
  if base_total < floor_ms then
    Printf.printf
      "   (overhead gate skipped: plain pass %.1f ms under the %.0f ms floor — agreement and \
       certificates still enforced)\n%!"
      base_total floor_ms
  else
    Printf.printf "   certify OK: identical verdicts, every verdict certified, overhead %.2fx\n%!"
      overhead

(* ---------------- symmetry-reduction scale sweep ---------------- *)

(* The paper-scale fat-tree curve (pods 2-18, 5-405 routers): the
   all-ToR reachability query set — every ToR must reach each of two
   pinned destination ToR subnets — answered on the symmetry quotient
   (one pinned encoding per destination, sources projected through the
   class map) and on the full encoding, where one incremental session
   per pod size encodes once and answers the whole set: the second
   query rides the first query's learnt clauses instead of re-earning
   them, which is the batch bench's warm-session win carried to paper
   scale.

   The quotient points run at every size; the full encoding gets a
   wall-clock budget, and once one point blows it the remaining full
   points are skipped with an explicit skipped_off_budget label —
   mirroring the parallel bench's skipped_low_cores convention — so a
   missing number is a recorded decision, not a silent gap.  Under
   --full every completed point is checkpointed to
   BENCH_scale.rows.jsonl (and BENCH_scale.json is rewritten) as it
   finishes; --resume restores checkpointed points, so a multi-hour
   sweep killed at pods=14 does not re-earn pods=10.

   Gates.  Verdict agreement is required on every completed point, in
   three directions: quotient vs full, Ema_lbd vs Luby restarts (on
   the point's quotient instance), and the clause-sharing portfolio vs
   the sharing-off race (ditto).  The quotient-vs-full ratio is
   labelled "speedup" only where the quotient actually collapsed
   devices; at pods=2 a pinned destination leaves every class a
   singleton, the quotient is pure bookkeeping, and the ratio is
   labelled "overhead" instead of pretending 0.86x is a win.  The
   >= 2x gate applies at the largest size where both modes completed
   AND the reduction is real, above a noise floor.  --smoke
   additionally exercises the new solver machinery end-to-end on the
   full (non-quotient) encoding: a fresh Luby-restart solve must agree
   with the session's adaptive-restart verdict at every smoke point,
   and at the largest smoke point the clause-sharing portfolio's
   winner must report clauses_imported > 0 and agree with the
   session. *)

type scale_row = {
  sr_pods : int;
  sr_routers : int;
  sr_reduced : bool;  (* the quotient collapsed at least one device *)
  sr_agree : bool;  (* every agreement direction of the point *)
  sr_has_off : bool;
  sr_ratio : float;
  sr_ratio_kind : string;  (* "speedup" (full/quotient) | "overhead" (quotient/full) *)
  sr_off_cold_ms : float;  (* cold full-encoding solve: the session's first query *)
  sr_off_total_ms : float;  (* full-encoding encode + whole query set *)
  sr_exhausted_after : bool;  (* this point blew the full-mode budget *)
  sr_row : string;  (* rendered BENCH_scale.json row *)
}

let scale_ckpt_file = "BENCH_scale.rows.jsonl"

(* One checkpoint line per completed point: the gate-relevant fields as
   plain JSON scalars plus the rendered row, so a resumed run can both
   re-emit the row verbatim and re-evaluate every gate without
   re-measuring. *)
let scale_ckpt_read () =
  if not (Sys.file_exists scale_ckpt_file) then []
  else begin
    let ic = open_in scale_ckpt_file in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match Msutil.Json.parse line with
          | Error _ -> None
          | Ok j ->
            let int k = Option.bind (Msutil.Json.member k j) Msutil.Json.get_int in
            let fl k = Option.bind (Msutil.Json.member k j) Msutil.Json.get_float in
            let bl k = Option.bind (Msutil.Json.member k j) Msutil.Json.get_bool in
            let str k = Option.bind (Msutil.Json.member k j) Msutil.Json.get_string in
            (match
               ( int "pods", int "routers", bl "reduced", bl "agree", bl "has_off",
                 fl "ratio", str "ratio_kind", fl "off_cold_ms", fl "off_total_ms",
                 bl "exhausted_after", str "row" )
             with
             | ( Some sr_pods, Some sr_routers, Some sr_reduced, Some sr_agree,
                 Some sr_has_off, Some sr_ratio, Some sr_ratio_kind, Some sr_off_cold_ms,
                 Some sr_off_total_ms, Some sr_exhausted_after, Some sr_row ) ->
               Some
                 { sr_pods; sr_routers; sr_reduced; sr_agree; sr_has_off; sr_ratio;
                   sr_ratio_kind; sr_off_cold_ms; sr_off_total_ms; sr_exhausted_after;
                   sr_row }
             | _ -> None))
      (List.rev !lines)
  end

let scale_ckpt_append (r : scale_row) =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 scale_ckpt_file in
  output_string oc
    (Printf.sprintf
       "{\"pods\":%d,\"routers\":%d,\"reduced\":%b,\"agree\":%b,\"has_off\":%b,\"ratio\":%.6f,\"ratio_kind\":%s,\"off_cold_ms\":%.3f,\"off_total_ms\":%.3f,\"exhausted_after\":%b,\"row\":%s}\n"
       r.sr_pods r.sr_routers r.sr_reduced r.sr_agree r.sr_has_off r.sr_ratio
       (Msutil.Json.quote r.sr_ratio_kind) r.sr_off_cold_ms r.sr_off_total_ms
       r.sr_exhausted_after (Msutil.Json.quote r.sr_row));
  close_out oc

(* Rewrite BENCH_scale.json from the rows completed so far (called
   after every point, so a killed sweep leaves a valid document) and
   return the gate inputs: global agreement, the largest point both
   modes completed, and the largest such point whose reduction is
   real (the speedup gate's anchor). *)
let scale_write_json ~off_budget_ms (rows : scale_row list) =
  let agree_everywhere = List.for_all (fun r -> r.sr_agree) rows in
  let largest_both =
    List.fold_left (fun acc r -> if r.sr_has_off then Some r else acc) None rows
  in
  let largest_gate =
    List.fold_left
      (fun acc r -> if r.sr_has_off && r.sr_reduced then Some r else acc)
      None rows
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n  \"benchmark\": \"scale\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"off_budget_ms\": %.0f,\n  \"queries_per_point\": 2,\n  \"sizes\": [\n"
       off_budget_ms);
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf ("    " ^ r.sr_row ^ (if i = n - 1 then "\n" else ",\n")))
    rows;
  Buffer.add_string buf "  ],\n";
  (match largest_both with
   | Some r ->
     Buffer.add_string buf
       (Printf.sprintf "  \"largest_both_modes_pods\": %d,\n" r.sr_pods);
     Buffer.add_string buf
       (Printf.sprintf "  \"%s_at_largest_both\": %.3f,\n" r.sr_ratio_kind r.sr_ratio)
   | None -> ());
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n}\n" agree_everywhere);
  let oc = open_out "BENCH_scale.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  (agree_everywhere, largest_both, largest_gate)
let scale ~smoke ~resume () =
  print_endline "== symmetry reduction: quotient vs full encoding across fabric sizes ==";
  let sizes = if smoke then [ 2; 6 ] else [ 2; 6; 10; 14; 18 ] in
  (* The arena core's propagation throughput moved the full-encoding
     frontier: the budget is raised from the pre-arena 300 s so points
     that newly complete get recorded instead of skipped. *)
  let off_budget_ms = if smoke then 20_000.0 else 600_000.0 in
  let checkpointing = not smoke in
  let prior = if resume && checkpointing then scale_ckpt_read () else [] in
  if checkpointing && not resume then (try Sys.remove scale_ckpt_file with Sys_error _ -> ());
  Printf.printf "   pods %s; full-encoding budget %.0f s per point; 2 queries per point%s\n%!"
    (String.concat "," (List.map string_of_int sizes))
    (off_budget_ms /. 1000.0)
    (if prior <> [] then
       Printf.sprintf "; resuming past %d checkpointed point(s)" (List.length prior)
     else "");
  let off_exhausted = ref (List.exists (fun r -> r.sr_exhausted_after) prior) in
  (* smoke-only end-to-end checks of the new solver machinery on the
     full (non-quotient) encoding *)
  let smoke_luby_agree = ref true in
  let smoke_share_imported = ref 0 in
  let smoke_share_agree = ref true in
  let quote = Msutil.Json.quote in
  let largest_size = List.fold_left max 0 sizes in
  let measure pods =
    let ft = G.Fattree.make ~pods in
    let net = ft.G.Fattree.network in
    let routers = List.length net.A.net_devices in
    let tors = ft.G.Fattree.tors in
    (* the all-ToR query set: every ToR reaches each of two pinned
       destination ToR subnets (every fat-tree, pods >= 2, has >= 2
       ToRs) *)
    let dsts = [ List.nth tors 0; List.nth tors 1 ] in
    let dst0 = List.hd dsts in
    let dest_of dst = MS.Property.Subnet (dst, ft.G.Fattree.tor_subnet dst) in
    let srcs_of dst = List.filter (fun t -> t <> dst) tors in
    let pps solve_ms props =
      if solve_ms <= 0.0 then 0.0 else float_of_int props /. (solve_ms /. 1000.0)
    in
    let agg = function
      | [] -> "mixed"
      | (_, v) :: tl -> if List.for_all (fun (_, v') -> v' = v) tl then v else "mixed"
    in
    (* -- quotient side: one pinned encoding per destination -- *)
    let on_opts = MS.Options.with_symmetry MS.Options.default in
    let on_q =
      List.map
        (fun dst ->
          let enc, enc_ms = time (fun () -> MS.Encode.build ~pins:[ dst ] net on_opts) in
          let srcs = MS.Encode.project_devices enc (srcs_of dst) in
          let (o, st), solve_ms =
            time (fun () ->
                query_with_stats enc
                  (MS.Property.reachability enc ~sources:srcs (dest_of dst)))
          in
          (dst, enc, enc_ms, solve_ms, o, st))
        dsts
    in
    let on_encode_ms = List.fold_left (fun a (_, _, e, _, _, _) -> a +. e) 0.0 on_q in
    let on_solve_ms = List.fold_left (fun a (_, _, _, s, _, _) -> a +. s) 0.0 on_q in
    let on_total = on_encode_ms +. on_solve_ms in
    let on_props =
      List.fold_left (fun a (_, _, _, _, _, st) -> a + st.Smt.Solver.propagations) 0 on_q
    in
    let on_pps = pps on_solve_ms on_props in
    let enc_on0 = match on_q with (_, e, _, _, _, _) :: _ -> e | [] -> assert false in
    let q_devices = List.length (MS.Encode.devices enc_on0) in
    let classes = List.length (MS.Encode.sym_classes enc_on0) in
    let reduced = classes > 0 && q_devices < routers in
    let on_verdicts = List.map (fun (dst, _, _, _, o, _) -> (dst, outcome_str o)) on_q in
    let on_verdict = agg on_verdicts in
    Printf.printf
      "   pods=%-2d (%3d rtrs)  quotient %3d devices, %d classes  %-9s %10.1f ms  %.2e props/s\n%!"
      pods routers q_devices classes on_verdict on_total on_pps;
    (* restart-mode agreement on this point's quotient instance: the
       strategy is baked into the encoding options, so each mode gets a
       fresh pinned encoding of the same query *)
    let quotient_verdict_under strategy =
      let enc = MS.Encode.build ~pins:[ dst0 ] net (MS.Options.with_strategy strategy on_opts) in
      let srcs = MS.Encode.project_devices enc (srcs_of dst0) in
      let o, _ =
        query_with_stats enc (MS.Property.reachability enc ~sources:srcs (dest_of dst0))
      in
      outcome_str o
    in
    let dstrat = Smt.Solver.default_strategy in
    let v_luby = quotient_verdict_under dstrat in
    let v_ema =
      quotient_verdict_under { dstrat with Smt.Solver.restart_mode = Smt.Solver.Ema_lbd }
    in
    let modes_agree = v_luby = v_ema && v_luby = List.assoc dst0 on_verdicts in
    (* sharing agreement on the same instance: the clause-sharing
       portfolio and the sharing-off race against the sequential
       verdict *)
    let q0 =
      MS.Verify.Query.v "all-tor"
        (fun enc ->
          MS.Property.reachability enc
            ~sources:(MS.Encode.project_devices enc (srcs_of dst0))
            (dest_of dst0))
    in
    let verdict_of (r : MS.Verify.Report.t) =
      MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict
    in
    let v_share = verdict_of (Engine.portfolio ~share:true enc_on0 q0) in
    let v_solo = verdict_of (Engine.portfolio ~share:false enc_on0 q0) in
    let share_agree = v_share = v_solo && v_share = List.assoc dst0 on_verdicts in
    if not (modes_agree && share_agree) then
      Printf.printf
        "   pods=%-2d !! quotient cross-checks diverge (luby %s, ema %s, share %s, solo %s)\n%!"
        pods v_luby v_ema v_share v_solo;
    (* -- full side: one incremental session answers the whole set -- *)
    let off =
      if !off_exhausted then begin
        Printf.printf
          "   pods=%-2d (%3d rtrs)  full      skipped_off_budget (an earlier point blew \
           the %.0f s budget)\n%!"
          pods routers (off_budget_ms /. 1000.0);
        None
      end
      else begin
        let enc_off, off_encode_ms = time (fun () -> MS.Encode.build net MS.Options.default) in
        let session = MS.Verify.Session.of_encoding enc_off in
        let reports =
          List.map
            (fun dst ->
              ( dst,
                MS.Verify.Session.run_one session
                  (MS.Verify.Query.v ("all-tor->" ^ dst)
                     (fun enc ->
                       MS.Property.reachability enc ~sources:(srcs_of dst) (dest_of dst))) ))
            dsts
        in
        let wall (r : MS.Verify.Report.t) = r.MS.Verify.Report.wall_ms in
        let cold = wall (snd (List.hd reports)) in
        let warm = List.fold_left (fun a (_, r) -> a +. wall r) 0.0 (List.tl reports) in
        let session_solve = cold +. warm in
        let off_total = off_encode_ms +. session_solve in
        if off_total > off_budget_ms then off_exhausted := true;
        let off_props =
          List.fold_left
            (fun a (_, r) -> a + r.MS.Verify.Report.stats.Smt.Solver.propagations)
            0 reports
        in
        let off_pps = pps session_solve off_props in
        let off_verdicts = List.map (fun (dst, r) -> (dst, verdict_of r)) reports in
        let full_agree = off_verdicts = on_verdicts in
        let off_verdict = agg off_verdicts in
        Printf.printf
          "   pods=%-2d (%3d rtrs)  full      %3d devices  %-9s cold %10.1f ms + warm \
           %8.1f ms  %.2e props/s  %s %5.2fx%s\n%!"
          pods routers routers off_verdict cold warm off_pps
          (if reduced then "speedup" else "overhead")
          (if reduced then off_total /. on_total else on_total /. off_total)
          (if full_agree then "" else "  !! verdicts diverge");
        if smoke then begin
          (* a fresh Luby-restart solve of the cold query must agree
             with the session's adaptive-restart verdict *)
          let enc_luby =
            MS.Encode.build net (MS.Options.with_strategy dstrat MS.Options.default)
          in
          let o_luby, _ =
            query_with_stats enc_luby
              (MS.Property.reachability enc_luby ~sources:(srcs_of dst0) (dest_of dst0))
          in
          if outcome_str o_luby <> List.assoc dst0 off_verdicts then
            smoke_luby_agree := false;
          (* clause sharing must actually fire on a conflict-heavy full
             encoding: race a diverse strategy subset on the largest
             smoke point and require the winner to have imported *)
          if pods = largest_size then begin
            let strats =
              List.filteri (fun i _ -> i = 0 || i = 1 || i = 2 || i = 6) MS.Options.portfolio
            in
            let q =
              MS.Verify.Query.v "all-tor-share"
                (fun enc ->
                  MS.Property.reachability enc ~sources:(srcs_of dst0) (dest_of dst0))
            in
            let attempts = 3 in
            let rec go i =
              let r = Engine.portfolio ~strategies:strats ~share:true enc_off q in
              let imported = r.MS.Verify.Report.stats.Smt.Solver.clauses_imported in
              if verdict_of r <> List.assoc dst0 off_verdicts then
                smoke_share_agree := false;
              if imported > 0 then smoke_share_imported := imported
              else if i < attempts then go (i + 1)
            in
            go 1
          end
        end;
        Some (off_encode_ms, reports, cold, warm, off_total, off_verdict, full_agree, off_pps)
      end
    in
    (* -- render the row and fold the gates -- *)
    let on_queries_json =
      String.concat ", "
        (List.map
           (fun (dst, _, e, s, o, _) ->
             Printf.sprintf
               "{ \"dst\": %s, \"encode_ms\": %.2f, \"solve_ms\": %.2f, \"verdict\": %s }"
               (quote dst) e s (quote (outcome_str o)))
           on_q)
    in
    let off_json, ratio_part, has_off, cold_ms, total_ms, full_agree =
      match off with
      | None -> ("{ \"status\": \"skipped_off_budget\" }", "", false, 0.0, 0.0, true)
      | Some (enc_ms, reports, cold, warm, total, verdict, full_agree, off_pps) ->
        let wall (r : MS.Verify.Report.t) = r.MS.Verify.Report.wall_ms in
        let verdict_of (r : MS.Verify.Report.t) =
          MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict
        in
        let qjson =
          String.concat ", "
            (List.mapi
               (fun i (dst, r) ->
                 Printf.sprintf
                   "{ \"dst\": %s, \"solve_ms\": %.2f, \"verdict\": %s, \"warm\": %b }"
                   (quote dst) (wall r) (quote (verdict_of r)) (i > 0))
               reports)
        in
        let j =
          Printf.sprintf
            "{ \"status\": \"ok\", \"encode_ms\": %.2f, \"cold_solve_ms\": %.2f, \
             \"warm_solve_ms\": %.2f, \"solve_ms\": %.2f, \"total_ms\": %.2f, \"verdict\": \
             %s, \"agrees_with_symmetry\": %b, \"propagations_per_sec\": %.0f, \"queries\": \
             [ %s ] }"
            enc_ms cold warm (cold +. warm) total (quote verdict) full_agree off_pps qjson
        in
        let ratio, kind =
          if reduced then (total /. on_total, "speedup")
          else (on_total /. total, "overhead")
        in
        (j, Printf.sprintf ",\n      \"ratio\": %.3f, \"ratio_kind\": %s" ratio (quote kind),
         true, cold, total, full_agree)
    in
    let row =
      Printf.sprintf
        "{ \"pods\": %d, \"routers\": %d,\n      \"symmetry_on\": { \"encode_ms\": %.2f, \
         \"solve_ms\": %.2f, \"total_ms\": %.2f, \"verdict\": %s, \"devices_encoded\": %d, \
         \"classes\": %d, \"propagations_per_sec\": %.0f, \"queries\": [ %s ] },\n      \
         \"symmetry_off\": %s,\n      \"agreement\": { \"quotient_vs_full\": %b, \
         \"ema_vs_luby\": %b, \"share_vs_solo\": %b }%s }"
        pods routers on_encode_ms on_solve_ms on_total (quote on_verdict) q_devices classes
        on_pps on_queries_json off_json full_agree modes_agree share_agree ratio_part
    in
    let ratio, ratio_kind =
      if not has_off then (0.0, "n/a")
      else if reduced then (total_ms /. on_total, "speedup")
      else (on_total /. total_ms, "overhead")
    in
    {
      sr_pods = pods;
      sr_routers = routers;
      sr_reduced = reduced;
      sr_agree = modes_agree && share_agree && full_agree;
      sr_has_off = has_off;
      sr_ratio = ratio;
      sr_ratio_kind = ratio_kind;
      sr_off_cold_ms = cold_ms;
      sr_off_total_ms = total_ms;
      sr_exhausted_after = !off_exhausted;
      sr_row = row;
    }
  in
  let rows =
    List.rev
      (List.fold_left
         (fun acc pods ->
           match List.find_opt (fun r -> r.sr_pods = pods) prior with
           | Some r ->
             Printf.printf "   pods=%-2d restored from %s\n%!" pods scale_ckpt_file;
             r :: acc
           | None ->
             let r = measure pods in
             if checkpointing then begin
               scale_ckpt_append r;
               ignore (scale_write_json ~off_budget_ms (List.rev (r :: acc)));
               Printf.printf "   checkpointed pods=%d\n%!" pods
             end;
             r :: acc)
         [] sizes)
  in
  let agree_everywhere, largest_both, largest_gate =
    scale_write_json ~off_budget_ms rows
  in
  print_endline "   wrote BENCH_scale.json";
  if not agree_everywhere then begin
    prerr_endline
      "bench scale: verdict divergence (quotient vs full, restart modes, or clause sharing)";
    exit 1
  end;
  (* the ratio is only signal when the full-mode point is slow enough
     to measure, same floor convention as the solver/certify benches;
     it is only a *speedup* claim where the quotient actually reduced
     the device count *)
  let floor_ms = 300.0 in
  let target = 2.0 in
  (match largest_gate with
   | Some r ->
     if r.sr_off_total_ms >= floor_ms && r.sr_ratio < target then begin
       Printf.eprintf
         "bench scale: speedup %.2fx at pods=%d below the %.1fx target (full %.1f ms)\n"
         r.sr_ratio r.sr_pods target r.sr_off_total_ms;
       exit 1
     end
     else if r.sr_off_total_ms < floor_ms then
       Printf.printf
         "   (speedup gate skipped: full encoding %.1f ms under the %.0f ms floor — \
          agreement still enforced)\n%!"
         r.sr_off_total_ms floor_ms
     else
       Printf.printf "   scale OK: identical verdicts, %.2fx at pods=%d\n%!" r.sr_ratio
         r.sr_pods
   | None ->
     (match largest_both with
      | Some r ->
        Printf.printf
          "   (speedup gate vacuous: no completed point with a real reduction; pods=%d \
           ran both modes at %.2fx %s)\n%!"
          r.sr_pods r.sr_ratio r.sr_ratio_kind
      | None -> print_endline "   (no size completed in both modes; gates vacuous)"));
  if smoke then begin
    if not !smoke_luby_agree then begin
      prerr_endline
        "bench-scale-smoke: Luby vs adaptive-restart verdict divergence on the full encoding";
      exit 1
    end;
    if not !smoke_share_agree then begin
      prerr_endline "bench-scale-smoke: clause-sharing portfolio verdict divergence";
      exit 1
    end;
    if !smoke_share_imported = 0 then begin
      prerr_endline
        "bench-scale-smoke: clause sharing never fired (winner imported 0 clauses in 3 \
         attempts)";
      exit 1
    end;
    Printf.printf
      "   smoke OK: restart modes agree on the full encoding; sharing fired (winner \
       imported %d clauses)\n%!"
      !smoke_share_imported
  end

(* ---------------- arena memory behavior ---------------- *)

(* The claims the arena refactor makes, measured and gated:

   1. Allocation-free propagation.  A long implication chain is solved
      repeatedly on one solver: after the first (warm-up) solve every
      internal vector is sized, so the later solves — one decision,
      then ~N propagations through the flat arena — are pure hot-loop
      work.  [Sat.minor_words] (a [Gc.minor_words] delta around each
      solve) divided by the propagation delta must stay near zero; the
      constant per-solve bookkeeping (a closure, a few refs) is why the
      ceiling is 0.05 words rather than exactly 0.

   2. The speedup the flat representation buys on real queries.  The
      hardest fig7-class query (enterprise no-loops) is answered
      all-off and all-on, interleaved, min over three passes each —
      interleaving decorrelates sustained machine noise from the
      ratio, a slow spell hits both sides: verdicts must agree and
      all-on must clear 2x above the noise floor.

   3. Compaction actually runs and stays bounded: a reduction-stressed
      pigeonhole solve must report at least one compaction and end with
      a mostly-live arena. *)
let arena_bench ~smoke () =
  print_endline "== arena SAT core: allocation, compaction and hot-query speedup ==";
  (* -- 1: steady-state allocation per propagation -- *)
  let n = if smoke then 50_000 else 200_000 in
  let s = Smt.Sat.create () in
  Smt.Sat.set_strategy s { Smt.Sat.default_strategy with Smt.Sat.default_phase = true };
  let v = Array.init n (fun _ -> Smt.Sat.new_var s) in
  for i = 0 to n - 2 do
    Smt.Sat.add_clause s [ Smt.Sat.neg_lit v.(i); Smt.Sat.pos_lit v.(i + 1) ]
  done;
  ignore (Smt.Sat.solve s);
  let props0 = Smt.Sat.num_propagations s and words0 = Smt.Sat.minor_words s in
  let repeats = 5 in
  for _ = 1 to repeats do
    ignore (Smt.Sat.solve s)
  done;
  let props = Smt.Sat.num_propagations s - props0 in
  let words = Smt.Sat.minor_words s -. words0 in
  let words_per_prop = if props = 0 then infinity else words /. float_of_int props in
  Printf.printf
    "   propagation: %d propagations over %d solves, %.0f minor words -> %.4f words/propagation\n%!"
    props repeats words words_per_prop;
  (* -- 2: hardest-query speedup, all-off vs all-on -- *)
  let routers = if smoke then 12 else if !full then 16 else 12 in
  let seed = 3 in
  let ent = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let run_once feats =
    let opts = MS.Options.with_features feats MS.Options.default in
    let enc = MS.Encode.build ent.G.Enterprise.network opts in
    let q = MS.Verify.Query.v "ent:no-loops" (fun enc -> MS.Property.no_loops enc ()) in
    MS.Verify.run_query enc q
  in
  let best rs =
    match rs with
    | [] -> assert false
    | r :: tl ->
      List.fold_left
        (fun (a : MS.Verify.Report.t) (b : MS.Verify.Report.t) ->
          if b.MS.Verify.Report.wall_ms < a.MS.Verify.Report.wall_ms then b else a)
        r tl
  in
  let passes = 3 in
  let offs = ref [] and ons = ref [] in
  for _ = 1 to passes do
    offs := run_once Smt.Solver.no_features :: !offs;
    ons := run_once Smt.Solver.default_features :: !ons
  done;
  let r_off = best !offs in
  let r_on = best !ons in
  let off_ms = r_off.MS.Verify.Report.wall_ms and on_ms = r_on.MS.Verify.Report.wall_ms in
  let verdict (r : MS.Verify.Report.t) =
    MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict
  in
  let agree = verdict r_off = verdict r_on in
  let arena_bytes (r : MS.Verify.Report.t) =
    r.MS.Verify.Report.stats.Smt.Solver.arena_words * (Sys.word_size / 8)
  in
  Printf.printf
    "   hardest query ent:no-loops (routers=%d): all-off %.1f ms, all-on %.1f ms -> %.2fx%s\n%!"
    routers off_ms on_ms (off_ms /. on_ms)
    (if agree then "" else "  !! verdicts diverge");
  Printf.printf "   arena: %d bytes all-off, %d bytes all-on, %d compaction(s) all-on\n%!"
    (arena_bytes r_off) (arena_bytes r_on)
    r_on.MS.Verify.Report.stats.Smt.Solver.arena_compactions;
  (* -- 3: compaction under reduction stress -- *)
  let sc = Smt.Sat.create () in
  Smt.Sat.set_max_learnts sc 3;
  let hole = 6 in
  let pv = Array.init (hole + 1) (fun _ -> Array.init hole (fun _ -> Smt.Sat.new_var sc)) in
  for p = 0 to hole do
    Smt.Sat.add_clause sc (List.init hole (fun h -> Smt.Sat.pos_lit pv.(p).(h)))
  done;
  for h = 0 to hole - 1 do
    for p1 = 0 to hole do
      for p2 = p1 + 1 to hole do
        Smt.Sat.add_clause sc [ Smt.Sat.neg_lit pv.(p1).(h); Smt.Sat.neg_lit pv.(p2).(h) ]
      done
    done
  done;
  let php_unsat = Smt.Sat.solve sc = Smt.Sat.Unsat in
  let compactions = Smt.Sat.num_compactions sc in
  let live_fraction =
    let total = Smt.Sat.arena_words sc in
    if total = 0 then 1.0
    else float_of_int (total - Smt.Sat.arena_wasted_words sc) /. float_of_int total
  in
  Printf.printf "   compaction stress: php(%d) %s, %d compactions, %.0f%% of arena live\n%!"
    hole
    (if php_unsat then "unsat" else "SAT (wrong!)")
    compactions (100.0 *. live_fraction);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n  \"benchmark\": \"arena\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"propagation\": { \"chain_vars\": %d, \"solves\": %d, \"propagations\": %d, \
        \"minor_words\": %.0f, \"words_per_propagation\": %.5f },\n"
       n repeats props words words_per_prop);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"hardest_query\": { \"label\": \"ent:no-loops\", \"routers\": %d, \
        \"all_off_ms\": %.2f, \"all_on_ms\": %.2f, \"speedup\": %.3f, \
        \"verdicts_agree\": %b, \"arena_bytes_all_on\": %d, \"compactions_all_on\": %d },\n"
       routers off_ms on_ms (off_ms /. on_ms) agree (arena_bytes r_on)
       r_on.MS.Verify.Report.stats.Smt.Solver.arena_compactions);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"compaction_stress\": { \"pigeonhole\": %d, \"unsat\": %b, \"compactions\": %d, \
        \"live_fraction\": %.3f }\n}\n"
       hole php_unsat compactions live_fraction);
  let oc = open_out "BENCH_arena.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_arena.json";
  if smoke then begin
    if not agree then begin
      prerr_endline "bench-arena-smoke: verdict divergence between all-off and all-on";
      exit 1
    end;
    if not php_unsat then begin
      prerr_endline "bench-arena-smoke: pigeonhole answered SAT under reduction stress";
      exit 1
    end;
    if compactions = 0 then begin
      prerr_endline "bench-arena-smoke: no arena compaction ran under reduction stress";
      exit 1
    end;
    let alloc_ceiling = 0.05 in
    if words_per_prop > alloc_ceiling then begin
      Printf.eprintf
        "bench-arena-smoke: %.4f minor words/propagation above the %.2f ceiling\n"
        words_per_prop alloc_ceiling;
      exit 1
    end;
    (* same noise-floor convention as the solver smoke *)
    let floor_ms = 300.0 in
    let target = 2.0 in
    if off_ms >= floor_ms && off_ms /. on_ms < target then begin
      Printf.eprintf
        "bench-arena-smoke: hardest-query speedup %.2fx below the %.1fx target (baseline %.1f \
         ms)\n"
        (off_ms /. on_ms) target off_ms;
      exit 1
    end;
    if off_ms < floor_ms then
      Printf.printf
        "   (speedup gate skipped: baseline %.1f ms under the %.0f ms floor — allocation and \
         agreement still enforced)\n%!"
        off_ms floor_ms
    else
      Printf.printf
        "   smoke OK: %.4f words/propagation, verdicts agree, hardest query %.2fx\n%!"
        words_per_prop (off_ms /. on_ms)
  end

(* ---------------- serve: delta re-verification vs cold daemons ---------------- *)

(* The verification-as-a-service loop an operator actually runs: load a
   network once, then per change push a [diff] and re-ask a suite of
   localized invariants.  The delta daemon migrates core-disjoint
   verdicts across each diff; ground truth (and the timing baseline) is
   a cold daemon that loads the same mutated text from scratch each
   step.  Gates: verdict agreement on every step (always), and under
   --smoke non-zero replay/cache counters plus a 2x wall-clock floor
   for the delta path when the diff touches <= 20% of the devices. *)

let serve_req fmt = Printf.ksprintf (fun s -> s) fmt

let serve_ask d line =
  let resp, _ = Serve.handle_line d line in
  match Msutil.Json.parse resp with
  | Error e -> failwith ("bench serve: unparseable response: " ^ e)
  | Ok v -> (
    match Option.bind (Msutil.Json.member "ok" v) Msutil.Json.get_bool with
    | Some true -> v
    | _ ->
      failwith
        ("bench serve: request failed: "
        ^ Option.value ~default:resp
            (Option.bind (Msutil.Json.member "error" v) Msutil.Json.get_string)))

let serve_int v k =
  match Option.bind (Msutil.Json.member k v) Msutil.Json.get_int with
  | Some n -> n
  | None -> failwith ("bench serve: response lacks " ^ k)

let serve_verdicts v =
  match Option.bind (Msutil.Json.member "reports" v) Msutil.Json.get_list with
  | None -> failwith "bench serve: query response lacks reports"
  | Some rs ->
    List.map
      (fun r ->
        ( Option.value ~default:"?" (Option.bind (Msutil.Json.member "label" r) Msutil.Json.get_string),
          Option.value ~default:"?" (Option.bind (Msutil.Json.member "verdict" r) Msutil.Json.get_string) ))
      rs

(* Deterministic ACL churn on one of the first two racks — the same
   mutation family as the differential test, kept to rack ACLs so the
   rest of the fleet's verdicts stay replayable. *)
let serve_mutate step (t : G.Enterprise.t) (net : A.network) =
  let racks = t.G.Enterprise.rack_role in
  let victim = List.nth racks (step mod min 2 (List.length racks)) in
  let subnet = t.G.Enterprise.rack_subnet victim in
  let mutate_acl (acl : A.acl) =
    if step mod 2 = 0 then
      {
        acl with
        A.acl_entries =
          acl.A.acl_entries
          @ [ { A.acl_action = A.Deny; acl_dst = Net.Prefix.make (Net.Prefix.first subnet) 32 } ];
      }
    else
      {
        acl with
        A.acl_entries =
          (match acl.A.acl_entries with
           | e :: rest ->
             { e with A.acl_action = (match e.A.acl_action with A.Permit -> A.Deny | A.Deny -> A.Permit) }
             :: rest
           | [] -> [ { A.acl_action = A.Deny; acl_dst = subnet } ]);
      }
  in
  {
    net with
    A.net_devices =
      List.map
        (fun (d : A.device) ->
          if d.A.dev_name <> victim then d
          else
            match d.A.dev_acls with
            | acl :: rest -> { d with A.dev_acls = mutate_acl acl :: rest }
            | [] ->
              { d with A.dev_acls = [ { A.acl_name = "90"; acl_entries = [ { A.acl_action = A.Deny; acl_dst = subnet } ] } ] })
        net.A.net_devices;
  }

let serve_bench ~smoke () =
  let routers = if !full then 20 else 14 in
  let steps = if !full then 6 else 4 in
  let seed = 11 in
  print_endline "== serve: delta re-verification vs cold full verification ==";
  let t = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let racks = t.G.Enterprise.rack_role in
  if List.length racks < 4 then failwith "bench serve: enterprise too small for a remote suite";
  (* the suite: ACL equivalence over consecutive pairs of racks the
     churn never touches — the invariants an operator re-checks after a
     change somewhere else *)
  let remote = List.filteri (fun i _ -> i >= 2) racks in
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  let suite = pairs remote in
  let query =
    serve_req {|{"schema":2,"op":"query","queries":[%s]}|}
      (String.concat ","
         (List.map
            (fun (a, b) ->
              serve_req {|{"property":"acl-equivalence","label":"eq-%s-%s","devices":["%s","%s"]}|} a b a b)
            suite))
  in
  let req_load text = serve_req {|{"schema":2,"op":"load","config":%s}|} (Msutil.Json.quote text) in
  let req_diff text = serve_req {|{"schema":2,"op":"diff","config":%s}|} (Msutil.Json.quote text) in
  let base_text = Config.Printer.network_to_string t.G.Enterprise.network in
  let delta = Serve.create MS.Options.default in
  ignore (serve_ask delta (req_load base_text));
  let (_ : 'a), warm_ms = time (fun () -> serve_ask delta query) in
  Printf.printf "   %d devices, %d-query suite, warm solve %.1f ms\n%!" routers (List.length suite) warm_ms;
  let net = ref t.G.Enterprise.network in
  let rows = ref [] in
  let agree_all = ref true in
  let delta_total = ref 0.0 and full_total = ref 0.0 in
  for step = 0 to steps - 1 do
    net := serve_mutate step t !net;
    let text = Config.Printer.network_to_string !net in
    let (dresp, got), delta_ms =
      time (fun () ->
          let dresp = serve_ask delta (req_diff text) in
          (dresp, serve_verdicts (serve_ask delta query)))
    in
    let want, full_ms =
      time (fun () ->
          let cold = Serve.create MS.Options.default in
          ignore (serve_ask cold (req_load text));
          serve_verdicts (serve_ask cold query))
    in
    let agree = got = want in
    if not agree then agree_all := false;
    let mode =
      Option.value ~default:"?" (Option.bind (Msutil.Json.member "mode" dresp) Msutil.Json.get_string)
    in
    let replayed = serve_int dresp "replayed" in
    delta_total := !delta_total +. delta_ms;
    full_total := !full_total +. full_ms;
    Printf.printf "   step %d: %s diff, %d replayed, delta %.1f ms vs full %.1f ms%s\n%!" step
      mode replayed delta_ms full_ms
      (if agree then "" else "  ** VERDICTS DIVERGE **");
    rows := (step, mode, replayed, delta_ms, full_ms, agree) :: !rows
  done;
  (* A -> B -> A flap: reloading the base text must hit the encoding cache *)
  ignore (serve_ask delta (req_load base_text));
  ignore (serve_ask delta query);
  let stats = serve_ask delta {|{"schema":2,"op":"stats"}|} in
  let replays = serve_int stats "delta_replays" in
  let verdict_hits = serve_int stats "verdict_hits" in
  let enc_hits = serve_int stats "enc_cache_hits" in
  let speedup = !full_total /. !delta_total in
  Printf.printf
    "   totals: delta %.1f ms, full %.1f ms (%.1fx); %d replays, %d verdict hits, %d encoding \
     cache hits\n%!"
    !delta_total !full_total speedup replays verdict_hits enc_hits;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n  \"benchmark\": \"serve\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"network\": { \"kind\": \"enterprise\", \"seed\": %d, \"routers\": %d },\n" seed routers);
  Buffer.add_string buf
    (Printf.sprintf "  \"suite\": { \"queries\": %d, \"kind\": \"localized acl-equivalence\" },\n"
       (List.length suite));
  Buffer.add_string buf (Printf.sprintf "  \"warm_solve_ms\": %.2f,\n" warm_ms);
  Buffer.add_string buf "  \"steps\": [\n";
  List.iteri
    (fun i (step, mode, replayed, dms, fms, agree) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"step\": %d, \"mode\": \"%s\", \"replayed\": %d, \"delta_ms\": %.2f, \
            \"full_ms\": %.2f, \"verdicts_agree\": %b }%s\n"
           step mode replayed dms fms agree
           (if i = List.length !rows - 1 then "" else ",")))
    (List.rev !rows);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"delta_total_ms\": %.2f,\n" !delta_total);
  Buffer.add_string buf (Printf.sprintf "  \"full_total_ms\": %.2f,\n" !full_total);
  Buffer.add_string buf (Printf.sprintf "  \"speedup\": %.3f,\n" speedup);
  Buffer.add_string buf (Printf.sprintf "  \"delta_replays\": %d,\n" replays);
  Buffer.add_string buf (Printf.sprintf "  \"verdict_cache_hits\": %d,\n" verdict_hits);
  Buffer.add_string buf (Printf.sprintf "  \"encoding_cache_hits\": %d,\n" enc_hits);
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n}\n" !agree_all);
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_serve.json";
  (* the correctness gate is unconditional: replayed verdicts must be
     indistinguishable from freshly solved ones *)
  if not !agree_all then begin
    prerr_endline "bench serve: delta daemon diverged from full verification";
    exit 1
  end;
  if smoke then begin
    if replays = 0 then begin
      prerr_endline "bench-serve-smoke: no verdict was replayed across a diff";
      exit 1
    end;
    if verdict_hits = 0 || enc_hits = 0 then begin
      Printf.eprintf "bench-serve-smoke: cache hits missing (verdict %d, encoding %d)\n"
        verdict_hits enc_hits;
      exit 1
    end;
    (* same noise-floor convention as the other smokes: the 2x floor is
       only meaningful when the full path costs enough to measure *)
    let floor_ms = 50.0 in
    let target = 2.0 in
    if !full_total >= floor_ms && speedup < target then begin
      Printf.eprintf "bench-serve-smoke: delta %.2fx below the %.1fx floor (full %.1f ms)\n"
        speedup target !full_total;
      exit 1
    end;
    if !full_total < floor_ms then
      Printf.printf
        "   (speedup gate skipped: full path %.1f ms under the %.0f ms floor — agreement and \
         cache gates still enforced)\n%!"
        !full_total floor_ms
    else Printf.printf "   smoke OK: verdicts agree, %d replays, delta %.2fx\n%!" replays speedup
  end

(* ---------------- fault: k-failure invariance, hybrid vs SMT ---------------- *)

(* Every query is answered twice: by [Faults.hybrid] (the graph min-cut
   fast path racing the two-copy SMT encoding inside the portfolio) and
   by the two-copy SMT encoding alone.  Cross-path verdict agreement is
   the differential gate; the speedup gate only counts the subset the
   graph path actually decided, because that is the only subset where
   the fast path can claim credit. *)
let fault_bench ~smoke () =
  print_endline "== fault: <=k-failure invariance, hybrid (graph + SMT race) vs SMT alone ==";
  let ks = [ 1; 2; 3 ] in
  let pods_list = if !full then [ 2; 4; 6 ] else [ 2; 4 ] in
  let fattree_cases =
    List.concat_map
      (fun pods ->
        let ft = G.Fattree.make ~pods in
        let net = ft.G.Fattree.network in
        let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
        let case ?(suffix = "") dst ks =
          ( Printf.sprintf "fattree-pods%d%s" pods suffix,
            net,
            devices,
            MS.Property.Subnet (dst, ft.G.Fattree.tor_subnet dst),
            ks )
        in
        let primary = case (List.hd ft.G.Fattree.tors) ks in
        (* a second destination ToR at k=1 for the larger fabrics: the
           invariant holds there (min-cut 2 > 1), which is the expensive
           UNSAT side of the SMT encoding and the cheap side of the
           graph path *)
        match List.rev ft.G.Fattree.tors with
        | last :: _ when pods >= 4 -> [ primary; case ~suffix:"-torB" last [ 1 ] ]
        | _ -> [ primary ])
      pods_list
  in
  let enterprise_cases =
    (* OSPF-internal networks are ineligible for the graph path by
       design, so these rows exercise the fall-back-to-SMT leg of the
       race; k is capped in smoke mode because each verdict is solved
       twice on a doubled encoding. *)
    List.map
      (fun (label, inject) ->
        let t = G.Enterprise.make ~seed:7 ~routers:6 ~inject () in
        let net = t.G.Enterprise.network in
        let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
        let target = List.hd (List.rev t.G.Enterprise.rack_role) in
        ( label,
          net,
          devices,
          MS.Property.Subnet (target, t.G.Enterprise.rack_subnet target),
          if !full then ks else [ 1 ] ))
      [
        ("enterprise-clean", G.Enterprise.no_bugs);
        ("enterprise-single-homed", { G.Enterprise.no_bugs with G.Enterprise.single_homed = true });
      ]
  in
  let cases = fattree_cases @ enterprise_cases in
  let rows = ref [] in
  let agree_all = ref true in
  let graph_decided = ref 0 in
  let g_smt = ref 0.0 and g_hyb = ref 0.0 in
  List.iter
    (fun (name, net, sources, dest, ks) ->
      List.iter
        (fun k ->
          let hr, hyb_ms =
            time (fun () -> Faults.hybrid net MS.Options.default ~k ~sources dest)
          in
          let sr, smt_ms =
            time (fun () -> MS.Verify.fault_invariant net MS.Options.default ~k ~sources dest)
          in
          let hv = MS.Verify.Report.verdict_name hr.MS.Verify.Report.verdict in
          let sv = MS.Verify.Report.verdict_name sr.MS.Verify.Report.verdict in
          let agree = hv = sv in
          if not agree then agree_all := false;
          let meth =
            match hr.MS.Verify.Report.method_ with
            | Some m -> MS.Verify.Report.method_name m
            | None -> "?"
          in
          if meth = "graph" then begin
            incr graph_decided;
            g_smt := !g_smt +. smt_ms;
            g_hyb := !g_hyb +. hyb_ms
          end;
          Printf.printf "   %-26s k=%d %-9s [%-8s] hybrid %8.1f ms vs smt %8.1f ms%s\n%!" name k
            hv meth hyb_ms smt_ms
            (if agree then "" else "  ** VERDICTS DIVERGE **");
          rows := (name, k, hv, sv, meth, hyb_ms, smt_ms, agree) :: !rows)
        ks)
    cases;
  let speedup = if !g_hyb > 0.0 then !g_smt /. !g_hyb else 0.0 in
  Printf.printf
    "   totals: %d queries, %d graph-decided; on that subset hybrid %.1f ms vs smt %.1f ms \
     (%.1fx)\n%!"
    (List.length !rows) !graph_decided !g_hyb !g_smt speedup;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n  \"benchmark\": \"fault\",\n";
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length !rows in
  List.iteri
    (fun i (name, k, hv, sv, meth, hyb_ms, smt_ms, agree) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"network\": \"%s\", \"k\": %d, \"verdict\": \"%s\", \"verdict_smt\": \"%s\", \
            \"method\": \"%s\", \"hybrid_ms\": %.2f, \"smt_ms\": %.2f, \"verdicts_agree\": %b \
            }%s\n"
           name k hv sv meth hyb_ms smt_ms agree
           (if i = n - 1 then "" else ",")))
    (List.rev !rows);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"queries\": %d,\n" n);
  Buffer.add_string buf (Printf.sprintf "  \"graph_decided\": %d,\n" !graph_decided);
  Buffer.add_string buf (Printf.sprintf "  \"graph_subset_hybrid_ms\": %.2f,\n" !g_hyb);
  Buffer.add_string buf (Printf.sprintf "  \"graph_subset_smt_ms\": %.2f,\n" !g_smt);
  Buffer.add_string buf (Printf.sprintf "  \"graph_subset_speedup\": %.3f,\n" speedup);
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n}\n" !agree_all);
  let oc = open_out "BENCH_fault.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_fault.json";
  (* the differential gate is unconditional: the graph fast path must be
     observationally identical to the SMT encoding *)
  if not !agree_all then begin
    prerr_endline "bench fault: hybrid and SMT-only verdicts diverge";
    exit 1
  end;
  if smoke then begin
    if !graph_decided = 0 then begin
      prerr_endline "bench-fault-smoke: the graph fast path decided no query";
      exit 1
    end;
    (* same noise-floor convention as the other smokes: the 2x floor is
       only meaningful when the SMT side costs enough to measure *)
    let floor_ms = 50.0 in
    let target = 2.0 in
    if !g_smt >= floor_ms && speedup < target then begin
      Printf.eprintf "bench-fault-smoke: hybrid %.2fx below the %.1fx floor (smt %.1f ms)\n"
        speedup target !g_smt;
      exit 1
    end;
    if !g_smt < floor_ms then
      Printf.printf
        "   (speedup gate skipped: graph-decided SMT total %.1f ms under the %.0f ms floor — \
         agreement and coverage gates still enforced)\n%!"
        !g_smt floor_ms
    else
      Printf.printf "   smoke OK: verdicts agree, %d graph-decided, hybrid %.2fx\n%!"
        !graph_decided speedup
  end

(* ---------------- Bechamel micro-benchmarks ---------------- *)

let micro () =
  print_endline "== SMT substrate micro-benchmarks (Bechamel, monotonic clock) ==";
  let open Bechamel in
  let sat_test =
    Test.make ~name:"sat: pigeonhole 5 into 4"
      (Staged.stage (fun () ->
           let s = Smt.Sat.create () in
           let v = Array.init 5 (fun _ -> Array.init 4 (fun _ -> Smt.Sat.new_var s)) in
           for p = 0 to 4 do
             Smt.Sat.add_clause s (List.init 4 (fun h -> Smt.Sat.pos_lit v.(p).(h)))
           done;
           for h = 0 to 3 do
             for p1 = 0 to 4 do
               for p2 = p1 + 1 to 4 do
                 Smt.Sat.add_clause s [ Smt.Sat.neg_lit v.(p1).(h); Smt.Sat.neg_lit v.(p2).(h) ]
               done
             done
           done;
           ignore (Smt.Sat.solve s)))
  in
  let idl_test =
    Test.make ~name:"idl: 200-var chain"
      (Staged.stage (fun () ->
           let cs = List.init 199 (fun i -> { Smt.Idl.x = i + 1; y = i; k = 1; tag = i }) in
           ignore (Smt.Idl.check ~nvars:200 cs)))
  in
  let encode_test =
    Test.make ~name:"encode: fattree pods=4"
      (Staged.stage (fun () ->
           let ft = G.Fattree.make ~pods:4 in
           ignore (MS.Encode.build ft.G.Fattree.network MS.Options.default)))
  in
  let run_test t =
    let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
    let measure = Toolkit.Instance.monotonic_clock in
    let raw = Benchmark.all cfg [ measure ] t in
    let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
    let results = Analyze.all ols measure raw in
    Hashtbl.iter
      (fun name r ->
        match Analyze.OLS.estimates r with
        | Some (est :: _) -> Printf.printf "  %-28s %14.1f ns/run\n%!" name est
        | Some [] | None -> ())
      results
  in
  List.iter run_test [ sat_test; idl_test; encode_test ];
  (* Accumulated statistics of one incremental solver across a small
     session: bound a difference-logic chain, then probe it three times
     under increasingly tight assumptions. *)
  let module T = Smt.Term in
  let module Solver = Smt.Solver in
  let s = Solver.create ~incremental:true () in
  let xs = Array.init 40 (fun i -> T.var (Printf.sprintf "micro!x%d" i) Smt.Sort.Int) in
  for i = 0 to 38 do
    Solver.assert_term s (T.lt xs.(i) xs.(i + 1))
  done;
  Solver.assert_term s (T.leq (T.int_const 0) xs.(0));
  List.iter
    (fun bound -> ignore (Solver.check s ~assumptions:[ T.leq xs.(39) (T.int_const bound) ]))
    [ 100; 39; 38 ];
  let st = Solver.stats s in
  Printf.printf
    "  incremental session: %d checks, %d conflicts, %d decisions, %d propagations, %d learned \
     clauses, %d restarts\n\
     %!"
    st.Solver.checks st.Solver.conflicts st.Solver.decisions st.Solver.propagations
    st.Solver.learned_clauses st.Solver.restarts

let () =
  let args = Array.to_list Sys.argv in
  full := List.mem "--full" args;
  let smoke = List.mem "--smoke" args in
  let resume = List.mem "--resume" args in
  let which =
    match List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) (List.tl args) with
    | [] -> "all"
    | w :: _ -> w
  in
  let t0 = Unix.gettimeofday () in
  (match which with
   | "fig7" -> fig7 ()
   | "fig8" -> fig8 ()
   | "opts" -> opts_bench ()
   | "violations" -> violations ()
   | "micro" -> micro ()
   | "batch" -> batch ~smoke ()
   | "parallel" -> parallel ~smoke ()
   | "solver" -> solver_bench ~smoke ()
   | "certify" -> certify_bench ~smoke ()
   | "scale" -> scale ~smoke ~resume ()
   | "arena" -> arena_bench ~smoke ()
   | "serve" -> serve_bench ~smoke ()
   | "fault" -> fault_bench ~smoke ()
   | "all" ->
     fig7 ();
     print_newline ();
     fig8 ();
     print_newline ();
     opts_bench ();
     print_newline ();
     violations ();
     print_newline ();
     batch ~smoke ();
     print_newline ();
     parallel ~smoke ();
     print_newline ();
     solver_bench ~smoke ();
     print_newline ();
     certify_bench ~smoke ();
     print_newline ();
     scale ~smoke ~resume ();
     print_newline ();
     arena_bench ~smoke ();
     print_newline ();
     serve_bench ~smoke ();
     print_newline ();
     fault_bench ~smoke ();
     print_newline ();
     micro ()
   | other ->
     Printf.eprintf
       "unknown benchmark %s (fig7|fig8|opts|violations|batch|parallel|solver|certify|scale|arena|serve|fault|micro|all)\n"
       other;
     exit 2);
  Printf.printf "\ntotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
