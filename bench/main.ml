(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§8).  One sub-benchmark per artifact:

     fig7        verification time for four properties across the
                 152-network enterprise fleet (§8.1, Figure 7)
     violations  violation counts per property class (§8.1 text)
     fig8        verification time for the property suite across
                 folded-Clos data centers of increasing size (Figure 8)
     opts        optimization ablation (§8.3): naive bit-vector
                 encoding vs prefix hoisting vs hoisting+slicing
     batch       incremental verification session vs N fresh solvers
                 on the fig7 property suite; writes BENCH_batch.json
                 (--smoke: subsampled, exits 1 if the session path is
                 not faster or any verdict diverges)
     parallel    process-pool sharding of the fig7 suite (plus an
                 all-pairs fan-out) at -j1/-j2/-j4 and a strategy
                 portfolio on the hardest query; writes
                 BENCH_parallel.json.  Verdict agreement with the
                 sequential session is always gated; wall-clock
                 speedup is gated only when the machine actually has
                 the cores (single-core CI cannot speed up forks)
     solver      ablation of the four solver-throughput fronts
                 (polarity-aware CNF, level-0 preprocessing, theory
                 propagation, LBD clause management) on the enterprise
                 and fattree suites; writes BENCH_solver.json
                 (--smoke: verdict agreement always gated, all-on
                 speedup gated only when the baseline is slow enough
                 to measure)
     certify     certification overhead: the enterprise + fattree
                 suites answered plain and with --certify (UNSAT
                 proofs replayed through the independent checker, SAT
                 models evaluated and simulated); writes
                 BENCH_certify.json.  Verdict agreement, zero
                 uncertified verdicts, and both certificate kinds are
                 always gated; the 2x overhead budget is gated above a
                 noise floor
     scale       symmetry-reduction sweep over fat-trees of paper
                 scale (pods 2-18, i.e. 5-405 routers): all-ToR
                 reachability with the quotient encoding vs the full
                 encoding; writes BENCH_scale.json.  Verdict agreement
                 is gated wherever both modes ran; once one full-mode
                 point blows the wall-clock budget the remaining full
                 points are skipped with an explicit label (the
                 quotient points always run to 405 routers)
     arena       memory behavior of the arena SAT core: steady-state
                 minor-heap allocation per propagation on a long
                 implication chain, hardest-query all-off/all-on
                 speedup, and compaction under reduction stress;
                 writes BENCH_arena.json (--smoke: gates verdict
                 agreement, the ~0 words/propagation ceiling, the
                 compaction path, and the 2x hardest-query floor)
     serve       the verification-as-a-service loop: a delta daemon
                 absorbing config churn via diff + core-disjoint
                 verdict replay vs a cold daemon re-verifying each
                 step from scratch; writes BENCH_serve.json.  Verdict
                 agreement is always gated; --smoke additionally gates
                 non-zero replay/cache-hit counters and a 2x speedup
                 floor for diffs touching <= 20% of the devices
     micro       Bechamel micro-benchmarks of the SMT substrate
     all         everything above

   Usage: dune exec bench/main.exe -- [fig7|fig8|opts|violations|batch|parallel|solver|certify|scale|arena|serve|micro|all] [--full|--smoke]

   By default the expensive sweeps are subsampled so the whole harness
   finishes in minutes; pass --full for the complete paper-scale runs
   (the largest fabrics take several minutes per query). *)

module MS = Minesweeper
module G = Generators
module A = Config.Ast

let full = ref false

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let outcome_str = function MS.Verify.Holds -> "verified" | MS.Verify.Violation _ -> "violated"

(* shims over the Query/Report API for the single-shot outcomes the
   benchmarks time *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))

let verify_net net opts make =
  let enc = MS.Encode.build net opts in
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.v "query" make))

let query_with_stats enc prop =
  let r = MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop) in
  (MS.Verify.Report.to_outcome r, r.MS.Verify.Report.stats)

(* ---------------- Figure 7: the enterprise fleet ---------------- *)

(* The four §8.1 checks, each returning (outcome, milliseconds). *)
let check_mgmt (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  time (fun () ->
      let enc = MS.Encode.build net MS.Options.default in
      verify_check enc
        (MS.Property.reachability enc ~sources:devices
           (MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target))))

let check_equiv (t : G.Enterprise.t) =
  match t.G.Enterprise.rack_role with
  | r1 :: r2 :: _ ->
    Some
      (time (fun () ->
           let enc = MS.Encode.build t.G.Enterprise.network MS.Options.default in
           verify_check enc (MS.Property.acl_equivalence enc r1 r2)))
  | _ -> None

let check_blackholes (t : G.Enterprise.t) =
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  time (fun () ->
      let enc = MS.Encode.build t.G.Enterprise.network MS.Options.default in
      verify_check enc (MS.Property.no_blackholes enc ~allowed ()))

(* Fault invariance over day-to-day (host-space) reachability, matching
   the paper's all-router-pairs check; management reachability is the
   separate hijack audit. *)
let check_fault_invariance (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target, prefix =
    match List.rev t.G.Enterprise.rack_role with
    | r :: _ -> (r, t.G.Enterprise.rack_subnet r)
    | [] ->
      let d = List.hd (List.rev devices) in
      (d, t.G.Enterprise.mgmt_prefix d)
  in
  time (fun () ->
      MS.Verify.Report.to_outcome
        (MS.Verify.fault_invariant net MS.Options.default ~k:1 ~sources:devices
           (MS.Property.Subnet (target, prefix))))

let summarize name times =
  match times with
  | [] -> ()
  | _ ->
    let n = List.length times in
    let total = List.fold_left ( +. ) 0.0 times in
    let sorted = List.sort compare times in
    Printf.printf
      "  %-28s n=%-4d min=%8.1f ms  median=%8.1f ms  max=%8.1f ms  mean=%8.1f ms\n%!" name n
      (List.nth sorted 0)
      (List.nth sorted (n / 2))
      (List.nth sorted (n - 1))
      (total /. float_of_int n)

let fleet_sample () =
  let fleet = G.Enterprise.fleet () in
  if !full then fleet else List.filteri (fun i _ -> i mod 4 = 0) fleet

let fig7 () =
  print_endline "== Figure 7: per-network verification time, enterprise fleet ==";
  print_endline "   (rows sorted by configuration size, as in the paper)";
  Printf.printf "   %-4s %-6s %12s %12s %12s\n%!" "rtrs" "lines" "mgmt-reach" "local-equiv"
    "blackholes";
  let nets = fleet_sample () in
  let m_times = ref [] and e_times = ref [] and b_times = ref [] and f_times = ref [] in
  List.iter
    (fun (t : G.Enterprise.t) ->
      let lines = Config.Printer.network_config_lines t.G.Enterprise.network in
      let routers = List.length t.G.Enterprise.network.A.net_devices in
      let _, mt = check_mgmt t in
      m_times := mt :: !m_times;
      let et =
        match check_equiv t with
        | Some (_, et) ->
          e_times := et :: !e_times;
          Printf.sprintf "%10.1f" et
        | None -> "         -"
      in
      let _, bt = check_blackholes t in
      b_times := bt :: !b_times;
      Printf.printf "   %-4d %-6d %10.1f %12s %10.1f\n%!" routers lines mt et bt)
    (List.sort
       (fun a b ->
         compare
           (Config.Printer.network_config_lines a.G.Enterprise.network)
           (Config.Printer.network_config_lines b.G.Enterprise.network))
       nets);
  (* fault-invariance doubles the encoding; sample it *)
  let fi_nets = List.filteri (fun i _ -> i mod 2 = 0) nets in
  List.iter
    (fun t ->
      let _, ft = check_fault_invariance t in
      f_times := ft :: !f_times)
    fi_nets;
  print_endline
    "  -- summary (paper, 2-25 rtr networks: 2-60ms reach, 5-400ms equiv, <1.5s others) --";
  summarize "management reachability" !m_times;
  summarize "local equivalence" !e_times;
  summarize "no blackholes" !b_times;
  summarize "fault invariance" !f_times

(* ---------------- §8.1 violation counts ---------------- *)

let violations () =
  print_endline "== Violations across the 152-network fleet (paper: 67 / 29 / 24 / 0) ==";
  let fleet = G.Enterprise.fleet () in
  let hijacks = ref 0 and equivs = ref 0 and holes = ref 0 and fault = ref 0 in
  let checked_fi = ref 0 in
  List.iteri
    (fun i (t : G.Enterprise.t) ->
      (match fst (check_mgmt t) with MS.Verify.Violation _ -> incr hijacks | MS.Verify.Holds -> ());
      (match check_equiv t with
       | Some (MS.Verify.Violation _, _) -> incr equivs
       | Some (MS.Verify.Holds, _) | None -> ());
      (match fst (check_blackholes t) with
       | MS.Verify.Violation _ -> incr holes
       | MS.Verify.Holds -> ());
      if !full || i mod 8 = 0 then begin
        incr checked_fi;
        match fst (check_fault_invariance t) with
        | MS.Verify.Violation _ -> incr fault
        | MS.Verify.Holds -> ()
      end;
      if i mod 19 = 18 then Printf.printf "  ... %d/152 networks audited\n%!" (i + 1))
    fleet;
  Printf.printf "  management-interface hijacks : %d (paper: 67)\n" !hijacks;
  Printf.printf "  local-equivalence violations : %d (paper: 29)\n" !equivs;
  Printf.printf "  blackhole violations         : %d (paper: 24)\n" !holes;
  Printf.printf "  fault-invariance violations  : %d of %d checked (paper: 0)\n%!" !fault
    !checked_fi

(* ---------------- Figure 8: folded-Clos sweep ---------------- *)

let fig8_one pods =
  let ft = G.Fattree.make ~pods in
  let net = ft.G.Fattree.network in
  let n = List.length net.A.net_devices in
  Printf.printf "  -- %d pods (%d routers) --\n%!" pods n;
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  (* ToRs of one pod other than the destination's, for the equal-length query *)
  let other_pod_tors =
    List.filter
      (fun t ->
        match String.split_on_char '_' t with
        | [ _; p; _ ] -> p = "1"
        | _ -> false)
      ft.G.Fattree.tors
  in
  let run name prop =
    let o, ms =
      time (fun () ->
          let enc = MS.Encode.build net MS.Options.default in
          verify_check enc (prop enc))
    in
    Printf.printf "     %-28s %-9s %10.1f ms\n%!" name (outcome_str o) ms
  in
  run "no blackholes" (fun enc -> MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores ());
  run "multipath consistency" (fun enc -> MS.Property.multipath_consistency enc dest);
  (match ft.G.Fattree.cores with
   | c1 :: c2 :: _ ->
     run "local consistency (spines)" (fun enc -> MS.Property.local_equivalence enc c1 c2)
   | _ -> ());
  run "single-ToR reachability" (fun enc ->
      MS.Property.reachability enc ~sources:[ List.hd other_tors ] dest);
  run "all-ToR reachability" (fun enc -> MS.Property.reachability enc ~sources:other_tors dest);
  run "single-ToR bounded length" (fun enc ->
      MS.Property.bounded_length enc ~sources:[ List.hd other_tors ] dest ~bound:4);
  run "all-ToR bounded length" (fun enc ->
      MS.Property.bounded_length enc ~sources:other_tors dest ~bound:4);
  match other_pod_tors with
  | _ :: _ :: _ ->
    run "equal length (one pod)" (fun enc ->
        MS.Property.equal_lengths enc ~sources:other_pod_tors dest)
  | _ -> ()

let fig8 () =
  print_endline "== Figure 8: property verification time vs fabric size ==";
  let sizes = if !full then [ 2; 4; 6; 8; 10 ] else [ 2; 4; 6 ] in
  print_endline
    (if !full then
       "   (pods 2-10, i.e. 5-125 routers; the paper runs 2-18 pods on Z3 - same shape, reduced scale)"
     else "   (pods 2-6, i.e. 5-45 routers, by default; pass --full for pods 8-10)");
  List.iter fig8_one sizes

(* ---------------- §8.3 optimization ablation ---------------- *)

let opts_bench () =
  print_endline "== \xc2\xa78.3: optimization effectiveness (single-source reachability) ==";
  let scenarios =
    [
      ("fattree pods=2 (5 rtrs)", (G.Fattree.make ~pods:2).G.Fattree.network, "tor_0_0", "tor_1_0");
      ("fattree pods=4 (20 rtrs)", (G.Fattree.make ~pods:4).G.Fattree.network, "tor_0_0", "tor_1_0");
    ]
  in
  let variants =
    [
      ("naive (bit-vector prefixes)", MS.Options.naive);
      ("+ prefix hoisting", { MS.Options.naive with MS.Options.hoist_prefixes = true });
      ("+ slicing and merging", MS.Options.default);
    ]
  in
  List.iter
    (fun (name, net, src, dst_tor) ->
      Printf.printf "  -- %s --\n%!" name;
      let dst_prefix =
        match String.split_on_char '_' dst_tor with
        | [ _; p; i ] ->
          Net.Prefix.make (Net.Ipv4.of_octets 10 (int_of_string p) (int_of_string i) 0) 24
        | _ -> assert false
      in
      let baseline = ref None in
      List.iter
        (fun (vname, opts) ->
          let o, ms =
            time (fun () ->
                let enc = MS.Encode.build net opts in
                verify_check enc
                  (MS.Property.reachability enc ~sources:[ src ]
                     (MS.Property.Subnet (dst_tor, dst_prefix))))
          in
          let speedup =
            match !baseline with
            | None ->
              baseline := Some ms;
              ""
            | Some b -> Printf.sprintf "  (%.1fx vs naive)" (b /. ms)
          in
          Printf.printf "     %-30s %-9s %10.1f ms%s\n%!" vname (outcome_str o) ms speedup)
        variants)
    scenarios;
  print_endline "  (paper: hoisting ~200x on average, slicing a further ~2.3x, up to 460x total)"

(* ---------------- incremental batch verification ---------------- *)

(* The fig7 §8.1 suite over one enterprise network, as labelled query
   builders sharing an encoding (fault invariance is excluded: its
   two-copy encoding cannot share a session). *)
let batch_suite (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  let mgmt_dest = MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target) in
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  let equiv =
    match t.G.Enterprise.rack_role with
    | r1 :: r2 :: _ -> [ ("acl-equivalence", fun enc -> MS.Property.acl_equivalence enc r1 r2) ]
    | _ -> []
  in
  [
    ("mgmt-reachability", fun enc -> MS.Property.reachability enc ~sources:devices mgmt_dest);
    ("no-blackholes", fun enc -> MS.Property.no_blackholes enc ~allowed ());
    ("no-loops", fun enc -> MS.Property.no_loops enc ());
  ]
  @ equiv

let batch ~smoke () =
  print_endline "== batch verification: one incremental session vs N fresh solvers ==";
  let routers = if smoke then 8 else if !full then 24 else 12 in
  let seed = 3 in
  let t = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let net = t.G.Enterprise.network in
  let opts = MS.Options.default in
  let suite = batch_suite t in
  let n = List.length suite in
  Printf.printf "   enterprise seed=%d routers=%d, %d-property suite (fig7)\n%!" seed routers n;
  (* Baseline: each query pays for its own encoding and its own solver,
     exactly what N independent fresh-solver run_query calls do. *)
  let baseline =
    List.map
      (fun (name, make) ->
        let o, ms = time (fun () -> verify_net net opts make) in
        Printf.printf "   fresh    %-20s %-9s %10.1f ms\n%!" name (outcome_str o) ms;
        (name, o, ms))
      suite
  in
  (* Session: encode and assert the network once, then check each
     property under a fresh activation literal on the same solver. *)
  let session, setup_ms = time (fun () -> MS.Verify.Session.create net opts) in
  Printf.printf "   session  %-20s %20.1f ms\n%!" "(encode + assert)" setup_ms;
  let session_reports =
    MS.Verify.Session.run session
      (List.map (fun (name, make) -> MS.Verify.Query.v name make) suite)
  in
  List.iter
    (fun (r : MS.Verify.Report.t) ->
      Printf.printf "   session  %-20s %-9s %10.1f ms\n%!" r.MS.Verify.Report.label
        (MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict)
        r.MS.Verify.Report.wall_ms)
    session_reports;
  let baseline_total = List.fold_left (fun a (_, _, ms) -> a +. ms) 0.0 baseline in
  let session_total =
    setup_ms
    +. List.fold_left
         (fun a (r : MS.Verify.Report.t) -> a +. r.MS.Verify.Report.wall_ms)
         0.0 session_reports
  in
  let agree =
    List.for_all2
      (fun (_, a, _) (r : MS.Verify.Report.t) ->
        outcome_str a = MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict)
      baseline session_reports
  in
  let st = MS.Verify.Session.stats session in
  Printf.printf
    "   baseline %.1f ms | session %.1f ms (setup %.1f) | speedup %.2fx | amortized %.1f \
     ms/query\n\
     %!"
    baseline_total session_total setup_ms
    (baseline_total /. session_total)
    (session_total /. float_of_int n);
  Printf.printf "   session solver: %d conflicts, %d learned clauses, %d restarts over %d checks\n%!"
    st.Smt.Solver.conflicts st.Smt.Solver.learned_clauses st.Smt.Solver.restarts
    st.Smt.Solver.checks;
  if not agree then print_endline "   !! verdict mismatch between fresh and session paths";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"network\": { \"kind\": \"enterprise\", \"seed\": %d, \"routers\": %d },\n" seed
       routers);
  Buffer.add_string buf "  \"queries\": [\n";
  (* The session side is rendered by Verify.Report.to_json — the same
     renderer behind `verify --format json` — so the schemas agree. *)
  List.iteri
    (fun i ((name, bo, bms), r) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"fresh_verdict\": \"%s\", \"fresh_ms\": %.2f, \
            \"session\": %s }%s\n"
           name (outcome_str bo) bms
           (MS.Verify.Report.to_json r)
           (if i = n - 1 then "" else ",")))
    (List.combine baseline session_reports);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"session_setup_ms\": %.2f,\n" setup_ms);
  Buffer.add_string buf (Printf.sprintf "  \"baseline_total_ms\": %.2f,\n" baseline_total);
  Buffer.add_string buf (Printf.sprintf "  \"session_total_ms\": %.2f,\n" session_total);
  Buffer.add_string buf
    (Printf.sprintf "  \"amortized_ms_per_query\": %.2f,\n"
       (session_total /. float_of_int n));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup\": %.3f,\n" (baseline_total /. session_total));
  Buffer.add_string buf
    (Printf.sprintf "  \"learned_clauses\": %d,\n" st.Smt.Solver.learned_clauses);
  Buffer.add_string buf (Printf.sprintf "  \"restarts\": %d,\n" st.Smt.Solver.restarts);
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_agree\": %b\n" agree);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_batch.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_batch.json";
  if smoke then
    if not agree then begin
      prerr_endline "bench-smoke: verdict mismatch between fresh and session paths";
      exit 1
    end
    else if session_total >= baseline_total then begin
      Printf.eprintf
        "bench-smoke: session path (%.1f ms) not faster than %d fresh solves (%.1f ms)\n"
        session_total n baseline_total;
      exit 1
    end
    else print_endline "   smoke OK: session faster than fresh solves, identical verdicts"

(* ---------------- parallel verification (process pool) ---------------- *)

(* The fig7 suite plus a per-destination all-pairs fan-out over one
   enterprise network: enough independent queries for sharding to
   matter.  Correctness (verdict agreement with the in-process
   sequential session) is gated unconditionally; wall-clock speedup is
   gated only when the machine exposes at least [jobs] cores, because a
   fork pool cannot beat sequential on a single core no matter how the
   scheduler behaves. *)
let parallel ~smoke () =
  print_endline "== parallel verification: process-pool sharding of the fig7 suite ==";
  let cores = Engine.available_cores () in
  let routers = if smoke then 10 else if !full then 20 else 14 in
  let seed = 3 in
  let t = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let net = t.G.Enterprise.network in
  let enc = MS.Encode.build net MS.Options.default in
  let devices = MS.Encode.devices enc in
  let all_pairs =
    List.filter_map
      (fun d ->
        if MS.Encode.subnets enc d = [] then None
        else begin
          let srcs = List.filter (fun s -> s <> d) devices in
          Some
            (MS.Verify.Query.v
               ("reachability *->" ^ d)
               (fun enc -> MS.Property.reachability enc ~sources:srcs (MS.Property.Device d)))
        end)
      devices
  in
  let queries =
    List.map (fun (name, make) -> MS.Verify.Query.v name make) (batch_suite t) @ all_pairs
  in
  let n = List.length queries in
  Printf.printf "   enterprise seed=%d routers=%d: %d queries, %d core(s) visible\n%!" seed
    routers n cores;
  let seq_reports, seq_ms = time (fun () -> Engine.run ~jobs:1 enc queries) in
  Printf.printf "   -j1 (in-process)  %10.1f ms\n%!" seq_ms;
  let verdicts rs =
    List.map
      (fun (r : MS.Verify.Report.t) ->
        (r.MS.Verify.Report.label, MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict))
      rs
  in
  let seq_verdicts = verdicts seq_reports in
  let job_counts = if smoke then [ 2 ] else [ 2; 4 ] in
  let runs =
    List.map
      (fun jobs ->
        let reports, ms = time (fun () -> Engine.run ~jobs enc queries) in
        let agree = verdicts reports = seq_verdicts in
        let measured =
          if cores >= jobs then Printf.sprintf "speedup %5.2fx" (seq_ms /. ms)
          else "skipped_low_cores"
        in
        Printf.printf "   -j%-2d              %10.1f ms  %s%s\n%!" jobs ms measured
          (if agree then "" else "  !! verdicts diverge from -j1");
        (jobs, ms, agree))
      job_counts
  in
  (* Portfolio: race the strategy variants on the hardest query of the
     sequential run. *)
  let hardest_q, hardest_r =
    List.fold_left
      (fun ((_, (br : MS.Verify.Report.t)) as best) ((_, (r : MS.Verify.Report.t)) as cur) ->
        if r.MS.Verify.Report.wall_ms > br.MS.Verify.Report.wall_ms then cur else best)
      (List.hd (List.combine queries seq_reports))
      (List.combine queries seq_reports)
  in
  let port_report, port_ms = time (fun () -> Engine.portfolio enc hardest_q) in
  let port_agree =
    MS.Verify.Report.verdict_name port_report.MS.Verify.Report.verdict
    = MS.Verify.Report.verdict_name hardest_r.MS.Verify.Report.verdict
  in
  Printf.printf "   portfolio on %-20s %8.1f ms  winner %s%s\n%!"
    port_report.MS.Verify.Report.label port_ms
    (match port_report.MS.Verify.Report.strategy with Some s -> s | None -> "-")
    (if port_agree then "" else "  !! verdict diverges from -j1");
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"network\": { \"kind\": \"enterprise\", \"seed\": %d, \"routers\": %d },\n" seed
       routers);
  Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string buf (Printf.sprintf "  \"queries\": %d,\n" n);
  Buffer.add_string buf (Printf.sprintf "  \"sequential_ms\": %.2f,\n" seq_ms);
  Buffer.add_string buf "  \"runs\": [\n";
  (* A fork pool on fewer cores than jobs cannot speed anything up: the
     run is labelled skipped_low_cores (agreement still recorded)
     instead of reporting a regression-shaped "speedup" number. *)
  List.iteri
    (fun i (jobs, ms, agree) ->
      let measured =
        if cores >= jobs then
          Printf.sprintf "\"status\": \"ok\", \"speedup\": %.3f" (seq_ms /. ms)
        else "\"status\": \"skipped_low_cores\""
      in
      Buffer.add_string buf
        (Printf.sprintf "    { \"jobs\": %d, \"ms\": %.2f, %s, \"verdicts_agree\": %b }%s\n"
           jobs ms measured agree
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"portfolio\": { \"label\": \"%s\", \"ms\": %.2f, \"winner\": \"%s\", \
        \"verdicts_agree\": %b },\n"
       (MS.Verify.Report.json_escape port_report.MS.Verify.Report.label)
       port_ms
       (match port_report.MS.Verify.Report.strategy with Some s -> s | None -> "")
       port_agree);
  Buffer.add_string buf
    (Printf.sprintf "  \"reports\": %s\n" (MS.Verify.Report.list_to_json seq_reports));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_parallel.json";
  let all_agree = port_agree && List.for_all (fun (_, _, a) -> a) runs in
  if not all_agree then begin
    prerr_endline "bench parallel: verdict divergence between parallel and sequential runs";
    exit 1
  end;
  List.iter
    (fun (jobs, ms, _) ->
      let target = if smoke then 1.3 else 2.0 in
      if cores >= jobs && seq_ms /. ms < target then begin
        Printf.eprintf "bench parallel: -j%d speedup %.2fx below the %.1fx target on %d cores\n"
          jobs (seq_ms /. ms) target cores;
        exit 1
      end
      else if cores < jobs then
        Printf.printf
          "   (speedup gate for -j%d skipped: only %d core(s) — agreement still enforced)\n%!"
          jobs cores)
    runs;
  if all_agree then print_endline "   parallel OK: verdicts identical to the sequential session"

(* ---------------- solver-throughput ablation ---------------- *)

(* The fattree property suite as labelled query builders (the fig8
   checks that share one encoding). *)
let fattree_suite (ft : G.Fattree.t) =
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  [
    ( "single-tor-reachability",
      fun enc -> MS.Property.reachability enc ~sources:[ List.hd other_tors ] dest );
    ("all-tor-reachability", fun enc -> MS.Property.reachability enc ~sources:other_tors dest);
    ( "bounded-length",
      fun enc -> MS.Property.bounded_length enc ~sources:other_tors dest ~bound:4 );
    ("multipath-consistency", fun enc -> MS.Property.multipath_consistency enc dest);
    ("no-blackholes", fun enc -> MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores ())
  ]

(* Ablation of the four solver-throughput fronts: every query of the
   enterprise + fattree suites is answered on a fresh single-shot
   solver under six feature configurations (all off, each front alone,
   all on).  Verdicts must agree everywhere — the fronts only change
   how fast the search converges — and the JSON records per-front
   speedups plus the decisions-per-conflict ratio on the hardest query
   (how much blind walking over don't-care variables each front
   eliminates). *)
let solver_bench ~smoke () =
  print_endline "== solver throughput: four-front ablation (fresh solver per query) ==";
  let routers = if smoke then 8 else if !full then 16 else 12 in
  let pods = if smoke then 2 else 4 in
  let seed = 3 in
  let ent = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let ft = G.Fattree.make ~pods in
  let nets =
    [
      ("ent", ent.G.Enterprise.network, batch_suite ent);
      ("ft", ft.G.Fattree.network, fattree_suite ft);
    ]
  in
  Printf.printf "   enterprise seed=%d routers=%d + fattree pods=%d: %d queries per config\n%!"
    seed routers pods
    (List.fold_left (fun a (_, _, qs) -> a + List.length qs) 0 nets);
  let off = Smt.Solver.no_features in
  let configs =
    [
      ("all-off", off);
      ("pg-cnf", { off with Smt.Solver.pg_cnf = true });
      ("preprocess", { off with Smt.Solver.preprocess = true });
      ("theory-prop", { off with Smt.Solver.theory_prop = true });
      ("lbd", { off with Smt.Solver.lbd = true });
      ("all-on", Smt.Solver.default_features);
    ]
  in
  (* (config name, total ms, reports in suite order).  The search is
     deterministic per configuration, so two passes over the suite do
     identical solver work: taking the per-query minimum wall time
     filters scheduler/GC noise without changing what is measured. *)
  let passes = 2 in
  let results =
    List.map
      (fun (cname, feats) ->
        let opts = MS.Options.with_features feats MS.Options.default in
        let run_suite () =
          List.concat_map
            (fun (nname, net, suite) ->
              let enc = MS.Encode.build net opts in
              List.map
                (fun (qname, make) ->
                  MS.Verify.run_query enc (MS.Verify.Query.v (nname ^ ":" ^ qname) make))
                suite)
            nets
        in
        let reports = ref (run_suite ()) in
        for _ = 2 to passes do
          reports :=
            List.map2
              (fun (a : MS.Verify.Report.t) (b : MS.Verify.Report.t) ->
                if b.MS.Verify.Report.wall_ms < a.MS.Verify.Report.wall_ms then b else a)
              !reports (run_suite ())
        done;
        let reports = !reports in
        let total =
          List.fold_left
            (fun a (r : MS.Verify.Report.t) -> a +. r.MS.Verify.Report.wall_ms)
            0.0 reports
        in
        Printf.printf "   %-12s %10.1f ms total (min over %d passes)\n%!" cname total passes;
        (cname, total, reports))
      configs
  in
  let find name = List.find (fun (n, _, _) -> n = name) results in
  let _, off_total, off_reports = find "all-off" in
  let _, on_total, on_reports = find "all-on" in
  let verdict_sig reports =
    List.map
      (fun (r : MS.Verify.Report.t) ->
        (r.MS.Verify.Report.label, MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict))
      reports
  in
  let base_verdicts = verdict_sig off_reports in
  let agree = List.for_all (fun (_, _, rs) -> verdict_sig rs = base_verdicts) results in
  (* hardest query under the baseline configuration *)
  let hardest =
    List.fold_left
      (fun (b : MS.Verify.Report.t) (r : MS.Verify.Report.t) ->
        if r.MS.Verify.Report.wall_ms > b.MS.Verify.Report.wall_ms then r else b)
      (List.hd off_reports) off_reports
  in
  let hlabel = hardest.MS.Verify.Report.label in
  let dpc (rs : MS.Verify.Report.t list) =
    let r = List.find (fun (r : MS.Verify.Report.t) -> r.MS.Verify.Report.label = hlabel) rs in
    MS.Verify.Report.decisions_per_conflict r.MS.Verify.Report.stats
  in
  List.iter
    (fun (cname, total, rs) ->
      if cname <> "all-off" then
        Printf.printf "   %-12s speedup %5.2fx vs all-off  (hardest query %s: %.1f dec/cfl)\n%!"
          cname (off_total /. total) hlabel (dpc rs))
    results;
  Printf.printf "   hardest query %s: %.1f dec/cfl all-off -> %.1f dec/cfl all-on\n%!" hlabel
    (dpc off_reports) (dpc on_reports);
  if not agree then print_endline "   !! verdict divergence between feature configurations";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"networks\": { \"enterprise\": { \"seed\": %d, \"routers\": %d }, \"fattree\": { \
        \"pods\": %d } },\n"
       seed routers pods);
  Buffer.add_string buf "  \"configs\": [\n";
  let nconf = List.length results in
  List.iteri
    (fun i (cname, total, rs) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"total_ms\": %.2f, \"speedup_vs_all_off\": %.3f, \
            \"reports\": %s }%s\n"
           cname total (off_total /. total)
           (MS.Verify.Report.list_to_json rs)
           (if i = nconf - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n";
  let query_ms (rs : MS.Verify.Report.t list) =
    let r = List.find (fun (r : MS.Verify.Report.t) -> r.MS.Verify.Report.label = hlabel) rs in
    r.MS.Verify.Report.wall_ms
  in
  let hardest_off_ms = query_ms off_reports and hardest_on_ms = query_ms on_reports in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"hardest_query\": { \"label\": \"%s\", \"all_off_ms\": %.2f, \"all_on_ms\": %.2f, \
        \"all_on_speedup\": %.3f, \"decisions_per_conflict\": { %s } },\n"
       (MS.Verify.Report.json_escape hlabel)
       hardest_off_ms hardest_on_ms
       (hardest_off_ms /. hardest_on_ms)
       (String.concat ", "
          (List.map
             (fun (cname, _, rs) -> Printf.sprintf "\"%s\": %.2f" cname (dpc rs))
             results)));
  Buffer.add_string buf (Printf.sprintf "  \"all_off_total_ms\": %.2f,\n" off_total);
  Buffer.add_string buf (Printf.sprintf "  \"all_on_total_ms\": %.2f,\n" on_total);
  Buffer.add_string buf
    (Printf.sprintf "  \"all_on_speedup\": %.3f,\n" (off_total /. on_total));
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n" agree);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_solver.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_solver.json";
  if smoke then begin
    if not agree then begin
      prerr_endline "bench-solver-smoke: verdict divergence between feature configurations";
      exit 1
    end;
    (* Speedup is only gated when the baseline suite is slow enough for
       the ratio to be signal rather than timer noise. *)
    let floor_ms = 300.0 in
    let target = 1.1 in
    if off_total >= floor_ms && off_total /. on_total < target then begin
      Printf.eprintf
        "bench-solver-smoke: all-on speedup %.2fx below the %.1fx target (baseline %.1f ms)\n"
        (off_total /. on_total) target off_total;
      exit 1
    end;
    (* The 2x hardest-query floor is gated by bench-arena-smoke, which
       runs that query at the full (non-smoke) network size where the
       ratio is meaningful; here the smoke-scale value is only
       recorded. *)
    if off_total < floor_ms then
      Printf.printf
        "   (speedup gate skipped: baseline %.1f ms under the %.0f ms floor — agreement still \
         enforced)\n%!"
        off_total floor_ms
    else
      Printf.printf
        "   smoke OK: identical verdicts, all-on %.2fx faster than all-off (hardest query \
         %.2fx)\n%!"
        (off_total /. on_total)
        (hardest_off_ms /. hardest_on_ms)
  end

(* ---------------- certification overhead ---------------- *)

(* Certified verdicts: every query of the enterprise + fattree suites
   answered twice — plain, then with [Options.certify] so UNSAT
   verdicts replay their DRAT-style trace through the independent
   checker and SAT verdicts are model-evaluated and replayed through
   the concrete simulator.  A deliberately-violated isolation query
   guarantees the SAT side is exercised even when both suites hold.
   Gated: verdict agreement between the passes, every certified verdict
   carrying a positive certificate (zero Uncertified, zero failures),
   both certificate kinds appearing, and — above a noise floor —
   certification costing at most 2x the plain solve time. *)
let certify_bench ~smoke () =
  print_endline "== certified verdicts: independent-checker overhead and proof sizes ==";
  let routers = if smoke then 8 else if !full then 16 else 12 in
  let pods = if smoke then 2 else 4 in
  let seed = 3 in
  let ent = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let ft = G.Fattree.make ~pods in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  let violated_suite =
    (* isolating a ToR that can reach the destination is false, so this
       query yields a model whose counterexample must replay cleanly *)
    [
      ( "isolation-should-fail",
        fun enc -> MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest );
    ]
  in
  let nets =
    [
      ("ent", ent.G.Enterprise.network, batch_suite ent);
      ("ft", ft.G.Fattree.network, fattree_suite ft @ violated_suite);
    ]
  in
  let nq = List.fold_left (fun a (_, _, qs) -> a + List.length qs) 0 nets in
  Printf.printf "   enterprise seed=%d routers=%d + fattree pods=%d: %d queries per pass\n%!"
    seed routers pods nq;
  let run_all opts =
    List.concat_map
      (fun (nname, net, suite) ->
        let enc = MS.Encode.build net opts in
        List.map
          (fun (qname, make) ->
            MS.Verify.run_query enc (MS.Verify.Query.v (nname ^ ":" ^ qname) make))
          suite)
      nets
  in
  (* min wall time over two passes filters scheduler/GC noise, exactly
     as in the solver ablation; the work per pass is deterministic *)
  let passes = 2 in
  let min_passes opts =
    let rs = ref (run_all opts) in
    for _ = 2 to passes do
      rs :=
        List.map2
          (fun (a : MS.Verify.Report.t) (b : MS.Verify.Report.t) ->
            if b.MS.Verify.Report.wall_ms < a.MS.Verify.Report.wall_ms then b else a)
          !rs (run_all opts)
    done;
    !rs
  in
  let base = min_passes MS.Options.default in
  let cert = min_passes (MS.Options.with_certify MS.Options.default) in
  let proofs = ref 0 and models = ref 0 and uncert = ref 0 and failed = ref 0 in
  List.iter2
    (fun (b : MS.Verify.Report.t) (c : MS.Verify.Report.t) ->
      let detail =
        match c.MS.Verify.Report.certificate with
        | MS.Verify.Report.Checked_unsat_proof { trace_steps; clauses; lemmas } ->
          incr proofs;
          Printf.sprintf "proof: %d steps, %d clauses, %d lemmas" trace_steps clauses lemmas
        | MS.Verify.Report.Checked_model ->
          incr models;
          "model evaluated + replayed"
        | MS.Verify.Report.Uncertified ->
          incr uncert;
          "UNCERTIFIED"
        | MS.Verify.Report.Certification_failed msg ->
          incr failed;
          "FAILED: " ^ msg
      in
      Printf.printf "   %-28s %-9s %8.1f -> %8.1f ms  (%s)\n%!" c.MS.Verify.Report.label
        (MS.Verify.Report.verdict_name c.MS.Verify.Report.verdict)
        b.MS.Verify.Report.wall_ms c.MS.Verify.Report.wall_ms detail)
    base cert;
  let total rs =
    List.fold_left (fun a (r : MS.Verify.Report.t) -> a +. r.MS.Verify.Report.wall_ms) 0.0 rs
  in
  let base_total = total base and cert_total = total cert in
  let overhead = cert_total /. base_total in
  let verdict_sig rs =
    List.map
      (fun (r : MS.Verify.Report.t) ->
        (r.MS.Verify.Report.label, MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict))
      rs
  in
  let agree = verdict_sig base = verdict_sig cert in
  Printf.printf
    "   plain %.1f ms | certified %.1f ms | overhead %.2fx | %d proofs checked, %d models \
     replayed\n\
     %!"
    base_total cert_total overhead !proofs !models;
  if not agree then print_endline "   !! verdict mismatch between plain and certified passes";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"networks\": { \"enterprise\": { \"seed\": %d, \"routers\": %d }, \"fattree\": { \
        \"pods\": %d } },\n"
       seed routers pods);
  Buffer.add_string buf "  \"queries\": [\n";
  List.iteri
    (fun i ((b : MS.Verify.Report.t), (c : MS.Verify.Report.t)) ->
      (* the certified side is Verify.Report.to_json, which renders the
         certificate object — same schema as `verify --format json` *)
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"plain_ms\": %.2f, \"certified\": %s }%s\n"
           (MS.Verify.Report.json_escape c.MS.Verify.Report.label)
           b.MS.Verify.Report.wall_ms
           (MS.Verify.Report.to_json c)
           (if i = nq - 1 then "" else ",")))
    (List.combine base cert);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"plain_total_ms\": %.2f,\n" base_total);
  Buffer.add_string buf (Printf.sprintf "  \"certified_total_ms\": %.2f,\n" cert_total);
  Buffer.add_string buf (Printf.sprintf "  \"overhead\": %.3f,\n" overhead);
  Buffer.add_string buf (Printf.sprintf "  \"unsat_proofs_checked\": %d,\n" !proofs);
  Buffer.add_string buf (Printf.sprintf "  \"models_replayed\": %d,\n" !models);
  Buffer.add_string buf (Printf.sprintf "  \"uncertified\": %d,\n" !uncert);
  Buffer.add_string buf (Printf.sprintf "  \"certification_failures\": %d,\n" !failed);
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n" agree);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_certify.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_certify.json";
  (* correctness gates hold in every mode: they are deterministic *)
  if not agree then begin
    prerr_endline "bench certify: verdict mismatch between plain and certified passes";
    exit 1
  end;
  if !uncert > 0 || !failed > 0 then begin
    Printf.eprintf "bench certify: %d uncertified verdict(s), %d certification failure(s)\n"
      !uncert !failed;
    exit 1
  end;
  if !proofs = 0 || !models = 0 then begin
    Printf.eprintf
      "bench certify: suite exercised only one certificate kind (%d proofs, %d models)\n"
      !proofs !models;
    exit 1
  end;
  (* the overhead ratio is only signal when the plain pass is slow
     enough to measure *)
  let floor_ms = 300.0 in
  let target = 2.0 in
  if base_total >= floor_ms && overhead > target then begin
    Printf.eprintf "bench certify: overhead %.2fx above the %.1fx budget (plain %.1f ms)\n"
      overhead target base_total;
    exit 1
  end;
  if base_total < floor_ms then
    Printf.printf
      "   (overhead gate skipped: plain pass %.1f ms under the %.0f ms floor — agreement and \
       certificates still enforced)\n%!"
      base_total floor_ms
  else
    Printf.printf "   certify OK: identical verdicts, every verdict certified, overhead %.2fx\n%!"
      overhead

(* ---------------- symmetry-reduction scale sweep ---------------- *)

(* The paper-scale fat-tree curve (pods 2-18, 5-405 routers): all-ToR
   reachability to one pinned ToR subnet, answered on the symmetry
   quotient (one representative per interchangeability class, sources
   projected through the class map) and on the full encoding.  The
   quotient points run at every size; the full encoding gets a
   wall-clock budget, and once one point blows it the remaining full
   points are skipped with an explicit skipped_off_budget label —
   mirroring the parallel bench's skipped_low_cores convention — so a
   missing number is a recorded decision, not a silent gap.  Verdict
   agreement is gated wherever both modes ran; the speedup gate applies
   at the largest size both modes completed, above a noise floor. *)
let scale ~smoke () =
  print_endline "== symmetry reduction: quotient vs full encoding across fabric sizes ==";
  let sizes = if smoke then [ 2; 6 ] else [ 2; 6; 10; 14; 18 ] in
  (* The arena core's propagation throughput moved the full-encoding
     frontier: the budget is raised from the pre-arena 300 s so points
     that newly complete get recorded instead of skipped. *)
  let off_budget_ms = if smoke then 20_000.0 else 600_000.0 in
  Printf.printf "   pods %s; full-encoding budget %.0f s per point\n%!"
    (String.concat "," (List.map string_of_int sizes))
    (off_budget_ms /. 1000.0);
  let off_exhausted = ref false in
  let rows =
    List.map
      (fun pods ->
        let ft = G.Fattree.make ~pods in
        let net = ft.G.Fattree.network in
        let routers = List.length net.A.net_devices in
        let dst_tor = List.hd ft.G.Fattree.tors in
        let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
        let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
        (* quotient: pin the destination ToR, project the sources *)
        let enc_on, on_encode_ms =
          time (fun () ->
              MS.Encode.build ~pins:[ dst_tor ] net
                (MS.Options.with_symmetry MS.Options.default))
        in
        let srcs_on = MS.Encode.project_devices enc_on other_tors in
        let (o_on, st_on), on_solve_ms =
          time (fun () ->
              query_with_stats enc_on
                (MS.Property.reachability enc_on ~sources:srcs_on dest))
        in
        let on_total = on_encode_ms +. on_solve_ms in
        let pps solve_ms (st : Smt.Solver.stats) =
          if solve_ms <= 0.0 then 0.0
          else float_of_int st.Smt.Solver.propagations /. (solve_ms /. 1000.0)
        in
        let on_pps = pps on_solve_ms st_on in
        let q_devices = List.length (MS.Encode.devices enc_on) in
        let classes = MS.Encode.sym_classes enc_on in
        Printf.printf
          "   pods=%-2d (%3d rtrs)  quotient %3d devices, %d classes  %-9s %10.1f ms  %.2e props/s\n%!"
          pods routers q_devices (List.length classes) (outcome_str o_on) on_total on_pps;
        let off =
          if !off_exhausted then begin
            Printf.printf
              "   pods=%-2d (%3d rtrs)  full      skipped_off_budget (an earlier point blew \
               the %.0f s budget)\n%!"
              pods routers (off_budget_ms /. 1000.0);
            None
          end
          else begin
            let enc_off, off_encode_ms =
              time (fun () -> MS.Encode.build net MS.Options.default)
            in
            let (o_off, st_off), off_solve_ms =
              time (fun () ->
                  query_with_stats enc_off
                    (MS.Property.reachability enc_off ~sources:other_tors dest))
            in
            let off_total = off_encode_ms +. off_solve_ms in
            if off_total > off_budget_ms then off_exhausted := true;
            let off_pps = pps off_solve_ms st_off in
            let agree = outcome_str o_on = outcome_str o_off in
            Printf.printf
              "   pods=%-2d (%3d rtrs)  full      %3d devices             %-9s %10.1f ms  \
               %.2e props/s  speedup %5.2fx%s\n%!"
              pods routers routers (outcome_str o_off) off_total off_pps
              (off_total /. on_total)
              (if agree then "" else "  !! verdicts diverge");
            Some (off_encode_ms, off_solve_ms, off_total, outcome_str o_off, agree, off_pps)
          end
        in
        (pods, routers, on_encode_ms, on_solve_ms, on_total, outcome_str o_on, q_devices,
         List.length classes, on_pps, off))
      sizes
  in
  let agree_everywhere =
    List.for_all
      (fun (_, _, _, _, _, _, _, _, _, off) ->
        match off with Some (_, _, _, _, agree, _) -> agree | None -> true)
      rows
  in
  (* largest size both modes completed, for the speedup gate *)
  let largest_both =
    List.fold_left
      (fun acc ((_, _, _, _, on_total, _, _, _, _, off) as _row) ->
        match off with
        | Some (_, _, off_total, _, _, _) -> Some (_row, off_total /. on_total, off_total)
        | None -> acc)
      None rows
  in
  let buf = Buffer.create 4096 in
  let quote = Msutil.Json.quote in
  Buffer.add_string buf "{\n  \"schema\": 2,\n  \"benchmark\": \"scale\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"off_budget_ms\": %.0f,\n  \"sizes\": [\n" off_budget_ms);
  let nrows = List.length rows in
  List.iteri
    (fun i (pods, routers, on_e, on_s, on_t, on_v, q_devices, nclasses, on_pps, off) ->
      let off_json =
        match off with
        | Some (e, s, t, v, agree, off_pps) ->
          Printf.sprintf
            "{ \"status\": \"ok\", \"encode_ms\": %.2f, \"solve_ms\": %.2f, \"total_ms\": \
             %.2f, \"verdict\": %s, \"agrees_with_symmetry\": %b, \
             \"propagations_per_sec\": %.0f }"
            e s t (quote v) agree off_pps
        | None -> "{ \"status\": \"skipped_off_budget\" }"
      in
      let speedup =
        match off with
        | Some (_, _, t, _, _, _) -> Printf.sprintf ", \"speedup\": %.3f" (t /. on_t)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"pods\": %d, \"routers\": %d,\n      \"symmetry_on\": { \"encode_ms\": \
            %.2f, \"solve_ms\": %.2f, \"total_ms\": %.2f, \"verdict\": %s, \
            \"devices_encoded\": %d, \"classes\": %d, \"propagations_per_sec\": %.0f },\n      \
            \"symmetry_off\": %s%s }%s\n"
           pods routers on_e on_s on_t (quote on_v) q_devices nclasses on_pps off_json speedup
           (if i = nrows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  (match largest_both with
   | Some ((pods, _, _, _, _, _, _, _, _, _), speedup, _) ->
     Buffer.add_string buf
       (Printf.sprintf
          "  \"largest_both_modes_pods\": %d,\n  \"speedup_at_largest_both\": %.3f,\n" pods
          speedup)
   | None -> ());
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n}\n" agree_everywhere);
  let oc = open_out "BENCH_scale.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_scale.json";
  if not agree_everywhere then begin
    prerr_endline "bench scale: verdict divergence between quotient and full encodings";
    exit 1
  end;
  (* the ratio is only signal when the full-mode point is slow enough
     to measure, same floor convention as the solver/certify benches *)
  let floor_ms = 300.0 in
  let target = 2.0 in
  (match largest_both with
   | Some ((pods, _, _, _, _, _, _, _, _, _), speedup, off_total) ->
     if off_total >= floor_ms && speedup < target then begin
       Printf.eprintf
         "bench scale: speedup %.2fx at pods=%d below the %.1fx target (full %.1f ms)\n"
         speedup pods target off_total;
       exit 1
     end
     else if off_total < floor_ms then
       Printf.printf
         "   (speedup gate skipped: full encoding %.1f ms under the %.0f ms floor — \
          agreement still enforced)\n%!"
         off_total floor_ms
     else
       Printf.printf "   scale OK: identical verdicts, %.2fx at pods=%d\n%!" speedup pods
   | None -> print_endline "   (no size completed in both modes; agreement gate vacuous)")

(* ---------------- arena memory behavior ---------------- *)

(* The claims the arena refactor makes, measured and gated:

   1. Allocation-free propagation.  A long implication chain is solved
      repeatedly on one solver: after the first (warm-up) solve every
      internal vector is sized, so the later solves — one decision,
      then ~N propagations through the flat arena — are pure hot-loop
      work.  [Sat.minor_words] (a [Gc.minor_words] delta around each
      solve) divided by the propagation delta must stay near zero; the
      constant per-solve bookkeeping (a closure, a few refs) is why the
      ceiling is 0.05 words rather than exactly 0.

   2. The speedup the flat representation buys on real queries.  The
      hardest fig7-class query (enterprise no-loops) is answered
      all-off and all-on, interleaved, min over three passes each —
      interleaving decorrelates sustained machine noise from the
      ratio, a slow spell hits both sides: verdicts must agree and
      all-on must clear 2x above the noise floor.

   3. Compaction actually runs and stays bounded: a reduction-stressed
      pigeonhole solve must report at least one compaction and end with
      a mostly-live arena. *)
let arena_bench ~smoke () =
  print_endline "== arena SAT core: allocation, compaction and hot-query speedup ==";
  (* -- 1: steady-state allocation per propagation -- *)
  let n = if smoke then 50_000 else 200_000 in
  let s = Smt.Sat.create () in
  Smt.Sat.set_strategy s { Smt.Sat.default_strategy with Smt.Sat.default_phase = true };
  let v = Array.init n (fun _ -> Smt.Sat.new_var s) in
  for i = 0 to n - 2 do
    Smt.Sat.add_clause s [ Smt.Sat.neg_lit v.(i); Smt.Sat.pos_lit v.(i + 1) ]
  done;
  ignore (Smt.Sat.solve s);
  let props0 = Smt.Sat.num_propagations s and words0 = Smt.Sat.minor_words s in
  let repeats = 5 in
  for _ = 1 to repeats do
    ignore (Smt.Sat.solve s)
  done;
  let props = Smt.Sat.num_propagations s - props0 in
  let words = Smt.Sat.minor_words s -. words0 in
  let words_per_prop = if props = 0 then infinity else words /. float_of_int props in
  Printf.printf
    "   propagation: %d propagations over %d solves, %.0f minor words -> %.4f words/propagation\n%!"
    props repeats words words_per_prop;
  (* -- 2: hardest-query speedup, all-off vs all-on -- *)
  let routers = if smoke then 12 else if !full then 16 else 12 in
  let seed = 3 in
  let ent = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let run_once feats =
    let opts = MS.Options.with_features feats MS.Options.default in
    let enc = MS.Encode.build ent.G.Enterprise.network opts in
    let q = MS.Verify.Query.v "ent:no-loops" (fun enc -> MS.Property.no_loops enc ()) in
    MS.Verify.run_query enc q
  in
  let best rs =
    match rs with
    | [] -> assert false
    | r :: tl ->
      List.fold_left
        (fun (a : MS.Verify.Report.t) (b : MS.Verify.Report.t) ->
          if b.MS.Verify.Report.wall_ms < a.MS.Verify.Report.wall_ms then b else a)
        r tl
  in
  let passes = 3 in
  let offs = ref [] and ons = ref [] in
  for _ = 1 to passes do
    offs := run_once Smt.Solver.no_features :: !offs;
    ons := run_once Smt.Solver.default_features :: !ons
  done;
  let r_off = best !offs in
  let r_on = best !ons in
  let off_ms = r_off.MS.Verify.Report.wall_ms and on_ms = r_on.MS.Verify.Report.wall_ms in
  let verdict (r : MS.Verify.Report.t) =
    MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict
  in
  let agree = verdict r_off = verdict r_on in
  let arena_bytes (r : MS.Verify.Report.t) =
    r.MS.Verify.Report.stats.Smt.Solver.arena_words * (Sys.word_size / 8)
  in
  Printf.printf
    "   hardest query ent:no-loops (routers=%d): all-off %.1f ms, all-on %.1f ms -> %.2fx%s\n%!"
    routers off_ms on_ms (off_ms /. on_ms)
    (if agree then "" else "  !! verdicts diverge");
  Printf.printf "   arena: %d bytes all-off, %d bytes all-on, %d compaction(s) all-on\n%!"
    (arena_bytes r_off) (arena_bytes r_on)
    r_on.MS.Verify.Report.stats.Smt.Solver.arena_compactions;
  (* -- 3: compaction under reduction stress -- *)
  let sc = Smt.Sat.create () in
  Smt.Sat.set_max_learnts sc 3;
  let hole = 6 in
  let pv = Array.init (hole + 1) (fun _ -> Array.init hole (fun _ -> Smt.Sat.new_var sc)) in
  for p = 0 to hole do
    Smt.Sat.add_clause sc (List.init hole (fun h -> Smt.Sat.pos_lit pv.(p).(h)))
  done;
  for h = 0 to hole - 1 do
    for p1 = 0 to hole do
      for p2 = p1 + 1 to hole do
        Smt.Sat.add_clause sc [ Smt.Sat.neg_lit pv.(p1).(h); Smt.Sat.neg_lit pv.(p2).(h) ]
      done
    done
  done;
  let php_unsat = Smt.Sat.solve sc = Smt.Sat.Unsat in
  let compactions = Smt.Sat.num_compactions sc in
  let live_fraction =
    let total = Smt.Sat.arena_words sc in
    if total = 0 then 1.0
    else float_of_int (total - Smt.Sat.arena_wasted_words sc) /. float_of_int total
  in
  Printf.printf "   compaction stress: php(%d) %s, %d compactions, %.0f%% of arena live\n%!"
    hole
    (if php_unsat then "unsat" else "SAT (wrong!)")
    compactions (100.0 *. live_fraction);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n  \"benchmark\": \"arena\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"propagation\": { \"chain_vars\": %d, \"solves\": %d, \"propagations\": %d, \
        \"minor_words\": %.0f, \"words_per_propagation\": %.5f },\n"
       n repeats props words words_per_prop);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"hardest_query\": { \"label\": \"ent:no-loops\", \"routers\": %d, \
        \"all_off_ms\": %.2f, \"all_on_ms\": %.2f, \"speedup\": %.3f, \
        \"verdicts_agree\": %b, \"arena_bytes_all_on\": %d, \"compactions_all_on\": %d },\n"
       routers off_ms on_ms (off_ms /. on_ms) agree (arena_bytes r_on)
       r_on.MS.Verify.Report.stats.Smt.Solver.arena_compactions);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"compaction_stress\": { \"pigeonhole\": %d, \"unsat\": %b, \"compactions\": %d, \
        \"live_fraction\": %.3f }\n}\n"
       hole php_unsat compactions live_fraction);
  let oc = open_out "BENCH_arena.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_arena.json";
  if smoke then begin
    if not agree then begin
      prerr_endline "bench-arena-smoke: verdict divergence between all-off and all-on";
      exit 1
    end;
    if not php_unsat then begin
      prerr_endline "bench-arena-smoke: pigeonhole answered SAT under reduction stress";
      exit 1
    end;
    if compactions = 0 then begin
      prerr_endline "bench-arena-smoke: no arena compaction ran under reduction stress";
      exit 1
    end;
    let alloc_ceiling = 0.05 in
    if words_per_prop > alloc_ceiling then begin
      Printf.eprintf
        "bench-arena-smoke: %.4f minor words/propagation above the %.2f ceiling\n"
        words_per_prop alloc_ceiling;
      exit 1
    end;
    (* same noise-floor convention as the solver smoke *)
    let floor_ms = 300.0 in
    let target = 2.0 in
    if off_ms >= floor_ms && off_ms /. on_ms < target then begin
      Printf.eprintf
        "bench-arena-smoke: hardest-query speedup %.2fx below the %.1fx target (baseline %.1f \
         ms)\n"
        (off_ms /. on_ms) target off_ms;
      exit 1
    end;
    if off_ms < floor_ms then
      Printf.printf
        "   (speedup gate skipped: baseline %.1f ms under the %.0f ms floor — allocation and \
         agreement still enforced)\n%!"
        off_ms floor_ms
    else
      Printf.printf
        "   smoke OK: %.4f words/propagation, verdicts agree, hardest query %.2fx\n%!"
        words_per_prop (off_ms /. on_ms)
  end

(* ---------------- serve: delta re-verification vs cold daemons ---------------- *)

(* The verification-as-a-service loop an operator actually runs: load a
   network once, then per change push a [diff] and re-ask a suite of
   localized invariants.  The delta daemon migrates core-disjoint
   verdicts across each diff; ground truth (and the timing baseline) is
   a cold daemon that loads the same mutated text from scratch each
   step.  Gates: verdict agreement on every step (always), and under
   --smoke non-zero replay/cache counters plus a 2x wall-clock floor
   for the delta path when the diff touches <= 20% of the devices. *)

let serve_req fmt = Printf.ksprintf (fun s -> s) fmt

let serve_ask d line =
  let resp, _ = Serve.handle_line d line in
  match Msutil.Json.parse resp with
  | Error e -> failwith ("bench serve: unparseable response: " ^ e)
  | Ok v -> (
    match Option.bind (Msutil.Json.member "ok" v) Msutil.Json.get_bool with
    | Some true -> v
    | _ ->
      failwith
        ("bench serve: request failed: "
        ^ Option.value ~default:resp
            (Option.bind (Msutil.Json.member "error" v) Msutil.Json.get_string)))

let serve_int v k =
  match Option.bind (Msutil.Json.member k v) Msutil.Json.get_int with
  | Some n -> n
  | None -> failwith ("bench serve: response lacks " ^ k)

let serve_verdicts v =
  match Option.bind (Msutil.Json.member "reports" v) Msutil.Json.get_list with
  | None -> failwith "bench serve: query response lacks reports"
  | Some rs ->
    List.map
      (fun r ->
        ( Option.value ~default:"?" (Option.bind (Msutil.Json.member "label" r) Msutil.Json.get_string),
          Option.value ~default:"?" (Option.bind (Msutil.Json.member "verdict" r) Msutil.Json.get_string) ))
      rs

(* Deterministic ACL churn on one of the first two racks — the same
   mutation family as the differential test, kept to rack ACLs so the
   rest of the fleet's verdicts stay replayable. *)
let serve_mutate step (t : G.Enterprise.t) (net : A.network) =
  let racks = t.G.Enterprise.rack_role in
  let victim = List.nth racks (step mod min 2 (List.length racks)) in
  let subnet = t.G.Enterprise.rack_subnet victim in
  let mutate_acl (acl : A.acl) =
    if step mod 2 = 0 then
      {
        acl with
        A.acl_entries =
          acl.A.acl_entries
          @ [ { A.acl_action = A.Deny; acl_dst = Net.Prefix.make (Net.Prefix.first subnet) 32 } ];
      }
    else
      {
        acl with
        A.acl_entries =
          (match acl.A.acl_entries with
           | e :: rest ->
             { e with A.acl_action = (match e.A.acl_action with A.Permit -> A.Deny | A.Deny -> A.Permit) }
             :: rest
           | [] -> [ { A.acl_action = A.Deny; acl_dst = subnet } ]);
      }
  in
  {
    net with
    A.net_devices =
      List.map
        (fun (d : A.device) ->
          if d.A.dev_name <> victim then d
          else
            match d.A.dev_acls with
            | acl :: rest -> { d with A.dev_acls = mutate_acl acl :: rest }
            | [] ->
              { d with A.dev_acls = [ { A.acl_name = "90"; acl_entries = [ { A.acl_action = A.Deny; acl_dst = subnet } ] } ] })
        net.A.net_devices;
  }

let serve_bench ~smoke () =
  let routers = if !full then 20 else 14 in
  let steps = if !full then 6 else 4 in
  let seed = 11 in
  print_endline "== serve: delta re-verification vs cold full verification ==";
  let t = G.Enterprise.make ~seed ~routers ~inject:G.Enterprise.no_bugs () in
  let racks = t.G.Enterprise.rack_role in
  if List.length racks < 4 then failwith "bench serve: enterprise too small for a remote suite";
  (* the suite: ACL equivalence over consecutive pairs of racks the
     churn never touches — the invariants an operator re-checks after a
     change somewhere else *)
  let remote = List.filteri (fun i _ -> i >= 2) racks in
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  let suite = pairs remote in
  let query =
    serve_req {|{"schema":2,"op":"query","queries":[%s]}|}
      (String.concat ","
         (List.map
            (fun (a, b) ->
              serve_req {|{"property":"acl-equivalence","label":"eq-%s-%s","devices":["%s","%s"]}|} a b a b)
            suite))
  in
  let req_load text = serve_req {|{"schema":2,"op":"load","config":%s}|} (Msutil.Json.quote text) in
  let req_diff text = serve_req {|{"schema":2,"op":"diff","config":%s}|} (Msutil.Json.quote text) in
  let base_text = Config.Printer.network_to_string t.G.Enterprise.network in
  let delta = Serve.create MS.Options.default in
  ignore (serve_ask delta (req_load base_text));
  let (_ : 'a), warm_ms = time (fun () -> serve_ask delta query) in
  Printf.printf "   %d devices, %d-query suite, warm solve %.1f ms\n%!" routers (List.length suite) warm_ms;
  let net = ref t.G.Enterprise.network in
  let rows = ref [] in
  let agree_all = ref true in
  let delta_total = ref 0.0 and full_total = ref 0.0 in
  for step = 0 to steps - 1 do
    net := serve_mutate step t !net;
    let text = Config.Printer.network_to_string !net in
    let (dresp, got), delta_ms =
      time (fun () ->
          let dresp = serve_ask delta (req_diff text) in
          (dresp, serve_verdicts (serve_ask delta query)))
    in
    let want, full_ms =
      time (fun () ->
          let cold = Serve.create MS.Options.default in
          ignore (serve_ask cold (req_load text));
          serve_verdicts (serve_ask cold query))
    in
    let agree = got = want in
    if not agree then agree_all := false;
    let mode =
      Option.value ~default:"?" (Option.bind (Msutil.Json.member "mode" dresp) Msutil.Json.get_string)
    in
    let replayed = serve_int dresp "replayed" in
    delta_total := !delta_total +. delta_ms;
    full_total := !full_total +. full_ms;
    Printf.printf "   step %d: %s diff, %d replayed, delta %.1f ms vs full %.1f ms%s\n%!" step
      mode replayed delta_ms full_ms
      (if agree then "" else "  ** VERDICTS DIVERGE **");
    rows := (step, mode, replayed, delta_ms, full_ms, agree) :: !rows
  done;
  (* A -> B -> A flap: reloading the base text must hit the encoding cache *)
  ignore (serve_ask delta (req_load base_text));
  ignore (serve_ask delta query);
  let stats = serve_ask delta {|{"schema":2,"op":"stats"}|} in
  let replays = serve_int stats "delta_replays" in
  let verdict_hits = serve_int stats "verdict_hits" in
  let enc_hits = serve_int stats "enc_cache_hits" in
  let speedup = !full_total /. !delta_total in
  Printf.printf
    "   totals: delta %.1f ms, full %.1f ms (%.1fx); %d replays, %d verdict hits, %d encoding \
     cache hits\n%!"
    !delta_total !full_total speedup replays verdict_hits enc_hits;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 2,\n  \"benchmark\": \"serve\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"network\": { \"kind\": \"enterprise\", \"seed\": %d, \"routers\": %d },\n" seed routers);
  Buffer.add_string buf
    (Printf.sprintf "  \"suite\": { \"queries\": %d, \"kind\": \"localized acl-equivalence\" },\n"
       (List.length suite));
  Buffer.add_string buf (Printf.sprintf "  \"warm_solve_ms\": %.2f,\n" warm_ms);
  Buffer.add_string buf "  \"steps\": [\n";
  List.iteri
    (fun i (step, mode, replayed, dms, fms, agree) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"step\": %d, \"mode\": \"%s\", \"replayed\": %d, \"delta_ms\": %.2f, \
            \"full_ms\": %.2f, \"verdicts_agree\": %b }%s\n"
           step mode replayed dms fms agree
           (if i = List.length !rows - 1 then "" else ",")))
    (List.rev !rows);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"delta_total_ms\": %.2f,\n" !delta_total);
  Buffer.add_string buf (Printf.sprintf "  \"full_total_ms\": %.2f,\n" !full_total);
  Buffer.add_string buf (Printf.sprintf "  \"speedup\": %.3f,\n" speedup);
  Buffer.add_string buf (Printf.sprintf "  \"delta_replays\": %d,\n" replays);
  Buffer.add_string buf (Printf.sprintf "  \"verdict_cache_hits\": %d,\n" verdict_hits);
  Buffer.add_string buf (Printf.sprintf "  \"encoding_cache_hits\": %d,\n" enc_hits);
  Buffer.add_string buf (Printf.sprintf "  \"verdicts_agree\": %b\n}\n" !agree_all);
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "   wrote BENCH_serve.json";
  (* the correctness gate is unconditional: replayed verdicts must be
     indistinguishable from freshly solved ones *)
  if not !agree_all then begin
    prerr_endline "bench serve: delta daemon diverged from full verification";
    exit 1
  end;
  if smoke then begin
    if replays = 0 then begin
      prerr_endline "bench-serve-smoke: no verdict was replayed across a diff";
      exit 1
    end;
    if verdict_hits = 0 || enc_hits = 0 then begin
      Printf.eprintf "bench-serve-smoke: cache hits missing (verdict %d, encoding %d)\n"
        verdict_hits enc_hits;
      exit 1
    end;
    (* same noise-floor convention as the other smokes: the 2x floor is
       only meaningful when the full path costs enough to measure *)
    let floor_ms = 50.0 in
    let target = 2.0 in
    if !full_total >= floor_ms && speedup < target then begin
      Printf.eprintf "bench-serve-smoke: delta %.2fx below the %.1fx floor (full %.1f ms)\n"
        speedup target !full_total;
      exit 1
    end;
    if !full_total < floor_ms then
      Printf.printf
        "   (speedup gate skipped: full path %.1f ms under the %.0f ms floor — agreement and \
         cache gates still enforced)\n%!"
        !full_total floor_ms
    else Printf.printf "   smoke OK: verdicts agree, %d replays, delta %.2fx\n%!" replays speedup
  end

(* ---------------- Bechamel micro-benchmarks ---------------- *)

let micro () =
  print_endline "== SMT substrate micro-benchmarks (Bechamel, monotonic clock) ==";
  let open Bechamel in
  let sat_test =
    Test.make ~name:"sat: pigeonhole 5 into 4"
      (Staged.stage (fun () ->
           let s = Smt.Sat.create () in
           let v = Array.init 5 (fun _ -> Array.init 4 (fun _ -> Smt.Sat.new_var s)) in
           for p = 0 to 4 do
             Smt.Sat.add_clause s (List.init 4 (fun h -> Smt.Sat.pos_lit v.(p).(h)))
           done;
           for h = 0 to 3 do
             for p1 = 0 to 4 do
               for p2 = p1 + 1 to 4 do
                 Smt.Sat.add_clause s [ Smt.Sat.neg_lit v.(p1).(h); Smt.Sat.neg_lit v.(p2).(h) ]
               done
             done
           done;
           ignore (Smt.Sat.solve s)))
  in
  let idl_test =
    Test.make ~name:"idl: 200-var chain"
      (Staged.stage (fun () ->
           let cs = List.init 199 (fun i -> { Smt.Idl.x = i + 1; y = i; k = 1; tag = i }) in
           ignore (Smt.Idl.check ~nvars:200 cs)))
  in
  let encode_test =
    Test.make ~name:"encode: fattree pods=4"
      (Staged.stage (fun () ->
           let ft = G.Fattree.make ~pods:4 in
           ignore (MS.Encode.build ft.G.Fattree.network MS.Options.default)))
  in
  let run_test t =
    let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
    let measure = Toolkit.Instance.monotonic_clock in
    let raw = Benchmark.all cfg [ measure ] t in
    let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
    let results = Analyze.all ols measure raw in
    Hashtbl.iter
      (fun name r ->
        match Analyze.OLS.estimates r with
        | Some (est :: _) -> Printf.printf "  %-28s %14.1f ns/run\n%!" name est
        | Some [] | None -> ())
      results
  in
  List.iter run_test [ sat_test; idl_test; encode_test ];
  (* Accumulated statistics of one incremental solver across a small
     session: bound a difference-logic chain, then probe it three times
     under increasingly tight assumptions. *)
  let module T = Smt.Term in
  let module Solver = Smt.Solver in
  let s = Solver.create ~incremental:true () in
  let xs = Array.init 40 (fun i -> T.var (Printf.sprintf "micro!x%d" i) Smt.Sort.Int) in
  for i = 0 to 38 do
    Solver.assert_term s (T.lt xs.(i) xs.(i + 1))
  done;
  Solver.assert_term s (T.leq (T.int_const 0) xs.(0));
  List.iter
    (fun bound -> ignore (Solver.check s ~assumptions:[ T.leq xs.(39) (T.int_const bound) ]))
    [ 100; 39; 38 ];
  let st = Solver.stats s in
  Printf.printf
    "  incremental session: %d checks, %d conflicts, %d decisions, %d propagations, %d learned \
     clauses, %d restarts\n\
     %!"
    st.Solver.checks st.Solver.conflicts st.Solver.decisions st.Solver.propagations
    st.Solver.learned_clauses st.Solver.restarts

let () =
  let args = Array.to_list Sys.argv in
  full := List.mem "--full" args;
  let smoke = List.mem "--smoke" args in
  let which =
    match List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) (List.tl args) with
    | [] -> "all"
    | w :: _ -> w
  in
  let t0 = Unix.gettimeofday () in
  (match which with
   | "fig7" -> fig7 ()
   | "fig8" -> fig8 ()
   | "opts" -> opts_bench ()
   | "violations" -> violations ()
   | "micro" -> micro ()
   | "batch" -> batch ~smoke ()
   | "parallel" -> parallel ~smoke ()
   | "solver" -> solver_bench ~smoke ()
   | "certify" -> certify_bench ~smoke ()
   | "scale" -> scale ~smoke ()
   | "arena" -> arena_bench ~smoke ()
   | "serve" -> serve_bench ~smoke ()
   | "all" ->
     fig7 ();
     print_newline ();
     fig8 ();
     print_newline ();
     opts_bench ();
     print_newline ();
     violations ();
     print_newline ();
     batch ~smoke ();
     print_newline ();
     parallel ~smoke ();
     print_newline ();
     solver_bench ~smoke ();
     print_newline ();
     certify_bench ~smoke ();
     print_newline ();
     scale ~smoke ();
     print_newline ();
     arena_bench ~smoke ();
     print_newline ();
     serve_bench ~smoke ();
     print_newline ();
     micro ()
   | other ->
     Printf.eprintf
       "unknown benchmark %s (fig7|fig8|opts|violations|batch|parallel|solver|certify|scale|arena|serve|micro|all)\n"
       other;
     exit 2);
  Printf.printf "\ntotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
