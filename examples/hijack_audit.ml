(* Security audit in the style of §8.1: scan a fleet of enterprise
   networks for management interfaces that an external neighbor could
   hijack with crafted announcements, and print the offending
   announcement for each violation.

   Run with: dune exec examples/hijack_audit.exe -- [count] *)

module MS = Minesweeper

(* the Query/Report API reduced to the bare outcome these examples print *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
module G = Generators
module A = Config.Ast

let () =
  let count = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6 in
  (* a slice of the 152-network fleet: mixed clean and buggy networks *)
  let networks =
    List.filteri (fun i _ -> i mod (152 / count) = 0) (G.Enterprise.fleet ())
  in
  let audited = ref 0 and violations = ref 0 in
  List.iter
    (fun (t : G.Enterprise.t) ->
      incr audited;
      let net = t.G.Enterprise.network in
      let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
      (* check the management interface of the "farthest" device *)
      let target = List.hd (List.rev devices) in
      let enc = MS.Encode.build net MS.Options.default in
      let prop =
        MS.Property.reachability enc ~sources:devices
          (MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target))
      in
      let lines = Config.Printer.network_config_lines net in
      match verify_check enc prop with
      | MS.Verify.Holds ->
        Printf.printf "network %2d (%2d routers, %5d lines): management access verified\n%!"
          !audited (List.length devices) lines
      | MS.Verify.Violation cx ->
        incr violations;
        Printf.printf "network %2d (%2d routers, %5d lines): HIJACKABLE\n" !audited
          (List.length devices) lines;
        List.iter
          (fun (a : MS.Counterexample.announcement) ->
            Printf.printf "    %s <- %s announces a /%d covering %s\n" a.MS.Counterexample.cx_at
              a.cx_peer a.cx_plen
              (Net.Ipv4.to_string cx.MS.Counterexample.dst_ip))
          cx.MS.Counterexample.announcements)
    networks;
  Printf.printf "\naudited %d networks: %d hijackable management planes\n" !audited !violations
