(* The running example of the paper (Figure 2): three internal routers
   running OSPF, R1 and R2 speaking eBGP to external neighbors N1-N3 and
   iBGP to each other, with BGP redistributed into OSPF so that R3 can
   reach external destinations.

   R2 prefers routes through N3 over N2 over N1 (local preference set on
   import); R1 demotes N3-tagged routes learned over iBGP.  The paper's
   question: does S3 (behind R3) use N1 for external destinations even
   when all three neighbors advertise?  The answer depends on reasoning
   about interactions among all paths - exactly what the graph-based
   encoding does.

   Run with: dune exec examples/paper_example.exe *)

module MS = Minesweeper

(* the Query/Report API reduced to the bare outcome these examples print *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
module T = Smt.Term
module P = Net.Prefix

let config =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 192.168.13.1/30
interface n1
 ip address 192.168.101.1/30
interface s1
 ip address 10.1.0.1/24
route-map FROM_N1 permit 10
 set local-preference 100
route-map FROM_IBGP permit 10
 match community 65000:3
 set local-preference 90
route-map FROM_IBGP permit 20
!
router bgp 65000
 network 10.1.0.0/24
 neighbor 192.168.101.2 remote-as 64601
 neighbor 192.168.101.2 route-map FROM_N1 in
 neighbor 192.168.12.2 remote-as 65000
 neighbor 192.168.12.2 route-map FROM_IBGP in
router ospf 1
 network 192.168.0.0/16
 network 10.1.0.0/24
 redistribute bgp metric 20
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 192.168.23.1/30
interface n2
 ip address 192.168.102.1/30
interface n3
 ip address 192.168.103.1/30
interface s2
 ip address 10.2.0.1/24
route-map FROM_N2 permit 10
 set local-preference 120
 set community 65000:2
route-map FROM_N3 permit 10
 set local-preference 130
 set community 65000:3
!
router bgp 65000
 network 10.2.0.0/24
 neighbor 192.168.102.2 remote-as 64602
 neighbor 192.168.102.2 route-map FROM_N2 in
 neighbor 192.168.103.2 remote-as 64603
 neighbor 192.168.103.2 route-map FROM_N3 in
 neighbor 192.168.12.1 remote-as 65000
router ospf 1
 network 192.168.0.0/16
 network 10.2.0.0/24
 redistribute bgp metric 30
!
hostname R3
interface e0
 ip address 192.168.13.2/30
interface e1
 ip address 192.168.23.2/30
interface s3
 ip address 10.3.0.1/24
router ospf 1
 network 192.168.0.0/16
 network 10.3.0.0/24
|}

let n1 = "peer:192.168.101.2"
let n2 = "peer:192.168.102.2"
let n3 = "peer:192.168.103.2"

let all_announce enc =
  (* every neighbor advertises a route for the destination *)
  List.concat_map
    (fun d ->
      List.map
        (fun (p, _) ->
          let r = MS.Encode.env_record enc d p in
          T.and_
            [
              r.MS.Sym_record.valid;
              T.eq r.MS.Sym_record.metric (T.int_const 1);
              T.eq r.MS.Sym_record.plen (T.int_const 8);
            ])
        (MS.Encode.external_peers enc d))
    (MS.Encode.devices enc)

let () =
  let net = Config.Parser.parse_network config in
  let enc = MS.Encode.build net MS.Options.default in
  Printf.printf "encoded: %d assertions\n%!" (List.length (MS.Encode.assertions enc));
  (* Destination: any external address (dst outside all internal space),
     announced by all three neighbors with equal AS-path length. *)
  let reach_n1, defs1 = MS.Property.reach_terms enc (MS.Property.External_peer n1) in
  let reach_n2, defs2 = MS.Property.reach_terms enc (MS.Property.External_peer n2) in
  let reach_n3, defs3 = MS.Property.reach_terms enc (MS.Property.External_peer n3) in
  let external_dst =
    List.concat_map
      (fun d ->
        List.map
          (fun p -> T.not_ (MS.Packet.dst_in_prefix (MS.Encode.packet enc) p))
          (MS.Encode.subnets enc d))
      (MS.Encode.devices enc)
  in
  let prop =
    {
      MS.Property.instrumentation = defs1 @ defs2 @ defs3;
      assumptions = all_announce enc @ external_dst;
      goal =
        T.and_
          [ reach_n1 "R3"; T.not_ (reach_n2 "R3"); T.not_ (reach_n3 "R3") ];
    }
  in
  match verify_check enc prop with
  | MS.Verify.Holds ->
    print_endline "verified: when N1, N2 and N3 all advertise, S3's traffic exits via N1";
    print_endline "(R2 picks N3 for itself, R1 demotes the N3 route and so prefers N1)"
  | MS.Verify.Violation cx ->
    print_endline "violated - counterexample:";
    print_string (MS.Counterexample.to_string cx)
