(* Quickstart: parse a two-router configuration, verify reachability for
   every packet and environment, and show a counterexample for a
   property that fails.

   Run with: dune exec examples/quickstart.exe *)

module MS = Minesweeper

(* the Query/Report API reduced to the bare outcome these examples print *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
module P = Net.Prefix

let config =
  {|hostname left
interface e0
 ip address 192.168.0.1/30
interface lan
 ip address 10.1.0.1/24
router ospf 1
 network 0.0.0.0/0
!
hostname right
interface e0
 ip address 192.168.0.2/30
interface lan
 ip address 10.2.0.1/24
 ip access-group GUARD out
access-list GUARD deny ip any 10.2.0.128/25
access-list GUARD permit ip any any
router ospf 1
 network 0.0.0.0/0
|}

let () =
  (* 1. parse the configurations (topology inferred from subnets) *)
  let net = Config.Parser.parse_network config in
  Printf.printf "parsed %d devices, %d links\n"
    (List.length net.Config.Ast.net_devices)
    (Net.Topology.num_links net.Config.Ast.net_topology);

  (* 2. build the symbolic encoding: one formula capturing every stable
     state, every packet, every environment *)
  let enc = MS.Encode.build net MS.Options.default in

  (* 3. verify: can [left] always reach the unfiltered half of the LAN? *)
  let reachable_half = MS.Property.Subnet ("right", P.of_string "10.2.0.0/25") in
  (match verify_check enc (MS.Property.reachability enc ~sources:[ "left" ] reachable_half) with
   | MS.Verify.Holds -> print_endline "10.2.0.0/25: reachable from left (verified)"
   | MS.Verify.Violation _ -> print_endline "10.2.0.0/25: unexpectedly not reachable");

  (* 4. the ACL blocks the other half - the verifier produces a packet
     demonstrating the violation *)
  let enc2 = MS.Encode.build net MS.Options.default in
  let filtered_half = MS.Property.Subnet ("right", P.of_string "10.2.0.0/24") in
  match verify_check enc2 (MS.Property.reachability enc2 ~sources:[ "left" ] filtered_half) with
  | MS.Verify.Holds -> print_endline "10.2.0.0/24: reachable (unexpected!)"
  | MS.Verify.Violation cx ->
    Printf.printf "10.2.0.0/24: violated as expected; counterexample packet dst=%s\n"
      (Net.Ipv4.to_string cx.MS.Counterexample.dst_ip)
