(* Data-center verification (the Figure 8 scenario at small scale):
   generate a folded-Clos fabric running eBGP with multipath, then check
   the properties the paper evaluates - reachability, bounded path
   length ("no valley routing"), equal-length paths, and multipath
   consistency.

   Run with: dune exec examples/datacenter.exe -- [pods] *)

module MS = Minesweeper

(* the Query/Report API reduced to the bare outcome these examples print *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
module G = Generators

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let report name (outcome, ms) =
  Printf.printf "  %-28s %-10s %8.1f ms\n%!" name
    (match outcome with MS.Verify.Holds -> "verified" | MS.Verify.Violation _ -> "VIOLATED")
    ms

let () =
  let pods =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4
  in
  let ft = G.Fattree.make ~pods in
  Printf.printf "folded-Clos fabric: %d pods, %d routers, %d links\n%!" pods
    (List.length ft.G.Fattree.network.Config.Ast.net_devices)
    (Net.Topology.num_links ft.G.Fattree.network.Config.Ast.net_topology);
  let dst_tor = List.hd ft.G.Fattree.tors in
  let sources = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  Printf.printf "destination: %s (%s)\n%!" dst_tor
    (Net.Prefix.to_string (ft.G.Fattree.tor_subnet dst_tor));
  let check name prop =
    let enc = MS.Encode.build ft.G.Fattree.network MS.Options.default in
    report name (time (fun () -> verify_check enc (prop enc)))
  in
  check "all-ToR reachability" (fun enc -> MS.Property.reachability enc ~sources dest);
  check "bounded length (4 hops)" (fun enc ->
      MS.Property.bounded_length enc ~sources dest ~bound:4);
  (* equal lengths only across ToRs of one pod away from the destination
     (same-pod ToRs are legitimately closer) *)
  let other_pod_tors =
    List.filter
      (fun t -> match String.split_on_char '_' t with [ _; p; _ ] -> p = "1" | _ -> false)
      ft.G.Fattree.tors
  in
  (match other_pod_tors with
   | _ :: _ :: _ ->
     check "equal-length paths (pod 1)" (fun enc ->
         MS.Property.equal_lengths enc ~sources:other_pod_tors dest)
   | _ -> ());
  check "multipath consistency" (fun enc -> MS.Property.multipath_consistency enc dest);
  check "no blackholes" (fun enc ->
      MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores ())
