(* Tests for the independent proof checker and verdict certification.

   The checker must accept real solver traces end to end — and, just as
   importantly, must be falsifiable: hand-crafted invalid proofs (a
   bogus RUP step, a use of a deleted clause, a deletion of an absent
   clause, a mis-justified theory lemma, a bogus purity claim) are all
   rejected, and so is a genuine trace with an input clause removed. *)

module MS = Minesweeper
module G = Generators
module T = Smt.Term
module Sat = Smt.Sat
module Solver = Smt.Solver
module Checker = Proof.Checker
module Certify = Proof.Certify

(* checker literal convention: variable v is 2v positively, 2v+1 negatively *)
let p v = 2 * v
let n v = (2 * v) + 1

let run ?theory ?(goal = Checker.Empty) steps = Checker.run ?theory ~goal steps

let expect_ok name = function
  | Ok (s : Checker.summary) -> s
  | Error msg -> Alcotest.failf "%s: checker rejected a valid proof: %s" name msg

let expect_error name substring = function
  | Ok (_ : Checker.summary) -> Alcotest.failf "%s: checker accepted an invalid proof" name
  | Error msg ->
    let re = Str.regexp_string substring in
    (try ignore (Str.search_forward re msg 0)
     with Not_found ->
       Alcotest.failf "%s: rejection %S does not mention %S" name msg substring)

(* ---- hand-crafted traces ---- *)

let test_valid_resolution () =
  let s =
    expect_ok "resolution"
      (run
         [
           Sat.P_input [| p 1 |];
           Sat.P_input [| n 1; p 2 |];
           Sat.P_input [| n 2 |];
           Sat.P_rup [||];
         ])
  in
  Alcotest.(check int) "inputs" 3 s.Checker.inputs;
  Alcotest.(check int) "rup steps" 1 s.Checker.rup_checked

let test_goal_without_explicit_empty () =
  (* contradictory root units conflict when the goal is checked, even
     with no explicit empty-clause step *)
  ignore
    (expect_ok "root conflict" (run [ Sat.P_input [| p 1 |]; Sat.P_input [| n 1 |] ]))

let test_rejects_bogus_rup () =
  expect_error "bogus rup" "not RUP"
    (run [ Sat.P_input [| p 1; p 2 |]; Sat.P_rup [| p 1 |] ])

let test_rejects_deleted_then_used () =
  (* no root units anywhere, so the deletion cannot hide behind
     propagate-before-delete semantics *)
  let cnf = [ Sat.P_input [| p 1; p 2 |]; Sat.P_input [| n 1; p 3 |]; Sat.P_input [| n 2; p 3 |] ] in
  (* control: with all three clauses alive, [c] is RUP *)
  ignore
    (expect_ok "control"
       (run ~goal:(Checker.Assumptions [ n 3 ]) (cnf @ [ Sat.P_rup [| p 3 |] ])));
  (* deleting an antecedent first must break the derivation *)
  expect_error "deleted then used" "not RUP"
    (run (cnf @ [ Sat.P_delete [| n 1; p 3 |]; Sat.P_rup [| p 3 |] ]))

let test_rejects_absent_deletion () =
  expect_error "absent deletion" "not in the active set"
    (run [ Sat.P_input [| p 1; p 2 |]; Sat.P_delete [| p 1 |] ]);
  (* deleting the same clause twice: second kill has no alive copy *)
  expect_error "double deletion" "not in the active set"
    (run [ Sat.P_input [| p 1; p 2 |]; Sat.P_delete [| p 1; p 2 |]; Sat.P_delete [| p 2; p 1 |] ])

let test_rejects_bad_lemma () =
  (* default theory callback rejects every lemma *)
  expect_error "lemma, no theory" "rejected" (run [ Sat.P_lemma [| p 1; p 2 |] ]);
  (* an explicit revalidator that declines *)
  expect_error "lemma, declined" "no such lemma"
    (run ~theory:(fun _ -> Error "no such lemma") [ Sat.P_lemma [| p 1; p 2 |] ]);
  (* and one that accepts: the lemma joins the active set and resolves *)
  ignore
    (expect_ok "lemma accepted"
       (run
          ~theory:(fun _ -> Ok ())
          [
            Sat.P_lemma [| p 1 |];
            Sat.P_input [| n 1; p 2 |];
            Sat.P_input [| n 2 |];
            Sat.P_rup [||];
          ]))

let test_purity () =
  (* p2 occurs only positively: pure.  p1 occurs in both phases: not. *)
  expect_error "impure literal" "not pure"
    (run [ Sat.P_input [| p 1; p 2 |]; Sat.P_input [| n 1; p 2 |]; Sat.P_pure (p 1) ]);
  ignore
    (expect_ok "pure literal"
       (run
          ~goal:(Checker.Assumptions [ n 2 ])
          [ Sat.P_input [| p 1; p 2 |]; Sat.P_input [| n 1; p 2 |]; Sat.P_pure (p 2) ]))

let test_assumption_goal_unrefuted () =
  expect_error "assumptions not refuted" "not refuted"
    (run ~goal:(Checker.Assumptions [ p 1 ]) [ Sat.P_input [| p 1; p 2 |] ])

(* ---- real SAT-core traces ---- *)

(* Pigeonhole PHP(holes+1, holes): minimally unsatisfiable, forces real
   conflict analysis, and every input clause is load-bearing. *)
let pigeonhole_trace holes =
  let s = Sat.create () in
  Sat.enable_proof s;
  let var = Array.make_matrix (holes + 1) holes 0 in
  for i = 0 to holes do
    for j = 0 to holes - 1 do
      var.(i).(j) <- Sat.new_var s
    done
  done;
  for i = 0 to holes do
    Sat.add_clause s (List.init holes (fun j -> Sat.pos_lit var.(i).(j)))
  done;
  for j = 0 to holes - 1 do
    for i = 0 to holes do
      for i' = i + 1 to holes do
        Sat.add_clause s [ Sat.neg_lit var.(i).(j); Sat.neg_lit var.(i').(j) ]
      done
    done
  done;
  (match Sat.solve s with
   | Sat.Unsat -> ()
   | Sat.Sat -> Alcotest.fail "pigeonhole formula is satisfiable?");
  Sat.proof_steps s

let test_sat_core_trace_checks () =
  let trace = pigeonhole_trace 4 in
  let s = expect_ok "php" (run trace) in
  if s.Checker.rup_checked = 0 then
    Alcotest.fail "pigeonhole solve produced no checked derivation steps"

let test_tampered_trace_rejected () =
  let trace = pigeonhole_trace 4 in
  (* drop the first input clause: the remaining CNF is satisfiable, so
     no honest completion can reach the empty clause *)
  let tampered =
    let dropped = ref false in
    List.filter
      (fun step ->
        match step with
        | Sat.P_input _ when not !dropped ->
          dropped := true;
          false
        | _ -> true)
      trace
  in
  match run tampered with
  | Ok _ -> Alcotest.fail "checker accepted a trace with an input clause removed"
  | Error _ -> ()

(* ---- solver-level certification ---- *)

let test_certify_unsat_with_theory_lemmas () =
  let solver = Solver.create ~certify:true () in
  let x = T.var "x" Smt.Sort.Int and y = T.var "y" Smt.Sort.Int in
  Solver.assert_term solver (T.lt x y);
  Solver.assert_term solver (T.lt y x);
  (match Solver.check solver with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "x<y, y<x should be unsat");
  match Certify.unsat solver with
  | Error msg -> Alcotest.failf "certification failed: %s" msg
  | Ok s ->
    if s.Certify.lemmas = 0 then
      Alcotest.fail "difference-logic refutation certified without any theory lemma"

let test_certify_model () =
  let solver = Solver.create ~certify:true () in
  let x = T.var "x" Smt.Sort.Int and y = T.var "y" Smt.Sort.Int in
  Solver.assert_term solver (T.lt x y);
  Solver.assert_term solver (T.leq y (T.add x (T.int_const 5)));
  match Solver.check solver with
  | Solver.Unsat -> Alcotest.fail "x<y<=x+5 should be sat"
  | Solver.Sat m -> (
    match Certify.model solver m with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "model certification failed: %s" msg)

let test_uncertified_solver_refuses () =
  let solver = Solver.create () in
  Solver.assert_term solver (T.fls);
  (match Solver.check solver with Solver.Unsat -> () | Solver.Sat _ -> Alcotest.fail "false is sat?");
  match Certify.unsat solver with
  | Ok _ -> Alcotest.fail "certified a solver that recorded no trace"
  | Error _ -> ()

let test_lemma_over_non_atoms_rejected () =
  (* a revalidator is bound to one solver's atom registry: a lemma
     naming variables that are no theory atoms there must be rejected *)
  let solver = Solver.create ~certify:true () in
  Solver.assert_term solver (T.var "b" Smt.Sort.Bool);
  (match Solver.check solver with Solver.Sat _ -> () | Solver.Unsat -> Alcotest.fail "b is unsat?");
  match Certify.theory_revalidator solver [| p 0; n 1 |] with
  | Ok () -> Alcotest.fail "revalidator justified a lemma over non-atoms"
  | Error _ -> ()

(* ---- full-stack certification on generated networks ---- *)

let certified_or_fail name (r : MS.Verify.Report.t) =
  match (r.MS.Verify.Report.verdict, r.MS.Verify.Report.certificate) with
  | MS.Verify.Report.Verified, MS.Verify.Report.Checked_unsat_proof { clauses; _ } ->
    if clauses < 0 then Alcotest.fail "negative clause count"
  | MS.Verify.Report.Violated _, MS.Verify.Report.Checked_model -> ()
  | (MS.Verify.Report.Timeout | MS.Verify.Report.Error _), _ ->
    Alcotest.failf "%s: %s unexpectedly timed out/errored" name r.MS.Verify.Report.label
  | _, c ->
    Alcotest.failf "%s: %s got verdict %s but certificate %s" name r.MS.Verify.Report.label
      (MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict)
      (match c with
       | MS.Verify.Report.Certification_failed msg -> "certification_failed: " ^ msg
       | c -> MS.Verify.Report.certificate_name c)

let fattree_queries ft =
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  [
    MS.Verify.Query.v "reachability" (fun enc ->
        MS.Property.reachability enc ~sources:other_tors dest);
    MS.Verify.Query.v "no-loops" (fun enc -> MS.Property.no_loops enc ());
    (* isolation between connected tors is false: exercises the
       Sat/model/replay path *)
    MS.Verify.Query.v "isolation-should-fail" (fun enc ->
        MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest);
  ]

let test_certified_fattree_queries () =
  let ft = G.Fattree.make ~pods:2 in
  let opts = MS.Options.with_certify MS.Options.default in
  let enc = MS.Encode.build ft.G.Fattree.network opts in
  List.iter
    (fun q -> certified_or_fail "fattree" (MS.Verify.run_query enc q))
    (fattree_queries ft)

let test_certified_enterprise_session () =
  let t = G.Enterprise.make ~seed:5 ~routers:6 ~inject:G.Enterprise.no_bugs () in
  let net = t.G.Enterprise.network in
  let devices =
    List.map (fun (d : Config.Ast.device) -> d.Config.Ast.dev_name) net.Config.Ast.net_devices
  in
  let target = List.hd (List.rev devices) in
  let dest = MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target) in
  let opts = MS.Options.with_certify MS.Options.default in
  let session = MS.Verify.Session.create net opts in
  let queries =
    [
      MS.Verify.Query.v "mgmt-reachability" (fun enc ->
          MS.Property.reachability enc ~sources:devices dest);
      MS.Verify.Query.v "no-loops" (fun enc -> MS.Property.no_loops enc ());
      MS.Verify.Query.v "isolation-should-fail" (fun enc ->
          MS.Property.isolation enc ~sources:[ List.hd devices ] dest);
      (* repeat the first query: certification over a session trace that
         spans retired activation literals *)
      MS.Verify.Query.v "mgmt-reachability-again" (fun enc ->
          MS.Property.reachability enc ~sources:devices dest);
    ]
  in
  List.iter (fun r -> certified_or_fail "enterprise session" r)
    (MS.Verify.Session.run session queries)

let test_exit_code_4 () =
  let mk label verdict certificate =
    {
      MS.Verify.Report.label;
      verdict;
      certificate;
      wall_ms = 1.0;
      stats = MS.Verify.Report.empty_stats;
      worker = 0;
      strategy = None;
      support = None;
      replayed = false;
      method_ = None;
    }
  in
  let ok = mk "a" MS.Verify.Report.Verified MS.Verify.Report.Checked_model in
  let failed = mk "c" MS.Verify.Report.Verified (MS.Verify.Report.Certification_failed "bogus") in
  let timeout = mk "d" MS.Verify.Report.Timeout MS.Verify.Report.Uncertified in
  Alcotest.(check int) "all ok" 0 (MS.Verify.Report.exit_code [ ok ]);
  Alcotest.(check int) "timeout" 3 (MS.Verify.Report.exit_code [ ok; timeout ]);
  Alcotest.(check int)
    "certification failure dominates" 4
    (MS.Verify.Report.exit_code [ ok; timeout; failed ])

(* ---- session fork guard ---- *)

let test_session_fork_guard () =
  let ft = G.Fattree.make ~pods:2 in
  let session = MS.Verify.Session.create ft.G.Fattree.network MS.Options.default in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  let prop enc = MS.Property.reachability enc ~sources:[ List.nth ft.G.Fattree.tors 1 ] dest in
  (* parent use before the fork is fine *)
  ignore (MS.Verify.Session.run_one session (MS.Verify.Query.v "pre-fork" prop));
  flush stdout;
  flush stderr;
  (match Unix.fork () with
   | 0 ->
     (* child: the session belongs to the parent; using it must fail
        fast rather than corrupt the shared-by-copy assumption stack *)
     let code =
       match MS.Verify.Session.run_one session (MS.Verify.Query.v "post-fork" prop) with
       | exception Invalid_argument _ -> 0
       | exception _ -> 1
       | _ -> 2
     in
     Unix._exit code
   | pid -> (
     match Unix.waitpid [] pid with
     | _, Unix.WEXITED 0 -> ()
     | _, Unix.WEXITED 2 -> Alcotest.fail "forked child used the parent's session unguarded"
     | _, _ -> Alcotest.fail "forked child died unexpectedly"));
  (* the parent's session is still usable after the child's attempt *)
  ignore (MS.Verify.Session.run_one session (MS.Verify.Query.v "post-child" prop))

let () =
  Alcotest.run "proof"
    [
      ( "checker",
        [
          Alcotest.test_case "valid resolution" `Quick test_valid_resolution;
          Alcotest.test_case "root conflict goal" `Quick test_goal_without_explicit_empty;
          Alcotest.test_case "bogus rup rejected" `Quick test_rejects_bogus_rup;
          Alcotest.test_case "deleted-then-used rejected" `Quick test_rejects_deleted_then_used;
          Alcotest.test_case "absent deletion rejected" `Quick test_rejects_absent_deletion;
          Alcotest.test_case "bad lemma rejected" `Quick test_rejects_bad_lemma;
          Alcotest.test_case "purity" `Quick test_purity;
          Alcotest.test_case "unrefuted assumptions rejected" `Quick
            test_assumption_goal_unrefuted;
        ] );
      ( "sat-core",
        [
          Alcotest.test_case "pigeonhole trace checks" `Quick test_sat_core_trace_checks;
          Alcotest.test_case "tampered trace rejected" `Quick test_tampered_trace_rejected;
        ] );
      ( "solver",
        [
          Alcotest.test_case "unsat with theory lemmas" `Quick
            test_certify_unsat_with_theory_lemmas;
          Alcotest.test_case "model certification" `Quick test_certify_model;
          Alcotest.test_case "no trace, no certificate" `Quick test_uncertified_solver_refuses;
          Alcotest.test_case "lemma over non-atoms rejected" `Quick
            test_lemma_over_non_atoms_rejected;
        ] );
      ( "full-stack",
        [
          Alcotest.test_case "fattree queries certified" `Quick test_certified_fattree_queries;
          Alcotest.test_case "enterprise session certified" `Quick
            test_certified_enterprise_session;
          Alcotest.test_case "exit code 4" `Quick test_exit_code_4;
        ] );
      ("fork-guard", [ Alcotest.test_case "session after fork" `Quick test_session_fork_guard ]);
    ]
