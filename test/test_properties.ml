(* Coverage for the remaining §5 properties: waypointing, disjoint
   paths, loops, load balancing, leaks, failures, fault invariance and
   full equivalence — plus a randomized differential test of the
   encoder against the concrete simulator, and a naive-vs-optimized
   agreement check (the encodings must give identical verdicts). *)

module A = Config.Ast
module MS = Minesweeper
module T = Smt.Term
module P = Net.Prefix
module Ip = Net.Ipv4
module Rat = Exactnum.Rat

let parse = Config.Parser.parse_network
let default = MS.Options.default

let violated = function MS.Verify.Violation _ -> true | MS.Verify.Holds -> false

let violated_r (r : MS.Verify.Report.t) =
  match r.MS.Verify.Report.verdict with
  | MS.Verify.Report.Violated _ -> true
  | MS.Verify.Report.Verified -> false
  | v -> Alcotest.failf "unexpected verdict %s" (MS.Verify.Report.verdict_name v)

let check net opts make =
  let enc = MS.Encode.build net opts in
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.v "query" make))

let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))

(* chain R1 - R2 - R3 with a destination subnet on R3 *)
let chain3 =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 192.168.23.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname R3
interface e0
 ip address 192.168.23.2/30
interface e1
 ip address 10.3.0.1/24
router ospf 1
 network 0.0.0.0/0
|}

(* diamond S - (A | B) - T with a destination on T *)
let diamond =
  {|hostname S
interface e0
 ip address 192.168.1.1/30
interface e1
 ip address 192.168.2.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname A
interface e0
 ip address 192.168.1.2/30
interface e1
 ip address 192.168.3.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname B
interface e0
 ip address 192.168.2.2/30
interface e1
 ip address 192.168.4.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname T
interface e0
 ip address 192.168.3.2/30
interface e1
 ip address 192.168.4.2/30
interface lan
 ip address 10.9.0.1/24
router ospf 1
 network 0.0.0.0/0
|}

let dest_t = MS.Property.Subnet ("T", P.of_string "10.9.0.0/24")
let dest_r3 = MS.Property.Subnet ("R3", P.of_string "10.3.0.0/24")

let test_waypoint () =
  let net = parse chain3 in
  (* all R1 traffic to R3's subnet passes through R2: structural *)
  Alcotest.(check bool) "chain waypoint" false
    (violated (check net default (fun enc -> MS.Property.waypoint enc ~sources:[ "R1" ] dest_r3 ~via:"R2")));
  (* in the diamond, ECMP means traffic may bypass A *)
  let net = parse diamond in
  Alcotest.(check bool) "diamond bypasses A" true
    (violated (check net default (fun enc -> MS.Property.waypoint enc ~sources:[ "S" ] dest_t ~via:"A")))

let test_disjoint_paths () =
  let net = parse diamond in
  (* A and B use edge-disjoint paths to T *)
  Alcotest.(check bool) "disjoint" false
    (violated (check net default (fun enc -> MS.Property.disjoint_paths enc "A" "B" dest_t)));
  (* S and A share the edge A->T on some ECMP branch *)
  Alcotest.(check bool) "shared edge" true
    (violated (check net default (fun enc -> MS.Property.disjoint_paths enc "S" "A" dest_t)))

let static_loop =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
ip route 10.9.0.0/16 192.168.12.2
!
hostname R2
interface e0
 ip address 192.168.12.2/30
ip route 10.9.0.0/16 192.168.12.1
|}

let test_loops () =
  let net = parse static_loop in
  Alcotest.(check bool) "static loop found" true
    (violated (check net default (fun enc -> MS.Property.no_loops enc ())));
  let net = parse chain3 in
  Alcotest.(check bool) "chain loop-free" false
    (violated (check net default (fun enc -> MS.Property.no_loops enc ~candidates:[ "R1"; "R2"; "R3" ] ())))

let test_load_balance () =
  let net = parse diamond in
  (* ECMP splits S's unit of traffic evenly over A and B *)
  Alcotest.(check bool) "balanced within 0" false
    (violated
       (check net default (fun enc ->
            MS.Property.load_balance enc ~sources:[ "S" ] dest_t ~pair:("A", "B")
              ~threshold:Rat.zero)));
  (* but S and T loads differ by a full unit *)
  Alcotest.(check bool) "S vs T unbalanced" true
    (violated
       (check net default (fun enc ->
            MS.Property.load_balance enc ~sources:[ "S" ] dest_t ~pair:("S", "A")
              ~threshold:(Rat.of_ints 1 4))))

(* a transit router with no export policy re-announces anything *)
let transit =
  {|hostname R1
interface e0
 ip address 192.168.100.1/30
interface e1
 ip address 192.168.200.1/30
router bgp 100
 neighbor 192.168.100.2 remote-as 65001
 neighbor 192.168.200.2 remote-as 65002
|}

let test_no_leak () =
  let net = parse transit in
  Alcotest.(check bool) "transit leaks /32s" true
    (violated (check net default (fun enc -> MS.Property.no_leak enc ~max_len:24)));
  (* the enterprise edges only export the aggregated host space *)
  let t = Generators.Enterprise.make ~seed:3 ~routers:6 ~inject:Generators.Enterprise.no_bugs () in
  Alcotest.(check bool) "edge aggregates" false
    (violated
       (check t.Generators.Enterprise.network default (fun enc -> MS.Property.no_leak enc ~max_len:24)))

let triangle =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 192.168.13.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 192.168.23.1/30
interface lan
 ip address 10.2.0.1/24
router ospf 1
 network 0.0.0.0/0
!
hostname R3
interface e0
 ip address 192.168.13.2/30
interface e1
 ip address 192.168.23.2/30
router ospf 1
 network 0.0.0.0/0
|}

let dest_r2 = MS.Property.Subnet ("R2", P.of_string "10.2.0.0/24")

let test_fault_tolerance () =
  let net = parse triangle in
  (* the triangle survives any single link failure *)
  Alcotest.(check bool) "1-fault tolerant" false
    (violated
       (check net (MS.Options.with_failures 1 default) (fun enc ->
            MS.Property.reachability enc ~sources:[ "R1" ] dest_r2)));
  (* two failures can cut R1 off *)
  (match
     check net (MS.Options.with_failures 2 default) (fun enc ->
         MS.Property.reachability enc ~sources:[ "R1" ] dest_r2)
   with
   | MS.Verify.Violation cx ->
     Alcotest.(check int) "two links failed" 2 (List.length cx.MS.Counterexample.failures)
   | MS.Verify.Holds -> Alcotest.fail "expected 2-failure violation");
  (* the chain already dies with one failure *)
  let net = parse chain3 in
  Alcotest.(check bool) "chain not tolerant" true
    (violated
       (check net (MS.Options.with_failures 1 default) (fun enc ->
            MS.Property.reachability enc ~sources:[ "R1" ] dest_r3)))

let test_fault_invariance () =
  Alcotest.(check bool) "triangle invariant" false
    (violated_r
       (MS.Verify.fault_invariant (parse triangle) default ~k:1 ~sources:[ "R1"; "R3" ] dest_r2));
  Alcotest.(check bool) "chain varies" true
    (violated_r (MS.Verify.fault_invariant (parse chain3) default ~k:1 ~sources:[ "R1" ] dest_r3))

let test_full_equivalence () =
  let net = parse diamond in
  Alcotest.(check bool) "self-equivalent" false
    (violated_r (MS.Verify.equivalent net net default));
  (* adding an ACL changes the data plane *)
  let modified =
    parse
      (Str.global_replace (Str.regexp_string "interface lan\n ip address 10.9.0.1/24")
         "interface lan\n ip address 10.9.0.1/24\n ip access-group D out\naccess-list D deny ip any 10.9.0.0/25\naccess-list D permit ip any any"
         diamond)
  in
  Alcotest.(check bool) "acl breaks equivalence" true
    (violated_r (MS.Verify.equivalent net modified default))

(* the naive and optimized encodings must agree on verdicts *)
let test_naive_agreement () =
  let scenarios =
    [
      (chain3, [ "R1" ], dest_r3, false);
      (diamond, [ "S" ], dest_t, false);
    ]
  in
  List.iter
    (fun (cfg, sources, dest, _) ->
      let net = parse cfg in
      let opt = check net default (fun enc -> MS.Property.reachability enc ~sources dest) in
      let naive = check net MS.Options.naive (fun enc -> MS.Property.reachability enc ~sources dest) in
      Alcotest.(check bool) "same verdict" (violated opt) (violated naive))
    scenarios;
  (* and on a violated case *)
  let t = Generators.Enterprise.make ~seed:9 ~routers:4 ~inject:{ Generators.Enterprise.no_bugs with hijack = true } () in
  let net = t.Generators.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  let dest = MS.Property.Subnet (target, t.Generators.Enterprise.mgmt_prefix target) in
  let opt = check net default (fun enc -> MS.Property.reachability enc ~sources:devices dest) in
  let naive = check net MS.Options.naive (fun enc -> MS.Property.reachability enc ~sources:devices dest) in
  Alcotest.(check bool) "hijack found by both" true (violated opt && violated naive)

(* -- randomized differential test: encoder vs simulator -------------------- *)

(* Random OSPF networks: a random tree plus extra chords, random link
   costs, one subnet per device, an optional random ACL.  With no BGP,
   no environment and no failures, the symbolic verdict for
   subnet-to-subnet reachability must coincide with the concrete
   simulator. *)
let random_net_gen =
  let open QCheck.Gen in
  int_range 0 99999 >>= fun seed -> return seed

let build_random_net seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 3 in
  let b = Buffer.create 1024 in
  let link_id = ref 0 in
  let iface_count = Array.make n 0 in
  let links = ref [] in
  let add_link i j =
    let id = !link_id in
    incr link_id;
    links := (i, j, id) :: !links
  in
  for i = 1 to n - 1 do
    add_link (Random.State.int rng i) i
  done;
  if n > 3 && Random.State.bool rng then begin
    let i = Random.State.int rng n and j = Random.State.int rng n in
    if i <> j && not (List.exists (fun (a, b, _) -> (a = i && b = j) || (a = j && b = i)) !links)
    then add_link (min i j) (max i j)
  end;
  let acl_router = if Random.State.int rng 3 = 0 then Some (Random.State.int rng n) else None in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "hostname R%d\n" i);
    List.iter
      (fun (a, b', id) ->
        if a = i || b' = i then begin
          let side = if a = i then 1 else 2 in
          Buffer.add_string b
            (Printf.sprintf "interface e%d\n ip address 172.31.%d.%d/30\n ip ospf cost %d\n"
               iface_count.(i) id side
               (1 + ((id + i) mod 3)))
        end;
        if a = i || b' = i then iface_count.(i) <- iface_count.(i) + 1)
      !links;
    (* host subnet, possibly behind an ACL *)
    let acl = acl_router = Some i in
    Buffer.add_string b (Printf.sprintf "interface lan\n ip address 10.50.%d.1/24\n" i);
    if acl then begin
      Buffer.add_string b " ip access-group G out\n";
      Buffer.add_string b "access-list G deny ip any 10.50.0.0/16\naccess-list G permit ip any any\n"
    end;
    Buffer.add_string b "router ospf 1\n network 0.0.0.0/0\n!\n"
  done;
  (parse (Buffer.contents b), n)

let prop_differential =
  QCheck.Test.make ~name:"encoder matches simulator on random OSPF nets" ~count:25
    (QCheck.make random_net_gen) (fun seed ->
      let net, n = build_random_net seed in
      let state = Routing.Simulator.run net Routing.Simulator.empty_env in
      let src = "R0" in
      let ok = ref true in
      for dst = 1 to min 2 (n - 1) do
        let subnet = P.make (Ip.of_octets 10 50 dst 0) 24 in
        let concrete =
          Routing.Dataplane.reachable net state ~src ~dst:(Ip.of_octets 10 50 dst 77)
        in
        let enc = MS.Encode.build net default in
        let prop =
          MS.Property.reachability enc ~sources:[ src ]
            (MS.Property.Subnet (Printf.sprintf "R%d" dst, subnet))
        in
        let symbolic = not (violated (verify_check enc prop)) in
        if concrete <> symbolic then begin
          QCheck.Test.fail_reportf "seed %d dst R%d: simulator=%b encoder=%b" seed dst concrete
            symbolic
        end
      done;
      !ok)

let () =
  Alcotest.run "properties"
    [
      ( "paths",
        [
          Alcotest.test_case "waypoint" `Quick test_waypoint;
          Alcotest.test_case "disjoint" `Quick test_disjoint_paths;
          Alcotest.test_case "loops" `Quick test_loops;
        ] );
      ( "quantitative",
        [
          Alcotest.test_case "load balance" `Quick test_load_balance;
          Alcotest.test_case "no leak" `Quick test_no_leak;
        ] );
      ( "failures",
        [
          Alcotest.test_case "fault tolerance" `Quick test_fault_tolerance;
          Alcotest.test_case "fault invariance" `Quick test_fault_invariance;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "full equivalence" `Quick test_full_equivalence;
          Alcotest.test_case "naive agreement" `Quick test_naive_agreement;
        ] );
      ("differential", [ QCheck_alcotest.to_alcotest prop_differential ]);
    ]
