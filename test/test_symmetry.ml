(* Tests of the symmetry analysis (Analysis.Symmetry): canonical device
   fingerprints, partition refinement, the quotient reduction behind
   Options.symmetry, the MS-W401 near-symmetry diagnostics, and the
   differential gate — quotient and full encodings must agree on every
   verdict, with quotient counterexamples replaying concretely. *)

module A = Config.Ast
module MS = Minesweeper

(* shims over the Query/Report API for the bare outcomes these tests match on *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
module G = Generators
module S = Analysis.Symmetry
module D = Analysis.Diagnostic
module P = Net.Prefix
module T = Net.Topology

let outcome_str = function MS.Verify.Holds -> "verified" | MS.Verify.Violation _ -> "violated"

let classes_of ?pins (net : A.network) = (S.classes ?pins net net.A.net_topology).S.groups
let norm groups = List.sort compare (List.map (List.sort compare) groups)

let device net name =
  match A.find_device net name with
  | Some d -> d
  | None -> Alcotest.failf "no device %s" name

(* -- partition structure ------------------------------------------------------- *)

let test_partition_unpinned () =
  (* pods=4: three roles, perfectly interchangeable within each *)
  let net = (G.Fattree.make ~pods:4).G.Fattree.network in
  let groups = classes_of net in
  Alcotest.(check int) "three classes" 3 (List.length groups);
  Alcotest.(check int) "twenty devices" 20
    (List.fold_left (fun a g -> a + List.length g) 0 groups);
  let sizes = List.sort compare (List.map List.length groups) in
  Alcotest.(check (list int)) "role sizes" [ 4; 8; 8 ] sizes

let test_partition_pinned () =
  (* pinning the destination ToR splits its pod off: the pinned device,
     its pod sibling, its pod's aggregation pair, and the three
     position-independent classes *)
  let net = (G.Fattree.make ~pods:4).G.Fattree.network in
  let groups = classes_of ~pins:[ "tor_0_0" ] net in
  Alcotest.(check int) "six classes" 6 (List.length groups);
  let find_of d =
    match List.find_opt (List.mem d) groups with
    | Some g -> List.sort compare g
    | None -> Alcotest.failf "%s not in any class" d
  in
  Alcotest.(check (list string)) "pin is singleton" [ "tor_0_0" ] (find_of "tor_0_0");
  Alcotest.(check (list string)) "pod sibling singleton" [ "tor_0_1" ] (find_of "tor_0_1");
  Alcotest.(check (list string)) "pod aggs merge" [ "agg_0_0"; "agg_0_1" ] (find_of "agg_0_0");
  Alcotest.(check int) "cores merge" 4 (List.length (find_of "core_0"));
  Alcotest.(check int) "other-pod tors merge" 6 (List.length (find_of "tor_1_0"))

let test_pods2_all_singletons () =
  (* with only one core and the destination pinned, refinement leaves
     nothing interchangeable: the reduction must decline, not produce a
     trivial quotient *)
  let net = (G.Fattree.make ~pods:2).G.Fattree.network in
  let groups = classes_of ~pins:[ "tor_0_0" ] net in
  Alcotest.(check bool) "all singletons" true (List.for_all (fun g -> List.length g = 1) groups);
  Alcotest.(check bool) "reduce declines" true (S.reduce ~pins:[ "tor_0_0" ] net = None)

let test_fingerprints_by_role () =
  let net = (G.Fattree.make ~pods:4).G.Fattree.network in
  let fp n = S.fingerprint (device net n) in
  Alcotest.(check string) "tors same" (fp "tor_0_0") (fp "tor_3_1");
  Alcotest.(check string) "aggs same" (fp "agg_0_0") (fp "agg_2_1");
  Alcotest.(check string) "cores same" (fp "core_0") (fp "core_3");
  Alcotest.(check bool) "tor differs from agg" true (fp "tor_0_0" <> fp "agg_0_0");
  Alcotest.(check bool) "agg differs from core" true (fp "agg_0_0" <> fp "core_0")

(* -- renaming invariance (QCheck) ---------------------------------------------- *)

(* A consistent renaming: an injective device rename [f] applied to the
   devices and the topology, and an injective address translation [g]
   (shift the leading octet) applied to every prefix, interface, BGP
   neighbor, static route, filter entry, ...  Fingerprints abstract
   names and concrete address bits, so both must be invariant. *)

let map_prefix g p = P.make (g (P.network p)) (P.length p)

let map_device ~g (d : A.device) =
  {
    d with
    A.dev_interfaces =
      List.map
        (fun (i : A.interface) ->
          {
            i with
            A.if_prefix = Option.map (map_prefix g) i.A.if_prefix;
            if_ip = Option.map g i.A.if_ip;
          })
        d.A.dev_interfaces;
    dev_prefix_lists =
      List.map
        (fun (pl : A.prefix_list) ->
          {
            pl with
            A.pl_entries =
              List.map
                (fun (e : A.prefix_list_entry) ->
                  { e with A.pl_prefix = map_prefix g e.A.pl_prefix })
                pl.A.pl_entries;
          })
        d.A.dev_prefix_lists;
    dev_acls =
      List.map
        (fun (a : A.acl) ->
          {
            a with
            A.acl_entries =
              List.map
                (fun (e : A.acl_entry) -> { e with A.acl_dst = map_prefix g e.A.acl_dst })
                a.A.acl_entries;
          })
        d.A.dev_acls;
    dev_bgp =
      Option.map
        (fun (b : A.bgp_config) ->
          {
            b with
            A.bgp_router_id = Option.map g b.A.bgp_router_id;
            bgp_networks = List.map (map_prefix g) b.A.bgp_networks;
            bgp_neighbors =
              List.map
                (fun (n : A.bgp_neighbor) -> { n with A.nbr_ip = g n.A.nbr_ip })
                b.A.bgp_neighbors;
            bgp_aggregates = List.map (fun (p, s) -> (map_prefix g p, s)) b.A.bgp_aggregates;
          })
        d.A.dev_bgp;
    dev_ospf =
      Option.map
        (fun (o : A.ospf_config) ->
          { o with A.ospf_networks = List.map (map_prefix g) o.A.ospf_networks })
        d.A.dev_ospf;
    dev_statics =
      List.map
        (fun (s : A.static_route) ->
          {
            s with
            A.st_prefix = map_prefix g s.A.st_prefix;
            st_next_hop = Option.map g s.A.st_next_hop;
          })
        d.A.dev_statics;
  }

let rename_topo f topo =
  let base = List.fold_left (fun t d -> T.add_device t (f d)) T.empty (T.devices topo) in
  List.fold_left
    (fun t (l : T.link) ->
      T.add_link t
        {
          T.a = { l.T.a with T.device = f l.T.a.T.device };
          b = { l.T.b with T.device = f l.T.b.T.device };
        })
    base (T.links topo)

let transform ~f ~g (net : A.network) =
  {
    A.net_devices =
      List.map (fun d -> { (map_device ~g d) with A.dev_name = f d.A.dev_name }) net.A.net_devices;
    net_topology = rename_topo f net.A.net_topology;
  }

let prop_rename_invariant =
  QCheck.Test.make ~name:"fingerprints and classes invariant under consistent renaming"
    ~count:8
    QCheck.(pair (int_range 1 40) (int_range 0 1_000_000))
    (fun (octet_shift, seed) ->
      let net = (G.Fattree.make ~pods:4).G.Fattree.network in
      (* injective because the original name is kept as a suffix *)
      let f name = Printf.sprintf "r%d_%s" (Hashtbl.hash (seed, name) mod 97) name in
      let g ip = ip + (octet_shift lsl 24) in
      let net' = transform ~f ~g net in
      let fps_match =
        List.for_all
          (fun (d : A.device) ->
            S.fingerprint d = S.fingerprint (device net' (f d.A.dev_name)))
          net.A.net_devices
      in
      let classes_match =
        norm (List.map (List.map f) (classes_of net)) = norm (classes_of net')
      in
      fps_match && classes_match)

(* -- perturbation strictly refines, and MS-W401 reports it --------------------- *)

let perturb_route_maps core (net : A.network) =
  {
    net with
    A.net_devices =
      List.map
        (fun (d : A.device) ->
          if d.A.dev_name <> core then d
          else
            {
              d with
              A.dev_route_maps =
                List.map
                  (fun (rm : A.route_map) ->
                    {
                      rm with
                      A.rm_clauses =
                        List.map
                          (fun (c : A.rm_clause) ->
                            { c with A.rm_sets = [ A.Set_local_pref 200 ] })
                          rm.A.rm_clauses;
                    })
                  d.A.dev_route_maps;
            })
        net.A.net_devices;
  }

let test_perturbation_refines () =
  let net = (G.Fattree.make ~pods:4).G.Fattree.network in
  let net' = perturb_route_maps "core_0" net in
  Alcotest.(check bool) "fingerprint diverges" true
    (S.fingerprint (device net' "core_0") <> S.fingerprint (device net' "core_1"));
  Alcotest.(check bool) "partition strictly refines" true
    (List.length (classes_of net') > List.length (classes_of net))

let test_near_symmetry_diagnostic () =
  let net = (G.Fattree.make ~pods:4).G.Fattree.network in
  Alcotest.(check int) "clean fabric: no MS-W401" 0
    (List.length (List.filter (fun (d : D.t) -> d.D.code = "MS-W401") (S.check net)));
  let diags = S.check (perturb_route_maps "core_0" net) in
  let w401 = List.filter (fun (d : D.t) -> d.D.code = "MS-W401") diags in
  Alcotest.(check int) "exactly the dissenter flagged" 1 (List.length w401);
  Alcotest.(check (option string)) "on core_0" (Some "core_0") (List.hd w401).D.device;
  Alcotest.(check bool) "warning severity" true ((List.hd w401).D.severity = D.Warning)

(* -- quotient structure -------------------------------------------------------- *)

let test_reduce_structure () =
  let net = (G.Fattree.make ~pods:4).G.Fattree.network in
  match S.reduce ~pins:[ "tor_0_0" ] net with
  | None -> Alcotest.fail "expected a reduction at pods=4"
  | Some r ->
    Alcotest.(check int) "six representatives" 6
      (List.length r.S.red_network.A.net_devices);
    Alcotest.(check bool) "pin survives" true
      (A.find_device r.S.red_network "tor_0_0" <> None);
    (* every collapsed member maps to a kept representative *)
    List.iter
      (fun (m, rep) ->
        Alcotest.(check bool) (m ^ " gone") true (A.find_device r.S.red_network m = None);
        Alcotest.(check bool) (rep ^ " kept") true
          (A.find_device r.S.red_network rep <> None))
      r.S.red_rep;
    (* class lists cover the whole network *)
    let covered =
      List.length r.S.red_network.A.net_devices + List.length r.S.red_rep
    in
    Alcotest.(check int) "20 devices accounted for" 20 covered;
    (* no interface of a kept device dangles toward a deleted peer *)
    let keep d = A.find_device r.S.red_network d <> None in
    List.iter
      (fun (d : A.device) ->
        List.iter
          (fun (i : A.interface) ->
            match T.peer net.A.net_topology d.A.dev_name i.A.if_name with
            | Some (p, _) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s.%s peer kept" d.A.dev_name i.A.if_name)
                true (keep p)
            | None -> ())
          d.A.dev_interfaces)
      r.S.red_network.A.net_devices

(* -- differential gate: quotient vs full verdicts ------------------------------ *)

let opts_on = MS.Options.with_symmetry MS.Options.default
let opts_off = MS.Options.default

(* Run one property on the full and the quotient encoding and insist on
   verdict agreement; a quotient counterexample must also replay
   cleanly through the concrete simulator (the lifted verdict is then
   evidence, not just an SMT model over a smaller network). *)
let differential ~name ~pins net (mk : MS.Encode.t -> MS.Property.t) =
  let enc_off = MS.Encode.build net opts_off in
  let enc_on = MS.Encode.build ~pins net opts_on in
  let o_off = verify_check enc_off (mk enc_off) in
  let o_on = verify_check enc_on (mk enc_on) in
  (match o_on with
   | MS.Verify.Violation cx ->
     (match MS.Counterexample.replay enc_on cx with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: quotient counterexample replay failed: %s" name e)
   | MS.Verify.Holds -> ());
  Alcotest.(check string) (name ^ ": verdicts agree") (outcome_str o_off) (outcome_str o_on)

let fattree_differential pods () =
  let ft = G.Fattree.make ~pods in
  let net = ft.G.Fattree.network in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  let other_pod_tors =
    List.filter
      (fun t -> match String.split_on_char '_' t with [ _; p; _ ] -> p = "1" | _ -> false)
      ft.G.Fattree.tors
  in
  let proj enc ds = MS.Encode.project_devices enc ds in
  differential ~name:"all-tor reachability" ~pins:[ dst_tor ] net (fun enc ->
      MS.Property.reachability enc ~sources:(proj enc other_tors) dest);
  differential ~name:"single-tor isolation (violated)" ~pins:[ dst_tor ] net (fun enc ->
      MS.Property.isolation enc ~sources:(proj enc [ List.hd other_tors ]) dest);
  differential ~name:"bounded length" ~pins:[ dst_tor ] net (fun enc ->
      MS.Property.bounded_length enc ~sources:(proj enc other_tors) dest ~bound:4);
  (* length comparison names concrete devices on both sides: the
     compared sources are pinned, not projected *)
  differential ~name:"equal lengths (one pod)" ~pins:(dst_tor :: other_pod_tors) net
    (fun enc -> MS.Property.equal_lengths enc ~sources:other_pod_tors dest);
  differential ~name:"multipath consistency" ~pins:[ dst_tor ] net (fun enc ->
      MS.Property.multipath_consistency enc dest);
  differential ~name:"no blackholes" ~pins:[] net (fun enc ->
      MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores ());
  differential ~name:"no loops" ~pins:[] net (fun enc -> MS.Property.no_loops enc ())

let test_fattree_differential_pods2 () = fattree_differential 2 ()
let test_fattree_differential_pods4 () = fattree_differential 4 ()

let test_fattree_differential_pods6 () =
  (* the full encoding is the expensive side at this size; two queries
     keep the gate honest without dominating the suite *)
  let ft = G.Fattree.make ~pods:6 in
  let net = ft.G.Fattree.network in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  differential ~name:"single-tor reachability" ~pins:[ dst_tor ] net (fun enc ->
      MS.Property.reachability enc
        ~sources:(MS.Encode.project_devices enc [ List.hd other_tors ])
        dest);
  differential ~name:"single-tor isolation (violated)" ~pins:[ dst_tor ] net (fun enc ->
      MS.Property.isolation enc
        ~sources:(MS.Encode.project_devices enc [ List.hd other_tors ])
        dest)

let test_quotient_actually_smaller () =
  (* the pods=4 differential is only meaningful if the symmetric side
     really encoded fewer devices *)
  let ft = G.Fattree.make ~pods:4 in
  let enc = MS.Encode.build ~pins:[ "tor_0_0" ] ft.G.Fattree.network opts_on in
  Alcotest.(check int) "six devices encoded" 6 (List.length (MS.Encode.devices enc));
  Alcotest.(check bool) "classes exposed" true (MS.Encode.sym_classes enc <> []);
  Alcotest.(check string) "member lifts to representative" "core_0"
    (MS.Encode.representative enc "core_3");
  Alcotest.(check (list string)) "projection collapses and keeps order" [ "tor_1_0" ]
    (MS.Encode.project_devices enc [ "tor_2_0"; "tor_3_1" ])

let test_collapsed_device_rejected () =
  let ft = G.Fattree.make ~pods:4 in
  let enc = MS.Encode.build ~pins:[ "tor_0_0" ] ft.G.Fattree.network opts_on in
  let dest = MS.Property.Subnet ("tor_0_0", ft.G.Fattree.tor_subnet "tor_0_0") in
  (* tor_2_0 was collapsed: naming it without projection must fail
     loudly rather than verify a vacuous formula *)
  Alcotest.check_raises "unpinned source rejected"
    (Invalid_argument
       "Property: device tor_2_0 was collapsed into symmetry class representative tor_1_0; \
        pin it via Encode.build ~pins or map it through Encode.project_devices")
    (fun () -> ignore (MS.Property.reachability enc ~sources:[ "tor_2_0" ] dest))

(* -- enterprise networks: the reduction declines, verdicts still agree --------- *)

let test_enterprise_bails_to_identity () =
  List.iter
    (fun inject ->
      let t = G.Enterprise.make ~seed:42 ~routers:8 ~inject () in
      let net = t.G.Enterprise.network in
      let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
      let target = List.hd (List.rev devices) in
      let enc_on = MS.Encode.build ~pins:[ target ] net opts_on in
      (* iBGP (and the other bail-outs) force the full encoding: the
         quotient machinery must get out of the way, not guess *)
      Alcotest.(check bool) "no classes claimed" true (MS.Encode.sym_classes enc_on = []);
      Alcotest.(check int) "all devices encoded" (List.length devices)
        (List.length (MS.Encode.devices enc_on));
      differential ~name:"mgmt reachability" ~pins:[ target ] net (fun enc ->
          MS.Property.reachability enc
            ~sources:(MS.Encode.project_devices enc devices)
            (MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target))))
    [
      G.Enterprise.no_bugs;
      { G.Enterprise.no_bugs with hijack = true };
      { G.Enterprise.no_bugs with acl_gap = true };
      { G.Enterprise.no_bugs with deep_drop = true };
    ]

let () =
  Alcotest.run "symmetry"
    [
      ( "partition",
        [
          Alcotest.test_case "unpinned roles" `Quick test_partition_unpinned;
          Alcotest.test_case "pinned destination" `Quick test_partition_pinned;
          Alcotest.test_case "pods=2 all singletons" `Quick test_pods2_all_singletons;
          Alcotest.test_case "fingerprints by role" `Quick test_fingerprints_by_role;
        ] );
      ("renaming", [ QCheck_alcotest.to_alcotest prop_rename_invariant ]);
      ( "diagnostics",
        [
          Alcotest.test_case "perturbation refines" `Quick test_perturbation_refines;
          Alcotest.test_case "MS-W401 near symmetry" `Quick test_near_symmetry_diagnostic;
        ] );
      ( "quotient",
        [
          Alcotest.test_case "reduction structure" `Quick test_reduce_structure;
          Alcotest.test_case "encoding is smaller" `Quick test_quotient_actually_smaller;
          Alcotest.test_case "collapsed device rejected" `Quick test_collapsed_device_rejected;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fattree pods=2" `Quick test_fattree_differential_pods2;
          Alcotest.test_case "fattree pods=4" `Quick test_fattree_differential_pods4;
          Alcotest.test_case "fattree pods=6" `Slow test_fattree_differential_pods6;
          Alcotest.test_case "enterprise bails to identity" `Slow
            test_enterprise_bails_to_identity;
        ] );
    ]
