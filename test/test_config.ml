(* Tests for the configuration parser, printer, and semantic helpers. *)

module A = Config.Ast
module Parser = Config.Parser
module Printer = Config.Printer
module P = Net.Prefix

let sample_config =
  {|hostname R1
!
interface Ethernet0
 ip address 10.0.0.1/30
 ip access-group BLOCK in
 ip ospf cost 10
!
interface Ethernet1
 ip address 10.1.0.1/24
!
ip prefix-list L deny 192.168.0.0/16 le 32
ip prefix-list L permit 0.0.0.0/0 le 32
!
access-list BLOCK deny ip any 172.10.1.0 0.0.0.255
access-list BLOCK permit ip any any
!
route-map IMPORT permit 10
 match ip address prefix-list L
 set local-preference 120
 set community 65000:100
!
router bgp 65000
 bgp router-id 1.1.1.1
 maximum-paths 4
 network 10.1.0.0/24
 redistribute ospf metric 10
 neighbor 10.0.0.2 remote-as 65001
 neighbor 10.0.0.2 route-map IMPORT in
!
router ospf 1
 network 10.0.0.0/8 area 0
 redistribute connected
!
ip route 0.0.0.0/0 10.0.0.2
ip route 10.9.0.0/16 Null0
|}

let parse () = Parser.parse_device sample_config

let test_parse_basics () =
  let d = parse () in
  Alcotest.(check string) "hostname" "R1" d.A.dev_name;
  Alcotest.(check int) "interfaces" 2 (List.length d.A.dev_interfaces);
  let e0 = Option.get (A.find_interface d "Ethernet0") in
  Alcotest.(check string) "e0 addr" "10.0.0.0/30" (P.to_string (Option.get e0.A.if_prefix));
  Alcotest.(check string) "e0 ip" "10.0.0.1" (Net.Ipv4.to_string (Option.get e0.A.if_ip));
  Alcotest.(check (option string)) "acl in" (Some "BLOCK") e0.A.if_acl_in;
  Alcotest.(check int) "ospf cost" 10 e0.A.if_cost;
  Alcotest.(check int) "statics" 2 (List.length d.A.dev_statics)

let test_parse_bgp () =
  let d = parse () in
  let bgp = Option.get d.A.dev_bgp in
  Alcotest.(check int) "asn" 65000 bgp.A.bgp_asn;
  Alcotest.(check bool) "multipath" true bgp.A.bgp_multipath;
  Alcotest.(check int) "networks" 1 (List.length bgp.A.bgp_networks);
  Alcotest.(check int) "neighbors" 1 (List.length bgp.A.bgp_neighbors);
  let n = List.hd bgp.A.bgp_neighbors in
  Alcotest.(check int) "remote-as" 65001 n.A.nbr_remote_as;
  Alcotest.(check (option string)) "rm in" (Some "IMPORT") n.A.nbr_rm_in;
  Alcotest.(check int) "redistribute" 1 (List.length bgp.A.bgp_redistribute)

let test_parse_route_map () =
  let d = parse () in
  let rm = Option.get (A.find_route_map d "IMPORT") in
  Alcotest.(check int) "clauses" 1 (List.length rm.A.rm_clauses);
  let cl = List.hd rm.A.rm_clauses in
  Alcotest.(check int) "seq" 10 cl.A.rm_seq;
  Alcotest.(check int) "matches" 1 (List.length cl.A.rm_matches);
  Alcotest.(check int) "sets" 2 (List.length cl.A.rm_sets)

let test_parse_acl_wildcard () =
  let d = parse () in
  let acl = Option.get (A.find_acl d "BLOCK") in
  (match acl.A.acl_entries with
   | [ e1; e2 ] ->
     Alcotest.(check string) "wildcard to prefix" "172.10.1.0/24" (P.to_string e1.A.acl_dst);
     Alcotest.(check bool) "deny" true (e1.A.acl_action = A.Deny);
     Alcotest.(check int) "any" 0 (P.length e2.A.acl_dst)
   | _ -> Alcotest.fail "expected two entries");
  Alcotest.(check bool) "blocks" false (A.acl_permits acl (Net.Ipv4.of_string "172.10.1.77"));
  Alcotest.(check bool) "permits" true (A.acl_permits acl (Net.Ipv4.of_string "8.8.8.8"))

let test_prefix_list_semantics () =
  let d = parse () in
  let pl = Option.get (A.find_prefix_list d "L") in
  Alcotest.(check bool) "denied" false (A.prefix_list_permits pl (P.of_string "192.168.4.0/24"));
  Alcotest.(check bool) "permitted" true (A.prefix_list_permits pl (P.of_string "10.1.0.0/24"));
  (* ge/le semantics *)
  let entry =
    { A.pl_action = A.Permit; pl_prefix = P.of_string "10.0.0.0/8"; pl_ge = Some 24; pl_le = Some 28 }
  in
  let pl2 = { A.pl_name = "X"; pl_entries = [ entry ] } in
  Alcotest.(check bool) "inside range" true (A.prefix_list_permits pl2 (P.of_string "10.3.3.0/24"));
  Alcotest.(check bool) "too short" false (A.prefix_list_permits pl2 (P.of_string "10.3.0.0/16"));
  Alcotest.(check bool) "too long" false (A.prefix_list_permits pl2 (P.of_string "10.3.3.0/30"));
  Alcotest.(check bool) "wrong net" false (A.prefix_list_permits pl2 (P.of_string "11.3.3.0/24"))

let test_roundtrip () =
  let d = parse () in
  let printed = Printer.device_to_string d in
  let d2 = Parser.parse_device printed in
  let printed2 = Printer.device_to_string d2 in
  Alcotest.(check string) "print . parse . print fixpoint" printed printed2;
  Alcotest.(check bool) "structurally equal" true (d = d2)

let test_parse_errors () =
  let expect_error text =
    match Parser.parse_device text with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "hostname R1\nbanana stand\n";
  expect_error "hostname R1\ninterface e0\n ip address 10.0.0.300/24\n";
  expect_error "hostname R1\nrouter bgp notanumber\n";
  expect_error "hostname R1\nroute-map M permit ten\n";
  expect_error "hostname R1\n set local-preference 5\n"

let test_parse_error_location () =
  match Parser.parse_device "hostname R1\n  banana stand\n" with
  | exception Parser.Parse_error e ->
    Alcotest.(check int) "line" 2 e.Parser.line;
    Alcotest.(check int) "col" 3 e.Parser.col;
    Alcotest.(check (option string)) "token" (Some "banana") e.Parser.token;
    let rendered = Parser.error_to_string ~file:"net.cfg" e in
    Alcotest.(check string) "rendered" "net.cfg:2:3: unknown or misplaced command (near \"banana\")"
      rendered
  | _ -> Alcotest.fail "expected parse error"

let test_reject_shared_subnet () =
  let cfg =
    "hostname R1\ninterface e0\n ip address 10.0.0.1/24\ninterface e1\n ip address 10.0.0.2/24\n"
  in
  match Parser.parse_network cfg with
  | exception Parser.Parse_error e ->
    Alcotest.(check bool) "mentions subnet" true
      (Str.string_match (Str.regexp ".*share subnet 10\\.0\\.0\\.0/24.*") e.Parser.message 0)
  | _ -> Alcotest.fail "expected shared-subnet rejection"

let two_device_config =
  {|hostname A
interface e0
 ip address 192.168.12.1/30
router ospf 1
 network 192.168.0.0/16
!
hostname B
interface e0
 ip address 192.168.12.2/30
router ospf 1
 network 192.168.0.0/16
|}

let test_network_inference () =
  let net = Parser.parse_network two_device_config in
  Alcotest.(check int) "devices" 2 (List.length net.A.net_devices);
  Alcotest.(check int) "links" 1 (Net.Topology.num_links net.A.net_topology);
  match Net.Topology.peer net.A.net_topology "A" "e0" with
  | Some (d, _) -> Alcotest.(check string) "peer" "B" d
  | None -> Alcotest.fail "inferred link missing"

let test_config_lines () =
  let d = parse () in
  Alcotest.(check bool) "line count positive" true (Printer.config_lines d > 20)

(* Round-trip property over the synthetic networks: reparsing a printed
   network reproduces every device structurally and the same link set
   (links compared as an orientation-insensitive set, since the parser
   re-infers subnets before reading explicit link lines). *)
let canonical_links (net : A.network) =
  List.sort compare
    (List.map
       (fun (l : Net.Topology.link) ->
         let ea = (l.Net.Topology.a.device, l.Net.Topology.a.interface) in
         let eb = (l.Net.Topology.b.device, l.Net.Topology.b.interface) in
         if ea <= eb then (ea, eb) else (eb, ea))
       (Net.Topology.links net.A.net_topology))

let test_roundtrip_generators () =
  let nets =
    [
      ("fattree pods=2", (Generators.Fattree.make ~pods:2).Generators.Fattree.network);
      ("fattree pods=4", (Generators.Fattree.make ~pods:4).Generators.Fattree.network);
      ( "enterprise",
        (Generators.Enterprise.make ~seed:7 ~routers:8
           ~inject:{ Generators.Enterprise.hijack = false; acl_gap = false; deep_drop = false; single_homed = false }
           ())
          .Generators.Enterprise.network );
    ]
  in
  List.iter
    (fun (name, net) ->
      let printed = Printer.network_to_string net in
      let net2 = Parser.parse_network printed in
      Alcotest.(check bool) (name ^ ": devices round-trip") true (net.A.net_devices = net2.A.net_devices);
      Alcotest.(check bool)
        (name ^ ": link set round-trips")
        true
        (canonical_links net = canonical_links net2);
      Alcotest.(check string) (name ^ ": print fixpoint") printed (Printer.network_to_string net2))
    nets

let () =
  Alcotest.run "config"
    [
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "bgp" `Quick test_parse_bgp;
          Alcotest.test_case "route-map" `Quick test_parse_route_map;
          Alcotest.test_case "acl wildcard" `Quick test_parse_acl_wildcard;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error location" `Quick test_parse_error_location;
          Alcotest.test_case "shared subnet rejected" `Quick test_reject_shared_subnet;
          Alcotest.test_case "network inference" `Quick test_network_inference;
        ] );
      ( "semantics",
        [ Alcotest.test_case "prefix-list" `Quick test_prefix_list_semantics ] );
      ( "printer",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "generator roundtrip" `Quick test_roundtrip_generators;
          Alcotest.test_case "config lines" `Quick test_config_lines;
        ] );
    ]
