(* Differential and fault-injection tests for the parallel engine: on
   enterprise and fattree networks, Engine.run at -j 1 and -j 4 and
   portfolio mode must reproduce exactly the verdicts of a sequential
   Verify.Session over the same queries, in the same order; a worker
   killed mid-shard must not lose or reorder any result. *)

module MS = Minesweeper
module G = Generators
module A = Config.Ast
module Query = MS.Verify.Query
module Report = MS.Verify.Report

let verdicts reports = List.map (fun r -> Report.verdict_name r.Report.verdict) reports
let labels reports = List.map (fun r -> r.Report.label) reports

let check_same_reports name (expected : Report.t list) (got : Report.t list) =
  Alcotest.(check (list string)) (name ^ ": labels in query order") (labels expected) (labels got);
  Alcotest.(check (list string)) (name ^ ": verdicts") (verdicts expected) (verdicts got)

(* ---- suites -------------------------------------------------------------- *)

let enterprise_queries (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  let mgmt_dest = MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target) in
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  let base =
    [
      Query.v "mgmt-reachability" (fun enc -> MS.Property.reachability enc ~sources:devices mgmt_dest);
      Query.v "no-blackholes" (fun enc -> MS.Property.no_blackholes enc ~allowed ());
      Query.v "no-loops" (fun enc -> MS.Property.no_loops enc ());
      Query.v "isolation" (fun enc -> MS.Property.isolation enc ~sources:devices mgmt_dest);
    ]
  in
  match t.G.Enterprise.rack_role with
  | r1 :: r2 :: _ ->
    base @ [ Query.v "acl-equivalence" (fun enc -> MS.Property.acl_equivalence enc r1 r2) ]
  | _ -> base

let fattree_queries (ft : G.Fattree.t) =
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  [
    Query.v "single-tor-reachability" (fun enc ->
        MS.Property.reachability enc ~sources:[ List.hd other_tors ] dest);
    Query.v "all-tor-reachability" (fun enc -> MS.Property.reachability enc ~sources:other_tors dest);
    Query.v "bounded-length" (fun enc ->
        MS.Property.bounded_length enc ~sources:other_tors dest ~bound:4);
    Query.v "multipath-consistency" (fun enc -> MS.Property.multipath_consistency enc dest);
    Query.v "no-blackholes" (fun enc ->
        MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores ());
    Query.v "isolation-should-fail" (fun enc ->
        MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest);
  ]

let differential name net queries =
  let enc = MS.Encode.build net MS.Options.default in
  let sequential = MS.Verify.Session.run (MS.Verify.Session.of_encoding enc) queries in
  Alcotest.(check int) (name ^ ": report count") (List.length queries) (List.length sequential);
  let j1 = Engine.run ~jobs:1 enc queries in
  check_same_reports (name ^ " -j1") sequential j1;
  let j4 = Engine.run ~jobs:4 enc queries in
  check_same_reports (name ^ " -j4") sequential j4;
  (* parallel reports must come from real workers *)
  if List.for_all (fun r -> r.Report.worker = 0) j4 then
    Alcotest.failf "%s: no -j4 report carries a worker id" name;
  let pf = List.map (fun q -> Engine.portfolio enc q) queries in
  check_same_reports (name ^ " portfolio") sequential pf;
  List.iter
    (fun r ->
      match r.Report.strategy with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: portfolio report %s names no strategy" name r.Report.label)
    pf

let test_enterprise_clean () =
  let t = G.Enterprise.make ~seed:3 ~routers:8 ~inject:G.Enterprise.no_bugs () in
  differential "enterprise clean" t.G.Enterprise.network (enterprise_queries t)

let test_enterprise_hijack () =
  let t =
    G.Enterprise.make ~seed:5 ~routers:8
      ~inject:{ G.Enterprise.hijack = true; acl_gap = false; deep_drop = false; single_homed = false }
      ()
  in
  differential "enterprise hijack" t.G.Enterprise.network (enterprise_queries t)

let test_fattree () =
  let ft = G.Fattree.make ~pods:2 in
  differential "fattree pods=2" ft.G.Fattree.network (fattree_queries ft)

(* Ordering under heavy sharding: an all-pairs style fan-out at -j 3
   must come back in query order with every query answered. *)
let test_ordering () =
  let t = G.Enterprise.make ~seed:3 ~routers:10 ~inject:G.Enterprise.no_bugs () in
  let net = t.G.Enterprise.network in
  let enc = MS.Encode.build net MS.Options.default in
  let devices = MS.Encode.devices enc in
  let queries =
    List.filter_map
      (fun d ->
        if MS.Encode.subnets enc d = [] then None
        else
          let srcs = List.filter (fun s -> s <> d) devices in
          Some
            (Query.v
               ("reach *->" ^ d)
               (fun enc -> MS.Property.reachability enc ~sources:srcs (MS.Property.Device d))))
      devices
  in
  let sequential = MS.Verify.Session.run (MS.Verify.Session.of_encoding enc) queries in
  let j3 = Engine.run ~jobs:3 enc queries in
  check_same_reports "all-pairs -j3" sequential j3

(* ---- fault injection ----------------------------------------------------- *)

(* A query whose property thunk SIGKILLs the calling process — but only
   in engine workers (never in the test runner), and only while the
   marker file does not exist yet.  Workers share the filesystem, so
   the first victim leaves a marker and the requeued attempt succeeds. *)
let poison_query label marker ~always parent_pid =
  Query.v label (fun enc ->
      if Unix.getpid () <> parent_pid && (always || not (Sys.file_exists marker)) then begin
        (if not always then
           let oc = open_out marker in
           close_out oc);
        Unix.kill (Unix.getpid ()) Sys.sigkill
      end;
      MS.Property.no_loops enc ())

let fault_net () =
  let t = G.Enterprise.make ~seed:3 ~routers:8 ~inject:G.Enterprise.no_bugs () in
  t.G.Enterprise.network

let test_worker_killed_once () =
  let net = fault_net () in
  let enc = MS.Encode.build net MS.Options.default in
  let marker = Filename.temp_file "ms_poison" ".marker" in
  Sys.remove marker;
  let plain = Query.v "no-loops" (fun enc -> MS.Property.no_loops enc ()) in
  let others =
    [
      Query.v "isolation" (fun enc ->
          MS.Property.isolation enc
            ~sources:(MS.Encode.devices enc)
            (MS.Property.Device (List.hd (MS.Encode.devices enc))));
      Query.v "blackholes" (fun enc -> MS.Property.no_blackholes enc ());
      Query.v "loops-2" (fun enc -> MS.Property.no_loops enc ());
    ]
  in
  let sequential =
    MS.Verify.Session.run (MS.Verify.Session.of_encoding enc) (plain :: others)
  in
  let poisoned = poison_query "no-loops" marker ~always:false (Unix.getpid ()) :: others in
  let reports = Engine.run ~jobs:2 enc poisoned in
  if Sys.file_exists marker then Sys.remove marker;
  (* the killed worker's query was requeued and answered correctly *)
  check_same_reports "kill-once" sequential reports

let test_worker_killed_always () =
  let net = fault_net () in
  let enc = MS.Encode.build net MS.Options.default in
  let others =
    [
      Query.v "isolation" (fun enc ->
          MS.Property.isolation enc
            ~sources:(MS.Encode.devices enc)
            (MS.Property.Device (List.hd (MS.Encode.devices enc))));
      Query.v "blackholes" (fun enc -> MS.Property.no_blackholes enc ());
      Query.v "loops-2" (fun enc -> MS.Property.no_loops enc ());
    ]
  in
  let sequential = MS.Verify.Session.run (MS.Verify.Session.of_encoding enc) others in
  let poisoned =
    poison_query "poison" "/nonexistent-marker" ~always:true (Unix.getpid ()) :: others
  in
  let reports = Engine.run ~jobs:2 enc poisoned in
  Alcotest.(check int) "kill-always: complete report" 4 (List.length reports);
  Alcotest.(check (list string))
    "kill-always: order preserved"
    ("poison" :: labels sequential)
    (labels reports);
  (match reports with
   | poison :: rest ->
     (match poison.Report.verdict with
      | Report.Error _ -> ()
      | v -> Alcotest.failf "poison query should be an error, got %s" (Report.verdict_name v));
     Alcotest.(check (list string)) "kill-always: other verdicts" (verdicts sequential)
       (verdicts rest)
   | [] -> Alcotest.fail "empty report")

(* ---- timeouts ------------------------------------------------------------ *)

let timeout_queries () =
  [
    Query.v ~timeout:0.0 "doomed" (fun enc ->
        MS.Property.no_blackholes enc ());
    Query.v "normal" (fun enc -> MS.Property.no_loops enc ());
  ]

let check_timeout_reports name reports expected_normal =
  match reports with
  | [ doomed; normal ] ->
    Alcotest.(check string) (name ^ ": doomed verdict") "timeout"
      (Report.verdict_name doomed.Report.verdict);
    Alcotest.(check string) (name ^ ": later query unaffected") expected_normal
      (Report.verdict_name normal.Report.verdict)
  | rs -> Alcotest.failf "%s: expected 2 reports, got %d" name (List.length rs)

let test_timeout () =
  let net = fault_net () in
  let enc = MS.Encode.build net MS.Options.default in
  let expected =
    match MS.Verify.Session.run (MS.Verify.Session.of_encoding enc)
            [ Query.v "normal" (fun enc -> MS.Property.no_loops enc ()) ]
    with
    | [ r ] -> Report.verdict_name r.Report.verdict
    | _ -> Alcotest.fail "baseline"
  in
  (* in-process sequential path *)
  check_timeout_reports "sequential"
    (MS.Verify.Session.run (MS.Verify.Session.of_encoding enc) (timeout_queries ()))
    expected;
  (* forked path: the worker reports the timeout itself and survives *)
  check_timeout_reports "-j2" (Engine.run ~jobs:2 enc (timeout_queries ())) expected

(* ---- strategies ---------------------------------------------------------- *)

(* Every portfolio strategy is sound and complete: same verdicts on the
   same session-run suite. *)
let test_strategies_agree () =
  let ft = G.Fattree.make ~pods:2 in
  let enc = MS.Encode.build ft.G.Fattree.network MS.Options.default in
  let queries = fattree_queries ft in
  let baseline =
    verdicts (MS.Verify.Session.run (MS.Verify.Session.of_encoding enc) queries)
  in
  List.iter
    (fun (name, strategy) ->
      let got =
        verdicts (MS.Verify.Session.run (MS.Verify.Session.of_encoding ~strategy enc) queries)
      in
      Alcotest.(check (list string)) ("strategy " ^ name) baseline got)
    MS.Options.portfolio

(* ---- clause sharing ------------------------------------------------------ *)

(* Race-and-share must answer exactly like race-and-kill: shared
   clauses are consequences of the same input formula, so they steer
   the racers without changing any verdict. *)
let test_sharing_agrees () =
  let ft = G.Fattree.make ~pods:4 in
  let enc = MS.Encode.build ft.G.Fattree.network MS.Options.default in
  let queries = fattree_queries ft in
  let baseline =
    verdicts (MS.Verify.Session.run (MS.Verify.Session.of_encoding enc) queries)
  in
  let shared = verdicts (List.map (fun q -> Engine.portfolio ~share:true enc q) queries) in
  let solo = verdicts (List.map (fun q -> Engine.portfolio ~share:false enc q) queries) in
  Alcotest.(check (list string)) "sharing on" baseline shared;
  Alcotest.(check (list string)) "sharing off" baseline solo

(* Under --certify every imported clause is RUP-checked and logged by
   the importer, so the winner's certificate must still check whichever
   racer wins (and however many clauses it imported). *)
let test_sharing_certified () =
  let ft = G.Fattree.make ~pods:4 in
  let enc =
    MS.Encode.build ft.G.Fattree.network (MS.Options.with_certify MS.Options.default)
  in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  List.iter
    (fun q ->
      let r = Engine.portfolio ~share:true enc q in
      match r.Report.certificate with
      | Report.Checked_unsat_proof _ | Report.Checked_model -> ()
      | Report.Certification_failed msg ->
        Alcotest.failf "%s: certificate failed with sharing on: %s" r.Report.label msg
      | Report.Uncertified ->
        Alcotest.failf "%s: no certificate from a certify encoding (verdict %s)"
          r.Report.label
          (Report.verdict_name r.Report.verdict))
    [
      Query.v "all-tor-reachability" (fun enc ->
          MS.Property.reachability enc ~sources:other_tors dest);
      Query.v "isolation-should-fail" (fun enc ->
          MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest);
    ]

(* ---- report surface ------------------------------------------------------ *)

let test_report_json () =
  let net = fault_net () in
  let enc = MS.Encode.build net MS.Options.default in
  let reports =
    MS.Verify.Session.run
      (MS.Verify.Session.of_encoding enc)
      [
        Query.v "no-loops" (fun enc -> MS.Property.no_loops enc ());
        Query.v "isolation \"quoted\"" (fun enc ->
            MS.Property.isolation enc
              ~sources:(MS.Encode.devices enc)
              (MS.Property.Device (List.hd (MS.Encode.devices enc))));
      ]
  in
  List.iter
    (fun r ->
      let j = Report.to_json r in
      List.iter
        (fun key ->
          let re = Str.regexp_string key in
          (try ignore (Str.search_forward re j 0)
           with Not_found -> Alcotest.failf "missing %s in %s" key j))
        [ "\"label\""; "\"verdict\""; "\"wall_ms\""; "\"worker\""; "\"stats\""; "\"conflicts\"" ])
    reports;
  (* escaping: the quoted label must not break the object *)
  (match reports with
   | [ _; quoted ] ->
     let j = Report.to_json quoted in
     (try ignore (Str.search_forward (Str.regexp_string "isolation \\\"quoted\\\"") j 0)
      with Not_found -> Alcotest.failf "label not escaped: %s" j)
   | _ -> Alcotest.fail "expected two reports");
  let arr = Report.list_to_json reports in
  if String.length arr < 2 || arr.[0] <> '[' then Alcotest.failf "not an array: %s" arr

let mk label verdict =
  {
    Report.label;
    verdict;
    certificate = Report.Uncertified;
    wall_ms = 1.0;
    stats = Report.empty_stats;
    worker = 0;
    strategy = None;
    support = None;
    replayed = false;
    method_ = None;
  }

let test_exit_codes () =
  let cx_free = mk "a" Report.Verified in
  Alcotest.(check int) "all hold" 0 (Report.exit_code [ cx_free; cx_free ]);
  Alcotest.(check int) "timeout" 3 (Report.exit_code [ cx_free; mk "t" Report.Timeout ]);
  Alcotest.(check int) "error" 3 (Report.exit_code [ mk "e" (Report.Error "x") ]);
  Alcotest.(check int) "empty" 0 (Report.exit_code [])

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          Alcotest.test_case "enterprise clean" `Quick test_enterprise_clean;
          Alcotest.test_case "enterprise hijack" `Quick test_enterprise_hijack;
          Alcotest.test_case "fattree pods=2" `Quick test_fattree;
          Alcotest.test_case "all-pairs ordering -j3" `Quick test_ordering;
        ] );
      ( "faults",
        [
          Alcotest.test_case "worker killed once: requeued" `Quick test_worker_killed_once;
          Alcotest.test_case "worker killed always: error" `Quick test_worker_killed_always;
          Alcotest.test_case "per-query timeout" `Quick test_timeout;
        ] );
      ("strategies", [ Alcotest.test_case "portfolio variants agree" `Quick test_strategies_agree ]);
      ( "sharing",
        [
          Alcotest.test_case "share on/off verdicts agree" `Quick test_sharing_agrees;
          Alcotest.test_case "certify with imports" `Quick test_sharing_certified;
        ] );
      ( "reports",
        [
          Alcotest.test_case "json shape" `Quick test_report_json;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
    ]
