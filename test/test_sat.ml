(* Tests for the CDCL SAT core, including a differential qcheck test
   against a brute-force enumerator on random small CNFs. *)

module S = Smt.Sat

let result = Alcotest.testable (fun fmt r -> Format.pp_print_string fmt (match r with S.Sat -> "sat" | S.Unsat -> "unsat")) ( = )

let fresh_vars s n = Array.init n (fun _ -> S.new_var s)

let test_trivial_sat () =
  let s = S.create () in
  let v = fresh_vars s 2 in
  S.add_clause s [ S.pos_lit v.(0); S.pos_lit v.(1) ];
  S.add_clause s [ S.neg_lit v.(0) ];
  Alcotest.check result "sat" S.Sat (S.solve s);
  Alcotest.(check bool) "v0 false" false (S.value_var s v.(0));
  Alcotest.(check bool) "v1 true" true (S.value_var s v.(1))

let test_trivial_unsat () =
  let s = S.create () in
  let v = fresh_vars s 1 in
  S.add_clause s [ S.pos_lit v.(0) ];
  S.add_clause s [ S.neg_lit v.(0) ];
  Alcotest.check result "unsat" S.Unsat (S.solve s)

let test_empty_clause () =
  let s = S.create () in
  let _ = fresh_vars s 1 in
  S.add_clause s [];
  Alcotest.check result "unsat" S.Unsat (S.solve s)

let test_no_clauses () =
  let s = S.create () in
  let _ = fresh_vars s 3 in
  Alcotest.check result "sat" S.Sat (S.solve s)

(* Pigeonhole: n+1 pigeons in n holes is unsatisfiable and needs real
   conflict-driven search, exercising learning and backjumping. *)
let pigeonhole_into s n =
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> S.new_var s)) in
  for p = 0 to n do
    S.add_clause s (List.init n (fun h -> S.pos_lit var.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        S.add_clause s [ S.neg_lit var.(p1).(h); S.neg_lit var.(p2).(h) ]
      done
    done
  done

let pigeonhole n =
  let s = S.create () in
  pigeonhole_into s n;
  s

let test_pigeonhole () =
  for n = 2 to 6 do
    Alcotest.check result (Printf.sprintf "php %d" n) S.Unsat (S.solve (pigeonhole n))
  done

(* Graph-coloring style satisfiable instance with many propagations. *)
let test_chain_implications () =
  let s = S.create () in
  let n = 200 in
  let v = fresh_vars s n in
  for i = 0 to n - 2 do
    S.add_clause s [ S.neg_lit v.(i); S.pos_lit v.(i + 1) ]
  done;
  S.add_clause s [ S.pos_lit v.(0) ];
  Alcotest.check result "sat" S.Sat (S.solve s);
  for i = 0 to n - 1 do
    if not (S.value_var s v.(i)) then Alcotest.failf "var %d should be true" i
  done

let test_final_check_veto () =
  (* A final_check that rejects every assignment where v0 = v1 forces the
     solver to find a model with v0 <> v1. *)
  let s = S.create () in
  let v = fresh_vars s 2 in
  S.add_clause s [ S.pos_lit v.(0); S.pos_lit v.(1) ];
  let final_check s =
    if S.value_var s v.(0) = S.value_var s v.(1) then begin
      let lit_of i = if S.value_var s v.(i) then S.neg_lit v.(i) else S.pos_lit v.(i) in
      [ [ lit_of 0; lit_of 1 ] ]
    end
    else []
  in
  Alcotest.check result "sat" S.Sat (S.solve ~final_check s);
  Alcotest.(check bool) "differ" true (S.value_var s v.(0) <> S.value_var s v.(1))

let test_final_check_unsat () =
  (* Vetoing everything makes the instance unsatisfiable. *)
  let s = S.create () in
  let v = fresh_vars s 3 in
  let final_check s =
    let lit_of i = if S.value_var s v.(i) then S.neg_lit v.(i) else S.pos_lit v.(i) in
    [ [ lit_of 0; lit_of 1; lit_of 2 ] ]
  in
  Alcotest.check result "unsat" S.Unsat (S.solve ~final_check s)

(* --- assumptions and incremental reuse ------------------------------------- *)

let test_assumptions_basic () =
  let s = S.create () in
  let v = fresh_vars s 2 in
  S.add_clause s [ S.pos_lit v.(0); S.pos_lit v.(1) ];
  (* Satisfiable alone and under one-sided assumptions... *)
  Alcotest.check result "free" S.Sat (S.solve s);
  Alcotest.check result "assume ~v0" S.Sat (S.solve ~assumptions:[ S.neg_lit v.(0) ] s);
  Alcotest.(check bool) "v1 forced" true (S.value_var s v.(1));
  (* ...but not when both disjuncts are assumed away. *)
  Alcotest.check result "assume ~v0 ~v1" S.Unsat
    (S.solve ~assumptions:[ S.neg_lit v.(0); S.neg_lit v.(1) ] s);
  let core = S.unsat_core s in
  Alcotest.(check bool) "core nonempty" true (core <> []);
  List.iter
    (fun l ->
      if not (List.mem l [ S.neg_lit v.(0); S.neg_lit v.(1) ]) then
        Alcotest.failf "core literal %d is not an assumption" l)
    core;
  (* The solver is still usable, and not poisoned by the failed call. *)
  Alcotest.check result "free again" S.Sat (S.solve s)

let test_assumptions_contradictory () =
  let s = S.create () in
  let v = fresh_vars s 2 in
  S.add_clause s [ S.pos_lit v.(0); S.pos_lit v.(1) ];
  Alcotest.check result "p and ~p" S.Unsat
    (S.solve ~assumptions:[ S.pos_lit v.(0); S.neg_lit v.(0) ] s);
  let core = List.sort compare (S.unsat_core s) in
  Alcotest.(check (list int)) "core is the pair" [ S.pos_lit v.(0); S.neg_lit v.(0) ] core

let test_assumption_false_at_level0 () =
  let s = S.create () in
  let v = fresh_vars s 1 in
  S.add_clause s [ S.neg_lit v.(0) ];
  Alcotest.check result "forced false" S.Unsat (S.solve ~assumptions:[ S.pos_lit v.(0) ] s);
  Alcotest.(check (list int)) "core singleton" [ S.pos_lit v.(0) ] (S.unsat_core s)

let test_incremental_clause_growth () =
  (* Enumerate all models of "at least one of 3" by excluding each model
     found, exercising solve / add_clause interleaving. *)
  let s = S.create () in
  let v = fresh_vars s 3 in
  S.add_clause s [ S.pos_lit v.(0); S.pos_lit v.(1); S.pos_lit v.(2) ];
  let count = ref 0 in
  while S.solve s = S.Sat do
    incr count;
    if !count > 7 then Alcotest.fail "more models than assignments";
    S.add_clause s
      (List.init 3 (fun i -> if S.value_var s v.(i) then S.neg_lit v.(i) else S.pos_lit v.(i)))
  done;
  Alcotest.(check int) "7 models" 7 !count

let test_unsat_is_permanent () =
  let s = S.create () in
  let v = fresh_vars s 1 in
  S.add_clause s [ S.pos_lit v.(0) ];
  S.add_clause s [ S.neg_lit v.(0) ];
  Alcotest.check result "unsat" S.Unsat (S.solve s);
  Alcotest.(check (list int)) "no core: formula itself unsat" [] (S.unsat_core s);
  Alcotest.check result "still unsat under assumptions" S.Unsat
    (S.solve ~assumptions:[ S.pos_lit v.(0) ] s)

(* --- learnt-database reduction vs locked clauses (the PR 5 bug class) ------ *)

(* With the learnt cap tiny, a database reduction runs every few
   conflicts while many learnt clauses are serving as trail reasons.
   The historical bug compared reason values physically against a
   freshly boxed [Some clause] — always false — so reductions deleted
   locked clauses and conflict analysis cited deleted antecedents.  In
   the arena representation reasons are crefs and [locked] is integer
   equality, but a reintroduced fresh-box (or otherwise always-false)
   comparison would again delete live reasons; compaction then clears
   their [reason] slots, and conflict analysis hits the missing-reason
   assertion or derives garbage.  Correct Unsat answers under thousands
   of forced reductions *and* at least one arena compaction are the
   regression signal; both reduction policies (activity and LBD) are
   exercised. *)
let test_locked_clauses_survive_reduction () =
  List.iter
    (fun lbd ->
      let s = S.create () in
      S.set_lbd s lbd;
      S.set_max_learnts s 3;
      pigeonhole_into s 6;
      Alcotest.check result
        (Printf.sprintf "php 6 under constant reduction (lbd=%b)" lbd)
        S.Unsat (S.solve s);
      if S.num_compactions s = 0 then
        Alcotest.failf "expected arena compactions under lbd=%b (wasted %d of %d words)" lbd
          (S.arena_wasted_words s) (S.arena_words s))
    [ false; true ]

(* The same stress under assumptions: the refutation is independent of
   the (irrelevant) assumed literal, so the reported core must be empty,
   and the solver must stay reusable after the stressed call. *)
let test_reduction_stress_incremental () =
  let s = S.create () in
  S.set_max_learnts s 3;
  let extra = S.new_var s in
  pigeonhole_into s 5;
  Alcotest.check result "unsat under irrelevant assumption" S.Unsat
    (S.solve ~assumptions:[ S.pos_lit extra ] s);
  Alcotest.(check (list int)) "core empty: formula itself unsat" [] (S.unsat_core s);
  Alcotest.check result "still unsat" S.Unsat (S.solve s)

(* --- differential testing against brute force ----------------------------- *)

let brute_force nvars clauses =
  let rec go assignment i =
    if i = nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let v = l / 2 and neg = l land 1 = 1 in
              if neg then not assignment.(v) else assignment.(v))
            clause)
        clauses
    else begin
      assignment.(i) <- false;
      go assignment (i + 1)
      ||
      (assignment.(i) <- true;
       go assignment (i + 1))
    end
  in
  go (Array.make nvars false) 0

let cnf_gen =
  let open QCheck.Gen in
  let nvars = 8 in
  let lit = map2 (fun v neg -> (2 * v) + if neg then 1 else 0) (int_range 0 (nvars - 1)) bool in
  let clause = list_size (int_range 1 3) lit in
  let cnf = list_size (int_range 1 40) clause in
  map (fun clauses -> (nvars, clauses)) cnf

let prop_matches_brute_force =
  QCheck.Test.make ~name:"cdcl matches brute force" ~count:500
    (QCheck.make cnf_gen)
    (fun (nvars, clauses) ->
      let s = S.create () in
      let v = fresh_vars s nvars in
      List.iter (fun c -> S.add_clause s (List.map (fun l -> if l land 1 = 1 then S.neg_lit v.(l / 2) else S.pos_lit v.(l / 2)) c)) clauses;
      let got = S.solve s = S.Sat in
      let expected = brute_force nvars clauses in
      if got <> expected then QCheck.Test.fail_reportf "solver=%b brute=%b" got expected;
      (* When satisfiable, the produced model must satisfy every clause. *)
      (not got)
      || List.for_all
           (fun c ->
             List.exists
               (fun l ->
                 let value = S.value_var s v.(l / 2) in
                 if l land 1 = 1 then not value else value)
               c)
           clauses)

(* --- differential testing of assumption-based solving ---------------------- *)

(* One incremental solver answering a sequence of assumption sets must
   agree with a fresh solver given the assumptions as unit clauses, and
   every unsat core must itself be unsatisfiable with the formula. *)
let cnf_with_assumptions_gen =
  let open QCheck.Gen in
  let nvars = 8 in
  let lit = map2 (fun v neg -> (2 * v) + if neg then 1 else 0) (int_range 0 (nvars - 1)) bool in
  let clause = list_size (int_range 1 3) lit in
  let cnf = list_size (int_range 1 40) clause in
  let assumption_set = list_size (int_range 0 5) lit in
  map3
    (fun clauses a1 a2 -> (nvars, clauses, a1, a2))
    cnf assumption_set assumption_set

let fresh_result nvars clauses units =
  let s = S.create () in
  let v = fresh_vars s nvars in
  let tr l = if l land 1 = 1 then S.neg_lit v.(l / 2) else S.pos_lit v.(l / 2) in
  List.iter (fun c -> S.add_clause s (List.map tr c)) clauses;
  List.iter (fun l -> S.add_clause s [ tr l ]) units;
  S.solve s

let prop_assumptions_match_fresh =
  QCheck.Test.make ~name:"assumption solving matches fresh solver with units" ~count:300
    (QCheck.make cnf_with_assumptions_gen)
    (fun (nvars, clauses, a1, a2) ->
      let s = S.create () in
      let v = fresh_vars s nvars in
      let tr l = if l land 1 = 1 then S.neg_lit v.(l / 2) else S.pos_lit v.(l / 2) in
      List.iter (fun c -> S.add_clause s (List.map tr c)) clauses;
      (* The same incremental solver answers three queries in a row. *)
      List.iteri
        (fun round assumptions ->
          let got = S.solve ~assumptions:(List.map tr assumptions) s in
          let expected = fresh_result nvars clauses assumptions in
          if got <> expected then
            QCheck.Test.fail_reportf "round %d: incremental=%s fresh=%s" round
              (match got with S.Sat -> "sat" | S.Unsat -> "unsat")
              (match expected with S.Sat -> "sat" | S.Unsat -> "unsat");
          (match got with
           | S.Sat ->
             (* Model satisfies the clauses and every assumption. *)
             List.iter
               (fun c ->
                 if not (List.exists (fun l -> S.value_lit s (tr l)) c) then
                   QCheck.Test.fail_reportf "round %d: clause unsatisfied" round)
               clauses;
             List.iter
               (fun l ->
                 if not (S.value_lit s (tr l)) then
                   QCheck.Test.fail_reportf "round %d: assumption unsatisfied" round)
               assumptions
           | S.Unsat ->
             let core = S.unsat_core s in
             (* Core literals are assumption literals... *)
             List.iter
               (fun cl ->
                 if not (List.exists (fun l -> tr l = cl) assumptions) then
                   QCheck.Test.fail_reportf "round %d: core literal not assumed" round)
               core;
             (* ...and the core alone (as units) is still unsatisfiable.
                Variables are allocated contiguously from 0 in both
                solvers, so core literals transfer verbatim. *)
             let s2 = S.create () in
             let _ = fresh_vars s2 nvars in
             List.iter (fun c -> S.add_clause s2 (List.map tr c)) clauses;
             List.iter (fun cl -> S.add_clause s2 [ cl ]) core;
             if S.solve s2 <> S.Unsat then
               QCheck.Test.fail_reportf "round %d: unsat core is not a core" round))
        [ a1; a2; a1 ];
      true)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "no clauses" `Quick test_no_clauses;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "implication chain" `Quick test_chain_implications;
          Alcotest.test_case "final_check veto" `Quick test_final_check_veto;
          Alcotest.test_case "final_check unsat" `Quick test_final_check_unsat;
          Alcotest.test_case "assumptions basic" `Quick test_assumptions_basic;
          Alcotest.test_case "assumptions contradictory" `Quick test_assumptions_contradictory;
          Alcotest.test_case "assumption false at level 0" `Quick test_assumption_false_at_level0;
          Alcotest.test_case "incremental clause growth" `Quick test_incremental_clause_growth;
          Alcotest.test_case "unsat is permanent" `Quick test_unsat_is_permanent;
          Alcotest.test_case "locked clauses survive reduction" `Quick
            test_locked_clauses_survive_reduction;
          Alcotest.test_case "reduction stress incremental" `Quick
            test_reduction_stress_incremental;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_assumptions_match_fresh;
        ] );
    ]
