(* Differential coverage for the four solver-throughput fronts
   (polarity-aware CNF, level-0 preprocessing, theory propagation, LBD
   clause management): every one of the 2^4 feature combinations must
   give exactly the verdicts of the all-off baseline on the enterprise
   and fattree suites, with well-formed counterexamples; a QCheck
   differential pits random feature combinations against the concrete
   routing simulator; and unit tests pin down pure-literal model
   reconstruction, including the frozen-theory-atom case the Solver
   layer depends on. *)

module MS = Minesweeper

(* shims over the Query/Report API for the bare outcomes these tests match on *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
module G = Generators
module A = Config.Ast
module T = Smt.Term
module P = Net.Prefix
module Ip = Net.Ipv4

let parse = Config.Parser.parse_network
let violated = function MS.Verify.Violation _ -> true | MS.Verify.Holds -> false

(* All 16 feature combinations, all-off first. *)
let combos =
  List.init 16 (fun bits ->
      let feats =
        {
          Smt.Solver.pg_cnf = bits land 1 <> 0;
          preprocess = bits land 2 <> 0;
          theory_prop = bits land 4 <> 0;
          lbd = bits land 8 <> 0;
        }
      in
      let name =
        if bits = 0 then "off"
        else
          String.concat "+"
            (List.filter_map
               (fun (b, n) -> if bits land b <> 0 then Some n else None)
               [ (1, "pg"); (2, "pre"); (4, "tp"); (8, "lbd") ])
      in
      (name, feats))

(* Every forwarding edge of a decoded counterexample must be a next-hop
   the encoding actually offers. *)
let check_cx_valid name enc (cx : MS.Counterexample.t) =
  List.iter
    (fun (d, hop) ->
      if not (List.mem d (MS.Encode.devices enc)) then
        Alcotest.failf "%s: counterexample forwards at unknown device %s" name d;
      (match hop with
       | MS.Nexthop.To_device n ->
         if not (List.mem n (MS.Encode.internal_neighbors enc d)) then
           Alcotest.failf "%s: counterexample edge %s -> %s is not in the model" name d n
       | _ -> ());
      if not (List.mem hop (MS.Encode.hops enc d)) then
        Alcotest.failf "%s: counterexample hop at %s is not offered by the encoding" name d)
    cx.MS.Counterexample.forwarding

(* For each feature combination, run the whole suite on encodings built
   with that combination (fresh single-shot solver per query) and
   demand the all-off verdicts. *)
let feature_grid name net (props : (string * (MS.Encode.t -> MS.Property.t)) list) =
  let run feats =
    let opts = MS.Options.with_features feats MS.Options.default in
    let enc = MS.Encode.build net opts in
    ( enc,
      List.map
        (fun (pname, make) -> (pname, MS.Verify.run_query enc (MS.Verify.Query.v pname make)))
        props )
  in
  let _, baseline = run Smt.Solver.no_features in
  List.iter
    (fun (cname, feats) ->
      let enc, reports = run feats in
      List.iter2
        (fun (pname, (base : MS.Verify.Report.t)) (_, (r : MS.Verify.Report.t)) ->
          let basev = MS.Verify.Report.verdict_name base.MS.Verify.Report.verdict in
          let rv = MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict in
          if basev <> rv then
            Alcotest.failf "%s/%s on %s: all-off says %s, %s says %s" name cname pname basev
              cname rv;
          match r.MS.Verify.Report.verdict with
          | MS.Verify.Report.Violated cx ->
            check_cx_valid (name ^ "/" ^ cname ^ "/" ^ pname) enc cx
          | _ -> ())
        baseline reports)
    combos

let test_enterprise_grid () =
  (* hijack injected: the grid must agree on violations too *)
  let t =
    G.Enterprise.make ~seed:5 ~routers:8
      ~inject:{ G.Enterprise.hijack = true; acl_gap = false; deep_drop = false; single_homed = false }
      ()
  in
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  let mgmt_dest = MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target) in
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  feature_grid "enterprise" net
    [
      ("mgmt-reachability", fun enc -> MS.Property.reachability enc ~sources:devices mgmt_dest);
      ("no-blackholes", fun enc -> MS.Property.no_blackholes enc ~allowed ());
      ("no-loops", fun enc -> MS.Property.no_loops enc ());
    ]

let test_fattree_grid () =
  let ft = G.Fattree.make ~pods:2 in
  let net = ft.G.Fattree.network in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  feature_grid "fattree" net
    [
      ( "all-tor-reachability",
        fun enc -> MS.Property.reachability enc ~sources:other_tors dest );
      ("multipath-consistency", fun enc -> MS.Property.multipath_consistency enc dest);
      ( "isolation-should-fail",
        fun enc -> MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest );
    ]

(* -- QCheck: random nets, random feature combination, simulator oracle ----- *)

(* Random OSPF networks (a random tree plus an optional chord, random
   costs, one subnet per device, an optional ACL): subnet-to-subnet
   reachability under a random feature combination must coincide with
   the concrete simulator. *)
let build_random_net seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 3 in
  let b = Buffer.create 1024 in
  let link_id = ref 0 in
  let iface_count = Array.make n 0 in
  let links = ref [] in
  let add_link i j =
    let id = !link_id in
    incr link_id;
    links := (i, j, id) :: !links
  in
  for i = 1 to n - 1 do
    add_link (Random.State.int rng i) i
  done;
  if n > 3 && Random.State.bool rng then begin
    let i = Random.State.int rng n and j = Random.State.int rng n in
    if i <> j && not (List.exists (fun (a, b, _) -> (a = i && b = j) || (a = j && b = i)) !links)
    then add_link (min i j) (max i j)
  end;
  let acl_router = if Random.State.int rng 3 = 0 then Some (Random.State.int rng n) else None in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "hostname R%d\n" i);
    List.iter
      (fun (a, b', id) ->
        if a = i || b' = i then begin
          let side = if a = i then 1 else 2 in
          Buffer.add_string b
            (Printf.sprintf "interface e%d\n ip address 172.31.%d.%d/30\n ip ospf cost %d\n"
               iface_count.(i) id side
               (1 + ((id + i) mod 3)))
        end;
        if a = i || b' = i then iface_count.(i) <- iface_count.(i) + 1)
      !links;
    let acl = acl_router = Some i in
    Buffer.add_string b (Printf.sprintf "interface lan\n ip address 10.50.%d.1/24\n" i);
    if acl then begin
      Buffer.add_string b " ip access-group G out\n";
      Buffer.add_string b "access-list G deny ip any 10.50.0.0/16\naccess-list G permit ip any any\n"
    end;
    Buffer.add_string b "router ospf 1\n network 0.0.0.0/0\n!\n"
  done;
  (parse (Buffer.contents b), n)

let prop_feature_oracle =
  QCheck.Test.make ~name:"random feature combos match the routing simulator" ~count:20
    (QCheck.make QCheck.Gen.(int_range 0 99999))
    (fun seed ->
      let net, n = build_random_net seed in
      let _, feats = List.nth combos (seed mod 16) in
      let opts = MS.Options.with_features feats MS.Options.default in
      let state = Routing.Simulator.run net Routing.Simulator.empty_env in
      let src = "R0" in
      for dst = 1 to min 2 (n - 1) do
        let subnet = P.make (Ip.of_octets 10 50 dst 0) 24 in
        let concrete =
          Routing.Dataplane.reachable net state ~src ~dst:(Ip.of_octets 10 50 dst 77)
        in
        let enc = MS.Encode.build net opts in
        let prop =
          MS.Property.reachability enc ~sources:[ src ]
            (MS.Property.Subnet (Printf.sprintf "R%d" dst, subnet))
        in
        let symbolic = not (violated (verify_check enc prop)) in
        if concrete <> symbolic then
          QCheck.Test.fail_reportf "seed %d combo %d dst R%d: simulator=%b encoder=%b" seed
            (seed mod 16) dst concrete symbolic
      done;
      true)

(* -- pure-literal elimination: model reconstruction ------------------------ *)

(* Pure literals are fixed at level 0, so the SAT model must still
   satisfy every original clause — including the ones the fixing
   removed from the live database. *)
let test_pure_literal_model () =
  let s = Smt.Sat.create () in
  Smt.Sat.set_simplify s true;
  Smt.Sat.set_pure_elim s true;
  let p = Smt.Sat.new_var s in
  let a = Smt.Sat.new_var s in
  let b = Smt.Sat.new_var s in
  (* p occurs only positively; a and b both ways. *)
  let clauses =
    [
      [ Smt.Sat.pos_lit p; Smt.Sat.pos_lit a ];
      [ Smt.Sat.pos_lit p; Smt.Sat.pos_lit b ];
      [ Smt.Sat.neg_lit a; Smt.Sat.neg_lit b ];
    ]
  in
  List.iter (Smt.Sat.add_clause s) clauses;
  (match Smt.Sat.solve s with
   | Smt.Sat.Sat -> ()
   | Smt.Sat.Unsat -> Alcotest.fail "pure-literal instance is satisfiable");
  List.iteri
    (fun i c ->
      if not (List.exists (Smt.Sat.value_lit s) c) then
        Alcotest.failf "model violates original clause %d after pure-literal elimination" i)
    clauses

(* A frozen variable must survive pure-literal elimination even when it
   occurs with a single polarity. *)
let test_pure_literal_frozen () =
  let s = Smt.Sat.create () in
  Smt.Sat.set_simplify s true;
  Smt.Sat.set_pure_elim s true;
  let p = Smt.Sat.new_var s in
  let atom = Smt.Sat.new_var s in
  Smt.Sat.freeze_var s atom;
  Smt.Sat.add_clause s [ Smt.Sat.pos_lit p; Smt.Sat.pos_lit atom ];
  (* External (theory-style) veto: any full assignment with [atom] true
     is rejected.  If pure-literal elimination had fixed the frozen
     [atom] true, the search could never recover. *)
  let final_check s' =
    if Smt.Sat.value_var s' atom then [ [ Smt.Sat.neg_lit atom ] ] else []
  in
  (match Smt.Sat.solve ~final_check s with
   | Smt.Sat.Sat -> ()
   | Smt.Sat.Unsat -> Alcotest.fail "frozen-atom instance is satisfiable (p true, atom false)");
  Alcotest.(check bool) "p carries the clause" true (Smt.Sat.value_var s p);
  Alcotest.(check bool) "frozen atom respects the theory" false (Smt.Sat.value_var s atom)

(* Same shape at the Solver layer: [p \/ (x - y <= -1)] with the theory
   forcing x = y.  The atom occurs only positively in the CNF; it must
   stay open for the difference-logic solver to refute, leaving p to
   carry the disjunction.  All four fronts on — this is exactly the
   configuration Verify uses for single-shot queries. *)
let test_pure_literal_theory_atom () =
  let s = Smt.Solver.create ~features:Smt.Solver.default_features () in
  let x = T.var "x" Smt.Sort.Int in
  let y = T.var "y" Smt.Sort.Int in
  let p = T.var "p" Smt.Sort.Bool in
  Smt.Solver.assert_term s (T.or_ [ p; T.lt (T.sub x y) (T.int_const 0) ]);
  Smt.Solver.assert_term s (T.eq x y);
  (match Smt.Solver.check s with
   | Smt.Solver.Sat m ->
     Alcotest.(check bool) "p must be true" true (Smt.Model.bool_value m p);
     Alcotest.(check int) "x = y in the model" (Smt.Model.int_value m x)
       (Smt.Model.int_value m y)
   | Smt.Solver.Unsat -> Alcotest.fail "satisfiable: p true, x = y")

(* -- restart and phase scheduling: strategy differential ------------------- *)

(* The four restart-mode x rephasing corners.  Like the feature grid,
   every corner is sound and complete: identical verdicts, valid
   counterexamples. *)
let strategy_combos =
  let d = Smt.Solver.default_strategy in
  [
    ("luby", { d with Smt.Solver.restart_mode = Smt.Solver.Luby; rephase = false });
    ("luby+rephase", { d with Smt.Solver.restart_mode = Smt.Solver.Luby; rephase = true });
    ("ema", { d with Smt.Solver.restart_mode = Smt.Solver.Ema_lbd; rephase = false });
    ("ema+rephase", { d with Smt.Solver.restart_mode = Smt.Solver.Ema_lbd; rephase = true });
  ]

let strategy_grid name net (props : (string * (MS.Encode.t -> MS.Property.t)) list) =
  let run strategy =
    let opts = MS.Options.with_strategy strategy MS.Options.default in
    let enc = MS.Encode.build net opts in
    ( enc,
      List.map
        (fun (pname, make) -> (pname, MS.Verify.run_query enc (MS.Verify.Query.v pname make)))
        props )
  in
  match strategy_combos with
  | [] -> assert false
  | (_, first) :: _ ->
    let _, baseline = run first in
    List.iter
      (fun (cname, strategy) ->
        let enc, reports = run strategy in
        List.iter2
          (fun (pname, (base : MS.Verify.Report.t)) (_, (r : MS.Verify.Report.t)) ->
            let basev = MS.Verify.Report.verdict_name base.MS.Verify.Report.verdict in
            let rv = MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict in
            if basev <> rv then
              Alcotest.failf "%s/%s on %s: %s vs baseline %s" name cname pname rv basev;
            match r.MS.Verify.Report.verdict with
            | MS.Verify.Report.Violated cx ->
              check_cx_valid (name ^ "/" ^ cname ^ "/" ^ pname) enc cx
            | _ -> ())
          baseline reports)
      strategy_combos

let test_enterprise_strategy_grid () =
  let t =
    G.Enterprise.make ~seed:5 ~routers:8
      ~inject:{ G.Enterprise.hijack = true; acl_gap = false; deep_drop = false; single_homed = false }
      ()
  in
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  let mgmt_dest = MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target) in
  strategy_grid "enterprise" net
    [
      ("mgmt-reachability", fun enc -> MS.Property.reachability enc ~sources:devices mgmt_dest);
      ("no-loops", fun enc -> MS.Property.no_loops enc ());
    ]

let test_fattree_strategy_grid () =
  let ft = G.Fattree.make ~pods:2 in
  let net = ft.G.Fattree.network in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  strategy_grid "fattree" net
    [
      ( "all-tor-reachability",
        fun enc -> MS.Property.reachability enc ~sources:other_tors dest );
      ( "isolation-should-fail",
        fun enc -> MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest );
    ]

(* Pigeonhole: n+1 pigeons into n holes.  Unsatisfiable with an
   exponential resolution lower bound — the cheapest way to force
   thousands of conflicts (hence restarts, rephases and low-LBD learnt
   clauses) out of a few dozen variables. *)
let add_pigeonhole s n =
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Smt.Sat.new_var s)) in
  for p = 0 to n do
    Smt.Sat.add_clause s (List.init n (fun h -> Smt.Sat.pos_lit var.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Smt.Sat.add_clause s [ Smt.Sat.neg_lit var.(p1).(h); Smt.Sat.neg_lit var.(p2).(h) ]
      done
    done
  done

(* The adaptive machinery must actually engage on a conflict-heavy
   instance: EMA-triggered restarts, at least one blocked restart or
   none (blocking needs 5000+ conflicts; don't demand it), and
   rephasing on its widening cadence. *)
let test_ema_rephase_engage () =
  let s = Smt.Sat.create () in
  Smt.Sat.set_strategy s
    { Smt.Sat.default_strategy with Smt.Sat.restart_mode = Smt.Sat.Ema_lbd; rephase = true };
  Smt.Sat.set_lbd s true;
  add_pigeonhole s 7;
  (match Smt.Sat.solve s with
   | Smt.Sat.Unsat -> ()
   | Smt.Sat.Sat -> Alcotest.fail "pigeonhole 8->7 must be unsat");
  if Smt.Sat.num_conflicts s < 1000 then
    Alcotest.failf "expected a conflict-heavy run, got %d conflicts" (Smt.Sat.num_conflicts s);
  if Smt.Sat.num_ema_restarts s = 0 then
    Alcotest.fail "Ema_lbd mode performed no EMA-triggered restart";
  if Smt.Sat.num_rephases s = 0 then Alcotest.fail "rephasing never fired"

(* -- clause sharing: export, certified import ------------------------------ *)

(* Exporter A and importer B solve the same CNF (identical variable
   numbering).  A's exported low-LBD clauses import into B with proof
   logging on; B's trace — inputs, P_rup imports, its own learnt
   clauses — must then replay through the independent checker.  This is
   the single-process version of the portfolio exchange, deterministic
   enough for CI. *)
let test_sharing_certified () =
  let a = Smt.Sat.create () in
  Smt.Sat.set_lbd a true;
  Smt.Sat.set_share a ~max_lbd:8 ~max_len:30;
  add_pigeonhole a 7;
  (match Smt.Sat.solve a with
   | Smt.Sat.Unsat -> ()
   | Smt.Sat.Sat -> Alcotest.fail "exporter: pigeonhole must be unsat");
  let exported = Smt.Sat.drain_exports a in
  if exported = [] then Alcotest.fail "exporter produced no shareable clauses";
  Alcotest.(check int) "exported counter" (List.length exported) (Smt.Sat.num_exported a);
  let b = Smt.Sat.create () in
  Smt.Sat.enable_proof b;
  Smt.Sat.set_lbd b true;
  add_pigeonhole b 7;
  let accepted =
    List.fold_left (fun k c -> if Smt.Sat.import_clause b c then k + 1 else k) 0 exported
  in
  if accepted = 0 then Alcotest.fail "no exported clause was RUP for the importer";
  Alcotest.(check int) "imported counter" accepted (Smt.Sat.num_imported b);
  (match Smt.Sat.solve b with
   | Smt.Sat.Unsat -> ()
   | Smt.Sat.Sat -> Alcotest.fail "importer: pigeonhole must be unsat");
  match Proof.Checker.run ~goal:Proof.Checker.Empty (Smt.Sat.proof_steps b) with
  | Ok summary ->
    if summary.Proof.Checker.rup_checked < accepted then
      Alcotest.failf "checker confirmed %d RUP steps, expected at least the %d imports"
        summary.Proof.Checker.rup_checked accepted
  | Error msg -> Alcotest.failf "importer trace rejected: %s" msg

(* A clause that is NOT a consequence must be refused by the certified
   import path (and accepted blindly with proof off — the caller owns
   provenance there, exactly like [P_input]). *)
let test_import_non_rup_dropped () =
  let b = Smt.Sat.create () in
  Smt.Sat.enable_proof b;
  let x = Smt.Sat.new_var b in
  let y = Smt.Sat.new_var b in
  Smt.Sat.add_clause b [ Smt.Sat.pos_lit x; Smt.Sat.pos_lit y ];
  (* [x] alone is not RUP: negating it propagates nothing contradictory *)
  if Smt.Sat.import_clause b [| Smt.Sat.pos_lit x |] then
    Alcotest.fail "non-RUP import accepted under proof logging";
  Alcotest.(check int) "nothing imported" 0 (Smt.Sat.num_imported b)

let () =
  Alcotest.run "solver-features"
    [
      ( "feature-grid",
        [
          Alcotest.test_case "enterprise 16 combos" `Quick test_enterprise_grid;
          Alcotest.test_case "fattree 16 combos" `Quick test_fattree_grid;
        ] );
      ( "strategy-grid",
        [
          Alcotest.test_case "enterprise restart x rephase" `Quick
            test_enterprise_strategy_grid;
          Alcotest.test_case "fattree restart x rephase" `Quick test_fattree_strategy_grid;
          Alcotest.test_case "ema + rephase engage" `Quick test_ema_rephase_engage;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "certified import round-trip" `Quick test_sharing_certified;
          Alcotest.test_case "non-RUP import dropped" `Quick test_import_non_rup_dropped;
        ] );
      ( "pure-literals",
        [
          Alcotest.test_case "model reconstruction" `Quick test_pure_literal_model;
          Alcotest.test_case "frozen var survives" `Quick test_pure_literal_frozen;
          Alcotest.test_case "theory atom stays open" `Quick test_pure_literal_theory_atom;
        ] );
      ("oracle", [ QCheck_alcotest.to_alcotest prop_feature_oracle ]);
    ]
