(* Tests for the static-analysis subsystem: one positive configuration
   and one clean configuration per diagnostic code, the JSON renderer,
   the encoder pre-flight hook, and differential tests showing that
   lint-driven slicing preserves verdicts while shrinking encodings. *)

module A = Config.Ast
module MS = Minesweeper

(* shims over the Query/Report API for the bare outcomes these tests match on *)
let verify_net net opts make =
  let enc = MS.Encode.build net opts in
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.v "query" make))
module D = Analysis.Diagnostic
module P = Net.Prefix

let parse = Config.Parser.parse_network
let codes text = List.map (fun (d : D.t) -> d.D.code) (Analysis.Lint.run (parse text))
let has code text = List.mem code (codes text)

let check_has code text =
  if not (has code text) then
    Alcotest.failf "expected %s, got [%s]" code (String.concat "; " (codes text))

let check_not code text =
  if has code text then Alcotest.failf "unexpected %s" code

(* A well-formed two-router eBGP pair: every object defined and used,
   sessions reciprocal with agreeing AS numbers, distinct router-ids. *)
let clean_pair =
  {|hostname C1
interface e0
 ip address 10.0.0.1/30
 ip access-group FILT in
interface e1
 ip address 10.1.0.1/24
!
ip prefix-list ALL permit 0.0.0.0/0 le 32
access-list FILT permit ip any any
route-map IMP permit 10
 match ip address prefix-list ALL
!
router bgp 100
 bgp router-id 1.1.1.1
 network 10.1.0.0/24
 neighbor 10.0.0.2 remote-as 200
 neighbor 10.0.0.2 route-map IMP in
!
hostname C2
interface e0
 ip address 10.0.0.2/30
interface e1
 ip address 10.2.0.1/24
!
router bgp 200
 bgp router-id 2.2.2.2
 network 10.2.0.0/24
 neighbor 10.0.0.1 remote-as 100
|}

let test_clean () =
  let diags = Analysis.Lint.run (parse clean_pair) in
  Alcotest.(check int) "no findings" 0 (List.length diags);
  Alcotest.(check int) "exit code" 0 (Analysis.Lint.exit_code diags)

(* -- reference analysis -------------------------------------------------------- *)

let one_router body =
  {|hostname R1
interface e0
 ip address 10.0.0.1/30
interface e1
 ip address 10.1.0.1/24
!
|}
  ^ body

let test_undefined_refs () =
  (* MS-E001: route-map applied but not defined *)
  check_has "MS-E001"
    (one_router
       "router bgp 100\n neighbor 10.0.0.2 remote-as 200\n neighbor 10.0.0.2 route-map NOPE in\n");
  (* MS-E002: route-map matches a prefix-list that is not defined *)
  check_has "MS-E002"
    (one_router
       "route-map RM permit 10\n match ip address prefix-list GHOST\n!\n\
        router bgp 100\n neighbor 10.0.0.2 remote-as 200\n neighbor 10.0.0.2 route-map RM in\n");
  (* MS-E003: interface applies an access-list that is not defined *)
  check_has "MS-E003" "hostname R1\ninterface e0\n ip address 10.0.0.1/30\n ip access-group NOACL in\n";
  List.iter (fun c -> check_not c clean_pair) [ "MS-E001"; "MS-E002"; "MS-E003" ]

let test_unused_defs () =
  (* MS-W101: route-map defined but applied nowhere *)
  check_has "MS-W101" (one_router "route-map LONELY permit 10\n");
  (* MS-W102: prefix-list defined but matched nowhere *)
  check_has "MS-W102" (one_router "ip prefix-list STRAY permit 10.0.0.0/8 le 32\n");
  (* MS-W103: access-list defined but applied nowhere *)
  check_has "MS-W103" (one_router "access-list STALE permit ip any any\n");
  List.iter (fun c -> check_not c clean_pair) [ "MS-W101"; "MS-W102"; "MS-W103" ]

(* -- dead-code analysis --------------------------------------------------------- *)

let test_dead_prefix_entries () =
  (* subsumed by an earlier entry *)
  check_has "MS-W201"
    (one_router
       "ip prefix-list L permit 10.0.0.0/8 le 32\nip prefix-list L permit 10.2.0.0/16 le 32\n");
  (* empty ge/le range *)
  check_has "MS-W201" (one_router "ip prefix-list L permit 10.0.0.0/16 ge 24 le 20\n");
  (* a narrower earlier entry does not subsume *)
  check_not "MS-W201"
    (one_router
       "ip prefix-list L deny 10.2.0.0/16 le 32\nip prefix-list L permit 10.0.0.0/8 le 32\n")

let test_shadowed_acl () =
  check_has "MS-W202"
    (one_router
       "access-list X deny ip any 10.9.9.0 0.0.0.255\naccess-list X deny ip any 10.9.9.128 0.0.0.127\n");
  check_not "MS-W202"
    (one_router "access-list X deny ip any 10.9.9.0 0.0.0.255\naccess-list X permit ip any any\n")

let rm_with_lists lists clauses =
  one_router
    (lists ^ clauses
    ^ "router bgp 100\n neighbor 10.0.0.2 remote-as 200\n neighbor 10.0.0.2 route-map RM in\n")

let test_never_matching_clause () =
  (* the referenced prefix-list permits nothing *)
  check_has "MS-W203"
    (rm_with_lists "ip prefix-list NONE deny 0.0.0.0/0 le 32\n"
       "route-map RM permit 10\n match ip address prefix-list NONE\n!\nroute-map RM permit 20\n!\n");
  (* a list with a live permit entry is fine *)
  check_not "MS-W203"
    (rm_with_lists "ip prefix-list SOME permit 10.0.0.0/8 le 32\n"
       "route-map RM permit 10\n match ip address prefix-list SOME\n!\nroute-map RM permit 20\n!\n")

let test_unreachable_clause () =
  (* clause 20 sits behind a match-anything clause *)
  check_has "MS-W204"
    (rm_with_lists "" "route-map RM permit 10\n!\nroute-map RM permit 20\n set metric 5\n!\n");
  check_not "MS-W204"
    (rm_with_lists "ip prefix-list SOME permit 10.0.0.0/8 le 32\n"
       "route-map RM permit 10\n match ip address prefix-list SOME\n!\nroute-map RM permit 20\n!\n")

(* -- cross-device consistency ---------------------------------------------------- *)

let pair ~c1_bgp ~c2_bgp ?(c1_extra = "") () =
  Printf.sprintf
    {|hostname C1
interface e0
 ip address 10.0.0.1/30
interface e1
 ip address 10.1.0.1/24
!
%s%s!
hostname C2
interface e0
 ip address 10.0.0.2/30
!
%s|}
    c1_extra c1_bgp c2_bgp

let test_remote_as_mismatch () =
  check_has "MS-E301"
    (pair
       ~c1_bgp:"router bgp 100\n neighbor 10.0.0.2 remote-as 999\n"
       ~c2_bgp:"router bgp 200\n neighbor 10.0.0.1 remote-as 100\n" ());
  check_not "MS-E301" clean_pair

let test_neighbor_without_bgp () =
  check_has "MS-E302"
    (pair ~c1_bgp:"router bgp 100\n neighbor 10.0.0.2 remote-as 200\n" ~c2_bgp:"" ());
  check_not "MS-E302" clean_pair

let test_self_neighbor () =
  check_has "MS-E304"
    (pair
       ~c1_bgp:"router bgp 100\n neighbor 10.0.0.1 remote-as 100\n"
       ~c2_bgp:"router bgp 200\n" ());
  check_not "MS-E304" clean_pair

let test_one_sided_session () =
  check_has "MS-W301"
    (pair ~c1_bgp:"router bgp 100\n neighbor 10.0.0.2 remote-as 200\n" ~c2_bgp:"router bgp 200\n" ());
  check_not "MS-W301" clean_pair

let test_duplicate_router_id () =
  check_has "MS-W302"
    (pair
       ~c1_bgp:"router bgp 100\n bgp router-id 9.9.9.9\n neighbor 10.0.0.2 remote-as 200\n"
       ~c2_bgp:"router bgp 200\n bgp router-id 9.9.9.9\n neighbor 10.0.0.1 remote-as 100\n" ());
  check_not "MS-W302" clean_pair

(* A hub and two spokes in AS 100: without route-reflector-client marks
   the group is a broken mesh (B and C never peer); with them, A covers
   the group as a route reflector. *)
let ibgp_star rr =
  let client ip = if rr then Printf.sprintf " neighbor %s route-reflector-client\n" ip else "" in
  Printf.sprintf
    {|hostname A
interface e0
 ip address 10.0.12.1/30
interface e1
 ip address 10.0.13.1/30
!
router bgp 100
 neighbor 10.0.12.2 remote-as 100
%s neighbor 10.0.13.2 remote-as 100
%s!
hostname B
interface e0
 ip address 10.0.12.2/30
!
router bgp 100
 neighbor 10.0.12.1 remote-as 100
!
hostname C
interface e0
 ip address 10.0.13.2/30
!
router bgp 100
 neighbor 10.0.13.1 remote-as 100
|}
    (client "10.0.12.2") (client "10.0.13.2")

let test_ibgp_mesh () =
  check_has "MS-W303" (ibgp_star false);
  check_not "MS-W303" (ibgp_star true)

let test_ospf_no_interface () =
  check_has "MS-W304"
    (pair ~c1_bgp:"" ~c2_bgp:"" ~c1_extra:"router ospf 1\n network 203.0.113.0/24 area 0\n!\n" ());
  check_not "MS-W304"
    (pair ~c1_bgp:"" ~c2_bgp:"" ~c1_extra:"router ospf 1\n network 10.0.0.0/8 area 0\n!\n" ())

let test_neighbor_off_subnet () =
  check_has "MS-W305"
    (pair ~c1_bgp:"router bgp 100\n neighbor 192.0.2.9 remote-as 65000\n" ~c2_bgp:"" ());
  check_not "MS-W305" clean_pair

(* MS-E303 can only be produced from a hand-built AST: the parser rejects
   the same situation up front (tested in test_config). *)
let test_shared_subnet_ast () =
  let iface name ip len =
    {
      A.if_name = name;
      if_ip = Some (Net.Ipv4.of_string ip);
      if_prefix = Some (P.make (Net.Ipv4.of_string ip) len);
      if_acl_in = None;
      if_acl_out = None;
      if_cost = 1;
    }
  in
  let dev =
    { (A.empty_device "X") with A.dev_interfaces = [ iface "e0" "10.0.0.1" 24; iface "e1" "10.0.0.2" 24 ] }
  in
  let net = { A.net_devices = [ dev ]; net_topology = Net.Topology.empty } in
  let diags = Analysis.Lint.run net in
  Alcotest.(check bool) "E303 found" true (List.exists (fun (d : D.t) -> d.D.code = "MS-E303") diags);
  Alcotest.(check int) "exit code" 2 (Analysis.Lint.exit_code diags)

(* -- rendering ------------------------------------------------------------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_render_text () =
  let diags =
    Analysis.Lint.run
      (parse
         (pair
            ~c1_bgp:"router bgp 100\n bgp router-id 9.9.9.9\n neighbor 10.0.0.2 remote-as 200\n"
            ~c2_bgp:"router bgp 200\n bgp router-id 9.9.9.9\n neighbor 10.0.0.1 remote-as 100\n" ()))
  in
  let text = D.render_text diags in
  Alcotest.(check bool) "code shown" true (contains ~needle:"[MS-W302]" text);
  Alcotest.(check bool) "network-level" true (contains ~needle:"network: warning" text);
  Alcotest.(check bool) "summary line" true (contains ~needle:"0 error(s)" text)

let test_render_json () =
  let diags =
    Analysis.Lint.run (parse (one_router "route-map LONELY permit 10\n"))
  in
  let json = D.render_json diags in
  Alcotest.(check bool) "code field" true (contains ~needle:"\"code\":\"MS-W101\"" json);
  Alcotest.(check bool) "severity field" true (contains ~needle:"\"severity\":\"warning\"" json);
  Alcotest.(check bool) "device field" true (contains ~needle:"\"device\":\"R1\"" json);
  Alcotest.(check bool) "summary" true (contains ~needle:"\"summary\":{\"errors\":0,\"warnings\":1,\"infos\":0}" json);
  (* escaping *)
  let d = D.make ~code:"X" ~severity:D.Info {|say "hi"|} in
  Alcotest.(check bool) "escaped quote" true
    (contains ~needle:{|\"hi\"|} (D.to_json d));
  Alcotest.(check bool) "null device" true (contains ~needle:"\"device\":null" (D.to_json d))

(* -- encoder pre-flight ---------------------------------------------------------- *)

(* An Error-level finding (undefined prefix-list) the encoder would
   otherwise tolerate: Filter.match_cond treats the list as
   unsatisfiable. *)
let broken_ref =
  rm_with_lists "" "route-map RM permit 10\n match ip address prefix-list GHOST\n!\nroute-map RM permit 20\n!\n"

let test_preflight () =
  let net = parse broken_ref in
  (match MS.Encode.build net MS.Options.default with
   | exception Analysis.Lint.Lint_errors errs ->
     Alcotest.(check bool) "errors reported" true
       (List.exists (fun (d : D.t) -> d.D.code = "MS-E002") errs)
   | _ -> Alcotest.fail "expected Lint_errors");
  (* the gate can be disabled *)
  let opts = { MS.Options.default with MS.Options.preflight_lint = false } in
  ignore (MS.Encode.build net opts);
  (* clean networks pass the gate silently *)
  ignore (MS.Encode.build (parse clean_pair) MS.Options.default)

(* -- slicing --------------------------------------------------------------------- *)

(* A lint-warning-rich (but error-free) pair: dead prefix-list entry,
   shadowed ACL entry, never-matching clause, unreachable clause. *)
let redundant_pair =
  {|hostname S1
interface e0
 ip address 10.0.0.1/30
interface e1
 ip address 10.1.0.1/24
 ip access-group FILT out
!
ip prefix-list NONE deny 0.0.0.0/0 le 32
ip prefix-list SUB permit 10.0.0.0/8 le 32
ip prefix-list SUB permit 10.2.0.0/16 le 32
access-list FILT deny ip any 10.9.9.0 0.0.0.255
access-list FILT deny ip any 10.9.9.128 0.0.0.127
access-list FILT permit ip any any
route-map IMP permit 10
 match ip address prefix-list NONE
!
route-map IMP permit 20
 match ip address prefix-list SUB
!
route-map IMP permit 30
!
route-map IMP permit 40
 set local-preference 200
!
router bgp 100
 network 10.1.0.0/24
 neighbor 10.0.0.2 remote-as 200
 neighbor 10.0.0.2 route-map IMP in
!
hostname S2
interface e0
 ip address 10.0.0.2/30
interface e1
 ip address 10.2.0.1/24
!
router bgp 200
 network 10.2.0.0/24
 neighbor 10.0.0.1 remote-as 100
|}

let test_slice_removes_dead () =
  let net = parse redundant_pair in
  let pe, ae, cl = Analysis.Slice.removed_counts net in
  Alcotest.(check int) "prefix entries removed" 1 pe;
  Alcotest.(check int) "acl entries removed" 1 ae;
  Alcotest.(check int) "clauses removed" 2 cl;
  (* after slicing, the dead-code analysis finds nothing *)
  let dead_after =
    List.filter
      (fun (d : D.t) -> String.length d.D.code > 4 && String.sub d.D.code 0 5 = "MS-W2")
      (Analysis.Lint.run (Analysis.Slice.network net))
  in
  Alcotest.(check int) "sliced net is dead-code free" 0 (List.length dead_after)

let violated = function MS.Verify.Violation _ -> true | MS.Verify.Holds -> false

let verdicts net prop =
  let v opts = violated (verify_net net opts prop) in
  (v MS.Options.default, v (MS.Options.with_slicing MS.Options.default))

let test_slice_differential () =
  (* the redundant pair: reachability of S1's subnet from S2 *)
  let net = parse redundant_pair in
  let prop enc =
    MS.Property.reachability enc ~sources:[ "S2" ] (MS.Property.Subnet ("S1", P.of_string "10.1.0.0/24"))
  in
  let plain, sliced = verdicts net prop in
  Alcotest.(check bool) "redundant pair verdicts agree" plain sliced;
  (* generator networks, loop- and blackhole-freedom *)
  let ft = (Generators.Fattree.make ~pods:2).Generators.Fattree.network in
  let plain, sliced = verdicts ft (fun enc -> MS.Property.no_loops enc ()) in
  Alcotest.(check bool) "fattree verdicts agree" plain sliced;
  let ent =
    (Generators.Enterprise.make ~seed:3 ~routers:6
       ~inject:{ Generators.Enterprise.hijack = false; acl_gap = false; deep_drop = false; single_homed = false }
       ())
      .Generators.Enterprise.network
  in
  let plain, sliced = verdicts ent (fun enc -> MS.Property.no_blackholes enc ~allowed:[] ()) in
  Alcotest.(check bool) "enterprise verdicts agree" plain sliced

let test_slice_shrinks () =
  let net = parse redundant_pair in
  let _, size_plain = MS.Encode.stats (MS.Encode.build net MS.Options.default) in
  let _, size_sliced =
    MS.Encode.stats (MS.Encode.build net (MS.Options.with_slicing MS.Options.default))
  in
  Alcotest.(check bool)
    (Printf.sprintf "sliced encoding smaller (%d < %d)" size_sliced size_plain)
    true (size_sliced < size_plain)

let () =
  Alcotest.run "analysis"
    [
      ( "refs",
        [
          Alcotest.test_case "clean config" `Quick test_clean;
          Alcotest.test_case "undefined" `Quick test_undefined_refs;
          Alcotest.test_case "unused" `Quick test_unused_defs;
        ] );
      ( "deadcode",
        [
          Alcotest.test_case "dead prefix entries" `Quick test_dead_prefix_entries;
          Alcotest.test_case "shadowed acl" `Quick test_shadowed_acl;
          Alcotest.test_case "never matches" `Quick test_never_matching_clause;
          Alcotest.test_case "unreachable" `Quick test_unreachable_clause;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "remote-as mismatch" `Quick test_remote_as_mismatch;
          Alcotest.test_case "neighbor without bgp" `Quick test_neighbor_without_bgp;
          Alcotest.test_case "self neighbor" `Quick test_self_neighbor;
          Alcotest.test_case "one-sided session" `Quick test_one_sided_session;
          Alcotest.test_case "duplicate router-id" `Quick test_duplicate_router_id;
          Alcotest.test_case "ibgp mesh" `Quick test_ibgp_mesh;
          Alcotest.test_case "ospf no interface" `Quick test_ospf_no_interface;
          Alcotest.test_case "neighbor off subnet" `Quick test_neighbor_off_subnet;
          Alcotest.test_case "shared subnet (ast)" `Quick test_shared_subnet_ast;
        ] );
      ( "render",
        [
          Alcotest.test_case "text" `Quick test_render_text;
          Alcotest.test_case "json" `Quick test_render_json;
        ] );
      ( "preflight", [ Alcotest.test_case "error gate" `Quick test_preflight ] );
      ( "slicing",
        [
          Alcotest.test_case "removes dead config" `Quick test_slice_removes_dead;
          Alcotest.test_case "differential verdicts" `Quick test_slice_differential;
          Alcotest.test_case "shrinks encoding" `Quick test_slice_shrinks;
        ] );
    ]
