(* Differential tests of the graph fast path for ⟨k⟩-failure
   fault-invariance (Faults): the eligibility scan, min-cut witness
   sizes, graph-vs-SMT verdict agreement on fat trees and enterprise
   networks, counterexample cut sets replayed through the concrete
   simulator with those links removed, and method stamping through the
   hybrid race. *)

module A = Config.Ast
module MS = Minesweeper
module G = Generators
module F = Faults
module Sim = Routing.Simulator
module DP = Routing.Dataplane

let devices (net : A.network) =
  List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices

let fattree pods =
  let ft = G.Fattree.make ~pods in
  let dst = List.hd ft.G.Fattree.tors in
  (ft.G.Fattree.network, dst, MS.Property.Subnet (dst, ft.G.Fattree.tor_subnet dst))

let single_homed_enterprise () =
  let t =
    G.Enterprise.make ~seed:3 ~routers:6
      ~inject:{ G.Enterprise.no_bugs with G.Enterprise.single_homed = true }
      ()
  in
  let target = List.hd (List.rev t.G.Enterprise.rack_role) in
  (t.G.Enterprise.network, MS.Property.Subnet (target, t.G.Enterprise.rack_subnet target))

let verdict (r : MS.Verify.Report.t) =
  MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict

let meth (r : MS.Verify.Report.t) =
  match r.MS.Verify.Report.method_ with
  | Some m -> MS.Verify.Report.method_name m
  | None -> "unstamped"

let smt net ~k ~sources dest = MS.Verify.fault_invariant net MS.Options.default ~k ~sources dest

let hybrid net ~k ~sources dest = F.hybrid net MS.Options.default ~k ~sources dest

(* The replay obligation for a Broken/Violated cut: removing exactly
   those links from the healthy network must leave the source unable to
   reach the destination subnet in the converged dataplane. *)
let cut_disconnects net ~src ~dst_ip links =
  let state = Sim.run net { Sim.external_ads = []; failed_links = links } in
  Alcotest.(check bool) "replay simulation converges" true (Sim.converged state);
  not (DP.reachable net state ~src ~dst:dst_ip)

(* -- eligibility scan ---------------------------------------------------------- *)

let test_eligible_fattree () =
  let net, dst_tor, dest = fattree 4 in
  match F.eligible net dest with
  | Ok (owner, p) ->
    Alcotest.(check string) "owner is the destination ToR" dst_tor owner;
    Alcotest.(check bool) "prefix is the ToR /24" true (Net.Prefix.length p = 24)
  | Error reason -> Alcotest.failf "pure-BGP fat tree rejected: %s" reason

let test_ineligible_enterprise () =
  let net, dest = single_homed_enterprise () in
  match F.eligible net dest with
  | Ok _ -> Alcotest.fail "OSPF-internal enterprise must not be graph-eligible"
  | Error _ -> ()

let test_ineligible_device_destination () =
  let net, _, _ = fattree 2 in
  match F.eligible net (MS.Property.Device "tor_0_0") with
  | Ok _ -> Alcotest.fail "device destinations have no concrete subnet to cut"
  | Error _ -> ()

(* -- min cut ------------------------------------------------------------------- *)

let test_min_cut_sizes () =
  let net, _, _ = fattree 4 in
  let topo = net.A.net_topology in
  (match F.min_cut topo ~src:"tor_1_0" ~dst:"tor_0_0" ~limit:3 with
   | `Cut links -> Alcotest.(check int) "pods=4 ToR-to-ToR cut" 2 (List.length links)
   | `Above_limit -> Alcotest.fail "a 2-cut exists below limit 3");
  (match F.min_cut topo ~src:"tor_1_0" ~dst:"tor_0_0" ~limit:1 with
   | `Above_limit -> ()
   | `Cut _ -> Alcotest.fail "min cut 2 must be above limit 1");
  let net2, _, _ = fattree 2 in
  match F.min_cut net2.A.net_topology ~src:"tor_1_0" ~dst:"tor_0_0" ~limit:1 with
  | `Cut links -> Alcotest.(check int) "pods=2 single uplink" 1 (List.length links)
  | `Above_limit -> Alcotest.fail "pods=2 ToRs are 1-connected"

(* -- the graph decision procedure, with replay --------------------------------- *)

let check_analyze pods ~invariant_k ~broken_k =
  let net, _, dest = fattree pods in
  let sources = devices net in
  (match F.analyze net ~k:invariant_k ~sources dest with
   | F.Invariant -> ()
   | F.Broken _ -> Alcotest.failf "pods=%d k=%d must be invariant" pods invariant_k
   | F.Undecided r -> Alcotest.failf "pods=%d undecided: %s" pods r);
  match F.analyze net ~k:broken_k ~sources dest with
  | F.Broken { F.src; links } ->
    Alcotest.(check int) "cut size is the connectivity" broken_k (List.length links);
    let dst_ip =
      match dest with MS.Property.Subnet (_, p) -> Net.Prefix.first p | _ -> assert false
    in
    Alcotest.(check bool) "cut replays as a partition" true
      (cut_disconnects net ~src ~dst_ip links)
  | F.Invariant -> Alcotest.failf "pods=%d k=%d must be broken" pods broken_k
  | F.Undecided r -> Alcotest.failf "pods=%d undecided: %s" pods r

(* a ToR's min cut is its uplink count, pods/2 *)
let test_analyze_pods2 () = check_analyze 2 ~invariant_k:0 ~broken_k:1
let test_analyze_pods4 () = check_analyze 4 ~invariant_k:1 ~broken_k:2
let test_analyze_pods6 () = check_analyze 6 ~invariant_k:2 ~broken_k:3

let test_enterprise_undecided () =
  let net, dest = single_homed_enterprise () in
  match F.analyze net ~k:1 ~sources:(devices net) dest with
  | F.Undecided _ -> ()
  | F.Invariant | F.Broken _ ->
    Alcotest.fail "the graph path must decline OSPF-internal networks"

(* -- differential: graph verdicts vs the two-copy SMT encoding ----------------- *)

let test_differential_pods2 () =
  let net, _, dest = fattree 2 in
  let sources = devices net in
  List.iter
    (fun k ->
      let g = F.report net ~k ~sources dest in
      let s = smt net ~k ~sources dest in
      Alcotest.(check string)
        (Printf.sprintf "pods=2 k=%d graph vs smt" k)
        (verdict s) (verdict g);
      match g.MS.Verify.Report.verdict with
      | MS.Verify.Report.Violated cx ->
        let dst_ip =
          match dest with MS.Property.Subnet (_, p) -> Net.Prefix.first p | _ -> assert false
        in
        Alcotest.(check bool) "graph cut set is non-empty" true
          (cx.MS.Counterexample.failures <> []);
        (* the witness must disconnect some source; the counterexample
           src_ip is derived, so replay from every healthy source and
           require at least one partition *)
        Alcotest.(check bool) "some source is partitioned" true
          (List.exists
             (fun src -> cut_disconnects net ~src ~dst_ip cx.MS.Counterexample.failures)
             sources)
      | _ -> ())
    [ 0; 1; 2; 3 ]

let test_differential_pods4 () =
  let net, _, dest = fattree 4 in
  let sources = devices net in
  List.iter
    (fun k ->
      let h = hybrid net ~k ~sources dest in
      let s = smt net ~k ~sources dest in
      Alcotest.(check string)
        (Printf.sprintf "pods=4 k=%d hybrid vs smt" k)
        (verdict s) (verdict h))
    [ 1; 2 ]

let test_differential_enterprise () =
  let net, dest = single_homed_enterprise () in
  let sources = devices net in
  let h = hybrid net ~k:1 ~sources dest in
  let s = smt net ~k:1 ~sources dest in
  Alcotest.(check string) "single-homed rack verdicts agree" (verdict s) (verdict h);
  Alcotest.(check string) "the k=1 partition is found" "violated" (verdict h);
  (* the graph path declined, so the SMT leg must have answered *)
  Alcotest.(check string) "method records the fallback" "fallback" (meth h)

let test_certified_fault_invariant () =
  (* --certify must survive the failure variables: the k=0 UNSAT proof
     replays the cardinality clauses through the independent checker,
     and the k=1 counterexample model evaluates them *)
  let net, _, dest = fattree 2 in
  let sources = devices net in
  let opts = MS.Options.with_certify MS.Options.default in
  let check k expect =
    let r = MS.Verify.fault_invariant net opts ~k ~sources dest in
    Alcotest.(check string) (Printf.sprintf "k=%d verdict" k) expect (verdict r);
    match r.MS.Verify.Report.certificate with
    | MS.Verify.Report.Checked_unsat_proof _ | MS.Verify.Report.Checked_model -> ()
    | MS.Verify.Report.Uncertified -> Alcotest.failf "k=%d verdict left uncertified" k
    | MS.Verify.Report.Certification_failed m ->
      Alcotest.failf "k=%d certification failed: %s" k m
  in
  check 0 "verified";
  check 1 "violated"

(* -- hybrid race and method stamping ------------------------------------------- *)

let test_hybrid_graph_win () =
  let net, _, dest = fattree 2 in
  let sources = devices net in
  let h = hybrid net ~k:1 ~sources dest in
  Alcotest.(check string) "verdict" "violated" (verdict h);
  Alcotest.(check string) "method" "graph" (meth h);
  match h.MS.Verify.Report.verdict with
  | MS.Verify.Report.Violated cx ->
    Alcotest.(check int) "a single failed link" 1 (List.length cx.MS.Counterexample.failures)
  | _ -> Alcotest.fail "expected a violation"

let test_hybrid_pods6 () =
  (* the fabric the SMT side cannot answer quickly: the race must come
     back decided by the graph, on both sides of the threshold *)
  let net, _, dest = fattree 6 in
  let sources = devices net in
  let h2 = hybrid net ~k:2 ~sources dest in
  Alcotest.(check string) "pods=6 k=2 verdict" "verified" (verdict h2);
  Alcotest.(check string) "pods=6 k=2 method" "graph" (meth h2);
  let h3 = hybrid net ~k:3 ~sources dest in
  Alcotest.(check string) "pods=6 k=3 verdict" "violated" (verdict h3);
  Alcotest.(check string) "pods=6 k=3 method" "graph" (meth h3)

let () =
  Alcotest.run "faults"
    [
      ( "eligibility",
        [
          Alcotest.test_case "pure-BGP fat tree is eligible" `Quick test_eligible_fattree;
          Alcotest.test_case "OSPF enterprise is not" `Quick test_ineligible_enterprise;
          Alcotest.test_case "device destination is not" `Quick
            test_ineligible_device_destination;
        ] );
      ( "min-cut",
        [ Alcotest.test_case "witness sizes match connectivity" `Quick test_min_cut_sizes ] );
      ( "graph-decision",
        [
          Alcotest.test_case "pods=2: k=0 holds, k=1 cuts" `Quick test_analyze_pods2;
          Alcotest.test_case "pods=4: k=1 holds, k=2 cuts" `Quick test_analyze_pods4;
          Alcotest.test_case "pods=6: k=2 holds, k=3 cuts" `Quick test_analyze_pods6;
          Alcotest.test_case "enterprise declines" `Quick test_enterprise_undecided;
        ] );
      ( "differential",
        [
          Alcotest.test_case "pods=2, k in 0..3" `Quick test_differential_pods2;
          Alcotest.test_case "pods=4, k in 1..2" `Quick test_differential_pods4;
          Alcotest.test_case "single-homed enterprise" `Quick test_differential_enterprise;
          Alcotest.test_case "certified with failure variables" `Quick
            test_certified_fault_invariant;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "graph wins the race" `Quick test_hybrid_graph_win;
          Alcotest.test_case "pods=6 both thresholds" `Quick test_hybrid_pods6;
        ] );
    ]
