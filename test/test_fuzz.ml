(* Differential fuzzing over the whole stack: QCheck-driven mutations
   of generated enterprise and fattree configurations (flip a route-map
   action, rotate local-preferences, drop a link), verified with
   certification on.

   Oracle: the concrete control-plane simulator.  Both generators give
   some devices external BGP peers, so the symbolic environment is
   strictly larger than any one concrete run; agreement is therefore
   checked in the sound direction — a Verified reachability verdict
   quantifies over every environment and must hold in the empty one the
   simulator computes — while Violated verdicts are checked by
   certification itself, which replays the decoded counterexample's
   environment through the same simulator (Checked_model implies
   per-device agreement).  Every verdict must carry a positive
   certificate: an Uncertified or failed one fails the fuzzer.

   [dune runtest] runs a small bounded sample; [make fuzz] raises the
   budget via MS_FUZZ_COUNT. *)

module MS = Minesweeper
module G = Generators
module A = Config.Ast

let fuzz_count =
  match Sys.getenv_opt "MS_FUZZ_COUNT" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 6)
  | None -> 6

(* ---- mutations ---- *)

let map_devices f net = { net with A.net_devices = List.map f net.A.net_devices }

let count_rm_clauses net =
  List.fold_left
    (fun n (d : A.device) ->
      List.fold_left (fun n rm -> n + List.length rm.A.rm_clauses) n d.A.dev_route_maps)
    0 net.A.net_devices

(* Flip Permit <-> Deny on the k-th route-map clause of the network. *)
let flip_rm_action k net =
  let total = count_rm_clauses net in
  if total = 0 then net
  else begin
    let idx = k mod total in
    let i = ref (-1) in
    map_devices
      (fun d ->
        {
          d with
          A.dev_route_maps =
            List.map
              (fun rm ->
                {
                  rm with
                  A.rm_clauses =
                    List.map
                      (fun c ->
                        incr i;
                        if !i = idx then
                          {
                            c with
                            A.rm_action =
                              (match c.A.rm_action with
                               | A.Permit -> A.Deny
                               | A.Deny -> A.Permit);
                          }
                        else c)
                      rm.A.rm_clauses;
                })
              d.A.dev_route_maps;
        })
      net
  end

(* Rotate every Set_local_pref value one position forward, network-wide:
   preserves the multiset of preferences but scrambles who gets which. *)
let rotate_local_prefs net =
  let vals = ref [] in
  List.iter
    (fun (d : A.device) ->
      List.iter
        (fun rm ->
          List.iter
            (fun c ->
              List.iter
                (function A.Set_local_pref v -> vals := v :: !vals | _ -> ())
                c.A.rm_sets)
            rm.A.rm_clauses)
        d.A.dev_route_maps)
    net.A.net_devices;
  match List.rev !vals with
  | [] | [ _ ] -> net
  | vs ->
    let vs = Array.of_list vs in
    let nvs = Array.length vs in
    let j = ref (-1) in
    map_devices
      (fun d ->
        {
          d with
          A.dev_route_maps =
            List.map
              (fun rm ->
                {
                  rm with
                  A.rm_clauses =
                    List.map
                      (fun c ->
                        {
                          c with
                          A.rm_sets =
                            List.map
                              (function
                                | A.Set_local_pref _ ->
                                  incr j;
                                  A.Set_local_pref vs.((!j + 1) mod nvs)
                                | s -> s)
                              c.A.rm_sets;
                        })
                      rm.A.rm_clauses;
                })
              d.A.dev_route_maps;
        })
      net

(* Remove the k-th physical link from the topology. *)
let drop_link k net =
  let links = Net.Topology.links net.A.net_topology in
  match links with
  | [] -> net
  | _ ->
    let idx = k mod List.length links in
    let topo =
      List.fold_left Net.Topology.add_device Net.Topology.empty
        (Net.Topology.devices net.A.net_topology)
    in
    let topo, _ =
      List.fold_left
        (fun (t, i) l -> ((if i = idx then t else Net.Topology.add_link t l), i + 1))
        (topo, 0) links
    in
    { net with A.net_topology = topo }

let mutate seed net =
  match seed mod 3 with
  | 0 -> ("flip-rm-action", flip_rm_action (seed / 3) net)
  | 1 -> ("rotate-local-prefs", rotate_local_prefs net)
  | _ -> ("drop-link", drop_link (seed / 3) net)

(* ---- the differential property ---- *)

let check_one name seed net ~src ~dest_device ~dest_prefix =
  let mname, net = mutate seed net in
  let label = Printf.sprintf "%s seed %d (%s)" name seed mname in
  let opts = MS.Options.with_certify MS.Options.default in
  match MS.Encode.build net opts with
  | exception Analysis.Lint.Lint_errors _ ->
    (* a mutation can invalidate the configuration outright; nothing to
       verify differentially then *)
    true
  | enc ->
    let dest = MS.Property.Subnet (dest_device, dest_prefix) in
    let q =
      MS.Verify.Query.v "fuzz-reachability" (fun enc ->
          MS.Property.reachability enc ~sources:[ src ] dest)
    in
    let r = MS.Verify.run_query enc q in
    (match r.MS.Verify.Report.certificate with
     | MS.Verify.Report.Checked_unsat_proof _ | MS.Verify.Report.Checked_model -> ()
     | MS.Verify.Report.Uncertified ->
       QCheck.Test.fail_reportf "%s: verdict left uncertified with --certify on" label
     | MS.Verify.Report.Certification_failed msg ->
       QCheck.Test.fail_reportf "%s: certification failed: %s" label msg);
    (match r.MS.Verify.Report.verdict with
     | MS.Verify.Report.Verified ->
       (* holds for every environment, hence for the empty one *)
       let state = Routing.Simulator.run net Routing.Simulator.empty_env in
       if Routing.Simulator.converged state then begin
         let ip = Net.Prefix.first dest_prefix in
         if not (Routing.Dataplane.reachable net state ~src ~dst:ip) then
           QCheck.Test.fail_reportf
             "%s: SMT says reachable in every environment, simulator disagrees in the empty one"
             label
       end
     | MS.Verify.Report.Violated _ -> ()
     | MS.Verify.Report.Timeout | MS.Verify.Report.Error _ ->
       QCheck.Test.fail_reportf "%s: query timed out or errored" label);
    true

let prop_enterprise =
  QCheck.Test.make ~name:"mutated enterprise nets: certified differential" ~count:fuzz_count
    (QCheck.make QCheck.Gen.(int_range 0 99999))
    (fun seed ->
      let t =
        G.Enterprise.make ~seed:(seed mod 37) ~routers:(4 + (seed mod 4))
          ~inject:G.Enterprise.no_bugs ()
      in
      let net = t.G.Enterprise.network in
      let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
      let src = List.hd devices in
      let dest_device = List.hd (List.rev devices) in
      check_one "enterprise" seed net ~src ~dest_device
        ~dest_prefix:(t.G.Enterprise.mgmt_prefix dest_device))

let prop_fattree =
  QCheck.Test.make ~name:"mutated fattree nets: certified differential" ~count:fuzz_count
    (QCheck.make QCheck.Gen.(int_range 0 99999))
    (fun seed ->
      let ft = G.Fattree.make ~pods:2 in
      let net = ft.G.Fattree.network in
      let dst_tor = List.hd ft.G.Fattree.tors in
      let src = List.hd (List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors) in
      check_one "fattree" seed net ~src ~dest_device:dst_tor
        ~dest_prefix:(ft.G.Fattree.tor_subnet dst_tor))

(* ---- fault invariance vs brute-force failure enumeration ---- *)

(* All subsets of size <= k, as lists. *)
let rec subsets_leq k = function
  | [] -> [ [] ]
  | _ when k = 0 -> [ [] ]
  | x :: rest ->
    let without = subsets_leq k rest in
    let with_x = List.map (fun s -> x :: s) (subsets_leq (k - 1) rest) in
    without @ with_x

let canonical_pairs net =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (l : Net.Topology.link) ->
      let a = l.Net.Topology.a.Net.Topology.device
      and b = l.Net.Topology.b.Net.Topology.device in
      Hashtbl.replace seen (if a < b then (a, b) else (b, a)) ())
    (Net.Topology.links net.A.net_topology);
  Hashtbl.fold (fun p () acc -> p :: acc) seen []

(* The ground truth on a small topology: enumerate every failure set of
   size <= k and ask the concrete simulator whether any of them changes
   some source's reachability of the destination subnet.  The pods=2
   fat tree has 4 internal links, so the enumeration stays tiny. *)
let prop_fault_brute =
  QCheck.Test.make ~name:"fault-invariance vs brute-force failure enumeration"
    ~count:fuzz_count
    (QCheck.make QCheck.Gen.(pair (int_range 0 99999) (int_range 0 2)))
    (fun (seed, k) ->
      let ft = G.Fattree.make ~pods:2 in
      let net = ft.G.Fattree.network in
      (* pre-drop a random link subset of size <= k so the checked
         topologies are not all the pristine fabric *)
      let drops = seed mod (k + 1) in
      let net =
        List.fold_left (fun n i -> drop_link (seed / (i + 2)) n) net (List.init drops Fun.id)
      in
      let dst_tor = List.hd ft.G.Fattree.tors in
      let dest_prefix = ft.G.Fattree.tor_subnet dst_tor in
      let dest = MS.Property.Subnet (dst_tor, dest_prefix) in
      let sources = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
      let label = Printf.sprintf "fault-brute seed %d k %d (%d pre-dropped)" seed k drops in
      match MS.Verify.fault_invariant net MS.Options.default ~k ~sources dest with
      | exception Analysis.Lint.Lint_errors _ -> true
      | r ->
        let dst_ip = Net.Prefix.first dest_prefix in
        let state0 = Routing.Simulator.run net Routing.Simulator.empty_env in
        if not (Routing.Simulator.converged state0) then true
        else begin
          let healthy =
            List.map
              (fun s -> (s, Routing.Dataplane.reachable net state0 ~src:s ~dst:dst_ip))
              sources
          in
          let broken_by fails =
            let env = { Routing.Simulator.external_ads = []; failed_links = fails } in
            let state = Routing.Simulator.run net env in
            Routing.Simulator.converged state
            && List.exists
                 (fun (s, was) ->
                   Routing.Dataplane.reachable net state ~src:s ~dst:dst_ip <> was)
                 healthy
          in
          let oracle_broken = List.exists broken_by (subsets_leq k (canonical_pairs net)) in
          (match r.MS.Verify.Report.verdict with
           | MS.Verify.Report.Verified ->
             (* Verified quantifies over every environment and failure
                set, so the concrete enumeration must find nothing *)
             if oracle_broken then
               QCheck.Test.fail_reportf
                 "%s: SMT says invariant, brute-force enumeration breaks it" label
           | MS.Verify.Report.Violated _ ->
             (* the SMT counterexample may use an adversarial routing
                environment; only graph-eligible networks pin verdicts
                to pure connectivity, where the empty-environment
                enumeration is exact *)
             if (not oracle_broken) && Result.is_ok (Faults.eligible net dest) then
               QCheck.Test.fail_reportf
                 "%s: SMT says broken on a graph-eligible net, enumeration of all <=%d-subsets \
                  disagrees"
                 label k
           | MS.Verify.Report.Timeout | MS.Verify.Report.Error _ ->
             QCheck.Test.fail_reportf "%s: query timed out or errored" label);
          (* the graph fast path, when it decides, must match the oracle *)
          (match Faults.analyze net ~k ~sources dest with
           | Faults.Invariant ->
             if oracle_broken then
               QCheck.Test.fail_reportf "%s: graph path says invariant, oracle disagrees" label
           | Faults.Broken _ ->
             if not oracle_broken then
               QCheck.Test.fail_reportf "%s: graph path says broken, oracle disagrees" label
           | Faults.Undecided _ -> ());
          true
        end)

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_enterprise;
          QCheck_alcotest.to_alcotest prop_fattree;
          QCheck_alcotest.to_alcotest prop_fault_brute;
        ] );
    ]
