(* End-to-end tests of the Minesweeper encoder + verifier, including
   differential tests against the concrete control-plane simulator. *)

module A = Config.Ast
module MS = Minesweeper

(* shims over the Query/Report API for the bare outcomes these tests match on *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
let verify_net net opts make =
  let enc = MS.Encode.build net opts in
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.v "query" make))
module T = Smt.Term
module P = Net.Prefix
module Ip = Net.Ipv4

let parse = Config.Parser.parse_network
let _ip = Ip.of_string

let default = MS.Options.default

let _outcome_str = function
  | MS.Verify.Holds -> "holds"
  | MS.Verify.Violation cx -> "violated:\n" ^ MS.Counterexample.to_string cx

let check_holds msg net opts prop =
  match verify_net net opts prop with
  | MS.Verify.Holds -> ()
  | MS.Verify.Violation cx ->
    Alcotest.failf "%s: expected holds, got violation:\n%s" msg (MS.Counterexample.to_string cx)

let check_violated msg net opts prop =
  match verify_net net opts prop with
  | MS.Verify.Violation _ -> ()
  | MS.Verify.Holds -> Alcotest.failf "%s: expected violation, got holds" msg

(* -- basic reachability ---------------------------------------------------------- *)

let ospf_pair =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 10.1.0.1/24
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 10.2.0.1/24
router ospf 1
 network 0.0.0.0/0
|}

let test_ospf_reachability () =
  let net = parse ospf_pair in
  check_holds "R1 reaches R2 subnet" net default (fun enc ->
      MS.Property.reachability enc ~sources:[ "R1" ] (MS.Property.Subnet ("R2", P.of_string "10.2.0.0/24")));
  check_holds "R2 reaches R1 subnet" net default (fun enc ->
      MS.Property.reachability enc ~sources:[ "R2" ] (MS.Property.Subnet ("R1", P.of_string "10.1.0.0/24")));
  (* R1 cannot claim isolation *)
  check_violated "isolation is false" net default (fun enc ->
      MS.Property.isolation enc ~sources:[ "R1" ] (MS.Property.Subnet ("R2", P.of_string "10.2.0.0/24")))

let acl_net =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.12.2/30
 ip access-group BLOCK in
interface e1
 ip address 10.2.0.1/24
access-list BLOCK deny ip any 10.2.0.0 0.0.0.255
access-list BLOCK permit ip any any
router ospf 1
 network 0.0.0.0/0
|}

let test_acl_blocks_reachability () =
  let net = parse acl_net in
  check_violated "ACL blocks R1 -> R2 subnet" net default (fun enc ->
      MS.Property.reachability enc ~sources:[ "R1" ] (MS.Property.Subnet ("R2", P.of_string "10.2.0.0/24")));
  (* and the ACL makes isolation hold *)
  check_holds "isolation behind ACL" net default (fun enc ->
      MS.Property.isolation enc ~sources:[ "R1" ] (MS.Property.Subnet ("R2", P.of_string "10.2.0.0/24")))

(* -- eBGP + symbolic environment --------------------------------------------------- *)

(* R1 has the management subnet; R2 peers with a symbolic external
   neighbor.  Without an import filter the environment can hijack the
   management prefix (the §8.1 violation class). *)
let hijackable =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface mgmt0
 ip address 10.99.0.1/24
router bgp 100
 network 10.99.0.0/24
 neighbor 192.168.12.2 remote-as 200
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 192.168.100.1/30
router bgp 200
 neighbor 192.168.12.1 remote-as 100
 neighbor 192.168.100.2 remote-as 65001
|}

let protected_ =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface mgmt0
 ip address 10.99.0.1/24
router bgp 100
 network 10.99.0.0/24
 neighbor 192.168.12.2 remote-as 200
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 192.168.100.1/30
ip prefix-list NOHIJACK deny 10.99.0.0/24 le 32
ip prefix-list NOHIJACK permit 0.0.0.0/0 le 32
route-map IMPORT permit 10
 match ip address prefix-list NOHIJACK
router bgp 200
 neighbor 192.168.12.1 remote-as 100
 neighbor 192.168.100.2 remote-as 65001
 neighbor 192.168.100.2 route-map IMPORT in
|}

let mgmt_dest = MS.Property.Subnet ("R1", P.of_string "10.99.0.0/24")

let test_hijack_found () =
  check_violated "management prefix hijackable" (parse hijackable) default (fun enc ->
      MS.Property.reachability enc ~sources:[ "R2" ] mgmt_dest)

let test_hijack_counterexample_details () =
  let net = parse hijackable in
  let enc = MS.Encode.build net default in
  match verify_check enc (MS.Property.reachability enc ~sources:[ "R2" ] mgmt_dest) with
  | MS.Verify.Holds -> Alcotest.fail "expected hijack"
  | MS.Verify.Violation cx ->
    (* the counterexample must involve an external announcement covering
       the destination *)
    Alcotest.(check bool) "has announcement" true (cx.MS.Counterexample.announcements <> []);
    Alcotest.(check bool) "dst in mgmt subnet" true
      (P.contains (P.of_string "10.99.0.0/24") cx.MS.Counterexample.dst_ip)

let test_hijack_filtered () =
  check_holds "import filter prevents hijack" (parse protected_) default (fun enc ->
      MS.Property.reachability enc ~sources:[ "R2" ] mgmt_dest)

(* -- concrete-environment assumptions: differential vs the simulator --------------- *)

(* Constrain the symbolic environment to a concrete one. *)
let concrete_env enc (ads : (string * string * int * int) list) =
  (* (device, peer, plen, pathlen); peers not listed announce nothing *)
  List.concat_map
    (fun d ->
      List.map
        (fun (p, _) ->
          let r = MS.Encode.env_record enc d p in
          match
            List.find_opt (fun (d', p', _, _) -> d' = d && p' = p) ads
          with
          | Some (_, _, plen, pathlen) ->
            T.and_
              [
                r.MS.Sym_record.valid;
                T.eq r.MS.Sym_record.plen (T.int_const plen);
                T.eq r.MS.Sym_record.metric (T.int_const pathlen);
                T.eq r.MS.Sym_record.med (T.int_const 0);
              ]
          | None -> T.not_ r.MS.Sym_record.valid)
        (MS.Encode.external_peers enc d))
    (MS.Encode.devices enc)

let ebgp_external =
  {|hostname R1
interface e0
 ip address 192.168.100.1/30
interface e1
 ip address 192.168.200.1/30
interface e2
 ip address 10.1.0.1/24
router bgp 100
 network 10.1.0.0/24
 neighbor 192.168.100.2 remote-as 65001
 neighbor 192.168.200.2 remote-as 65002
|}

let test_concrete_env_exit () =
  (* with exactly one peer announcing a default-ish route, traffic to an
     external destination must leave via that peer *)
  let net = parse ebgp_external in
  let enc = MS.Encode.build net default in
  let peer1 = "peer:192.168.100.2" in
  let ads = [ ("R1", peer1, 8, 1) ] in
  let base = MS.Property.reachability enc ~sources:[ "R1" ] (MS.Property.External_peer peer1) in
  let prop =
    {
      base with
      MS.Property.assumptions =
        base.MS.Property.assumptions @ concrete_env enc ads
        @ [ MS.Packet.dst_in_prefix (MS.Encode.packet enc) (P.of_string "11.0.0.0/8") ];
    }
  in
  match verify_check enc prop with
  | MS.Verify.Holds -> ()
  | MS.Verify.Violation cx ->
    Alcotest.failf "expected exit via peer1:\n%s" (MS.Counterexample.to_string cx)

(* Differential: simulator vs encoder on shared scenarios. *)
let differential_nets =
  [
    ("ospf_pair", ospf_pair, [ ("R1", "R2", "10.2.0.0/24"); ("R2", "R1", "10.1.0.0/24") ]);
    ("acl_net", acl_net, [ ("R1", "R2", "10.2.0.0/24") ]);
  ]

let test_differential_reachability () =
  List.iter
    (fun (name, text, cases) ->
      let net = parse text in
      let state = Routing.Simulator.run net Routing.Simulator.empty_env in
      List.iter
        (fun (src, owner, subnet) ->
          let p = P.of_string subnet in
          let concrete = Routing.Dataplane.reachable net state ~src ~dst:(P.first p) in
          let enc = MS.Encode.build net default in
          let prop = MS.Property.reachability enc ~sources:[ src ] (MS.Property.Subnet (owner, p)) in
          (* no external peers here, so "all environments" is the
             concrete environment *)
          let symbolic =
            match verify_check enc prop with MS.Verify.Holds -> true | MS.Verify.Violation _ -> false
          in
          if concrete <> symbolic then
            Alcotest.failf "%s: %s -> %s: simulator=%b minesweeper=%b" name src subnet concrete
              symbolic)
        cases)
    differential_nets

let () =
  Alcotest.run "minesweeper"
    [
      ( "reachability",
        [
          Alcotest.test_case "ospf pair" `Quick test_ospf_reachability;
          Alcotest.test_case "acl blocks" `Quick test_acl_blocks_reachability;
        ] );
      ( "environment",
        [
          Alcotest.test_case "hijack found" `Quick test_hijack_found;
          Alcotest.test_case "hijack counterexample" `Quick test_hijack_counterexample_details;
          Alcotest.test_case "hijack filtered" `Quick test_hijack_filtered;
          Alcotest.test_case "concrete env exit" `Quick test_concrete_env_exit;
        ] );
      ( "differential",
        [ Alcotest.test_case "reachability vs simulator" `Quick test_differential_reachability ] );
    ]
