(* Encoder feature tests: iBGP with network copies, communities in
   filters and the symbolic environment, aggregation on export,
   neighbor preferences, and the paper's Figure 6(a) multipath
   inconsistency. *)

module A = Config.Ast
module MS = Minesweeper

(* shims over the Query/Report API for the bare outcomes these tests match on *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
let verify_net net opts make =
  let enc = MS.Encode.build net opts in
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.v "query" make))
module T = Smt.Term
module P = Net.Prefix
module Ip = Net.Ipv4

let parse = Config.Parser.parse_network
let default = MS.Options.default
let violated = function MS.Verify.Violation _ -> true | MS.Verify.Holds -> false

(* -- iBGP over an IGP underlay (network copies, §4) ----------------------- *)

let ibgp_net =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 192.168.100.1/30
router ospf 1
 network 192.168.12.0/24
router bgp 100
 neighbor 192.168.12.2 remote-as 100
 neighbor 192.168.100.2 remote-as 65001
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 10.2.0.1/24
router ospf 1
 network 192.168.12.0/24
router bgp 100
 neighbor 192.168.12.1 remote-as 100
|}

let announce_all enc =
  List.concat_map
    (fun d ->
      List.map
        (fun (p, _) ->
          let r = MS.Encode.env_record enc d p in
          T.and_
            [
              r.MS.Sym_record.valid;
              T.eq r.MS.Sym_record.plen (T.int_const 8);
              T.eq r.MS.Sym_record.metric (T.int_const 2);
            ])
        (MS.Encode.external_peers enc d))
    (MS.Encode.devices enc)

let external_dst enc =
  List.concat_map
    (fun d ->
      List.map
        (fun p -> T.not_ (MS.Packet.dst_in_prefix (MS.Encode.packet enc) p))
        (MS.Encode.subnets enc d))
    (MS.Encode.devices enc)

let test_ibgp_propagation () =
  let net = parse ibgp_net in
  let enc = MS.Encode.build net default in
  let peer = "peer:192.168.100.2" in
  let base = MS.Property.reachability enc ~sources:[ "R2" ] (MS.Property.External_peer peer) in
  (* given an announcement, R2 exits via R1's peer thanks to iBGP *)
  let prop =
    { base with MS.Property.assumptions = base.MS.Property.assumptions @ announce_all enc }
  in
  Alcotest.(check bool) "iBGP carries the route" false (violated (verify_check enc prop));
  (* without the announcement assumption, the empty environment is a
     counterexample *)
  let enc2 = MS.Encode.build net default in
  let bare = MS.Property.reachability enc2 ~sources:[ "R2" ] (MS.Property.External_peer peer) in
  Alcotest.(check bool) "empty environment blocks" true (violated (verify_check enc2 bare))

(* -- communities in the environment and in filters -------------------------- *)

let community_net =
  {|hostname R1
interface e0
 ip address 192.168.100.1/30
interface e1
 ip address 192.168.200.1/30
route-map NO_BLACKLISTED permit 10
 match community 65000:666
route-map NO_BLACKLISTED deny 20
router bgp 100
 neighbor 192.168.100.2 remote-as 65001
 neighbor 192.168.200.2 remote-as 65002
 neighbor 192.168.200.2 route-map NO_BLACKLISTED in
|}

let test_community_match () =
  (* peer2's announcements are accepted only when tagged 65000:666 *)
  let net = parse community_net in
  let comm = Net.Community.make 65000 666 in
  let peer2 = "peer:192.168.200.2" in
  let run ~tagged =
    let enc = MS.Encode.build net default in
    let r = MS.Encode.env_record enc "R1" peer2 in
    let quiet_peer1 = T.not_ (MS.Encode.env_record enc "R1" "peer:192.168.100.2").MS.Sym_record.valid in
    let tag_term = MS.Sym_record.comm_term r comm in
    let base = MS.Property.reachability enc ~sources:[ "R1" ] (MS.Property.External_peer peer2) in
    let prop =
      {
        base with
        MS.Property.assumptions =
          base.MS.Property.assumptions
          @ [
              quiet_peer1;
              r.MS.Sym_record.valid;
              T.eq r.MS.Sym_record.plen (T.int_const 8);
              T.eq r.MS.Sym_record.metric (T.int_const 1);
              (if tagged then tag_term else T.not_ tag_term);
            ]
          @ external_dst enc;
      }
    in
    verify_check enc prop
  in
  Alcotest.(check bool) "tagged accepted" false (violated (run ~tagged:true));
  Alcotest.(check bool) "untagged filtered" true (violated (run ~tagged:false))

(* -- aggregation on export (§4) ---------------------------------------------- *)

let agg_net summary =
  Printf.sprintf
    {|hostname R1
interface e0
 ip address 192.168.100.1/30
interface lan
 ip address 10.78.1.1/24
router bgp 100
 network 10.78.1.0/24
%s neighbor 192.168.100.2 remote-as 65001
|}
    (if summary then " aggregate-address 10.78.0.0/16 summary-only\n" else "")

let quiet_env enc =
  List.concat_map
    (fun d ->
      List.map
        (fun (p, _) -> T.not_ (MS.Encode.env_record enc d p).MS.Sym_record.valid)
        (MS.Encode.external_peers enc d))
    (MS.Encode.devices enc)

let test_aggregation () =
  (* with the aggregate, no self-originated route longer than /16 leaves
     the network (the environment is silenced: re-announced transit
     routes are a separate, legitimate leak) *)
  let run summary =
    let enc = MS.Encode.build (parse (agg_net summary)) default in
    let base = MS.Property.no_leak enc ~max_len:16 in
    let prop = { base with MS.Property.assumptions = base.MS.Property.assumptions @ quiet_env enc } in
    verify_check enc prop
  in
  Alcotest.(check bool) "aggregated" false (violated (run true));
  Alcotest.(check bool) "unaggregated /24 leaks" true (violated (run false))

(* -- neighbor preference (§5) -------------------------------------------------- *)

let pref_net =
  {|hostname R1
interface e0
 ip address 192.168.100.1/30
interface e1
 ip address 192.168.200.1/30
route-map P1 permit 10
 set local-preference 120
route-map P2 permit 10
 set local-preference 110
router bgp 100
 neighbor 192.168.100.2 remote-as 65001
 neighbor 192.168.100.2 route-map P1 in
 neighbor 192.168.200.2 remote-as 65002
 neighbor 192.168.200.2 route-map P2 in
|}

let test_neighbor_preference () =
  (* the preference is about policy, so compare like-for-like
     announcements: equal prefix lengths and path lengths (otherwise
     longest-prefix forwarding legitimately overrides the preference) *)
  let net = parse pref_net in
  let p1 = "peer:192.168.100.2" and p2 = "peer:192.168.200.2" in
  let like_for_like enc =
    List.concat_map
      (fun p ->
        let r = MS.Encode.env_record enc "R1" p in
        [
          T.implies r.MS.Sym_record.valid (T.eq r.MS.Sym_record.plen (T.int_const 8));
          T.implies r.MS.Sym_record.valid (T.eq r.MS.Sym_record.metric (T.int_const 1));
        ])
      [ p1; p2 ]
  in
  let run peers =
    let enc = MS.Encode.build net default in
    let base = MS.Property.neighbor_preference enc ~device:"R1" ~peers in
    let prop =
      {
        base with
        MS.Property.assumptions =
          base.MS.Property.assumptions @ like_for_like enc @ external_dst enc;
      }
    in
    verify_check enc prop
  in
  Alcotest.(check bool) "prefers p1 over p2" false (violated (run [ p1; p2 ]));
  Alcotest.(check bool) "reverse order fails" true (violated (run [ p2; p1 ]))

(* -- Figure 6(a): multipath inconsistency --------------------------------------- *)

let fig6a =
  {|hostname R1
interface e0
 ip address 192.168.1.1/30
interface e1
 ip address 192.168.2.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.1.2/30
interface e1
 ip address 192.168.3.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname R3
interface e0
 ip address 192.168.2.2/30
interface e1
 ip address 192.168.4.1/30
 ip access-group BAD out
access-list BAD deny ip any 10.9.0.0/24
access-list BAD permit ip any any
router ospf 1
 network 0.0.0.0/0
!
hostname S
interface e0
 ip address 192.168.3.2/30
interface e1
 ip address 192.168.4.2/30
interface lan
 ip address 10.9.0.1/24
router ospf 1
 network 0.0.0.0/0
|}

let test_multipath_inconsistency () =
  let net = parse fig6a in
  let dest = MS.Property.Subnet ("S", P.of_string "10.9.0.0/24") in
  (* R1 load-balances over R2 and R3, but R3's ACL drops the traffic *)
  Alcotest.(check bool) "figure 6a violated" true
    (violated (verify_net net default (fun enc -> MS.Property.multipath_consistency enc dest)));
  (* removing the ACL restores consistency *)
  let clean = Str.global_replace (Str.regexp_string " ip access-group BAD out\n") "" fig6a in
  Alcotest.(check bool) "clean consistent" false
    (violated
       (verify_net (parse clean) default (fun enc -> MS.Property.multipath_consistency enc dest)))

(* -- encoding statistics sanity --------------------------------------------------- *)

let test_slicing_shrinks () =
  let t = Generators.Fattree.make ~pods:2 in
  let sliced = MS.Encode.build t.Generators.Fattree.network default in
  let unsliced = MS.Encode.build t.Generators.Fattree.network MS.Options.naive in
  let _, sliced_size = MS.Encode.stats sliced in
  let _, naive_size = MS.Encode.stats unsliced in
  Alcotest.(check bool)
    (Printf.sprintf "sliced %d < naive %d" sliced_size naive_size)
    true (sliced_size < naive_size)

let () =
  Alcotest.run "encode"
    [
      ("ibgp", [ Alcotest.test_case "propagation" `Quick test_ibgp_propagation ]);
      ("communities", [ Alcotest.test_case "match in filter" `Quick test_community_match ]);
      ("aggregation", [ Alcotest.test_case "export length" `Quick test_aggregation ]);
      ("preferences", [ Alcotest.test_case "neighbor order" `Quick test_neighbor_preference ]);
      ("multipath", [ Alcotest.test_case "figure 6a" `Quick test_multipath_inconsistency ]);
      ("stats", [ Alcotest.test_case "slicing shrinks" `Quick test_slicing_shrinks ]);
    ]
