(* Tests of the workload generators and the §8.1 / §8.2 checks on them:
   each injected violation class is found, clean networks verify. *)

module A = Config.Ast
module MS = Minesweeper

(* shims over the Query/Report API for the bare outcomes these tests match on *)
let verify_check enc prop =
  MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.of_property "query" prop))
module P = Net.Prefix
module G = Generators

let violated = function MS.Verify.Violation _ -> true | MS.Verify.Holds -> false

let mgmt_reachable (t : G.Enterprise.t) =
  (* all devices can reach the first rack's (or any) management subnet *)
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) t.G.Enterprise.network.A.net_devices in
  let target = List.hd (List.rev devices) in
  let enc = MS.Encode.build t.G.Enterprise.network MS.Options.default in
  let prop =
    MS.Property.reachability enc ~sources:devices
      (MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target))
  in
  verify_check enc prop

let rack_acl_equiv (t : G.Enterprise.t) =
  match t.G.Enterprise.rack_role with
  | r1 :: r2 :: _ ->
    let enc = MS.Encode.build t.G.Enterprise.network MS.Options.default in
    Some (verify_check enc (MS.Property.acl_equivalence enc r1 r2))
  | _ -> None

let blackhole_check (t : G.Enterprise.t) =
  let enc = MS.Encode.build t.G.Enterprise.network MS.Options.default in
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  verify_check enc (MS.Property.no_blackholes enc ~allowed ())

let make inject = G.Enterprise.make ~seed:42 ~routers:8 ~inject ()

let test_enterprise_clean () =
  let t = make G.Enterprise.no_bugs in
  Alcotest.(check bool) "mgmt reachable" false (violated (mgmt_reachable t));
  (match rack_acl_equiv t with
   | Some o -> Alcotest.(check bool) "racks equivalent" false (violated o)
   | None -> Alcotest.fail "expected rack role");
  Alcotest.(check bool) "no blackholes" false (violated (blackhole_check t))

let test_enterprise_hijack () =
  let t = make { G.Enterprise.no_bugs with hijack = true } in
  Alcotest.(check bool) "hijack detected" true (violated (mgmt_reachable t));
  Alcotest.(check bool) "no blackholes still" false (violated (blackhole_check t))

let test_enterprise_acl_gap () =
  let t = make { G.Enterprise.no_bugs with acl_gap = true } in
  (match rack_acl_equiv t with
   | Some o -> Alcotest.(check bool) "inconsistency found" true (violated o)
   | None -> Alcotest.fail "expected rack role");
  Alcotest.(check bool) "mgmt unaffected" false (violated (mgmt_reachable t))

let test_enterprise_deep_drop () =
  let t = make { G.Enterprise.no_bugs with deep_drop = true } in
  Alcotest.(check bool) "deep blackhole found" true (violated (blackhole_check t));
  Alcotest.(check bool) "mgmt unaffected" false (violated (mgmt_reachable t))

let fault_check (t : G.Enterprise.t) ~k =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev t.G.Enterprise.rack_role) in
  MS.Verify.Report.to_outcome
    (MS.Verify.fault_invariant net MS.Options.default ~k ~sources:devices
       (MS.Property.Subnet (target, t.G.Enterprise.rack_subnet target)))

let test_enterprise_single_homed () =
  let t = make { G.Enterprise.no_bugs with single_homed = true } in
  Alcotest.(check bool) "one failure partitions the last rack" true
    (violated (fault_check t ~k:1));
  Alcotest.(check bool) "mgmt unaffected" false (violated (mgmt_reachable t));
  (* the dual-homed fleet rides out any single failure *)
  let clean = make G.Enterprise.no_bugs in
  Alcotest.(check bool) "clean net is 1-fault invariant" false
    (violated (fault_check clean ~k:1))

let test_fleet_split () =
  let fleet = G.Enterprise.fleet () in
  Alcotest.(check int) "152 networks" 152 (List.length fleet);
  let count f = List.length (List.filter (fun t -> f t.G.Enterprise.injected) fleet) in
  Alcotest.(check int) "67 hijacks" 67 (count (fun i -> i.G.Enterprise.hijack));
  Alcotest.(check int) "29 acl gaps" 29 (count (fun i -> i.G.Enterprise.acl_gap));
  Alcotest.(check int) "24 deep drops" 24 (count (fun i -> i.G.Enterprise.deep_drop));
  Alcotest.(check int) "16 single-homed" 16 (count (fun i -> i.G.Enterprise.single_homed));
  Alcotest.(check int) "16 clean" 16 (count (fun i -> i = G.Enterprise.no_bugs))

let test_enterprise_config_size () =
  let small = G.Enterprise.make ~bulk:8 ~seed:1 ~routers:2 ~inject:G.Enterprise.no_bugs () in
  let big = G.Enterprise.make ~bulk:600 ~seed:1 ~routers:25 ~inject:G.Enterprise.no_bugs () in
  let lines t = Config.Printer.network_config_lines t.G.Enterprise.network in
  Alcotest.(check bool) "small has hundreds of lines" true (lines small < 1500);
  Alcotest.(check bool) "big in the thousands" true (lines big > 2000)

(* -- fat tree ------------------------------------------------------------------- *)

let test_fattree_shape () =
  List.iter
    (fun (pods, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "%d pods" pods)
        expect
        (G.Fattree.num_routers ~pods))
    [ (2, 5); (6, 45); (10, 125); (14, 245); (18, 405) ];
  let t = G.Fattree.make ~pods:2 in
  Alcotest.(check int) "device count" 5 (List.length t.G.Fattree.network.A.net_devices);
  Alcotest.(check int) "tors" 2 (List.length t.G.Fattree.tors);
  Alcotest.(check int) "cores" 1 (List.length t.G.Fattree.cores)

let test_fattree_reachability () =
  let t = G.Fattree.make ~pods:2 in
  let enc = MS.Encode.build t.G.Fattree.network MS.Options.default in
  let dst_tor = List.hd t.G.Fattree.tors in
  let sources = List.filter (fun x -> x <> dst_tor) t.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, t.G.Fattree.tor_subnet dst_tor) in
  let o = verify_check enc (MS.Property.reachability enc ~sources dest) in
  Alcotest.(check bool) "all tors reach" false (violated o)

let test_fattree_bounded_length () =
  let t = G.Fattree.make ~pods:2 in
  let enc = MS.Encode.build t.G.Fattree.network MS.Options.default in
  let dst_tor = List.hd t.G.Fattree.tors in
  let sources = List.filter (fun x -> x <> dst_tor) t.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, t.G.Fattree.tor_subnet dst_tor) in
  let ok = verify_check enc (MS.Property.bounded_length enc ~sources dest ~bound:4) in
  Alcotest.(check bool) "within 4 hops" false (violated ok);
  (* a 1-hop bound must be violated: tor-agg-tor is already 2 *)
  let enc2 = MS.Encode.build t.G.Fattree.network MS.Options.default in
  let too_tight =
    verify_check enc2 (MS.Property.bounded_length enc2 ~sources dest ~bound:1)
  in
  Alcotest.(check bool) "1 hop impossible" true (violated too_tight)

let test_fattree_filters_block_internal () =
  (* the backbone cannot hijack a ToR subnet thanks to the core filters *)
  let t = G.Fattree.make ~pods:2 in
  let enc = MS.Encode.build t.G.Fattree.network MS.Options.default in
  let dst_tor = List.hd t.G.Fattree.tors in
  let sources = List.filter (fun x -> x <> dst_tor) t.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, t.G.Fattree.tor_subnet dst_tor) in
  let o = verify_check enc (MS.Property.reachability enc ~sources dest) in
  Alcotest.(check bool) "no hijack through filters" false (violated o)

let test_fattree_multipath_consistency () =
  let t = G.Fattree.make ~pods:2 in
  let enc = MS.Encode.build t.G.Fattree.network MS.Options.default in
  let dst_tor = List.hd t.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, t.G.Fattree.tor_subnet dst_tor) in
  let o = verify_check enc (MS.Property.multipath_consistency enc dest) in
  Alcotest.(check bool) "consistent" false (violated o)

let () =
  Alcotest.run "generators"
    [
      ( "enterprise",
        [
          Alcotest.test_case "clean verifies" `Quick test_enterprise_clean;
          Alcotest.test_case "hijack" `Quick test_enterprise_hijack;
          Alcotest.test_case "acl gap" `Quick test_enterprise_acl_gap;
          Alcotest.test_case "deep drop" `Quick test_enterprise_deep_drop;
          Alcotest.test_case "single-homed rack" `Quick test_enterprise_single_homed;
          Alcotest.test_case "fleet split" `Quick test_fleet_split;
          Alcotest.test_case "config size" `Quick test_enterprise_config_size;
        ] );
      ( "fattree",
        [
          Alcotest.test_case "shape" `Quick test_fattree_shape;
          Alcotest.test_case "reachability" `Quick test_fattree_reachability;
          Alcotest.test_case "bounded length" `Quick test_fattree_bounded_length;
          Alcotest.test_case "filters" `Quick test_fattree_filters_block_internal;
          Alcotest.test_case "multipath consistency" `Quick test_fattree_multipath_consistency;
        ] );
    ]
