(* Tests of the shared JSON string escaping (Msutil.Json) — the one
   implementation behind lint --format json/sarif, verify --format json
   and every bench writer — plus sanity checks of the SARIF rendering
   built on it. *)

module D = Analysis.Diagnostic

let test_escape_plain () =
  Alcotest.(check string) "identity" "hello" (Msutil.Json.escape "hello");
  Alcotest.(check string) "empty" "" (Msutil.Json.escape "")

let test_escape_specials () =
  Alcotest.(check string) "quote" "a\\\"b" (Msutil.Json.escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Msutil.Json.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Msutil.Json.escape "a\nb");
  Alcotest.(check string) "cr" "a\\rb" (Msutil.Json.escape "a\rb");
  Alcotest.(check string) "tab" "a\\tb" (Msutil.Json.escape "a\tb");
  Alcotest.(check string) "backspace" "a\\bb" (Msutil.Json.escape "a\bb");
  Alcotest.(check string) "formfeed" "a\\fb" (Msutil.Json.escape "a\012b")

let test_escape_control () =
  Alcotest.(check string) "NUL" "\\u0000" (Msutil.Json.escape "\000");
  Alcotest.(check string) "ESC" "\\u001b" (Msutil.Json.escape "\027");
  (* bytes >= 0x20 pass through untouched, including 8-bit ones *)
  Alcotest.(check string) "high byte" "\xc3\xa9" (Msutil.Json.escape "\xc3\xa9")

let test_quote_and_opt () =
  Alcotest.(check string) "quote wraps" "\"a\\\"b\"" (Msutil.Json.quote "a\"b");
  Alcotest.(check string) "opt none" "null" (Msutil.Json.opt None);
  Alcotest.(check string) "opt some" "\"x\"" (Msutil.Json.opt (Some "x"))

(* every implementation that used to hand-roll escaping now goes
   through the shared one *)
let test_shared_everywhere () =
  let nasty = "a\"b\\c\nd" in
  Alcotest.(check string)
    "verify report escaping is the shared escaping"
    (Msutil.Json.escape nasty)
    (Minesweeper.Verify.Report.json_escape nasty)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let sample_diags () =
  [
    D.make ~code:"MS-E101" ~severity:D.Error ~device:"r1" ~obj:"route-map \"RM\""
      "undefined route-map";
    D.make ~code:"MS-W401" ~severity:D.Warning ~device:"core_3"
      "near-symmetry broken";
  ]

let test_sarif_shape () =
  let s = D.render_sarif ~uri:"net.cfg" (sample_diags ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle s))
    [
      "\"version\":\"2.1.0\"";
      "sarif-2.1.0.json";
      "\"ruleId\":\"MS-E101\"";
      "\"ruleId\":\"MS-W401\"";
      "\"level\":\"error\"";
      "\"level\":\"warning\"";
      "\"uri\":\"net.cfg\"";
      (* the device/object location and the escaped quotes inside it *)
      "route-map \\\"RM\\\"";
      "\"fullyQualifiedName\":\"core_3\"";
    ]

let test_sarif_rules_deduped () =
  (* two findings with one code produce a single rule entry *)
  let two =
    [
      D.make ~code:"MS-W401" ~severity:D.Warning ~device:"a" "x";
      D.make ~code:"MS-W401" ~severity:D.Warning ~device:"b" "y";
    ]
  in
  let s = D.render_sarif two in
  let needle = "\"id\":\"" in
  let nl = String.length needle in
  let count_rule =
    let rec go i acc =
      if i + nl > String.length s then acc
      else if String.sub s i nl = needle then go (i + nl) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one rule" 1 count_rule;
  Alcotest.(check bool) "two results" true (contains ~needle:"\"results\":[" s)

let test_sarif_empty () =
  let s = D.render_sarif [] in
  Alcotest.(check bool) "valid empty run" true (contains ~needle:"\"results\":[]" s)

(* --- Vec: the SAT core's growable array ----------------------------------- *)

module V = Smt.Vec

let test_vec_basics () =
  let v = V.create ~dummy:(-1) () in
  Alcotest.(check bool) "empty" true (V.is_empty v);
  for i = 0 to 99 do
    V.push v i
  done;
  Alcotest.(check int) "size" 100 (V.size v);
  Alcotest.(check int) "get" 42 (V.get v 42);
  V.set v 42 7;
  Alcotest.(check int) "set" 7 (V.get v 42);
  Alcotest.(check int) "last" 99 (V.last v);
  Alcotest.(check int) "pop" 99 (V.pop v);
  Alcotest.(check int) "size after pop" 99 (V.size v);
  V.shrink v 10;
  Alcotest.(check int) "size after shrink" 10 (V.size v);
  Alcotest.(check int) "kept prefix" 9 (V.get v 9);
  V.clear v;
  Alcotest.(check bool) "cleared" true (V.is_empty v)

let test_vec_unsafe_accessors () =
  (* In-bounds behavior must be identical to the checked accessors;
     the tests run with MS_VEC_DEBUG unset, so this also covers the
     release configuration the solver ships with. *)
  let v = V.create ~dummy:0 () in
  for i = 0 to 999 do
    V.push v (i * 3)
  done;
  for i = 0 to 999 do
    if V.unsafe_get v i <> V.get v i then Alcotest.failf "unsafe_get mismatch at %d" i
  done;
  V.unsafe_set v 500 (-9);
  Alcotest.(check int) "unsafe_set visible to get" (-9) (V.get v 500);
  (* Out-of-bounds raises only when the debug flag was set at startup;
     assert the flag's wiring is consistent either way. *)
  if V.debug then begin
    (match V.unsafe_get v 1000 with
     | exception Invalid_argument _ -> ()
     | _ -> Alcotest.fail "debug mode should bounds-check unsafe_get");
    match V.unsafe_set v (-1) 0 with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "debug mode should bounds-check unsafe_set"
  end

let test_vec_blit () =
  let src = V.create ~dummy:(-1) () in
  for i = 0 to 9 do
    V.push src i
  done;
  (* overwrite inside dst *)
  let dst = V.create ~dummy:(-1) () in
  for _ = 0 to 4 do
    V.push dst 100
  done;
  V.blit src 2 dst 1 3;
  Alcotest.(check (list int)) "overwrite" [ 100; 2; 3; 4; 100 ] (V.to_list dst);
  (* copy extending past dst's current size grows it *)
  V.blit src 0 dst 3 7;
  Alcotest.(check int) "grown" 10 (V.size dst);
  Alcotest.(check (list int)) "extended" [ 100; 2; 3; 0; 1; 2; 3; 4; 5; 6 ] (V.to_list dst);
  (* appending exactly at the end works; holes are rejected *)
  let fresh = V.create ~dummy:(-1) () in
  V.blit src 0 fresh 0 10;
  Alcotest.(check (list int)) "append to empty" (V.to_list src) (V.to_list fresh);
  (match V.blit src 0 fresh 11 1 with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "blit must not create holes");
  (* bad source ranges are rejected *)
  (match V.blit src 8 fresh 0 3 with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "source overrun");
  match V.blit src 0 fresh 0 (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative length"

let test_vec_swap_remove_sort () =
  let v = V.create ~dummy:(-1) () in
  List.iter (V.push v) [ 5; 1; 4; 2; 3 ];
  V.swap_remove v 1;
  Alcotest.(check int) "size" 4 (V.size v);
  V.sort_in_place compare v;
  Alcotest.(check (list int)) "sorted remainder" [ 2; 3; 4; 5 ] (V.to_list v)

let () =
  Alcotest.run "util"
    [
      ( "json",
        [
          Alcotest.test_case "plain strings" `Quick test_escape_plain;
          Alcotest.test_case "specials" `Quick test_escape_specials;
          Alcotest.test_case "control chars" `Quick test_escape_control;
          Alcotest.test_case "quote and opt" `Quick test_quote_and_opt;
          Alcotest.test_case "shared by verify" `Quick test_shared_everywhere;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "shape" `Quick test_sarif_shape;
          Alcotest.test_case "rules deduped" `Quick test_sarif_rules_deduped;
          Alcotest.test_case "empty" `Quick test_sarif_empty;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "unsafe accessors" `Quick test_vec_unsafe_accessors;
          Alcotest.test_case "blit" `Quick test_vec_blit;
          Alcotest.test_case "swap_remove and sort" `Quick test_vec_swap_remove_sort;
        ] );
    ]
