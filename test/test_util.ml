(* Tests of the shared JSON string escaping (Msutil.Json) — the one
   implementation behind lint --format json/sarif, verify --format json
   and every bench writer — plus sanity checks of the SARIF rendering
   built on it. *)

module D = Analysis.Diagnostic

let test_escape_plain () =
  Alcotest.(check string) "identity" "hello" (Msutil.Json.escape "hello");
  Alcotest.(check string) "empty" "" (Msutil.Json.escape "")

let test_escape_specials () =
  Alcotest.(check string) "quote" "a\\\"b" (Msutil.Json.escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Msutil.Json.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Msutil.Json.escape "a\nb");
  Alcotest.(check string) "cr" "a\\rb" (Msutil.Json.escape "a\rb");
  Alcotest.(check string) "tab" "a\\tb" (Msutil.Json.escape "a\tb");
  Alcotest.(check string) "backspace" "a\\bb" (Msutil.Json.escape "a\bb");
  Alcotest.(check string) "formfeed" "a\\fb" (Msutil.Json.escape "a\012b")

let test_escape_control () =
  Alcotest.(check string) "NUL" "\\u0000" (Msutil.Json.escape "\000");
  Alcotest.(check string) "ESC" "\\u001b" (Msutil.Json.escape "\027");
  (* bytes >= 0x20 pass through untouched, including 8-bit ones *)
  Alcotest.(check string) "high byte" "\xc3\xa9" (Msutil.Json.escape "\xc3\xa9")

let test_quote_and_opt () =
  Alcotest.(check string) "quote wraps" "\"a\\\"b\"" (Msutil.Json.quote "a\"b");
  Alcotest.(check string) "opt none" "null" (Msutil.Json.opt None);
  Alcotest.(check string) "opt some" "\"x\"" (Msutil.Json.opt (Some "x"))

(* every implementation that used to hand-roll escaping now goes
   through the shared one *)
let test_shared_everywhere () =
  let nasty = "a\"b\\c\nd" in
  Alcotest.(check string)
    "verify report escaping is the shared escaping"
    (Msutil.Json.escape nasty)
    (Minesweeper.Verify.Report.json_escape nasty)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let sample_diags () =
  [
    D.make ~code:"MS-E101" ~severity:D.Error ~device:"r1" ~obj:"route-map \"RM\""
      "undefined route-map";
    D.make ~code:"MS-W401" ~severity:D.Warning ~device:"core_3"
      "near-symmetry broken";
  ]

let test_sarif_shape () =
  let s = D.render_sarif ~uri:"net.cfg" (sample_diags ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle s))
    [
      "\"version\":\"2.1.0\"";
      "sarif-2.1.0.json";
      "\"ruleId\":\"MS-E101\"";
      "\"ruleId\":\"MS-W401\"";
      "\"level\":\"error\"";
      "\"level\":\"warning\"";
      "\"uri\":\"net.cfg\"";
      (* the device/object location and the escaped quotes inside it *)
      "route-map \\\"RM\\\"";
      "\"fullyQualifiedName\":\"core_3\"";
    ]

let test_sarif_rules_deduped () =
  (* two findings with one code produce a single rule entry *)
  let two =
    [
      D.make ~code:"MS-W401" ~severity:D.Warning ~device:"a" "x";
      D.make ~code:"MS-W401" ~severity:D.Warning ~device:"b" "y";
    ]
  in
  let s = D.render_sarif two in
  let needle = "\"id\":\"" in
  let nl = String.length needle in
  let count_rule =
    let rec go i acc =
      if i + nl > String.length s then acc
      else if String.sub s i nl = needle then go (i + nl) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one rule" 1 count_rule;
  Alcotest.(check bool) "two results" true (contains ~needle:"\"results\":[" s)

let test_sarif_empty () =
  let s = D.render_sarif [] in
  Alcotest.(check bool) "valid empty run" true (contains ~needle:"\"results\":[]" s)

let () =
  Alcotest.run "util"
    [
      ( "json",
        [
          Alcotest.test_case "plain strings" `Quick test_escape_plain;
          Alcotest.test_case "specials" `Quick test_escape_specials;
          Alcotest.test_case "control chars" `Quick test_escape_control;
          Alcotest.test_case "quote and opt" `Quick test_quote_and_opt;
          Alcotest.test_case "shared by verify" `Quick test_shared_everywhere;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "shape" `Quick test_sarif_shape;
          Alcotest.test_case "rules deduped" `Quick test_sarif_rules_deduped;
          Alcotest.test_case "empty" `Quick test_sarif_empty;
        ] );
    ]
