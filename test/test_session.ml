(* Differential tests for incremental verification sessions: on
   generated enterprise and fattree networks, Verify.Session.run
   must produce exactly the verdicts of independent fresh-solver
   Verify.run_query calls, and the counterexamples it decodes must be
   well-formed forwarding states of the same encoding. *)

module MS = Minesweeper
module G = Generators
module A = Config.Ast

(* Every forwarding edge of a decoded counterexample must be a next-hop
   the encoding actually offers (internal edges point at model
   neighbors; named hops exist on the device). *)
let check_cx_valid enc (cx : MS.Counterexample.t) =
  List.iter
    (fun (d, hop) ->
      if not (List.mem d (MS.Encode.devices enc)) then
        Alcotest.failf "counterexample forwards at unknown device %s" d;
      (match hop with
       | MS.Nexthop.To_device n ->
         if not (List.mem n (MS.Encode.internal_neighbors enc d)) then
           Alcotest.failf "counterexample edge %s -> %s is not in the model" d n
       | _ -> ());
      if not (List.mem hop (MS.Encode.hops enc d)) then
        Alcotest.failf "counterexample hop at %s is not offered by the encoding" d)
    cx.MS.Counterexample.forwarding

let differential name net (props : (string * (MS.Encode.t -> MS.Property.t)) list) =
  let opts = MS.Options.default in
  (* Baseline: one fresh encoding and one fresh single-shot solver per
     query — the cold Query/Report path. *)
  let baseline =
    List.map
      (fun (_, make) ->
        let enc = MS.Encode.build net opts in
        MS.Verify.Report.to_outcome (MS.Verify.run_query enc (MS.Verify.Query.v "query" make)))
      props
  in
  (* Session: one encoding, one incremental solver, all queries —
     driven through the Query/Report surface. *)
  let session = MS.Verify.Session.create net opts in
  let queries = List.map (fun (pname, make) -> MS.Verify.Query.v pname make) props in
  let reports = MS.Verify.Session.run session queries in
  let enc = MS.Verify.Session.encoding session in
  Alcotest.(check int)
    (name ^ ": query count")
    (List.length props)
    (MS.Verify.Session.queries session);
  List.iteri
    (fun i ((pname, _), (base, (report : MS.Verify.Report.t))) ->
      if report.MS.Verify.Report.label <> pname then
        Alcotest.failf "%s: report %d labelled %s, expected %s" name i
          report.MS.Verify.Report.label pname;
      let sess = MS.Verify.Report.verdict_name report.MS.Verify.Report.verdict in
      let base_name =
        match base with MS.Verify.Holds -> "verified" | MS.Verify.Violation _ -> "violated"
      in
      if base_name <> sess then
        Alcotest.failf "%s: %s (query %d): fresh solver says %s, session says %s" name pname i
          base_name sess;
      match report.MS.Verify.Report.verdict with
      | MS.Verify.Report.Violated cx -> check_cx_valid enc cx
      | _ -> ())
    (List.combine props (List.combine baseline reports))

(* ---- enterprise fleet samples, one per injected violation class ---- *)

let enterprise_props (t : G.Enterprise.t) =
  let net = t.G.Enterprise.network in
  let devices = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let target = List.hd (List.rev devices) in
  let mgmt_dest = MS.Property.Subnet (target, t.G.Enterprise.mgmt_prefix target) in
  let allowed = t.G.Enterprise.edge_routers @ t.G.Enterprise.rack_role in
  let base =
    [
      ( "mgmt-reachability",
        fun enc -> MS.Property.reachability enc ~sources:devices mgmt_dest );
      ("no-blackholes", fun enc -> MS.Property.no_blackholes enc ~allowed ());
      ("no-loops", fun enc -> MS.Property.no_loops enc ());
    ]
  in
  match t.G.Enterprise.rack_role with
  | r1 :: r2 :: _ ->
    base @ [ ("acl-equivalence", fun enc -> MS.Property.acl_equivalence enc r1 r2) ]
  | _ -> base

let test_enterprise_clean () =
  let t = G.Enterprise.make ~seed:3 ~routers:8 ~inject:G.Enterprise.no_bugs () in
  differential "enterprise clean" t.G.Enterprise.network (enterprise_props t)

let test_enterprise_hijack () =
  let t =
    G.Enterprise.make ~seed:5 ~routers:8
      ~inject:{ G.Enterprise.hijack = true; acl_gap = false; deep_drop = false; single_homed = false }
      ()
  in
  differential "enterprise hijack" t.G.Enterprise.network (enterprise_props t)

let test_enterprise_acl_gap () =
  let t =
    G.Enterprise.make ~seed:7 ~routers:8
      ~inject:{ G.Enterprise.hijack = false; acl_gap = true; deep_drop = false; single_homed = false }
      ()
  in
  differential "enterprise acl-gap" t.G.Enterprise.network (enterprise_props t)

let test_enterprise_deep_drop () =
  let t =
    G.Enterprise.make ~seed:11 ~routers:8
      ~inject:{ G.Enterprise.hijack = false; acl_gap = false; deep_drop = true; single_homed = false }
      ()
  in
  differential "enterprise deep-drop" t.G.Enterprise.network (enterprise_props t)

(* ---- fattree ---- *)

let test_fattree () =
  let ft = G.Fattree.make ~pods:2 in
  let net = ft.G.Fattree.network in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  differential "fattree pods=2" net
    [
      ( "single-tor-reachability",
        fun enc -> MS.Property.reachability enc ~sources:[ List.hd other_tors ] dest );
      ( "all-tor-reachability",
        fun enc -> MS.Property.reachability enc ~sources:other_tors dest );
      ( "bounded-length",
        fun enc -> MS.Property.bounded_length enc ~sources:other_tors dest ~bound:4 );
      ("multipath-consistency", fun enc -> MS.Property.multipath_consistency enc dest);
      ( "no-blackholes",
        fun enc -> MS.Property.no_blackholes enc ~allowed:ft.G.Fattree.cores () );
      ( "isolation-should-fail",
        fun enc -> MS.Property.isolation enc ~sources:[ List.hd other_tors ] dest );
    ]

(* Re-running the same suite twice through one session must not change
   any verdict: the retired activation literals of earlier queries must
   leave no semantic trace. *)
let test_session_idempotent () =
  let ft = G.Fattree.make ~pods:2 in
  let net = ft.G.Fattree.network in
  let dst_tor = List.hd ft.G.Fattree.tors in
  let other_tors = List.filter (fun t -> t <> dst_tor) ft.G.Fattree.tors in
  let dest = MS.Property.Subnet (dst_tor, ft.G.Fattree.tor_subnet dst_tor) in
  let props =
    [
      (fun enc -> MS.Property.reachability enc ~sources:other_tors dest);
      (fun enc -> MS.Property.isolation enc ~sources:other_tors dest);
    ]
  in
  let session = MS.Verify.Session.create net MS.Options.default in
  let queries = List.mapi (fun i make -> MS.Verify.Query.v (Printf.sprintf "q%d" i) make) props in
  let verdict (r : MS.Verify.Report.t) =
    MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict
  in
  let first = MS.Verify.Session.run session queries in
  let second = MS.Verify.Session.run session queries in
  List.iteri
    (fun i (a, b) ->
      if verdict a <> verdict b then
        Alcotest.failf "query %d changed verdict across repetitions: %s then %s" i (verdict a)
          (verdict b))
    (List.combine first second)

let () =
  Alcotest.run "session"
    [
      ( "differential",
        [
          Alcotest.test_case "enterprise clean" `Quick test_enterprise_clean;
          Alcotest.test_case "enterprise hijack" `Quick test_enterprise_hijack;
          Alcotest.test_case "enterprise acl-gap" `Quick test_enterprise_acl_gap;
          Alcotest.test_case "enterprise deep-drop" `Quick test_enterprise_deep_drop;
          Alcotest.test_case "fattree pods=2" `Quick test_fattree;
        ] );
      ("idempotence", [ Alcotest.test_case "repeat suite" `Quick test_session_idempotent ]);
    ]
