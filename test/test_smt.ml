(* End-to-end tests for the SMT solver: terms, theories, bit vectors,
   cardinality, plus qcheck properties validating models against the
   reference evaluator and a brute-force difference-logic oracle. *)

module T = Smt.Term
module Sort = Smt.Sort
module Solver = Smt.Solver
module Model = Smt.Model
module Rat = Exactnum.Rat

let is_sat term = match Solver.check_term term with Solver.Sat _ -> true | Solver.Unsat -> false

let model_exn term =
  match Solver.check_term term with
  | Solver.Sat m -> m
  | Solver.Unsat -> Alcotest.fail "expected sat"

let check_sat msg term = Alcotest.(check bool) msg true (is_sat term)
let check_unsat msg term = Alcotest.(check bool) msg false (is_sat term)

(* -- term layer -------------------------------------------------------------- *)

let test_term_simplify () =
  let a = T.var "ts_a" Sort.Bool and b = T.var "ts_b" Sort.Bool in
  Alcotest.(check bool) "and true" true (T.equal (T.and_ [ a; T.tru ]) a);
  Alcotest.(check bool) "and false" true (T.equal (T.and_ [ a; T.fls ]) T.fls);
  Alcotest.(check bool) "or true" true (T.equal (T.or_ [ a; T.tru ]) T.tru);
  Alcotest.(check bool) "complement" true (T.equal (T.and_ [ a; T.not_ a ]) T.fls);
  Alcotest.(check bool) "dedupe" true (T.equal (T.and_ [ a; a ]) a);
  Alcotest.(check bool) "flatten" true
    (T.equal (T.and_ [ a; T.and_ [ b; a ] ]) (T.and_ [ a; b ]));
  Alcotest.(check bool) "not not" true (T.equal (T.not_ (T.not_ a)) a);
  Alcotest.(check bool) "hash-consing" true (T.and_ [ a; b ] == T.and_ [ a; b ]);
  Alcotest.(check bool) "const folding leq" true (T.equal (T.leq (T.int_const 1) (T.int_const 2)) T.tru);
  Alcotest.(check bool) "const folding lt" true (T.equal (T.lt (T.int_const 2) (T.int_const 2)) T.fls)

let test_term_sort_errors () =
  let x = T.var "ts_x" Sort.Int in
  Alcotest.check_raises "bool op on int" (Invalid_argument "Term.not_: expected sort Bool, got Int")
    (fun () -> ignore (T.not_ x));
  (try
     ignore (T.var "ts_x" Sort.Bool);
     Alcotest.fail "expected sort clash"
   with Invalid_argument _ -> ())

(* -- propositional ------------------------------------------------------------ *)

let test_prop_basic () =
  let a = T.var "pb_a" Sort.Bool and b = T.var "pb_b" Sort.Bool in
  check_sat "a and not b" (T.and_ [ a; T.not_ b ]);
  check_unsat "a and not a" (T.and_ [ a; T.or_ [ T.not_ a ] ]);
  let m = model_exn (T.and_ [ T.or_ [ a; b ]; T.not_ a ]) in
  Alcotest.(check bool) "model b" true (Model.bool_value m b);
  Alcotest.(check bool) "model a" false (Model.bool_value m a)

(* -- integer difference logic -------------------------------------------------- *)

let ivar name = T.var name Sort.Int

let test_idl_sat () =
  let x = ivar "idl_x" and y = ivar "idl_y" in
  let f = T.and_ [ T.leq (T.sub x y) (T.int_const 3); T.leq (T.int_const 1) (T.sub x y) ] in
  let m = model_exn f in
  let dx = Model.int_value m x - Model.int_value m y in
  Alcotest.(check bool) "1 <= x-y <= 3" true (dx >= 1 && dx <= 3)

let test_idl_unsat_cycle () =
  let x = ivar "ic_x" and y = ivar "ic_y" and z = ivar "ic_z" in
  check_unsat "negative cycle"
    (T.and_
       [
         T.leq (T.sub x y) (T.int_const 3);
         T.leq (T.sub y z) (T.int_const (-2));
         T.leq (T.sub z x) (T.int_const (-2));
       ])

let test_idl_strict () =
  let x = ivar "is_x" and y = ivar "is_y" in
  check_unsat "x < y < x" (T.and_ [ T.lt x y; T.lt y x ]);
  check_unsat "x < y <= x" (T.and_ [ T.lt x y; T.leq y x ]);
  (* x < y and y < x + 2 forces y = x + 1 over integers *)
  let m = model_exn (T.and_ [ T.lt x y; T.lt y (T.add x (T.int_const 2)) ]) in
  Alcotest.(check int) "y = x+1" (Model.int_value m x + 1) (Model.int_value m y)

let test_idl_bounds_and_disjunction () =
  let x = ivar "ib_x" in
  let eq_const t n = T.eq t (T.int_const n) in
  let f =
    T.and_
      [
        T.leq x (T.int_const 5);
        T.geq x (T.int_const 3);
        T.or_ [ eq_const x 4; eq_const x 7 ];
      ]
  in
  let m = model_exn f in
  Alcotest.(check int) "x = 4" 4 (Model.int_value m x);
  check_unsat "empty interval"
    (T.and_ [ T.leq x (T.int_const 2); T.geq x (T.int_const 3) ])

let test_idl_equality_chain () =
  let vars = List.init 10 (fun i -> ivar (Printf.sprintf "chain_%d" i)) in
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  let eqs = List.map (fun (a, b) -> T.eq a b) (pairs vars) in
  let first = List.hd vars and last = List.nth vars 9 in
  check_unsat "equal chain with gap"
    (T.and_ (T.lt first last :: eqs));
  check_sat "equal chain consistent" (T.and_ (T.eq first last :: eqs))

(* -- linear rational arithmetic -------------------------------------------------- *)

let rvar name = T.var name Sort.Real

let test_lra_basic () =
  let a = rvar "lra_a" and b = rvar "lra_b" in
  let sum = T.add a b in
  let f =
    T.and_
      [
        T.leq sum (T.rat_const Rat.one);
        T.geq a (T.rat_const (Rat.of_ints 2 5));
        T.eq a b;
      ]
  in
  let m = model_exn f in
  let va = Model.rat_value m a and vb = Model.rat_value m b in
  Alcotest.(check bool) "a = b" true (Rat.equal va vb);
  Alcotest.(check bool) "sum <= 1" true (Rat.leq (Rat.add va vb) Rat.one);
  Alcotest.(check bool) "a >= 2/5" true (Rat.geq va (Rat.of_ints 2 5))

let test_lra_unsat () =
  let a = rvar "lu_a" and b = rvar "lu_b" in
  check_unsat "0.6 + 0.6 > 1"
    (T.and_
       [
         T.leq (T.add a b) (T.rat_const Rat.one);
         T.geq a (T.rat_const (Rat.of_ints 3 5));
         T.geq b (T.rat_const (Rat.of_ints 3 5));
       ])

let test_lra_strict () =
  let a = rvar "ls_a" and b = rvar "ls_b" in
  check_unsat "a < b < a" (T.and_ [ T.lt a b; T.lt b a ]);
  (* strict bounds have rational witnesses: a < b, b < 1, a > 0 *)
  let m =
    model_exn
      (T.and_ [ T.lt a b; T.lt b (T.rat_const Rat.one); T.lt (T.rat_const Rat.zero) a ])
  in
  let va = Model.rat_value m a and vb = Model.rat_value m b in
  Alcotest.(check bool) "0 < a < b < 1" true
    (Rat.lt Rat.zero va && Rat.lt va vb && Rat.lt vb Rat.one)

let test_lra_scale () =
  let a = rvar "lsc_a" in
  (* 3a <= 2 and a >= 1/2 gives 1/2 <= a <= 2/3 *)
  let m =
    model_exn
      (T.and_
         [
           T.leq (T.scale (Rat.of_int 3) a) (T.rat_const (Rat.of_int 2));
           T.geq a (T.rat_const (Rat.of_ints 1 2));
         ])
  in
  let va = Model.rat_value m a in
  Alcotest.(check bool) "in range" true
    (Rat.geq va (Rat.of_ints 1 2) && Rat.leq va (Rat.of_ints 2 3))

(* -- bit vectors ------------------------------------------------------------------ *)

let test_bv_basic () =
  let x = T.bv_var "bv_x" ~width:8 in
  let m = model_exn (T.bv_eq x (T.bv_const ~width:8 0xAB)) in
  Alcotest.(check int) "x = 0xAB" 0xAB (Model.bv_value m x);
  check_unsat "conflicting eq"
    (T.and_ [ T.bv_eq x (T.bv_const ~width:8 1); T.bv_eq x (T.bv_const ~width:8 2) ])

let test_bv_and_mask () =
  let x = T.bv_var "bvm_x" ~width:8 in
  let masked = T.bv_and x (T.bv_const ~width:8 0xF0) in
  let f =
    T.and_
      [ T.bv_eq masked (T.bv_const ~width:8 0xA0); T.bv_ule x (T.bv_const ~width:8 0xA3) ]
  in
  let m = model_exn f in
  let v = Model.bv_value m x in
  Alcotest.(check int) "high nibble" 0xA0 (v land 0xF0);
  Alcotest.(check bool) "<= 0xA3" true (v <= 0xA3)

let test_bv_ule () =
  let x = T.bv_var "bvu_x" ~width:4 in
  check_unsat "x <= 3 and x >= 12"
    (T.and_
       [
         T.bv_ule x (T.bv_const ~width:4 3);
         T.bv_ule (T.bv_const ~width:4 12) x;
       ]);
  let m =
    model_exn
      (T.and_
         [ T.bv_ule (T.bv_const ~width:4 5) x; T.bv_ule x (T.bv_const ~width:4 6) ])
  in
  let v = Model.bv_value m x in
  Alcotest.(check bool) "5 <= x <= 6" true (v >= 5 && v <= 6)

(* -- cardinality -------------------------------------------------------------------- *)

let test_at_most () =
  let vars = List.init 5 (fun i -> T.var (Printf.sprintf "am_%d" i) Sort.Bool) in
  let m = model_exn (T.and_ [ T.at_most 2 vars; T.at_least 2 vars ]) in
  let count = List.length (List.filter (Model.bool_value m) vars) in
  Alcotest.(check int) "exactly 2" 2 count;
  check_unsat "at most 1 with 2 forced"
    (T.and_ [ T.at_most 1 vars; List.nth vars 0; List.nth vars 3 ]);
  check_sat "at most 0" (T.at_most 0 vars);
  check_unsat "at least 6 of 5" (T.at_least 6 vars)

let test_exactly () =
  let vars = List.init 6 (fun i -> T.var (Printf.sprintf "ex_%d" i) Sort.Bool) in
  let m = model_exn (T.exactly 3 vars) in
  let count = List.length (List.filter (Model.bool_value m) vars) in
  Alcotest.(check int) "exactly 3" 3 count

(* The boundaries the failure-variable encoding leans on: k = 0 freezes
   every variable, k = n is a tautology, and the threshold is exact —
   forcing m variables true is UNSAT at bound m-1 and SAT at bound m. *)
let test_at_most_boundaries () =
  let n = 6 in
  let vars = List.init n (fun i -> T.var (Printf.sprintf "amb_%d" i) Sort.Bool) in
  let m = model_exn (T.at_most 0 vars) in
  List.iteri
    (fun i v ->
      Alcotest.(check bool) (Printf.sprintf "k=0 forces amb_%d false" i) false
        (Model.bool_value m v))
    vars;
  check_unsat "k=0 with one forced" (T.and_ [ T.at_most 0 vars; List.nth vars 3 ]);
  check_sat "k=n admits all true" (T.and_ (T.at_most n vars :: vars));
  let forced = [ List.nth vars 0; List.nth vars 2; List.nth vars 5 ] in
  check_unsat "3 forced, bound 2" (T.and_ (T.at_most 2 vars :: forced));
  check_sat "3 forced, bound 3" (T.and_ (T.at_most 3 vars :: forced))

(* UNSAT verdicts over cardinality clauses must replay through the
   independent proof checker (this is what --certify leans on once the
   encoding carries per-link failure variables). *)
let test_at_most_proof () =
  let s = Solver.create ~certify:true () in
  let vars = List.init 4 (fun i -> T.var (Printf.sprintf "amp_%d" i) Sort.Bool) in
  Solver.assert_term s (T.at_most 1 vars);
  Solver.assert_term s (List.nth vars 0);
  Solver.assert_term s (List.nth vars 2);
  (match Solver.check s with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "2 forced against bound 1 must be unsat");
  match Proof.Certify.unsat s with
  | Ok summary ->
    Alcotest.(check bool) "the trace derives clauses" true
      (summary.Proof.Certify.clauses > 0)
  | Error e -> Alcotest.failf "cardinality proof rejected: %s" e

(* -- mixed theories ------------------------------------------------------------------ *)

let test_mixed () =
  let x = ivar "mx_x" and r = rvar "mx_r" and b = T.var "mx_b" Sort.Bool in
  let f =
    T.and_
      [
        T.implies b (T.leq x (T.int_const 3));
        T.implies (T.not_ b) (T.geq r (T.rat_const (Rat.of_int 10)));
        T.geq x (T.int_const 5);
      ]
  in
  let m = model_exn f in
  Alcotest.(check bool) "b forced false" false (Model.bool_value m b);
  Alcotest.(check bool) "r >= 10" true (Rat.geq (Model.rat_value m r) (Rat.of_int 10))

(* -- qcheck properties ----------------------------------------------------------------- *)

(* Random difference-logic systems over a small domain, checked against
   brute force. *)
let idl_system_gen =
  let open QCheck.Gen in
  let nv = 4 in
  let constr = triple (int_range 0 (nv - 1)) (int_range 0 (nv - 1)) (int_range (-3) 3) in
  list_size (int_range 1 10) constr >>= fun cs -> return (nv, cs)

let brute_force_idl nv cs =
  (* all assignments in [0,7)^nv; difference constraints are
     translation-invariant so a window of size 7 >= sum of |k| bounds the
     search for 4 variables with |k| <= 3. *)
  let rec go assignment i =
    if i = nv then
      List.for_all (fun (x, y, k) -> assignment.(x) - assignment.(y) <= k) cs
    else begin
      let found = ref false in
      let v = ref 0 in
      while (not !found) && !v < 13 do
        assignment.(i) <- !v;
        if go assignment (i + 1) then found := true;
        incr v
      done;
      !found
    end
  in
  go (Array.make nv 0) 0

let prop_idl_matches_brute =
  QCheck.Test.make ~name:"idl solver matches brute force" ~count:300 (QCheck.make idl_system_gen)
    (fun (nv, cs) ->
      let vars = Array.init nv (fun i -> ivar (Printf.sprintf "qidl_%d_%d" (Hashtbl.hash cs) i)) in
      let f =
        T.and_
          (List.map (fun (x, y, k) -> T.leq (T.sub vars.(x) vars.(y)) (T.int_const k)) cs)
      in
      let got = is_sat f in
      let expected = brute_force_idl nv cs in
      if got <> expected then QCheck.Test.fail_reportf "solver=%b brute=%b" got expected;
      true)

(* Random Boolean formulas: any model returned must evaluate to true. *)
let term_gen =
  let open QCheck.Gen in
  let leaf i = T.var (Printf.sprintf "qb_%d" (i mod 6)) Sort.Bool in
  fix
    (fun self depth ->
      if depth = 0 then map leaf (int_range 0 5)
      else begin
        frequency
          [
            (2, map leaf (int_range 0 5));
            (2, map2 (fun a b -> T.and_ [ a; b ]) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> T.or_ [ a; b ]) (self (depth - 1)) (self (depth - 1)));
            (1, map T.not_ (self (depth - 1)));
            (1, map2 T.implies (self (depth - 1)) (self (depth - 1)));
            (1, map2 T.iff (self (depth - 1)) (self (depth - 1)));
          ]
      end)
    4

let prop_model_evaluates_true =
  QCheck.Test.make ~name:"sat models evaluate to true" ~count:300 (QCheck.make term_gen)
    (fun term ->
      match Solver.check_term term with
      | Solver.Unsat -> true
      | Solver.Sat m -> Model.eval_bool m term)

(* Formulas and their negations cannot both be unsat (completeness smoke). *)
let prop_excluded_middle =
  QCheck.Test.make ~name:"f or not f is sat" ~count:200 (QCheck.make term_gen)
    (fun term -> is_sat (T.or_ [ term; T.not_ term ]))

(* -- incremental solving -------------------------------------------------------- *)

let test_single_shot_hardening () =
  let a = T.var "ssh_a" Sort.Bool in
  let s = Solver.create () in
  Solver.assert_term s a;
  (match Solver.check s with Solver.Sat _ -> () | Solver.Unsat -> Alcotest.fail "expected sat");
  (try
     ignore (Solver.check s);
     Alcotest.fail "second check on a single-shot solver must raise"
   with Invalid_argument _ -> ())

let test_incremental_checks () =
  let a = T.var "inc_a" Sort.Bool and b = T.var "inc_b" Sort.Bool in
  let s = Solver.create ~incremental:true () in
  Solver.assert_term s (T.or_ [ a; b ]);
  (match Solver.check s with Solver.Sat _ -> () | Solver.Unsat -> Alcotest.fail "sat 1");
  Solver.assert_term s (T.not_ a);
  (match Solver.check s with
   | Solver.Sat m -> Alcotest.(check bool) "b forced" true (Model.bool_value m b)
   | Solver.Unsat -> Alcotest.fail "sat 2");
  Solver.assert_term s (T.not_ b);
  (match Solver.check s with
   | Solver.Sat _ -> Alcotest.fail "expected unsat"
   | Solver.Unsat -> ())

let test_incremental_assumptions () =
  let a = T.var "ia_a" Sort.Bool and b = T.var "ia_b" Sort.Bool in
  let s = Solver.create ~incremental:true () in
  Solver.assert_term s (T.or_ [ a; b ]);
  (match Solver.check ~assumptions:[ T.not_ a ] s with
   | Solver.Sat m -> Alcotest.(check bool) "b forced under ~a" true (Model.bool_value m b)
   | Solver.Unsat -> Alcotest.fail "sat under ~a");
  (match Solver.check ~assumptions:[ T.not_ a; T.not_ b ] s with
   | Solver.Sat _ -> Alcotest.fail "expected unsat under ~a,~b"
   | Solver.Unsat ->
     let core = Solver.unsat_core s in
     Alcotest.(check bool) "core nonempty" true (core <> []);
     List.iter
       (fun t ->
         if not (List.exists (T.equal t) [ T.not_ a; T.not_ b ]) then
           Alcotest.fail "core term is not an assumption")
       core);
  (* assumptions leave no trace *)
  match Solver.check s with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "sat without assumptions"

let test_activation_literals () =
  (* Two contradictory queries against one shared formula, each guarded
     by its own activation literal — the Session pattern. *)
  let x = ivar "al_x" in
  let act1 = T.var "al_act1" Sort.Bool and act2 = T.var "al_act2" Sort.Bool in
  let s = Solver.create ~incremental:true () in
  Solver.assert_term s (T.and_ [ T.leq (T.int_const 0) x; T.leq x (T.int_const 10) ]);
  Solver.assert_implied s ~guard:act1 (T.leq x (T.int_const ~-1));
  (match Solver.check ~assumptions:[ act1 ] s with
   | Solver.Sat _ -> Alcotest.fail "query 1 should be unsat"
   | Solver.Unsat ->
     Alcotest.(check bool) "core is act1" true
       (List.exists (T.equal act1) (Solver.unsat_core s)));
  Solver.assert_term s (T.not_ act1);
  Solver.assert_implied s ~guard:act2 (T.leq (T.int_const 5) x);
  (match Solver.check ~assumptions:[ act2 ] s with
   | Solver.Sat m ->
     let v = Model.int_value m x in
     if v < 5 || v > 10 then Alcotest.failf "model x=%d outside [5,10]" v
   | Solver.Unsat -> Alcotest.fail "query 2 should be sat")

let test_incremental_theory () =
  (* New difference atoms and theory variables appearing between checks. *)
  let x = ivar "it_x" and y = ivar "it_y" and z = ivar "it_z" in
  let s = Solver.create ~incremental:true () in
  Solver.assert_term s (T.leq (T.sub x y) (T.int_const ~-1));
  (match Solver.check s with
   | Solver.Sat m ->
     Alcotest.(check bool) "x < y" true (Model.int_value m x < Model.int_value m y)
   | Solver.Unsat -> Alcotest.fail "sat 1");
  Solver.assert_term s (T.leq (T.sub y z) (T.int_const ~-1));
  (match Solver.check s with
   | Solver.Sat m ->
     Alcotest.(check bool) "x < y < z" true
       (Model.int_value m x < Model.int_value m y && Model.int_value m y < Model.int_value m z)
   | Solver.Unsat -> Alcotest.fail "sat 2");
  Solver.assert_term s (T.leq (T.sub z x) (T.int_const ~-1));
  match Solver.check s with
  | Solver.Sat _ -> Alcotest.fail "cycle should be unsat"
  | Solver.Unsat -> ()

let test_stats_accumulate () =
  let a = T.var "sa_a" Sort.Bool and b = T.var "sa_b" Sort.Bool in
  let s = Solver.create ~incremental:true () in
  Solver.assert_term s (T.or_ [ a; b ]);
  ignore (Solver.check s);
  let st1 = Solver.stats s in
  ignore (Solver.check ~assumptions:[ T.not_ a ] s);
  let st2 = Solver.stats s in
  Alcotest.(check int) "checks counted" 2 st2.Solver.checks;
  Alcotest.(check bool) "decisions monotone" true (st2.Solver.decisions >= st1.Solver.decisions);
  Alcotest.(check bool) "restarts present" true (st2.Solver.restarts >= 0);
  Alcotest.(check bool) "learned present" true (st2.Solver.learned_clauses >= 0)

let () =
  Alcotest.run "smt"
    [
      ( "term",
        [
          Alcotest.test_case "simplify" `Quick test_term_simplify;
          Alcotest.test_case "sort errors" `Quick test_term_sort_errors;
        ] );
      ("prop", [ Alcotest.test_case "basic" `Quick test_prop_basic ]);
      ( "idl",
        [
          Alcotest.test_case "sat" `Quick test_idl_sat;
          Alcotest.test_case "unsat cycle" `Quick test_idl_unsat_cycle;
          Alcotest.test_case "strict" `Quick test_idl_strict;
          Alcotest.test_case "bounds + disjunction" `Quick test_idl_bounds_and_disjunction;
          Alcotest.test_case "equality chain" `Quick test_idl_equality_chain;
        ] );
      ( "lra",
        [
          Alcotest.test_case "basic" `Quick test_lra_basic;
          Alcotest.test_case "unsat" `Quick test_lra_unsat;
          Alcotest.test_case "strict" `Quick test_lra_strict;
          Alcotest.test_case "scale" `Quick test_lra_scale;
        ] );
      ( "bv",
        [
          Alcotest.test_case "basic" `Quick test_bv_basic;
          Alcotest.test_case "and mask" `Quick test_bv_and_mask;
          Alcotest.test_case "ule" `Quick test_bv_ule;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "at_most" `Quick test_at_most;
          Alcotest.test_case "exactly" `Quick test_exactly;
          Alcotest.test_case "at_most boundaries" `Quick test_at_most_boundaries;
          Alcotest.test_case "at_most proof replay" `Quick test_at_most_proof;
        ] );
      ("mixed", [ Alcotest.test_case "bool+idl+lra" `Quick test_mixed ]);
      ( "incremental",
        [
          Alcotest.test_case "single-shot hardening" `Quick test_single_shot_hardening;
          Alcotest.test_case "re-entrant checks" `Quick test_incremental_checks;
          Alcotest.test_case "assumptions + unsat core" `Quick test_incremental_assumptions;
          Alcotest.test_case "activation literals" `Quick test_activation_literals;
          Alcotest.test_case "theory across checks" `Quick test_incremental_theory;
          Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_idl_matches_brute; prop_model_evaluates_true; prop_excluded_middle ] );
    ]
