(* The serve daemon: protocol handling (malformed requests, schema
   checks), the socket server (disconnects mid-request, concurrent
   clients racing a diff), and the heart of the matter — a differential
   test pinning delta re-verification to full re-verification over
   random configuration churn. *)

module MS = Minesweeper
module G = Generators
module A = Config.Ast
module J = Msutil.Json

let default = MS.Options.default
let print_net = Config.Printer.network_to_string

let base_t = lazy (G.Enterprise.make ~seed:3 ~routers:8 ~inject:G.Enterprise.no_bugs ())

(* -- request/response helpers ----------------------------------------------- *)

let req_load text = Printf.sprintf {|{"schema":2,"op":"load","config":%s}|} (J.quote text)
let req_diff text = Printf.sprintf {|{"schema":2,"op":"diff","config":%s}|} (J.quote text)

(* The query suite of the differential: an equivalence pair inside the
   churn zone (its verdict must be re-solved), one far away from it
   (its verdict must replay across diffs), a localized reachability,
   and a global property (never replayed, always re-solved). *)
let req_query (t : G.Enterprise.t) =
  let r1, r2, r3, r4 =
    match t.G.Enterprise.rack_role with
    | a :: b :: c :: d :: _ -> (a, b, c, d)
    | _ -> Alcotest.fail "enterprise has fewer than four racks"
  in
  Printf.sprintf
    {|{"schema":2,"op":"query","queries":[{"property":"acl-equivalence","label":"acl-eq-churned","devices":["%s","%s"]},{"property":"acl-equivalence","label":"acl-eq-remote","devices":["%s","%s"]},{"property":"reachability","sources":["%s"],"dst_device":"%s","dst_prefix":"%s"},{"property":"loops"}]}|}
    r1 r2 r3 r4 r1 r2
    (Net.Prefix.to_string (t.G.Enterprise.rack_subnet r2))

let parse_resp line =
  match J.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e

let get_bool_field resp k =
  match Option.bind (J.member k resp) J.get_bool with
  | Some b -> b
  | None -> Alcotest.failf "response lacks boolean %s" k

let get_int_field resp k =
  match Option.bind (J.member k resp) J.get_int with
  | Some n -> n
  | None -> Alcotest.failf "response lacks integer %s" k

let expect_ok resp =
  Alcotest.(check int) "schema 2" 2 (get_int_field resp "schema");
  if not (get_bool_field resp "ok") then
    Alcotest.failf "request failed: %s"
      (Option.value ~default:"?" (Option.bind (J.member "error" resp) J.get_string))

let expect_err line =
  let resp = parse_resp line in
  Alcotest.(check int) "schema 2" 2 (get_int_field resp "schema");
  Alcotest.(check bool) "ok=false" false (get_bool_field resp "ok");
  match Option.bind (J.member "error" resp) J.get_string with
  | Some e -> e
  | None -> Alcotest.fail "error response lacks an error message"

let ask d line =
  let resp, _ = Serve.handle_line d line in
  let v = parse_resp resp in
  expect_ok v;
  v

let verdicts resp =
  match Option.bind (J.member "reports" resp) J.get_list with
  | None -> Alcotest.fail "query response lacks reports"
  | Some rs ->
    List.map
      (fun r ->
        ( Option.value ~default:"?" (Option.bind (J.member "label" r) J.get_string),
          Option.value ~default:"?" (Option.bind (J.member "verdict" r) J.get_string) ))
      rs

(* -- protocol errors -------------------------------------------------------- *)

let test_malformed () =
  let d = Serve.create default in
  let e = expect_err (fst (Serve.handle_line d "{nope")) in
  Alcotest.(check bool) "names the parse error" true
    (String.length e >= 14 && String.sub e 0 14 = "malformed JSON");
  ignore (expect_err (fst (Serve.handle_line d "[1,2]")));
  ignore (expect_err (fst (Serve.handle_line d {|{"op":"load"}|})));
  ignore (expect_err (fst (Serve.handle_line d {|{"op":"frobnicate"}|})));
  ignore (expect_err (fst (Serve.handle_line d {|{"schema":1,"op":"stats"}|})));
  ignore (expect_err (fst (Serve.handle_line d {|{"schema":2,"op":"query","queries":[]}|})));
  (* query and diff before any load *)
  ignore
    (expect_err
       (fst (Serve.handle_line d {|{"schema":2,"op":"query","queries":[{"property":"loops"}]}|})));
  ignore (expect_err (fst (Serve.handle_line d (req_diff "hostname R1"))));
  (* a config that does not parse *)
  ignore (expect_err (fst (Serve.handle_line d (req_load "hostname R1\nbananas"))));
  (* the daemon survives all of the above *)
  let resp = ask d {|{"schema":2,"op":"stats"}|} in
  Alcotest.(check bool) "not loaded" false (get_bool_field resp "loaded")

(* -- delta vs full differential on random churn ----------------------------- *)

(* Deterministic churn: each step mutates one of the first two racks'
   ACLs — a flipped action or an appended entry — yielding a parseable
   config whose diff touches exactly that device.  Racks beyond the
   first two are never touched, so verdicts localized to them can
   replay.  Ground truth per step is a fresh daemon that loads the
   mutated text cold. *)
let mutate_rack step (t : G.Enterprise.t) (net : A.network) =
  let racks = t.G.Enterprise.rack_role in
  let victim = List.nth racks (step mod min 2 (List.length racks)) in
  let subnet = t.G.Enterprise.rack_subnet victim in
  let mutate_acl (acl : A.acl) =
    if step mod 2 = 0 then
      {
        acl with
        A.acl_entries =
          acl.A.acl_entries
          @ [
              {
                A.acl_action = A.Deny;
                acl_dst = Net.Prefix.make (Net.Prefix.first subnet) 32;
              };
            ];
      }
    else
      {
        acl with
        A.acl_entries =
          (match acl.A.acl_entries with
           | e :: rest ->
             {
               e with
               A.acl_action = (match e.A.acl_action with A.Permit -> A.Deny | A.Deny -> A.Permit);
             }
             :: rest
           | [] -> [ { A.acl_action = A.Deny; acl_dst = subnet } ]);
      }
  in
  {
    net with
    A.net_devices =
      List.map
        (fun (d : A.device) ->
          if d.A.dev_name <> victim then d
          else
            match d.A.dev_acls with
            | acl :: rest -> { d with A.dev_acls = mutate_acl acl :: rest }
            | [] ->
              {
                d with
                A.dev_acls = [ { A.acl_name = "90"; acl_entries = [ { A.acl_action = A.Deny; acl_dst = subnet } ] } ];
              })
        net.A.net_devices;
  }

let test_delta_vs_full () =
  let t = Lazy.force base_t in
  let query = req_query t in
  let delta = Serve.create default in
  ignore (ask delta (req_load (print_net t.G.Enterprise.network)));
  ignore (ask delta query);
  let net = ref t.G.Enterprise.network in
  for step = 0 to 3 do
    net := mutate_rack step t !net;
    let text = print_net !net in
    let dresp = ask delta (req_diff text) in
    (match Option.bind (J.member "mode" dresp) J.get_string with
     | Some ("delta" | "full") -> ()
     | _ -> Alcotest.fail "diff response lacks a mode");
    let got = verdicts (ask delta query) in
    (* ground truth: a cold daemon on the same text *)
    let full = Serve.create default in
    ignore (ask full (req_load text));
    let want = verdicts (ask full query) in
    List.iteri
      (fun i ((l_got, v_got), (l_want, v_want)) ->
        Alcotest.(check string) (Printf.sprintf "step %d label %d" step i) l_want l_got;
        if v_got <> v_want then
          Alcotest.failf "step %d, %s: delta daemon says %s, full verification says %s" step
            l_got v_got v_want)
      (List.combine got want)
  done;
  (* the churn only ever touched the first two racks, so the remote
     pair's verdict must have been replayed rather than re-solved *)
  let stats = ask delta {|{"schema":2,"op":"stats"}|} in
  Alcotest.(check bool) "replays happened" true (get_int_field stats "delta_replays" > 0);
  Alcotest.(check bool) "some diffs stayed delta" true (get_int_field stats "delta_diffs" > 0)

(* -- verdict cache and encoding cache --------------------------------------- *)

let test_caches () =
  let t = Lazy.force base_t in
  let query = req_query t in
  let text_a = print_net t.G.Enterprise.network in
  let text_b = print_net (mutate_rack 0 t t.G.Enterprise.network) in
  let d = Serve.create default in
  ignore (ask d (req_load text_a));
  let first = verdicts (ask d query) in
  (* same query again: answered wholly from the verdict cache *)
  let again = ask d query in
  Alcotest.(check bool) "verdict cache hit" true (get_int_field again "verdict_hits" > 0);
  Alcotest.(check int) "nothing solved" 0 (get_int_field again "solved");
  Alcotest.(check bool) "same verdicts" true (verdicts again = first);
  (* flap A -> B -> A: the reload of A reuses the cached encoding *)
  ignore (ask d (req_load text_b));
  ignore (ask d query);
  ignore (ask d (req_load text_a));
  ignore (ask d query);
  let stats = ask d {|{"schema":2,"op":"stats"}|} in
  Alcotest.(check bool) "encoding cache hit on the flap" true
    (get_int_field stats "enc_cache_hits" > 0)

(* -- support tracking ------------------------------------------------------- *)

(* A support-tracking session must (a) agree with the plain session on
   verdicts and (b) attribute a localized Verified property to a proper
   subset of the devices. *)
let test_support_tracking () =
  let t = Lazy.force base_t in
  let net = t.G.Enterprise.network in
  let r1, r2 =
    match t.G.Enterprise.rack_role with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "racks"
  in
  let q = MS.Verify.Query.v "acl-eq" (fun enc -> MS.Property.acl_equivalence enc r1 r2) in
  let plain = MS.Verify.Session.run_one (MS.Verify.Session.create net default) q in
  let s = MS.Verify.Session.create ~support:true net default in
  let tracked = MS.Verify.Session.run_one s q in
  Alcotest.(check string) "verdicts agree"
    (MS.Verify.Report.verdict_name plain.MS.Verify.Report.verdict)
    (MS.Verify.Report.verdict_name tracked.MS.Verify.Report.verdict);
  match tracked.MS.Verify.Report.verdict with
  | MS.Verify.Report.Verified -> (
    match tracked.MS.Verify.Report.support with
    | None -> Alcotest.fail "support-tracking session produced no support"
    | Some devs ->
      let all = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
      List.iter
        (fun d ->
          if not (List.mem d all) then Alcotest.failf "support names unknown device %s" d)
        devs;
      if List.length devs >= List.length all then
        Alcotest.failf "support of a local property spans all %d devices" (List.length all))
  | _ -> Alcotest.fail "acl-equivalence expected to hold on the clean enterprise"

(* -- the socket server ------------------------------------------------------ *)

let with_daemon f =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ms_serve_%d.sock" (Unix.getpid ()))
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try Serve.run (Serve.create default) ~socket with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with _ -> ());
        (try ignore (Unix.waitpid [] pid) with _ -> ());
        if Sys.file_exists socket then Sys.remove socket)
      (fun () -> f socket pid)

let test_socket_server () =
  let t = Lazy.force base_t in
  let small_query =
    match t.G.Enterprise.rack_role with
    | a :: b :: _ ->
      Printf.sprintf
        {|{"schema":2,"op":"query","queries":[{"property":"acl-equivalence","devices":["%s","%s"]}]}|}
        a b
    | _ -> Alcotest.fail "racks"
  in
  with_daemon (fun socket pid ->
      let c = Serve.Client.connect_retry socket in
      (* malformed request over the wire *)
      ignore (expect_err (Serve.Client.request_line c "{nope"));
      (* a client disconnecting mid-request must not disturb anyone *)
      let half = Serve.Client.connect socket in
      Serve.Client.send_line half (req_load (print_net t.G.Enterprise.network));
      (* second request sent WITHOUT its newline, then the socket dies *)
      ignore (Serve.Client.read_line half);
      Serve.Client.send_raw half {|{"schema":2,"op":"query","queries":[{"prop|};
      Serve.Client.close half;
      (* two clients racing a diff against a query: both requests are
         written before either response is read; the daemon serializes
         them in arrival order and must answer both coherently *)
      let c2 = Serve.Client.connect socket in
      let mutated = print_net (mutate_rack 0 t t.G.Enterprise.network) in
      Serve.Client.send_line c (req_diff mutated);
      Serve.Client.send_line c2 small_query;
      let diff_resp = parse_resp (Serve.Client.read_line c) in
      let query_resp = parse_resp (Serve.Client.read_line c2) in
      expect_ok diff_resp;
      expect_ok query_resp;
      Alcotest.(check int) "one report" 1 (List.length (verdicts query_resp));
      (* clean shutdown *)
      let bye = parse_resp (Serve.Client.request_line c2 {|{"schema":2,"op":"shutdown"}|}) in
      expect_ok bye;
      Serve.Client.close c;
      Serve.Client.close c2;
      (match Unix.waitpid [] pid with
       | _, Unix.WEXITED 0 -> ()
       | _ -> Alcotest.fail "daemon did not exit cleanly on shutdown");
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket))

let () =
  Alcotest.run "serve"
    [
      ("protocol", [ Alcotest.test_case "malformed requests" `Quick test_malformed ]);
      ( "delta",
        [
          Alcotest.test_case "delta vs full on churn" `Slow test_delta_vs_full;
          Alcotest.test_case "verdict and encoding caches" `Slow test_caches;
          Alcotest.test_case "support tracking" `Quick test_support_tracking;
        ] );
      ("socket", [ Alcotest.test_case "daemon over a unix socket" `Slow test_socket_server ]);
    ]
