(** Minimal JSON support shared by every emitter and the serve
    protocol.  This is deliberately not a full JSON library: the repo
    *produces* JSON from trusted data (all that must be centralized is
    string escaping) and *consumes* only the small line-delimited
    request objects of the serve protocol. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes in a JSON
    document: backslash, double quote, and all control characters
    below U+0020 (named escapes for \n, \r, \t, \b, \f; \u00xx
    otherwise).  Everything else passes through byte-for-byte. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes. *)

val opt : string option -> string
(** [opt None] is [null]; [opt (Some s)] is [quote s]. *)

(** {2 Parsing}

    A plain recursive-descent parser for the serve protocol's
    line-delimited request objects.  Numbers are floats (JSON has one
    number type); \uXXXX escapes are decoded to UTF-8 without surrogate
    pair handling — protocol strings are configuration text and
    identifiers, never astral-plane text. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Parse one complete JSON document; trailing non-whitespace is an
    error.  The error string names the first offending byte offset. *)

val member : string -> value -> value option
(** Object field lookup; [None] on missing fields and non-objects. *)

val get_string : value -> string option
val get_int : value -> int option
(** [Num] with an integral value only. *)

val get_float : value -> float option
val get_bool : value -> bool option
val get_list : value -> value list option

val string_list : value -> string list option
(** An array whose elements are all strings. *)
