(** Minimal JSON string rendering shared by every emitter in the tree
    (lint diagnostics, verification reports, bench writers).  This is
    deliberately not a JSON library: the repo only ever *produces* JSON
    from trusted data, so all that must be centralized is the one
    subtle part — string escaping. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes in a JSON
    document: backslash, double quote, and all control characters
    below U+0020 (named escapes for \n, \r, \t, \b, \f; \u00xx
    otherwise).  Everything else passes through byte-for-byte. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes. *)

val opt : string option -> string
(** [opt None] is [null]; [opt (Some s)] is [quote s]. *)
