let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let opt = function None -> "null" | Some s -> quote s
