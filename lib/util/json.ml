let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let opt = function None -> "null" | Some s -> quote s

(* -- parsing ---------------------------------------------------------------- *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Bad of string

let parse (s : string) : (value, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           let cp = hex4 () in
           (* Trusted-producer escape handling: BMP code points are
              re-encoded as UTF-8; surrogate pairs are not decoded
              (protocol strings are config text and identifiers). *)
           if cp < 0x80 then Buffer.add_char b (Char.chr cp)
           else if cp < 0x800 then begin
             Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
             Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
           end
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let get_string = function Str s -> Some s | _ -> None
let get_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let get_float = function Num f -> Some f | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function Arr vs -> Some vs | _ -> None

let string_list v =
  match v with
  | Arr vs ->
    List.fold_right
      (fun v acc ->
        match (get_string v, acc) with Some s, Some tl -> Some (s :: tl) | _ -> None)
      vs (Some [])
  | _ -> None
