(** Tiramisu-style graph fast path for ⟨k⟩-failure fault-invariance.

    The SMT encoding answers "is reachability of a destination
    invariant under every set of at most [k] internal-link failures?"
    by a two-copy check over cardinality-bounded failure variables
    ({!Minesweeper.Verify.fault_invariant}).  For a large class of
    networks that question collapses to pure graph theory: when the
    control plane is policy-free any-path routing, a source reaches the
    destination exactly when the surviving internal topology connects
    them, so by Menger's theorem the invariance holds iff the min
    edge cut between source and destination owner exceeds [k] — and a
    minimum cut of size ≤ [k] is itself an explicit counterexample.

    {!analyze} runs a conservative feature scan ({!eligible}) and, when
    it permits, answers by max-flow over the internal topology,
    cross-checked hop-for-hop against the {!Routing} simulator's
    converged forwarding.  Whenever any condition fails it returns
    {!answer.Undecided} and the caller falls back to the SMT encoding —
    {!hybrid} races both paths inside {!Engine.portfolio} and stamps
    the winning report's [method_] field ([Graph] / [Smt] /
    [Fallback]).  Differential agreement between the two paths is the
    correctness gate for the whole feature ([test/test_faults.ml],
    [make bench-fault-smoke]).

    The feature-scan conditions and the soundness argument are spelled
    out in DESIGN.md ("Why the graph fast path is sound"). *)

module Report = Minesweeper.Verify.Report

(** A witness that invariance fails: removing [links] (all internal,
    [|links| <= k]) disconnects [src] from the destination owner even
    though the healthy network connects them. *)
type cut = { src : string; links : (string * string) list }

type answer =
  | Invariant  (** every healthy-reachable source has min-cut > k *)
  | Broken of cut  (** an explicit ≤k cut set *)
  | Undecided of string  (** why the fast path must fall back to SMT *)

val eligible :
  Config.Ast.network ->
  Minesweeper.Property.destination ->
  (string * Net.Prefix.t, string) result
(** The conservative feature scan: [Ok (owner, prefix)] when k-failure
    reachability of [dest] provably reduces to graph connectivity over
    internal links, [Error reason] otherwise.  The conditions (each
    checked syntactically; any failure aborts):

    - the destination is [Subnet (owner, p)] with [p] a connected
      subnet of [owner], originated into BGP by [owner];
    - every device runs BGP and only BGP — no OSPF, no static routes,
      no data-plane ACLs (device- or interface-attached), no
      redistribution, no aggregation;
    - no iBGP session anywhere and all internal ASNs are pairwise
      distinct (AS-path loop rejection can otherwise block a
      topologically-live path);
    - internal BGP sessions carry no import/export route maps
      (policy-free any-path propagation: a route floods the whole
      connected component);
    - every external peering has an import route map under which no
      announcement of any subprefix of [p] can be permitted
      ({!prefix_list} first-match semantics walked symbolically), so
      the environment cannot inject a route at least as specific as
      the destination subnet;
    - no other device owns an interface or originates a BGP network
      overlapping [p] (longest-prefix match inside [p] always lands on
      [owner]). *)

val min_cut :
  Net.Topology.t ->
  src:string ->
  dst:string ->
  limit:int ->
  [ `Above_limit | `Cut of (string * string) list ]
(** Max-flow (BFS augmenting paths, unit capacity per distinct
    unordered device pair) between [src] and [dst] over the internal
    topology.  Stops as soon as the flow exceeds [limit] —
    [`Above_limit] means min-cut > limit; otherwise [`Cut links] is a
    minimum edge cut (possibly empty when already disconnected). *)

val analyze :
  Config.Ast.network ->
  k:int ->
  sources:string list ->
  Minesweeper.Property.destination ->
  answer
(** Decide fault-invariance by graph analysis when {!eligible} permits.
    Beyond the feature scan, the converged simulator state grounds the
    answer: the simulation must converge, and per-source healthy
    reachability through the actual FIB must coincide with topological
    connectivity — any mismatch is an [Undecided] tripwire, never a
    wrong verdict.  Sources that cannot reach the destination even
    healthy are invariantly unreachable and skipped. *)

val report :
  ?label:string ->
  Config.Ast.network ->
  k:int ->
  sources:string list ->
  Minesweeper.Property.destination ->
  Report.t
(** {!analyze} as a {!Report.t} with [method_ = Some Graph]:
    [Invariant] ⇒ [Verified]; [Broken cut] ⇒ [Violated] with a
    counterexample whose [failures] field is the cut set (packet
    addressed into the destination subnet, source address taken from
    the cut source's own subnets); [Undecided r] ⇒
    [Error "graph-undecided: r"] — indecisive by construction, so it
    can never win a portfolio race over a decisive SMT verdict.
    [label] defaults to ["fault-invariant k=<k>"]. *)

val hybrid :
  ?timeout:float ->
  ?strategies:(string * Smt.Solver.strategy) list ->
  ?share:bool ->
  Config.Ast.network ->
  Minesweeper.Options.t ->
  k:int ->
  sources:string list ->
  Minesweeper.Property.destination ->
  Report.t
(** Race the graph fast path against the SMT two-copy encoding inside
    {!Engine.portfolio}: one process per solver strategy (default
    {!Minesweeper.Options.portfolio}) plus one [extra] racer running
    {!report}.  The first decisive answer wins; an undecided graph
    racer simply never produces one.  The winner's [method_] is
    [Graph] when the graph racer won, [Smt] when a solver racer beat a
    decided graph path, and [Fallback] when the graph path could not
    decide. *)
