(* Graph fast path for ⟨k⟩-failure fault-invariance (Tiramisu style).

   The reduction: under the conditions of [eligible] the control plane
   is policy-free any-path routing, so a source reaches the destination
   subnet exactly when the surviving internal topology connects it to
   the subnet's owner.  Fault-invariance under at most k internal-link
   failures is then, per source, "min edge cut to the owner > k"
   (Menger), and a minimum cut of size <= k is an explicit violated
   witness.  Everything here is conservative: any condition the scan
   cannot discharge syntactically yields [Undecided], and even an
   eligible network is double-checked against the concrete simulator
   (healthy reachability must equal connectivity; a violated cut must
   actually disconnect when replayed) before a verdict leaves this
   module.  DESIGN.md spells out the full argument. *)

module A = Config.Ast
module Verify = Minesweeper.Verify
module Report = Minesweeper.Verify.Report
module Query = Minesweeper.Verify.Query
module Property = Minesweeper.Property
module Counterexample = Minesweeper.Counterexample
module Topo = Net.Topology

type cut = { src : string; links : (string * string) list }

type answer =
  | Invariant
  | Broken of cut
  | Undecided of string

(* -- feature scan ----------------------------------------------------------- *)

exception Ineligible of string

let ineligible fmt = Printf.ksprintf (fun s -> raise (Ineligible s)) fmt

(* Prefix-list entry semantics mirrored from Filter.entry_match /
   Routing.Policy: an entry matches prefixes whose first
   [length pl_prefix] bits agree and whose length lies in [lo, hi]
   (defaults: exactly [length pl_prefix]). *)
let entry_bounds (e : A.prefix_list_entry) =
  let base = Net.Prefix.length e.pl_prefix in
  match (e.pl_ge, e.pl_le) with
  | None, None -> (base, base)
  | Some g, None -> (g, 32)
  | None, Some l -> (base, l)
  | Some g, Some l -> (g, l)

(* Could [e] match some subprefix of [p] (any q with q ⊆ p)?  An
   overapproximation — used only to reject, so erring towards [true] is
   safe. *)
let entry_touches_subprefixes p (e : A.prefix_list_entry) =
  let lo, hi = entry_bounds e in
  Net.Prefix.overlaps e.pl_prefix p && max lo (Net.Prefix.length p) <= min hi 32

(* Does [e] deny every subprefix of [p]?  Exact: a Deny whose bit
   pattern covers [p] and whose length window spans [length p, 32]. *)
let entry_denies_all_subprefixes p (e : A.prefix_list_entry) =
  let lo, hi = entry_bounds e in
  e.pl_action = A.Deny
  && Net.Prefix.subset p e.pl_prefix
  && lo <= Net.Prefix.length p
  && hi >= 32

(* First-match walk (exhaustion denies): no subprefix of [p] can come
   out permitted.  A Deny that covers only part of the subprefix space
   is treated as inconclusive. *)
let plist_blocks_subprefixes (pl : A.prefix_list) p =
  let rec go = function
    | [] -> true
    | e :: rest ->
      if entry_denies_all_subprefixes p e then true
      else if entry_touches_subprefixes p e then false
      else go rest
  in
  go pl.pl_entries

(* A route map under which no announcement of a subprefix of [p] can be
   permitted: every Permit clause must carry a prefix-list match that
   blocks the whole subprefix space (a clause gated only by communities
   can be satisfied by a crafted announcement; a missing prefix list
   never matches, exactly as the encoding and the simulator treat it). *)
let rm_blocks_subprefixes (dev : A.device) (rm : A.route_map) p =
  List.for_all
    (fun (c : A.rm_clause) ->
      c.A.rm_action = A.Deny
      || List.exists
           (function
             | A.Match_prefix_list name -> (
               match A.find_prefix_list dev name with
               | None -> true
               | Some pl -> plist_blocks_subprefixes pl p)
             | A.Match_community _ -> false)
           c.A.rm_matches)
    rm.A.rm_clauses

let ip_owner_table (net : A.network) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (d : A.device) ->
      List.iter
        (fun (i : A.interface) ->
          match i.A.if_ip with
          | Some ip -> Hashtbl.replace tbl ip d.A.dev_name
          | None -> ())
        d.A.dev_interfaces)
    net.A.net_devices;
  tbl

let eligible (net : A.network) (dest : Property.destination) =
  try
    let owner, p =
      match dest with
      | Property.Subnet (owner, p) -> (owner, p)
      | Property.Device d ->
        ineligible "destination %s is a device, not a concrete subnet" d
      | Property.External_peer e -> ineligible "destination %s is external" e
    in
    let owner_dev =
      match A.find_device net owner with
      | Some d -> d
      | None -> ineligible "destination owner %s has no configuration" owner
    in
    if
      not
        (List.exists
           (fun (i : A.interface) ->
             match i.A.if_prefix with
             | Some q -> Net.Prefix.equal q p
             | None -> false)
           owner_dev.A.dev_interfaces)
    then
      ineligible "%s is not a connected subnet of %s" (Net.Prefix.to_string p) owner;
    (match owner_dev.A.dev_bgp with
     | Some b when List.exists (Net.Prefix.equal p) b.A.bgp_networks -> ()
     | Some _ | None ->
       ineligible "%s does not originate %s into BGP" owner (Net.Prefix.to_string p));
    (* every topology node must be a configured device, or the graph
       would see connectivity the control plane cannot use *)
    List.iter
      (fun td ->
        if A.find_device net td = None then
          ineligible "topology node %s has no configuration" td)
      (Topo.devices net.A.net_topology);
    let ip_owner = ip_owner_table net in
    let asns = Hashtbl.create 16 in
    List.iter
      (fun (d : A.device) ->
        let name = d.A.dev_name in
        if d.A.dev_ospf <> None then ineligible "%s runs OSPF" name;
        if d.A.dev_statics <> [] then ineligible "%s has static routes" name;
        if d.A.dev_acls <> [] then ineligible "%s has ACLs" name;
        List.iter
          (fun (i : A.interface) ->
            if i.A.if_acl_in <> None || i.A.if_acl_out <> None then
              ineligible "%s applies an interface ACL" name)
          d.A.dev_interfaces;
        let b =
          match d.A.dev_bgp with
          | Some b -> b
          | None -> ineligible "%s does not run BGP" name
        in
        if b.A.bgp_redistribute <> [] then ineligible "%s redistributes into BGP" name;
        if b.A.bgp_aggregates <> [] then ineligible "%s aggregates routes" name;
        (match Hashtbl.find_opt asns b.A.bgp_asn with
         | Some other when other <> name ->
           ineligible "%s and %s share AS %d (AS-path loop rejection)" other name
             b.A.bgp_asn
         | _ -> Hashtbl.replace asns b.A.bgp_asn name);
        List.iter
          (fun (n : A.bgp_neighbor) ->
            if n.A.nbr_remote_as = b.A.bgp_asn then ineligible "%s has an iBGP session" name;
            if n.A.nbr_rr_client then ineligible "%s uses route reflection" name;
            match Hashtbl.find_opt ip_owner n.A.nbr_ip with
            | Some _peer ->
              (* internal session: must be policy-free so routes flood *)
              if n.A.nbr_rm_in <> None || n.A.nbr_rm_out <> None then
                ineligible "%s applies policy on an internal session" name
            | None -> (
              (* external session: imports must provably reject every
                 announcement at least as specific as the destination *)
              match n.A.nbr_rm_in with
              | None ->
                ineligible "%s has an unfiltered external peering" name
              | Some rm_name -> (
                match A.find_route_map d rm_name with
                | None -> ineligible "%s imports through a missing route map" name
                | Some rm ->
                  if not (rm_blocks_subprefixes d rm p) then
                    ineligible
                      "%s's external import may admit a subprefix of %s" name
                      (Net.Prefix.to_string p))))
          b.A.bgp_neighbors)
      net.A.net_devices;
    (* longest-prefix match inside [p] must always land on [owner] *)
    List.iter
      (fun (d : A.device) ->
        if d.A.dev_name <> owner then begin
          List.iter
            (fun (i : A.interface) ->
              match i.A.if_prefix with
              | Some q when Net.Prefix.overlaps q p ->
                ineligible "%s owns %s overlapping the destination" d.A.dev_name
                  (Net.Prefix.to_string q)
              | _ -> ())
            d.A.dev_interfaces;
          match d.A.dev_bgp with
          | Some b ->
            List.iter
              (fun q ->
                if Net.Prefix.overlaps q p then
                  ineligible "%s originates %s overlapping the destination"
                    d.A.dev_name (Net.Prefix.to_string q))
              b.A.bgp_networks
          | None -> ()
        end)
      net.A.net_devices;
    Ok (owner, p)
  with Ineligible reason -> Error reason

(* -- min cut ---------------------------------------------------------------- *)

(* The graph the failure variables quantify over: one unit-capacity
   undirected edge per distinct unordered device pair (the encoding
   allocates one failure variable per canonical pair, and the
   simulator's [failed_links] are unordered pairs). *)
let pair_key a b = if a < b then (a, b) else (b, a)

let internal_pairs topo =
  let seen = Hashtbl.create 97 in
  List.iter
    (fun (l : Topo.link) ->
      Hashtbl.replace seen (pair_key l.Topo.a.Topo.device l.Topo.b.Topo.device) ())
    (Topo.links topo);
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

let min_cut topo ~src ~dst ~limit =
  if src = dst then `Above_limit
  else begin
    let pairs = internal_pairs topo in
    (* residual capacity per directed pair; undirected unit edges start
       at 1 in both directions *)
    let cap = Hashtbl.create 97 in
    let adj = Hashtbl.create 97 in
    let add_arc u v =
      Hashtbl.replace cap (u, v) 1;
      Hashtbl.replace adj u (v :: (try Hashtbl.find adj u with Not_found -> []))
    in
    List.iter
      (fun (a, b) ->
        add_arc a b;
        add_arc b a)
      pairs;
    let residual u v = try Hashtbl.find cap (u, v) with Not_found -> 0 in
    (* BFS for an augmenting path in the residual graph; returns the
       predecessor map when [dst] is reached *)
    let bfs () =
      let pred = Hashtbl.create 97 in
      Hashtbl.replace pred src src;
      let queue = Queue.create () in
      Queue.add src queue;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if (not (Hashtbl.mem pred v)) && residual u v > 0 then begin
              Hashtbl.replace pred v u;
              if v = dst then found := true else Queue.add v queue
            end)
          (try Hashtbl.find adj u with Not_found -> [])
      done;
      if !found then Some pred else None
    in
    let flow = ref 0 in
    let exhausted = ref false in
    while (not !exhausted) && !flow <= limit do
      match bfs () with
      | None -> exhausted := true
      | Some pred ->
        incr flow;
        let rec unwind v =
          if v <> src then begin
            let u = Hashtbl.find pred v in
            Hashtbl.replace cap (u, v) (residual u v - 1);
            Hashtbl.replace cap (v, u) (residual v u + 1);
            unwind u
          end
        in
        unwind dst
    done;
    if !flow > limit then `Above_limit
    else begin
      (* min cut = original pairs crossing the residual-reachable set *)
      let reach = Hashtbl.create 97 in
      Hashtbl.replace reach src ();
      let queue = Queue.create () in
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if (not (Hashtbl.mem reach v)) && residual u v > 0 then begin
              Hashtbl.replace reach v ();
              Queue.add v queue
            end)
          (try Hashtbl.find adj u with Not_found -> [])
      done;
      `Cut
        (List.filter
           (fun (a, b) -> Hashtbl.mem reach a <> Hashtbl.mem reach b)
           pairs)
    end
  end

(* -- the decision procedure ------------------------------------------------- *)

(* Plain BFS connectivity over the unit graph. *)
let component topo start =
  let reach = Hashtbl.create 97 in
  if Topo.has_device topo start then begin
    Hashtbl.replace reach start ();
    let queue = Queue.create () in
    Queue.add start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (_, peer, _) ->
          if not (Hashtbl.mem reach peer) then begin
            Hashtbl.replace reach peer ();
            Queue.add peer queue
          end)
        (Topo.neighbors topo u)
    done
  end;
  reach

let analyze (net : A.network) ~k ~sources dest =
  match eligible net dest with
  | Error reason -> Undecided reason
  | Ok (owner, p) -> (
    let topo = net.A.net_topology in
    let state = Routing.Simulator.run net Routing.Simulator.empty_env in
    if not (Routing.Simulator.converged state) then
      Undecided "healthy simulation did not converge"
    else begin
      let dst_ip = Net.Prefix.first p in
      let comp = component topo owner in
      let rec go = function
        | [] -> Invariant
        | s :: rest ->
          if not (Topo.has_device topo s) then
            Undecided (Printf.sprintf "source %s is not in the topology" s)
          else begin
            let conn = Hashtbl.mem comp s in
            let healthy = Routing.Dataplane.reachable net state ~src:s ~dst:dst_ip in
            if healthy <> conn then
              Undecided
                (Printf.sprintf
                   "converged forwarding disagrees with connectivity at %s" s)
            else if (not conn) || s = owner then
              (* healthy-unreachable sources stay unreachable under any
                 failure set (failures only remove edges); the owner is
                 never disconnected from itself *)
              go rest
            else
              match min_cut topo ~src:s ~dst:owner ~limit:k with
              | `Above_limit -> go rest
              | `Cut links -> Broken { src = s; links }
          end
      in
      match go sources with
      | Broken cut ->
        (* tripwire: the cut must actually disconnect when replayed
           through the simulator, or the verdict never leaves here *)
        let env =
          { Routing.Simulator.external_ads = []; failed_links = cut.links }
        in
        let failed_state = Routing.Simulator.run net env in
        if
          Routing.Simulator.converged failed_state
          && not
               (Routing.Dataplane.reachable net failed_state ~src:cut.src
                  ~dst:dst_ip)
        then Broken cut
        else
          Undecided
            (Printf.sprintf "cut of size %d did not replay at %s"
               (List.length cut.links) cut.src)
      | other -> other
    end)

(* -- Report surface --------------------------------------------------------- *)

let report ?label (net : A.network) ~k ~sources dest =
  let label =
    match label with Some l -> l | None -> Printf.sprintf "fault-invariant k=%d" k
  in
  let t0 = Unix.gettimeofday () in
  let finish verdict =
    {
      Report.label;
      verdict;
      certificate = Report.Uncertified;
      wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
      stats = Report.empty_stats;
      worker = 0;
      strategy = None;
      support = None;
      replayed = false;
      method_ = Some Report.Graph;
    }
  in
  match analyze net ~k ~sources dest with
  | Invariant -> finish Report.Verified
  | Undecided reason -> finish (Report.Error ("graph-undecided: " ^ reason))
  | Broken cut ->
    let p =
      match dest with
      | Property.Subnet (_, p) -> p
      | Property.Device _ | Property.External_peer _ ->
        (* analyze only decides Subnet destinations *)
        assert false
    in
    let src_ip =
      match A.find_device net cut.src with
      | Some d ->
        let own =
          List.find_map
            (fun (i : A.interface) ->
              match i.A.if_prefix with
              | Some q when not (Net.Prefix.overlaps q p) -> Some (Net.Prefix.first q)
              | _ -> None)
            d.A.dev_interfaces
        in
        (match own with Some ip -> ip | None -> Net.Prefix.first p)
      | None -> Net.Prefix.first p
    in
    let cx =
      {
        Counterexample.dst_ip = Net.Prefix.first p;
        src_ip;
        dst_port = 0;
        announcements = [];
        failures = cut.links;
        forwarding = [];
        classes = [];
      }
    in
    finish (Report.Violated cx)

(* -- hybrid: race the two paths inside the portfolio ------------------------ *)

let hybrid ?timeout ?strategies ?share (net : A.network) opts ~k ~sources dest =
  let enc, q = Verify.fault_invariant_query ?timeout net opts ~k ~sources dest in
  let label = q.Query.label in
  let graph () = report ~label net ~k ~sources dest in
  let r =
    Engine.portfolio ?timeout ?strategies ?share ~extra:[ ("graph", graph) ] enc q
  in
  match r.Report.method_ with
  | Some Report.Graph -> r
  | _ ->
    (* an SMT racer answered: distinguish "graph lost the race" from
       "graph declined" for the method stamp (the scan is cheap; the
       simulator only runs when the scan passes, i.e. rarely here) *)
    let m =
      match analyze net ~k ~sources dest with
      | Undecided _ -> Report.Fallback
      | Invariant | Broken _ -> Report.Smt
    in
    { r with Report.method_ = Some m }
