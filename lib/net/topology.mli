(** Network topologies: named routers connected by point-to-point links
    between named interfaces. *)

type endpoint = { device : string; interface : string }

type link = { a : endpoint; b : endpoint }

type t

val empty : t
val add_device : t -> string -> t
(** Idempotent. *)

val add_link : t -> link -> t
(** Adds both devices if missing; idempotent (a link already present in
    either orientation is not duplicated).
    @raise Invalid_argument for self-links. *)

val devices : t -> string list
(** Sorted device names. *)

val links : t -> link list

val has_device : t -> string -> bool

val neighbors : t -> string -> (string * string * string) list
(** [neighbors t d] is [(local_interface, peer_device, peer_interface)]
    for every link incident to [d]. *)

val peer : t -> string -> string -> (string * string) option
(** [peer t d iface] is the [(device, interface)] on the other side of
    the link attached to [d.iface], if any. *)

val restrict : t -> keep:(string -> bool) -> t
(** The sub-topology induced by the kept devices: devices failing
    [keep] are removed along with every link touching them. *)

val degree : t -> string -> int
val num_devices : t -> int
val num_links : t -> int
