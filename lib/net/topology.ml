type endpoint = { device : string; interface : string }
type link = { a : endpoint; b : endpoint }

module Smap = Map.Make (String)

type t = { devs : unit Smap.t; edges : link list }

let empty = { devs = Smap.empty; edges = [] }
let add_device t name = { t with devs = Smap.add name () t.devs }

let link_equal l1 l2 =
  (l1.a = l2.a && l1.b = l2.b) || (l1.a = l2.b && l1.b = l2.a)

let add_link t link =
  if link.a.device = link.b.device then invalid_arg "Topology.add_link: self-link";
  let t = add_device (add_device t link.a.device) link.b.device in
  (* Idempotent, either orientation: explicit [link] lines and subnet
     inference may both produce the same link. *)
  if List.exists (link_equal link) t.edges then t else { t with edges = link :: t.edges }

let devices t = List.map fst (Smap.bindings t.devs)
let links t = List.rev t.edges
let has_device t name = Smap.mem name t.devs

let neighbors t name =
  List.filter_map
    (fun l ->
      if l.a.device = name then Some (l.a.interface, l.b.device, l.b.interface)
      else if l.b.device = name then Some (l.b.interface, l.a.device, l.a.interface)
      else None)
    (links t)

let peer t name iface =
  List.find_map
    (fun l ->
      if l.a.device = name && l.a.interface = iface then Some (l.b.device, l.b.interface)
      else if l.b.device = name && l.b.interface = iface then Some (l.a.device, l.a.interface)
      else None)
    t.edges

let restrict t ~keep =
  {
    devs = Smap.filter (fun d () -> keep d) t.devs;
    edges = List.filter (fun l -> keep l.a.device && keep l.b.device) t.edges;
  }

let degree t name = List.length (neighbors t name)
let num_devices t = Smap.cardinal t.devs
let num_links t = List.length t.edges
