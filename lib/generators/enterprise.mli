(** Synthetic "enterprise" networks matching the statistics of the 152
    real networks analysed in §8.1: 2–25 routers, OSPF internally, one
    or two BGP edge routers with external peers and iBGP between them,
    static routes, per-role ACLs, route redistribution, and management
    interfaces on every device.

    Four §8 violation classes can be injected:
    - [hijack]: an edge router's import policy fails to protect the
      management address space, so an external announcement of a more
      specific prefix diverts management traffic;
    - [acl_gap]: one router of the rack role misses an ACL entry its
      peers have (copy-paste inconsistency ⇒ local-equivalence
      violation);
    - [deep_drop]: a bogon filter is enforced in the network core
      instead of at the edge (blackhole violation);
    - [single_homed]: the last rack quietly loses its redundant uplink
      behind a fabric that claims 1-failure resilience, so one link
      failure partitions its subnet (fault-invariance violation; needs
      at least 5 routers so a rack exists). *)

type inject = {
  hijack : bool;
  acl_gap : bool;
  deep_drop : bool;
  single_homed : bool;
}

val no_bugs : inject

type t = {
  network : Config.Ast.network;
  mgmt_prefix : string -> Net.Prefix.t;  (** management subnet of a device *)
  rack_subnet : string -> Net.Prefix.t;  (** a rack's host subnet *)
  edge_routers : string list;  (** devices with external BGP peerings *)
  rack_role : string list;  (** devices sharing the "rack" role *)
  injected : inject;
}

val make : ?bulk:int -> seed:int -> routers:int -> inject:inject -> unit -> t
(** [bulk] pads prefix lists and ACLs with extra (semantically inert)
    entries to reach realistic configuration sizes. *)

val fleet : unit -> t list
(** The 152-network benchmark fleet with the §8.1 violation
    distribution plus the fault-invariance class: 67 hijacks, 29 ACL
    inconsistencies, 24 deep drops, 16 single-homed racks, 16 clean
    networks.  Deterministic. *)
