module A = Config.Ast
module P = Net.Prefix
module Ip = Net.Ipv4

type inject = {
  hijack : bool;
  acl_gap : bool;
  deep_drop : bool;
  single_homed : bool;
}

let no_bugs =
  { hijack = false; acl_gap = false; deep_drop = false; single_homed = false }

type t = {
  network : A.network;
  mgmt_prefix : string -> P.t;
  rack_subnet : string -> P.t;
  edge_routers : string list;
  rack_role : string list;
  injected : inject;
}

type dev_b = {
  mutable ifaces : A.interface list;
  mutable neighbors : A.bgp_neighbor list;
  mutable statics : A.static_route list;
  mutable plists : A.prefix_list list;
  mutable rmaps : A.route_map list;
  mutable acls : A.acl list;
  mutable bgp_redist : A.redistribute list;
  mutable ospf_redist : A.redistribute list;
  mutable networks : P.t list;
  mutable has_bgp : bool;
}

let new_dev () =
  {
    ifaces = [];
    neighbors = [];
    statics = [];
    plists = [];
    rmaps = [];
    acls = [];
    bgp_redist = [];
    ospf_redist = [];
    networks = [];
    has_bgp = false;
  }

(* Inert padding entries: denies for never-announced documentation space. *)
let pad_prefix_entries rng n =
  List.init n (fun _ ->
      let a = 16 + Random.State.int rng 60 in
      let b = Random.State.int rng 256 in
      {
        A.pl_action = A.Deny;
        pl_prefix = P.make (Ip.of_octets 203 a b 0) 24;
        pl_ge = None;
        pl_le = Some 32;
      })

let pad_acl_entries rng n =
  List.init n (fun _ ->
      let a = Random.State.int rng 256 and b = Random.State.int rng 256 in
      { A.acl_action = A.Deny; acl_dst = P.make (Ip.of_octets 198 51 a b) 32 })

let make ?bulk ~seed ~routers ~inject () =
  if routers < 2 then invalid_arg "Enterprise.make: need at least 2 routers";
  let rng = Random.State.make [| seed; routers |] in
  let bulk = match bulk with Some b -> b | None -> 8 + Random.State.int rng (routers * 30) in
  let edges = if routers >= 4 then 2 else 1 in
  let remaining = routers - edges in
  let cores = if remaining <= 1 then remaining else max 1 (remaining / 4) in
  let racks = remaining - cores in
  let edge i = Printf.sprintf "edge%d" (i + 1) in
  let core i = Printf.sprintf "core%d" (i + 1) in
  let rack i = Printf.sprintf "rack%d" (i + 1) in
  let names =
    List.init edges edge @ List.init cores core @ List.init racks rack
  in
  let devices = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace devices n (new_dev ())) names;
  let dev n = Hashtbl.find devices n in
  let iface_count = Hashtbl.create 32 in
  let next_iface name =
    let n = match Hashtbl.find_opt iface_count name with Some n -> n | None -> 0 in
    Hashtbl.replace iface_count name (n + 1);
    Printf.sprintf "e%d" n
  in
  let add_iface ?acl_in ?acl_out name prefix ip cost =
    let ifname = next_iface name in
    let b = dev name in
    b.ifaces <-
      b.ifaces
      @ [
          {
            A.if_name = ifname;
            if_prefix = Some prefix;
            if_ip = Some ip;
            if_acl_in = acl_in;
            if_acl_out = acl_out;
            if_cost = cost;
          };
        ];
    ifname
  in
  let link_counter = ref 0 in
  let links = ref [] in
  let deep_drop_done = ref false in
  let connect ?(core_to_rack = false) a b =
    let base = Ip.of_string "172.20.0.0" + (4 * !link_counter) in
    incr link_counter;
    let pfx = P.make base 30 in
    let cost = 1 + Random.State.int rng 3 in
    (* the deep-drop bug: a bogon ACL enforced on a core's rack-facing
       interface rather than at the edge *)
    let acl_out =
      if core_to_rack && inject.deep_drop && not !deep_drop_done then begin
        deep_drop_done := true;
        Some "CORE_BOGON"
      end
      else None
    in
    let if_a = add_iface ?acl_out a pfx (base + 1) cost in
    let if_b = add_iface b pfx (base + 2) cost in
    links := (a, if_a, b, if_b) :: !links;
    (a, base + 1, b, base + 2)
  in
  (* topology *)
  let edge_names = List.init edges edge in
  let core_names = List.init cores core in
  let rack_names = List.init racks rack in
  let edge_link =
    if edges = 2 then Some (connect (edge 0) (edge 1)) else None
  in
  (* remember the core-side address of each edge's first core link: the
     next hop for the edge's static host-space aggregate *)
  let edge_core_hop = Hashtbl.create 4 in
  List.iter
    (fun c ->
      List.iter
        (fun e ->
          let _, _, _, core_ip = connect e c in
          if not (Hashtbl.mem edge_core_hop e) then Hashtbl.replace edge_core_hop e core_ip)
        edge_names)
    core_names;
  (* racks are dual-homed so that no single link failure partitions the
     network (the fleet must be fault-invariant, as in §8.1) — except
     under the single-homed injection, which quietly drops the last
     rack's redundant uplink: the fabric still claims 1-failure
     resilience, but failing that rack's one remaining link partitions
     its subnet (the §8 fault-invariance violation class) *)
  List.iteri
    (fun i r ->
      let c = List.nth core_names (i mod cores) in
      ignore (connect ~core_to_rack:true c r);
      if not (inject.single_homed && i = racks - 1) then begin
        if cores >= 2 then ignore (connect (List.nth core_names ((i + 1) mod cores)) r)
        else if edges = 2 then ignore (connect (edge 1) r)
      end)
    rack_names;
  (* management interfaces *)
  let mgmt = Hashtbl.create 32 in
  List.iteri
    (fun i n ->
      let p = P.make (Ip.of_octets 10 77 i 0) 24 in
      Hashtbl.replace mgmt n p;
      ignore (add_iface n p (Ip.of_octets 10 77 i 1) 1))
    names;
  (* rack host subnets + role ACLs *)
  let bogons = pad_acl_entries rng (4 + (bulk / 8)) in
  let rack_subnets = Hashtbl.create 16 in
  List.iteri
    (fun i r ->
      let p = P.make (Ip.of_octets 10 78 i 0) 24 in
      Hashtbl.replace rack_subnets r p;
      ignore (add_iface ~acl_out:"HOSTS" r p (Ip.of_octets 10 78 i 1) 1);
      let entries =
        [ { A.acl_action = A.Deny; acl_dst = P.of_string "10.66.0.0/16" } ]
        @ bogons
        @ [ { A.acl_action = A.Permit; acl_dst = P.of_string "0.0.0.0/0" } ]
      in
      (* the copy-paste inconsistency: the second rack misses the first
         deny entry *)
      let entries =
        if inject.acl_gap && i = 1 then List.tl entries else entries
      in
      (dev r).acls <- (dev r).acls @ [ { A.acl_name = "HOSTS"; acl_entries = entries } ])
    rack_names;
  (* the deep-drop ACL body on cores *)
  List.iter
    (fun c ->
      (dev c).acls <-
        (dev c).acls
        @ [
            {
              A.acl_name = "CORE_BOGON";
              acl_entries =
                [ { A.acl_action = A.Deny; acl_dst = P.of_string "10.78.0.128/25" } ]
                @ [ { A.acl_action = A.Permit; acl_dst = P.of_string "0.0.0.0/0" } ];
            };
          ])
    core_names;
  (* edge BGP: external peers with (possibly missing) protection *)
  let ext_counter = ref 0 in
  List.iteri
    (fun ei e ->
      let b = dev e in
      b.has_bgp <- true;
      let n_ext = 1 + Random.State.int rng 2 in
      for _ = 1 to n_ext do
        let base = Ip.of_octets 192 168 (100 + !ext_counter) 0 in
        incr ext_counter;
        let pfx = P.make base 30 in
        let my_ip = base + 1 and peer_ip = base + 2 in
        ignore (add_iface e pfx my_ip 1);
        let protect = not (inject.hijack && ei = edges - 1) in
        let rm_in = if protect then Some "EDGE_IN" else Some "EDGE_IN_OPEN" in
        b.neighbors <-
          b.neighbors
          @ [
              {
                A.nbr_ip = peer_ip;
                nbr_remote_as = 65100 + !ext_counter;
                nbr_rm_in = rm_in;
                nbr_rm_out = Some "EDGE_OUT";
                nbr_rr_client = false;
              };
            ]
      done;
      (* policy objects *)
      let internal_deny =
        [
          {
            A.pl_action = A.Deny;
            pl_prefix = P.of_string "10.0.0.0/8";
            pl_ge = None;
            pl_le = Some 32;
          };
          {
            A.pl_action = A.Deny;
            pl_prefix = P.of_string "172.16.0.0/12";
            pl_ge = None;
            pl_le = Some 32;
          };
        ]
        @ pad_prefix_entries rng (bulk / 4)
        @ [
            {
              A.pl_action = A.Permit;
              pl_prefix = P.of_string "0.0.0.0/0";
              pl_ge = Some 0;
              pl_le = Some 32;
            };
          ]
      in
      (* the buggy filter: the operator protected the user/host space but
         forgot the management space (the Â§8.1 hijack story) *)
      let permissive =
        [
          {
            A.pl_action = A.Deny;
            pl_prefix = P.of_string "10.78.0.0/16";
            pl_ge = None;
            pl_le = Some 32;
          };
        ]
        @ pad_prefix_entries rng (bulk / 4)
        @ [
            {
              A.pl_action = A.Permit;
              pl_prefix = P.of_string "0.0.0.0/0";
              pl_ge = Some 0;
              pl_le = Some 32;
            };
          ]
      in
      let export_only_hosts =
        [
          {
            A.pl_action = A.Permit;
            pl_prefix = P.of_string "10.78.0.0/16";
            pl_ge = Some 16;
            pl_le = Some 24;
          };
        ]
      in
      b.plists <-
        [
          { A.pl_name = "INTERNAL_SPACE"; pl_entries = internal_deny };
          { A.pl_name = "ANY"; pl_entries = permissive };
          { A.pl_name = "HOST_SPACE"; pl_entries = export_only_hosts };
        ];
      b.rmaps <-
        [
          {
            A.rm_name = "EDGE_IN";
            rm_clauses =
              [
                {
                  A.rm_seq = 10;
                  rm_action = A.Permit;
                  rm_matches = [ A.Match_prefix_list "INTERNAL_SPACE" ];
                  rm_sets = [ A.Set_local_pref 120 ];
                };
              ];
          };
          {
            A.rm_name = "EDGE_IN_OPEN";
            rm_clauses =
              [
                {
                  A.rm_seq = 10;
                  rm_action = A.Permit;
                  rm_matches = [ A.Match_prefix_list "ANY" ];
                  rm_sets = [ A.Set_local_pref 120 ];
                };
              ];
          };
          {
            A.rm_name = "EDGE_OUT";
            rm_clauses =
              [
                {
                  A.rm_seq = 10;
                  rm_action = A.Permit;
                  rm_matches = [ A.Match_prefix_list "HOST_SPACE" ];
                  rm_sets = [ A.Set_community (Net.Community.make 65000 100) ];
                };
              ];
          };
        ];
      (* External routes enter the IGP.  The reverse direction is NOT a
         redistribution (mutual BGP<->OSPF redistribution admits phantom
         route-feedback stable states); instead the edge originates a
         static-backed aggregate of the host space. *)
      (* high redistribution metric: external routes never beat genuine
         internal OSPF routes of the same length, so reachability of
         internal space is failure-invariant (hijacks still win via
         longer, more-specific prefixes) *)
      b.ospf_redist <- [ { A.rd_from = A.Pbgp; rd_metric = Some 200 } ];
      b.networks <- [ P.of_string "10.78.0.0/16" ];
      (match Hashtbl.find_opt edge_core_hop e with
       | Some hop ->
         b.statics <-
           b.statics
           @ [ { A.st_prefix = P.of_string "10.78.0.0/16"; st_next_hop = Some hop; st_interface = None } ]
       | None -> ()))
    edge_names;
  (* iBGP between the two edges over their direct link *)
  (match (edge_link, edges) with
   | Some (a, ip_a, b, ip_b), 2 ->
     (dev a).neighbors <-
       (dev a).neighbors
       @ [
           {
             A.nbr_ip = ip_b;
             nbr_remote_as = 65000;
             nbr_rm_in = None;
             nbr_rm_out = None;
             nbr_rr_client = false;
           };
         ];
     (dev b).neighbors <-
       (dev b).neighbors
       @ [
           {
             A.nbr_ip = ip_a;
             nbr_remote_as = 65000;
             nbr_rm_in = None;
             nbr_rm_out = None;
             nbr_rr_client = false;
           };
         ]
   | _ -> ());
  (* an occasional static null route on an edge (decommissioned space) *)
  if Random.State.bool rng then
    (dev (edge 0)).statics <-
      [ { A.st_prefix = P.of_string "10.99.0.0/16"; st_next_hop = None; st_interface = Some "Null0" } ];
  (* materialize *)
  let finish name =
    let b = dev name in
    {
      (A.empty_device name) with
      A.dev_interfaces = b.ifaces;
      dev_prefix_lists = b.plists;
      dev_route_maps = b.rmaps;
      dev_acls = b.acls;
      dev_statics = b.statics;
      dev_ospf =
        Some { A.ospf_networks = [ P.of_string "0.0.0.0/0" ]; ospf_redistribute = b.ospf_redist };
      dev_bgp =
        (if b.has_bgp then
           Some
             {
               (A.empty_bgp 65000) with
               A.bgp_neighbors = b.neighbors;
               bgp_redistribute = b.bgp_redist;
               bgp_networks = b.networks;
             }
         else None);
    }
  in
  let devs = List.map finish names in
  let topo =
    List.fold_left
      (fun t (a, ia, b, ib) ->
        Net.Topology.add_link t
          { Net.Topology.a = { device = a; interface = ia }; b = { device = b; interface = ib } })
      Net.Topology.empty !links
  in
  {
    network = { A.net_devices = devs; net_topology = topo };
    mgmt_prefix = (fun n -> Hashtbl.find mgmt n);
    rack_subnet = (fun n -> Hashtbl.find rack_subnets n);
    edge_routers = edge_names;
    rack_role = rack_names;
    injected = inject;
  }

let fleet () =
  List.init 152 (fun i ->
      let inject =
        if i < 67 then { no_bugs with hijack = true }
        else if i < 96 then { no_bugs with acl_gap = true }
        else if i < 120 then { no_bugs with deep_drop = true }
        else if i < 136 then { no_bugs with single_homed = true }
        else no_bugs
      in
      (* sizes spread deterministically over 4..25; a minimum of 4
         routers keeps every network link-redundant (the paper's fleet
         is fault-invariant, except the injected single-homed class) *)
      let routers = 4 + (i * 17 mod 22) in
      (* ACL-gap networks need two racks, deep drops one *)
      let routers = if inject.acl_gap then max routers 8 else routers in
      let routers = if inject.deep_drop then max routers 5 else routers in
      let routers = if inject.single_homed then max routers 5 else routers in
      make ~seed:(1000 + i) ~routers ~inject ())
