(** Symmetry analysis: which devices are interchangeable?

    Regular fabrics (folded-Clos data centers above all) contain large
    groups of devices that differ only in their embedding: every
    non-destination ToR runs the same policy against the same kind of
    neighbors, with different concrete names, addresses and AS numbers.
    This pass makes that precise in two steps:

    - {b canonical fingerprints} ({!fingerprint}): a digest of one
      device's configuration that is invariant under a consistent
      renaming of device names, interface address blocks and AS
      numbers.  Addresses are abstracted positionally (first-occurrence
      numbering of address blocks, offsets within a block kept
      literal), so two ToRs whose configs differ only by which /30s and
      /24s they were assigned hash identically, while any policy
      difference (an extra route-map clause, a different mask length, a
      changed ACL) changes the digest.

    - {b partition refinement} ({!classes}): color refinement over the
      topology graph seeded by those fingerprints.  Two devices end in
      the same class only if they have equal fingerprints and, for
      every class [C'], the same number of neighbors in [C'].  The
      fixpoint is the coarsest such partition; [pins] force named
      devices (property endpoints) into singleton classes, which also
      separates everyone else by their distance/position relative to
      the pinned device.

    On top of the partition sit two consumers: {!reduce} builds the
    quotient network that {!Encode} substitutes for the full one behind
    [Options.symmetry] (one representative per class, with conservative
    bail-outs — see DESIGN.md), and {!check} reports near-symmetries —
    devices whose topological role matches a large group of peers but
    whose policy differs — as stable MS-W401 lint warnings. *)

module A = Config.Ast
module P = Net.Prefix
module Ip = Net.Ipv4
module D = Diagnostic

type partition = { groups : string list list }
(** Disjoint classes covering every device; members sorted, groups
    sorted by their first member.  Singleton classes are included. *)

(* -- canonical fingerprints --------------------------------------------------- *)

(* Abstraction state for one device: address blocks and AS numbers are
   replaced by first-occurrence indices, so the serialization of two
   consistently-renamed devices is byte-identical.  Offsets within a
   block (host part of an interface address, position of a neighbor IP
   inside the shared /30) and mask lengths stay literal: they are
   policy, not naming. *)
type abstr = {
  mutable next : int;
  addrs : (int, int) Hashtbl.t;  (* address-block base or raw IP -> index *)
  mutable next_as : int;
  asns : (int, int) Hashtbl.t;
}

let new_abstr () = { next = 0; addrs = Hashtbl.create 16; next_as = 0; asns = Hashtbl.create 4 }

let addr_id ab v =
  match Hashtbl.find_opt ab.addrs v with
  | Some i -> i
  | None ->
    let i = ab.next in
    ab.next <- i + 1;
    Hashtbl.replace ab.addrs v i;
    i

let as_id ab v =
  match Hashtbl.find_opt ab.asns v with
  | Some i -> i
  | None ->
    let i = ab.next_as in
    ab.next_as <- i + 1;
    Hashtbl.replace ab.asns v i;
    i

let prefix_token ab (p : P.t) = Printf.sprintf "p%d/%d" (addr_id ab (P.network p)) (P.length p)

(* An IP inside one of the device's connected subnets is named relative
   to that block ("third address of block 2"); anything else gets its
   own first-occurrence index. *)
let ip_token ab (ifaces : A.interface list) ip =
  let containing =
    List.find_map
      (fun (i : A.interface) ->
        match i.A.if_prefix with Some p when P.contains p ip -> Some p | Some _ | None -> None)
      ifaces
  in
  match containing with
  | Some p -> Printf.sprintf "i%d+%d" (addr_id ab (P.network p)) (ip - P.network p)
  | None -> Printf.sprintf "a%d" (addr_id ab ip)

let action_token = function A.Permit -> "permit" | A.Deny -> "deny"

let int_opt_token = function None -> "-" | Some n -> string_of_int n

(* One serialized section per configuration area, sharing the
   abstraction tables in a fixed order.  The per-section strings feed
   both the digest and the MS-W401 "which sections differ" message. *)
let sections (dev : A.device) : (string * string) list =
  let ab = new_abstr () in
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let take () =
    let s = Buffer.contents b in
    Buffer.clear b;
    s
  in
  let ifaces = dev.A.dev_interfaces in
  List.iter
    (fun (i : A.interface) ->
      add "if %s %s %s in=%s out=%s cost=%d;" i.A.if_name
        (match i.A.if_prefix with Some p -> prefix_token ab p | None -> "-")
        (match i.A.if_ip with Some ip -> ip_token ab ifaces ip | None -> "-")
        (Option.value ~default:"-" i.A.if_acl_in)
        (Option.value ~default:"-" i.A.if_acl_out)
        i.A.if_cost)
    ifaces;
  let s_ifaces = take () in
  List.iter
    (fun (pl : A.prefix_list) ->
      add "plist %s:" pl.A.pl_name;
      List.iter
        (fun (e : A.prefix_list_entry) ->
          add " %s %s ge=%s le=%s;" (action_token e.A.pl_action) (prefix_token ab e.A.pl_prefix)
            (int_opt_token e.A.pl_ge) (int_opt_token e.A.pl_le))
        pl.A.pl_entries)
    dev.A.dev_prefix_lists;
  let s_plists = take () in
  List.iter
    (fun (rm : A.route_map) ->
      add "rmap %s:" rm.A.rm_name;
      List.iter
        (fun (c : A.rm_clause) ->
          add " %d %s" c.A.rm_seq (action_token c.A.rm_action);
          List.iter
            (function
              | A.Match_prefix_list n -> add " match-pl=%s" n
              | A.Match_community cm -> add " match-comm=%s" (Net.Community.to_string cm))
            c.A.rm_matches;
          List.iter
            (function
              | A.Set_local_pref n -> add " set-lp=%d" n
              | A.Set_metric n -> add " set-metric=%d" n
              | A.Set_med n -> add " set-med=%d" n
              | A.Set_community cm -> add " set-comm=%s" (Net.Community.to_string cm)
              | A.Delete_community cm -> add " del-comm=%s" (Net.Community.to_string cm))
            c.A.rm_sets;
          add ";")
        rm.A.rm_clauses)
    dev.A.dev_route_maps;
  let s_rmaps = take () in
  List.iter
    (fun (a : A.acl) ->
      add "acl %s:" a.A.acl_name;
      List.iter
        (fun (e : A.acl_entry) ->
          add " %s %s;" (action_token e.A.acl_action) (prefix_token ab e.A.acl_dst))
        a.A.acl_entries)
    dev.A.dev_acls;
  let s_acls = take () in
  let redist_token (r : A.redistribute) =
    Printf.sprintf " redist=%s metric=%s" (A.protocol_to_string r.A.rd_from)
      (int_opt_token r.A.rd_metric)
  in
  (match dev.A.dev_bgp with
   | None -> add "none"
   | Some bgp ->
     add "as%d rid=%s multipath=%b" (as_id ab bgp.A.bgp_asn)
       (match bgp.A.bgp_router_id with Some ip -> ip_token ab ifaces ip | None -> "-")
       bgp.A.bgp_multipath;
     List.iter (fun p -> add " net=%s" (prefix_token ab p)) bgp.A.bgp_networks;
     List.iter (fun (p, so) -> add " aggregate=%s/%b" (prefix_token ab p) so) bgp.A.bgp_aggregates;
     List.iter (fun r -> add "%s" (redist_token r)) bgp.A.bgp_redistribute;
     List.iter
       (fun (n : A.bgp_neighbor) ->
         add " nbr %s as%d in=%s out=%s rr=%b;" (ip_token ab ifaces n.A.nbr_ip)
           (as_id ab n.A.nbr_remote_as)
           (Option.value ~default:"-" n.A.nbr_rm_in)
           (Option.value ~default:"-" n.A.nbr_rm_out)
           n.A.nbr_rr_client)
       bgp.A.bgp_neighbors);
  let s_bgp = take () in
  (match dev.A.dev_ospf with
   | None -> add "none"
   | Some o ->
     List.iter (fun p -> add " net=%s" (prefix_token ab p)) o.A.ospf_networks;
     List.iter (fun r -> add "%s" (redist_token r)) o.A.ospf_redistribute);
  let s_ospf = take () in
  List.iter
    (fun (s : A.static_route) ->
      add "static %s via=%s if=%s;" (prefix_token ab s.A.st_prefix)
        (match s.A.st_next_hop with Some ip -> ip_token ab ifaces ip | None -> "-")
        (Option.value ~default:"-" s.A.st_interface))
    dev.A.dev_statics;
  let s_statics = take () in
  [
    ("interfaces", s_ifaces);
    ("prefix-lists", s_plists);
    ("route-maps", s_rmaps);
    ("acls", s_acls);
    ("bgp", s_bgp);
    ("ospf", s_ospf);
    ("static", s_statics);
  ]

let fingerprint (dev : A.device) =
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map (fun (n, s) -> n ^ ":" ^ s) (sections dev))))

(* Concrete digest: a hash of the device's printed configuration, with
   addresses and AS numbers literal.  Unlike [fingerprint] this is NOT
   renaming-canonical — two consistently-renamed devices get different
   digests — which is exactly what cache keys and diff detection need:
   a renamed neighbor IP changes behavior and must change the key. *)
let digest (dev : A.device) = Digest.to_hex (Digest.string (Config.Printer.device_to_string dev))

(* -- partition refinement ----------------------------------------------------- *)

(* Color refinement to a fixpoint: each round recolors every device by
   (own color, sorted multiset of neighbor colors); colors only ever
   split, so the class count is monotone and the loop runs at most
   [n] rounds. *)
let refine_colors (names : string list) (topo : Net.Topology.t) (seed : (string, int) Hashtbl.t) =
  let color = Hashtbl.copy seed in
  let get d = match Hashtbl.find_opt color d with Some c -> c | None -> -1 in
  let distinct () =
    List.sort_uniq compare (List.map get names) |> List.length
  in
  let rec go count =
    let sig_tbl : (int * int list, int) Hashtbl.t = Hashtbl.create 64 in
    let next = ref 0 in
    let updates =
      List.map
        (fun d ->
          let nbrs =
            List.sort compare
              (List.map (fun (_, p, _) -> get p) (Net.Topology.neighbors topo d))
          in
          let s = (get d, nbrs) in
          let c =
            match Hashtbl.find_opt sig_tbl s with
            | Some c -> c
            | None ->
              let c = !next in
              incr next;
              Hashtbl.replace sig_tbl s c;
              c
          in
          (d, c))
        names
    in
    List.iter (fun (d, c) -> Hashtbl.replace color d c) updates;
    let count' = distinct () in
    if count' > count then go count' else color
  in
  go (distinct ())

let groups_of_colors names color =
  let tbl : (int, string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let c = match Hashtbl.find_opt color d with Some c -> c | None -> -1 in
      Hashtbl.replace tbl c (d :: (Option.value ~default:[] (Hashtbl.find_opt tbl c))))
    names;
  Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let seeded_classes ~seed_of ?(pins = []) (net : A.network) (topo : Net.Topology.t) : partition =
  let names = List.map (fun (d : A.device) -> d.A.dev_name) net.A.net_devices in
  let seed = Hashtbl.create 64 in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun (d : A.device) ->
      let key = seed_of d in
      let c =
        match Hashtbl.find_opt ids key with
        | Some c -> c
        | None ->
          let c = !next in
          incr next;
          Hashtbl.replace ids key c;
          c
      in
      Hashtbl.replace seed d.A.dev_name c)
    net.A.net_devices;
  (* a pinned device gets a color nobody shares, making its class a
     singleton and letting refinement propagate position-relative-to-it *)
  List.iter
    (fun p ->
      if Hashtbl.mem seed p then begin
        let c = !next in
        incr next;
        Hashtbl.replace seed p c
      end)
    (List.sort_uniq compare pins);
  { groups = groups_of_colors names (refine_colors names topo seed) }

let classes ?pins (net : A.network) (topo : Net.Topology.t) : partition =
  seeded_classes ~seed_of:fingerprint ?pins net topo

(* Topology-only classes: same refinement with policy-blind seeds.
   Used by {!check} to find devices whose *role* matches a group of
   peers while their policy does not. *)
let topological_classes (net : A.network) (topo : Net.Topology.t) : partition =
  seeded_classes ~seed_of:(fun _ -> "") net topo

(* -- quotient construction ---------------------------------------------------- *)

type reduction = {
  red_network : A.network;
  red_rep : (string * string) list;  (** collapsed member -> representative *)
  red_classes : (string * string list) list;
      (** representative -> full sorted class, for classes of size >= 2 *)
}

let has_ibgp (net : A.network) =
  List.exists
    (fun (d : A.device) ->
      match d.A.dev_bgp with
      | None -> false
      | Some b ->
        List.exists (fun (n : A.bgp_neighbor) -> n.A.nbr_remote_as = b.A.bgp_asn) b.A.bgp_neighbors)
    net.A.net_devices

let has_internal_static_next_hop (net : A.network) =
  List.exists
    (fun (d : A.device) ->
      List.exists
        (fun (s : A.static_route) ->
          match s.A.st_next_hop with
          | Some ip -> A.device_of_ip net ip <> None
          | None -> false)
        d.A.dev_statics)
    net.A.net_devices

(* Remove configuration referring to deleted devices: interfaces whose
   link peer is gone, and BGP sessions whose neighbor address belongs
   to a gone device.  Without this rewriting a dangling neighbor IP
   would be re-interpreted by the encoder as a symbolic *external*
   peer — a different network, not a smaller one. *)
let filter_device (net : A.network) keep (dev : A.device) =
  let topo = net.A.net_topology in
  let kept_iface (i : A.interface) =
    match Net.Topology.peer topo dev.A.dev_name i.A.if_name with
    | Some (peer, _) -> keep peer
    | None -> true (* host-facing or external-facing: no internal link *)
  in
  let bgp =
    Option.map
      (fun (b : A.bgp_config) ->
        {
          b with
          A.bgp_neighbors =
            List.filter
              (fun (n : A.bgp_neighbor) ->
                match A.device_of_ip net n.A.nbr_ip with
                | Some d -> keep d.A.dev_name
                | None -> true)
              b.A.bgp_neighbors;
        })
      dev.A.dev_bgp
  in
  { dev with A.dev_interfaces = List.filter kept_iface dev.A.dev_interfaces; dev_bgp = bgp }

(* Pick one representative per class such that representatives of
   quotient-adjacent classes are themselves adjacent in the concrete
   topology (so the induced subnetwork has an edge wherever the
   quotient graph does).  Greedy repair: while some adjacent class
   pair has non-adjacent representatives, re-pick the representative
   of one side to maximize coverage.  Fat-tree partitions converge on
   the first pass; if the loop cannot reach a consistent choice the
   caller bails out to the full encoding. *)
let choose_representatives (topo : Net.Topology.t) (groups : string list list) =
  let class_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri (fun i members -> List.iter (fun m -> Hashtbl.replace class_of m i) members) groups;
  let garr = Array.of_list groups in
  let n = Array.length garr in
  let neighbors_of d =
    List.filter_map
      (fun (_, p, _) -> Hashtbl.find_opt class_of p)
      (Net.Topology.neighbors topo d)
  in
  (* quotient adjacency *)
  let adj = Array.make_matrix n n false in
  Array.iteri
    (fun i members ->
      List.iter (fun m -> List.iter (fun j -> adj.(i).(j) <- true) (neighbors_of m)) members)
    garr;
  let rep = Array.map List.hd garr in
  let linked a b =
    List.exists (fun (_, p, _) -> p = b) (Net.Topology.neighbors topo a)
  in
  let ok i =
    let r = rep.(i) in
    let good = ref true in
    for j = 0 to n - 1 do
      if i <> j && adj.(i).(j) && not (linked r rep.(j)) then good := false
    done;
    !good
  in
  let coverage i m =
    let c = ref 0 in
    for j = 0 to n - 1 do
      if i <> j && adj.(i).(j) && linked m rep.(j) then incr c
    done;
    !c
  in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < n + 2 do
    improved := false;
    incr passes;
    for i = 0 to n - 1 do
      if not (ok i) then begin
        let best =
          List.fold_left
            (fun (bm, bc) m ->
              let c = coverage i m in
              if c > bc then (m, c) else (bm, bc))
            (rep.(i), coverage i rep.(i))
            garr.(i)
        in
        if fst best <> rep.(i) then begin
          rep.(i) <- fst best;
          improved := true
        end
      end
    done
  done;
  let all_ok = ref true in
  for i = 0 to n - 1 do
    if not (ok i) then all_ok := false
  done;
  if !all_ok then Some (Array.to_list (Array.mapi (fun i r -> (garr.(i), r)) rep)) else None

let reduce ?(pins = []) (net : A.network) : reduction option =
  let topo = net.A.net_topology in
  let { groups } = classes ~pins net topo in
  let nontrivial = List.exists (fun g -> List.length g >= 2) groups in
  if (not nontrivial) || has_ibgp net || has_internal_static_next_hop net then None
  else begin
    (* an edge inside a class (e.g. a ring of identical routers) cannot
       be represented by deleting the neighbor: bail out *)
    let class_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
    List.iteri (fun i ms -> List.iter (fun m -> Hashtbl.replace class_of m i) ms) groups;
    let intra_class_edge =
      List.exists
        (fun (l : Net.Topology.link) ->
          match
            (Hashtbl.find_opt class_of l.Net.Topology.a.Net.Topology.device,
             Hashtbl.find_opt class_of l.Net.Topology.b.Net.Topology.device)
          with
          | Some i, Some j -> i = j
          | _ -> false)
        (Net.Topology.links topo)
    in
    (* refinement invariant, checked defensively: every member of a
       class has at least one neighbor in each quotient-adjacent class *)
    let neighbor_classes d =
      List.sort_uniq compare
        (List.filter_map
           (fun (_, p, _) -> Hashtbl.find_opt class_of p)
           (Net.Topology.neighbors topo d))
    in
    let uniform_adjacency =
      List.for_all
        (fun members ->
          match members with
          | [] | [ _ ] -> true
          | m0 :: rest ->
            let sig0 = neighbor_classes m0 in
            List.for_all (fun m -> neighbor_classes m = sig0) rest)
        groups
    in
    if intra_class_edge || not uniform_adjacency then None
    else
      match choose_representatives topo groups with
      | None -> None
      | Some chosen ->
        let rep_of : (string, string) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun (members, r) -> List.iter (fun m -> Hashtbl.replace rep_of m r) members)
          chosen;
        let keep d = match Hashtbl.find_opt rep_of d with Some r -> r = d | None -> true in
        let q_devices =
          List.filter_map
            (fun (d : A.device) ->
              if keep d.A.dev_name then Some (filter_device net keep d) else None)
            net.A.net_devices
        in
        let q_topo = Net.Topology.restrict topo ~keep in
        let red_rep =
          List.concat_map
            (fun (members, r) -> List.filter_map (fun m -> if m <> r then Some (m, r) else None) members)
            chosen
          |> List.sort compare
        in
        let red_classes =
          List.filter_map
            (fun (members, r) -> if List.length members >= 2 then Some (r, members) else None)
            chosen
          |> List.sort compare
        in
        Some
          {
            red_network = { A.net_devices = q_devices; net_topology = q_topo };
            red_rep;
            red_classes;
          }
  end

(* -- asymmetry diagnostics (MS-W401) ------------------------------------------ *)

(* Devices refinement *nearly* merges: inside one topological class
   (role twins), group members by policy fingerprint; when a strict
   plurality of at least two devices agrees on one fingerprint and the
   class has at least three members, each dissenting device is exactly
   the "one ToR differs from its 47 siblings" shape operators care
   about.  The thresholds keep the code quiet on small hand-written
   networks where two topologically-paired devices legitimately run
   different policies. *)
let check (net : A.network) : D.t list =
  let topo = net.A.net_topology in
  let dev_tbl : (string, A.device) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (d : A.device) -> Hashtbl.replace dev_tbl d.A.dev_name d) net.A.net_devices;
  let { groups } = topological_classes net topo in
  List.concat_map
    (fun members ->
      if List.length members < 3 then []
      else begin
        let with_fp =
          List.map
            (fun m ->
              let dev = Hashtbl.find dev_tbl m in
              (m, dev, sections dev))
            members
        in
        let fp_of secs = String.concat "\n" (List.map (fun (n, s) -> n ^ ":" ^ s) secs) in
        let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (_, _, secs) ->
            let fp = fp_of secs in
            Hashtbl.replace counts fp (1 + Option.value ~default:0 (Hashtbl.find_opt counts fp)))
          with_fp;
        let ranked =
          Hashtbl.fold (fun fp n acc -> (fp, n) :: acc) counts []
          |> List.sort (fun (_, a) (_, b) -> compare (b : int) a)
        in
        match ranked with
        | (maj_fp, maj_n) :: (_, n2) :: _ when maj_n >= 2 && n2 < maj_n ->
          (* a unique plurality policy with at least one dissenter *)
          let exemplar_name, _, maj_secs =
            List.find (fun (_, _, secs) -> fp_of secs = maj_fp) with_fp
          in
          List.filter_map
            (fun (m, _, secs) ->
              if fp_of secs = maj_fp then None
              else begin
                let differing =
                  List.filter_map
                    (fun ((name, s), (_, s')) -> if s <> s' then Some name else None)
                    (List.combine secs maj_secs)
                in
                Some
                  (D.make ~code:"MS-W401" ~severity:D.Warning ~device:m
                     ~obj:(Printf.sprintf "sections: %s" (String.concat ", " differing))
                     "device plays the same topological role as %d peer(s) (e.g. %s) but its policy differs: near-symmetry broken"
                     (maj_n) exemplar_name)
              end)
            with_fp
        | _ -> []
      end)
    groups
