(** The linter: every check family ({!Refs}, {!Deadcode},
    {!Consistency}, {!Symmetry}) run over a network, diagnostics
    collected and sorted. *)

exception Lint_errors of Diagnostic.t list
(** Raised by {!preflight} when Error-level findings exist.  A printer
    is registered, so an uncaught escape still renders the findings. *)

val run : Config.Ast.network -> Diagnostic.t list
(** All diagnostics from every check family, sorted by
    {!Diagnostic.compare}. *)

val errors : Diagnostic.t list -> Diagnostic.t list
(** The Error-severity subset. *)

val exit_code : Diagnostic.t list -> int
(** Exit code for a CLI lint run: [0] clean or info-only, [1] warnings,
    [2] errors. *)

val preflight : Config.Ast.network -> unit
(** The encoder's pre-flight hook: no-op on a clean network.
    @raise Lint_errors when Error-level findings exist, so a broken
    configuration is reported instead of encoded. *)
