(** The linter: run every check family over a network and collect the
    sorted diagnostics.  [preflight] is the encoder's pre-flight hook:
    it raises {!Lint_errors} when Error-level findings exist, so a
    broken configuration is reported instead of encoded. *)

module D = Diagnostic

exception Lint_errors of D.t list

let run (net : Config.Ast.network) =
  Refs.check net @ Deadcode.check net @ Consistency.check net @ Symmetry.check net
  |> List.sort D.compare

let errors diags = List.filter D.is_error diags

(** Exit code for a CLI run: 0 clean/info, 1 warnings, 2 errors. *)
let exit_code diags =
  match D.max_severity diags with
  | Some D.Error -> 2
  | Some D.Warning -> 1
  | Some D.Info | None -> 0

let preflight net =
  match errors (run net) with
  | [] -> ()
  | errs -> raise (Lint_errors errs)

let () =
  Printexc.register_printer (function
    | Lint_errors errs ->
      Some
        (Printf.sprintf "Lint_errors:\n%s"
           (String.concat "\n" (List.map D.to_string errs)))
    | _ -> None)
