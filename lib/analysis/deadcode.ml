(** Semantic dead-code detection, using the prefix arithmetic of
    {!Net.Prefix}.  Every rule here is sound with respect to the
    first-match semantics shared by {!Config.Ast} (concrete) and the
    SMT translation in the encoder: a flagged entry or clause can never
    decide the outcome, for any route or packet.

    Codes:
    - MS-W201: prefix-list entry dead (subsumed by an earlier entry, or
      its ge/le range is empty)
    - MS-W202: ACL entry shadowed by an earlier entry
    - MS-W203: route-map clause can never match (prefix-list undefined,
      empty, or unable to permit anything)
    - MS-W204: route-map clause unreachable (an earlier clause matches
      everything)

    The [dead_*] index functions are shared with {!Slice}, so the
    linter's findings and the slicer's deletions agree by
    construction. *)

module A = Config.Ast
module D = Diagnostic
module P = Net.Prefix

(* Effective prefix-length range of an entry, mirroring
   [Ast.prefix_list_entry_matches] and [Filter.entry_match]. *)
let eff_range (e : A.prefix_list_entry) =
  let base = P.length e.A.pl_prefix in
  match (e.A.pl_ge, e.A.pl_le) with
  | None, None -> (base, base)
  | Some g, None -> (g, 32)
  | None, Some l -> (base, l)
  | Some g, Some l -> (g, l)

let range_empty e =
  let g, l = eff_range e in
  g > l || g > 32 || l < 0

(* [subsumes e1 e2]: every prefix matched by [e2] is matched by [e1],
   so when [e1] appears earlier, [e2] never decides.  Sound (but
   incomplete): single-entry coverage only. *)
let subsumes (e1 : A.prefix_list_entry) (e2 : A.prefix_list_entry) =
  let g1, l1 = eff_range e1 and g2, l2 = eff_range e2 in
  g1 <= g2 && l1 >= l2 && P.subset e2.A.pl_prefix e1.A.pl_prefix

(** Indices of prefix-list entries that can never decide. *)
let dead_prefix_entries (pl : A.prefix_list) =
  let entries = Array.of_list pl.A.pl_entries in
  let dead = ref [] in
  Array.iteri
    (fun i e ->
      let covered () =
        let rec earlier j =
          j < i && ((not (List.mem j !dead)) && subsumes entries.(j) e || earlier (j + 1))
        in
        earlier 0
      in
      if range_empty e || covered () then dead := i :: !dead)
    entries;
  List.rev !dead

(** Indices of ACL entries shadowed by an earlier entry. *)
let shadowed_acl_entries (acl : A.acl) =
  let entries = Array.of_list acl.A.acl_entries in
  let dead = ref [] in
  Array.iteri
    (fun i (e : A.acl_entry) ->
      let rec earlier j =
        j < i
        && ((not (List.mem j !dead)) && P.subset e.A.acl_dst entries.(j).A.acl_dst
           || earlier (j + 1))
      in
      if earlier 0 then dead := i :: !dead)
    entries;
  List.rev !dead

(* Can this prefix-list permit at least one prefix?  [false] means a
   route-map match on it is statically unsatisfiable (the encoder's
   [Filter.match_cond] likewise yields false for an undefined list). *)
let can_permit (dev : A.device) name =
  match A.find_prefix_list dev name with
  | None -> false
  | Some pl ->
    let dead = dead_prefix_entries pl in
    List.exists
      (fun (i, (e : A.prefix_list_entry)) -> e.A.pl_action = A.Permit && not (List.mem i dead))
      (List.mapi (fun i e -> (i, e)) pl.A.pl_entries)

(* A clause with no match conditions selects every route. *)
let matches_everything (cl : A.rm_clause) = cl.A.rm_matches = []

let clause_never_fires (dev : A.device) (cl : A.rm_clause) =
  List.exists
    (function A.Match_prefix_list name -> not (can_permit dev name) | A.Match_community _ -> false)
    cl.A.rm_matches

(** [(index, reason)] of every dead clause; [`Never] = its matches are
    unsatisfiable, [`Unreachable] = an earlier clause matches all. *)
let dead_clauses (dev : A.device) (rm : A.route_map) =
  let _, dead =
    List.fold_left
      (fun (i, (terminal_seen, acc)) (cl : A.rm_clause) ->
        let acc' =
          if terminal_seen then (i, `Unreachable) :: acc
          else if clause_never_fires dev cl then (i, `Never) :: acc
          else acc
        in
        let terminal_seen =
          terminal_seen || (matches_everything cl && not (clause_never_fires dev cl))
        in
        (i + 1, (terminal_seen, acc')))
      (0, (false, []))
      rm.A.rm_clauses
    |> snd
  in
  List.rev dead

(* -- diagnostics ---------------------------------------------------------------- *)

let check_device (dev : A.device) =
  let d = dev.A.dev_name in
  let pl_diags =
    List.concat_map
      (fun (pl : A.prefix_list) ->
        List.map
          (fun i ->
            let e = List.nth pl.A.pl_entries i in
            let why = if range_empty e then "its ge/le range is empty" else "an earlier entry subsumes it" in
            D.make ~code:"MS-W201" ~severity:D.Warning ~device:d
              ~obj:(Printf.sprintf "prefix-list %s entry %d" pl.A.pl_name (i + 1))
              "entry %s %s can never match: %s"
              (match e.A.pl_action with A.Permit -> "permit" | A.Deny -> "deny")
              (P.to_string e.A.pl_prefix) why)
          (dead_prefix_entries pl))
      dev.A.dev_prefix_lists
  in
  let acl_diags =
    List.concat_map
      (fun (acl : A.acl) ->
        List.map
          (fun i ->
            let e = List.nth acl.A.acl_entries i in
            D.make ~code:"MS-W202" ~severity:D.Warning ~device:d
              ~obj:(Printf.sprintf "access-list %s entry %d" acl.A.acl_name (i + 1))
              "entry %s %s is shadowed by an earlier entry"
              (match e.A.acl_action with A.Permit -> "permit" | A.Deny -> "deny")
              (P.to_string e.A.acl_dst))
          (shadowed_acl_entries acl))
      dev.A.dev_acls
  in
  let rm_diags =
    List.concat_map
      (fun (rm : A.route_map) ->
        List.map
          (fun (i, reason) ->
            let cl = List.nth rm.A.rm_clauses i in
            match reason with
            | `Never ->
              D.make ~code:"MS-W203" ~severity:D.Warning ~device:d
                ~obj:(Printf.sprintf "route-map %s clause %d" rm.A.rm_name cl.A.rm_seq)
                "clause can never match (prefix-list permits nothing)"
            | `Unreachable ->
              D.make ~code:"MS-W204" ~severity:D.Warning ~device:d
                ~obj:(Printf.sprintf "route-map %s clause %d" rm.A.rm_name cl.A.rm_seq)
                "clause is unreachable: an earlier clause matches everything")
          (dead_clauses dev rm))
      dev.A.dev_route_maps
  in
  pl_diags @ acl_diags @ rm_diags

let check (net : A.network) = List.concat_map check_device net.A.net_devices
