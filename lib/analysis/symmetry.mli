(** Symmetry analysis: device interchangeability classes, the quotient
    reduction behind [Options.symmetry], and the near-symmetry lint.

    Two devices are interchangeable when a consistent renaming of
    devices, address blocks and AS numbers maps one's configuration
    onto the other's and respects the topology.  The analysis
    approximates this with canonical per-device fingerprints refined by
    topology colors (partition refinement to a fixpoint), which is
    sound for the quotient: devices in one class are genuinely
    role-identical. *)

type partition = { groups : string list list }
(** Disjoint classes covering every device; members sorted, groups
    sorted by their first member.  Singleton classes are included. *)

val fingerprint : Config.Ast.device -> string
(** Renaming-canonical configuration hash: address blocks and AS
    numbers are replaced by first-occurrence indices before hashing, so
    two consistently-renamed devices share a fingerprint.  Equal
    fingerprints seed the interchangeability classes; offsets within an
    address block and mask lengths stay literal (they are policy, not
    naming).  Use {!digest} — not this — wherever a hash must change
    when concrete addresses change. *)

val digest : Config.Ast.device -> string
(** Concrete configuration hash: [Digest.to_hex] of the device's
    printed configuration, addresses and AS numbers literal.  Two
    consistently-renamed devices get {e different} digests, so this is
    the right key for encoding caches and config-diff detection (the
    serve daemon keys both on it); {!fingerprint} is the right seed for
    symmetry classes.  Insensitive to concrete-syntax noise of the
    source text (comments, ordering of unordered sections) because it
    hashes the canonical printer output, not the input bytes. *)

val classes : ?pins:string list -> Config.Ast.network -> Net.Topology.t -> partition
(** Interchangeability classes: canonical-fingerprint seeds refined by
    topology.  [pins] forces the named devices into singleton classes. *)

val topological_classes : Config.Ast.network -> Net.Topology.t -> partition
(** Classes by topological role only (uniform seed refined by the link
    structure), ignoring configuration content — the candidate pool for
    the near-symmetry lint. *)

type reduction = {
  red_network : Config.Ast.network;  (** the quotient network *)
  red_rep : (string * string) list;  (** collapsed member -> representative *)
  red_classes : (string * string list) list;
      (** representative -> full sorted class, for classes of size >= 2 *)
}

val reduce : ?pins:string list -> Config.Ast.network -> reduction option
(** The quotient network: one representative device per class, class-mates
    deleted and references to them rewritten.  [None] when no class has
    size two or more, or on feature combinations whose quotient
    semantics would differ from the full network (iBGP, statics with
    internal next hops, intra-class links, failures); the encoder then
    falls back to the full encoding.  [pins] names devices that must
    survive as themselves. *)

val check : Config.Ast.network -> Diagnostic.t list
(** The near-symmetry lint (MS-W401): in a topological role class of at
    least three devices with a unique plurality policy, flag each
    dissenting device and the sections where it differs. *)
