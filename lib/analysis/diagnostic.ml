(** Structured diagnostics produced by the configuration linter.

    Every finding carries a stable code (MS-Exxx for errors, MS-Wxxx
    for warnings, MS-Ixxx for informational notes), a severity, an
    optional device and an optional object location ("route-map EDGE_IN
    clause 20").  Codes are part of the tool's interface: tests and
    operators key on them, so they never change meaning. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  device : string option;  (** [None] for network-level findings *)
  obj : string option;  (** e.g. "prefix-list INTERNAL_SPACE entry 3" *)
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Lower rank = more severe; used both for sorting and exit codes. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let make ~code ~severity ?device ?obj fmt =
  Printf.ksprintf (fun message -> { code; severity; device; obj; message }) fmt

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.device b.device in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.code b.code in
      if c <> 0 then c else Stdlib.compare (a.obj, a.message) (b.obj, b.message)

let max_severity = function
  | [] -> None
  | d :: rest ->
    Some
      (List.fold_left
         (fun acc x -> if severity_rank x.severity < severity_rank acc then x.severity else acc)
         d.severity rest)

let count sev diags = List.length (List.filter (fun d -> d.severity = sev) diags)

let is_error d = d.severity = Error

(* -- text rendering ------------------------------------------------------------- *)

let to_string d =
  let where = match d.device with Some dev -> dev | None -> "network" in
  let obj = match d.obj with Some o -> Printf.sprintf " (%s)" o | None -> "" in
  Printf.sprintf "%s: %s [%s] %s%s" where (severity_to_string d.severity) d.code d.message obj

let render_text diags =
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string b (to_string d);
      Buffer.add_char b '\n')
    diags;
  Buffer.add_string b
    (Printf.sprintf "%d error(s), %d warning(s), %d info\n" (count Error diags)
       (count Warning diags) (count Info diags));
  Buffer.contents b

(* -- JSON rendering ------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_opt = function
  | None -> "null"
  | Some s -> Printf.sprintf "\"%s\"" (json_escape s)

let to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"device\":%s,\"object\":%s,\"message\":\"%s\"}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_opt d.device) (json_opt d.obj) (json_escape d.message)

let render_json diags =
  Printf.sprintf
    "{\"diagnostics\":[%s],\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d}}\n"
    (String.concat "," (List.map to_json diags))
    (count Error diags) (count Warning diags) (count Info diags)
