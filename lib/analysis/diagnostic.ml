(** Structured diagnostics produced by the configuration linter.

    Every finding carries a stable code (MS-Exxx for errors, MS-Wxxx
    for warnings, MS-Ixxx for informational notes), a severity, an
    optional device and an optional object location ("route-map EDGE_IN
    clause 20").  Codes are part of the tool's interface: tests and
    operators key on them, so they never change meaning. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  device : string option;  (** [None] for network-level findings *)
  obj : string option;  (** e.g. "prefix-list INTERNAL_SPACE entry 3" *)
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Lower rank = more severe; used both for sorting and exit codes. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let make ~code ~severity ?device ?obj fmt =
  Printf.ksprintf (fun message -> { code; severity; device; obj; message }) fmt

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.device b.device in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.code b.code in
      if c <> 0 then c else Stdlib.compare (a.obj, a.message) (b.obj, b.message)

let max_severity = function
  | [] -> None
  | d :: rest ->
    Some
      (List.fold_left
         (fun acc x -> if severity_rank x.severity < severity_rank acc then x.severity else acc)
         d.severity rest)

let count sev diags = List.length (List.filter (fun d -> d.severity = sev) diags)

let is_error d = d.severity = Error

(* -- text rendering ------------------------------------------------------------- *)

let to_string d =
  let where = match d.device with Some dev -> dev | None -> "network" in
  let obj = match d.obj with Some o -> Printf.sprintf " (%s)" o | None -> "" in
  Printf.sprintf "%s: %s [%s] %s%s" where (severity_to_string d.severity) d.code d.message obj

let render_text diags =
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string b (to_string d);
      Buffer.add_char b '\n')
    diags;
  Buffer.add_string b
    (Printf.sprintf "%d error(s), %d warning(s), %d info\n" (count Error diags)
       (count Warning diags) (count Info diags));
  Buffer.contents b

(* -- JSON rendering ------------------------------------------------------------- *)

(* Escaping lives in the shared Msutil.Json module so the lint
   diagnostics, the verification reports and the bench writers cannot
   drift apart; these aliases keep the historical local names. *)
let json_escape = Msutil.Json.escape
let json_opt = Msutil.Json.opt

let to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"device\":%s,\"object\":%s,\"message\":\"%s\"}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_opt d.device) (json_opt d.obj) (json_escape d.message)

let render_json diags =
  Printf.sprintf
    "{\"diagnostics\":[%s],\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d}}\n"
    (String.concat "," (List.map to_json diags))
    (count Error diags) (count Warning diags) (count Info diags)

(* -- SARIF 2.1.0 rendering ------------------------------------------------------ *)

(* One-line titles for the stable codes, used as SARIF rule
   shortDescriptions (the README carries the same table in prose).
   A code missing here still renders — the rule just reuses its id. *)
let known_codes =
  [
    ("MS-E001", "reference to an undefined route-map");
    ("MS-E002", "reference to an undefined prefix-list");
    ("MS-E003", "reference to an undefined access-list");
    ("MS-E301", "BGP remote-as disagrees with the neighbor's configured AS");
    ("MS-E302", "BGP neighbor address belongs to a device that runs no BGP");
    ("MS-E303", "two interfaces of one device share a subnet");
    ("MS-E304", "BGP neighbor address is one of the device's own interfaces");
    ("MS-W101", "route-map defined but never applied");
    ("MS-W102", "prefix-list defined but never matched");
    ("MS-W103", "access-list defined but never applied");
    ("MS-W201", "prefix-list entry can never match");
    ("MS-W202", "access-list entry shadowed by an earlier entry");
    ("MS-W203", "route-map clause can never match");
    ("MS-W204", "route-map clause unreachable");
    ("MS-W301", "one-sided BGP session");
    ("MS-W302", "router-id configured on several devices");
    ("MS-W303", "iBGP group neither fully meshed nor covered by a route reflector");
    ("MS-W304", "OSPF network statement matches no interface address");
    ("MS-W305", "BGP neighbor address not on any connected subnet");
    ("MS-W401", "near-symmetry broken: device differs from its topological role peers");
  ]

let sarif_level = function Error -> "error" | Warning -> "warning" | Info -> "note"

(* Minimal but valid SARIF 2.1.0: one run, one driver, stable rule ids,
   one result per diagnostic.  [uri] names the analyzed configuration
   file so CI annotation surfaces have an artifact to attach to. *)
let render_sarif ?(uri = "network.cfg") diags =
  let q = Msutil.Json.quote in
  let rule_ids =
    List.sort_uniq Stdlib.compare (List.map (fun d -> (d.code, d.severity)) diags)
  in
  let rules =
    List.map
      (fun (code, sev) ->
        let title =
          match List.assoc_opt code known_codes with Some t -> t | None -> code
        in
        Printf.sprintf
          "{\"id\":%s,\"shortDescription\":{\"text\":%s},\"defaultConfiguration\":{\"level\":%s}}"
          (q code) (q title) (q (sarif_level sev)))
      rule_ids
  in
  let results =
    List.map
      (fun d ->
        let logical =
          match (d.device, d.obj) with
          | Some dev, Some o -> Some (dev ^ "/" ^ o)
          | Some dev, None -> Some dev
          | None, Some o -> Some o
          | None, None -> None
        in
        let location =
          Printf.sprintf
            "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s}}%s}"
            (q uri)
            (match logical with
             | Some l ->
               Printf.sprintf ",\"logicalLocations\":[{\"fullyQualifiedName\":%s}]" (q l)
             | None -> "")
        in
        Printf.sprintf
          "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[%s]}"
          (q d.code)
          (q (sarif_level d.severity))
          (q d.message) location)
      diags
  in
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"minesweeper-lint\",\"rules\":[%s]}},\"results\":[%s]}]}\n"
    (String.concat "," rules)
    (String.concat "," results)
