(** Cross-device consistency checks over the whole network: BGP
    sessions must be two-sided with agreeing AS numbers, router-ids
    unique, iBGP groups fully meshed or covered by route reflectors,
    and OSPF network statements must enable at least one interface.

    Codes:
    - MS-E301: remote-as disagrees with the peer's configured ASN
    - MS-E302: neighbor address belongs to a device that runs no BGP
    - MS-E303: two interfaces on one device share a subnet
    - MS-E304: neighbor address is one of the device's own interfaces
    - MS-W301: one-sided session (peer has no matching neighbor statement)
    - MS-W302: duplicate BGP router-id
    - MS-W303: iBGP group neither fully meshed nor covered by a route reflector
    - MS-W304: OSPF network statement matches no interface
    - MS-W305: neighbor address not on any connected subnet *)

module A = Config.Ast
module D = Diagnostic
module P = Net.Prefix
module Ip = Net.Ipv4

let interface_ips (dev : A.device) =
  List.filter_map (fun (i : A.interface) -> i.A.if_ip) dev.A.dev_interfaces

let owns_ip (dev : A.device) ip = List.exists (Ip.equal ip) (interface_ips dev)

(* Does [dev] have a neighbor statement pointing at one of [peer]'s
   interface addresses? *)
let has_session_to (dev : A.device) (peer : A.device) =
  match dev.A.dev_bgp with
  | None -> false
  | Some bgp ->
    List.exists (fun (n : A.bgp_neighbor) -> owns_ip peer n.A.nbr_ip) bgp.A.bgp_neighbors

let check_neighbors (net : A.network) (dev : A.device) =
  match dev.A.dev_bgp with
  | None -> []
  | Some bgp ->
    List.concat_map
      (fun (n : A.bgp_neighbor) ->
        let d = dev.A.dev_name in
        let ip = Ip.to_string n.A.nbr_ip in
        let obj = Printf.sprintf "neighbor %s" ip in
        if owns_ip dev n.A.nbr_ip then
          [
            D.make ~code:"MS-E304" ~severity:D.Error ~device:d ~obj
              "neighbor address %s is one of this device's own interfaces" ip;
          ]
        else
          let on_subnet =
            List.exists (fun p -> P.contains p n.A.nbr_ip) (A.connected_prefixes dev)
          in
          let subnet_diag =
            if on_subnet then []
            else
              [
                D.make ~code:"MS-W305" ~severity:D.Warning ~device:d ~obj
                  "neighbor address %s is not on any connected subnet of this device" ip;
              ]
          in
          match A.device_of_ip net n.A.nbr_ip with
          | None -> subnet_diag (* an external peer: symbolic environment *)
          | Some peer ->
            (match peer.A.dev_bgp with
             | None ->
               subnet_diag
               @ [
                   D.make ~code:"MS-E302" ~severity:D.Error ~device:d ~obj
                     "neighbor %s belongs to %s, which runs no BGP" ip peer.A.dev_name;
                 ]
             | Some peer_bgp ->
               let as_diag =
                 if n.A.nbr_remote_as <> peer_bgp.A.bgp_asn then
                   [
                     D.make ~code:"MS-E301" ~severity:D.Error ~device:d ~obj
                       "remote-as %d, but %s is configured as AS %d" n.A.nbr_remote_as
                       peer.A.dev_name peer_bgp.A.bgp_asn;
                   ]
                 else []
               in
               let reciprocal_diag =
                 if has_session_to peer dev then []
                 else
                   [
                     D.make ~code:"MS-W301" ~severity:D.Warning ~device:d ~obj
                       "one-sided session: %s has no neighbor statement back to this device"
                       peer.A.dev_name;
                   ]
               in
               subnet_diag @ as_diag @ reciprocal_diag))
      bgp.A.bgp_neighbors

let check_router_ids (net : A.network) =
  let ids =
    List.filter_map
      (fun (d : A.device) ->
        match d.A.dev_bgp with
        | Some { A.bgp_router_id = Some rid; _ } -> Some (rid, d.A.dev_name)
        | Some _ | None -> None)
      net.A.net_devices
  in
  let groups =
    List.sort_uniq Ip.compare (List.map fst ids)
    |> List.map (fun rid -> (rid, List.filter_map (fun (r, d) -> if Ip.equal r rid then Some d else None) ids))
  in
  List.filter_map
    (fun (rid, devs) ->
      if List.length devs < 2 then None
      else
        Some
          (D.make ~code:"MS-W302" ~severity:D.Warning
             ~obj:(Printf.sprintf "router-id %s" (Ip.to_string rid))
             "router-id %s is configured on several devices: %s" (Ip.to_string rid)
             (String.concat ", " devs)))
    groups

(* iBGP groups: devices sharing an ASN must be fully meshed, or every
   non-reflector must be a client of a route reflector (and reflectors
   meshed among themselves). *)
let check_ibgp_mesh (net : A.network) =
  let bgp_devs =
    List.filter_map
      (fun (d : A.device) -> Option.map (fun b -> (d, b)) d.A.dev_bgp)
      net.A.net_devices
  in
  let asns = List.sort_uniq compare (List.map (fun (_, b) -> b.A.bgp_asn) bgp_devs) in
  List.filter_map
    (fun asn ->
      let group = List.filter (fun (_, b) -> b.A.bgp_asn = asn) bgp_devs in
      if List.length group < 2 then None
      else begin
        let connected (a, _) (b, _) = has_session_to a b && has_session_to b a in
        (* diagonal skip by device name — identity (==) on config
           records would silently stop matching if a device were ever
           re-parsed or copied between the two lists *)
        let same (a, _) (b, _) = a.A.dev_name = b.A.dev_name in
        let is_rr (d, b) =
          List.exists
            (fun (n : A.bgp_neighbor) ->
              n.A.nbr_rr_client
              && List.exists (fun (d2, _) -> d2.A.dev_name <> d.A.dev_name && owns_ip d2 n.A.nbr_ip) group)
            b.A.bgp_neighbors
        in
        let rrs = List.filter is_rr group in
        let ok =
          if rrs = [] then
            (* full mesh required *)
            List.for_all
              (fun a ->
                List.for_all
                  (fun b -> same a b || connected a b)
                  group)
              group
          else
            (* every non-reflector peers with some reflector; reflectors meshed *)
            List.for_all
              (fun m ->
                is_rr m
                || List.exists (fun r -> connected m r) rrs)
              group
            && List.for_all
                 (fun a -> List.for_all (fun b -> same a b || connected a b) rrs)
                 rrs
        in
        if ok then None
        else
          Some
            (D.make ~code:"MS-W303" ~severity:D.Warning
               ~obj:(Printf.sprintf "AS %d" asn)
               "iBGP group {%s} is neither fully meshed nor covered by a route reflector"
               (String.concat ", " (List.map (fun ((d : A.device), _) -> d.A.dev_name) group)))
      end)
    asns

let check_ospf (dev : A.device) =
  match dev.A.dev_ospf with
  | None -> []
  | Some o ->
    List.filter_map
      (fun p ->
        let enables =
          List.exists
            (fun (i : A.interface) ->
              match i.A.if_ip with Some ip -> P.contains p ip | None -> false)
            dev.A.dev_interfaces
        in
        if enables then None
        else
          Some
            (D.make ~code:"MS-W304" ~severity:D.Warning ~device:dev.A.dev_name
               ~obj:(Printf.sprintf "ospf network %s" (P.to_string p))
               "OSPF network statement %s matches no interface address" (P.to_string p)))
      o.A.ospf_networks

(* Two interfaces of one device sharing a subnet would make the inferred
   topology link a device to itself; the parser rejects it, this covers
   networks built directly from the AST. *)
let check_self_subnets (dev : A.device) =
  let rec go acc = function
    | [] -> List.rev acc
    | (i1 : A.interface) :: rest ->
      let acc =
        match i1.A.if_prefix with
        | None -> acc
        | Some p1 ->
          (match
             List.find_opt
               (fun (i2 : A.interface) ->
                 match i2.A.if_prefix with Some p2 -> P.equal p1 p2 | None -> false)
               rest
           with
           | Some i2 ->
             D.make ~code:"MS-E303" ~severity:D.Error ~device:dev.A.dev_name
               ~obj:(Printf.sprintf "interfaces %s, %s" i1.A.if_name i2.A.if_name)
               "interfaces %s and %s share subnet %s" i1.A.if_name i2.A.if_name (P.to_string p1)
             :: acc
           | None -> acc)
      in
      go acc rest
  in
  go [] dev.A.dev_interfaces

let check (net : A.network) =
  List.concat_map (check_neighbors net) net.A.net_devices
  @ check_router_ids net @ check_ibgp_mesh net
  @ List.concat_map check_ospf net.A.net_devices
  @ List.concat_map check_self_subnets net.A.net_devices
