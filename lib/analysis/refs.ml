(** Reference (def-use) analysis: every route-map, prefix-list and ACL
    named somewhere in a device's configuration must exist, and every
    defined object should be referenced from somewhere.

    Codes:
    - MS-E001: undefined route-map referenced by a BGP neighbor
    - MS-E002: undefined prefix-list referenced by a route-map clause
    - MS-E003: undefined ACL referenced by an interface
    - MS-W101: route-map defined but never applied
    - MS-W102: prefix-list defined but never matched
    - MS-W103: ACL defined but never applied *)

module A = Config.Ast
module D = Diagnostic

(* Route-map names referenced by a device's BGP neighbors, with the
   referencing location. *)
let route_map_uses (dev : A.device) =
  match dev.A.dev_bgp with
  | None -> []
  | Some bgp ->
    List.concat_map
      (fun (n : A.bgp_neighbor) ->
        let ip = Net.Ipv4.to_string n.A.nbr_ip in
        (match n.A.nbr_rm_in with
         | Some rm -> [ (rm, Printf.sprintf "neighbor %s route-map in" ip) ]
         | None -> [])
        @
        match n.A.nbr_rm_out with
        | Some rm -> [ (rm, Printf.sprintf "neighbor %s route-map out" ip) ]
        | None -> [])
      bgp.A.bgp_neighbors

(* Prefix-list names referenced by a device's route-map clauses. *)
let prefix_list_uses (dev : A.device) =
  List.concat_map
    (fun (rm : A.route_map) ->
      List.concat_map
        (fun (cl : A.rm_clause) ->
          List.filter_map
            (function
              | A.Match_prefix_list name ->
                Some (name, Printf.sprintf "route-map %s clause %d" rm.A.rm_name cl.A.rm_seq)
              | A.Match_community _ -> None)
            cl.A.rm_matches)
        rm.A.rm_clauses)
    dev.A.dev_route_maps

(* ACL names referenced by a device's interfaces. *)
let acl_uses (dev : A.device) =
  List.concat_map
    (fun (i : A.interface) ->
      (match i.A.if_acl_in with
       | Some a -> [ (a, Printf.sprintf "interface %s in" i.A.if_name) ]
       | None -> [])
      @
      match i.A.if_acl_out with
      | Some a -> [ (a, Printf.sprintf "interface %s out" i.A.if_name) ]
      | None -> [])
    dev.A.dev_interfaces

let check_device (dev : A.device) =
  let d = dev.A.dev_name in
  let rm_uses = route_map_uses dev in
  let pl_uses = prefix_list_uses dev in
  let acl_uses = acl_uses dev in
  let undefined =
    List.filter_map
      (fun (name, where) ->
        if A.find_route_map dev name = None then
          Some
            (D.make ~code:"MS-E001" ~severity:D.Error ~device:d ~obj:where
               "route-map %s is not defined" name)
        else None)
      rm_uses
    @ List.filter_map
        (fun (name, where) ->
          if A.find_prefix_list dev name = None then
            Some
              (D.make ~code:"MS-E002" ~severity:D.Error ~device:d ~obj:where
                 "prefix-list %s is not defined" name)
          else None)
        pl_uses
    @ List.filter_map
        (fun (name, where) ->
          if A.find_acl dev name = None then
            Some
              (D.make ~code:"MS-E003" ~severity:D.Error ~device:d ~obj:where
                 "access-list %s is not defined" name)
          else None)
        acl_uses
  in
  let used uses name = List.exists (fun (n, _) -> n = name) uses in
  let unused =
    List.filter_map
      (fun (rm : A.route_map) ->
        if used rm_uses rm.A.rm_name then None
        else
          Some
            (D.make ~code:"MS-W101" ~severity:D.Warning ~device:d
               ~obj:(Printf.sprintf "route-map %s" rm.A.rm_name)
               "route-map %s is defined but never applied" rm.A.rm_name))
      dev.A.dev_route_maps
    @ List.filter_map
        (fun (pl : A.prefix_list) ->
          if used pl_uses pl.A.pl_name then None
          else
            Some
              (D.make ~code:"MS-W102" ~severity:D.Warning ~device:d
                 ~obj:(Printf.sprintf "prefix-list %s" pl.A.pl_name)
                 "prefix-list %s is defined but never matched" pl.A.pl_name))
        dev.A.dev_prefix_lists
    @ List.filter_map
        (fun (acl : A.acl) ->
          if used acl_uses acl.A.acl_name then None
          else
            Some
              (D.make ~code:"MS-W103" ~severity:D.Warning ~device:d
                 ~obj:(Printf.sprintf "access-list %s" acl.A.acl_name)
                 "access-list %s is defined but never applied" acl.A.acl_name))
        dev.A.dev_acls
  in
  undefined @ unused

let check (net : A.network) = List.concat_map check_device net.A.net_devices
