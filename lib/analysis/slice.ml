(** Lint-driven encoding slicing: rewrite a network by deleting
    configuration the dead-code analysis proves can never influence any
    decision — subsumed or empty prefix-list entries, shadowed ACL
    entries, and route-map clauses that can never fire or never be
    reached.  The resulting network is verification-equivalent to the
    original (the differential tests assert identical verdicts), but
    its encoding is smaller because every deleted entry is one fewer
    term in the first-match chains built by the encoder.

    Deletion decisions come from the same {!Deadcode} index functions
    the linter reports on, so a slice removes exactly what
    [minesweeper lint] flags as MS-W201/W202/W203/W204. *)

module A = Config.Ast

let drop_indices dead xs =
  List.filteri (fun i _ -> not (List.mem i dead)) xs

let prefix_list (pl : A.prefix_list) =
  { pl with A.pl_entries = drop_indices (Deadcode.dead_prefix_entries pl) pl.A.pl_entries }

let acl (a : A.acl) =
  { a with A.acl_entries = drop_indices (Deadcode.shadowed_acl_entries a) a.A.acl_entries }

(* Clause deadness is judged against the original device, whose
   prefix-lists the clauses refer to. *)
let route_map (dev : A.device) (rm : A.route_map) =
  let dead = List.map fst (Deadcode.dead_clauses dev rm) in
  { rm with A.rm_clauses = drop_indices dead rm.A.rm_clauses }

let device (dev : A.device) =
  {
    dev with
    A.dev_prefix_lists = List.map prefix_list dev.A.dev_prefix_lists;
    dev_acls = List.map acl dev.A.dev_acls;
    dev_route_maps = List.map (route_map dev) dev.A.dev_route_maps;
  }

let network (net : A.network) =
  { net with A.net_devices = List.map device net.A.net_devices }

(** [(entries, acl_entries, clauses)] removed by slicing — for
    reporting. *)
let removed_counts (net : A.network) =
  List.fold_left
    (fun (pe, ae, cl) (d : A.device) ->
      ( pe
        + List.fold_left
            (fun acc pl -> acc + List.length (Deadcode.dead_prefix_entries pl))
            0 d.A.dev_prefix_lists,
        ae
        + List.fold_left
            (fun acc a -> acc + List.length (Deadcode.shadowed_acl_entries a))
            0 d.A.dev_acls,
        cl
        + List.fold_left
            (fun acc rm -> acc + List.length (Deadcode.dead_clauses d rm))
            0 d.A.dev_route_maps ))
    (0, 0, 0) net.A.net_devices
