(** Growable arrays, used pervasively by the SAT core. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots; it is never returned by accessors. *)

val debug : bool
(** Whether the [unsafe_*] accessors carry bounds checks in this
    process (environment variable [MS_VEC_DEBUG], read once at
    startup; unset, empty or ["0"] means off). *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val unsafe_get : 'a t -> int -> 'a
(** [get] without the bounds check — the SAT core's propagation loop
    accessor.  Reading past [size] is undefined behavior in release
    mode; with [MS_VEC_DEBUG] set it raises [Invalid_argument] like
    {!get} (see {!debug}). *)

val unsafe_set : 'a t -> int -> 'a -> unit
(** [set] without the bounds check; same debug-mode contract as
    {!unsafe_get}. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements. *)

val blit : 'a t -> int -> 'a t -> int -> int -> unit
(** [blit src spos dst dpos len] copies [len] elements, growing [dst]'s
    length to [dpos + len] when the copy extends past its current size
    ([dpos] itself must not: holes are never created).
    @raise Invalid_argument when a range is out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val sort_in_place : ('a -> 'a -> int) -> 'a t -> unit
val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes element [i] by swapping in the last element
    (constant time, does not preserve order). *)
