(** Tseitin conversion of terms into SAT clauses.

    A context owns a {!Sat.t} solver and maintains:
    - a memo table from Boolean terms to SAT literals;
    - a registry of theory atoms (difference-logic and rational) keyed
      by their canonical normal form, so syntactically different but
      equivalent atoms share one SAT variable;
    - bit-blasting tables mapping bit-vector terms to literal arrays.

    Cardinality constraints ([Term.at_most]) are expanded with the
    sequential-counter encoding using fresh variables and full
    equivalences, so they are sound under both polarities.

    By default the conversion is polarity-aware (Plaisted–Greenbaum):
    an And/Or definition only emits the implication direction(s) it is
    actually used under, halving the clauses for single-polarity
    subformulas.  Models of the reduced encoding satisfy the original
    formula, so model extraction is unchanged; [create ~pg:false]
    restores full biconditional Tseitin. *)

type t

(** A registered integer difference atom [x - y <= k]; [x], [y] are
    dense theory-variable indices, [-1] when absent. *)
type int_atom = { ix : int; iy : int; ik : int }

(** A registered rational atom [sum coeffs <= bound] ([<] if strict).
    Variable indices are dense rational theory-variable indices. *)
type rat_atom = {
  rcoeffs : (int * Exactnum.Rat.t) list;
  rbound : Exactnum.Rat.t;
  rstrict : bool;
}

val create : ?pg:bool -> ?proof:bool -> unit -> t
(** [create ()] uses polarity-aware conversion; [~pg:false] emits full
    equivalences for every definition.  [~proof:true] turns on DRAT
    trace recording in the underlying solver before the first clause is
    emitted (see {!Sat.enable_proof}). *)

val sat : t -> Sat.t

val assert_term : t -> Term.t -> unit
(** Convert a Boolean term to clauses and assert it. *)

val assert_implied : t -> guard:Term.t -> Term.t -> unit
(** [assert_implied c ~guard t] asserts [guard => t], pushing the
    negated guard literal into each top-level clause of [t]'s
    conversion.  With [guard] a fresh activation variable this makes
    the assertion retractable: assuming [guard] enables it, a unit
    clause [not guard] retires it for good. *)

val lit_of : t -> Term.t -> int
(** SAT literal of a Boolean term (converting it if needed). *)

val num_int_vars : t -> int
val num_rat_vars : t -> int

val int_atoms : t -> (int * int_atom) list
(** [(sat_var, atom)] pairs for every registered difference atom. *)

val rat_atoms : t -> (int * rat_atom) list

val int_var_terms : t -> (Term.t * int) list
(** Integer term variables and their dense theory indices. *)

val rat_var_terms : t -> (Term.t * int) list

val bool_var_lits : t -> (Term.t * int) list
(** Boolean term variables and their SAT literals. *)

val bv_var_bits : t -> (Term.t * int array) list
(** Bit-vector term variables and their SAT literal arrays
    (index 0 = least significant bit). *)
