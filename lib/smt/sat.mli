(** A CDCL SAT solver (two-watched literals, VSIDS, 1UIP learning,
    Luby restarts, activity-based learnt-clause deletion), solvable
    incrementally under assumptions (MiniSat style).

    Literals are integers: variable [v]'s positive literal is [2*v] and
    its negative literal is [2*v+1].  Variables are allocated with
    {!new_var} and clauses added with {!add_clause}; {!solve} then decides
    satisfiability.  A [final_check] callback supports lazy SMT: it runs
    whenever the solver reaches a full assignment and may veto it by
    returning conflict clauses to learn.

    {!solve} may be called any number of times, interleaved with
    {!new_var} and {!add_clause}; learnt clauses, variable activities
    and saved phases persist across calls (learnt clauses are derived
    from the clause database alone — never from assumptions, which are
    retractable decisions — so reusing them is sound as the database
    only grows).  Passing [~assumptions] decides the given literals
    before any search decision; on [Unsat] caused by the assumptions,
    {!unsat_core} names the guilty subset. *)

type t

type result = Sat | Unsat

type restart_mode =
  | Luby
      (** Fixed-schedule restarts: [restart_base] conflicts scaled by
          the Luby sequence.  Robust on satisfiable instances. *)
  | Ema_lbd
      (** Glucose-style adaptive restarts: restart when the exponential
          moving average of recent learnt-clause LBDs exceeds the
          long-run average (the search is producing worse-than-usual
          clauses), blocked when the trail is unusually deep (the
          search may be closing in on a model). *)

type strategy = {
  var_decay : float;
      (** VSIDS activity decay: [var_inc] is divided by this after every
          conflict.  Smaller values focus the search harder on recent
          conflicts (MiniSat default 0.95). *)
  restart_base : int;
      (** Conflicts before the first restart; later restart intervals
          are this base scaled by the Luby sequence ({!Luby} mode only —
          {!Ema_lbd} paces itself off clause quality). *)
  default_phase : bool;
      (** Initial saved phase of freshly allocated variables (branching
          polarity before any phase is saved). *)
  restart_mode : restart_mode;
      (** Restart scheduling policy (see {!restart_mode}). *)
  rephase : bool;
      (** CaDiCaL-style phase scheduling: remember the phases of the
          deepest trail reached since the last rephase ("best phase")
          and, on a widening conflict cadence, reset every saved phase
          to best / inverted / saved in rotation.  Diversifies the
          regions of the assignment space the search revisits after
          restarts. *)
}
(** Search-strategy knobs.  Any strategy is sound and complete — they
    only steer the search, which is what makes racing them in a
    portfolio worthwhile. *)

val default_strategy : strategy

val set_strategy : t -> strategy -> unit
(** Install a strategy.  Decay and restart cadence apply from the next
    conflict on; the default phase applies to variables allocated after
    the call. *)

exception Canceled

type proof_step =
  | P_input of int array
      (** Original clause, exactly as admitted into the database
          (duplicate literals removed, sorted).  Not justified by the
          trace — provenance is the caller's responsibility. *)
  | P_rup of int array
      (** Derived clause: learnt clauses, strengthened or stripped
          clauses, negated assumption cores.  Checkable by reverse unit
          propagation over the preceding active set; [P_rup [||]] is
          the refutation. *)
  | P_lemma of int array
      (** Theory lemma integrated mid-search.  Not propositionally
          derivable — a checker must re-justify it against a standalone
          theory solver. *)
  | P_pure of int
      (** Pure-literal unit: sound because no clause of the preceding
          active set contains the literal's negation. *)
  | P_delete of int array
      (** Removal of a clause currently in the active set (compared as
          a sorted literal set). *)
(** One step of a DRAT-style trace.  The sequence of steps keeps an
    imagined "active set" of clauses in sync with the solver's own
    database, so an independent checker can replay it with nothing but
    unit propagation (plus theory revalidation for [P_lemma]). *)

val enable_proof : t -> unit
(** Start recording a proof trace.  Must be called before any clause is
    added; recording cannot be turned off again.  Logging costs memory
    proportional to the search, so leave it off unless a certificate is
    wanted. *)

val proof_enabled : t -> bool

val proof_steps : t -> proof_step list
(** The recorded trace, in chronological order.  Literal arrays are
    fresh copies, but their order reflects the solver's internal watch
    bookkeeping — consumers must treat clauses as literal {e sets}. *)

val proof_length : t -> int
(** Number of recorded steps ([List.length (proof_steps s)], O(1)). *)

val set_simplify : t -> bool -> unit
(** Enable the level-0 preprocessing pass (root unit propagation,
    satisfied-clause removal, false-literal stripping, forward
    subsumption, self-subsuming resolution), run at the start of every
    {!solve}.  Off by default.  Every transformation is applied at
    decision level 0, so models and unsat answers are unchanged. *)

val set_pure_elim : t -> bool -> unit
(** Additionally let the preprocessing pass fix pure literals (variables
    occurring with a single polarity in the live clause database) at
    level 0.  Off by default.  Unsound for variables constrained outside
    the clause database — freeze those with {!freeze_var} — and for
    incremental use where future clauses may introduce the missing
    polarity; only enable it for single-shot solving. *)

val set_lbd : t -> bool -> unit
(** Score learnt clauses by literal block distance (glue): {!solve}'s
    database reductions then delete the high-LBD half instead of the
    low-activity half (keeping glue clauses forever), and conflict
    clauses are minimized with the recursive (reason-graph) procedure
    instead of the local one.  Off by default. *)

val set_early_sat : t -> bool -> unit
(** Allow {!solve} to call [final_check] on a partial assignment once
    every variable marked {!mark_important} is assigned and every
    problem clause is satisfied.  The remaining variables are
    don't-cares and read as [false] via {!value_var}.  Off by default;
    only sound when all externally-constrained variables (theory atoms)
    are marked important. *)

val freeze_var : t -> int -> unit
(** Exempt a variable from pure-literal elimination.  Required for
    variables with meaning outside the clause database: theory atoms and
    assumption literals. *)

val mark_important : t -> int -> unit
(** Mark a variable as gating early-SAT detection (see
    {!set_early_sat}).  Idempotent. *)

val set_max_learnts : t -> int -> unit
(** Learnt clauses tolerated before {!solve} runs a database reduction
    (default 4000; the limit then grows geometrically).  A tiny value
    forces a reduction every few conflicts — the stress mode the
    locked-clause regression tests rely on. *)

val set_stop : t -> (unit -> bool) option -> unit
(** Cooperative cancellation: the hook is polled every few hundred
    search steps (decisions and conflicts) inside {!solve}.  When it
    returns [true], the search backtracks to level 0 and {!solve}
    raises {!Canceled}.  The solver stays usable — clauses learnt
    before the cancellation are kept and a later {!solve} starts the
    search afresh. *)

val set_on_restart : t -> (unit -> unit) option -> unit
(** Hook invoked at every restart, after the trail has been cancelled
    to level 0 (and after any rephase).  This is the portfolio tick:
    the callback may {!drain_exports} and {!import_clause} freely —
    propagation is complete and imports attach cleanly.  If the hook
    imports a clause that makes the database unsatisfiable, the running
    {!solve} answers [Unsat]. *)

val set_share : t -> max_lbd:int -> max_len:int -> unit
(** Enable learnt-clause export: conflict clauses with LBD at most
    [max_lbd] and at most [max_len] literals are copied to an export
    buffer (bounded; overflow drops silently).  [max_lbd = 0] disables
    export (the default). *)

val drain_exports : t -> int array list
(** Take the export buffer, oldest first.  Literals use this solver's
    numbering — sharing is only sound between solvers with identical
    variable numbering (e.g. portfolio workers forked from one parent
    after CNF conversion). *)

val import_clause : t -> int array -> bool
(** Attach a clause learnt by a sibling solver over the same CNF.
    Returns [true] if the clause was integrated.  Must be called at
    decision level 0 with propagation complete (the {!set_on_restart}
    hook guarantees both).  When proof logging is on, the import is
    first checked to be RUP with respect to this solver's active set
    (assert the negation, propagate, require a conflict) and logged as
    {!P_rup}; non-RUP imports are dropped — returning [false] — so the
    trace stays independently checkable. *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val nvars : t -> int

val pos_lit : int -> int
val neg_lit : int -> int
val lit_var : int -> int
val lit_sign : int -> bool
(** [lit_sign l] is [true] for a positive literal. *)

val lit_neg : int -> int

val add_clause : t -> int list -> unit
(** Add a clause (a disjunction of literals).  If a previous {!solve}
    left a satisfying trail, it is undone first: clauses are always
    asserted at decision level 0. *)

val solve :
  ?assumptions:int list ->
  ?final_check:(t -> int list list) ->
  ?partial_check:(t -> int list list) ->
  ?partial_interval:int ->
  ?on_backtrack:(int -> unit) ->
  t ->
  result
(** Decide satisfiability of the clause database, under the
    [assumptions] literals if given.  Assumptions are decided (in
    order) at the first decision levels and backtracking past them
    re-establishes them, so they hold in any [Sat] answer but leave no
    permanent trace: a later call is free to assume differently.  When
    the database is satisfiable but contradicts the assumptions, the
    answer is [Unsat] and {!unsat_core} reports a subset of the
    assumptions that is jointly infeasible (final-conflict analysis).

    [final_check s] is invoked on every full propositional assignment.
    Returning [[]] accepts the assignment ({!solve} answers [Sat]);
    returning conflict clauses (each must be false under the current
    assignment) forces the search to continue.

    [partial_check s] is invoked every [partial_interval] decisions on
    the current {e partial} assignment (after propagation); any conflict
    clause over currently-assigned literals prunes the search early.

    [on_backtrack n] fires whenever the trail is truncated to length
    [n] (backjumps and restarts), letting theory solvers pop their
    assertion stacks in lock step with the trail. *)

val unsat_core : t -> int list
(** After an [Unsat] answer from {!solve} with assumptions: the subset
    of the assumption literals whose conjunction is refuted by the
    clause database (it includes the assumption found false).  Empty
    when the database alone is unsatisfiable. *)

val value_var : t -> int -> bool
(** Value of a variable in the current (full) assignment.  Meaningful
    after [Sat], or inside a [final_check] callback. *)

val value_lit : t -> int -> bool

val var_assigned : t -> int -> bool
(** Whether the variable is assigned in the current partial assignment
    (for use inside [partial_check]). *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_clauses : t -> int

val num_restarts : t -> int
(** Restarts performed, accumulated over every {!solve} call. *)

val num_ema_restarts : t -> int
(** Restarts triggered by the {!Ema_lbd} adaptive condition (a subset
    of {!num_restarts}). *)

val num_blocked_restarts : t -> int
(** Adaptive restarts suppressed by the trail-size blocking heuristic
    ({!Ema_lbd} mode only). *)

val num_rephases : t -> int
(** Phase-schedule resets performed (strategy [rephase] only). *)

val num_imported : t -> int
(** Clauses integrated via {!import_clause}. *)

val num_exported : t -> int
(** Clauses handed out by {!drain_exports}. *)

val num_learnts : t -> int
(** Learnt clauses created (conflict analysis and integrated theory
    lemmas), accumulated over every {!solve} call; deletion by the
    clause-database reduction does not decrease it. *)

val num_preprocessed : t -> int
(** Clauses removed or strengthened by the level-0 preprocessing pass
    ({!set_simplify}), accumulated over every {!solve} call. *)

val num_lbd_deletions : t -> int
(** Learnt clauses deleted by LBD-scored database reduction
    ({!set_lbd}), accumulated over every {!solve} call. *)

val num_early_sats : t -> int
(** [Sat] answers concluded on a partial assignment by early-SAT
    detection ({!set_early_sat}). *)

val num_compactions : t -> int
(** Arena compactions performed (live clauses copied to a fresh arena
    and every cref relocated), accumulated over the solver's life. *)

val arena_words : t -> int
(** Words currently used in the clause arena, including dead slices not
    yet reclaimed by compaction.  Multiply by [Sys.word_size / 8] for
    bytes. *)

val arena_wasted_words : t -> int
(** Words of the arena occupied by deleted or shrunk-away slices
    (reclaimed by the next compaction). *)

val minor_words : t -> float
(** Minor-heap words allocated inside {!solve} calls, cumulative
    ([Gc.minor_words] deltas).  The observable behind the
    allocation-free-propagation claim: at steady state this grows by
    roughly zero words per propagation. *)

val trail_size : t -> int
(** Current length of the assignment trail (theory-integration use). *)

val trail_lit : t -> int -> int
(** The [i]-th literal on the trail, in assignment order. *)
