module Rat = Exactnum.Rat

type int_atom = { ix : int; iy : int; ik : int }
type rat_atom = { rcoeffs : (int * Rat.t) list; rbound : Rat.t; rstrict : bool }

(* A "bit" during bit-blasting: either a SAT literal or a constant. *)
type bit = Blit of int | Bconst of bool

type t = {
  sat : Sat.t;
  true_lit : int;
  pg : bool;
      (* polarity-aware (Plaisted–Greenbaum) conversion: emit only the
         implication direction(s) a definition is actually used under *)
  lit_memo : (int, int) Hashtbl.t;
  pol_done : (int, int) Hashtbl.t;
      (* term id -> bitmask of emitted directions (1 = positive
         occurrence covered, 2 = negative); only And/Or definitions are
         polarity-split, everything else is recorded as 3 *)
  int_vars : (int, int) Hashtbl.t;
  mutable int_var_list : (Term.t * int) list;
  mutable n_int_vars : int;
  rat_vars : (int, int) Hashtbl.t;
  mutable rat_var_list : (Term.t * int) list;
  mutable n_rat_vars : int;
  int_atom_tbl : (int * int * int, int) Hashtbl.t;
  mutable int_atom_list : (int * int_atom) list;
  rat_atom_tbl : (string, int) Hashtbl.t;
  mutable rat_atom_list : (int * rat_atom) list;
  bv_memo : (int, bit array) Hashtbl.t;
  mutable bv_var_list : (Term.t * int array) list;
  mutable bool_var_list : (Term.t * int) list;
}

let create ?(pg = true) ?(proof = false) () =
  let sat = Sat.create () in
  (* recording must start before the [true_lit] unit below: the trace's
     active set has to cover every clause the solver ever saw *)
  if proof then Sat.enable_proof sat;
  let tv = Sat.new_var sat in
  let true_lit = Sat.pos_lit tv in
  Sat.add_clause sat [ true_lit ];
  {
    sat;
    true_lit;
    pg;
    lit_memo = Hashtbl.create 4096;
    pol_done = Hashtbl.create 4096;
    int_vars = Hashtbl.create 256;
    int_var_list = [];
    n_int_vars = 0;
    rat_vars = Hashtbl.create 64;
    rat_var_list = [];
    n_rat_vars = 0;
    int_atom_tbl = Hashtbl.create 1024;
    int_atom_list = [];
    rat_atom_tbl = Hashtbl.create 64;
    rat_atom_list = [];
    bv_memo = Hashtbl.create 64;
    bv_var_list = [];
    bool_var_list = [];
  }

let sat c = c.sat
let num_int_vars c = c.n_int_vars
let num_rat_vars c = c.n_rat_vars
let int_atoms c = c.int_atom_list
let rat_atoms c = c.rat_atom_list
let int_var_terms c = c.int_var_list
let rat_var_terms c = c.rat_var_list
let bool_var_lits c = c.bool_var_list
let bv_var_bits c = c.bv_var_list

let false_lit c = Sat.lit_neg c.true_lit
let fresh_lit c = Sat.pos_lit (Sat.new_var c.sat)

let int_var_index c (t : Term.t) =
  match Hashtbl.find_opt c.int_vars (Term.id t) with
  | Some i -> i
  | None ->
    let i = c.n_int_vars in
    c.n_int_vars <- i + 1;
    Hashtbl.add c.int_vars (Term.id t) i;
    c.int_var_list <- (t, i) :: c.int_var_list;
    i

let rat_var_index c (t : Term.t) =
  match Hashtbl.find_opt c.rat_vars (Term.id t) with
  | Some i -> i
  | None ->
    let i = c.n_rat_vars in
    c.n_rat_vars <- i + 1;
    Hashtbl.add c.rat_vars (Term.id t) i;
    c.rat_var_list <- (t, i) :: c.rat_var_list;
    i

(* -- small gate constructors over bits ------------------------------------- *)

let bit_neg c b =
  ignore c;
  match b with Bconst v -> Bconst (not v) | Blit l -> Blit (Sat.lit_neg l)

let bit_and2 c a b =
  match (a, b) with
  | Bconst false, _ | _, Bconst false -> Bconst false
  | Bconst true, x | x, Bconst true -> x
  | Blit la, Blit lb ->
    if la = lb then a
    else if la = Sat.lit_neg lb then Bconst false
    else begin
      let v = fresh_lit c in
      Sat.add_clause c.sat [ Sat.lit_neg v; la ];
      Sat.add_clause c.sat [ Sat.lit_neg v; lb ];
      Sat.add_clause c.sat [ v; Sat.lit_neg la; Sat.lit_neg lb ];
      Blit v
    end

let bit_or2 c a b = bit_neg c (bit_and2 c (bit_neg c a) (bit_neg c b))

let bit_iff2 c a b =
  match (a, b) with
  | Bconst x, Bconst y -> Bconst (x = y)
  | Bconst true, x | x, Bconst true -> x
  | Bconst false, x | x, Bconst false -> bit_neg c x
  | Blit la, Blit lb ->
    if la = lb then Bconst true
    else if la = Sat.lit_neg lb then Bconst false
    else begin
      let v = fresh_lit c in
      Sat.add_clause c.sat [ Sat.lit_neg v; Sat.lit_neg la; lb ];
      Sat.add_clause c.sat [ Sat.lit_neg v; la; Sat.lit_neg lb ];
      Sat.add_clause c.sat [ v; la; lb ];
      Sat.add_clause c.sat [ v; Sat.lit_neg la; Sat.lit_neg lb ];
      Blit v
    end

let bit_to_lit c = function Bconst true -> c.true_lit | Bconst false -> false_lit c | Blit l -> l

(* -- bit-blasting ------------------------------------------------------------ *)

let rec bits_of c (t : Term.t) =
  match Hashtbl.find_opt c.bv_memo (Term.id t) with
  | Some bits -> bits
  | None ->
    let width = match Term.sort t with Sort.Bitvec w -> w | _ -> invalid_arg "Cnf.bits_of" in
    let bits =
      match t.node with
      | Term.Var _ ->
        let lits = Array.init width (fun _ -> fresh_lit c) in
        c.bv_var_list <- (t, lits) :: c.bv_var_list;
        Array.map (fun l -> Blit l) lits
      | Term.Bv_const v -> Array.init width (fun i -> Bconst ((v lsr i) land 1 = 1))
      | Term.Bv_and (a, b) ->
        let ba = bits_of c a and bb = bits_of c b in
        Array.init width (fun i -> bit_and2 c ba.(i) bb.(i))
      | _ -> invalid_arg "Cnf.bits_of: unsupported bit-vector term"
    in
    Hashtbl.add c.bv_memo (Term.id t) bits;
    bits

let bv_eq_lit c a b =
  let ba = bits_of c a and bb = bits_of c b in
  let conj = ref (Bconst true) in
  Array.iteri (fun i abit -> conj := bit_and2 c !conj (bit_iff2 c abit bb.(i))) ba;
  bit_to_lit c !conj

let bv_ule_lit c a b =
  let ba = bits_of c a and bb = bits_of c b in
  (* From the least significant bit up: le_i over bits 0..i. *)
  let le = ref (Bconst true) in
  Array.iteri
    (fun i abit ->
      let lt = bit_and2 c (bit_neg c abit) bb.(i) in
      let eq = bit_iff2 c abit bb.(i) in
      le := bit_or2 c lt (bit_and2 c eq !le))
    ba;
  bit_to_lit c !le

(* -- theory atoms ------------------------------------------------------------- *)

let register_int_atom c ix iy ik =
  match Hashtbl.find_opt c.int_atom_tbl (ix, iy, ik) with
  | Some v -> v
  | None ->
    let v = Sat.new_var c.sat in
    Hashtbl.add c.int_atom_tbl (ix, iy, ik) v;
    c.int_atom_list <- (v, { ix; iy; ik }) :: c.int_atom_list;
    v

(* Canonical orientation: the smaller variable index plays the role of x.
   An atom in the wrong orientation is encoded as the negation of its
   complement [y - x <= -k-1]. *)
let int_atom_lit c ix iy ik =
  if iy >= 0 && (ix < 0 || ix > iy) then
    Sat.neg_lit (register_int_atom c iy ix (-ik - 1))
  else Sat.pos_lit (register_int_atom c ix iy ik)

let rat_atom_key coeffs bound strict =
  let b = Buffer.create 64 in
  List.iter
    (fun (v, q) ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ':';
      Buffer.add_string b (Rat.to_string q);
      Buffer.add_char b ';')
    coeffs;
  Buffer.add_string b (Rat.to_string bound);
  if strict then Buffer.add_char b '<';
  Buffer.contents b

let rat_atom_lit c coeffs bound strict =
  let key = rat_atom_key coeffs bound strict in
  match Hashtbl.find_opt c.rat_atom_tbl key with
  | Some v -> Sat.pos_lit v
  | None ->
    let v = Sat.new_var c.sat in
    Hashtbl.add c.rat_atom_tbl key v;
    c.rat_atom_list <- (v, { rcoeffs = coeffs; rbound = bound; rstrict = strict }) :: c.rat_atom_list;
    Sat.pos_lit v

let arith_atom_lit c ~strict a b =
  match Linexp.classify_leq ~strict a b with
  | Linexp.Trivial true -> c.true_lit
  | Linexp.Trivial false -> false_lit c
  | Linexp.Idl { x; y; k } ->
    let ix = match x with Some t -> int_var_index c t | None -> -1 in
    let iy = match y with Some t -> int_var_index c t | None -> -1 in
    int_atom_lit c ix iy k
  | Linexp.Lra { coeffs; bound } ->
    let coeffs = List.map (fun (t, q) -> (rat_var_index c t, q)) coeffs in
    rat_atom_lit c coeffs bound strict

(* -- Tseitin ----------------------------------------------------------------- *)

(* Polarity masks: bit 1 set = the literal occurs positively somewhere
   (clauses [def -> parts] are needed), bit 2 = negatively ([parts ->
   def]).  Plaisted–Greenbaum: emitting only the directions actually
   used preserves equisatisfiability, and — because every model of the
   reduced encoding satisfies the original formula — models restricted
   to the original (non-auxiliary) variables stay exact.  Only And/Or
   definitions are split; atoms, variables and bit-blasted gates are
   full equivalences. *)

let flip_mask m = ((m land 1) lsl 1) lor ((m lsr 1) land 1)

let rec lit_of_pol c mask (t : Term.t) =
  let mask = if c.pg then mask else 3 in
  match t.node with
  | Term.Not a -> Sat.lit_neg (lit_of_pol c (flip_mask mask) a)
  | Term.Implies (a, b) -> lit_of_pol c mask (Term.or_ [ Term.not_ a; b ])
  | Term.Iff (a, b) -> lit_of_pol c mask (Term.iff a b)
  | Term.Ite (cond, a, b) -> lit_of_pol c mask (Term.ite cond a b)
  | Term.And _ | Term.Or _ ->
    let v =
      match Hashtbl.find_opt c.lit_memo (Term.id t) with
      | Some l -> l
      | None ->
        let l = fresh_lit c in
        Hashtbl.replace c.lit_memo (Term.id t) l;
        l
    in
    let emitted = try Hashtbl.find c.pol_done (Term.id t) with Not_found -> 0 in
    let missing = mask land lnot emitted in
    if missing <> 0 then begin
      (* record before recursing: the term DAG is acyclic, but a child
         conversion may reference this definition again *)
      Hashtbl.replace c.pol_done (Term.id t) (emitted lor mask);
      emit_dirs c missing t v
    end;
    v
  | _ ->
    (match Hashtbl.find_opt c.lit_memo (Term.id t) with
     | Some l -> l
     | None ->
       let l = build_leaf c t in
       Hashtbl.replace c.lit_memo (Term.id t) l;
       Hashtbl.replace c.pol_done (Term.id t) 3;
       l)

(* In both directions of an And definition the children occur with the
   same polarity as the definition itself (positively in the [¬v ∨ l_i]
   clauses, negatively in [v ∨ ¬l_1 ∨ …]); dually for Or.  So the
   missing mask propagates to the children unchanged. *)
and emit_dirs c missing (t : Term.t) v =
  match t.node with
  | Term.And conj ->
    let lits = List.map (lit_of_pol c missing) conj in
    if missing land 1 <> 0 then
      List.iter (fun l -> Sat.add_clause c.sat [ Sat.lit_neg v; l ]) lits;
    if missing land 2 <> 0 then Sat.add_clause c.sat (v :: List.map Sat.lit_neg lits)
  | Term.Or disj ->
    let lits = List.map (lit_of_pol c missing) disj in
    if missing land 2 <> 0 then
      List.iter (fun l -> Sat.add_clause c.sat [ v; Sat.lit_neg l ]) lits;
    if missing land 1 <> 0 then Sat.add_clause c.sat (Sat.lit_neg v :: lits)
  | _ -> assert false

and build_leaf c (t : Term.t) =
  match t.node with
  | Term.True -> c.true_lit
  | Term.False -> false_lit c
  | Term.Var _ ->
    if not (Sort.equal (Term.sort t) Sort.Bool) then
      invalid_arg "Cnf.lit_of: non-boolean variable in boolean position";
    let l = fresh_lit c in
    c.bool_var_list <- (t, l) :: c.bool_var_list;
    l
  | Term.At_most (k, ts) -> at_most_lit c k ts
  | Term.Leq (a, b) -> arith_atom_lit c ~strict:false a b
  | Term.Lt (a, b) -> arith_atom_lit c ~strict:true a b
  | Term.Eq (a, b) ->
    (match Term.sort a with
     | Sort.Bitvec _ -> bv_eq_lit c a b
     | _ -> invalid_arg "Cnf.lit_of: unexpected equality node")
  | Term.Bv_ule (a, b) -> bv_ule_lit c a b
  | Term.Not _ | Term.And _ | Term.Or _ | Term.Implies _ | Term.Iff _ | Term.Ite _ ->
    assert false
  | Term.Int_const _ | Term.Rat_const _ | Term.Add _ | Term.Sub _ | Term.Scale _
  | Term.Bv_const _ | Term.Bv_and _ ->
    invalid_arg "Cnf.lit_of: arithmetic term in boolean position"

(* Sequential counter: s.(j) after processing i inputs means "at least
   j+1 of the first i inputs are true"; we track at most k+1 registers
   and return the negation of the overflow register.  The gates are full
   equivalences, so the result is sound under both polarities. *)
and at_most_lit c k ts =
  let inputs = List.map (fun t -> Blit (lit_of_pol c 3 t)) ts in
  let regs = Array.make (k + 1) (Bconst false) in
  List.iter
    (fun x ->
      for j = k downto 1 do
        regs.(j) <- bit_or2 c regs.(j) (bit_and2 c x regs.(j - 1))
      done;
      regs.(0) <- bit_or2 c regs.(0) x)
    inputs;
  bit_to_lit c (bit_neg c regs.(k))

(* The public conversion covers both directions: callers may use the
   literal under either polarity afterwards (e.g. as a solve-time
   assumption or a retraction unit). *)
let lit_of c t = lit_of_pol c 3 t

let rec assert_term c (t : Term.t) =
  match t.node with
  | Term.True -> ()
  | Term.False -> Sat.add_clause c.sat []
  | Term.And conj -> List.iter (assert_term c) conj
  | Term.Or disj -> Sat.add_clause c.sat (List.map (lit_of_pol c 1) disj)
  | _ -> Sat.add_clause c.sat [ lit_of_pol c 1 t ]

let assert_implied c ~guard t =
  (* The guard is negated here but later assumed positively (activation)
     and possibly retired by a unit [¬g]: convert it under both
     polarities.  The asserted body occurs positively only. *)
  let g = Sat.lit_neg (lit_of c guard) in
  let rec go (t : Term.t) =
    match t.node with
    | Term.True -> ()
    | Term.And conj -> List.iter go conj
    | Term.Or disj -> Sat.add_clause c.sat (g :: List.map (lit_of_pol c 1) disj)
    | _ -> Sat.add_clause c.sat [ g; lit_of_pol c 1 t ]
  in
  go t
