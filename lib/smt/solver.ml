type t = {
  cnf : Cnf.t;
  incremental : bool;
  mutable theory_rounds : int;
  mutable checks : int;
  mutable last_core : Term.t list;
}

type result = Sat of Model.t | Unsat

type strategy = Sat.strategy = {
  var_decay : float;
  restart_base : int;
  default_phase : bool;
}

let default_strategy = Sat.default_strategy

exception Canceled = Sat.Canceled

type stats = {
  sat_vars : int;
  sat_clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned_clauses : int;
  theory_rounds : int;
  checks : int;
}

let create ?(incremental = false) ?strategy () =
  let s = { cnf = Cnf.create (); incremental; theory_rounds = 0; checks = 0; last_core = [] } in
  (match strategy with None -> () | Some st -> Sat.set_strategy (Cnf.sat s.cnf) st);
  s

let set_stop s f = Sat.set_stop (Cnf.sat s.cnf) f

let assert_term s term = Cnf.assert_term s.cnf term
let assert_implied s ~guard term = Cnf.assert_implied s.cnf ~guard term
let unsat_core s = s.last_core

let check ?(assumptions = []) s =
  if (not s.incremental) && s.checks > 0 then
    invalid_arg
      "Solver.check: single-shot solver already used (its theory state is stale); create the \
       solver with ~incremental:true to run several checks against one formula";
  s.checks <- s.checks + 1;
  s.last_core <- [];
  let c = s.cnf in
  (* Convert assumption terms first: conversion may allocate variables
     and clauses, which must precede the theory tables built below. *)
  let assumption_lits = List.map (fun t -> (Cnf.lit_of c t, t)) assumptions in
  let sat = Cnf.sat c in
  (* The theory solvers are rebuilt on every check, sized to the atoms
     registered so far: terms asserted between checks may add theory
     variables and atoms.  Amortization lives in the SAT core (clause
     database, learnt clauses, activities) and in the CNF cache. *)
  let zero = Cnf.num_int_vars c in
  let rat_atoms = Array.of_list (Cnf.rat_atoms c) in
  let simplex =
    Simplex.create ~nvars:(Cnf.num_rat_vars c)
      (Array.map
         (fun ((_, a) : int * Cnf.rat_atom) : Simplex.atom ->
           { coeffs = a.rcoeffs; bound = a.rbound })
         rat_atoms)
  in
  (* dense var -> difference atom table *)
  let atom_of_var = Array.make (max (Sat.nvars sat) 1) None in
  List.iter
    (fun ((v, a) : int * Cnf.int_atom) -> atom_of_var.(v) <- Some a)
    (Cnf.int_atoms c);
  let idl = Idl_inc.create ~nvars:(zero + 1) in
  let theory_pos = ref 0 in
  let int_model = ref [||] in
  let rat_model = ref [||] in
  (* Process trail entries [!theory_pos, trail_size): assert difference
     atoms incrementally; a failed assertion yields a conflict clause. *)
  let process_new sat =
    let size = Sat.trail_size sat in
    let conflict = ref None in
    while !conflict = None && !theory_pos < size do
      let i = !theory_pos in
      let lit = Sat.trail_lit sat i in
      let v = Sat.lit_var lit in
      (match atom_of_var.(v) with
       | None -> ()
       | Some a ->
         let x = if a.Cnf.ix < 0 then zero else a.Cnf.ix in
         let y = if a.Cnf.iy < 0 then zero else a.Cnf.iy in
         let constr =
           if Sat.lit_sign lit then { Idl_inc.x; y; k = a.Cnf.ik; tag = Sat.pos_lit v }
           else { Idl_inc.x = y; y = x; k = -a.Cnf.ik - 1; tag = Sat.neg_lit v }
         in
         (match Idl_inc.assert_constr idl ~trail_pos:i constr with
          | Ok () -> ()
          | Error tags ->
            s.theory_rounds <- s.theory_rounds + 1;
            conflict := Some (List.map Sat.lit_neg tags)));
      if !conflict = None then incr theory_pos
    done;
    !conflict
  in
  let simplex_check sat ~partial =
    if Array.length rat_atoms = 0 then None
    else begin
      let assertions = ref [] in
      Array.iteri
        (fun i ((v, a) : int * Cnf.rat_atom) ->
          if (not partial) || Sat.var_assigned sat v then
            assertions := (i, Sat.value_var sat v, a.rstrict) :: !assertions)
        rat_atoms;
      match Simplex.check simplex ~assertions:!assertions with
      | Error idxs ->
        s.theory_rounds <- s.theory_rounds + 1;
        Some
          (List.map
             (fun i ->
               let v, _ = rat_atoms.(i) in
               if Sat.value_var sat v then Sat.neg_lit v else Sat.pos_lit v)
             idxs)
      | Ok m ->
        if not partial then rat_model := m;
        None
    end
  in
  let partial_calls = ref 0 in
  let partial_check sat =
    match process_new sat with
    | Some clause -> [ clause ]
    | None ->
      incr partial_calls;
      if Array.length rat_atoms > 0 && !partial_calls mod 64 = 0 then begin
        match simplex_check sat ~partial:true with Some cl -> [ cl ] | None -> []
      end
      else []
  in
  let final_check sat =
    match process_new sat with
    | Some clause -> [ clause ]
    | None ->
      (match simplex_check sat ~partial:false with
       | Some cl -> [ cl ]
       | None ->
         int_model := Idl_inc.model idl;
         [])
  in
  let on_backtrack n =
    Idl_inc.backtrack idl ~trail_size:n;
    if !theory_pos > n then theory_pos := n
  in
  match
    Sat.solve
      ~assumptions:(List.map fst assumption_lits)
      ~final_check ~partial_check ~partial_interval:1 ~on_backtrack sat
  with
  | Sat.Unsat ->
    let core = Sat.unsat_core sat in
    s.last_core <-
      List.filter_map
        (fun (l, t) -> if List.mem l core then Some t else None)
        assumption_lits;
    Unsat
  | Sat.Sat ->
    let bools = List.map (fun (t, l) -> (t, Sat.value_lit sat l)) (Cnf.bool_var_lits c) in
    let dist = !int_model in
    let base = if Array.length dist > zero then dist.(zero) else 0 in
    let ints =
      List.map
        (fun (t, i) -> (t, (if i < Array.length dist then dist.(i) else 0) - base))
        (Cnf.int_var_terms c)
    in
    let rats =
      List.map
        (fun (t, i) ->
          (t, if i < Array.length !rat_model then !rat_model.(i) else Exactnum.Rat.zero))
        (Cnf.rat_var_terms c)
    in
    let bvs =
      List.map
        (fun (t, bits) ->
          let v = ref 0 in
          Array.iteri (fun i l -> if Sat.value_lit sat l then v := !v lor (1 lsl i)) bits;
          (t, !v))
        (Cnf.bv_var_bits c)
    in
    Sat (Model.create ~bools ~ints ~rats ~bvs)

let check_term term =
  let s = create () in
  assert_term s term;
  check s

let stats s =
  let sat = Cnf.sat s.cnf in
  {
    sat_vars = Sat.nvars sat;
    sat_clauses = Sat.num_clauses sat;
    conflicts = Sat.num_conflicts sat;
    decisions = Sat.num_decisions sat;
    propagations = Sat.num_propagations sat;
    restarts = Sat.num_restarts sat;
    learned_clauses = Sat.num_learnts sat;
    theory_rounds = s.theory_rounds;
    checks = s.checks;
  }
