type features = {
  pg_cnf : bool;
  preprocess : bool;
  theory_prop : bool;
  lbd : bool;
}

let default_features = { pg_cnf = true; preprocess = true; theory_prop = true; lbd = true }
let no_features = { pg_cnf = false; preprocess = false; theory_prop = false; lbd = false }

(* Theory solvers and atom tables built for a given snapshot of the
   CNF's theory registries.  In incremental mode the snapshot is reused
   across checks as long as no new atoms or theory variables appeared
   (the common case for a session asserting purely propositional
   activation machinery between checks); any growth rebuilds it. *)
type tstate = {
  zero : int;  (* the distance-graph node playing "constant 0" *)
  idl : Idl_inc.t;
  simplex : Simplex.t;
  rat_atoms : (int * Cnf.rat_atom) array;
  atom_of_var : Cnf.int_atom option array;
  n_int_atoms : int;
  n_rat_atoms : int;
  n_int_vars : int;
  n_rat_vars : int;
}

type t = {
  cnf : Cnf.t;
  incremental : bool;
  features : features;
  certify : bool;
  mutable theory_rounds : int;
  mutable theory_props : int;
  mutable checks : int;
  mutable last_core : Term.t list;
  mutable tcache : tstate option;
  (* certification bookkeeping (recorded only when [certify]): the
     original formula as terms, for independent model evaluation *)
  mutable asserted : Term.t list;
  mutable implied : (Term.t * Term.t) list;
  mutable last_assumptions : (int * Term.t) list;
}

type result = Sat of Model.t | Unsat

type restart_mode = Sat.restart_mode = Luby | Ema_lbd

type strategy = Sat.strategy = {
  var_decay : float;
  restart_base : int;
  default_phase : bool;
  restart_mode : restart_mode;
  rephase : bool;
}

let default_strategy = Sat.default_strategy

exception Canceled = Sat.Canceled

type stats = {
  sat_vars : int;
  sat_clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  ema_restarts : int;
  blocked_restarts : int;
  rephases : int;
  clauses_imported : int;
  clauses_exported : int;
  learned_clauses : int;
  theory_rounds : int;
  theory_propagations : int;
  preprocessed_clauses : int;
  lbd_reductions : int;
  checks : int;
  arena_words : int;
  arena_compactions : int;
  minor_words : float;
}

let create ?(incremental = false) ?(certify = false) ?strategy ?(features = default_features) () =
  let cnf = Cnf.create ~pg:features.pg_cnf ~proof:certify () in
  let sat = Cnf.sat cnf in
  (match strategy with None -> () | Some st -> Sat.set_strategy sat st);
  Sat.set_simplify sat features.preprocess;
  (* Pure-literal elimination is unsound across incremental checks: a
     later assertion or assumption may reintroduce the missing polarity
     of an eliminated variable.  Single-shot solving only. *)
  Sat.set_pure_elim sat (features.preprocess && not incremental);
  Sat.set_lbd sat features.lbd;
  Sat.set_early_sat sat features.theory_prop;
  {
    cnf;
    incremental;
    features;
    certify;
    theory_rounds = 0;
    theory_props = 0;
    checks = 0;
    last_core = [];
    tcache = None;
    asserted = [];
    implied = [];
    last_assumptions = [];
  }

let set_stop s f = Sat.set_stop (Cnf.sat s.cnf) f
let set_on_restart s f = Sat.set_on_restart (Cnf.sat s.cnf) f

let enable_sharing ?(max_lbd = 6) ?(max_len = 30) s =
  Sat.set_share (Cnf.sat s.cnf) ~max_lbd ~max_len

let drain_exported s = Sat.drain_exports (Cnf.sat s.cnf)
let import_clause s lits = Sat.import_clause (Cnf.sat s.cnf) lits

let assert_term s term =
  if s.certify then s.asserted <- term :: s.asserted;
  Cnf.assert_term s.cnf term

let assert_implied s ~guard term =
  if s.certify then s.implied <- (guard, term) :: s.implied;
  Cnf.assert_implied s.cnf ~guard term

let unsat_core s = s.last_core

(* -- certification accessors ------------------------------------------------ *)

let certify_enabled s = s.certify
let proof s = Sat.proof_steps (Cnf.sat s.cnf)
let proof_length s = Sat.proof_length (Cnf.sat s.cnf)
let asserted_terms s = List.rev s.asserted
let implied_terms s = List.rev s.implied
let last_assumption_lits s = List.map fst s.last_assumptions
let last_assumption_terms s = List.map snd s.last_assumptions
let int_atom_table s = Cnf.int_atoms s.cnf
let rat_atom_table s = Cnf.rat_atoms s.cnf
let num_int_vars s = Cnf.num_int_vars s.cnf
let num_rat_vars s = Cnf.num_rat_vars s.cnf

(* Build (or reuse) the theory state for the atoms registered so far. *)
let theory_state s =
  let c = s.cnf in
  let sat = Cnf.sat c in
  let n_int_atoms = List.length (Cnf.int_atoms c) in
  let n_rat_atoms = List.length (Cnf.rat_atoms c) in
  let n_int_vars = Cnf.num_int_vars c in
  let n_rat_vars = Cnf.num_rat_vars c in
  let reusable =
    match s.tcache with
    | Some ts ->
      s.incremental && ts.n_int_atoms = n_int_atoms && ts.n_rat_atoms = n_rat_atoms
      && ts.n_int_vars = n_int_vars && ts.n_rat_vars = n_rat_vars
    | None -> false
  in
  match s.tcache with
  | Some ts when reusable ->
    (* same atoms as last check: keep the solvers, just clear the IDL
       assertion stack (positions are per-check trail indices) *)
    Idl_inc.backtrack ts.idl ~trail_size:0;
    ts
  | _ ->
    let zero = n_int_vars in
    let rat_atoms = Array.of_list (Cnf.rat_atoms c) in
    let simplex =
      Simplex.create ~nvars:n_rat_vars
        (Array.map
           (fun ((_, a) : int * Cnf.rat_atom) : Simplex.atom ->
             { coeffs = a.rcoeffs; bound = a.rbound })
           rat_atoms)
    in
    let atom_of_var = Array.make (max (Sat.nvars sat) 1) None in
    List.iter
      (fun ((v, a) : int * Cnf.int_atom) -> atom_of_var.(v) <- Some a)
      (Cnf.int_atoms c);
    let idl = Idl_inc.create ~nvars:(zero + 1) in
    if s.features.theory_prop then
      List.iter
        (fun ((v, a) : int * Cnf.int_atom) ->
          let x = if a.Cnf.ix < 0 then zero else a.Cnf.ix in
          let y = if a.Cnf.iy < 0 then zero else a.Cnf.iy in
          Idl_inc.register_atom idl ~x ~y ~k:a.Cnf.ik ~var:v)
        (Cnf.int_atoms c);
    let ts =
      {
        zero;
        idl;
        simplex;
        rat_atoms;
        atom_of_var;
        n_int_atoms;
        n_rat_atoms;
        n_int_vars;
        n_rat_vars;
      }
    in
    s.tcache <- Some ts;
    ts

let check ?(assumptions = []) s =
  if (not s.incremental) && s.checks > 0 then
    invalid_arg
      "Solver.check: single-shot solver already used (its theory state is stale); create the \
       solver with ~incremental:true to run several checks against one formula";
  s.checks <- s.checks + 1;
  s.last_core <- [];
  let c = s.cnf in
  (* Convert assumption terms first: conversion may allocate variables
     and clauses, which must precede the theory tables built below. *)
  let assumption_lits = List.map (fun t -> (Cnf.lit_of c t, t)) assumptions in
  s.last_assumptions <- assumption_lits;
  let sat = Cnf.sat c in
  let ts = theory_state s in
  let zero = ts.zero in
  let idl = ts.idl in
  let rat_atoms = ts.rat_atoms in
  (* [atom_of_var] was sized when the cache was built; SAT variables
     allocated since (non-atoms, or the check would have rebuilt) fall
     off its end. *)
  let atom_of v = if v < Array.length ts.atom_of_var then ts.atom_of_var.(v) else None in
  (* Theory atoms must survive pure-literal elimination (they are
     constrained by the theory, not only the clauses) and gate early-SAT
     detection (an unassigned atom could still be refuted). *)
  List.iter
    (fun ((v, _) : int * Cnf.int_atom) ->
      Sat.freeze_var sat v;
      Sat.mark_important sat v)
    (Cnf.int_atoms c);
  Array.iter
    (fun ((v, _) : int * Cnf.rat_atom) ->
      Sat.freeze_var sat v;
      Sat.mark_important sat v)
    rat_atoms;
  List.iter (fun (l, _) -> Sat.freeze_var sat (Sat.lit_var l)) assumption_lits;
  let theory_pos = ref 0 in
  let int_model = ref [||] in
  let rat_model = ref [||] in
  (* Ladder lemmas discovered while asserting atoms, flushed through the
     next partial/final check return (the SAT core integrates them as
     asserting learnt clauses, i.e. theory propagations with the lemma
     as reason). *)
  let pending = ref [] in
  (* Process trail entries [!theory_pos, trail_size): assert difference
     atoms incrementally; a failed assertion yields a conflict clause. *)
  let process_new sat =
    let size = Sat.trail_size sat in
    let conflict = ref None in
    let running = ref true in
    while !running && !theory_pos < size do
      let i = !theory_pos in
      let lit = Sat.trail_lit sat i in
      let v = Sat.lit_var lit in
      (match atom_of v with
       | None -> ()
       | Some a ->
         let x = if a.Cnf.ix < 0 then zero else a.Cnf.ix in
         let y = if a.Cnf.iy < 0 then zero else a.Cnf.iy in
         let res =
           if Sat.lit_sign lit then
             Idl_inc.assert_constr idl ~trail_pos:i ~x ~y ~k:a.Cnf.ik ~tag:(Sat.pos_lit v)
           else
             Idl_inc.assert_constr idl ~trail_pos:i ~x:y ~y:x ~k:(-a.Cnf.ik - 1)
               ~tag:(Sat.neg_lit v)
         in
         (match res with
          | None ->
            if s.features.theory_prop then
              (* Ladder propagation: x-y<=k true forces every weaker
                 bound on the pair; false forces every stronger bound
                 false.  Emitting the binary lemma towards the adjacent
                 unassigned rung lets unit propagation (with the lemma
                 as reason) do what would otherwise each be a full
                 theory conflict; adjacency composes, so the whole
                 ladder is eventually covered. *)
              if Sat.lit_sign lit then begin
                let v' = Idl_inc.ladder_above idl ~var:v in
                if v' >= 0 && not (Sat.var_assigned sat v') then begin
                  pending := [ Sat.neg_lit v; Sat.pos_lit v' ] :: !pending;
                  s.theory_props <- s.theory_props + 1
                end
              end
              else begin
                let v' = Idl_inc.ladder_below idl ~var:v in
                if v' >= 0 && not (Sat.var_assigned sat v') then begin
                  pending := [ Sat.neg_lit v'; Sat.pos_lit v ] :: !pending;
                  s.theory_props <- s.theory_props + 1
                end
              end
          | Some tags ->
            s.theory_rounds <- s.theory_rounds + 1;
            running := false;
            conflict := Some (List.map Sat.lit_neg tags)));
      if !running then incr theory_pos
    done;
    !conflict
  in
  let simplex_check sat ~partial =
    if Array.length rat_atoms = 0 then None
    else begin
      let assertions = ref [] in
      Array.iteri
        (fun i ((v, a) : int * Cnf.rat_atom) ->
          if (not partial) || Sat.var_assigned sat v then
            assertions := (i, Sat.value_var sat v, a.rstrict) :: !assertions)
        rat_atoms;
      match Simplex.check ts.simplex ~assertions:!assertions with
      | Error idxs ->
        s.theory_rounds <- s.theory_rounds + 1;
        Some
          (List.map
             (fun i ->
               let v, _ = rat_atoms.(i) in
               if Sat.value_var sat v then Sat.neg_lit v else Sat.pos_lit v)
             idxs)
      | Ok m ->
        if not partial then rat_model := m;
        None
    end
  in
  let drain_pending () =
    let lemmas = !pending in
    pending := [];
    lemmas
  in
  let partial_calls = ref 0 in
  let partial_check sat =
    match process_new sat with
    | Some clause -> clause :: drain_pending ()
    | None ->
      incr partial_calls;
      let lemmas = drain_pending () in
      if Array.length rat_atoms > 0 && !partial_calls mod 64 = 0 then begin
        match simplex_check sat ~partial:true with Some cl -> cl :: lemmas | None -> lemmas
      end
      else lemmas
  in
  let final_check sat =
    match process_new sat with
    | Some clause -> clause :: drain_pending ()
    | None ->
      (match drain_pending () with
       | _ :: _ as lemmas -> lemmas
       | [] ->
         (match simplex_check sat ~partial:false with
          | Some cl -> [ cl ]
          | None ->
            int_model := Idl_inc.model idl;
            []))
  in
  let on_backtrack n =
    Idl_inc.backtrack idl ~trail_size:n;
    if !theory_pos > n then theory_pos := n
  in
  match
    Sat.solve
      ~assumptions:(List.map fst assumption_lits)
      ~final_check ~partial_check ~partial_interval:1 ~on_backtrack sat
  with
  | Sat.Unsat ->
    let core = Sat.unsat_core sat in
    s.last_core <-
      List.filter_map
        (fun (l, t) -> if List.mem l core then Some t else None)
        assumption_lits;
    Unsat
  | Sat.Sat ->
    let bools = List.map (fun (t, l) -> (t, Sat.value_lit sat l)) (Cnf.bool_var_lits c) in
    let dist = !int_model in
    let base = if Array.length dist > zero then dist.(zero) else 0 in
    let ints =
      List.map
        (fun (t, i) -> (t, (if i < Array.length dist then dist.(i) else 0) - base))
        (Cnf.int_var_terms c)
    in
    let rats =
      List.map
        (fun (t, i) ->
          (t, if i < Array.length !rat_model then !rat_model.(i) else Exactnum.Rat.zero))
        (Cnf.rat_var_terms c)
    in
    let bvs =
      List.map
        (fun (t, bits) ->
          let v = ref 0 in
          Array.iteri (fun i l -> if Sat.value_lit sat l then v := !v lor (1 lsl i)) bits;
          (t, !v))
        (Cnf.bv_var_bits c)
    in
    Sat (Model.create ~bools ~ints ~rats ~bvs)

let check_term term =
  let s = create () in
  assert_term s term;
  check s

let stats s =
  let sat = Cnf.sat s.cnf in
  {
    sat_vars = Sat.nvars sat;
    sat_clauses = Sat.num_clauses sat;
    conflicts = Sat.num_conflicts sat;
    decisions = Sat.num_decisions sat;
    propagations = Sat.num_propagations sat;
    restarts = Sat.num_restarts sat;
    ema_restarts = Sat.num_ema_restarts sat;
    blocked_restarts = Sat.num_blocked_restarts sat;
    rephases = Sat.num_rephases sat;
    clauses_imported = Sat.num_imported sat;
    clauses_exported = Sat.num_exported sat;
    learned_clauses = Sat.num_learnts sat;
    theory_rounds = s.theory_rounds;
    theory_propagations = s.theory_props;
    preprocessed_clauses = Sat.num_preprocessed sat;
    lbd_reductions = Sat.num_lbd_deletions sat;
    checks = s.checks;
    arena_words = Sat.arena_words sat;
    arena_compactions = Sat.num_compactions sat;
    minor_words = Sat.minor_words sat;
  }
