type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

(* Debug mode: the [unsafe_*] accessors regain bounds checks when the
   environment sets MS_VEC_DEBUG (any value but "0"/""), so a cref or
   watcher-index bug in the SAT core's hot loops fails loudly instead of
   reading garbage.  The flag is read once at module initialization: the
   branch on an immutable bool predicts perfectly and keeps the release
   path identical to a bare [Array.unsafe_get]. *)
let debug =
  match Sys.getenv_opt "MS_VEC_DEBUG" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let size v = v.len
let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let unsafe_get v i =
  if debug && (i < 0 || i >= v.len) then invalid_arg "Vec.unsafe_get (MS_VEC_DEBUG)";
  Array.unsafe_get v.data i

let unsafe_set v i x =
  if debug && (i < 0 || i >= v.len) then invalid_arg "Vec.unsafe_set (MS_VEC_DEBUG)";
  Array.unsafe_set v.data i x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := 2 * !cap
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let blit src spos dst dpos len =
  if len < 0 || spos < 0 || spos + len > src.len || dpos < 0 || dpos > dst.len then
    invalid_arg "Vec.blit";
  ensure_capacity dst (dpos + len);
  Array.blit src.data spos dst.data dpos len;
  if dpos + len > dst.len then dst.len <- dpos + len

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let sort_in_place cmp v =
  let sub = Array.sub v.data 0 v.len in
  Array.sort cmp sub;
  Array.blit sub 0 v.data 0 v.len

let swap_remove v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.swap_remove";
  v.data.(i) <- v.data.(v.len - 1);
  v.len <- v.len - 1;
  v.data.(v.len) <- v.dummy
