(* CDCL with two-watched literals (MiniSat lineage).  Conventions:
   - literal [2*v] is the positive literal of variable [v], [2*v+1] the
     negative one;
   - [assign.(v)] is [0] when unassigned, [1] when true, [-1] when false;
   - a clause's two watched literals sit at positions 0 and 1 of its
     literal slice;
   - [watches.(l)] holds the watchers for literal [l] as a flat int
     vector of (cref, blocker) pairs: when the blocker is true the
     clause is satisfied and its literal slice is never touched
     (cache-friendliness);
   - the implied literal of a reason clause sits at position 0.

   Memory layout.  The clause database is a single growable int array —
   the arena — and a "clause" is an integer offset (a cref) into it.
   The slice at cref [c] is

     arena.(c)     header: size lsl 3 | relocated lsl 2 | deleted lsl 1 | learnt
     arena.(c+1)   activity (integer-scaled), or the forwarding cref
                   while the relocated bit is set mid-compaction
     arena.(c+2)   literal block distance (glue)
     arena.(c+3â€¦)  the literals, watched ones at positions 0 and 1

   Everything that references a clause does so by cref: watcher lists
   are flat (cref, blocker) int pairs, [reason] is an int array
   (-1 = decision/none), and the clause lists are int vectors.  No
   boxed clause records exist, so the propagation inner loop chases no
   pointers and allocates nothing, and "is this clause the recorded
   reason" is integer equality — the physical-equality trap that once
   let [reduce_db] delete locked clauses cannot be expressed.

   Deletion marks the header bit and counts the slice as wasted; when
   enough of the arena is dead, [compact] copies the live slices into a
   fresh arena, leaving a forwarding cref in each old slice, and remaps
   watchers, reasons and the clause lists through it.  Proof [P_delete]
   steps copy the literals out at deletion time, so relocation can
   never orphan a logged step. *)

let header_words = 3

type restart_mode = Luby | Ema_lbd

type strategy = {
  var_decay : float;
  restart_base : int;
  default_phase : bool;
  restart_mode : restart_mode;
  rephase : bool;
}

let default_strategy =
  {
    var_decay = 0.95;
    restart_base = 100;
    default_phase = false;
    restart_mode = Luby;
    rephase = false;
  }

exception Canceled

(* A DRAT-style trace.  The checker keeps an "active set" mirroring the
   solver's clause database clause-for-clause (clauses are compared as
   sorted literal sets, so the solver may log literal arrays in whatever
   order its watches left them):
   - [P_input]  original clause, admitted without justification;
   - [P_rup]    derived clause; checkable by reverse unit propagation
                over the active set (learnt clauses, strengthenings,
                stripped inputs, assumption-core negations; [P_rup [||]]
                is the refutation);
   - [P_lemma]  theory lemma integrated mid-search; justified by
                re-running a standalone theory solver, not by RUP;
   - [P_pure]   pure-literal unit: sound because no active clause
                contains the negation (a RAT step of width 0);
   - [P_delete] removal of a clause currently in the active set. *)
type proof_step =
  | P_input of int array
  | P_rup of int array
  | P_lemma of int array
  | P_pure of int
  | P_delete of int array

type t = {
  mutable nvars : int;
  mutable assign : int array;
  mutable level : int array;
  mutable reason : int array;  (* cref, or -1 for decisions/units *)
  mutable phase : bool array;
  mutable seen : bool array;
  mutable frozen : bool array;
      (* variables pure-literal elimination must never touch: theory
         atoms (constrained outside the clause database) and assumption
         literals (decided by the caller, in either phase) *)
  mutable important : bool array;
      (* variables whose assignment gates early-SAT detection (theory
         atoms): once all of them are assigned and every problem clause
         is satisfied, the remaining variables are don't-cares *)
  mutable activity : float array;
  mutable heap_pos : int array;
  heap : int Vec.t;
  mutable watches : int Vec.t array;  (* flat (cref, blocker) pairs *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* -- the clause arena -- *)
  mutable arena : int array;
  mutable asize : int;  (* words used, including dead slices *)
  mutable awasted : int;  (* words in deleted or shrunk-away slices *)
  mutable compactions : int;
  clauses : int Vec.t;  (* crefs of problem clauses *)
  learnts : int Vec.t;  (* crefs of learnt clauses *)
  mutable ok : bool;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnts : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnts_made : int;
  mutable minor_words : float;
      (* minor-heap words allocated inside [solve] calls, cumulative
         ([Gc.minor_words] deltas): the observable for the
         allocation-free-propagation claim *)
  mutable core : int list;
      (* after an Unsat answer under assumptions: the subset of the
         assumption literals whose conjunction the clause database
         refutes (empty when the database alone is unsatisfiable) *)
  mutable on_backtrack : int -> unit;
      (* invoked from cancel_until with the new trail size, so theory
         solvers can pop their assertion stacks in lock step *)
  mutable strategy : strategy;
  mutable stop : (unit -> bool) option;
      (* cooperative cancellation: polled periodically during solve *)
  (* -- optimization switches (all off by default: the raw SAT API keeps
        its historical behavior; Smt.Solver flips them per feature) -- *)
  mutable simplify_enabled : bool;
  mutable pure_elim_enabled : bool;
  mutable lbd_enabled : bool;
  mutable early_sat_enabled : bool;
  (* -- preprocessing / early-SAT bookkeeping -- *)
  mutable n_important : int;
  mutable important_assigned : int;
  mutable simp_clauses : int;  (* database size at the last simplify pass *)
  mutable simp_trail : int;  (* root trail size at the last simplify pass *)
  mutable preprocessed : int;  (* clauses removed or strengthened at level 0 *)
  mutable lbd_deletions : int;  (* learnt clauses dropped by LBD-scored reduction *)
  mutable early_sats : int;  (* Sat answers concluded on a partial assignment *)
  mutable scan_backoff : int;  (* conflicts+decisions to wait after a failed scan *)
  mutable next_scan_work : int;
  mutable scan_cursor : int;
      (* index (into [clauses]) of the clause that failed the last
         early-SAT scan: while it stays unsatisfied, re-checking just it
         rejects the next scan in O(clause length) instead of O(db) *)
  (* -- proof logging -- *)
  mutable proof_on : bool;
  mutable proof_rev : proof_step list;  (* newest first *)
  mutable proof_len : int;
  (* -- adaptive restarts (Ema_lbd mode) and rephasing -- *)
  mutable lbd_sum : float;
      (* cumulative LBD over every learnt clause: [lbd_sum /. conflicts]
         is the long-run average the short EMA is compared against *)
  mutable ema_lbd : float;  (* short-horizon EMA of recent learnt-clause LBD *)
  mutable trail_ema : float;
      (* slow EMA of the trail size at conflicts; a conflict trail far
         above it suggests the search is near a model, which blocks the
         next adaptive restart *)
  mutable ema_restarts : int;  (* restarts triggered by the LBD EMA *)
  mutable blocked_restarts : int;  (* adaptive restarts postponed by trail depth *)
  mutable best_phase : bool array;
      (* the assignment of the deepest conflict trail seen since the
         last rephase: a known-good partial model to rebranch towards *)
  mutable best_trail : int;
  mutable rephases : int;
  mutable next_rephase : int;  (* conflict count scheduling the next rephase *)
  mutable rephase_kind : int;
  (* -- portfolio clause sharing -- *)
  mutable share_max_lbd : int;  (* 0 = export collection off *)
  mutable share_max_len : int;
  mutable export_rev : int array list;  (* pending exports, newest first *)
  mutable export_n : int;
  mutable exported : int;
  mutable imported : int;
  mutable on_restart : (unit -> unit) option;
      (* fired after every restart, at decision level 0 with propagation
         complete: the safe point where the portfolio engine drains
         exports and integrates clauses learnt by sibling solvers *)
}

type result = Sat | Unsat

let pos_lit v = 2 * v
let neg_lit v = (2 * v) + 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0
let lit_neg l = l lxor 1

let create () =
  {
    nvars = 0;
    assign = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    phase = Array.make 16 false;
    seen = Array.make 16 false;
    frozen = Array.make 16 false;
    important = Array.make 16 false;
    activity = Array.make 16 0.0;
    heap_pos = Array.make 16 (-1);
    heap = Vec.create ~dummy:(-1) ();
    watches = Array.init 32 (fun _ -> Vec.create ~dummy:(-1) ());
    trail = Vec.create ~dummy:(-1) ();
    trail_lim = Vec.create ~dummy:(-1) ();
    qhead = 0;
    arena = Array.make 1024 0;
    asize = 0;
    awasted = 0;
    compactions = 0;
    clauses = Vec.create ~dummy:(-1) ();
    learnts = Vec.create ~dummy:(-1) ();
    ok = true;
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnts = 4000.0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnts_made = 0;
    minor_words = 0.0;
    core = [];
    on_backtrack = (fun (_ : int) -> ());
    strategy = default_strategy;
    stop = None;
    simplify_enabled = false;
    pure_elim_enabled = false;
    lbd_enabled = false;
    early_sat_enabled = false;
    n_important = 0;
    important_assigned = 0;
    simp_clauses = -1;
    simp_trail = -1;
    preprocessed = 0;
    lbd_deletions = 0;
    early_sats = 0;
    scan_backoff = 16;
    next_scan_work = 0;
    scan_cursor = -1;
    proof_on = false;
    proof_rev = [];
    proof_len = 0;
    lbd_sum = 0.0;
    ema_lbd = 0.0;
    trail_ema = 0.0;
    ema_restarts = 0;
    blocked_restarts = 0;
    best_phase = Array.make 16 false;
    best_trail = 0;
    rephases = 0;
    next_rephase = 1000;
    rephase_kind = 0;
    share_max_lbd = 0;
    share_max_len = 0;
    export_rev = [];
    export_n = 0;
    exported = 0;
    imported = 0;
    on_restart = None;
  }

let enable_proof s = s.proof_on <- true
let proof_enabled s = s.proof_on
let proof_steps s = List.rev s.proof_rev
let proof_length s = s.proof_len

let log_step s step =
  if s.proof_on then begin
    s.proof_rev <- step :: s.proof_rev;
    s.proof_len <- s.proof_len + 1
  end

let set_strategy s st = s.strategy <- st
let set_stop s f = s.stop <- f
let set_on_restart s f = s.on_restart <- f

(* Enable collection of low-LBD learnt clauses for portfolio export
   ([max_lbd = 0] disables it).  The buffer is bounded; overflow drops
   new candidates — sharing is best-effort, never backpressure. *)
let set_share s ~max_lbd ~max_len =
  s.share_max_lbd <- max_lbd;
  s.share_max_len <- max_len

let drain_exports s =
  let out = List.rev s.export_rev in
  s.export_rev <- [];
  s.export_n <- 0;
  s.exported <- s.exported + List.length out;
  out
let set_max_learnts s n = s.max_learnts <- float_of_int n
let set_simplify s b = s.simplify_enabled <- b
let set_pure_elim s b = s.pure_elim_enabled <- b
let set_lbd s b = s.lbd_enabled <- b
let set_early_sat s b = s.early_sat_enabled <- b

let nvars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_clauses s = Vec.size s.clauses
let num_restarts s = s.restarts
let num_learnts s = s.learnts_made
let num_preprocessed s = s.preprocessed
let num_lbd_deletions s = s.lbd_deletions
let num_early_sats s = s.early_sats
let num_compactions s = s.compactions
let num_ema_restarts s = s.ema_restarts
let num_blocked_restarts s = s.blocked_restarts
let num_rephases s = s.rephases
let num_imported s = s.imported
let num_exported s = s.exported
let arena_words s = s.asize
let arena_wasted_words s = s.awasted
let minor_words s = s.minor_words
let unsat_core s = s.core

(* -- clause accessors over the arena -------------------------------------- *)

let c_size s c = s.arena.(c) lsr 3
let c_learnt s c = s.arena.(c) land 1 = 1
let c_deleted s c = s.arena.(c) land 2 <> 0
let c_lit s c k = s.arena.(c + header_words + k)
let c_lbd s c = s.arena.(c + 2)
let c_set_lbd s c g = s.arena.(c + 2) <- g

(* a fresh copy of the literal slice (proof logging, checker hand-off) *)
let clause_lits s c = Array.init (c_size s c) (fun k -> s.arena.(c + header_words + k))

let c_delete s c =
  if not (c_deleted s c) then begin
    s.awasted <- s.awasted + header_words + c_size s c;
    s.arena.(c) <- s.arena.(c) lor 2
  end

let log_delete s c = if s.proof_on then log_step s (P_delete (clause_lits s c))

(* shrink the slice in place to its first [n] literals (level-0
   strengthening); the tail words become arena garbage until compaction *)
let c_shrink s c n =
  let old = c_size s c in
  if n < old then begin
    s.awasted <- s.awasted + (old - n);
    s.arena.(c) <- (n lsl 3) lor (s.arena.(c) land 7)
  end

let arena_ensure s n =
  if n > Array.length s.arena then begin
    let cap = ref (Array.length s.arena) in
    while !cap < n do
      cap := 2 * !cap
    done;
    let fresh = Array.make !cap 0 in
    Array.blit s.arena 0 fresh 0 s.asize;
    s.arena <- fresh
  end

let alloc_clause s lits learnt =
  let n = Array.length lits in
  arena_ensure s (s.asize + header_words + n);
  let c = s.asize in
  s.arena.(c) <- (n lsl 3) lor (if learnt then 1 else 0);
  s.arena.(c + 1) <- 0;
  s.arena.(c + 2) <- 0;
  Array.blit lits 0 s.arena (c + header_words) n;
  s.asize <- s.asize + header_words + n;
  c

(* -- variable order (binary max-heap on activity) ------------------------ *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let vi = Vec.unsafe_get s.heap i and vp = Vec.unsafe_get s.heap parent in
    if heap_less s vi vp then begin
      Vec.unsafe_set s.heap i vp;
      Vec.unsafe_set s.heap parent vi;
      s.heap_pos.(vp) <- i;
      s.heap_pos.(vi) <- parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let n = Vec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_less s (Vec.unsafe_get s.heap l) (Vec.unsafe_get s.heap !best) then best := l;
  if r < n && heap_less s (Vec.unsafe_get s.heap r) (Vec.unsafe_get s.heap !best) then best := r;
  if !best <> i then begin
    let vi = Vec.unsafe_get s.heap i and vb = Vec.unsafe_get s.heap !best in
    Vec.unsafe_set s.heap i vb;
    Vec.unsafe_set s.heap !best vi;
    s.heap_pos.(vb) <- i;
    s.heap_pos.(vi) <- !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.size s.heap - 1;
    heap_up s (Vec.size s.heap - 1)
  end

let heap_pop s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

(* -- variable allocation -------------------------------------------------- *)

let grow_array arr n dummy =
  let old = Array.length arr in
  if n <= old then arr
  else begin
    let fresh = Array.make (max n (2 * old)) dummy in
    Array.blit arr 0 fresh 0 old;
    fresh
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_array s.assign s.nvars 0;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars (-1);
  s.phase <- grow_array s.phase s.nvars false;
  s.best_phase <- grow_array s.best_phase s.nvars false;
  s.seen <- grow_array s.seen s.nvars false;
  s.frozen <- grow_array s.frozen s.nvars false;
  s.important <- grow_array s.important s.nvars false;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  let nlits = 2 * s.nvars in
  if Array.length s.watches < nlits then begin
    let old = Array.length s.watches in
    let fresh = Array.make (max nlits (2 * old)) (Vec.create ~dummy:(-1) ()) in
    Array.blit s.watches 0 fresh 0 old;
    for i = old to Array.length fresh - 1 do
      fresh.(i) <- Vec.create ~dummy:(-1) ()
    done;
    s.watches <- fresh
  end;
  s.phase.(v) <- s.strategy.default_phase;
  s.best_phase.(v) <- s.strategy.default_phase;
  heap_insert s v;
  v

let freeze_var s v = s.frozen.(v) <- true

let mark_important s v =
  if not s.important.(v) then begin
    s.important.(v) <- true;
    s.n_important <- s.n_important + 1;
    if s.assign.(v) <> 0 then s.important_assigned <- s.important_assigned + 1
  end

(* -- assignment ----------------------------------------------------------- *)

(* variables are allocated densely and literals validated on entry, so
   the assignment read skips the bounds check: this is the single
   hottest load in the solver *)
let lit_value s l =
  let v = Array.unsafe_get s.assign (l lsr 1) in
  if l land 1 = 0 then v else -v

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if lit_sign l then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  if s.important.(v) then s.important_assigned <- s.important_assigned + 1;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.phase.(v) <- lit_sign l;
      s.assign.(v) <- 0;
      s.reason.(v) <- -1;
      if s.important.(v) then s.important_assigned <- s.important_assigned - 1;
      heap_insert s v
    done;
    s.qhead <- bound;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.on_backtrack bound
  end

(* CaDiCaL-style rephasing: periodically overwrite the saved phases the
   search branches on.  The cycle alternates the best phases (the
   assignment of the deepest conflict trail seen since the last rephase
   — a known-good partial model), their inversion (pushing the search
   into the complement of the space it has been mining), and an
   untouched slot where plain phase saving keeps whatever it last
   recorded.  Runs at decision level 0 only (the restart point), so no
   live assignment is contradicted. *)
let rephase s =
  (match s.rephase_kind land 3 with
   | 0 | 2 -> Array.blit s.best_phase 0 s.phase 0 s.nvars
   | 1 ->
     for v = 0 to s.nvars - 1 do
       s.phase.(v) <- not s.phase.(v)
     done
   | _ -> () (* saved: keep the phases exactly as phase saving left them *));
  s.rephase_kind <- s.rephase_kind + 1;
  s.rephases <- s.rephases + 1;
  s.best_trail <- 0;
  (* widening cadence: early rephases probe cheaply, later ones leave
     a converging search alone for longer *)
  s.next_rephase <- s.conflicts + (1000 * (s.rephases + 1))

(* -- activity ------------------------------------------------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. s.strategy.var_decay

(* Clause activities live in the arena as integers: bumps add the
   truncated increment, and a rescale shifts every learnt activity down
   rather than multiplying by 1e-20.  Only the relative order matters
   (reduce_db sorts by it), so integer truncation is harmless. *)
let cla_bump s c =
  let a = s.arena.(c + 1) + int_of_float s.cla_inc in
  s.arena.(c + 1) <- a;
  if a > 1 lsl 50 then begin
    Vec.iter (fun c -> s.arena.(c + 1) <- s.arena.(c + 1) asr 25) s.learnts;
    s.cla_inc <- Float.max 1.0 (s.cla_inc /. 33554432.0)
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* -- clauses -------------------------------------------------------------- *)

let attach s c =
  let l0 = c_lit s c 0 and l1 = c_lit s c 1 in
  let w0 = s.watches.(l0) in
  Vec.push w0 c;
  Vec.push w0 l1;
  let w1 = s.watches.(l1) in
  Vec.push w1 c;
  Vec.push w1 l0

let add_clause s lits =
  (* A previous Sat answer leaves its model on the trail; new clauses are
     asserted at level 0, so undo it first. *)
  if decision_level s > 0 then cancel_until s 0;
  if s.ok then begin
    (* Simplify: drop duplicate and false literals, detect tautologies and
       satisfied clauses.  All current assignments are at level 0. *)
    let lits = List.sort_uniq compare lits in
    let orig = if s.proof_on then Array.of_list lits else [||] in
    log_step s (P_input orig);
    let tautology =
      List.exists (fun l -> lit_sign l && List.mem (lit_neg l) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if tautology || satisfied then
      (* the solver never stores this clause, so neither may the
         checker's active set; it can never appear in a derivation *)
      log_step s (P_delete orig)
    else begin
      let lits' = List.filter (fun l -> lit_value s l <> -1) lits in
      if s.proof_on && List.length lits' <> List.length lits then begin
        (* root-false literals were stripped: the stored clause is a
           unit-propagation consequence of the original plus root units *)
        log_step s (P_rup (Array.of_list lits'));
        if lits' <> [] then log_step s (P_delete orig)
      end;
      match lits' with
      | [] -> s.ok <- false
      | [ l ] -> enqueue s l (-1)
      | _ :: _ :: _ ->
        let c = alloc_clause s (Array.of_list lits') false in
        Vec.push s.clauses c;
        attach s c
    end
  end

(* -- propagation ---------------------------------------------------------- *)

(* The inner loop reads the arena and the flat watcher pairs directly:
   no closures, no options, no boxed records, no allocation (the only
   heap effect is the amortized growth of a watcher vector).  Returns
   the conflicting cref, or -1. *)
let propagate s =
  let confl = ref (-1) in
  let trail = s.trail in
  while !confl < 0 && s.qhead < Vec.size trail do
    let p = Vec.unsafe_get trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let fl = lit_neg p in
    let ws = Array.unsafe_get s.watches fl in
    let n = Vec.size ws in
    let arena = s.arena in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let cr = Vec.unsafe_get ws !i in
      let blocker = Vec.unsafe_get ws (!i + 1) in
      i := !i + 2;
      if lit_value s blocker = 1 then begin
        (* Blocking literal is true: the clause is satisfied without
           touching its literal slice. *)
        Vec.unsafe_set ws !j cr;
        Vec.unsafe_set ws (!j + 1) blocker;
        j := !j + 2
      end
      else begin
        let hd = Array.unsafe_get arena cr in
        if hd land 2 = 0 then begin
          (* not deleted *)
          let l0 = Array.unsafe_get arena (cr + 3) in
          if l0 = fl then begin
            Array.unsafe_set arena (cr + 3) (Array.unsafe_get arena (cr + 4));
            Array.unsafe_set arena (cr + 4) fl
          end;
          let first = Array.unsafe_get arena (cr + 3) in
          if lit_value s first = 1 then begin
            (* Clause satisfied by the other watch; keep it here and
               remember that watch as the blocker. *)
            Vec.unsafe_set ws !j cr;
            Vec.unsafe_set ws (!j + 1) first;
            j := !j + 2
          end
          else begin
            let len = hd lsr 3 in
            let k = ref 2 in
            while !k < len && lit_value s (Array.unsafe_get arena (cr + 3 + !k)) = -1 do
              incr k
            done;
            if !k < len then begin
              (* Move the watch to literal position !k. *)
              let lk = Array.unsafe_get arena (cr + 3 + !k) in
              Array.unsafe_set arena (cr + 4) lk;
              Array.unsafe_set arena (cr + 3 + !k) fl;
              let wk = Array.unsafe_get s.watches lk in
              Vec.push wk cr;
              Vec.push wk first
            end
            else begin
              Vec.unsafe_set ws !j cr;
              Vec.unsafe_set ws (!j + 1) first;
              j := !j + 2;
              if lit_value s first = -1 then begin
                confl := cr;
                s.qhead <- Vec.size trail;
                while !i < n do
                  Vec.unsafe_set ws !j (Vec.unsafe_get ws !i);
                  incr i;
                  incr j
                done
              end
              else enqueue s first cr
            end
          end
        end
        (* deleted clause: drop the watcher pair *)
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

(* -- arena compaction ------------------------------------------------------ *)

(* Copy every live clause into a fresh arena and rewrite all crefs
   through forwarding pointers.  A relocated slice keeps its old header
   with the relocated bit set and its new cref in the activity word, so
   any reference order works; references to deleted clauses are dropped
   (watchers) or must not exist (reasons, clause lists filter first).
   Safe whenever no cref is held in a local across the call — callers
   are the level-boundary points of [solve] and [simplify]. *)
let compact s =
  let live = s.asize - s.awasted in
  let cap = ref 1024 in
  while !cap < live do
    cap := 2 * !cap
  done;
  let to_arena = Array.make !cap 0 in
  let to_size = ref 0 in
  let reloc c =
    if s.arena.(c) land 4 <> 0 then s.arena.(c + 1)
    else begin
      let words = header_words + c_size s c in
      let nc = !to_size in
      Array.blit s.arena c to_arena nc words;
      to_size := nc + words;
      s.arena.(c) <- s.arena.(c) lor 4;
      s.arena.(c + 1) <- nc;
      nc
    end
  in
  let reloc_clause_vec vec =
    let j = ref 0 in
    for i = 0 to Vec.size vec - 1 do
      let c = Vec.get vec i in
      if not (c_deleted s c) then begin
        Vec.set vec !j (reloc c);
        incr j
      end
    done;
    Vec.shrink vec !j
  in
  (* watchers: drop pairs pointing at deleted clauses, forward the rest *)
  for l = 0 to (2 * s.nvars) - 1 do
    let ws = s.watches.(l) in
    let j = ref 0 in
    let i = ref 0 in
    let n = Vec.size ws in
    while !i < n do
      let c = Vec.get ws !i in
      let blocker = Vec.get ws (!i + 1) in
      i := !i + 2;
      if not (c_deleted s c) then begin
        Vec.set ws !j (reloc c);
        Vec.set ws (!j + 1) blocker;
        j := !j + 2
      end
    done;
    Vec.shrink ws !j
  done;
  (* reasons of assigned variables (a deleted reason cannot happen —
     reduce_db skips locked clauses and simplify clears root reasons —
     but a stale one must not survive relocation either way) *)
  for i = 0 to Vec.size s.trail - 1 do
    let v = lit_var (Vec.get s.trail i) in
    let r = s.reason.(v) in
    if r >= 0 then s.reason.(v) <- (if c_deleted s r then -1 else reloc r)
  done;
  reloc_clause_vec s.clauses;
  reloc_clause_vec s.learnts;
  s.arena <- to_arena;
  s.asize <- !to_size;
  s.awasted <- 0;
  s.compactions <- s.compactions + 1;
  s.scan_cursor <- -1

(* Compact when at least a quarter of a non-trivial arena is dead:
   amortizes the copy against the propagation locality it buys back. *)
let maybe_compact s =
  if s.awasted > 4096 && s.awasted * 4 > s.asize then compact s

(* -- level-0 preprocessing ------------------------------------------------- *)

(* One pass over the clause database at decision level 0, run from the
   top of [solve] when [simplify_enabled]:
     1. root unit propagation to fixpoint;
     2. removal of satisfied clauses and stripping of root-false
        literals (problem and learnt clauses alike);
     3. forward subsumption and self-subsuming resolution over the
        problem clauses;
     4. pure-literal elimination ([pure_elim_enabled] only), skipping
        frozen variables — the pure polarity is asserted at level 0, so
        models stay exact with no separate reconstruction step.
   Every transformation is applied at level 0 and watches are rebuilt
   afterwards, so no search state can dangle.  The pass is skipped when
   the database and root trail are unchanged since the last run. *)

let clause_satisfied_root s c =
  let n = c_size s c in
  let sat = ref false in
  for k = 0 to n - 1 do
    if lit_value s (c_lit s c k) = 1 then sat := true
  done;
  !sat

let clause_has_false_root s c =
  let n = c_size s c in
  let f = ref false in
  for k = 0 to n - 1 do
    if lit_value s (c_lit s c k) = -1 then f := true
  done;
  !f

let clean_clause_vec s vec =
  let changed = ref false in
  Vec.iter
    (fun c ->
      if not (c_deleted s c) then begin
        if clause_satisfied_root s c then begin
          log_delete s c;
          c_delete s c;
          s.preprocessed <- s.preprocessed + 1;
          changed := true
        end
        else if clause_has_false_root s c then begin
          let live =
            Array.of_list
              (List.filter (fun l -> lit_value s l <> -1) (Array.to_list (clause_lits s c)))
          in
          s.preprocessed <- s.preprocessed + 1;
          changed := true;
          match Array.length live with
          | 0 ->
            s.ok <- false;
            log_step s (P_rup [||])
          | 1 ->
            log_step s (P_rup (Array.copy live));
            log_delete s c;
            enqueue s live.(0) (-1);
            c_delete s c
          | n ->
            log_step s (P_rup (Array.copy live));
            log_delete s c;
            Array.blit live 0 s.arena (c + header_words) n;
            c_shrink s c n
        end
      end)
    vec;
  !changed

(* in-place insertion sort of a clause's literal slice (clauses are
   small; the subsumption pass needs them sorted and the watches are
   rebuilt afterwards, so reordering is safe at level 0) *)
let sort_clause_lits s c =
  let base = c + header_words in
  let n = c_size s c in
  for k = 1 to n - 1 do
    let x = s.arena.(base + k) in
    let j = ref (k - 1) in
    while !j >= 0 && s.arena.(base + !j) > x do
      s.arena.(base + !j + 1) <- s.arena.(base + !j);
      decr j
    done;
    s.arena.(base + !j + 1) <- x
  done

let clause_sig s c =
  let acc = ref 0 in
  for k = 0 to c_size s c - 1 do
    acc := !acc lor (1 lsl (c_lit s c k mod 62))
  done;
  !acc

(* both clause slices sorted ascending: is every literal of [c] in [d]? *)
let subset_sorted s c d =
  let na = c_size s c and nb = c_size s d in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let a = c_lit s c !i and b = c_lit s d !j in
    if a = b then begin
      incr i;
      incr j
    end
    else if a > b then incr j
    else i := na + 1
  done;
  !i = na

(* does C strengthen D by resolving on [l], i.e. (C \ {l}) ∪ {¬l} ⊆ D?
   Clauses are small, so a sorted scratch copy per candidate is cheap. *)
let strengthens s c l d =
  let a = Array.map (fun x -> if x = l then lit_neg l else x) (clause_lits s c) in
  Array.sort compare a;
  let na = Array.length a and nb = c_size s d in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let b = c_lit s d !j in
    if a.(!i) = b then begin
      incr i;
      incr j
    end
    else if a.(!i) > b then incr j
    else i := na + 1
  done;
  !i = na

let subsume_pass s =
  let changed = ref false in
  (* Live problem clauses, literal slices sorted (watches are rebuilt
     after the pass, and no clause is a reason at level 0). *)
  let live = ref [] in
  Vec.iter (fun c -> if not (c_deleted s c) then live := c :: !live) s.clauses;
  let cs = Array.of_list !live in
  Array.iter (fun c -> sort_clause_lits s c) cs;
  let sigs = Array.map (fun c -> clause_sig s c) cs in
  let occ = Array.make (2 * s.nvars) [] in
  Array.iteri
    (fun i c ->
      for k = 0 to c_size s c - 1 do
        let l = c_lit s c k in
        occ.(l) <- i :: occ.(l)
      done)
    cs;
  let order = Array.init (Array.length cs) (fun i -> i) in
  Array.sort (fun a b -> compare (c_size s cs.(a)) (c_size s cs.(b))) order;
  (* forward subsumption: short clauses kill the longer ones they imply *)
  Array.iter
    (fun i ->
      let c = cs.(i) in
      if not (c_deleted s c) then begin
        let best = ref (c_lit s c 0) in
        for k = 1 to c_size s c - 1 do
          let l = c_lit s c k in
          if List.length occ.(l) < List.length occ.(!best) then best := l
        done;
        if List.length occ.(!best) <= 1000 then
          List.iter
            (fun j ->
              let d = cs.(j) in
              if j <> i && (not (c_deleted s d))
                 && c_size s d >= c_size s c
                 && sigs.(i) land lnot sigs.(j) = 0
                 && subset_sorted s c d
              then begin
                log_delete s d;
                c_delete s d;
                s.preprocessed <- s.preprocessed + 1;
                changed := true
              end)
            occ.(!best)
      end)
    order;
  (* self-subsuming resolution: C with l and D with ¬l, C \ {l} ⊆ D \ {¬l}:
     the resolvent C\{l} ∨ D\{¬l} = D \ {¬l} replaces D *)
  Array.iteri
    (fun i c ->
      if (not (c_deleted s c)) && c_size s c <= 20 then
        for ki = 0 to c_size s c - 1 do
          let l = c_lit s c ki in
          let nl = lit_neg l in
          if nl < Array.length occ && List.length occ.(nl) <= 1000 then
            List.iter
              (fun j ->
                let d = cs.(j) in
                if j <> i && (not (c_deleted s d))
                   && c_size s d >= c_size s c
                   && sigs.(i) land lnot (sigs.(j) lor (1 lsl (l mod 62))) = 0
                   && strengthens s c l d
                then begin
                  let live =
                    Array.of_list
                      (List.filter (fun x -> x <> nl) (Array.to_list (clause_lits s d)))
                  in
                  log_step s (P_rup (Array.copy live));
                  log_delete s d;
                  s.preprocessed <- s.preprocessed + 1;
                  changed := true;
                  sigs.(j) <- Array.fold_left (fun acc x -> acc lor (1 lsl (x mod 62))) 0 live;
                  if Array.length live = 1 then begin
                    (if lit_value s live.(0) = 0 then enqueue s live.(0) (-1)
                     else if lit_value s live.(0) = -1 then begin
                       s.ok <- false;
                       log_step s (P_rup [||])
                     end);
                    c_delete s d
                  end
                  else begin
                    Array.blit live 0 s.arena (d + header_words) (Array.length live);
                    c_shrink s d (Array.length live)
                  end
                end)
              occ.(nl)
        done)
    cs;
  !changed

let pure_literal_pass s =
  let pos = Array.make s.nvars false and neg = Array.make s.nvars false in
  Vec.iter
    (fun c ->
      if not (c_deleted s c) then
        for k = 0 to c_size s c - 1 do
          let l = c_lit s c k in
          if lit_sign l then pos.(lit_var l) <- true else neg.(lit_var l) <- true
        done)
    s.clauses;
  let changed = ref false in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = 0 && (not s.frozen.(v)) && pos.(v) <> neg.(v) then begin
      (* [v] occurs in live problem clauses with a single polarity, is
         not a theory atom and cannot be assumed: fixing it to its pure
         polarity preserves satisfiability, and the level-0 assignment
         keeps the model exact. *)
      let l = if pos.(v) then pos_lit v else neg_lit v in
      log_step s (P_pure l);
      enqueue s l (-1);
      changed := true
    end
  done;
  !changed

let compact_clause_vec s vec =
  let j = ref 0 in
  for i = 0 to Vec.size vec - 1 do
    let c = Vec.get vec i in
    if not (c_deleted s c) then begin
      Vec.set vec !j c;
      incr j
    end
  done;
  Vec.shrink vec !j

let rebuild_watches s =
  for l = 0 to (2 * s.nvars) - 1 do
    Vec.clear s.watches.(l)
  done;
  Vec.iter (fun c -> attach s c) s.clauses;
  Vec.iter (fun c -> attach s c) s.learnts

let simplify s =
  if s.ok && decision_level s = 0 then begin
    (if propagate s >= 0 then begin
       s.ok <- false;
       log_step s (P_rup [||])
     end);
    if s.ok
       && (Vec.size s.clauses + Vec.size s.learnts <> s.simp_clauses
          || Vec.size s.trail <> s.simp_trail)
    then begin
      (* Facts need no justification; clearing root reasons frees every
         clause for restructuring. *)
      for i = 0 to Vec.size s.trail - 1 do
        s.reason.(lit_var (Vec.get s.trail i)) <- -1
      done;
      let rounds = ref 0 in
      let changed = ref true in
      while s.ok && !changed && !rounds < 3 do
        incr rounds;
        changed := false;
        if clean_clause_vec s s.clauses then changed := true;
        if clean_clause_vec s s.learnts then changed := true;
        if s.ok && subsume_pass s then changed := true;
        if s.ok && s.pure_elim_enabled && pure_literal_pass s then changed := true;
        if s.ok && s.qhead < Vec.size s.trail then begin
          (* Units found above have not propagated through the (stale)
             watches; rebuild them first, then run to fixpoint. *)
          compact_clause_vec s s.clauses;
          compact_clause_vec s s.learnts;
          rebuild_watches s;
          (if propagate s >= 0 then begin
             s.ok <- false;
             log_step s (P_rup [||])
           end);
          changed := true
        end
      done;
      compact_clause_vec s s.clauses;
      compact_clause_vec s s.learnts;
      maybe_compact s;
      rebuild_watches s;
      s.scan_cursor <- -1;
      s.simp_clauses <- Vec.size s.clauses + Vec.size s.learnts;
      s.simp_trail <- Vec.size s.trail
    end
  end

(* -- conflict analysis (first UIP) ----------------------------------------- *)

let reason_exn s v =
  let r = s.reason.(v) in
  assert (r >= 0);
  r

(* [q] is redundant in the learnt clause if its reason's antecedents are all
   already in the clause (seen) or fixed at level 0: local minimization. *)
let lit_redundant s q =
  let r = s.reason.(lit_var q) in
  if r < 0 then false
  else begin
    let ok = ref true in
    for k = 1 to c_size s r - 1 do
      let v = lit_var (c_lit s r k) in
      if not s.seen.(v) && s.level.(v) > 0 then ok := false
    done;
    !ok
  end

(* Recursive (MiniSat-exact) minimization: [q] is redundant if every
   path from its reason bottoms out in clause literals or level-0 facts.
   [abstract_levels] is a Bloom filter of the levels present in the
   clause — a var on a level outside it can never be absorbed.
   Successfully explored vars stay marked in [s.seen] (memoization);
   the caller collects them in [extra] and unmarks after use. *)
let abstract_level s v = 1 lsl (s.level.(v) mod 61)

exception Keep

let lit_redundant_rec s abstract_levels extra q0 =
  let marked = ref [] in
  let rec go q =
    let r = s.reason.(lit_var q) in
    if r < 0 then raise Keep
    else
      for k = 1 to c_size s r - 1 do
        let l = c_lit s r k in
        let v = lit_var l in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          if s.reason.(v) >= 0 && abstract_level s v land abstract_levels <> 0 then begin
            s.seen.(v) <- true;
            marked := v :: !marked;
            go l
          end
          else raise Keep
        end
      done
  in
  match go q0 with
  | () ->
    extra := List.rev_append !marked !extra;
    true
  | exception Keep ->
    List.iter (fun v -> s.seen.(v) <- false) !marked;
    false

let compute_lbd s lits =
  List.length (List.sort_uniq compare (List.map (fun q -> s.level.(lit_var q)) lits))

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let c = ref confl in
  let dl = decision_level s in
  let expanding = ref true in
  while !expanding do
    if c_learnt s !c then begin
      cla_bump s !c;
      (* Dynamic LBD re-scoring (Glucose): a learnt clause participating
         in a new conflict gets its glue recomputed against the current
         levels — clauses that keep proving useful migrate towards the
         protected end of [reduce_db]. *)
      if s.lbd_enabled && c_lbd s !c > 2 then begin
        let l = compute_lbd s (Array.to_list (clause_lits s !c)) in
        if l < c_lbd s !c then c_set_lbd s !c l
      end
    end;
    let start = if !p = -1 then 0 else 1 in
    for k = start to c_size s !c - 1 do
      let q = c_lit s !c k in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= dl then incr path else learnt := q :: !learnt
      end
    done;
    while not s.seen.(lit_var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    s.seen.(lit_var !p) <- false;
    decr path;
    if !path > 0 then c := reason_exn s (lit_var !p) else expanding := false
  done;
  let tail =
    if s.lbd_enabled then begin
      let abstract_levels =
        List.fold_left (fun acc q -> acc lor abstract_level s (lit_var q)) 0 !learnt
      in
      let extra = ref [] in
      let t = List.filter (fun q -> not (lit_redundant_rec s abstract_levels extra q)) !learnt in
      List.iter (fun v -> s.seen.(v) <- false) !extra;
      t
    end
    else List.filter (fun q -> not (lit_redundant s q)) !learnt
  in
  List.iter (fun q -> s.seen.(lit_var q) <- false) !learnt;
  let asserting = lit_neg !p in
  (* Backjump level: highest level among the tail. *)
  let blevel = List.fold_left (fun acc q -> max acc s.level.(lit_var q)) 0 tail in
  (* Put a literal of the backjump level in watch position 1. *)
  let tail =
    match List.partition (fun q -> s.level.(lit_var q) = blevel) tail with
    | q :: rest_max, rest -> q :: (rest_max @ rest)
    | [], rest -> rest
  in
  (asserting :: tail, blevel)

(* -- learnt clause database reduction -------------------------------------- *)

(* A clause is locked while it is the recorded reason of a trail
   literal: reasons are crefs, so the check is integer equality — the
   fresh-[Some]-box physical-equality trap that once deleted locked
   clauses (conflict minimization then cited deleted antecedents and
   the logged proof lost a step) is unrepresentable here. *)
let locked s c = c_size s c > 0 && s.reason.(lit_var (c_lit s c 0)) = c

let reduce_db s =
  if s.lbd_enabled then begin
    (* Glue-aware reduction: delete the worse half by (high LBD, low
       activity), never touching locked, binary or glue (lbd <= 2)
       clauses — they encode the tight dependencies of the search. *)
    Vec.sort_in_place
      (fun a b ->
        if c_lbd s a <> c_lbd s b then compare (c_lbd s b) (c_lbd s a)
        else compare s.arena.(a + 1) s.arena.(b + 1))
      s.learnts;
    let n = Vec.size s.learnts in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let c = Vec.get s.learnts i in
      if i < n / 2 && (not (locked s c)) && c_size s c > 2 && c_lbd s c > 2 then begin
        log_delete s c;
        c_delete s c;
        s.lbd_deletions <- s.lbd_deletions + 1
      end
      else begin
        Vec.set s.learnts !j c;
        incr j
      end
    done;
    Vec.shrink s.learnts !j
  end
  else begin
    Vec.sort_in_place (fun a b -> compare s.arena.(a + 1) s.arena.(b + 1)) s.learnts;
    let n = Vec.size s.learnts in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let c = Vec.get s.learnts i in
      if i < n / 2 && (not (locked s c)) && c_size s c > 2 then begin
        log_delete s c;
        c_delete s c
      end
      else begin
        Vec.set s.learnts !j c;
        incr j
      end
    done;
    Vec.shrink s.learnts !j
  end;
  maybe_compact s

(* Integrate a theory-learned clause at the current state without
   restarting from scratch: attach it with valid watches and backjump
   just far enough that it is no longer conflicting (then it propagates
   like any learnt clause). *)
let integrate_core s lits =
  (* literals false at level 0 can never help *)
  let lits' =
    List.filter (fun l -> not (lit_value s l = -1 && s.level.(lit_var l) = 0)) lits
  in
  if s.proof_on && List.length lits' <> List.length lits then begin
    log_step s (P_rup (Array.of_list lits'));
    if lits' <> [] then log_step s (P_delete (Array.of_list lits))
  end;
  match lits' with
  | [] -> s.ok <- false
  | [ l ] ->
    cancel_until s 0;
    (match lit_value s l with
     | 1 -> ()
     | -1 ->
       s.ok <- false;
       log_step s (P_rup [||])
     | _ -> enqueue s l (-1))
  | _ :: _ :: _ ->
    let arr = Array.of_list lits' in
    s.learnts_made <- s.learnts_made + 1;
    (* watch preference: true > unassigned > false by decreasing level *)
    let rank l =
      match lit_value s l with
      | 1 -> max_int
      | 0 -> max_int - 1
      | _ -> s.level.(lit_var l)
    in
    let alloc_attached () =
      let c = alloc_clause s arr true in
      c_set_lbd s c (Array.length arr);
      Vec.push s.learnts c;
      attach s c;
      c
    in
    let finished = ref false in
    while not !finished do
      Array.sort (fun a b -> compare (rank b) (rank a)) arr;
      match (lit_value s arr.(0), lit_value s arr.(1)) with
      | 1, _ | 0, (1 | 0) ->
        (* satisfied, or two non-false watches: just attach *)
        ignore (alloc_attached ());
        finished := true
      | 0, -1 ->
        (* asserting: propagate the single non-false literal *)
        let c = alloc_attached () in
        enqueue s arr.(0) c;
        finished := true
      | -1, _ ->
        (* conflicting (all false): backjump below the highest level *)
        let l0 = s.level.(lit_var arr.(0)) in
        if l0 = 0 then begin
          s.ok <- false;
          log_step s (P_rup [||]);
          finished := true
        end
        else begin
          let l1 = s.level.(lit_var arr.(1)) in
          cancel_until s (if l1 < l0 then l1 else l0 - 1)
        end
      | _ -> assert false
    done

let integrate_clause s lits =
  let lits = List.sort_uniq compare lits in
  log_step s (P_lemma (Array.of_list lits));
  integrate_core s lits

(* Import a clause learnt by a sibling portfolio solver over the same
   CNF (identical variable numbering — the portfolio engine's
   invariant).  Any learnt clause is a resolution consequence of the
   shared input formula, so attaching it can never change a verdict.

   With proof logging on, only clauses the independent checker will
   accept are admitted: the clause is first verified RUP against *this*
   solver's clause database by a scratch propagation probe at level 0 —
   unit propagation closure is unique, so the solver's watched-literal
   propagation and the checker's counting propagation over the logged
   active set agree — and then recorded as a [P_rup] step.  A clause
   that is not locally RUP (its derivation needed sibling-private
   learnt clauses) is dropped rather than logged unjustifiably.
   Returns [true] when the clause was attached. *)
let import_clause s lits =
  if (not s.ok) || Array.length lits = 0 then false
  else begin
    let lits = List.sort_uniq compare (Array.to_list lits) in
    if List.exists (fun l -> lit_value s l = 1 && s.level.(lit_var l) = 0) lits then
      (* satisfied at the root: attaching it buys nothing *)
      false
    else if not s.proof_on then begin
      integrate_core s lits;
      s.imported <- s.imported + 1;
      true
    end
    else begin
      cancel_until s 0;
      (* scratch decision level asserting the clause's negation *)
      Vec.push s.trail_lim (Vec.size s.trail);
      List.iter (fun l -> if lit_value s l = 0 then enqueue s (lit_neg l) (-1)) lits;
      let confl = propagate s in
      cancel_until s 0;
      if confl >= 0 then begin
        log_step s (P_rup (Array.of_list lits));
        integrate_core s lits;
        s.imported <- s.imported + 1;
        true
      end
      else false
    end
  end

(* -- final conflict analysis (assumptions) ---------------------------------- *)

(* [p] is an assumption literal found false under the current trail.
   Walk the implication graph backwards from [p]'s variable and collect
   the assumption literals that, together with the clause database,
   imply [lit_neg p]: the returned list (which includes [p]) is an
   unsat core over the assumptions.  Decisions above level 0 are
   necessarily assumptions here, because assumptions occupy the first
   decision levels and a normal decision is never made before all of
   them are established. *)
let analyze_final s p =
  if decision_level s = 0 then [ p ]
  else begin
    let core = ref [ p ] in
    s.seen.(lit_var p) <- true;
    let bottom = Vec.get s.trail_lim 0 in
    for i = Vec.size s.trail - 1 downto bottom do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      if s.seen.(v) then begin
        let r = s.reason.(v) in
        (if r < 0 then core := l :: !core
         else
           for k = 1 to c_size s r - 1 do
             let u = lit_var (c_lit s r k) in
             if s.level.(u) > 0 then s.seen.(u) <- true
           done);
        s.seen.(v) <- false
      end
    done;
    s.seen.(lit_var p) <- false;
    !core
  end

(* -- restarts -------------------------------------------------------------- *)

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's algorithm) *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* -- early-SAT detection ---------------------------------------------------- *)

(* With every theory atom assigned and every problem clause satisfied,
   the unassigned variables are don't-cares: reading them as [false]
   (what [value_var] does for an unassigned variable) yields a total
   model of the clause database, and — because learnt clauses are
   consequences of the problem clauses plus the theory axioms — of the
   learnt clauses too, once [final_check] confirms theory consistency.

   The scan walks the flat arena, so it is a linear streaming read; on
   failure it remembers the offending clause ([scan_cursor]), and while
   that clause stays unsatisfied the next attempts reject in O(clause
   length) without touching the rest of the database.  Full scans that
   fail still double an exponential backoff, bounding their cost. *)
let clause_satisfied s c =
  let arena = s.arena in
  let hd = Array.unsafe_get arena c in
  if hd land 2 <> 0 then true
  else begin
    let len = hd lsr 3 in
    let sat = ref false in
    let k = ref 0 in
    while (not !sat) && !k < len do
      if lit_value s (Array.unsafe_get arena (c + 3 + !k)) = 1 then sat := true;
      incr k
    done;
    !sat
  end

let all_problem_clauses_satisfied s =
  let ok = ref true in
  let n = Vec.size s.clauses in
  let i = ref 0 in
  while !ok && !i < n do
    if not (clause_satisfied s (Vec.unsafe_get s.clauses !i)) then begin
      ok := false;
      s.scan_cursor <- !i
    end;
    incr i
  done;
  if !ok then s.scan_cursor <- -1;
  !ok

(* O(clause length) pre-filter: the clause that failed the previous
   scan.  While it is still unsatisfied a full scan cannot succeed. *)
let scan_prefilter s =
  s.scan_cursor < 0
  || s.scan_cursor >= Vec.size s.clauses
  || clause_satisfied s (Vec.unsafe_get s.clauses s.scan_cursor)

(* -- main solve loop -------------------------------------------------------- *)

let decide s =
  let rec next () =
    if Vec.is_empty s.heap then -1
    else begin
      let v = heap_pop s in
      if s.assign.(v) = 0 then v else next ()
    end
  in
  let v = next () in
  if v < 0 then false
  else begin
    s.decisions <- s.decisions + 1;
    Vec.push s.trail_lim (Vec.size s.trail);
    enqueue s (if s.phase.(v) then pos_lit v else neg_lit v) (-1);
    true
  end

(* Collect a freshly learnt clause for portfolio export: short,
   low-LBD clauses only, into a bounded buffer the engine drains at
   restarts.  Glue is a quality signal here exactly as it is for
   clause-database reduction: a low-LBD clause prunes with few decision
   levels' worth of context, so it transfers across solvers. *)
let export_learnt s lits glue =
  if s.share_max_lbd > 0 && glue <= s.share_max_lbd && s.export_n < 256 then begin
    let arr = Array.of_list lits in
    if Array.length arr <= s.share_max_len then begin
      s.export_rev <- arr :: s.export_rev;
      s.export_n <- s.export_n + 1
    end
  end

(* Cooperative cancellation point: when the stop hook fires, abandon
   the search at level 0 (keeping all learnt clauses — they were derived
   from the clause database alone, so a later solve may reuse them). *)
let poll_stop s =
  match s.stop with
  | Some f when f () ->
    cancel_until s 0;
    raise Canceled
  | _ -> ()

let solve_body ?(assumptions = []) ?(final_check = fun (_ : t) -> [])
    ?(partial_check = fun (_ : t) -> []) ?(partial_interval = 64)
    ?(on_backtrack = fun (_ : int) -> ()) s =
  s.on_backtrack <- on_backtrack;
  (* A previous Sat answer leaves its model on the trail; start clean. *)
  cancel_until s 0;
  s.core <- [];
  poll_stop s;
  if s.simplify_enabled then simplify s;
  s.scan_backoff <- 16;
  s.next_scan_work <- 0;
  s.scan_cursor <- -1;
  let assumps = Array.of_list assumptions in
  let n_assumps = Array.length assumps in
  (* Establish the next pending assumption as a decision.  Assumption
     [i] owns decision level [i+1] (already-true assumptions get an
     empty level), so they always precede normal decisions and
     [analyze_final] can treat every decision above level 0 as an
     assumption. *)
  let rec pick_assumption () =
    if decision_level s >= n_assumps then `Search
    else begin
      let p = assumps.(decision_level s) in
      match lit_value s p with
      | 1 ->
        Vec.push s.trail_lim (Vec.size s.trail);
        pick_assumption ()
      | -1 -> `Failed p
      | _ ->
        s.decisions <- s.decisions + 1;
        Vec.push s.trail_lim (Vec.size s.trail);
        enqueue s p (-1);
        `Propagate
    end
  in
  let restart_num = ref 0 in
  let conflicts_since_restart = ref 0 in
  let restart_limit = ref (s.strategy.restart_base * luby 0) in
  let answer = ref None in
  let since_partial = ref 0 in
  let steps = ref 0 in
  if not s.ok then answer := Some Unsat;
  while !answer = None do
    let confl = propagate s in
    if confl >= 0 then begin
      s.conflicts <- s.conflicts + 1;
      incr conflicts_since_restart;
      incr steps;
      if !steps land 255 = 0 then poll_stop s;
      (* restart-scheduling signals, read at conflict time: the trail
         EMA feeds restart blocking; in rephase mode the deepest trail
         seen snapshots its assignment as the best phases *)
      let tsize = Vec.size s.trail in
      s.trail_ema <- s.trail_ema +. (0.000244140625 *. (float_of_int tsize -. s.trail_ema));
      if s.strategy.rephase && tsize > s.best_trail then begin
        s.best_trail <- tsize;
        for i = 0 to tsize - 1 do
          let l = Vec.get s.trail i in
          s.best_phase.(lit_var l) <- lit_sign l
        done
      end;
      if decision_level s = 0 then begin
        s.ok <- false;
        log_step s (P_rup [||]);
        answer := Some Unsat
      end
      else begin
        let learnt, blevel = analyze s confl in
        let glue = compute_lbd s learnt in
        s.lbd_sum <- s.lbd_sum +. float_of_int glue;
        s.ema_lbd <- s.ema_lbd +. (0.03125 *. (float_of_int glue -. s.ema_lbd));
        log_step s (P_rup (Array.of_list learnt));
        cancel_until s blevel;
        (match learnt with
         | [] -> assert false
         | [ l ] -> enqueue s l (-1)
         | l :: _ ->
           let c = alloc_clause s (Array.of_list learnt) true in
           c_set_lbd s c glue;
           cla_bump s c;
           s.learnts_made <- s.learnts_made + 1;
           Vec.push s.learnts c;
           attach s c;
           enqueue s l c);
        export_learnt s learnt glue;
        var_decay s;
        cla_decay s
      end
    end
    else if !since_partial >= partial_interval then begin
      (* Periodic partial theory check on the propagation-complete
         prefix: catches theory-inconsistent assignments long before
         they are total. *)
      since_partial := 0;
      match partial_check s with
      | [] -> ()
      | conflict_clauses ->
        List.iter (fun c -> integrate_clause s c) conflict_clauses;
        if not s.ok then answer := Some Unsat
    end
    else if
      (match s.strategy.restart_mode with
       | Luby -> !conflicts_since_restart >= !restart_limit
       | Ema_lbd ->
         (* Glucose-style adaptive restarts: when the short-horizon LBD
            average runs hot against the long-run average, the clauses
            this orbit is learning are poor — restart and rebranch. *)
         !conflicts_since_restart >= 50
         && s.conflicts > 0
         && s.ema_lbd *. 0.8 > s.lbd_sum /. float_of_int s.conflicts)
    then begin
      if
        s.strategy.restart_mode = Ema_lbd
        && s.conflicts > 5000
        && float_of_int (Vec.size s.trail) > 1.4 *. s.trail_ema
      then begin
        (* restart blocking: the trail is unusually deep for this
           search, i.e. it looks close to a satisfying assignment —
           postpone the restart rather than discard the progress *)
        s.blocked_restarts <- s.blocked_restarts + 1;
        conflicts_since_restart := 0
      end
      else begin
        incr restart_num;
        s.restarts <- s.restarts + 1;
        if s.strategy.restart_mode = Ema_lbd then
          s.ema_restarts <- s.ema_restarts + 1;
        conflicts_since_restart := 0;
        restart_limit := s.strategy.restart_base * luby !restart_num;
        cancel_until s 0;
        if s.strategy.rephase && s.conflicts >= s.next_rephase then rephase s;
        (* the portfolio tick: export learnt clauses, import siblings'.
           Level 0, propagation complete — imports attach cleanly. *)
        (match s.on_restart with
         | Some f ->
           f ();
           if not s.ok then answer := Some Unsat
         | None -> ())
      end
    end
    else begin
      match pick_assumption () with
      | `Failed p ->
        s.core <- analyze_final s p;
        (* the negated core is implied by the database alone: record
           it so the trace refutes the assumptions by propagation *)
        log_step s (P_rup (Array.of_list (List.map lit_neg s.core)));
        answer := Some Unsat
      | `Propagate -> ()
      | `Search ->
        let total = Vec.size s.trail = s.nvars in
        let early =
          (not total) && s.early_sat_enabled
          && s.important_assigned = s.n_important
          && scan_prefilter s
          && s.decisions + s.conflicts >= s.next_scan_work
          &&
          if all_problem_clauses_satisfied s then true
          else begin
            s.next_scan_work <- s.decisions + s.conflicts + s.scan_backoff;
            s.scan_backoff <- min 1024 (2 * s.scan_backoff);
            false
          end
        in
        if total || early then begin
          match final_check s with
          | [] ->
            if early then s.early_sats <- s.early_sats + 1;
            answer := Some Sat
          | conflict_clauses ->
            List.iter (fun c -> integrate_clause s c) conflict_clauses;
            if not s.ok then answer := Some Unsat
        end
        else begin
          if float_of_int (Vec.size s.learnts) > s.max_learnts then begin
            reduce_db s;
            s.max_learnts <- s.max_learnts *. 1.3
          end;
          let made = decide s in
          assert made;
          incr since_partial;
          incr steps;
          if !steps land 255 = 0 then poll_stop s
        end
    end
  done;
  (match !answer with
   | Some Sat -> ()
   | _ -> cancel_until s 0);
  match !answer with
  | Some r -> r
  | None -> assert false

let solve ?assumptions ?final_check ?partial_check ?partial_interval ?on_backtrack s =
  let m0 = Gc.minor_words () in
  Fun.protect
    ~finally:(fun () -> s.minor_words <- s.minor_words +. (Gc.minor_words () -. m0))
    (fun () -> solve_body ?assumptions ?final_check ?partial_check ?partial_interval ?on_backtrack s)

let value_var s v = s.assign.(v) = 1
let value_lit s l = lit_value s l = 1

let var_assigned s v = s.assign.(v) <> 0

let trail_size s = Vec.size s.trail
let trail_lit s i = Vec.get s.trail i
