(* CDCL with two-watched literals (MiniSat lineage).  Conventions:
   - literal [2*v] is the positive literal of variable [v], [2*v+1] the
     negative one;
   - [assign.(v)] is [0] when unassigned, [1] when true, [-1] when false;
   - a clause's two watched literals sit at positions 0 and 1 of [lits];
   - [watches.(l)] holds the watchers for literal [l], each carrying a
     blocking literal: when the blocker is true the clause is satisfied
     and its literal array is never touched (cache-friendliness);
   - the implied literal of a reason clause sits at position 0. *)

type clause = {
  mutable lits : int array;
  mutable activity : float;
  mutable lbd : int;
      (* literal block distance: distinct decision levels in the clause
         when it was learnt; glue clauses (lbd <= 2) are never deleted *)
  learnt : bool;
  mutable deleted : bool;
}

let dummy_clause = { lits = [||]; activity = 0.0; lbd = 0; learnt = false; deleted = true }

type watcher = { wcl : clause; blocker : int }

let dummy_watcher = { wcl = dummy_clause; blocker = -1 }

type strategy = {
  var_decay : float;
  restart_base : int;
  default_phase : bool;
}

let default_strategy = { var_decay = 0.95; restart_base = 100; default_phase = false }

exception Canceled

(* A DRAT-style trace.  The checker keeps an "active set" mirroring the
   solver's clause database clause-for-clause (clauses are compared as
   sorted literal sets, so the solver may log literal arrays in whatever
   order its watches left them):
   - [P_input]  original clause, admitted without justification;
   - [P_rup]    derived clause; checkable by reverse unit propagation
                over the active set (learnt clauses, strengthenings,
                stripped inputs, assumption-core negations; [P_rup [||]]
                is the refutation);
   - [P_lemma]  theory lemma integrated mid-search; justified by
                re-running a standalone theory solver, not by RUP;
   - [P_pure]   pure-literal unit: sound because no active clause
                contains the negation (a RAT step of width 0);
   - [P_delete] removal of a clause currently in the active set. *)
type proof_step =
  | P_input of int array
  | P_rup of int array
  | P_lemma of int array
  | P_pure of int
  | P_delete of int array

type t = {
  mutable nvars : int;
  mutable assign : int array;
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array;
  mutable seen : bool array;
  mutable frozen : bool array;
      (* variables pure-literal elimination must never touch: theory
         atoms (constrained outside the clause database) and assumption
         literals (decided by the caller, in either phase) *)
  mutable important : bool array;
      (* variables whose assignment gates early-SAT detection (theory
         atoms): once all of them are assigned and every problem clause
         is satisfied, the remaining variables are don't-cares *)
  mutable activity : float array;
  mutable heap_pos : int array;
  heap : int Vec.t;
  mutable watches : watcher Vec.t array;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable ok : bool;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnts : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnts_made : int;
  mutable core : int list;
      (* after an Unsat answer under assumptions: the subset of the
         assumption literals whose conjunction the clause database
         refutes (empty when the database alone is unsatisfiable) *)
  mutable on_backtrack : int -> unit;
      (* invoked from cancel_until with the new trail size, so theory
         solvers can pop their assertion stacks in lock step *)
  mutable strategy : strategy;
  mutable stop : (unit -> bool) option;
      (* cooperative cancellation: polled periodically during solve *)
  (* -- optimization switches (all off by default: the raw SAT API keeps
        its historical behavior; Smt.Solver flips them per feature) -- *)
  mutable simplify_enabled : bool;
  mutable pure_elim_enabled : bool;
  mutable lbd_enabled : bool;
  mutable early_sat_enabled : bool;
  (* -- preprocessing / early-SAT bookkeeping -- *)
  mutable n_important : int;
  mutable important_assigned : int;
  mutable simp_clauses : int;  (* database size at the last simplify pass *)
  mutable simp_trail : int;  (* root trail size at the last simplify pass *)
  mutable preprocessed : int;  (* clauses removed or strengthened at level 0 *)
  mutable lbd_deletions : int;  (* learnt clauses dropped by LBD-scored reduction *)
  mutable early_sats : int;  (* Sat answers concluded on a partial assignment *)
  mutable scan_backoff : int;  (* conflicts+decisions to wait after a failed scan *)
  mutable next_scan_work : int;
  (* -- proof logging -- *)
  mutable proof_on : bool;
  mutable proof_rev : proof_step list;  (* newest first *)
  mutable proof_len : int;
}

type result = Sat | Unsat

let pos_lit v = 2 * v
let neg_lit v = (2 * v) + 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0
let lit_neg l = l lxor 1

let create () =
  {
    nvars = 0;
    assign = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 None;
    phase = Array.make 16 false;
    seen = Array.make 16 false;
    frozen = Array.make 16 false;
    important = Array.make 16 false;
    activity = Array.make 16 0.0;
    heap_pos = Array.make 16 (-1);
    heap = Vec.create ~dummy:(-1) ();
    watches = Array.init 32 (fun _ -> Vec.create ~dummy:dummy_watcher ());
    trail = Vec.create ~dummy:(-1) ();
    trail_lim = Vec.create ~dummy:(-1) ();
    qhead = 0;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    ok = true;
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnts = 4000.0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnts_made = 0;
    core = [];
    on_backtrack = (fun (_ : int) -> ());
    strategy = default_strategy;
    stop = None;
    simplify_enabled = false;
    pure_elim_enabled = false;
    lbd_enabled = false;
    early_sat_enabled = false;
    n_important = 0;
    important_assigned = 0;
    simp_clauses = -1;
    simp_trail = -1;
    preprocessed = 0;
    lbd_deletions = 0;
    early_sats = 0;
    scan_backoff = 16;
    next_scan_work = 0;
    proof_on = false;
    proof_rev = [];
    proof_len = 0;
  }

let enable_proof s = s.proof_on <- true
let proof_enabled s = s.proof_on
let proof_steps s = List.rev s.proof_rev
let proof_length s = s.proof_len

let log_step s step =
  if s.proof_on then begin
    s.proof_rev <- step :: s.proof_rev;
    s.proof_len <- s.proof_len + 1
  end

let set_strategy s st = s.strategy <- st
let set_stop s f = s.stop <- f
let set_simplify s b = s.simplify_enabled <- b
let set_pure_elim s b = s.pure_elim_enabled <- b
let set_lbd s b = s.lbd_enabled <- b
let set_early_sat s b = s.early_sat_enabled <- b

let nvars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_clauses s = Vec.size s.clauses
let num_restarts s = s.restarts
let num_learnts s = s.learnts_made
let num_preprocessed s = s.preprocessed
let num_lbd_deletions s = s.lbd_deletions
let num_early_sats s = s.early_sats
let unsat_core s = s.core

(* -- variable order (binary max-heap on activity) ------------------------ *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let vi = Vec.get s.heap i and vp = Vec.get s.heap parent in
    if heap_less s vi vp then begin
      Vec.set s.heap i vp;
      Vec.set s.heap parent vi;
      s.heap_pos.(vp) <- i;
      s.heap_pos.(vi) <- parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let n = Vec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_less s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_less s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    let vi = Vec.get s.heap i and vb = Vec.get s.heap !best in
    Vec.set s.heap i vb;
    Vec.set s.heap !best vi;
    s.heap_pos.(vb) <- i;
    s.heap_pos.(vi) <- !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.size s.heap - 1;
    heap_up s (Vec.size s.heap - 1)
  end

let heap_pop s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

(* -- variable allocation -------------------------------------------------- *)

let grow_array arr n dummy =
  let old = Array.length arr in
  if n <= old then arr
  else begin
    let fresh = Array.make (max n (2 * old)) dummy in
    Array.blit arr 0 fresh 0 old;
    fresh
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_array s.assign s.nvars 0;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars None;
  s.phase <- grow_array s.phase s.nvars false;
  s.seen <- grow_array s.seen s.nvars false;
  s.frozen <- grow_array s.frozen s.nvars false;
  s.important <- grow_array s.important s.nvars false;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  let nlits = 2 * s.nvars in
  if Array.length s.watches < nlits then begin
    let old = Array.length s.watches in
    let fresh = Array.make (max nlits (2 * old)) (Vec.create ~dummy:dummy_watcher ()) in
    Array.blit s.watches 0 fresh 0 old;
    for i = old to Array.length fresh - 1 do
      fresh.(i) <- Vec.create ~dummy:dummy_watcher ()
    done;
    s.watches <- fresh
  end;
  s.phase.(v) <- s.strategy.default_phase;
  heap_insert s v;
  v

let freeze_var s v = s.frozen.(v) <- true

let mark_important s v =
  if not s.important.(v) then begin
    s.important.(v) <- true;
    s.n_important <- s.n_important + 1;
    if s.assign.(v) <> 0 then s.important_assigned <- s.important_assigned + 1
  end

(* -- assignment ----------------------------------------------------------- *)

let lit_value s l =
  let v = s.assign.(lit_var l) in
  if lit_sign l then v else -v

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if lit_sign l then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  if s.important.(v) then s.important_assigned <- s.important_assigned + 1;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.phase.(v) <- lit_sign l;
      s.assign.(v) <- 0;
      s.reason.(v) <- None;
      if s.important.(v) then s.important_assigned <- s.important_assigned - 1;
      heap_insert s v
    done;
    s.qhead <- bound;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.on_backtrack bound
  end

(* -- activity ------------------------------------------------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. s.strategy.var_decay

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* -- clauses -------------------------------------------------------------- *)

let attach s c =
  Vec.push s.watches.(c.lits.(0)) { wcl = c; blocker = c.lits.(1) };
  Vec.push s.watches.(c.lits.(1)) { wcl = c; blocker = c.lits.(0) }

let add_clause s lits =
  (* A previous Sat answer leaves its model on the trail; new clauses are
     asserted at level 0, so undo it first. *)
  if decision_level s > 0 then cancel_until s 0;
  if s.ok then begin
    (* Simplify: drop duplicate and false literals, detect tautologies and
       satisfied clauses.  All current assignments are at level 0. *)
    let lits = List.sort_uniq compare lits in
    let orig = if s.proof_on then Array.of_list lits else [||] in
    log_step s (P_input orig);
    let tautology =
      List.exists (fun l -> lit_sign l && List.mem (lit_neg l) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if tautology || satisfied then
      (* the solver never stores this clause, so neither may the
         checker's active set; it can never appear in a derivation *)
      log_step s (P_delete orig)
    else begin
      let lits' = List.filter (fun l -> lit_value s l <> -1) lits in
      if s.proof_on && List.length lits' <> List.length lits then begin
        (* root-false literals were stripped: the stored clause is a
           unit-propagation consequence of the original plus root units *)
        log_step s (P_rup (Array.of_list lits'));
        if lits' <> [] then log_step s (P_delete orig)
      end;
      match lits' with
      | [] -> s.ok <- false
      | [ l ] -> enqueue s l None
      | _ :: _ :: _ ->
        let c =
          { lits = Array.of_list lits'; activity = 0.0; lbd = 0; learnt = false; deleted = false }
        in
        Vec.push s.clauses c;
        attach s c
    end
  end

(* -- propagation ---------------------------------------------------------- *)

let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let fl = lit_neg p in
    let ws = s.watches.(fl) in
    let n = Vec.size ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let w = Vec.get ws !i in
      incr i;
      if lit_value s w.blocker = 1 then begin
        (* Blocking literal is true: the clause is satisfied without
           touching its literal array. *)
        Vec.set ws !j w;
        incr j
      end
      else begin
        let c = w.wcl in
        if not c.deleted then begin
          let lits = c.lits in
          if lits.(0) = fl then begin
            lits.(0) <- lits.(1);
            lits.(1) <- fl
          end;
          let first = lits.(0) in
          if lit_value s first = 1 then begin
            (* Clause satisfied by the other watch; keep it here and
               remember that watch as the blocker. *)
            Vec.set ws !j { wcl = c; blocker = first };
            incr j
          end
          else begin
            let len = Array.length lits in
            let k = ref 2 in
            while !k < len && lit_value s lits.(!k) = -1 do
              incr k
            done;
            if !k < len then begin
              (* Move the watch to lits.(!k). *)
              lits.(1) <- lits.(!k);
              lits.(!k) <- fl;
              Vec.push s.watches.(lits.(1)) { wcl = c; blocker = first }
            end
            else begin
              Vec.set ws !j { wcl = c; blocker = first };
              incr j;
              if lit_value s first = -1 then begin
                confl := Some c;
                s.qhead <- Vec.size s.trail;
                while !i < n do
                  Vec.set ws !j (Vec.get ws !i);
                  incr j;
                  incr i
                done
              end
              else enqueue s first (Some c)
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

(* -- level-0 preprocessing ------------------------------------------------- *)

(* One pass over the clause database at decision level 0, run from the
   top of [solve] when [simplify_enabled]:
     1. root unit propagation to fixpoint;
     2. removal of satisfied clauses and stripping of root-false
        literals (problem and learnt clauses alike);
     3. forward subsumption and self-subsuming resolution over the
        problem clauses;
     4. pure-literal elimination ([pure_elim_enabled] only), skipping
        frozen variables — the pure polarity is asserted at level 0, so
        models stay exact with no separate reconstruction step.
   Every transformation is applied at level 0 and watches are rebuilt
   afterwards, so no search state can dangle.  The pass is skipped when
   the database and root trail are unchanged since the last run. *)

let clean_clause_vec s vec =
  let changed = ref false in
  Vec.iter
    (fun (c : clause) ->
      if not c.deleted then begin
        let lits = c.lits in
        if Array.exists (fun l -> lit_value s l = 1) lits then begin
          c.deleted <- true;
          log_step s (P_delete (Array.copy lits));
          s.preprocessed <- s.preprocessed + 1;
          changed := true
        end
        else if Array.exists (fun l -> lit_value s l = -1) lits then begin
          let live = Array.of_list (List.filter (fun l -> lit_value s l <> -1) (Array.to_list lits)) in
          s.preprocessed <- s.preprocessed + 1;
          changed := true;
          match Array.length live with
          | 0 ->
            s.ok <- false;
            log_step s (P_rup [||])
          | 1 ->
            log_step s (P_rup (Array.copy live));
            log_step s (P_delete (Array.copy lits));
            enqueue s live.(0) None;
            c.deleted <- true
          | _ ->
            log_step s (P_rup (Array.copy live));
            log_step s (P_delete (Array.copy lits));
            c.lits <- live
        end
      end)
    vec;
  !changed

let clause_sig (c : clause) =
  Array.fold_left (fun acc l -> acc lor (1 lsl (l mod 62))) 0 c.lits

(* [a] and [b] sorted ascending: is every literal of [a] in [b]? *)
let subset_sorted (a : int array) (b : int array) =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    if a.(!i) = b.(!j) then begin
      incr i;
      incr j
    end
    else if a.(!i) > b.(!j) then incr j
    else i := na + 1
  done;
  !i = na

(* does C = [c_lits] strengthen D = [d_lits] by resolving on [l], i.e.
   (C \ {l}) ∪ {¬l} ⊆ D?  Both inputs sorted; clauses are small, so a
   sorted copy per candidate is cheap. *)
let strengthens (c_lits : int array) l (d_lits : int array) =
  let a = Array.map (fun x -> if x = l then lit_neg l else x) c_lits in
  Array.sort compare a;
  subset_sorted a d_lits

let subsume_pass s =
  let changed = ref false in
  (* Live problem clauses, literal arrays sorted (watches are rebuilt
     after the pass, and no clause is a reason at level 0). *)
  let live = ref [] in
  Vec.iter (fun (c : clause) -> if not c.deleted then live := c :: !live) s.clauses;
  let cs = Array.of_list !live in
  Array.iter (fun (c : clause) -> Array.sort compare c.lits) cs;
  let sigs = Array.map clause_sig cs in
  let occ = Array.make (2 * s.nvars) [] in
  Array.iteri
    (fun i (c : clause) -> Array.iter (fun l -> occ.(l) <- i :: occ.(l)) c.lits)
    cs;
  let order = Array.init (Array.length cs) (fun i -> i) in
  Array.sort (fun a b -> compare (Array.length cs.(a).lits) (Array.length cs.(b).lits)) order;
  (* forward subsumption: short clauses kill the longer ones they imply *)
  Array.iter
    (fun i ->
      let c = cs.(i) in
      if not c.deleted then begin
        let best = ref c.lits.(0) in
        Array.iter (fun l -> if List.length occ.(l) < List.length occ.(!best) then best := l) c.lits;
        if List.length occ.(!best) <= 1000 then
          List.iter
            (fun j ->
              let d = cs.(j) in
              if j <> i && (not d.deleted)
                 && Array.length d.lits >= Array.length c.lits
                 && sigs.(i) land lnot sigs.(j) = 0
                 && subset_sorted c.lits d.lits
              then begin
                d.deleted <- true;
                log_step s (P_delete (Array.copy d.lits));
                s.preprocessed <- s.preprocessed + 1;
                changed := true
              end)
            occ.(!best)
      end)
    order;
  (* self-subsuming resolution: C with l and D with ¬l, C \ {l} ⊆ D \ {¬l}:
     the resolvent C\{l} ∨ D\{¬l} = D \ {¬l} replaces D *)
  Array.iteri
    (fun i (c : clause) ->
      if (not c.deleted) && Array.length c.lits <= 20 then
        Array.iter
          (fun l ->
            let nl = lit_neg l in
            if nl < Array.length occ && List.length occ.(nl) <= 1000 then
              List.iter
                (fun j ->
                  let d = cs.(j) in
                  if j <> i && (not d.deleted)
                     && Array.length d.lits >= Array.length c.lits
                     && sigs.(i) land lnot (sigs.(j) lor (1 lsl (l mod 62))) = 0
                     && strengthens c.lits l d.lits
                  then begin
                    let live = Array.of_list (List.filter (fun x -> x <> nl) (Array.to_list d.lits)) in
                    log_step s (P_rup (Array.copy live));
                    log_step s (P_delete (Array.copy d.lits));
                    s.preprocessed <- s.preprocessed + 1;
                    changed := true;
                    sigs.(j) <- Array.fold_left (fun acc x -> acc lor (1 lsl (x mod 62))) 0 live;
                    if Array.length live = 1 then begin
                      (if lit_value s live.(0) = 0 then enqueue s live.(0) None
                       else if lit_value s live.(0) = -1 then begin
                         s.ok <- false;
                         log_step s (P_rup [||])
                       end);
                      d.deleted <- true
                    end
                    else d.lits <- live
                  end)
                occ.(nl))
          c.lits)
    cs;
  !changed

let pure_literal_pass s =
  let pos = Array.make s.nvars false and neg = Array.make s.nvars false in
  Vec.iter
    (fun (c : clause) ->
      if not c.deleted then
        Array.iter
          (fun l -> if lit_sign l then pos.(lit_var l) <- true else neg.(lit_var l) <- true)
          c.lits)
    s.clauses;
  let changed = ref false in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = 0 && (not s.frozen.(v)) && pos.(v) <> neg.(v) then begin
      (* [v] occurs in live problem clauses with a single polarity, is
         not a theory atom and cannot be assumed: fixing it to its pure
         polarity preserves satisfiability, and the level-0 assignment
         keeps the model exact. *)
      let l = if pos.(v) then pos_lit v else neg_lit v in
      log_step s (P_pure l);
      enqueue s l None;
      changed := true
    end
  done;
  !changed

let compact_clause_vec vec =
  let kept = ref [] in
  Vec.iter (fun (c : clause) -> if not c.deleted then kept := c :: !kept) vec;
  let kept = List.rev !kept in
  Vec.clear vec;
  List.iter (fun c -> Vec.push vec c) kept

let rebuild_watches s =
  for l = 0 to (2 * s.nvars) - 1 do
    Vec.clear s.watches.(l)
  done;
  Vec.iter (fun c -> attach s c) s.clauses;
  Vec.iter (fun c -> attach s c) s.learnts

let simplify s =
  if s.ok && decision_level s = 0 then begin
    (match propagate s with
     | Some _ ->
       s.ok <- false;
       log_step s (P_rup [||])
     | None -> ());
    if s.ok
       && (Vec.size s.clauses + Vec.size s.learnts <> s.simp_clauses
          || Vec.size s.trail <> s.simp_trail)
    then begin
      (* Facts need no justification; clearing root reasons frees every
         clause for restructuring. *)
      for i = 0 to Vec.size s.trail - 1 do
        s.reason.(lit_var (Vec.get s.trail i)) <- None
      done;
      let rounds = ref 0 in
      let changed = ref true in
      while s.ok && !changed && !rounds < 3 do
        incr rounds;
        changed := false;
        if clean_clause_vec s s.clauses then changed := true;
        if clean_clause_vec s s.learnts then changed := true;
        if s.ok && subsume_pass s then changed := true;
        if s.ok && s.pure_elim_enabled && pure_literal_pass s then changed := true;
        if s.ok && s.qhead < Vec.size s.trail then begin
          (* Units found above have not propagated through the (stale)
             watches; rebuild them first, then run to fixpoint. *)
          compact_clause_vec s.clauses;
          compact_clause_vec s.learnts;
          rebuild_watches s;
          (match propagate s with
           | Some _ ->
             s.ok <- false;
             log_step s (P_rup [||])
           | None -> ());
          changed := true
        end
      done;
      compact_clause_vec s.clauses;
      compact_clause_vec s.learnts;
      rebuild_watches s;
      s.simp_clauses <- Vec.size s.clauses + Vec.size s.learnts;
      s.simp_trail <- Vec.size s.trail
    end
  end

(* -- conflict analysis (first UIP) ----------------------------------------- *)

let reason_exn s v =
  match s.reason.(v) with
  | Some c -> c
  | None -> assert false

(* [q] is redundant in the learnt clause if its reason's antecedents are all
   already in the clause (seen) or fixed at level 0: local minimization. *)
let lit_redundant s q =
  match s.reason.(lit_var q) with
  | None -> false
  | Some r ->
    let ok = ref true in
    for k = 1 to Array.length r.lits - 1 do
      let v = lit_var r.lits.(k) in
      if not s.seen.(v) && s.level.(v) > 0 then ok := false
    done;
    !ok

(* Recursive (MiniSat-exact) minimization: [q] is redundant if every
   path from its reason bottoms out in clause literals or level-0 facts.
   [abstract_levels] is a Bloom filter of the levels present in the
   clause — a var on a level outside it can never be absorbed.
   Successfully explored vars stay marked in [s.seen] (memoization);
   the caller collects them in [extra] and unmarks after use. *)
let abstract_level s v = 1 lsl (s.level.(v) mod 61)

exception Keep

let lit_redundant_rec s abstract_levels extra q0 =
  let marked = ref [] in
  let rec go q =
    match s.reason.(lit_var q) with
    | None -> raise Keep
    | Some r ->
      for k = 1 to Array.length r.lits - 1 do
        let l = r.lits.(k) in
        let v = lit_var l in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          if s.reason.(v) <> None && abstract_level s v land abstract_levels <> 0 then begin
            s.seen.(v) <- true;
            marked := v :: !marked;
            go l
          end
          else raise Keep
        end
      done
  in
  match go q0 with
  | () ->
    extra := List.rev_append !marked !extra;
    true
  | exception Keep ->
    List.iter (fun v -> s.seen.(v) <- false) !marked;
    false

let compute_lbd s lits =
  List.length (List.sort_uniq compare (List.map (fun q -> s.level.(lit_var q)) lits))

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let c = ref confl in
  let dl = decision_level s in
  let expanding = ref true in
  while !expanding do
    if !c.learnt then begin
      cla_bump s !c;
      (* Dynamic LBD re-scoring (Glucose): a learnt clause participating
         in a new conflict gets its glue recomputed against the current
         levels — clauses that keep proving useful migrate towards the
         protected end of [reduce_db]. *)
      if s.lbd_enabled && !c.lbd > 2 then begin
        let l = compute_lbd s (Array.to_list !c.lits) in
        if l < !c.lbd then !c.lbd <- l
      end
    end;
    let lits = !c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= dl then incr path else learnt := q :: !learnt
      end
    done;
    while not s.seen.(lit_var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    s.seen.(lit_var !p) <- false;
    decr path;
    if !path > 0 then c := reason_exn s (lit_var !p) else expanding := false
  done;
  let tail =
    if s.lbd_enabled then begin
      let abstract_levels =
        List.fold_left (fun acc q -> acc lor abstract_level s (lit_var q)) 0 !learnt
      in
      let extra = ref [] in
      let t = List.filter (fun q -> not (lit_redundant_rec s abstract_levels extra q)) !learnt in
      List.iter (fun v -> s.seen.(v) <- false) !extra;
      t
    end
    else List.filter (fun q -> not (lit_redundant s q)) !learnt
  in
  List.iter (fun q -> s.seen.(lit_var q) <- false) !learnt;
  let asserting = lit_neg !p in
  (* Backjump level: highest level among the tail. *)
  let blevel = List.fold_left (fun acc q -> max acc s.level.(lit_var q)) 0 tail in
  (* Put a literal of the backjump level in watch position 1. *)
  let tail =
    match List.partition (fun q -> s.level.(lit_var q) = blevel) tail with
    | q :: rest_max, rest -> q :: (rest_max @ rest)
    | [], rest -> rest
  in
  (asserting :: tail, blevel)

(* -- learnt clause database reduction -------------------------------------- *)

(* Physical equality must be on the clause itself: [reason == Some c]
   compares against a freshly allocated option block and is never true,
   which would let [reduce_db] delete a clause that is the recorded
   reason of a trail literal — conflict-clause minimization then cites
   a deleted clause and the logged proof loses an antecedent. *)
let locked s (c : clause) =
  Array.length c.lits > 0
  && match s.reason.(lit_var c.lits.(0)) with Some r -> r == c | None -> false

let reduce_db s =
  if s.lbd_enabled then begin
    (* Glue-aware reduction: delete the worse half by (high LBD, low
       activity), never touching locked, binary or glue (lbd <= 2)
       clauses — they encode the tight dependencies of the search. *)
    Vec.sort_in_place
      (fun (a : clause) (b : clause) ->
        if a.lbd <> b.lbd then compare b.lbd a.lbd else compare a.activity b.activity)
      s.learnts;
    let n = Vec.size s.learnts in
    let kept = Vec.create ~dummy:dummy_clause () in
    for i = 0 to n - 1 do
      let c = Vec.get s.learnts i in
      if i < n / 2 && (not (locked s c)) && Array.length c.lits > 2 && c.lbd > 2 then begin
        c.deleted <- true;
        log_step s (P_delete (Array.copy c.lits));
        s.lbd_deletions <- s.lbd_deletions + 1
      end
      else Vec.push kept c
    done;
    Vec.clear s.learnts;
    Vec.iter (fun c -> Vec.push s.learnts c) kept
  end
  else begin
    Vec.sort_in_place
      (fun (a : clause) (b : clause) -> compare a.activity b.activity)
      s.learnts;
    let n = Vec.size s.learnts in
    let kept = Vec.create ~dummy:dummy_clause () in
    for i = 0 to n - 1 do
      let c = Vec.get s.learnts i in
      if i < n / 2 && (not (locked s c)) && Array.length c.lits > 2 then begin
        c.deleted <- true;
        log_step s (P_delete (Array.copy c.lits))
      end
      else Vec.push kept c
    done;
    Vec.clear s.learnts;
    Vec.iter (fun c -> Vec.push s.learnts c) kept
  end

(* Integrate a theory-learned clause at the current state without
   restarting from scratch: attach it with valid watches and backjump
   just far enough that it is no longer conflicting (then it propagates
   like any learnt clause). *)
let integrate_clause s lits =
  let lits = List.sort_uniq compare lits in
  log_step s (P_lemma (Array.of_list lits));
  (* literals false at level 0 can never help *)
  let lits' =
    List.filter (fun l -> not (lit_value s l = -1 && s.level.(lit_var l) = 0)) lits
  in
  if s.proof_on && List.length lits' <> List.length lits then begin
    log_step s (P_rup (Array.of_list lits'));
    if lits' <> [] then log_step s (P_delete (Array.of_list lits))
  end;
  match lits' with
  | [] -> s.ok <- false
  | [ l ] ->
    cancel_until s 0;
    (match lit_value s l with
     | 1 -> ()
     | -1 ->
       s.ok <- false;
       log_step s (P_rup [||])
     | _ -> enqueue s l None)
  | _ :: _ :: _ ->
    let arr = Array.of_list lits' in
    let c =
      { lits = arr; activity = 0.0; lbd = Array.length arr; learnt = true; deleted = false }
    in
    s.learnts_made <- s.learnts_made + 1;
    (* watch preference: true > unassigned > false by decreasing level *)
    let rank l =
      match lit_value s l with
      | 1 -> max_int
      | 0 -> max_int - 1
      | _ -> s.level.(lit_var l)
    in
    let finished = ref false in
    while not !finished do
      Array.sort (fun a b -> compare (rank b) (rank a)) arr;
      match (lit_value s arr.(0), lit_value s arr.(1)) with
      | 1, _ | 0, (1 | 0) ->
        (* satisfied, or two non-false watches: just attach *)
        Vec.push s.learnts c;
        attach s c;
        finished := true
      | 0, -1 ->
        (* asserting: propagate the single non-false literal *)
        Vec.push s.learnts c;
        attach s c;
        enqueue s arr.(0) (Some c);
        finished := true
      | -1, _ ->
        (* conflicting (all false): backjump below the highest level *)
        let l0 = s.level.(lit_var arr.(0)) in
        if l0 = 0 then begin
          s.ok <- false;
          log_step s (P_rup [||]);
          finished := true
        end
        else begin
          let l1 = s.level.(lit_var arr.(1)) in
          cancel_until s (if l1 < l0 then l1 else l0 - 1)
        end
      | _ -> assert false
    done

(* -- final conflict analysis (assumptions) ---------------------------------- *)

(* [p] is an assumption literal found false under the current trail.
   Walk the implication graph backwards from [p]'s variable and collect
   the assumption literals that, together with the clause database,
   imply [lit_neg p]: the returned list (which includes [p]) is an
   unsat core over the assumptions.  Decisions above level 0 are
   necessarily assumptions here, because assumptions occupy the first
   decision levels and a normal decision is never made before all of
   them are established. *)
let analyze_final s p =
  if decision_level s = 0 then [ p ]
  else begin
    let core = ref [ p ] in
    s.seen.(lit_var p) <- true;
    let bottom = Vec.get s.trail_lim 0 in
    for i = Vec.size s.trail - 1 downto bottom do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      if s.seen.(v) then begin
        (match s.reason.(v) with
         | None -> core := l :: !core
         | Some c ->
           for k = 1 to Array.length c.lits - 1 do
             let u = lit_var c.lits.(k) in
             if s.level.(u) > 0 then s.seen.(u) <- true
           done);
        s.seen.(v) <- false
      end
    done;
    s.seen.(lit_var p) <- false;
    !core
  end

(* -- restarts -------------------------------------------------------------- *)

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's algorithm) *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* -- early-SAT detection ---------------------------------------------------- *)

(* With every theory atom assigned and every problem clause satisfied,
   the unassigned variables are don't-cares: reading them as [false]
   (what [value_var] does for an unassigned variable) yields a total
   model of the clause database, and — because learnt clauses are
   consequences of the problem clauses plus the theory axioms — of the
   learnt clauses too, once [final_check] confirms theory consistency.
   The scan is linear in the database, so a failed attempt doubles an
   exponential backoff before the next one. *)
let all_problem_clauses_satisfied s =
  let ok = ref true in
  let n = Vec.size s.clauses in
  let i = ref 0 in
  while !ok && !i < n do
    let c = Vec.get s.clauses !i in
    if not c.deleted then begin
      let lits = c.lits in
      let len = Array.length lits in
      let sat_cl = ref false in
      let k = ref 0 in
      while (not !sat_cl) && !k < len do
        if lit_value s lits.(!k) = 1 then sat_cl := true;
        incr k
      done;
      if not !sat_cl then ok := false
    end;
    incr i
  done;
  !ok

(* -- main solve loop -------------------------------------------------------- *)

let decide s =
  let rec next () =
    if Vec.is_empty s.heap then -1
    else begin
      let v = heap_pop s in
      if s.assign.(v) = 0 then v else next ()
    end
  in
  let v = next () in
  if v < 0 then false
  else begin
    s.decisions <- s.decisions + 1;
    Vec.push s.trail_lim (Vec.size s.trail);
    enqueue s (if s.phase.(v) then pos_lit v else neg_lit v) None;
    true
  end

(* Cooperative cancellation point: when the stop hook fires, abandon
   the search at level 0 (keeping all learnt clauses — they were derived
   from the clause database alone, so a later solve may reuse them). *)
let poll_stop s =
  match s.stop with
  | Some f when f () ->
    cancel_until s 0;
    raise Canceled
  | _ -> ()

let solve ?(assumptions = []) ?(final_check = fun (_ : t) -> [])
    ?(partial_check = fun (_ : t) -> []) ?(partial_interval = 64)
    ?(on_backtrack = fun (_ : int) -> ()) s =
  s.on_backtrack <- on_backtrack;
  (* A previous Sat answer leaves its model on the trail; start clean. *)
  cancel_until s 0;
  s.core <- [];
  poll_stop s;
  if s.simplify_enabled then simplify s;
  s.scan_backoff <- 16;
  s.next_scan_work <- 0;
  let assumps = Array.of_list assumptions in
  let n_assumps = Array.length assumps in
  (* Establish the next pending assumption as a decision.  Assumption
     [i] owns decision level [i+1] (already-true assumptions get an
     empty level), so they always precede normal decisions and
     [analyze_final] can treat every decision above level 0 as an
     assumption. *)
  let rec pick_assumption () =
    if decision_level s >= n_assumps then `Search
    else begin
      let p = assumps.(decision_level s) in
      match lit_value s p with
      | 1 ->
        Vec.push s.trail_lim (Vec.size s.trail);
        pick_assumption ()
      | -1 -> `Failed p
      | _ ->
        s.decisions <- s.decisions + 1;
        Vec.push s.trail_lim (Vec.size s.trail);
        enqueue s p None;
        `Propagate
    end
  in
  let restart_num = ref 0 in
  let conflicts_since_restart = ref 0 in
  let restart_limit = ref (s.strategy.restart_base * luby 0) in
  let answer = ref None in
  let since_partial = ref 0 in
  let steps = ref 0 in
  if not s.ok then answer := Some Unsat;
  while !answer = None do
    match propagate s with
    | Some confl ->
      s.conflicts <- s.conflicts + 1;
      incr conflicts_since_restart;
      incr steps;
      if !steps land 255 = 0 then poll_stop s;
      if decision_level s = 0 then begin
        s.ok <- false;
        log_step s (P_rup [||]);
        answer := Some Unsat
      end
      else begin
        let learnt, blevel = analyze s confl in
        log_step s (P_rup (Array.of_list learnt));
        cancel_until s blevel;
        (match learnt with
         | [] -> assert false
         | [ l ] -> enqueue s l None
         | l :: _ ->
           let c =
             {
               lits = Array.of_list learnt;
               activity = 0.0;
               lbd = compute_lbd s learnt;
               learnt = true;
               deleted = false;
             }
           in
           cla_bump s c;
           s.learnts_made <- s.learnts_made + 1;
           Vec.push s.learnts c;
           attach s c;
           enqueue s l (Some c));
        var_decay s;
        cla_decay s
      end
    | None when !since_partial >= partial_interval ->
      (* Periodic partial theory check on the propagation-complete
         prefix: catches theory-inconsistent assignments long before
         they are total. *)
      since_partial := 0;
      (match partial_check s with
       | [] -> ()
       | conflict_clauses ->
         List.iter (fun c -> integrate_clause s c) conflict_clauses;
         if not s.ok then answer := Some Unsat)
    | None ->
      if !conflicts_since_restart >= !restart_limit then begin
        incr restart_num;
        s.restarts <- s.restarts + 1;
        conflicts_since_restart := 0;
        restart_limit := s.strategy.restart_base * luby !restart_num;
        cancel_until s 0
      end
      else begin
        match pick_assumption () with
        | `Failed p ->
          s.core <- analyze_final s p;
          (* the negated core is implied by the database alone: record
             it so the trace refutes the assumptions by propagation *)
          log_step s (P_rup (Array.of_list (List.map lit_neg s.core)));
          answer := Some Unsat
        | `Propagate -> ()
        | `Search ->
          let total = Vec.size s.trail = s.nvars in
          let early =
            (not total) && s.early_sat_enabled
            && s.important_assigned = s.n_important
            && s.decisions + s.conflicts >= s.next_scan_work
            &&
            if all_problem_clauses_satisfied s then true
            else begin
              s.next_scan_work <- s.decisions + s.conflicts + s.scan_backoff;
              s.scan_backoff <- min 4096 (2 * s.scan_backoff);
              false
            end
          in
          if total || early then begin
            match final_check s with
            | [] ->
              if early then s.early_sats <- s.early_sats + 1;
              answer := Some Sat
            | conflict_clauses ->
              List.iter (fun c -> integrate_clause s c) conflict_clauses;
              if not s.ok then answer := Some Unsat
          end
          else begin
            if float_of_int (Vec.size s.learnts) > s.max_learnts then begin
              reduce_db s;
              s.max_learnts <- s.max_learnts *. 1.3
            end;
            let made = decide s in
            assert made;
            incr since_partial;
            incr steps;
            if !steps land 255 = 0 then poll_stop s
          end
      end
  done;
  (match !answer with
   | Some Sat -> ()
   | _ -> cancel_until s 0);
  match !answer with
  | Some r -> r
  | None -> assert false

let value_var s v = s.assign.(v) = 1
let value_lit s l = lit_value s l = 1

let var_assigned s v = s.assign.(v) <> 0

let trail_size s = Vec.size s.trail
let trail_lit s i = Vec.get s.trail i
