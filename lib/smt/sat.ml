(* CDCL with two-watched literals (MiniSat lineage).  Conventions:
   - literal [2*v] is the positive literal of variable [v], [2*v+1] the
     negative one;
   - [assign.(v)] is [0] when unassigned, [1] when true, [-1] when false;
   - a clause's two watched literals sit at positions 0 and 1 of [lits];
   - [watches.(l)] holds the clauses currently watching literal [l];
   - the implied literal of a reason clause sits at position 0. *)

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

let dummy_clause = { lits = [||]; activity = 0.0; learnt = false; deleted = true }

type strategy = {
  var_decay : float;
  restart_base : int;
  default_phase : bool;
}

let default_strategy = { var_decay = 0.95; restart_base = 100; default_phase = false }

exception Canceled

type t = {
  mutable nvars : int;
  mutable assign : int array;
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array;
  mutable seen : bool array;
  mutable activity : float array;
  mutable heap_pos : int array;
  heap : int Vec.t;
  mutable watches : clause Vec.t array;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable ok : bool;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnts : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnts_made : int;
  mutable core : int list;
      (* after an Unsat answer under assumptions: the subset of the
         assumption literals whose conjunction the clause database
         refutes (empty when the database alone is unsatisfiable) *)
  mutable on_backtrack : int -> unit;
      (* invoked from cancel_until with the new trail size, so theory
         solvers can pop their assertion stacks in lock step *)
  mutable strategy : strategy;
  mutable stop : (unit -> bool) option;
      (* cooperative cancellation: polled periodically during solve *)
}

type result = Sat | Unsat

let pos_lit v = 2 * v
let neg_lit v = (2 * v) + 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0
let lit_neg l = l lxor 1

let create () =
  {
    nvars = 0;
    assign = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 None;
    phase = Array.make 16 false;
    seen = Array.make 16 false;
    activity = Array.make 16 0.0;
    heap_pos = Array.make 16 (-1);
    heap = Vec.create ~dummy:(-1) ();
    watches = Array.init 32 (fun _ -> Vec.create ~dummy:dummy_clause ());
    trail = Vec.create ~dummy:(-1) ();
    trail_lim = Vec.create ~dummy:(-1) ();
    qhead = 0;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    ok = true;
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnts = 4000.0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnts_made = 0;
    core = [];
    on_backtrack = (fun (_ : int) -> ());
    strategy = default_strategy;
    stop = None;
  }

let set_strategy s st = s.strategy <- st
let set_stop s f = s.stop <- f

let nvars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_clauses s = Vec.size s.clauses
let num_restarts s = s.restarts
let num_learnts s = s.learnts_made
let unsat_core s = s.core

(* -- variable order (binary max-heap on activity) ------------------------ *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let vi = Vec.get s.heap i and vp = Vec.get s.heap parent in
    if heap_less s vi vp then begin
      Vec.set s.heap i vp;
      Vec.set s.heap parent vi;
      s.heap_pos.(vp) <- i;
      s.heap_pos.(vi) <- parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let n = Vec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_less s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_less s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    let vi = Vec.get s.heap i and vb = Vec.get s.heap !best in
    Vec.set s.heap i vb;
    Vec.set s.heap !best vi;
    s.heap_pos.(vb) <- i;
    s.heap_pos.(vi) <- !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.size s.heap - 1;
    heap_up s (Vec.size s.heap - 1)
  end

let heap_pop s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

(* -- variable allocation -------------------------------------------------- *)

let grow_array arr n dummy =
  let old = Array.length arr in
  if n <= old then arr
  else begin
    let fresh = Array.make (max n (2 * old)) dummy in
    Array.blit arr 0 fresh 0 old;
    fresh
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_array s.assign s.nvars 0;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars None;
  s.phase <- grow_array s.phase s.nvars false;
  s.seen <- grow_array s.seen s.nvars false;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  let nlits = 2 * s.nvars in
  if Array.length s.watches < nlits then begin
    let old = Array.length s.watches in
    let fresh = Array.make (max nlits (2 * old)) (Vec.create ~dummy:dummy_clause ()) in
    Array.blit s.watches 0 fresh 0 old;
    for i = old to Array.length fresh - 1 do
      fresh.(i) <- Vec.create ~dummy:dummy_clause ()
    done;
    s.watches <- fresh
  end;
  s.phase.(v) <- s.strategy.default_phase;
  heap_insert s v;
  v

(* -- assignment ----------------------------------------------------------- *)

let lit_value s l =
  let v = s.assign.(lit_var l) in
  if lit_sign l then v else -v

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if lit_sign l then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.phase.(v) <- lit_sign l;
      s.assign.(v) <- 0;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.qhead <- bound;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.on_backtrack bound
  end

(* -- activity ------------------------------------------------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. s.strategy.var_decay

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* -- clauses -------------------------------------------------------------- *)

let attach s c =
  Vec.push s.watches.(c.lits.(0)) c;
  Vec.push s.watches.(c.lits.(1)) c

let add_clause s lits =
  (* A previous Sat answer leaves its model on the trail; new clauses are
     asserted at level 0, so undo it first. *)
  if decision_level s > 0 then cancel_until s 0;
  if s.ok then begin
    (* Simplify: drop duplicate and false literals, detect tautologies and
       satisfied clauses.  All current assignments are at level 0. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> lit_sign l && List.mem (lit_neg l) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if not (tautology || satisfied) then begin
      let lits = List.filter (fun l -> lit_value s l <> -1) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> enqueue s l None
      | _ :: _ :: _ ->
        let c = { lits = Array.of_list lits; activity = 0.0; learnt = false; deleted = false } in
        Vec.push s.clauses c;
        attach s c
    end
  end

(* -- propagation ---------------------------------------------------------- *)

let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let fl = lit_neg p in
    let ws = s.watches.(fl) in
    let n = Vec.size ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.deleted then begin
        let lits = c.lits in
        if lits.(0) = fl then begin
          lits.(0) <- lits.(1);
          lits.(1) <- fl
        end;
        if lit_value s lits.(0) = 1 then begin
          (* Clause satisfied by the other watch; keep it here. *)
          Vec.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && lit_value s lits.(!k) = -1 do
            incr k
          done;
          if !k < len then begin
            (* Move the watch to lits.(!k). *)
            lits.(1) <- lits.(!k);
            lits.(!k) <- fl;
            Vec.push s.watches.(lits.(1)) c
          end
          else begin
            Vec.set ws !j c;
            incr j;
            if lit_value s lits.(0) = -1 then begin
              confl := Some c;
              s.qhead <- Vec.size s.trail;
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            end
            else enqueue s lits.(0) (Some c)
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

(* -- conflict analysis (first UIP) ----------------------------------------- *)

let reason_exn s v =
  match s.reason.(v) with
  | Some c -> c
  | None -> assert false

(* [q] is redundant in the learnt clause if its reason's antecedents are all
   already in the clause (seen) or fixed at level 0: local minimization. *)
let lit_redundant s q =
  match s.reason.(lit_var q) with
  | None -> false
  | Some r ->
    let ok = ref true in
    for k = 1 to Array.length r.lits - 1 do
      let v = lit_var r.lits.(k) in
      if not s.seen.(v) && s.level.(v) > 0 then ok := false
    done;
    !ok

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let c = ref confl in
  let dl = decision_level s in
  let expanding = ref true in
  while !expanding do
    if !c.learnt then cla_bump s !c;
    let lits = !c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= dl then incr path else learnt := q :: !learnt
      end
    done;
    while not s.seen.(lit_var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    s.seen.(lit_var !p) <- false;
    decr path;
    if !path > 0 then c := reason_exn s (lit_var !p) else expanding := false
  done;
  let tail = List.filter (fun q -> not (lit_redundant s q)) !learnt in
  List.iter (fun q -> s.seen.(lit_var q) <- false) !learnt;
  let asserting = lit_neg !p in
  (* Backjump level: highest level among the tail. *)
  let blevel = List.fold_left (fun acc q -> max acc s.level.(lit_var q)) 0 tail in
  (* Put a literal of the backjump level in watch position 1. *)
  let tail =
    match List.partition (fun q -> s.level.(lit_var q) = blevel) tail with
    | q :: rest_max, rest -> q :: (rest_max @ rest)
    | [], rest -> rest
  in
  (asserting :: tail, blevel)

(* -- learnt clause database reduction -------------------------------------- *)

let locked s (c : clause) = Array.length c.lits > 0 && s.reason.(lit_var c.lits.(0)) == Some c

let reduce_db s =
  Vec.sort_in_place (fun (a : clause) (b : clause) -> compare a.activity b.activity) s.learnts;
  let n = Vec.size s.learnts in
  let kept = Vec.create ~dummy:dummy_clause () in
  for i = 0 to n - 1 do
    let c = Vec.get s.learnts i in
    if (i < n / 2) && (not (locked s c)) && Array.length c.lits > 2 then c.deleted <- true
    else Vec.push kept c
  done;
  Vec.clear s.learnts;
  Vec.iter (fun c -> Vec.push s.learnts c) kept


(* Integrate a theory-learned clause at the current state without
   restarting from scratch: attach it with valid watches and backjump
   just far enough that it is no longer conflicting (then it propagates
   like any learnt clause). *)
let integrate_clause s lits =
  let lits = List.sort_uniq compare lits in
  (* literals false at level 0 can never help *)
  let lits =
    List.filter (fun l -> not (lit_value s l = -1 && s.level.(lit_var l) = 0)) lits
  in
  match lits with
  | [] -> s.ok <- false
  | [ l ] ->
    cancel_until s 0;
    (match lit_value s l with
     | 1 -> ()
     | -1 -> s.ok <- false
     | _ -> enqueue s l None)
  | _ :: _ :: _ ->
    let arr = Array.of_list lits in
    let c = { lits = arr; activity = 0.0; learnt = true; deleted = false } in
    s.learnts_made <- s.learnts_made + 1;
    (* watch preference: true > unassigned > false by decreasing level *)
    let rank l =
      match lit_value s l with
      | 1 -> max_int
      | 0 -> max_int - 1
      | _ -> s.level.(lit_var l)
    in
    let finished = ref false in
    while not !finished do
      Array.sort (fun a b -> compare (rank b) (rank a)) arr;
      match (lit_value s arr.(0), lit_value s arr.(1)) with
      | 1, _ | 0, (1 | 0) ->
        (* satisfied, or two non-false watches: just attach *)
        Vec.push s.learnts c;
        attach s c;
        finished := true
      | 0, -1 ->
        (* asserting: propagate the single non-false literal *)
        Vec.push s.learnts c;
        attach s c;
        enqueue s arr.(0) (Some c);
        finished := true
      | -1, _ ->
        (* conflicting (all false): backjump below the highest level *)
        let l0 = s.level.(lit_var arr.(0)) in
        if l0 = 0 then begin
          s.ok <- false;
          finished := true
        end
        else begin
          let l1 = s.level.(lit_var arr.(1)) in
          cancel_until s (if l1 < l0 then l1 else l0 - 1)
        end
      | _ -> assert false
    done

(* -- final conflict analysis (assumptions) ---------------------------------- *)

(* [p] is an assumption literal found false under the current trail.
   Walk the implication graph backwards from [p]'s variable and collect
   the assumption literals that, together with the clause database,
   imply [lit_neg p]: the returned list (which includes [p]) is an
   unsat core over the assumptions.  Decisions above level 0 are
   necessarily assumptions here, because assumptions occupy the first
   decision levels and a normal decision is never made before all of
   them are established. *)
let analyze_final s p =
  if decision_level s = 0 then [ p ]
  else begin
    let core = ref [ p ] in
    s.seen.(lit_var p) <- true;
    let bottom = Vec.get s.trail_lim 0 in
    for i = Vec.size s.trail - 1 downto bottom do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      if s.seen.(v) then begin
        (match s.reason.(v) with
         | None -> core := l :: !core
         | Some c ->
           for k = 1 to Array.length c.lits - 1 do
             let u = lit_var c.lits.(k) in
             if s.level.(u) > 0 then s.seen.(u) <- true
           done);
        s.seen.(v) <- false
      end
    done;
    s.seen.(lit_var p) <- false;
    !core
  end

(* -- restarts -------------------------------------------------------------- *)

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's algorithm) *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* -- main solve loop -------------------------------------------------------- *)

let decide s =
  let rec next () =
    if Vec.is_empty s.heap then -1
    else begin
      let v = heap_pop s in
      if s.assign.(v) = 0 then v else next ()
    end
  in
  let v = next () in
  if v < 0 then false
  else begin
    s.decisions <- s.decisions + 1;
    Vec.push s.trail_lim (Vec.size s.trail);
    enqueue s (if s.phase.(v) then pos_lit v else neg_lit v) None;
    true
  end

(* Cooperative cancellation point: when the stop hook fires, abandon
   the search at level 0 (keeping all learnt clauses — they were derived
   from the clause database alone, so a later solve may reuse them). *)
let poll_stop s =
  match s.stop with
  | Some f when f () ->
    cancel_until s 0;
    raise Canceled
  | _ -> ()

let solve ?(assumptions = []) ?(final_check = fun (_ : t) -> [])
    ?(partial_check = fun (_ : t) -> []) ?(partial_interval = 64)
    ?(on_backtrack = fun (_ : int) -> ()) s =
  s.on_backtrack <- on_backtrack;
  (* A previous Sat answer leaves its model on the trail; start clean. *)
  cancel_until s 0;
  s.core <- [];
  poll_stop s;
  let assumps = Array.of_list assumptions in
  let n_assumps = Array.length assumps in
  (* Establish the next pending assumption as a decision.  Assumption
     [i] owns decision level [i+1] (already-true assumptions get an
     empty level), so they always precede normal decisions and
     [analyze_final] can treat every decision above level 0 as an
     assumption. *)
  let rec pick_assumption () =
    if decision_level s >= n_assumps then `Search
    else begin
      let p = assumps.(decision_level s) in
      match lit_value s p with
      | 1 ->
        Vec.push s.trail_lim (Vec.size s.trail);
        pick_assumption ()
      | -1 -> `Failed p
      | _ ->
        s.decisions <- s.decisions + 1;
        Vec.push s.trail_lim (Vec.size s.trail);
        enqueue s p None;
        `Propagate
    end
  in
  let restart_num = ref 0 in
  let conflicts_since_restart = ref 0 in
  let restart_limit = ref (s.strategy.restart_base * luby 0) in
  let answer = ref None in
  let since_partial = ref 0 in
  let steps = ref 0 in
  if not s.ok then answer := Some Unsat;
  while !answer = None do
    match propagate s with
    | Some confl ->
      s.conflicts <- s.conflicts + 1;
      incr conflicts_since_restart;
      incr steps;
      if !steps land 255 = 0 then poll_stop s;
      if decision_level s = 0 then begin
        s.ok <- false;
        answer := Some Unsat
      end
      else begin
        let learnt, blevel = analyze s confl in
        cancel_until s blevel;
        (match learnt with
         | [] -> assert false
         | [ l ] -> enqueue s l None
         | l :: _ ->
           let c =
             { lits = Array.of_list learnt; activity = 0.0; learnt = true; deleted = false }
           in
           cla_bump s c;
           s.learnts_made <- s.learnts_made + 1;
           Vec.push s.learnts c;
           attach s c;
           enqueue s l (Some c));
        var_decay s;
        cla_decay s
      end
    | None when !since_partial >= partial_interval ->
      (* Periodic partial theory check on the propagation-complete
         prefix: catches theory-inconsistent assignments long before
         they are total. *)
      since_partial := 0;
      (match partial_check s with
       | [] -> ()
       | conflict_clauses ->
         List.iter (fun c -> integrate_clause s c) conflict_clauses;
         if not s.ok then answer := Some Unsat)
    | None ->
      if !conflicts_since_restart >= !restart_limit then begin
        incr restart_num;
        s.restarts <- s.restarts + 1;
        conflicts_since_restart := 0;
        restart_limit := s.strategy.restart_base * luby !restart_num;
        cancel_until s 0
      end
      else begin
        match pick_assumption () with
        | `Failed p ->
          s.core <- analyze_final s p;
          answer := Some Unsat
        | `Propagate -> ()
        | `Search ->
          if Vec.size s.trail = s.nvars then begin
            match final_check s with
            | [] -> answer := Some Sat
            | conflict_clauses ->
              List.iter (fun c -> integrate_clause s c) conflict_clauses;
              if not s.ok then answer := Some Unsat
          end
          else begin
            if float_of_int (Vec.size s.learnts) > s.max_learnts then begin
              reduce_db s;
              s.max_learnts <- s.max_learnts *. 1.3
            end;
            let made = decide s in
            assert made;
            incr since_partial;
            incr steps;
            if !steps land 255 = 0 then poll_stop s
          end
      end
  done;
  (match !answer with
   | Some Sat -> ()
   | _ -> cancel_until s 0);
  match !answer with
  | Some r -> r
  | None -> assert false

let value_var s v = s.assign.(v) = 1
let value_lit s l = lit_value s l = 1

let var_assigned s v = s.assign.(v) <> 0

let trail_size s = Vec.size s.trail
let trail_lit s i = Vec.get s.trail i
