(* Edges live in a flat int arena, [stride] words per assertion, in
   trail order.  The theory path asserts (and re-asserts, after every
   backjump) hundreds of thousands of constraints per solve; keeping
   them as unboxed ints instead of records means the hot path allocates
   nothing and the GC never scans the stack. *)
let stride = 5 (* ex, ey, ek, etag, pos *)

type t = {
  n : int;
  d : int array;  (* feasible: d.(ex) <= d.(ey) + ek for every edge *)
  out : int Vec.t array;  (* edge base offsets by source node [ey] *)
  edges : int Vec.t;  (* assertion stack, trail order, [stride] words each *)
  pred_src : int array;  (* repair bookkeeping *)
  pred_tag : int array;
  queue : int Vec.t;  (* scratch: repair worklist (FIFO via a head index) *)
  changes : int Vec.t;  (* scratch: (node, old distance) undo pairs *)
  ladders : (int * int, (int * int) list ref) Hashtbl.t;
      (* (x, y) -> atoms x - y <= k over that variable pair as (k, var)
         sorted by k ascending: the "ladder" x-y<=k implies x-y<=k' for
         every k' > k, which theory propagation exploits *)
  mutable nbr_below : int array;  (* atom var -> adjacent rung var, or -1 *)
  mutable nbr_above : int array;
  mutable nbr_dirty : bool;
}

let create ~nvars =
  let n = max nvars 1 in
  {
    n;
    d = Array.make n 0;
    out = Array.init n (fun _ -> Vec.create ~dummy:(-1) ());
    edges = Vec.create ~dummy:0 ();
    pred_src = Array.make n (-1);
    pred_tag = Array.make n (-1);
    queue = Vec.create ~dummy:(-1) ();
    changes = Vec.create ~dummy:0 ();
    ladders = Hashtbl.create 256;
    nbr_below = [||];
    nbr_above = [||];
    nbr_dirty = false;
  }

let register_atom t ~x ~y ~k ~var =
  t.nbr_dirty <- true;
  let key = (x, y) in
  let rung = (k, var) in
  match Hashtbl.find_opt t.ladders key with
  | None -> Hashtbl.add t.ladders key (ref [ rung ])
  | Some l ->
    if not (List.mem rung !l) then
      l := List.sort (fun (ka, _) (kb, _) -> compare ka kb) (rung :: !l)

(* Ladder adjacency is static once the atoms are registered, so the
   per-rung neighbors are resolved into plain arrays indexed by SAT
   variable: the per-assertion lookup in the DPLL(T) loop is then two
   array reads instead of a hash probe plus a list walk. *)
let rebuild_neighbors t =
  let maxv =
    Hashtbl.fold
      (fun _ l acc -> List.fold_left (fun acc (_, v) -> max acc v) acc !l)
      t.ladders (-1)
  in
  let below = Array.make (maxv + 1) (-1) in
  let above = Array.make (maxv + 1) (-1) in
  Hashtbl.iter
    (fun _ l ->
      let rungs = Array.of_list !l in
      let m = Array.length rungs in
      for i = 0 to m - 1 do
        let k, v = rungs.(i) in
        (* strictly weaker / stronger bounds only: equal-k duplicates
           (distinct vars encoding one bound) are not lemma partners *)
        let j = ref (i - 1) in
        while !j >= 0 && fst rungs.(!j) >= k do
          decr j
        done;
        if !j >= 0 then below.(v) <- snd rungs.(!j);
        let j = ref (i + 1) in
        while !j < m && fst rungs.(!j) <= k do
          incr j
        done;
        if !j < m then above.(v) <- snd rungs.(!j)
      done)
    t.ladders;
  t.nbr_below <- below;
  t.nbr_above <- above;
  t.nbr_dirty <- false

let ladder_below t ~var =
  if t.nbr_dirty then rebuild_neighbors t;
  if var < Array.length t.nbr_below then t.nbr_below.(var) else -1

let ladder_above t ~var =
  if t.nbr_dirty then rebuild_neighbors t;
  if var < Array.length t.nbr_above then t.nbr_above.(var) else -1

exception Infeasible of int list

let assert_constr t ~trail_pos ~x ~y ~k ~tag =
  if x < 0 || x >= t.n || y < 0 || y >= t.n then invalid_arg "Idl_inc.assert_constr";
  let d = t.d in
  let edges = t.edges in
  let commit () =
    let base = Vec.size edges in
    Vec.push edges x;
    Vec.push edges y;
    Vec.push edges k;
    Vec.push edges tag;
    Vec.push edges trail_pos;
    Vec.push t.out.(y) base
  in
  if d.(x) <= d.(y) + k then begin
    (* already satisfied by the current distance function *)
    commit ();
    None
  end
  else begin
    (* repair: lower d.(x) to d.(y) + k and propagate decreases; a
       decrease reaching y again closes a negative cycle *)
    let changes = t.changes in
    Vec.clear changes;
    Vec.push changes x;
    Vec.push changes d.(x);
    d.(x) <- d.(y) + k;
    t.pred_src.(x) <- y;
    t.pred_tag.(x) <- tag;
    let queue = t.queue in
    Vec.clear queue;
    Vec.push queue x;
    let qhead = ref 0 in
    match
      while !qhead < Vec.size queue do
        let u = Vec.unsafe_get queue !qhead in
        incr qhead;
        let du = d.(u) in
        let ou = t.out.(u) in
        for oi = 0 to Vec.size ou - 1 do
          let base = Vec.unsafe_get ou oi in
          let ex = Vec.unsafe_get edges base in
          let ek = Vec.unsafe_get edges (base + 2) in
          if du + ek < d.(ex) then begin
            let etag = Vec.unsafe_get edges (base + 3) in
            if ex = y then begin
              (* negative cycle: new edge + path x ~> u + edge u->y *)
              let tags = ref [ tag; etag ] in
              let cur = ref u in
              let steps = ref 0 in
              while !cur <> x && !steps <= t.n do
                tags := t.pred_tag.(!cur) :: !tags;
                cur := t.pred_src.(!cur);
                incr steps
              done;
              if !steps > t.n then begin
                (* defensive: a stale predecessor chain; fall back to
                   the (sound, non-minimal) full asserted set *)
                tags := [ tag ];
                let m = Vec.size edges / stride in
                for ei = 0 to m - 1 do
                  tags := Vec.get edges ((ei * stride) + 3) :: !tags
                done
              end;
              raise (Infeasible !tags)
            end;
            Vec.push changes ex;
            Vec.push changes d.(ex);
            d.(ex) <- du + ek;
            t.pred_src.(ex) <- u;
            t.pred_tag.(ex) <- etag;
            Vec.push queue ex
          end
        done
      done
    with
    | () ->
      commit ();
      None
    | exception Infeasible tags ->
      (* roll the distances back; the constraint is not committed.
         Newest-to-oldest so a node touched twice ends on its original
         (oldest) value. *)
      let i = ref (Vec.size changes - 2) in
      while !i >= 0 do
        d.(Vec.unsafe_get changes !i) <- Vec.unsafe_get changes (!i + 1);
        i := !i - 2
      done;
      Some (List.sort_uniq compare tags)
  end

let backtrack t ~trail_size =
  let edges = t.edges in
  let continue = ref true in
  while !continue && Vec.size edges > 0 do
    let base = Vec.size edges - stride in
    if Vec.get edges (base + 4) >= trail_size then begin
      let ey = Vec.get edges (base + 1) in
      let idx = Vec.pop t.out.(ey) in
      assert (idx = base);
      Vec.shrink edges base
    end
    else continue := false
  done

let model t = Array.copy t.d
