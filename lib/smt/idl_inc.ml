type constr = { x : int; y : int; k : int; tag : int }

type edge = { ex : int; ey : int; ek : int; etag : int; pos : int }

type t = {
  n : int;
  d : int array;  (* feasible: d.(x) <= d.(y) + k for every edge *)
  out : int Vec.t array;  (* edge indices by source node [ey] *)
  edges : edge Vec.t;  (* assertion stack, trail order *)
  pred_src : int array;  (* repair bookkeeping *)
  pred_tag : int array;
  ladders : (int * int, (int * int) list ref) Hashtbl.t;
      (* (x, y) -> atoms x - y <= k over that variable pair as (k, var)
         sorted by k ascending: the "ladder" x-y<=k implies x-y<=k' for
         every k' > k, which theory propagation exploits *)
}

let dummy_edge = { ex = 0; ey = 0; ek = 0; etag = 0; pos = -1 }

let create ~nvars =
  let n = max nvars 1 in
  {
    n;
    d = Array.make n 0;
    out = Array.init n (fun _ -> Vec.create ~dummy:(-1) ());
    edges = Vec.create ~dummy:dummy_edge ();
    pred_src = Array.make n (-1);
    pred_tag = Array.make n (-1);
    ladders = Hashtbl.create 256;
  }

let register_atom t ~x ~y ~k ~var =
  let key = (x, y) in
  let rung = (k, var) in
  match Hashtbl.find_opt t.ladders key with
  | None -> Hashtbl.add t.ladders key (ref [ rung ])
  | Some l ->
    if not (List.mem rung !l) then
      l := List.sort (fun (ka, _) (kb, _) -> compare ka kb) (rung :: !l)

let ladder_neighbors t ~x ~y ~k =
  match Hashtbl.find_opt t.ladders (x, y) with
  | None -> (None, None)
  | Some l ->
    let below = ref None and above = ref None in
    List.iter
      (fun (k', v') ->
        if k' < k then below := Some (k', v')
        else if k' > k && !above = None then above := Some (k', v'))
      !l;
    (!below, !above)

exception Infeasible of int list

let assert_constr t ~trail_pos (c : constr) =
  if c.x < 0 || c.x >= t.n || c.y < 0 || c.y >= t.n then invalid_arg "Idl_inc.assert_constr";
  if t.d.(c.x) <= t.d.(c.y) + c.k then begin
    (* already satisfied by the current distance function *)
    Vec.push t.edges { ex = c.x; ey = c.y; ek = c.k; etag = c.tag; pos = trail_pos };
    Vec.push t.out.(c.y) (Vec.size t.edges - 1);
    Ok ()
  end
  else begin
    (* repair: lower d.(x) to d.(y) + k and propagate decreases; a
       decrease reaching y again closes a negative cycle *)
    let changes = ref [ (c.x, t.d.(c.x)) ] in
    t.d.(c.x) <- t.d.(c.y) + c.k;
    t.pred_src.(c.x) <- c.y;
    t.pred_tag.(c.x) <- c.tag;
    let queue = Queue.create () in
    Queue.push c.x queue;
    match
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let du = t.d.(u) in
        Vec.iter
          (fun ei ->
            let e = Vec.get t.edges ei in
            if du + e.ek < t.d.(e.ex) then begin
              if e.ex = c.y then begin
                (* negative cycle: new edge + path x ~> u + edge u->y *)
                let tags = ref [ c.tag; e.etag ] in
                let cur = ref u in
                let steps = ref 0 in
                while !cur <> c.x && !steps <= t.n do
                  tags := t.pred_tag.(!cur) :: !tags;
                  cur := t.pred_src.(!cur);
                  incr steps
                done;
                if !steps > t.n then begin
                  (* defensive: a stale predecessor chain; fall back to
                     the (sound, non-minimal) full asserted set *)
                  tags := c.tag :: [];
                  Vec.iter (fun (e : edge) -> tags := e.etag :: !tags) t.edges
                end;
                raise (Infeasible !tags)
              end;
              changes := (e.ex, t.d.(e.ex)) :: !changes;
              t.d.(e.ex) <- du + e.ek;
              t.pred_src.(e.ex) <- u;
              t.pred_tag.(e.ex) <- e.etag;
              Queue.push e.ex queue
            end)
          t.out.(u)
      done
    with
    | () ->
      Vec.push t.edges { ex = c.x; ey = c.y; ek = c.k; etag = c.tag; pos = trail_pos };
      Vec.push t.out.(c.y) (Vec.size t.edges - 1);
      Ok ()
    | exception Infeasible tags ->
      (* roll the distances back; the constraint is not committed *)
      List.iter (fun (v, old) -> t.d.(v) <- old) !changes;
      Error (List.sort_uniq compare tags)
  end

let backtrack t ~trail_size =
  let continue = ref true in
  while !continue && Vec.size t.edges > 0 do
    let e = Vec.last t.edges in
    if e.pos >= trail_size then begin
      let _ = Vec.pop t.edges in
      let idx = Vec.pop t.out.(e.ey) in
      assert (idx = Vec.size t.edges)
    end
    else continue := false
  done

let model t = Array.copy t.d
