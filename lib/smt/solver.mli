(** Top-level SMT solver: lazy DPLL(T) over the CDCL core with
    difference-logic and linear-rational theory solvers, plus eager
    bit-blasting for bit-vector terms.

    Single-shot usage: {!create}, {!assert_term} any number of Boolean
    terms, then {!check} once ([check] answers for the conjunction of
    everything asserted; a second call raises [Invalid_argument]).

    Incremental usage: {!create} [~incremental:true], then interleave
    {!assert_term} / {!assert_implied} and {!check} freely.  The
    propositional state (CNF cache, learnt clauses, variable
    activities, saved phases) is retained across checks, so a suite of
    queries against one large formula amortizes the search; terms
    converted for an earlier check are deduplicated by the CNF cache.
    The theory solvers are backtracked to level 0 and re-seeded on each
    call (their atoms keep their SAT variables, so theory lemmas learnt
    as clauses also carry over).  Assumptions make queries retractable:
    guard a query's assertions behind a fresh activation variable with
    {!assert_implied} and pass the variable to {!check}. *)

type t

type result = Sat of Model.t | Unsat

type strategy = Sat.strategy = {
  var_decay : float;  (** VSIDS decay (see {!Sat.strategy}) *)
  restart_base : int;  (** Luby restart base, in conflicts *)
  default_phase : bool;  (** branching polarity of fresh variables *)
}
(** SAT search strategy.  Every strategy is sound and complete; racing
    variants against each other (a portfolio) exploits their very
    different search orders on hard queries. *)

val default_strategy : strategy

exception Canceled
(** Raised by {!check} when the {!set_stop} hook fires.  The solver
    remains usable: learnt clauses are kept and a later {!check}
    restarts the search (incremental solvers only — a single-shot
    solver still refuses a second check). *)

type stats = {
  sat_vars : int;
  sat_clauses : int;  (** problem clauses (excludes learnt clauses) *)
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned_clauses : int;  (** learnt clauses created, incl. theory lemmas *)
  theory_rounds : int;  (** number of theory conflicts raised *)
  checks : int;  (** {!check} calls answered so far *)
}
(** Counters accumulate across every {!check} of an incremental
    solver; they are never reset. *)

val create : ?incremental:bool -> ?strategy:strategy -> unit -> t
(** [incremental] (default [false]) allows any number of {!check}
    calls, interleaved with new assertions.  [strategy] (default
    {!default_strategy}) steers the SAT search. *)

val set_stop : t -> (unit -> bool) option -> unit
(** Cooperative cancellation/budget hook: polled every few hundred SAT
    search steps during {!check}.  When it returns [true] the running
    check raises {!Canceled}.  Close the hook over a wall-clock
    deadline for timeouts, or over {!stats} for conflict/decision
    budgets.  [None] clears it. *)

val assert_term : t -> Term.t -> unit

val assert_implied : t -> guard:Term.t -> Term.t -> unit
(** [assert_implied s ~guard t] asserts [guard => t].  With [guard] a
    fresh Boolean variable, pass it to {!check} as an assumption to
    enable the assertion for that call only; assert its negation to
    retire it permanently. *)

val check : ?assumptions:Term.t list -> t -> result
(** Decide the asserted conjunction, under the given Boolean
    [assumptions] (default none).  On a non-incremental solver a second
    call raises [Invalid_argument].
    @raise Invalid_argument on the second check of a single-shot solver. *)

val unsat_core : t -> Term.t list
(** After {!check} returned [Unsat] under assumptions: a subset of the
    assumption terms that is already inconsistent with the asserted
    formula.  Empty when the formula alone is unsatisfiable (or when
    the last check answered [Sat]). *)

val check_term : Term.t -> result
(** One-shot convenience: a fresh solver asserting a single term. *)

val stats : t -> stats
