(** Top-level SMT solver: lazy DPLL(T) over the CDCL core with
    difference-logic and linear-rational theory solvers, plus eager
    bit-blasting for bit-vector terms.

    Single-shot usage: {!create}, {!assert_term} any number of Boolean
    terms, then {!check} once ([check] answers for the conjunction of
    everything asserted; a second call raises [Invalid_argument]).

    Incremental usage: {!create} [~incremental:true], then interleave
    {!assert_term} / {!assert_implied} and {!check} freely.  The
    propositional state (CNF cache, learnt clauses, variable
    activities, saved phases) is retained across checks, so a suite of
    queries against one large formula amortizes the search; terms
    converted for an earlier check are deduplicated by the CNF cache.
    The theory solvers are reused across checks as long as no new
    theory atoms or variables appeared in between (only their assertion
    stacks are cleared); any growth rebuilds them from the enlarged
    registries.  Their atoms keep their SAT variables either way, so
    theory lemmas learnt as clauses carry over.  Assumptions make queries retractable:
    guard a query's assertions behind a fresh activation variable with
    {!assert_implied} and pass the variable to {!check}. *)

type t

type result = Sat of Model.t | Unsat

type restart_mode = Sat.restart_mode =
  | Luby  (** fixed Luby-sequence restart schedule *)
  | Ema_lbd
      (** Glucose-style adaptive restarts with trail-size blocking
          (see {!Sat.restart_mode}) *)

type strategy = Sat.strategy = {
  var_decay : float;  (** VSIDS decay (see {!Sat.strategy}) *)
  restart_base : int;  (** Luby restart base, in conflicts *)
  default_phase : bool;  (** branching polarity of fresh variables *)
  restart_mode : restart_mode;  (** restart scheduling policy *)
  rephase : bool;  (** CaDiCaL-style periodic phase rescheduling *)
}
(** SAT search strategy.  Every strategy is sound and complete; racing
    variants against each other (a portfolio) exploits their very
    different search orders on hard queries. *)

val default_strategy : strategy

type features = {
  pg_cnf : bool;
      (** polarity-aware (Plaisted–Greenbaum) CNF conversion: And/Or
          definitions emit only the implication direction they are used
          under (see {!Cnf.create}) *)
  preprocess : bool;
      (** level-0 preprocessing before each search: root unit
          propagation, subsumption, self-subsuming resolution, and (for
          single-shot solvers) pure-literal elimination *)
  theory_prop : bool;
      (** difference-logic theory propagation (ladder lemmas pushed to
          the SAT core as propagations with theory reasons) and
          early-SAT detection once every theory atom is assigned *)
  lbd : bool;
      (** LBD (glue) scoring for learnt-clause deletion and recursive
          conflict-clause minimization *)
}
(** Solver-throughput optimizations, independently toggleable.  Every
    combination is sound and complete and yields identical verdicts —
    they only change how fast the search converges and which of the
    (possibly many) models is found. *)

val default_features : features
(** All four optimizations on. *)

val no_features : features
(** All four off: the historical solver behavior, kept as the ablation
    baseline. *)

exception Canceled
(** Raised by {!check} when the {!set_stop} hook fires.  The solver
    remains usable: learnt clauses are kept and a later {!check}
    restarts the search (incremental solvers only — a single-shot
    solver still refuses a second check). *)

type stats = {
  sat_vars : int;
  sat_clauses : int;  (** problem clauses (excludes learnt clauses) *)
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  ema_restarts : int;
      (** restarts triggered by the {!Ema_lbd} adaptive condition *)
  blocked_restarts : int;
      (** adaptive restarts suppressed by trail-size blocking *)
  rephases : int;  (** phase-schedule resets (strategy [rephase]) *)
  clauses_imported : int;
      (** sibling-learnt clauses integrated via {!import_clause} *)
  clauses_exported : int;  (** learnt clauses handed to {!drain_exported} *)
  learned_clauses : int;  (** learnt clauses created, incl. theory lemmas *)
  theory_rounds : int;  (** number of theory conflicts raised *)
  theory_propagations : int;
      (** ladder lemmas pushed to the SAT core by difference-logic
          theory propagation *)
  preprocessed_clauses : int;
      (** clauses removed or strengthened by level-0 preprocessing *)
  lbd_reductions : int;  (** learnt clauses deleted by LBD-scored reduction *)
  checks : int;  (** {!check} calls answered so far *)
  arena_words : int;
      (** words currently used by the SAT core's clause arena
          (multiply by [Sys.word_size / 8] for bytes) *)
  arena_compactions : int;  (** arena compactions performed *)
  minor_words : float;
      (** minor-heap words allocated inside SAT solving, cumulative
          ([Gc.minor_words] deltas around each [Sat.solve]) *)
}
(** Counters accumulate across every {!check} of an incremental
    solver; they are never reset. *)

val create :
  ?incremental:bool -> ?certify:bool -> ?strategy:strategy -> ?features:features -> unit -> t
(** [incremental] (default [false]) allows any number of {!check}
    calls, interleaved with new assertions.  [certify] (default
    [false]) records the evidence needed for independent verdict
    checking: a DRAT-style proof trace in the SAT core (see
    {!Sat.enable_proof}) and the asserted terms for model evaluation;
    the recordings are consumed by the [Proof] library.  [strategy]
    (default {!default_strategy}) steers the SAT search.  [features]
    (default {!default_features}) selects the solver-throughput
    optimizations; in incremental mode, pure-literal elimination is
    disabled regardless (it is unsound across checks). *)

val set_stop : t -> (unit -> bool) option -> unit
(** Cooperative cancellation/budget hook: polled every few hundred SAT
    search steps during {!check}.  When it returns [true] the running
    check raises {!Canceled}.  Close the hook over a wall-clock
    deadline for timeouts, or over {!stats} for conflict/decision
    budgets.  [None] clears it. *)

(** {2 Portfolio clause sharing}

    Learnt-clause exchange between solvers over the {e same} CNF
    (identical variable numbering — e.g. portfolio workers forked from
    one parent).  All hooks operate on the underlying SAT core; see
    {!Sat.set_share}, {!Sat.drain_exports}, {!Sat.import_clause}. *)

val set_on_restart : t -> (unit -> unit) option -> unit
(** Hook fired at every SAT restart, at decision level 0 with
    propagation complete — the safe point for {!drain_exported} and
    {!import_clause}. *)

val enable_sharing : ?max_lbd:int -> ?max_len:int -> t -> unit
(** Start exporting learnt clauses with LBD ≤ [max_lbd] (default 6)
    and length ≤ [max_len] (default 30) to the export buffer. *)

val drain_exported : t -> int array list
(** Take the export buffer (oldest first), in SAT-literal form. *)

val import_clause : t -> int array -> bool
(** Integrate a sibling's learnt clause (SAT-literal form).  Under
    [~certify:true] the clause is RUP-checked against this solver's
    active set and logged; non-RUP imports are dropped (returns
    [false]). *)

val assert_term : t -> Term.t -> unit

val assert_implied : t -> guard:Term.t -> Term.t -> unit
(** [assert_implied s ~guard t] asserts [guard => t].  With [guard] a
    fresh Boolean variable, pass it to {!check} as an assumption to
    enable the assertion for that call only; assert its negation to
    retire it permanently. *)

val check : ?assumptions:Term.t list -> t -> result
(** Decide the asserted conjunction, under the given Boolean
    [assumptions] (default none).  On a non-incremental solver a second
    call raises [Invalid_argument].
    @raise Invalid_argument on the second check of a single-shot solver. *)

val unsat_core : t -> Term.t list
(** After {!check} returned [Unsat] under assumptions: a subset of the
    assumption terms that is already inconsistent with the asserted
    formula.  Empty when the formula alone is unsatisfiable (or when
    the last check answered [Sat]). *)

val check_term : Term.t -> result
(** One-shot convenience: a fresh solver asserting a single term. *)

val stats : t -> stats

(** {2 Certification accessors}

    Raw evidence for an independent checker (the [Proof] library).
    Meaningful only on a solver created with [~certify:true]; the term
    recordings are empty otherwise. *)

val certify_enabled : t -> bool

val proof : t -> Sat.proof_step list
(** The DRAT-style trace recorded so far, chronological. *)

val proof_length : t -> int

val asserted_terms : t -> Term.t list
(** Every term passed to {!assert_term}, in assertion order. *)

val implied_terms : t -> (Term.t * Term.t) list
(** Every [(guard, body)] passed to {!assert_implied}. *)

val last_assumption_lits : t -> int list
(** SAT literals of the assumptions of the most recent {!check}. *)

val last_assumption_terms : t -> Term.t list

val int_atom_table : t -> (int * Cnf.int_atom) list
(** [(sat_var, atom)] for every registered difference atom — the key
    for re-justifying difference-logic lemmas independently. *)

val rat_atom_table : t -> (int * Cnf.rat_atom) list

val num_int_vars : t -> int
(** Dense integer theory variables allocated (the checker's IDL
    instances add one extra node for the constant zero). *)

val num_rat_vars : t -> int
