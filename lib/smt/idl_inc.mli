(** Incremental integer difference logic for DPLL(T).

    Maintains a feasible distance function for the asserted constraints
    [x - y <= k].  Assertions are pushed with the SAT trail position
    they correspond to, so {!backtrack} can pop them in sync with the
    SAT solver's non-chronological backjumps.  Each assertion performs
    an incremental feasibility repair (Cotton–Maler style): cost is
    proportional to the affected region, and an infeasible assertion
    reports the negative cycle's tags without being committed.

    The assertion stack is a flat integer arena and the repair worklist
    and undo log are reused scratch buffers, so the committed-assertion
    path — which the DPLL(T) loop hits for every atom on the SAT trail,
    re-asserting after every backjump — allocates nothing. *)

type t

val create : nvars:int -> t

val assert_constr : t -> trail_pos:int -> x:int -> y:int -> k:int -> tag:int -> int list option
(** Assert [x - y <= k], tagged with [tag] for conflict reporting.
    [None] means the constraint was committed; [Some tags] is a negative
    cycle (including this constraint's tag), and the constraint is not
    committed in that case. *)

val backtrack : t -> trail_size:int -> unit
(** Pop every constraint asserted at a trail position [>= trail_size]. *)

val model : t -> int array
(** A satisfying assignment for the current constraints. *)

val register_atom : t -> x:int -> y:int -> k:int -> var:int -> unit
(** Record that SAT variable [var] encodes the atom [x - y <= k], for
    theory propagation.  Atoms over the same [(x, y)] pair form a
    "ladder": [x - y <= k] implies [x - y <= k'] for every [k' > k].
    Idempotent. *)

val ladder_below : t -> var:int -> int
(** The SAT variable of the adjacent rung whose bound is the largest
    strictly below [var]'s on its ladder, or [-1] if none (or if [var]
    was never registered).  The binary clause [¬var_below ∨ var_above]
    between adjacent rungs is the theory lemma that lets unit
    propagation do difference-bound reasoning.  Resolved from arrays
    precomputed after registration: O(1) and allocation-free. *)

val ladder_above : t -> var:int -> int
(** Dual of {!ladder_below}: the adjacent rung whose bound is the
    smallest strictly above [var]'s, or [-1]. *)
