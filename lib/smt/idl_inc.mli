(** Incremental integer difference logic for DPLL(T).

    Maintains a feasible distance function for the asserted constraints
    [x - y <= k].  Assertions are pushed with the SAT trail position
    they correspond to, so {!backtrack} can pop them in sync with the
    SAT solver's non-chronological backjumps.  Each assertion performs
    an incremental feasibility repair (Cotton–Maler style): cost is
    proportional to the affected region, and an infeasible assertion
    reports the negative cycle's tags without being committed. *)

type t

type constr = { x : int; y : int; k : int; tag : int }

val create : nvars:int -> t

val assert_constr : t -> trail_pos:int -> constr -> (unit, int list) result
(** [Error tags] is a negative cycle (including this constraint's tag);
    the constraint is not committed in that case. *)

val backtrack : t -> trail_size:int -> unit
(** Pop every constraint asserted at a trail position [>= trail_size]. *)

val model : t -> int array
(** A satisfying assignment for the current constraints. *)

val register_atom : t -> x:int -> y:int -> k:int -> var:int -> unit
(** Record that SAT variable [var] encodes the atom [x - y <= k], for
    theory propagation.  Atoms over the same [(x, y)] pair form a
    "ladder": [x - y <= k] implies [x - y <= k'] for every [k' > k].
    Idempotent. *)

val ladder_neighbors : t -> x:int -> y:int -> k:int -> (int * int) option * (int * int) option
(** The registered atoms adjacent to [k] on the [(x, y)] ladder, as
    [(below, above)] where each is [(k', var')] with [k'] the largest
    bound below (resp. smallest above) [k].  The binary clause
    [¬var_below ∨ var_above] between adjacent rungs is the theory lemma
    that lets unit propagation do difference-bound reasoning. *)
