(* Verification as a service: a long-lived daemon wrapping the
   Query/Report API behind the line-JSON protocol of
   [Verify.Protocol].

   Two caches make the daemon more than a socket wrapper:

   - an *encoding cache* keyed by the concrete network digest
     ([Analysis.Symmetry.digest] per device + the topology), so
     re-loading a previously-seen configuration (the A -> B -> A flap
     of a rolled-back change) reuses the built encoding *and* its
     incremental solver session, learnt clauses included;

   - a *verdict cache* keyed by [Protocol.spec_key], migrated across
     config diffs by core-disjoint replay: a [Verified] report from a
     support-tracking session names the devices its refutation used,
     and when a diff's (conservatively expanded) changed-device set is
     disjoint from that support, the old verdict is replayed into the
     new state without touching a solver — see DESIGN.md for the
     soundness argument and the full-fallback conditions.

   Encodings are built lazily: a diff whose cached verdicts all replay,
   followed by queries answered from the cache, never encodes the new
   network at all. *)

module A = Config.Ast
module J = Msutil.Json
module MS = Minesweeper
module Verify = Minesweeper.Verify
module Protocol = Verify.Protocol
module Report = Verify.Report

let schema = Report.schema_version

(* -- network states and their digests -------------------------------------- *)

type built = { b_enc : MS.Encode.t; b_session : Verify.Session.t }

type netstate = {
  ns_net : A.network;
  ns_key : string;  (* concrete digest of the whole network *)
  ns_digests : (string * string) list;  (* device -> concrete digest, sorted *)
  ns_topo : string;  (* digest of the link structure *)
  ns_feats : MS.Features.t;
  ns_ibgp : string list;  (* internal same-ASN sessions, with literal IPs *)
  mutable ns_built : built option;
  ns_verdicts : (string, string list option * Report.t list) Hashtbl.t;
      (* spec_key -> (devices whose config the property terms read
         directly — [None] = all of them — and the cached reports) *)
}

let topo_digest (topo : Net.Topology.t) =
  let link (l : Net.Topology.link) =
    let e (ep : Net.Topology.endpoint) = ep.Net.Topology.device ^ "/" ^ ep.Net.Topology.interface in
    let x = e l.Net.Topology.a and y = e l.Net.Topology.b in
    if x <= y then x ^ "--" ^ y else y ^ "--" ^ x
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.sort compare (Net.Topology.devices topo)
          @ List.sort compare (List.map link (Net.Topology.links topo)))))

(* The iBGP sessions with their literal neighbor addresses.  The iBGP
   copy encodings key their structure on these, so any change to the
   set forces full re-verification. *)
let ibgp_signature (net : A.network) =
  List.concat_map
    (fun (d : A.device) ->
      match d.A.dev_bgp with
      | None -> []
      | Some bgp ->
        List.filter_map
          (fun (n : A.bgp_neighbor) ->
            match A.device_of_ip net n.A.nbr_ip with
            | Some d2 when d2.A.dev_name <> d.A.dev_name -> (
              match d2.A.dev_bgp with
              | Some b2 when b2.A.bgp_asn = bgp.A.bgp_asn ->
                Some
                  (Printf.sprintf "%s->%s@%s" d.A.dev_name d2.A.dev_name
                     (Net.Ipv4.to_string n.A.nbr_ip))
              | Some _ | None -> None)
            | Some _ | None -> None)
          bgp.A.bgp_neighbors)
    net.A.net_devices
  |> List.sort compare

let netstate_of ~slice (net : A.network) =
  let digests =
    List.map (fun (d : A.device) -> (d.A.dev_name, Analysis.Symmetry.digest d)) net.A.net_devices
    |> List.sort compare
  in
  let topo = topo_digest net.A.net_topology in
  let key =
    Digest.to_hex
      (Digest.string
         (topo ^ "\n" ^ String.concat "\n" (List.map (fun (n, d) -> n ^ ":" ^ d) digests)))
  in
  {
    ns_net = net;
    ns_key = key;
    ns_digests = digests;
    ns_topo = topo;
    ns_feats = MS.Features.scan net ~slice;
    ns_ibgp = ibgp_signature net;
    ns_built = None;
    ns_verdicts = Hashtbl.create 32;
  }

(* -- the daemon ------------------------------------------------------------- *)

type counters = {
  mutable loads : int;
  mutable diffs : int;
  mutable query_requests : int;
  mutable queries_answered : int;
  mutable enc_cache_hits : int;
  mutable enc_cache_misses : int;
  mutable verdict_hits : int;  (* reports served from the verdict cache *)
  mutable solves : int;  (* reports produced by a solver run *)
  mutable delta_replays : int;  (* verdicts migrated across a diff *)
  mutable delta_diffs : int;  (* diffs handled by delta re-verification *)
  mutable full_diffs : int;  (* diffs that fell back to full re-verification *)
  mutable dropped_verdicts : int;  (* cached verdicts a diff invalidated *)
}

type t = {
  opts : MS.Options.t;
      (* [symmetry] is forced off (support tags are per concrete
         device); [merge_dataplane] and [merge_filters] are forced off
         so ACL and policy semantics land in tagged per-device
         assertions instead of being inlined into property terms —
         support-based replay is unsound otherwise. *)
  max_jobs : int;
  mutable state : netstate option;
  enc_cache : (string, built) Hashtbl.t;
  mutable enc_order : string list;  (* insertion order, oldest last — FIFO eviction *)
  c : counters;
}

let enc_cache_cap = 8

let create ?(jobs = 1) opts =
  {
    opts = { opts with MS.Options.symmetry = false; merge_dataplane = false; merge_filters = false };
    max_jobs = max 1 jobs;
    state = None;
    enc_cache = Hashtbl.create 8;
    enc_order = [];
    c =
      {
        loads = 0;
        diffs = 0;
        query_requests = 0;
        queries_answered = 0;
        enc_cache_hits = 0;
        enc_cache_misses = 0;
        verdict_hits = 0;
        solves = 0;
        delta_replays = 0;
        delta_diffs = 0;
        full_diffs = 0;
        dropped_verdicts = 0;
      };
  }

(* Build (or fetch) the encoding and its persistent support-tracking
   session.  This is the only place encodings are constructed — load
   and diff defer to it, so a state whose queries are all answered from
   the verdict cache is never encoded. *)
let materialize t ns =
  match ns.ns_built with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt t.enc_cache ns.ns_key with
    | Some b ->
      t.c.enc_cache_hits <- t.c.enc_cache_hits + 1;
      ns.ns_built <- Some b;
      b
    | None ->
      t.c.enc_cache_misses <- t.c.enc_cache_misses + 1;
      let enc = MS.Encode.build ns.ns_net t.opts in
      let b = { b_enc = enc; b_session = Verify.Session.of_encoding ~support:true enc } in
      Hashtbl.replace t.enc_cache ns.ns_key b;
      t.enc_order <- ns.ns_key :: List.filter (fun k -> k <> ns.ns_key) t.enc_order;
      (if List.length t.enc_order > enc_cache_cap then
         match List.rev t.enc_order with
         | oldest :: _ when oldest <> ns.ns_key ->
           Hashtbl.remove t.enc_cache oldest;
           t.enc_order <- List.filter (fun k -> k <> oldest) t.enc_order
         | _ -> ());
      ns.ns_built <- Some b;
      b)

(* -- diff: changed set, coupling expansion, verdict migration --------------- *)

(* Devices whose encoded slice could change when [changed] devices'
   configurations change, even though their own configuration text did
   not: topology neighbors (shared link, hence shared failure variable
   and forwarding edge), devices with a BGP neighbor address owned by a
   changed device (session classification runs through
   [device_of_ip]), and devices with a static next hop resolving into
   a changed device.  Ownership is checked in the old and the new
   network — an address a changed device acquired couples its users
   just as one it gave up does. *)
let couple ~old_net ~new_net changed =
  let is_changed n = List.mem n changed in
  let owned_by_changed ip =
    let owner net = Option.map (fun (d : A.device) -> d.A.dev_name) (A.device_of_ip net ip) in
    (match owner old_net with Some n -> is_changed n | None -> false)
    || (match owner new_net with Some n -> is_changed n | None -> false)
  in
  let refs_changed (d : A.device) =
    (match d.A.dev_bgp with
     | None -> false
     | Some bgp -> List.exists (fun (n : A.bgp_neighbor) -> owned_by_changed n.A.nbr_ip) bgp.A.bgp_neighbors)
    || List.exists
         (fun (s : A.static_route) ->
           match s.A.st_next_hop with Some ip -> owned_by_changed ip | None -> false)
         d.A.dev_statics
  in
  let topo_coupled =
    List.concat_map
      (fun c -> List.map (fun (_, peer, _) -> peer) (Net.Topology.neighbors old_net.A.net_topology c))
      changed
  in
  let ref_coupled =
    List.filter_map
      (fun (d : A.device) -> if refs_changed d then Some d.A.dev_name else None)
      (old_net.A.net_devices @ new_net.A.net_devices)
  in
  List.sort_uniq compare (changed @ topo_coupled @ ref_coupled)

(* Devices whose configuration a spec's *property terms* read directly
   (outside the tagged, assumption-guarded device slices): destination
   subnets for the reachability family, the compared pair's filters and
   sessions for the equivalence properties.  The unsat core cannot see
   these reads — goal, instrumentation and assumptions sit under the
   query's activation literal, not under a device guard — so replay
   must additionally require them disjoint from the coupled set.
   [None] means the property enumerates config-dependent structure of
   every device (hop sets, loop candidates, external peerings): such a
   verdict is never replayed across a diff. *)
let spec_deps (s : Protocol.query_spec) =
  match s.Protocol.property with
  | "reachability" | "isolation" | "bounded-length" | "multipath-consistency" -> (
    match s.Protocol.dst_device with Some d -> Some [ d ] | None -> None)
  | "acl-equivalence" | "local-equivalence" -> Some s.Protocol.devices
  | _ -> None (* blackholes, loops, no-leak, all-pairs, unknown *)

type diff_outcome = {
  d_mode : [ `Delta | `Full ];
  d_changed : string list;
  d_coupled : string list;
  d_replayed : int;
  d_dropped : int;
}

let apply_diff t (old_ns : netstate) (new_ns : netstate) =
  let old_verdict_count =
    Hashtbl.fold (fun _ (_, rs) acc -> acc + List.length rs) old_ns.ns_verdicts 0
  in
  let full () =
    t.c.full_diffs <- t.c.full_diffs + 1;
    t.c.dropped_verdicts <- t.c.dropped_verdicts + old_verdict_count;
    t.state <- Some new_ns;
    { d_mode = `Full; d_changed = []; d_coupled = []; d_replayed = 0; d_dropped = old_verdict_count }
  in
  let same_devices = List.map fst old_ns.ns_digests = List.map fst new_ns.ns_digests in
  if
    (not same_devices)
    || old_ns.ns_topo <> new_ns.ns_topo
    || old_ns.ns_feats <> new_ns.ns_feats
    || old_ns.ns_ibgp <> new_ns.ns_ibgp
  then full ()
  else begin
    let changed =
      List.filter_map
        (fun ((n, d), (_, d')) -> if d = d' then None else Some n)
        (List.combine old_ns.ns_digests new_ns.ns_digests)
    in
    let coupled = couple ~old_net:old_ns.ns_net ~new_net:new_ns.ns_net changed in
    let replayable (r : Report.t) =
      match (r.Report.verdict, r.Report.support) with
      | Report.Verified, Some support -> not (List.exists (fun d -> List.mem d coupled) support)
      | _ -> false
    in
    let deps_untouched = function
      | Some ds -> not (List.exists (fun d -> List.mem d coupled) ds)
      | None -> false
    in
    let replayed = ref 0 and dropped = ref 0 in
    Hashtbl.iter
      (fun key (deps, rs) ->
        if deps_untouched deps && List.for_all replayable rs then begin
          replayed := !replayed + List.length rs;
          Hashtbl.replace new_ns.ns_verdicts key
            (deps, List.map (fun r -> { r with Report.replayed = true }) rs)
        end
        else dropped := !dropped + List.length rs)
      old_ns.ns_verdicts;
    t.c.delta_diffs <- t.c.delta_diffs + 1;
    t.c.delta_replays <- t.c.delta_replays + !replayed;
    t.c.dropped_verdicts <- t.c.dropped_verdicts + !dropped;
    t.state <- Some new_ns;
    {
      d_mode = `Delta;
      d_changed = changed;
      d_coupled = coupled;
      d_replayed = !replayed;
      d_dropped = !dropped;
    }
  end

(* -- request handling ------------------------------------------------------- *)

let err fmt = Printf.ksprintf (fun m -> Printf.sprintf "{\"schema\":%d,\"ok\":false,\"error\":%s}" schema (J.quote m)) fmt

let parse_net text =
  match Config.Parser.parse_network text with
  | net -> Ok net
  | exception Config.Parser.Parse_error e -> Error (Config.Parser.error_to_string e)
  | exception e -> Error (Printexc.to_string e)

let handle_load t text =
  match parse_net text with
  | Error e -> err "load: %s" e
  | Ok net ->
    t.c.loads <- t.c.loads + 1;
    let ns = netstate_of ~slice:t.opts.MS.Options.slice_unused net in
    t.state <- Some ns;
    Printf.sprintf "{\"schema\":%d,\"ok\":true,\"op\":\"load\",\"devices\":%d,\"key\":%s}" schema
      (List.length net.A.net_devices) (J.quote ns.ns_key)

let handle_diff t text =
  match t.state with
  | None -> err "diff: no configuration loaded (use \"load\" first)"
  | Some old_ns -> (
    match parse_net text with
    | Error e -> err "diff: %s" e
    | Ok net ->
      t.c.diffs <- t.c.diffs + 1;
      let new_ns = netstate_of ~slice:t.opts.MS.Options.slice_unused net in
      let o = apply_diff t old_ns new_ns in
      let names ds = String.concat "," (List.map J.quote ds) in
      Printf.sprintf
        "{\"schema\":%d,\"ok\":true,\"op\":\"diff\",\"mode\":\"%s\",\"changed\":[%s],\"coupled\":[%s],\"replayed\":%d,\"dropped\":%d,\"key\":%s}"
        schema
        (match o.d_mode with `Delta -> "delta" | `Full -> "full")
        (names o.d_changed) (names o.d_coupled) o.d_replayed o.d_dropped (J.quote new_ns.ns_key))

let handle_query t specs req_jobs =
  match t.state with
  | None -> err "query: no configuration loaded (use \"load\" first)"
  | Some ns -> (
    t.c.query_requests <- t.c.query_requests + 1;
    let jobs = min (max req_jobs 1) t.max_jobs in
    (* Serve what the verdict cache has; batch the rest on the shared
       encoding (built or fetched only if this batch is non-empty). *)
    let items =
      List.map
        (fun s ->
          let key = Protocol.spec_key s in
          match Hashtbl.find_opt ns.ns_verdicts key with
          | Some (_, rs) -> (s, key, `Cached rs)
          | None -> (s, key, `Fresh))
        specs
    in
    let fresh = List.filter (fun (_, _, k) -> k = `Fresh) items in
    let solved : (string, Report.t list) Hashtbl.t = Hashtbl.create 8 in
    let solve_error = ref None in
    (if fresh <> [] then
       match materialize t ns with
       | exception e -> solve_error := Some (Printexc.to_string e)
       | b -> (
         let expanded =
           List.map (fun (s, key, _) -> (s, key, Protocol.queries_of_spec b.b_enc s)) fresh
         in
         match List.find_opt (fun (_, _, r) -> Result.is_error r) expanded with
         | Some (_, _, Error e) -> solve_error := Some e
         | _ ->
           let expanded = List.map (fun (s, key, r) -> (s, key, Result.get_ok r)) expanded in
           let all_queries = List.concat_map (fun (_, _, qs) -> qs) expanded in
           let reports =
             if jobs <= 1 then Verify.Session.run b.b_session all_queries
             else Engine.run ~jobs ~support:true b.b_enc all_queries
           in
           t.c.solves <- t.c.solves + List.length reports;
           (* reports come back in query order: slice them back per spec *)
           let rest = ref reports in
           List.iter
             (fun (s, key, qs) ->
               let n = List.length qs in
               let mine = List.filteri (fun i _ -> i < n) !rest in
               rest := List.filteri (fun i _ -> i >= n) !rest;
               Hashtbl.replace ns.ns_verdicts key (spec_deps s, mine);
               Hashtbl.replace solved key mine)
             expanded));
    match !solve_error with
    | Some e -> err "query: %s" e
    | None ->
      let served = ref 0 and hits = ref 0 in
      let reports =
        List.concat_map
          (fun (_, key, kind) ->
            let rs =
              match kind with
              | `Cached rs ->
                hits := !hits + List.length rs;
                rs
              | `Fresh -> ( match Hashtbl.find_opt solved key with Some rs -> rs | None -> [])
            in
            served := !served + List.length rs;
            rs)
          items
      in
      t.c.verdict_hits <- t.c.verdict_hits + !hits;
      t.c.queries_answered <- t.c.queries_answered + !served;
      Printf.sprintf
        "{\"schema\":%d,\"ok\":true,\"op\":\"query\",\"answered\":%d,\"verdict_hits\":%d,\"solved\":%d,\"reports\":[%s]}"
        schema !served !hits (!served - !hits)
        (String.concat "," (List.map Report.to_json reports)))

let handle_stats t =
  let c = t.c in
  Printf.sprintf
    "{\"schema\":%d,\"ok\":true,\"op\":\"stats\",\"loaded\":%b,\"devices\":%d,\"loads\":%d,\"diffs\":%d,\"query_requests\":%d,\"queries_answered\":%d,\"enc_cache_hits\":%d,\"enc_cache_misses\":%d,\"enc_cache_size\":%d,\"verdict_hits\":%d,\"solves\":%d,\"delta_replays\":%d,\"delta_diffs\":%d,\"full_diffs\":%d,\"dropped_verdicts\":%d}"
    schema
    (t.state <> None)
    (match t.state with Some ns -> List.length ns.ns_net.A.net_devices | None -> 0)
    c.loads c.diffs c.query_requests c.queries_answered c.enc_cache_hits c.enc_cache_misses
    (Hashtbl.length t.enc_cache) c.verdict_hits c.solves c.delta_replays c.delta_diffs
    c.full_diffs c.dropped_verdicts

(* One request line in, one response line out.  [`Stop] after a
   [shutdown] acknowledgement. *)
let handle_line t line : string * [ `Continue | `Stop ] =
  match Protocol.parse_request line with
  | Error e -> (err "%s" e, `Continue)
  | Ok (Protocol.Load text) -> (handle_load t text, `Continue)
  | Ok (Protocol.Diff text) -> (handle_diff t text, `Continue)
  | Ok (Protocol.Query { specs; jobs }) -> (handle_query t specs jobs, `Continue)
  | Ok Protocol.Stats -> (handle_stats t, `Continue)
  | Ok Protocol.Shutdown ->
    (Printf.sprintf "{\"schema\":%d,\"ok\":true,\"op\":\"shutdown\"}" schema, `Stop)

(* -- the socket server ------------------------------------------------------ *)

type client = { fd : Unix.file_descr; buf : Buffer.t }

let write_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let rec go off len =
    if len > 0 then begin
      let k = Unix.write fd b off len in
      go (off + k) (len - k)
    end
  in
  go 0 (Bytes.length b)

(* Split the complete lines off a client buffer, leaving the partial
   tail in place. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)
    |> List.filter (fun l -> String.trim l <> "")

let run t ~socket =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  if Sys.file_exists socket then Sys.remove socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let clients = ref [] in
  let running = ref true in
  let drop c =
    clients := List.filter (fun x -> x.fd != c.fd) !clients;
    try Unix.close c.fd with _ -> ()
  in
  let tmp = Bytes.create 65536 in
  let read_client c =
    match Unix.read c.fd tmp 0 (Bytes.length tmp) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception _ -> drop c
    | 0 -> drop c
    | n ->
      Buffer.add_subbytes c.buf tmp 0 n;
      List.iter
        (fun line ->
          let resp, verdict = handle_line t line in
          (try write_line c.fd resp with _ -> drop c);
          if verdict = `Stop then running := false)
        (take_lines c.buf)
  in
  while !running do
    let fds = listen_fd :: List.map (fun c -> c.fd) !clients in
    match Unix.select fds [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd == listen_fd then begin
            match Unix.accept listen_fd with
            | cfd, _ -> clients := { fd = cfd; buf = Buffer.create 1024 } :: !clients
            | exception _ -> ()
          end
          else
            match List.find_opt (fun c -> c.fd == fd) !clients with
            | Some c -> read_client c
            | None -> ())
        ready
  done;
  List.iter (fun c -> try Unix.close c.fd with _ -> ()) !clients;
  (try Unix.close listen_fd with _ -> ());
  if Sys.file_exists socket then Sys.remove socket

(* -- client ----------------------------------------------------------------- *)

module Client = struct
  type conn = { fd : Unix.file_descr; mutable buf : Buffer.t }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    { fd; buf = Buffer.create 1024 }

  let rec connect_retry ?(attempts = 50) path =
    match connect path with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempts > 0 ->
      Unix.sleepf 0.1;
      connect_retry ~attempts:(attempts - 1) path

  let close c = try Unix.close c.fd with _ -> ()

  let send_raw c s =
    let b = Bytes.of_string s in
    let rec go off len =
      if len > 0 then begin
        let k = Unix.write c.fd b off len in
        go (off + k) (len - k)
      end
    in
    go 0 (Bytes.length b)

  let send_line c line = send_raw c (line ^ "\n")

  let read_line c =
    let tmp = Bytes.create 65536 in
    let rec go () =
      let s = Buffer.contents c.buf in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.clear c.buf;
        Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
        String.sub s 0 i
      | None -> (
        match Unix.read c.fd tmp 0 (Bytes.length tmp) with
        | 0 -> failwith "serve: connection closed mid-response"
        | n ->
          Buffer.add_subbytes c.buf tmp 0 n;
          go ())
    in
    go ()

  let request_line c line =
    send_line c line;
    read_line c

  let request c line =
    match J.parse (request_line c line) with
    | Ok v -> v
    | Error e -> failwith ("serve: unparseable response: " ^ e)
end
