(** Verification as a service: a long-lived daemon answering
    {!Minesweeper.Verify.Protocol} requests (line-delimited JSON over a
    Unix-domain socket) with {!Minesweeper.Verify.Report}-based
    responses, every one carrying a ["schema"] field.

    Two caches make the daemon more than a socket wrapper:

    - an {e encoding cache}, keyed by the concrete network digest
      (per-device {!Analysis.Symmetry.digest} plus the topology), so
      re-loading a previously-seen configuration — the A→B→A flap of a
      rolled-back change — reuses the built encoding and its
      incremental solver session, learnt clauses included;

    - a {e verdict cache}, keyed by {!Minesweeper.Verify.Protocol.spec_key}
      and migrated across config diffs by {e core-disjoint replay}: a
      [Verified] report from a support-tracking session names the
      devices its refutation used, and when a diff's conservatively
      expanded changed-device set is disjoint from both that support
      and the devices whose configuration the spec's property terms
      read directly (its destination, an equivalence pair), the verdict
      is replayed (report marked [replayed]) without touching a solver.
      Global properties whose terms enumerate config-dependent
      structure of every device (blackholes, loops, no-leak, all-pairs)
      never replay across a diff; diffs that change the device set, the
      topology, the feature scan or the iBGP session structure fall
      back to full re-verification (all cached verdicts dropped); see
      DESIGN.md for the soundness argument.

    Encodings are built lazily — a diff whose cached verdicts all
    replay, followed by queries answered from the cache, never encodes
    the new network at all. *)

type t
(** Daemon state: current network, both caches, and the counters
    surfaced by the [stats] op. *)

val create : ?jobs:int -> Minesweeper.Options.t -> t
(** [jobs] (default 1) caps the per-request worker-process fan-out
    ({!Engine.run}); requests asking for more are clamped.  Three
    options are forced off in [opts]: [symmetry] (support tracking
    names concrete devices), and [merge_dataplane] / [merge_filters]
    (ACL and policy semantics must live in tagged per-device assertions
    for core-disjoint replay to be sound, not be inlined into property
    terms the core cannot attribute). *)

val handle_line : t -> string -> string * [ `Continue | `Stop ]
(** Process one request line, return the response line — the daemon's
    whole logic, exposed directly so tests and in-process callers can
    skip the socket.  [`Stop] acknowledges a [shutdown] request. *)

val run : t -> socket:string -> unit
(** Serve requests on a Unix-domain socket at [socket] (an existing
    file at that path is replaced) until a [shutdown] request; the
    socket file is removed on exit.  Clients are multiplexed with
    [select]; requests are executed serially in arrival order, one
    response line per request line.  A client disconnecting mid-line
    discards its partial request and nothing else. *)

(** A minimal blocking client for tests, the bench harness, and
    in-tree tooling. *)
module Client : sig
  type conn

  val connect : string -> conn

  val connect_retry : ?attempts:int -> string -> conn
  (** Retry [connect] at 100 ms intervals while the socket does not yet
      exist or refuses — for callers that just forked the daemon. *)

  val close : conn -> unit
  val send_line : conn -> string -> unit

  val send_raw : conn -> string -> unit
  (** Write bytes with no newline appended — tests use it to abandon a
      request mid-line. *)

  val read_line : conn -> string

  val request_line : conn -> string -> string
  (** Send one request line, read one response line. *)

  val request : conn -> string -> Msutil.Json.value
  (** {!request_line} plus parsing.
      @raise Failure on connection loss or an unparseable response. *)
end
