(** Decoding of satisfying assignments into human-readable
    counterexamples: the concrete packet, the environment (external
    announcements and failed links) and the resulting stable forwarding
    state. *)

module T = Smt.Term
module Model = Smt.Model

type announcement = {
  cx_at : string;  (** receiving device *)
  cx_peer : string;
  cx_plen : int;
  cx_metric : int;
  cx_med : int;
  cx_comms : Net.Community.t list;
}

type t = {
  dst_ip : Net.Ipv4.t;
  src_ip : Net.Ipv4.t;
  dst_port : int;
  announcements : announcement list;
  failures : (string * string) list;
  forwarding : (string * Nexthop.t) list;  (** active data-plane edges *)
  classes : (string * string list) list;
      (** symmetry classes of the encoding ([representative ->
          concrete members]): device names above are quotient
          representatives, and each one stands for every member of its
          class.  Empty for a full encoding. *)
}

let eval_int model term =
  match Model.eval model term with
  | Model.Int n -> n
  | Model.Bv v -> v
  | Model.Bool _ | Model.Rat _ -> 0

let eval_bool model term = Model.eval_bool model term

let decode (enc : Encode.t) (model : Model.t) : t =
  let pkt = Encode.packet enc in
  let announcements =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun (p, _) ->
            let r = Encode.env_record enc d p in
            if eval_bool model r.Sym_record.valid then
              Some
                {
                  cx_at = d;
                  cx_peer = p;
                  cx_plen = eval_int model r.Sym_record.plen;
                  cx_metric = eval_int model r.Sym_record.metric;
                  cx_med = eval_int model r.Sym_record.med;
                  cx_comms =
                    List.filter_map
                      (fun (c, t) -> if eval_bool model t then Some c else None)
                      r.Sym_record.comms;
                }
            else None)
          (Encode.external_peers enc d))
      (Encode.devices enc)
  in
  let failures =
    List.filter_map
      (fun (pair, v) -> if eval_bool model v then Some pair else None)
      (Encode.failed_links enc)
  in
  let forwarding =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun h -> if eval_bool model (Encode.datafwd enc d h) then Some (d, h) else None)
          (Encode.hops enc d))
      (Encode.devices enc)
  in
  {
    dst_ip = eval_int model pkt.Packet.dst_ip;
    src_ip = eval_int model pkt.Packet.src_ip;
    dst_port = eval_int model pkt.Packet.dst_port;
    announcements;
    failures;
    forwarding;
    classes = Encode.sym_classes enc;
  }

(* {2 Concrete replay}

   A Sat verdict's model describes an environment (external
   announcements, failed links) and a claimed stable forwarding state.
   [replay] re-creates that environment concretely, runs the reference
   control-plane simulator on it, and compares the reachability every
   device gets under the simulator's data plane with the reachability
   the counterexample's forwarding edges claim.  Agreement means the
   symbolic stable state is one the concrete protocol dynamics actually
   produce — independent, end-to-end evidence for the verdict. *)

let to_env (enc : Encode.t) (cx : t) : Routing.Simulator.env =
  let devices = Encode.devices enc in
  let is_device d = List.mem d devices in
  let internal_failures, external_failures =
    List.partition (fun (a, b) -> is_device a && is_device b) cx.failures
  in
  let peering_failed at peer =
    List.exists (fun (a, b) -> (a = at && b = peer) || (a = peer && b = at)) external_failures
  in
  let external_ads =
    List.filter_map
      (fun a ->
        (* a failed external peering is behaviourally the peer not
           announcing, so its announcements are dropped rather than
           turned into a failed link the simulator would not know *)
        if peering_failed a.cx_at a.cx_peer then None
        else
          match List.assoc_opt a.cx_peer (Encode.external_peers enc a.cx_at) with
          | None -> None
          | Some ip ->
            let plen = max 0 (min 32 a.cx_plen) in
            Some
              ( a.cx_at,
                ip,
                {
                  Routing.Simulator.adv_prefix = Net.Prefix.make cx.dst_ip plen;
                  adv_path_len = a.cx_metric;
                  adv_med = a.cx_med;
                  adv_communities = Net.Community.Set.of_list a.cx_comms;
                } ))
      cx.announcements
  in
  { Routing.Simulator.external_ads; failed_links = internal_failures }

(* Reachability claimed by the counterexample's forwarding edges: a
   packet at [d] is delivered iff some chain of active data-plane edges
   reaches [To_deliver] or [To_external] (leaving the network counts as
   delivery, matching {!Routing.Dataplane.reachable}).  All ECMP
   branches are explored; a cycle terminates that branch without
   delivering, with a per-path visited set exactly like the concrete
   trace walk. *)
let claims_reachable (cx : t) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (d, h) -> Hashtbl.add tbl d h) cx.forwarding;
  fun start ->
    let rec go seen d =
      (not (List.mem d seen))
      && List.exists
           (function
             | Nexthop.To_deliver | Nexthop.To_external _ -> true
             | Nexthop.To_device d' -> go (d :: seen) d'
             | Nexthop.To_drop -> false)
           (Hashtbl.find_all tbl d)
    in
    go [] start

let replay (enc : Encode.t) (cx : t) : (unit, string) result =
  let net = Encode.network enc in
  let env = to_env enc cx in
  let state = Routing.Simulator.run net env in
  if not (Routing.Simulator.converged state) then
    Error "simulator did not converge on the counterexample environment"
  else begin
    let claimed = claims_reachable cx in
    let mismatch =
      List.find_opt
        (fun d ->
          claimed d <> Routing.Dataplane.reachable net state ~src:d ~dst:cx.dst_ip)
        (Encode.devices enc)
    in
    match mismatch with
    | None -> Ok ()
    | Some d ->
      Error
        (Printf.sprintf
           "replay disagrees at %s: counterexample claims dst %s is %s there, the simulator says otherwise"
           d (Net.Ipv4.to_string cx.dst_ip)
           (if claimed d then "reachable" else "unreachable"))
  end

let pp fmt t =
  let open Format in
  fprintf fmt "packet: dst=%s src=%s port=%d@." (Net.Ipv4.to_string t.dst_ip)
    (Net.Ipv4.to_string t.src_ip) t.dst_port;
  if t.announcements = [] then fprintf fmt "environment: no external announcements@."
  else
    List.iter
      (fun a ->
        fprintf fmt "announcement at %s from %s: /%d pathlen=%d med=%d%s@." a.cx_at a.cx_peer
          a.cx_plen a.cx_metric a.cx_med
          (match a.cx_comms with
           | [] -> ""
           | cs -> " comms=" ^ String.concat "," (List.map Net.Community.to_string cs)))
      t.announcements;
  List.iter (fun (a, b) -> fprintf fmt "failed link: %s -- %s@." a b) t.failures;
  List.iter
    (fun (d, h) -> fprintf fmt "fwd: %s -> %s@." d (Nexthop.to_string h))
    t.forwarding;
  (* lift quotient representatives back to the concrete devices they
     stand for *)
  List.iter
    (fun (rep, members) ->
      fprintf fmt "symmetry: %s stands for {%s}@." rep (String.concat ", " members))
    t.classes

let to_string t = Format.asprintf "%a" pp t
