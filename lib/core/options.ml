(** Encoding options: the §6 optimizations as independent switches so
    the ablation benchmarks (E7) can toggle them. *)

type t = {
  hoist_prefixes : bool;
      (** §6.1 prefix elimination: drop per-record prefix variables and
          rewrite prefix filters as integer range tests on the single
          symbolic destination IP.  When [false], every record carries a
          32-bit bit-vector prefix that is bit-blasted (the "naive"
          baseline). *)
  slice_unused : bool;
      (** §6.2: statically drop attributes that can never influence any
          decision in this network (e.g. local-preference when no
          configuration sets it), replacing them by shared constants. *)
  merge_filters : bool;
      (** §6.2: share import and export records over an edge when no
          import policy exists (derived copies instead of fresh
          variables). *)
  merge_dataplane : bool;
      (** §6.2: merge control-plane and data-plane forwarding variables
          on edges without ACLs. *)
  max_failures : int option;
      (** [Some k] introduces per-link failure variables constrained to
          at most [k] simultaneous failures; [None] encodes a fully
          healthy network (failure variables sliced away). *)
  fail_internal_only : bool;
      (** Restrict failure variables to links between internal devices.
          A failed external peering is behaviourally identical to the
          peer not announcing, which the symbolic environment already
          covers; fault-invariance checking therefore uses this mode to
          avoid double-counting the environment as a "failure". *)
  symmetry : bool;
      (** Quotient encoding by symmetry reduction: partition the devices
          into interchangeability classes ({!Analysis.Symmetry.classes},
          color refinement seeded by renaming-invariant config
          fingerprints) and encode one representative per class instead
          of the full network.  Property endpoints must be pinned via
          [Encode.build ~pins] so their classes stay singletons.  The
          reduction conservatively bails out to the full encoding for
          asymmetric networks and for feature combinations whose
          quotient semantics differ (iBGP, statics with internal next
          hops, intra-class links, [max_failures]); see DESIGN.md for
          the soundness argument. *)
  preflight_lint : bool;
      (** Run the {!Analysis} linter before encoding and refuse to
          encode a network with Error-level findings (undefined policy
          objects, AS mismatches, ...): {!Encode.build} raises
          {!Analysis.Lint.Lint_errors} instead of silently verifying
          the wrong network. *)
  lint_slice : bool;
      (** Lint-driven slicing: before encoding, delete route-map
          clauses and prefix-list/ACL entries the dead-code analysis
          proves can never fire (the linter's MS-W201/202/203/204
          findings).  Verification verdicts are unchanged; the formula
          shrinks. *)
  strategy : Smt.Solver.strategy;
      (** SAT search strategy (VSIDS decay, restart cadence, branching
          polarity) used by every solver created for this encoding.
          Any strategy yields the same verdicts; the portfolio engine
          races the {!portfolio} variants on one hard query. *)
  solver_features : Smt.Solver.features;
      (** Solver-throughput optimizations (polarity-aware CNF, level-0
          preprocessing, theory propagation, LBD clause management)
          used by every solver created for this encoding.  Any
          combination yields the same verdicts; [bench solver] ablates
          them. *)
  certify : bool;
      (** Certify every verdict independently: solvers record a
          DRAT-style proof trace, Unsat answers are replayed through the
          [Proof] checker (with theory lemmas re-justified by standalone
          solvers), and Sat answers are validated by model evaluation
          over the original terms plus counterexample replay through the
          concrete routing simulator.  Results land in
          [Verify.Report.certificate]; verdicts are unchanged. *)
}

let default =
  {
    hoist_prefixes = true;
    slice_unused = true;
    merge_filters = true;
    merge_dataplane = true;
    max_failures = None;
    fail_internal_only = false;
    symmetry = false;
    preflight_lint = true;
    lint_slice = false;
    (* Production default: Glucose-style adaptive (EMA-of-LBD) restarts
       plus periodic rephasing.  [Smt.Solver.default_strategy] keeps
       the Luby cadence with rephasing off as the neutral library
       baseline so [bench solver]'s strategy grid can isolate each
       knob; on the large fat-tree encodings the adaptive mode roughly
       halves the conflict count of the same all-ToR query and
       rephasing shaves another ~20% (pods=10: 108 s vs 264 s under
       Luby — BENCH_scale.json), while on small instances the corners
       are within noise of each other. *)
    strategy =
      { Smt.Solver.default_strategy with
        Smt.Solver.restart_mode = Smt.Solver.Ema_lbd;
        rephase = true };
    solver_features = Smt.Solver.default_features;
    certify = false;
  }

let naive = { default with hoist_prefixes = false; slice_unused = false; merge_filters = false; merge_dataplane = false }

let with_failures k t = { t with max_failures = Some k }
let with_symmetry t = { t with symmetry = true }
let with_slicing t = { t with lint_slice = true }
let with_strategy st t = { t with strategy = st }
let with_features f t = { t with solver_features = f }
let with_certify t = { t with certify = true }

(* Named search-strategy variants for portfolio solving: very different
   restart policies and branching polarities explore the search space in
   different orders, so racing them on one hard query and keeping the
   first answer routinely beats any fixed choice.  All variants are
   sound and complete — only wall time differs.  The list deliberately
   covers both restart modes and both rephasing settings: with clause
   sharing on, diversity is what gives the exchanged clauses value. *)
let portfolio : (string * Smt.Solver.strategy) list =
  let d = Smt.Solver.default_strategy in
  [
    ("default",
     { d with Smt.Solver.restart_mode = Smt.Solver.Ema_lbd; rephase = true });
    ("luby-restarts", d);
    ("ema-restarts", { d with Smt.Solver.restart_mode = Smt.Solver.Ema_lbd });
    ("luby-rephase", { d with Smt.Solver.rephase = true });
    ("agile-restarts", { d with Smt.Solver.restart_base = 25 });
    ("focused-decay",
     { d with Smt.Solver.var_decay = 0.85;
       restart_mode = Smt.Solver.Ema_lbd; rephase = true });
    ("positive-phase", { d with Smt.Solver.default_phase = true; rephase = true });
  ]
