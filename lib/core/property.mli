(** Properties (§5) expressed over a network encoding.

    A property is a triple: [instrumentation] constraints (extra
    variables such as reachability or path-length bits), [assumptions]
    restricting packets/environments (conjoined positively), and the
    [goal].  {!Verify.run_query} asserts the network semantics, the
    instrumentation, the assumptions, and the {e negation} of the goal:
    UNSAT means the property holds in every stable state, for every
    packet and environment. *)

type t = {
  instrumentation : Smt.Term.t list;
  assumptions : Smt.Term.t list;
  goal : Smt.Term.t;
}

(** Destination of reachability-style queries. *)
type destination =
  | Subnet of string * Net.Prefix.t  (** a subnet attached to a device *)
  | External_peer of string  (** traffic exits to this symbolic peer *)
  | Device of string  (** any subnet attached to the device *)

val reach_terms : Encode.t -> destination -> (string -> Smt.Term.t) * Smt.Term.t list
(** [canReach] instrumentation: per-device reachability variables and
    their defining constraints. *)

val reachability : Encode.t -> sources:string list -> destination -> t
(** Every source can reach the destination (for all packets to it, all
    environments). *)

val isolation : Encode.t -> sources:string list -> destination -> t

val bounded_length : Encode.t -> sources:string list -> destination -> bound:int -> t
(** No source uses a forwarding path longer than [bound] hops. *)

val equal_lengths : Encode.t -> sources:string list -> destination -> t
(** All sources that reach the destination use paths of one common
    length. *)

val waypoint : Encode.t -> sources:string list -> destination -> via:string -> t
(** All delivered traffic from the sources traverses [via]. *)

val disjoint_paths : Encode.t -> string -> string -> destination -> t
(** The two devices never share a (directed) forwarding edge on their
    paths to the destination. *)

val no_loops : Encode.t -> ?candidates:string list -> unit -> t
(** No forwarding loop exists.  [candidates] defaults to the devices
    where loops are possible (static routes or redistribution). *)

val no_blackholes : Encode.t -> ?allowed:string list -> unit -> t
(** No device (outside [allowed], e.g. edge routers with intentional
    filters) drops forwarded traffic — by receiving it without a
    forwarding entry, or by an ACL cancelling its control-plane
    decision. *)

val acl_equivalence : Encode.t -> string -> string -> t
(** The packet filters enforced by two same-role devices treat every
    packet identically (§8.1 local-equivalence violation class). *)

val multipath_consistency : Encode.t -> destination -> t

val neighbor_preference : Encode.t -> device:string -> peers:string list -> t
(** When several of the listed peers advertise, the device picks the
    earliest in the list (§5 "neighbor preferences"). *)

val load_balance : Encode.t -> sources:string list -> destination -> pair:string * string -> threshold:Exactnum.Rat.t -> t
(** ECMP load on the two devices differs by at most [threshold] (§5
    "load balancing"; uses the rational theory). *)

val no_leak : Encode.t -> max_len:int -> t
(** No route more specific than [max_len] is exported to any external
    peer (§5 "aggregation and leaking prefixes"). *)

val local_equivalence : Encode.t -> string -> string -> t
(** Given pointwise-equal environments, the two devices make the same
    forwarding decisions and send the same exports (§5).  The devices
    must have the same number of external peerings. *)
