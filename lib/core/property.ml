module T = Smt.Term
module A = Config.Ast

type t = {
  instrumentation : Smt.Term.t list;
  assumptions : Smt.Term.t list;
  goal : Smt.Term.t;
}

type destination =
  | Subnet of string * Net.Prefix.t
  | External_peer of string
  | Device of string

let fresh_prop_counter = ref 0

let prop_var name =
  incr fresh_prop_counter;
  T.var (Printf.sprintf "prop!%d.%s" !fresh_prop_counter name) Smt.Sort.Bool

let prop_int name =
  incr fresh_prop_counter;
  T.var (Printf.sprintf "prop!%d.%s" !fresh_prop_counter name) Smt.Sort.Int

let prop_real name =
  incr fresh_prop_counter;
  T.var (Printf.sprintf "prop!%d.%s" !fresh_prop_counter name) Smt.Sort.Real

(* A property that names a device is only meaningful when that device
   survives in the encoding as itself.  Under a symmetry quotient
   ([Options.symmetry]) a collapsed device has no forwarding variables,
   so the terms below would silently degenerate to [T.fls] and produce a
   bogus verdict — fail loudly instead and tell the caller to pin the
   device ({!Encode.build} [~pins]) or project it
   ({!Encode.project_devices}). *)
let require_concrete enc d =
  let r = Encode.representative enc d in
  if r <> d then
    invalid_arg
      (Printf.sprintf
         "Property: device %s was collapsed into symmetry class representative %s; pin it via Encode.build ~pins or map it through Encode.project_devices"
         d r)

let require_concrete_dest enc = function
  | Subnet (owner, _) | Device owner -> require_concrete enc owner
  | External_peer _ -> ()

(* Constraints a destination puts on the symbolic packet. *)
let dst_assumptions enc dest =
  require_concrete_dest enc dest;
  let pkt = Encode.packet enc in
  match dest with
  | Subnet (_, p) -> [ Packet.dst_in_prefix pkt p ]
  | External_peer _ ->
    (* destination beyond the network edge: outside every internal subnet *)
    List.concat_map
      (fun d -> List.map (fun p -> T.not_ (Packet.dst_in_prefix pkt p)) (Encode.subnets enc d))
      (Encode.devices enc)
  | Device d ->
    [ T.or_ (List.map (Packet.dst_in_prefix pkt) (Encode.subnets enc d)) ]

let base_term enc dest d =
  match dest with
  | Subnet (owner, _) | Device owner ->
    if d = owner then Encode.datafwd enc d Nexthop.To_deliver else T.fls
  | External_peer peer -> Encode.datafwd enc d (Nexthop.To_external peer)

(* canReach instrumentation (§3 step 8). *)
let reach_terms enc dest =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.replace tbl d (prop_var ("canReach." ^ d)))
    (Encode.devices enc);
  let get d = match Hashtbl.find_opt tbl d with Some v -> v | None -> T.fls in
  let defs =
    List.map
      (fun d ->
        let steps =
          List.map
            (fun n -> T.and_ [ Encode.datafwd enc d (Nexthop.To_device n); get n ])
            (Encode.internal_neighbors enc d)
        in
        T.iff (get d) (T.or_ (base_term enc dest d :: steps)))
      (Encode.devices enc)
  in
  (get, defs)

let reachability enc ~sources dest =
  List.iter (require_concrete enc) sources;
  let reach, defs = reach_terms enc dest in
  {
    instrumentation = defs;
    assumptions = dst_assumptions enc dest;
    goal = T.and_ (List.map reach sources);
  }

let isolation enc ~sources dest =
  List.iter (require_concrete enc) sources;
  let reach, defs = reach_terms enc dest in
  {
    instrumentation = defs;
    assumptions = dst_assumptions enc dest;
    goal = T.and_ (List.map (fun s -> T.not_ (reach s)) sources);
  }

(* Reachability refined with a hop-count variable: [len d] is the length
   of the forwarding path justifying [reach d]. *)
let reach_with_length enc dest =
  let rtbl = Hashtbl.create 16 and ltbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace rtbl d (prop_var ("canReachL." ^ d));
      Hashtbl.replace ltbl d (prop_int ("pathLen." ^ d)))
    (Encode.devices enc);
  let reach d = match Hashtbl.find_opt rtbl d with Some v -> v | None -> T.fls in
  let len d = Hashtbl.find ltbl d in
  let defs =
    List.concat_map
      (fun d ->
        let base = base_term enc dest d in
        let steps =
          List.map
            (fun n ->
              T.and_
                [
                  Encode.datafwd enc d (Nexthop.To_device n);
                  reach n;
                  T.eq (len d) (T.add (len n) (T.int_const 1));
                ])
            (Encode.internal_neighbors enc d)
        in
        [
          T.iff (reach d) (T.or_ (T.and_ [ base; T.eq (len d) (T.int_const 0) ] :: steps));
          T.geq (len d) (T.int_const 0);
        ])
      (Encode.devices enc)
  in
  (reach, len, defs)

let bounded_length enc ~sources dest ~bound =
  List.iter (require_concrete enc) sources;
  let reach, len, defs = reach_with_length enc dest in
  {
    instrumentation = defs;
    assumptions = dst_assumptions enc dest;
    goal =
      T.and_
        (List.map (fun s -> T.implies (reach s) (T.leq (len s) (T.int_const bound))) sources);
  }

let equal_lengths enc ~sources dest =
  List.iter (require_concrete enc) sources;
  let reach, len, defs = reach_with_length enc dest in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  {
    instrumentation = defs;
    assumptions = dst_assumptions enc dest;
    goal =
      T.and_
        (List.map
           (fun (a, b) ->
             T.implies (T.and_ [ reach a; reach b ]) (T.eq (len a) (len b)))
           (pairs sources));
  }

let waypoint enc ~sources dest ~via =
  List.iter (require_concrete enc) (via :: sources);
  let reach, defs = reach_terms enc dest in
  (* [wp d]: every delivered forwarding branch from [d] traverses [via]
     before reaching the destination (all-paths semantics, so an ECMP
     branch that bypasses the waypoint is a violation). *)
  let tbl = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace tbl d (prop_var ("viaWp." ^ d))) (Encode.devices enc);
  let wp d = match Hashtbl.find_opt tbl d with Some v -> v | None -> T.fls in
  let wp_defs =
    List.map
      (fun d ->
        if d = via then T.iff (wp d) (reach d)
        else begin
          let all_branches =
            List.map
              (fun n ->
                T.implies
                  (T.and_ [ Encode.datafwd enc d (Nexthop.To_device n); reach n ])
                  (wp n))
              (Encode.internal_neighbors enc d)
          in
          T.iff (wp d)
            (T.and_ (reach d :: T.not_ (base_term enc dest d) :: all_branches))
        end)
      (Encode.devices enc)
  in
  {
    instrumentation = defs @ wp_defs;
    assumptions = dst_assumptions enc dest;
    goal = T.and_ (List.map (fun s -> T.implies (reach s) (wp s)) sources);
  }

let disjoint_paths enc d1 d2 dest =
  List.iter (require_concrete enc) [ d1; d2 ];
  (* on_i(d): d lies on a forwarding path from d_i toward the destination *)
  let make src =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun d -> Hashtbl.replace tbl d (prop_var (Printf.sprintf "on.%s.%s" src d)))
      (Encode.devices enc);
    let on d = match Hashtbl.find_opt tbl d with Some v -> v | None -> T.fls in
    let defs =
      List.map
        (fun d ->
          if d = src then T.iff (on d) T.tru
          else begin
            let preds =
              List.filter_map
                (fun p ->
                  if List.mem d (Encode.internal_neighbors enc p) then
                    Some (T.and_ [ on p; Encode.datafwd enc p (Nexthop.To_device d) ])
                  else None)
                (Encode.devices enc)
            in
            T.iff (on d) (T.or_ preds)
          end)
        (Encode.devices enc)
    in
    (on, defs)
  in
  let on1, defs1 = make d1 in
  let on2, defs2 = make d2 in
  let shared_edge =
    List.concat_map
      (fun d ->
        List.map
          (fun n ->
            let e = Encode.datafwd enc d (Nexthop.To_device n) in
            T.and_ [ on1 d; on2 d; e ])
          (Encode.internal_neighbors enc d))
      (Encode.devices enc)
  in
  {
    instrumentation = defs1 @ defs2;
    assumptions = dst_assumptions enc dest;
    goal = T.not_ (T.or_ shared_edge);
  }

let loop_candidates enc =
  List.filter
    (fun d ->
      match A.find_device (Encode.network enc) d with
      | None -> false
      | Some dev ->
        dev.A.dev_statics <> []
        || (match dev.A.dev_bgp with Some b -> b.A.bgp_redistribute <> [] | None -> false)
        || (match dev.A.dev_ospf with Some o -> o.A.ospf_redistribute <> [] | None -> false))
    (Encode.devices enc)

let no_loops enc ?candidates () =
  let candidates = match candidates with Some c -> c | None -> loop_candidates enc in
  (* For each candidate r: visit(d) = traffic from d returns to r. *)
  let loops =
    List.concat_map
      (fun r ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun d -> Hashtbl.replace tbl d (prop_var (Printf.sprintf "loop.%s.%s" r d)))
          (Encode.devices enc);
        let visit d = match Hashtbl.find_opt tbl d with Some v -> v | None -> T.fls in
        let defs =
          List.map
            (fun d ->
              let steps =
                List.map
                  (fun n ->
                    T.and_
                      [
                        Encode.datafwd enc d (Nexthop.To_device n);
                        (if n = r then T.tru else visit n);
                      ])
                  (Encode.internal_neighbors enc d)
              in
              T.iff (visit d) (T.or_ steps))
            (Encode.devices enc)
        in
        (defs, visit r) :: [])
      candidates
  in
  {
    instrumentation = List.concat_map fst loops;
    assumptions = [];
    goal = T.not_ (T.or_ (List.map snd loops));
  }

let outgoing enc d =
  T.or_
    (List.filter_map
       (fun h ->
         match h with
         | Nexthop.To_drop -> None
         | Nexthop.To_device _ | Nexthop.To_external _ | Nexthop.To_deliver ->
           Some (Encode.datafwd enc d h))
       (Encode.hops enc d))

let no_blackholes enc ?(allowed = []) () =
  let holes =
    List.filter_map
      (fun d ->
        if List.mem d allowed then None
        else begin
          let incoming =
            List.filter_map
              (fun p ->
                if List.mem d (Encode.internal_neighbors enc p) then
                  Some (Encode.datafwd enc p (Nexthop.To_device d))
                else None)
              (Encode.devices enc)
          in
          (* a device drops traffic either by having no forwarding entry
             for it, or by an ACL cancelling its control-plane decision *)
          let acl_drop =
            List.map
              (fun h ->
                T.and_ [ Encode.controlfwd enc d h; T.not_ (Encode.datafwd enc d h) ])
              (Encode.hops enc d)
          in
          let no_route = if incoming = [] then T.fls else T.and_ [ T.or_ incoming; T.not_ (outgoing enc d) ] in
          Some (T.or_ (no_route :: acl_drop))
        end)
      (Encode.devices enc)
  in
  { instrumentation = []; assumptions = []; goal = T.not_ (T.or_ holes) }

(* ACL-behaviour equivalence between two same-role devices: the packet
   filters they enforce (on any of their interfaces) treat every packet
   identically.  Captures the §8.1 "copy-paste ACL exception" class. *)
let acl_verdict enc d =
  match A.find_device (Encode.network enc) d with
  | None -> T.tru
  | Some dev ->
    let pkt = Encode.packet enc in
    let acl_terms =
      List.concat_map
        (fun (i : A.interface) ->
          List.filter_map
            (fun name ->
              match Option.bind name (A.find_acl dev) with
              | Some acl -> Some (Filter.acl_permits pkt acl)
              | None -> None)
            [ i.A.if_acl_in; i.A.if_acl_out ])
        dev.A.dev_interfaces
    in
    T.and_ acl_terms

let acl_equivalence enc d1 d2 =
  List.iter (require_concrete enc) [ d1; d2 ];
  {
    instrumentation = [];
    assumptions = [];
    goal = T.iff (acl_verdict enc d1) (acl_verdict enc d2);
  }

let multipath_consistency enc dest =
  let reach, defs = reach_terms enc dest in
  let per_device =
    List.map
      (fun d ->
        let per_nbr =
          List.map
            (fun n ->
              T.implies
                (Encode.controlfwd enc d (Nexthop.To_device n))
                (T.and_ [ Encode.datafwd enc d (Nexthop.To_device n); reach n ]))
            (Encode.internal_neighbors enc d)
        in
        T.implies (reach d) (T.and_ per_nbr))
      (Encode.devices enc)
  in
  {
    instrumentation = defs;
    assumptions = dst_assumptions enc dest;
    goal = T.and_ per_device;
  }

let neighbor_preference enc ~device ~peers =
  require_concrete enc device;
  (* §5: if an advertisement survives the import filter and all more
     preferred ones do not, the device forwards to that neighbor. *)
  let import p = Encode.import_from_external enc device p in
  let rec conds prior = function
    | [] -> []
    | p :: rest ->
      let better_absent = List.map (fun q -> T.not_ ((import q).Sym_record.valid)) prior in
      T.implies
        (T.and_ ((import p).Sym_record.valid :: better_absent))
        (Encode.controlfwd enc device (Nexthop.To_external p))
      :: conds (p :: prior) rest
  in
  { instrumentation = []; assumptions = []; goal = T.and_ (conds [] peers) }

let load_balance enc ~sources dest ~pair:(da, db) ~threshold =
  List.iter (require_concrete enc) (da :: db :: sources);
  let q = T.rat_const in
  let module Rat = Exactnum.Rat in
  (* per-device totals and per-edge shares (§5 load balancing) *)
  let total_tbl = Hashtbl.create 16 in
  let share_tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace total_tbl d (prop_real ("total." ^ d));
      Hashtbl.replace share_tbl d (prop_real ("share." ^ d)))
    (Encode.devices enc);
  let total d = Hashtbl.find total_tbl d in
  let share d = Hashtbl.find share_tbl d in
  let out_tbl = Hashtbl.create 64 in
  let defs = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun n ->
          let v = prop_real (Printf.sprintf "out.%s.%s" d n) in
          Hashtbl.replace out_tbl (d, n) v;
          let fwd = Encode.datafwd enc d (Nexthop.To_device n) in
          defs := T.implies fwd (T.eq v (share d)) :: T.implies (T.not_ fwd) (T.eq v (q Rat.zero)) :: !defs)
        (Encode.internal_neighbors enc d))
    (Encode.devices enc);
  (* totals: source injection plus incoming shares *)
  List.iter
    (fun d ->
      let inject = if List.mem d sources then q Rat.one else q Rat.zero in
      let incoming =
        List.filter_map (fun p -> Hashtbl.find_opt out_tbl (p, d)) (Encode.devices enc)
      in
      let sum = List.fold_left T.add inject incoming in
      defs := T.eq (total d) sum :: !defs;
      (* conservation: what flows in flows out over the used edges *)
      let outgoing_edges =
        List.filter_map (fun n -> Hashtbl.find_opt out_tbl (d, n)) (Encode.internal_neighbors enc d)
      in
      let internal_out = List.fold_left T.add (q Rat.zero) outgoing_edges in
      let exits =
        T.or_
          (List.filter_map
             (fun h ->
               match h with
               | Nexthop.To_deliver | Nexthop.To_external _ -> Some (Encode.datafwd enc d h)
               | Nexthop.To_device _ | Nexthop.To_drop -> None)
             (Encode.hops enc d))
      in
      defs := T.implies (T.not_ exits) (T.eq (total d) internal_out) :: !defs;
      defs := T.geq (share d) (q Rat.zero) :: !defs)
    (Encode.devices enc);
  let diff_le =
    T.and_
      [
        T.leq (T.sub (total da) (total db)) (q threshold);
        T.leq (T.sub (total db) (total da)) (q threshold);
      ]
  in
  {
    instrumentation = !defs;
    assumptions = dst_assumptions enc dest;
    goal = diff_le;
  }

let no_leak enc ~max_len =
  let checks =
    List.concat_map
      (fun d ->
        List.map
          (fun (p, _) ->
            let e = Encode.export_to_external enc d p in
            T.implies e.Sym_record.valid (T.leq e.Sym_record.plen (T.int_const max_len)))
          (Encode.external_peers enc d))
      (Encode.devices enc)
  in
  { instrumentation = []; assumptions = []; goal = T.and_ checks }

let record_eq (a : Sym_record.t) (b : Sym_record.t) =
  T.and_
    [
      T.iff a.Sym_record.valid b.Sym_record.valid;
      T.implies a.Sym_record.valid (Sym_record.equal_fields a b);
    ]

(* Two devices are locally equivalent (Â§5) when, given pointwise-equal
   inputs on their (structurally paired) sessions, they make the same
   forwarding decisions and send the same external exports.  External
   peerings are paired and their *raw environments* equated (so import
   filter differences are caught); internal sessions are paired by
   sorted peer name and their post-import records equated. *)
let local_equivalence enc d1 d2 =
  List.iter (require_concrete enc) [ d1; d2 ];
  let ext1 = List.map fst (Encode.external_peers enc d1) in
  let ext2 = List.map fst (Encode.external_peers enc d2) in
  let int1 = Encode.internal_imports enc d1 in
  let int2 = Encode.internal_imports enc d2 in
  if List.length ext1 <> List.length ext2 || List.length int1 <> List.length int2 then
    { instrumentation = []; assumptions = []; goal = T.fls }
  else begin
    let ext_paired = List.combine ext1 ext2 in
    let int_paired = List.combine int1 int2 in
    let env_equal =
      List.map
        (fun (p1, p2) ->
          record_eq (Encode.env_record enc d1 p1) (Encode.env_record enc d2 p2))
        ext_paired
    in
    let imports_equal =
      List.map (fun ((_, r1), (_, r2)) -> record_eq r1 r2) int_paired
    in
    (* exclude traffic to the devices' own addresses: delivery to a local
       subnet is trivially device-specific, not a role inconsistency *)
    let not_own_traffic =
      List.concat_map
        (fun d ->
          List.map
            (fun p -> T.not_ (Packet.dst_in_prefix (Encode.packet enc) p))
            (Encode.subnets enc d))
        [ d1; d2 ]
    in
    let exports_equal =
      List.map
        (fun (p1, p2) ->
          record_eq (Encode.export_to_external enc d1 p1) (Encode.export_to_external enc d2 p2))
        ext_paired
    in
    let ext_fwd_equal =
      List.map
        (fun (p1, p2) ->
          T.iff
            (Encode.datafwd enc d1 (Nexthop.To_external p1))
            (Encode.datafwd enc d2 (Nexthop.To_external p2)))
        ext_paired
    in
    let int_fwd_equal =
      List.map
        (fun ((n1, _), (n2, _)) ->
          T.iff
            (Encode.datafwd enc d1 (Nexthop.To_device n1))
            (Encode.datafwd enc d2 (Nexthop.To_device n2)))
        int_paired
    in
    {
      instrumentation = [];
      assumptions = env_equal @ imports_equal @ not_own_traffic;
      goal = T.and_ (exports_equal @ ext_fwd_equal @ int_fwd_equal);
    }
  end
