module T = Smt.Term
module A = Config.Ast
module Prefix = Net.Prefix
module Ipv4 = Net.Ipv4

(* Forwarding behaviour attached to a candidate record. *)
type hop_spec =
  | Fixed of Nexthop.t
  | Inherit of A.protocol
      (* redistributed route: forwards wherever the source protocol does *)
  | Via_copy of string
      (* iBGP-learned route: forwards per the IGP copy keyed by peer IP *)

type candidate = { rec_ : Sym_record.t; hop : hop_spec; proto : A.protocol }

type device_enc = {
  dev : A.device;
  mutable cand_bgp : candidate list;
  mutable cand_ospf : candidate list;
  mutable cand_direct : candidate list;
  best_bgp : Sym_record.t option;
  best_ospf : Sym_record.t option;
  best_overall : Sym_record.t;
}

type t = {
  net : A.network;
  opts : Options.t;
  feats : Features.t;
  pkt : Packet.t;
  suffix : string;
  igp_only : bool;
  (* assertions carry their provenance: [Some d] for constraints
     generated while encoding device [d]'s configuration, [None] for
     shared structure (packet well-formedness, the failure-count
     cardinality bound).  The serve daemon's delta re-verification
     guards each device's slice behind an assumption literal and reads
     verdict support off the final-conflict core; see [scope]. *)
  mutable asserts : (string option * T.t) list;
  mutable scope : string option;
  dev_enc : (string, device_enc) Hashtbl.t;
  cf : (string * Nexthop.t, T.t) Hashtbl.t;
  df : (string * Nexthop.t, T.t) Hashtbl.t;
  failed_tbl : (string * string, T.t) Hashtbl.t;
  ext_peers : (string, (string * Ipv4.t) list) Hashtbl.t;
  env_tbl : (string * string, Sym_record.t) Hashtbl.t;
  import_ext_tbl : (string * string, Sym_record.t) Hashtbl.t;
  import_int_tbl : (string * string, Sym_record.t) Hashtbl.t;
  export_ext_tbl : (string * string, Sym_record.t) Hashtbl.t;
  copies : (string, t * (string, T.t) Hashtbl.t) Hashtbl.t;
  (* symmetry-quotient bookkeeping, filled by [build] when
     [opts.symmetry] produced a reduction: representative -> full
     concrete class (size >= 2 only), and collapsed member ->
     representative.  Both empty for a full encoding. *)
  mutable sym_classes : (string * string list) list;
  mutable sym_rep : (string * string) list;
}

let network t = t.net
let options t = t.opts
let packet t = t.pkt
let assertions t = List.rev_map snd t.asserts
let tagged_assertions t = List.rev t.asserts
let devices t = List.map (fun (d : A.device) -> d.A.dev_name) t.net.A.net_devices
let emit t term = t.asserts <- (t.scope, term) :: t.asserts

(* Run [f] with assertion provenance attributed to device [d]. *)
let in_scope t d f =
  let saved = t.scope in
  t.scope <- Some d;
  let r = f () in
  t.scope <- saved;
  r

let canonical a b = if a <= b then (a, b) else (b, a)

let failed t a b =
  match Hashtbl.find_opt t.failed_tbl (canonical a b) with Some v -> v | None -> T.fls

let failed_links t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.failed_tbl []

let best_overall t d = (Hashtbl.find t.dev_enc d).best_overall
let best_bgp t d = (Hashtbl.find t.dev_enc d).best_bgp
let best_ospf t d = (Hashtbl.find t.dev_enc d).best_ospf

let external_peers t d = match Hashtbl.find_opt t.ext_peers d with Some l -> l | None -> []
let env_record t d p = Hashtbl.find t.env_tbl (d, p)
let import_from_external t d p = Hashtbl.find t.import_ext_tbl (d, p)

let internal_imports t d =
  Hashtbl.fold
    (fun (dev, peer) r acc -> if dev = d then (peer, r) :: acc else acc)
    t.import_int_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
let export_to_external t d p = Hashtbl.find t.export_ext_tbl (d, p)

let internal_neighbors t d =
  List.sort_uniq compare
    (List.map (fun (_, p, _) -> p) (Net.Topology.neighbors t.net.A.net_topology d))

let subnets t d =
  match A.find_device t.net d with Some dev -> A.connected_prefixes dev | None -> []

let hops t d =
  let ext = List.map (fun (p, _) -> Nexthop.To_external p) (external_peers t d) in
  let ints = List.map (fun n -> Nexthop.To_device n) (internal_neighbors t d) in
  (* static routes can point at external peers that are not BGP sessions *)
  let static_ext =
    match A.find_device t.net d with
    | None -> []
    | Some dev ->
      List.filter_map
        (fun (s : A.static_route) ->
          match s.A.st_next_hop with
          | Some hopip when A.device_of_ip t.net hopip = None ->
            if List.exists (fun p -> Prefix.contains p hopip) (A.connected_prefixes dev) then
              Some (Nexthop.To_external ("peer:" ^ Ipv4.to_string hopip))
            else None
          | Some _ | None -> None)
        dev.A.dev_statics
  in
  Nexthop.To_deliver :: Nexthop.To_drop
  :: List.sort_uniq Nexthop.compare (ints @ ext @ static_ext)

let controlfwd t d h = match Hashtbl.find_opt t.cf (d, h) with Some v -> v | None -> T.fls
let datafwd t d h = match Hashtbl.find_opt t.df (d, h) with Some v -> v | None -> T.fls

(* -- record construction helpers --------------------------------------------------- *)

let all_false_comms (feats : Features.t) = List.map (fun c -> (c, T.fls)) feats.Features.comm_scope

let derived ~name ~valid ~plen ~prefix ~ad ~lp ~metric ~med ~bgp_internal ~comms : Sym_record.t =
  {
    Sym_record.name;
    valid;
    plen;
    prefix;
    ad;
    lp;
    metric;
    med;
    rid = T.int_const 0;
    bgp_internal;
    comms;
  }

let const_prefix_term t (p : Prefix.t) =
  if t.opts.Options.hoist_prefixes then None
  else Some (T.bv_const ~width:32 (Prefix.network p))

(* A record representing a locally originated prefix. *)
let origin_record t ~name ~(p : Prefix.t) ~ad ~metric =
  derived ~name
    ~valid:(Packet.dst_in_prefix t.pkt p)
    ~plen:(T.int_const (Prefix.length p))
    ~prefix:(const_prefix_term t p) ~ad:(T.int_const ad)
    ~lp:(T.int_const Sym_record.default_lp) ~metric:(T.int_const metric) ~med:(T.int_const 0)
    ~bgp_internal:T.fls
    ~comms:(all_false_comms t.feats)

(* -- BGP session discovery ------------------------------------------------------------ *)

type session = {
  s_dev : A.device;
  s_nbr : A.bgp_neighbor;
  s_peer : [ `Internal of string * bool | `External of string ];
}

let bgp_sessions t (dev : A.device) =
  match dev.A.dev_bgp with
  | None -> []
  | Some bgp ->
    List.map
      (fun (n : A.bgp_neighbor) ->
        match A.device_of_ip t.net n.A.nbr_ip with
        | Some d2 when d2.A.dev_name <> dev.A.dev_name ->
          let ibgp =
            match d2.A.dev_bgp with Some b2 -> b2.A.bgp_asn = bgp.A.bgp_asn | None -> false
          in
          { s_dev = dev; s_nbr = n; s_peer = `Internal (d2.A.dev_name, ibgp) }
        | Some _ | None ->
          { s_dev = dev; s_nbr = n; s_peer = `External ("peer:" ^ Ipv4.to_string n.A.nbr_ip) })
      bgp.A.bgp_neighbors

(* The out-map [sender] applies when exporting toward internal [receiver]. *)
let out_map_toward t (sender : A.device) (receiver : string) =
  List.find_map
    (fun s ->
      match s.s_peer with
      | `Internal (name, _) when name = receiver -> Some s.s_nbr.A.nbr_rm_out
      | `Internal _ | `External _ -> None)
    (bgp_sessions t sender)
  |> Option.value ~default:None

(* ==================== main construction ==================== *)

(* Every encoding instance gets a unique name-space: term variables are
   hash-consed globally by name, so two encodings of the same network
   (e.g. with different options) must not share variable names. *)
let encoding_counter = ref 0

let rec build_general (net : A.network) (opts : Options.t) ~igp_only ~suffix ~dst_const
    ~shared_failed : t =
  incr encoding_counter;
  let suffix = Printf.sprintf "%s#%d" suffix !encoding_counter in
  let feats = Features.scan net ~slice:opts.Options.slice_unused in
  let pkt = Packet.create opts ~suffix in
  let t =
    {
      net;
      opts;
      feats;
      pkt;
      suffix;
      igp_only;
      asserts = [];
      scope = None;
      dev_enc = Hashtbl.create 64;
      cf = Hashtbl.create 256;
      df = Hashtbl.create 256;
      failed_tbl = (match shared_failed with Some tbl -> tbl | None -> Hashtbl.create 64);
      ext_peers = Hashtbl.create 16;
      env_tbl = Hashtbl.create 16;
      import_ext_tbl = Hashtbl.create 16;
      import_int_tbl = Hashtbl.create 16;
      export_ext_tbl = Hashtbl.create 16;
      copies = Hashtbl.create 4;
      sym_classes = [];
      sym_rep = [];
    }
  in
  emit t (Packet.well_formed pkt);
  (match dst_const with Some ip -> emit t (Packet.dst_eq pkt ip) | None -> ());
  (* external peers table *)
  List.iter
    (fun (dev : A.device) ->
      let peers =
        List.filter_map
          (fun s ->
            match s.s_peer with
            | `External name -> Some (name, s.s_nbr.A.nbr_ip)
            | `Internal _ -> None)
          (bgp_sessions t dev)
      in
      Hashtbl.replace t.ext_peers dev.A.dev_name peers)
    net.A.net_devices;
  (* failure variables, allocated once by the outermost encoding *)
  (match (shared_failed, opts.Options.max_failures) with
   | None, Some k ->
     let vars = ref [] in
     let add_failure_var key =
       if not (Hashtbl.mem t.failed_tbl key) then begin
         let v = T.var (Printf.sprintf "failed.%s--%s" (fst key) (snd key)) Smt.Sort.Bool in
         Hashtbl.replace t.failed_tbl key v;
         vars := v :: !vars
       end
     in
     List.iter
       (fun (l : Net.Topology.link) ->
         add_failure_var (canonical l.Net.Topology.a.device l.Net.Topology.b.device))
       (Net.Topology.links net.A.net_topology);
     if not opts.Options.fail_internal_only then
       List.iter
         (fun (dev : A.device) ->
           List.iter
             (fun (peer, _) -> add_failure_var (canonical dev.A.dev_name peer))
             (external_peers t dev.A.dev_name))
         net.A.net_devices;
     if !vars <> [] then emit t (T.at_most k !vars)
   | (Some _ | None), _ -> ());
  (* iBGP copies (§4): one IGP-only encoding per distinct peering address *)
  if (not igp_only) && t.feats.Features.any_ibgp then
    List.iter
      (fun (dev : A.device) ->
        List.iter
          (fun s ->
            match s.s_peer with
            | `Internal (_, true) ->
              let key = Ipv4.to_string s.s_nbr.A.nbr_ip in
              if not (Hashtbl.mem t.copies key) then begin
                let copy =
                  build_general net
                    { opts with Options.max_failures = None }
                    ~igp_only:true ~suffix:(suffix ^ "~" ^ key)
                    ~dst_const:(Some s.s_nbr.A.nbr_ip) ~shared_failed:(Some t.failed_tbl)
                in
                let reach = reach_to_ip copy s.s_nbr.A.nbr_ip in
                t.asserts <- copy.asserts @ t.asserts;
                Hashtbl.replace t.copies key (copy, reach)
              end
            | `Internal (_, false) | `External _ -> ())
          (bgp_sessions t dev))
      net.A.net_devices;
  (* best records *)
  List.iter
    (fun (dev : A.device) ->
      let name field = Printf.sprintf "%s%s.%s" dev.A.dev_name suffix field in
      let enc =
        {
          dev;
          cand_bgp = [];
          cand_ospf = [];
          cand_direct = [];
          best_bgp =
            (if dev.A.dev_bgp <> None && not igp_only then
               Some (Sym_record.fresh_best opts t.feats ~name:(name "bestBGP"))
             else None);
          best_ospf =
            (if dev.A.dev_ospf <> None then
               Some (Sym_record.fresh_best opts t.feats ~name:(name "bestOSPF"))
             else None);
          best_overall = Sym_record.fresh_best opts t.feats ~name:(name "best");
        }
      in
      Hashtbl.replace t.dev_enc dev.A.dev_name enc)
    net.A.net_devices;
  List.iter
    (fun (dev : A.device) ->
      in_scope t dev.A.dev_name (fun () -> build_device_candidates t dev))
    net.A.net_devices;
  List.iter
    (fun (dev : A.device) -> in_scope t dev.A.dev_name (fun () -> constrain_device t dev))
    net.A.net_devices;
  List.iter
    (fun (dev : A.device) -> in_scope t dev.A.dev_name (fun () -> build_forwarding t dev))
    net.A.net_devices;
  t

(* Reachability toward a concrete address, used for iBGP session
   viability inside copies. *)
and reach_to_ip t ip =
  let tbl = Hashtbl.create 16 in
  let owner (dev : A.device) =
    List.exists
      (fun (i : A.interface) -> match i.A.if_ip with Some a -> Ipv4.equal a ip | None -> false)
      dev.A.dev_interfaces
  in
  let attached (dev : A.device) =
    List.exists (fun p -> Prefix.contains p ip) (A.connected_prefixes dev)
  in
  List.iter
    (fun (dev : A.device) ->
      let v =
        T.var
          (Printf.sprintf "canReach%s.%s.%s" t.suffix dev.A.dev_name (Ipv4.to_string ip))
          Smt.Sort.Bool
      in
      Hashtbl.replace tbl dev.A.dev_name v)
    t.net.A.net_devices;
  List.iter
    (fun (dev : A.device) ->
      let d = dev.A.dev_name in
      let v = Hashtbl.find tbl d in
      in_scope t d (fun () ->
          if owner dev then emit t (T.iff v T.tru)
          else begin
            let base = if attached dev then [ datafwd t d Nexthop.To_deliver ] else [] in
            let steps =
              List.map
                (fun n ->
                  match Hashtbl.find_opt tbl n with
                  | Some vn -> T.and_ [ datafwd t d (Nexthop.To_device n); vn ]
                  | None -> T.fls)
                (internal_neighbors t d)
            in
            emit t (T.iff v (T.or_ (base @ steps)))
          end))
    t.net.A.net_devices;
  tbl

(* ---------------- candidates ---------------- *)

and build_device_candidates t (dev : A.device) =
  let enc = Hashtbl.find t.dev_enc dev.A.dev_name in
  let d = dev.A.dev_name in
  let nm fmt = Printf.ksprintf (fun s -> Printf.sprintf "%s%s.%s" d t.suffix s) fmt in
  let connected =
    List.filter_map
      (fun (i : A.interface) ->
        match i.A.if_prefix with
        | Some p ->
          Some
            {
              rec_ =
                origin_record t ~name:(nm "conn.%s" i.A.if_name) ~p
                  ~ad:(A.default_ad A.Pconnected) ~metric:0;
              hop = Fixed Nexthop.To_deliver;
              proto = A.Pconnected;
            }
        | None -> None)
      dev.A.dev_interfaces
  in
  let static =
    List.mapi
      (fun idx (s : A.static_route) ->
        let hop =
          match (s.A.st_next_hop, s.A.st_interface) with
          | None, (Some _ | None) -> Nexthop.To_drop
          | Some hopip, _ ->
            (match A.device_of_ip t.net hopip with
             | Some d2 when d2.A.dev_name <> d -> Nexthop.To_device d2.A.dev_name
             | Some _ -> Nexthop.To_deliver
             | None ->
               if List.exists (fun p -> Prefix.contains p hopip) (A.connected_prefixes dev) then
                 Nexthop.To_external ("peer:" ^ Ipv4.to_string hopip)
               else Nexthop.To_drop)
        in
        let base =
          origin_record t ~name:(nm "static.%d" idx) ~p:s.A.st_prefix
            ~ad:(A.default_ad A.Pstatic) ~metric:0
        in
        let valid =
          match hop with
          | Nexthop.To_device n -> T.and_ [ base.Sym_record.valid; T.not_ (failed t d n) ]
          | Nexthop.To_external p -> T.and_ [ base.Sym_record.valid; T.not_ (failed t d p) ]
          | Nexthop.To_deliver | Nexthop.To_drop -> base.Sym_record.valid
        in
        { rec_ = { base with Sym_record.valid }; hop = Fixed hop; proto = A.Pstatic })
      dev.A.dev_statics
  in
  enc.cand_direct <- connected @ static;
  (match dev.A.dev_ospf with
   | None -> ()
   | Some ocfg ->
     let own =
       List.filter_map
         (fun (i : A.interface) ->
           match i.A.if_prefix with
           | Some p ->
             Some
               {
                 rec_ =
                   origin_record t ~name:(nm "ospf.net.%s" i.A.if_name) ~p
                     ~ad:(A.default_ad A.Pospf) ~metric:0;
                 hop = Fixed Nexthop.To_deliver;
                 proto = A.Pospf;
               }
           | None -> None)
         (A.ospf_interfaces dev)
     in
     let imports =
       List.filter_map
         (fun (local_if, peer_name, peer_if) ->
           match A.find_device t.net peer_name with
           | None -> None
           | Some peer ->
             let local_ok =
               List.exists (fun (i : A.interface) -> i.A.if_name = local_if) (A.ospf_interfaces dev)
             in
             let peer_ok =
               List.exists (fun (i : A.interface) -> i.A.if_name = peer_if) (A.ospf_interfaces peer)
             in
             if not (local_ok && peer_ok) then None
             else begin
               match Hashtbl.find_opt t.dev_enc peer_name with
               | None -> None
               | Some peer_enc ->
                 (match peer_enc.best_ospf with
                  | None -> None
                  | Some peer_best ->
                    let cost =
                      match A.find_interface dev local_if with Some i -> i.A.if_cost | None -> 1
                    in
                    let r =
                      derived
                        ~name:(nm "ospf.in.%s" peer_name)
                        ~valid:
                          (T.and_ [ peer_best.Sym_record.valid; T.not_ (failed t d peer_name) ])
                        ~plen:peer_best.Sym_record.plen ~prefix:peer_best.Sym_record.prefix
                        ~ad:(T.int_const (A.default_ad A.Pospf))
                        ~lp:(T.int_const Sym_record.default_lp)
                        ~metric:(T.add peer_best.Sym_record.metric (T.int_const cost))
                        ~med:(T.int_const 0) ~bgp_internal:T.fls
                        ~comms:(all_false_comms t.feats)
                    in
                    Some { rec_ = r; hop = Fixed (Nexthop.To_device peer_name); proto = A.Pospf })
             end)
         (Net.Topology.neighbors t.net.A.net_topology d)
     in
     let redists =
       List.filter_map
         (fun (rd : A.redistribute) ->
           if rd.A.rd_from = A.Pbgp && t.igp_only then None
           else redistributed_candidates t enc ~into:A.Pospf rd)
         ocfg.A.ospf_redistribute
       |> List.concat
     in
     enc.cand_ospf <- own @ imports @ redists);
  if not t.igp_only then begin
    match dev.A.dev_bgp with
    | None -> ()
    | Some bgp ->
      let originated =
        List.filter_map
          (fun p ->
            let backed =
              List.exists (fun cp -> Prefix.equal cp p) (A.connected_prefixes dev)
              || List.exists
                   (fun (s : A.static_route) -> Prefix.equal s.A.st_prefix p)
                   dev.A.dev_statics
            in
            if not backed then None
            else
              Some
                {
                  rec_ =
                    origin_record t
                      ~name:(nm "bgp.net.%s" (Prefix.to_string p))
                      ~p ~ad:(A.default_ad A.Pbgp) ~metric:0;
                  hop = Fixed Nexthop.To_deliver;
                  proto = A.Pbgp;
                })
          bgp.A.bgp_networks
      in
      let redists =
        List.filter_map (fun rd -> redistributed_candidates t enc ~into:A.Pbgp rd)
          bgp.A.bgp_redistribute
        |> List.concat
      in
      let session_cands =
        List.filter_map (fun s -> bgp_session_candidate t s) (bgp_sessions t dev)
      in
      enc.cand_bgp <- originated @ redists @ session_cands
  end

(* Redistribution from [rd.rd_from] into protocol [into].  The source is
   the source protocol's best record (OSPF/BGP) or, for connected and
   static, each direct candidate individually. *)
and redistributed_candidates t enc ~into (rd : A.redistribute) =
  let d = enc.dev.A.dev_name in
  let target_ad = A.default_ad into in
  let mk ~name ~(src : Sym_record.t) =
    match into with
    | A.Pospf ->
      derived ~name ~valid:src.Sym_record.valid ~plen:src.Sym_record.plen
        ~prefix:src.Sym_record.prefix ~ad:(T.int_const target_ad)
        ~lp:(T.int_const Sym_record.default_lp)
        ~metric:(T.int_const (Option.value rd.A.rd_metric ~default:20))
        ~med:(T.int_const 0) ~bgp_internal:T.fls ~comms:(all_false_comms t.feats)
    | A.Pbgp ->
      derived ~name ~valid:src.Sym_record.valid ~plen:src.Sym_record.plen
        ~prefix:src.Sym_record.prefix ~ad:(T.int_const target_ad)
        ~lp:(T.int_const Sym_record.default_lp) ~metric:(T.int_const 0)
        ~med:(T.int_const (Option.value rd.A.rd_metric ~default:0))
        ~bgp_internal:T.fls ~comms:(all_false_comms t.feats)
    | A.Pconnected | A.Pstatic -> invalid_arg "redistribution target must be OSPF or BGP"
  in
  let into_str = A.protocol_to_string into in
  match rd.A.rd_from with
  | A.Pconnected | A.Pstatic ->
    Some
      (List.filter_map
         (fun c ->
           if c.proto = rd.A.rd_from then
             Some
               {
                 rec_ =
                   mk
                     ~name:
                       (Printf.sprintf "%s%s.%s.redist.%s" d t.suffix into_str
                          c.rec_.Sym_record.name)
                     ~src:c.rec_;
                 hop = c.hop;
                 proto = into;
               }
           else None)
         enc.cand_direct)
  | A.Pospf ->
    (match enc.best_ospf with
     | None -> None
     | Some src ->
       Some
         [
           {
             rec_ = mk ~name:(Printf.sprintf "%s%s.%s.redist.ospf" d t.suffix into_str) ~src;
             hop = Inherit A.Pospf;
             proto = into;
           };
         ])
  | A.Pbgp ->
    (match enc.best_bgp with
     | None -> None
     | Some src ->
       Some
         [
           {
             rec_ = mk ~name:(Printf.sprintf "%s%s.%s.redist.bgp" d t.suffix into_str) ~src;
             hop = Inherit A.Pbgp;
             proto = into;
           };
         ])

and bgp_session_candidate t s =
  let dev = s.s_dev in
  let d = dev.A.dev_name in
  let nm fmt = Printf.ksprintf (fun x -> Printf.sprintf "%s%s.%s" d t.suffix x) fmt in
  match s.s_peer with
  | `External peer ->
    let env =
      Sym_record.fresh t.opts t.feats
        ~name:(Printf.sprintf "env%s.%s.%s" t.suffix d peer)
        ~ad:(A.default_ad A.Pbgp) ~rid:0 ~bgp_internal:false
    in
    emit t (Sym_record.well_formed t.pkt env);
    emit t
      (T.implies env.Sym_record.valid
         (T.and_
            [
              T.geq env.Sym_record.metric (T.int_const 0);
              T.leq env.Sym_record.metric (T.int_const 254);
              T.geq env.Sym_record.med (T.int_const 0);
              T.leq env.Sym_record.med (T.int_const 65535);
              T.eq env.Sym_record.lp (T.int_const Sym_record.default_lp);
            ]));
    Hashtbl.replace t.env_tbl (d, peer) env;
    let pre =
      {
        env with
        Sym_record.name = nm "bgp.pre.%s" peer;
        metric = T.add env.Sym_record.metric (T.int_const 1);
        valid = T.and_ [ env.Sym_record.valid; T.not_ (failed t d peer) ];
      }
    in
    let imported =
      apply_import t dev ~rm:s.s_nbr.A.nbr_rm_in ~src:pre ~name:(nm "bgp.in.%s" peer)
        ~ad:(A.default_ad A.Pbgp) ~bgp_internal:false
    in
    Hashtbl.replace t.import_ext_tbl (d, peer) imported;
    Some { rec_ = imported; hop = Fixed (Nexthop.To_external peer); proto = A.Pbgp }
  | `Internal (peer_name, is_ibgp) ->
    (match (A.find_device t.net peer_name, Hashtbl.find_opt t.dev_enc peer_name) with
     | Some peer_dev, Some peer_enc ->
       (match peer_enc.best_bgp with
        | None -> None
        | Some peer_best ->
          let exported =
            build_bgp_export t ~sender:peer_dev ~best:peer_best
              ~out_map:(out_map_toward t peer_dev d) ~is_ibgp
              ~name:(Printf.sprintf "%s%s.bgp.out.%s" peer_name t.suffix d)
          in
          let link_ok =
            if is_ibgp then begin
              match Hashtbl.find_opt t.copies (Ipv4.to_string s.s_nbr.A.nbr_ip) with
              | Some (_, reach) ->
                (match Hashtbl.find_opt reach d with Some v -> v | None -> T.tru)
              | None -> T.tru
            end
            else T.not_ (failed t d peer_name)
          in
          let pre =
            {
              exported with
              Sym_record.name = nm "bgp.pre.%s" peer_name;
              valid = T.and_ [ exported.Sym_record.valid; link_ok ];
            }
          in
          let imported =
            apply_import t dev ~rm:s.s_nbr.A.nbr_rm_in ~src:pre
              ~name:(nm "bgp.in.%s" peer_name)
              ~ad:(if is_ibgp then A.ibgp_ad else A.default_ad A.Pbgp)
              ~bgp_internal:is_ibgp
          in
          Hashtbl.replace t.import_int_tbl (d, peer_name) imported;
          let hop =
            if is_ibgp then Via_copy (Ipv4.to_string s.s_nbr.A.nbr_ip)
            else Fixed (Nexthop.To_device peer_name)
          in
          Some { rec_ = imported; hop; proto = A.Pbgp })
     | (Some _ | None), _ -> None)

(* Import policy: a derived copy when there is no map (merge_filters),
   a fresh record plus route-map constraints otherwise. *)
and apply_import t (dev : A.device) ~rm ~(src : Sym_record.t) ~name ~ad ~bgp_internal =
  match rm with
  | None when t.opts.Options.merge_filters ->
    {
      src with
      Sym_record.name;
      ad = T.int_const ad;
      bgp_internal = T.bool_const bgp_internal;
    }
  | _ ->
    let dst = Sym_record.fresh t.opts t.feats ~name ~ad ~rid:0 ~bgp_internal in
    emit t (Sym_record.well_formed t.pkt dst);
    let rm_ast = Option.bind rm (A.find_route_map dev) in
    List.iter (emit t) (Filter.route_map_constraints dev t.pkt ~rm:rm_ast ~pass:T.tru ~src ~dst);
    dst

(* Export from a BGP process toward a peer: iBGP re-export rules, metric
   increment and attribute resets for eBGP, aggregation length rewrite,
   and the neighbor's out-map. *)
and build_bgp_export t ~(sender : A.device) ~(best : Sym_record.t) ~out_map ~is_ibgp ~name =
  let bgp = Option.get sender.A.dev_bgp in
  let sender_is_rr =
    List.exists (fun (n : A.bgp_neighbor) -> n.A.nbr_rr_client) bgp.A.bgp_neighbors
  in
  let allow =
    if is_ibgp then
      if sender_is_rr then T.tru else T.not_ best.Sym_record.bgp_internal
    else T.leq (T.add best.Sym_record.metric (T.int_const 1)) (T.int_const 255)
  in
  let pass = T.and_ [ best.Sym_record.valid; allow ] in
  (* §4 aggregation: a route covered by an announced aggregate leaves
     with the (shorter) aggregate length. *)
  let plen_term =
    match bgp.A.bgp_aggregates with
    | [] -> best.Sym_record.plen
    | aggs ->
      let v = T.var (name ^ ".plen") Smt.Sort.Int in
      let conds =
        List.map
          (fun (agg, _summary) ->
            ( agg,
              T.and_
                [
                  Packet.dst_in_prefix t.pkt agg;
                  T.gt best.Sym_record.plen (T.int_const (Prefix.length agg));
                ] ))
          aggs
      in
      let rec chain prior = function
        | [] ->
          [ T.implies (T.and_ (List.map T.not_ prior)) (T.eq v best.Sym_record.plen) ]
        | (agg, c) :: rest ->
          T.implies
            (T.and_ (c :: List.map T.not_ prior))
            (T.eq v (T.int_const (Prefix.length agg)))
          :: chain (c :: prior) rest
      in
      List.iter (emit t) (chain [] conds);
      v
  in
  let pre =
    if is_ibgp then
      { best with Sym_record.name = name ^ ".pre"; valid = pass; plen = plen_term; bgp_internal = T.tru }
    else
      {
        best with
        Sym_record.name = name ^ ".pre";
        valid = pass;
        plen = plen_term;
        metric = T.add best.Sym_record.metric (T.int_const 1);
        lp = T.int_const Sym_record.default_lp;
        med = T.int_const 0;
        bgp_internal = T.fls;
      }
  in
  match out_map with
  | None when t.opts.Options.merge_filters -> pre
  | _ ->
    let dst =
      Sym_record.fresh t.opts t.feats ~name ~ad:(A.default_ad A.Pbgp) ~rid:0
        ~bgp_internal:is_ibgp
    in
    emit t (Sym_record.well_formed t.pkt dst);
    let rm_ast = Option.bind out_map (A.find_route_map sender) in
    List.iter (emit t)
      (Filter.route_map_constraints sender t.pkt ~rm:rm_ast ~pass:T.tru ~src:pre ~dst);
    dst

(* ---------------- selection ---------------- *)

and constrain_device t (dev : A.device) =
  let enc = Hashtbl.find t.dev_enc dev.A.dev_name in
  let multipath = match dev.A.dev_bgp with Some b -> b.A.bgp_multipath | None -> true in
  (match enc.best_bgp with
   | Some best ->
     emit t (Sym_record.well_formed t.pkt best);
     List.iter (emit t)
       (Selection.constrain_best
          ~geq:(Selection.bgp_geq ~multipath)
          ~best
          ~candidates:(List.map (fun c -> c.rec_) enc.cand_bgp))
   | None -> ());
  (match enc.best_ospf with
   | Some best ->
     emit t (Sym_record.well_formed t.pkt best);
     List.iter (emit t)
       (Selection.constrain_best ~geq:Selection.igp_geq ~best
          ~candidates:(List.map (fun c -> c.rec_) enc.cand_ospf))
   | None -> ());
  let overall_cands =
    (match enc.best_bgp with Some b -> [ b ] | None -> [])
    @ (match enc.best_ospf with Some b -> [ b ] | None -> [])
    @ List.map (fun c -> c.rec_) enc.cand_direct
  in
  emit t (Sym_record.well_formed t.pkt enc.best_overall);
  List.iter (emit t)
    (Selection.constrain_best ~geq:Selection.overall_geq ~best:enc.best_overall
       ~candidates:overall_cands);
  (* exports to external peers, for leak/equivalence properties *)
  if not t.igp_only then begin
    match enc.best_bgp with
    | Some best ->
      List.iter
        (fun s ->
          match s.s_peer with
          | `External peer ->
            let exported =
              build_bgp_export t ~sender:dev ~best ~out_map:s.s_nbr.A.nbr_rm_out
                ~is_ibgp:false
                ~name:(Printf.sprintf "%s%s.bgp.out.%s" dev.A.dev_name t.suffix peer)
            in
            Hashtbl.replace t.export_ext_tbl (dev.A.dev_name, peer) exported
          | `Internal _ -> ())
        (bgp_sessions t dev)
    | None -> ()
  end

(* ---------------- forwarding ---------------- *)

(* Would the source protocol (at this device) forward to hop [h]?  Used
   for redistributed routes; only direct (non-redistributed) candidates
   of the source protocol are considered. *)
and inherit_base enc src_proto h =
  match src_proto with
  | A.Pconnected | A.Pstatic ->
    T.or_
      (List.filter_map
         (fun c ->
           match c.hop with
           | Fixed hh when c.proto = src_proto && Nexthop.equal hh h ->
             Some c.rec_.Sym_record.valid
           | Fixed _ | Inherit _ | Via_copy _ -> None)
         enc.cand_direct)
  | A.Pospf ->
    (match enc.best_ospf with
     | None -> T.fls
     | Some best ->
       T.or_
         (List.filter_map
            (fun c ->
              match c.hop with
              | Fixed hh when Nexthop.equal hh h ->
                Some (T.and_ [ c.rec_.Sym_record.valid; Sym_record.equal_fields best c.rec_ ])
              | Fixed _ | Inherit _ | Via_copy _ -> None)
            enc.cand_ospf))
  | A.Pbgp ->
    (match enc.best_bgp with
     | None -> T.fls
     | Some best ->
       T.or_
         (List.filter_map
            (fun c ->
              match c.hop with
              | Fixed hh when Nexthop.equal hh h ->
                Some (T.and_ [ c.rec_.Sym_record.valid; Sym_record.equal_fields best c.rec_ ])
              | Fixed _ | Inherit _ | Via_copy _ -> None)
            enc.cand_bgp))

and fwd_within t enc (best : Sym_record.t) cands h =
  let d = enc.dev.A.dev_name in
  let parts =
    List.filter_map
      (fun c ->
        match c.hop with
        | Fixed hh when Nexthop.equal hh h ->
          Some (T.and_ [ c.rec_.Sym_record.valid; Sym_record.equal_fields best c.rec_ ])
        | Fixed _ -> None
        | Inherit src_proto ->
          let base = inherit_base enc src_proto h in
          if T.equal base T.fls then None
          else
            Some
              (T.and_ [ c.rec_.Sym_record.valid; Sym_record.equal_fields best c.rec_; base ])
        | Via_copy key ->
          (match Hashtbl.find_opt t.copies key with
           | Some (copy, _) ->
             (* The copy resolves forwarding toward the iBGP peer's
                address.  "Deliver" in the copy means the peering subnet
                is directly attached - in the real network that is a hop
                to the peer device itself. *)
             let owner =
               Option.map
                 (fun (dev : A.device) -> dev.A.dev_name)
                 (A.device_of_ip t.net (Ipv4.of_string key))
             in
             let base =
               match h with
               | Nexthop.To_deliver -> T.fls
               | Nexthop.To_device n when owner = Some n ->
                 T.or_ [ controlfwd copy d h; controlfwd copy d Nexthop.To_deliver ]
               | Nexthop.To_device _ | Nexthop.To_external _ | Nexthop.To_drop ->
                 controlfwd copy d h
             in
             if T.equal base T.fls then None
             else
               Some
                 (T.and_ [ c.rec_.Sym_record.valid; Sym_record.equal_fields best c.rec_; base ])
           | None -> None))
      cands
  in
  T.or_ parts

and build_forwarding t (dev : A.device) =
  let enc = Hashtbl.find t.dev_enc dev.A.dev_name in
  let d = dev.A.dev_name in
  List.iter
    (fun h ->
      let direct =
        List.filter_map
          (fun c ->
            match c.hop with
            | Fixed hh when Nexthop.equal hh h ->
              Some
                (T.and_
                   [ c.rec_.Sym_record.valid; Sym_record.equal_fields enc.best_overall c.rec_ ])
            | Fixed _ | Inherit _ | Via_copy _ -> None)
          enc.cand_direct
      in
      let proto_part best cands =
        match best with
        | None -> []
        | Some (b : Sym_record.t) ->
          let within = fwd_within t enc b cands h in
          if T.equal within T.fls then []
          else
            [
              T.and_
                [
                  b.Sym_record.valid;
                  Sym_record.equal_fields enc.best_overall b;
                  within;
                ];
            ]
      in
      let cf_term =
        T.or_ (direct @ proto_part enc.best_bgp enc.cand_bgp @ proto_part enc.best_ospf enc.cand_ospf)
      in
      let cf_var =
        T.var (Printf.sprintf "controlfwd%s.%s.%s" t.suffix d (Nexthop.to_string h)) Smt.Sort.Bool
      in
      emit t (T.iff cf_var cf_term);
      Hashtbl.replace t.cf (d, h) cf_var;
      (* data plane: conjoin ACLs *)
      let acl =
        match h with
        | Nexthop.To_device n ->
          let ifaces =
            List.find_map
              (fun (local_if, peer, peer_if) -> if peer = n then Some (local_if, peer_if) else None)
              (Net.Topology.neighbors t.net.A.net_topology d)
          in
          (match ifaces with
           | None -> T.tru
           | Some (out_if, in_if) ->
             Filter.link_acl_permits t.pkt ~dev ~out_iface:(Some out_if)
               ~peer:(A.find_device t.net n) ~in_iface:(Some in_if))
        | Nexthop.To_external peer ->
          (* out-ACL on the interface facing the peer *)
          let peer_ip =
            List.find_map
              (fun (name, ip) -> if name = peer then Some ip else None)
              (external_peers t d)
          in
          let out_if =
            match peer_ip with
            | None -> None
            | Some ip ->
              List.find_map
                (fun (i : A.interface) ->
                  match i.A.if_prefix with
                  | Some p when Prefix.contains p ip -> Some i.A.if_name
                  | Some _ | None -> None)
                dev.A.dev_interfaces
          in
          Filter.link_acl_permits t.pkt ~dev ~out_iface:out_if ~peer:None ~in_iface:None
        | Nexthop.To_deliver ->
          (* out-ACLs on the delivering (host-facing) interfaces *)
          T.and_
            (List.filter_map
               (fun (i : A.interface) ->
                 match (i.A.if_prefix, Option.bind i.A.if_acl_out (A.find_acl dev)) with
                 | Some p, Some acl ->
                   Some
                     (T.implies (Packet.dst_in_prefix t.pkt p) (Filter.acl_permits t.pkt acl))
                 | (Some _ | None), _ -> None)
               dev.A.dev_interfaces)
        | Nexthop.To_drop -> T.tru
      in
      let df_term = T.and_ [ cf_var; acl ] in
      let df =
        if t.opts.Options.merge_dataplane then df_term
        else begin
          let v =
            T.var (Printf.sprintf "datafwd%s.%s.%s" t.suffix d (Nexthop.to_string h)) Smt.Sort.Bool
          in
          emit t (T.iff v df_term);
          v
        end
      in
      Hashtbl.replace t.df (d, h) df)
    (hops t d)

let sym_classes t = t.sym_classes
let representative t d = match List.assoc_opt d t.sym_rep with Some r -> r | None -> d

let project_devices t ds =
  let present = devices t in
  List.sort_uniq compare
    (List.filter (fun d -> List.mem d present) (List.map (representative t) ds))

let build ?(suffix = "") ?(pins = []) net opts =
  if opts.Options.preflight_lint then Analysis.Lint.preflight net;
  let net = if opts.Options.lint_slice then Analysis.Slice.network net else net in
  (* Symmetry quotient: substitute the reduced network when the
     analysis finds interchangeable devices.  Disabled under
     [max_failures]: one representative link stands for a whole class
     of concrete links, so "at most k failures" would not mean the
     same thing in the quotient. *)
  let net, classes, rep =
    if opts.Options.symmetry && opts.Options.max_failures = None then
      match Analysis.Symmetry.reduce ~pins net with
      | Some r ->
        (r.Analysis.Symmetry.red_network, r.Analysis.Symmetry.red_classes,
         r.Analysis.Symmetry.red_rep)
      | None -> (net, [], [])
    else (net, [], [])
  in
  let t = build_general net opts ~igp_only:false ~suffix ~dst_const:None ~shared_failed:None in
  t.sym_classes <- classes;
  t.sym_rep <- rep;
  t

let stats t =
  let n = List.length t.asserts in
  let size = List.fold_left (fun acc (_, a) -> acc + T.size a) 0 t.asserts in
  (n, size)
