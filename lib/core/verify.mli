(** Top-level verification: the {!Query}/{!Report} API.

    Every verification path — one-shot {!run_query}, incremental
    {!Session}s, the process-pool engine, portfolio racing, the serve
    daemon — answers labelled {!Query.t}s with uniform {!Report.t}s.
    A query asserts the network semantics, the property's
    instrumentation and assumptions, and the negation of its goal.
    UNSAT ⇒ the property is [Verified] in every stable state, for every
    packet and environment; SAT ⇒ [Violated] with a decoded
    counterexample. *)

type outcome = Holds | Violation of Counterexample.t
(** The bare two-valued answer, kept as the vocabulary of
    counterexample plumbing and differential tests; {!Report.to_outcome}
    extracts it from a report. *)

(** A labelled property query: the unit of work of every verification
    path (sequential sessions, the process-pool engine, portfolio
    racing, the serve daemon).  The property is a thunk over the
    encoding so the same query can be replayed against per-worker
    sessions. *)
module Query : sig
  type t = {
    label : string;
    timeout : float option;  (** wall-clock budget, seconds, for this query alone *)
    prop : Encode.t -> Property.t;
  }

  val v : ?timeout:float -> string -> (Encode.t -> Property.t) -> t

  val of_property : ?timeout:float -> string -> Property.t -> t
  (** Wrap an already-built property (ignores the encoding argument). *)

  val with_default_timeout : float option -> t -> t
  (** Fill in [timeout] when the query has none. *)
end

(** The uniform answer to a {!Query}: one verdict, its wall time, the
    solver work it cost, and which worker produced it. *)
module Report : sig
  type verdict =
    | Verified  (** the property holds in every stable state *)
    | Violated of Counterexample.t
    | Timeout  (** the query's wall-clock budget expired *)
    | Error of string  (** the worker crashed or the query raised *)

  (** Independent evidence for a verdict, produced when the encoding
      was built with [Options.certify].  [Checked_unsat_proof]: the
      solver's DRAT-style trace was replayed through the standalone
      {!Proof.Checker} (theory lemmas re-justified by fresh Idl/Simplex
      runs) and derives the refutation; the fields count the trace
      steps, the propagation-checked derived clauses and the
      re-justified theory lemmas.  [Checked_model]: the satisfying
      assignment was re-evaluated over the original asserted terms and
      the decoded counterexample was replayed through the concrete
      routing simulator.  Certificates are plain data and survive
      marshalling across the {!Engine} worker boundary. *)
  type certificate =
    | Uncertified
    | Checked_unsat_proof of { trace_steps : int; clauses : int; lemmas : int }
    | Checked_model
    | Certification_failed of string

  (** Which path of the fault-invariance workload produced the verdict:
      [Graph] the {!Faults} min-cut fast path over the simulator's
      converged routes, [Smt] the full two-copy encoding, [Fallback]
      the SMT encoding reached after the graph path declined to
      decide.  Absent on queries outside the fault workload. *)
  type meth = Graph | Smt | Fallback

  type t = {
    label : string;
    verdict : verdict;
    certificate : certificate;
    wall_ms : float;
    stats : Smt.Solver.stats;
        (** per-query solver work: absolute for a fresh solver, a delta
            over the enclosing session otherwise *)
    worker : int;  (** 0 when answered in-process; pool workers count from 1 *)
    strategy : string option;  (** winning variant, in portfolio mode *)
    support : string list option;
        (** [Verified] verdicts from a support-tracking session: the
            devices whose assumption guards appear in the final-conflict
            core.  The refutation used only their configuration slices
            (plus shared structure), so the verdict survives any config
            edit disjoint from this set — the serve daemon's delta
            re-verification replays on exactly this. *)
    replayed : bool;
        (** the verdict was replayed from a cache (core-disjoint delta
            re-verification), not produced by a solver run *)
    method_ : meth option;
        (** which fault-workload path answered ([method] is an OCaml
            keyword; the JSON key is ["method"]) *)
  }

  val schema_version : int
  (** The version stamped as ["schema"] on every JSON surface of the
      repo: {!to_json}, the [BENCH_*.json] writers, and the serve
      protocol.  Currently [2]. *)

  val verdict_name : verdict -> string
  (** ["verified" | "violated" | "timeout" | "error"]. *)

  val certificate_name : certificate -> string
  (** ["uncertified" | "checked_unsat_proof" | "checked_model" |
      "certification_failed"]. *)

  val method_name : meth -> string
  (** ["graph" | "smt" | "fallback"]. *)

  val of_outcome : outcome -> verdict

  val to_outcome : t -> outcome
  (** @raise Invalid_argument on [Timeout] and [Error] verdicts. *)

  val empty_stats : Smt.Solver.stats

  val decisions_per_conflict : Smt.Solver.stats -> float
  (** Decisions per conflict ([0.] when no conflicts): how much of the
      search was blind walking over don't-care variables versus
      conflict-driven progress.  Lower is tighter. *)

  val to_json : t -> string
  (** One JSON object — the single renderer behind the CLI's
      [--format json], the bench harness and the serve protocol. *)

  val list_to_json : t list -> string

  val exit_code : t list -> int
  (** Uniform process exit code for a report suite: [0] every query
      holds, [1] any violation, [3] any timeout/worker error, [4] any
      certification failure ([2] is reserved for usage and parse
      errors).  Violations dominate timeouts; certification failures
      dominate everything. *)

  val json_escape : string -> string
end

val run_query : Encode.t -> Query.t -> Report.t
(** Answer one query on a fresh single-shot solver (honouring the
    query's timeout). *)

(** Incremental verification sessions: one network encoding answering
    many property queries on a single incremental solver.

    The network semantics [N] is asserted once at session creation.
    Each query's instrumentation, assumptions and negated goal are then
    guarded behind a fresh activation literal ([act => constraint]) and
    checked under the assumption [act]; the next query permanently
    retires the previous activation literal with a unit clause.  The
    SAT core keeps its clause database, learnt clauses, variable
    activities and saved phases across queries, and the CNF cache
    deduplicates terms shared between queries — so a suite of
    properties is markedly cheaper than one fresh solver per query
    (learnt-clause reuse is sound because learnt clauses are derived
    from asserted clauses only, never from the retractable
    assumptions). *)
module Session : sig
  type t

  val create : ?support:bool -> Config.Ast.network -> Options.t -> t
  (** Build the encoding and assert the network semantics once. *)

  val of_encoding :
    ?strategy:Smt.Solver.strategy ->
    ?features:Smt.Solver.features ->
    ?support:bool ->
    Encode.t ->
    t
  (** Start a session over an already-built encoding.  [strategy]
      overrides the encoding options' search strategy — the portfolio
      engine uses this to race variants over one shared encoding.
      [features] overrides the encoding options' solver optimizations
      (the solver bench uses this for its ablation grid).

      [support] (default [false]) turns on verdict-support tracking:
      each device's slice of the network assertions (see
      {!Encode.tagged_assertions}) is guarded behind a per-device
      assumption literal passed to every check, and a [Verified]
      report's [support] field names the devices whose guards appear in
      the solver's final-conflict core.  Verdicts are unchanged — the
      guards are always all assumed true — but root-level simplification
      of the network clauses is inhibited, so support tracking costs
      some solve time; the serve daemon pays it to earn core-disjoint
      delta re-verification. *)

  val encoding : t -> Encode.t

  val run_one : t -> Query.t -> Report.t
  (** Answer one query on the session's incremental solver.  A timeout
      cancels only this query (verdict [Timeout]); the session remains
      usable and later queries are unaffected.  [stats] in the report
      is the delta over this query alone. *)

  val run : t -> Query.t list -> Report.t list
  (** Answer a suite in order; the sequential baseline every parallel
      mode is measured against. *)

  val queries : t -> int
  (** Number of queries checked so far. *)

  val stats : t -> Smt.Solver.stats
  (** Solver statistics accumulated over all queries of the session. *)

  val solver : t -> Smt.Solver.t
  (** The session's underlying incremental solver, for clause-sharing
      hooks ({!Smt.Solver.set_on_restart}, {!Smt.Solver.enable_sharing});
      portfolio workers wire their exchange through it.  Asserting
      through it directly would corrupt the session's bookkeeping. *)

  val last_support : t -> string list option
  (** Support of the most recent [Verified] check of a
      support-tracking session; [None] otherwise. *)
end

val equivalent : ?timeout:float -> Config.Ast.network -> Config.Ast.network -> Options.t -> Report.t
(** Full equivalence (§5): under pointwise-equal environments and the
    same packet, both networks make identical forwarding decisions and
    external exports.  Devices and peerings are matched by name. *)

val fault_invariant :
  ?timeout:float ->
  ?label:string ->
  Config.Ast.network ->
  Options.t ->
  k:int ->
  sources:string list ->
  Property.destination ->
  Report.t
(** Fault-invariance testing (§5): reachability of the destination from
    each source is identical between a failure-free copy and a copy
    with up to [k] failures of internal links (cardinality-bounded
    per-link failure variables; a [Violated] counterexample's
    [failures] field names the failed-link set).  [label] defaults to
    ["fault-invariant k=<k>"]; the report is stamped [method_ = Smt]. *)

val fault_invariant_query :
  ?timeout:float ->
  ?label:string ->
  Config.Ast.network ->
  Options.t ->
  k:int ->
  sources:string list ->
  Property.destination ->
  Encode.t * Query.t
(** The two-copy encoding and query behind {!fault_invariant}, exposed
    so other paths (the {!Engine} portfolio, the {!Faults} hybrid) can
    answer the same property on their own solvers: run the query
    against the returned healthy-copy encoding. *)

(** The versioned line-JSON protocol of the serve daemon
    ([minesweeper_cli serve], the {!Serve} library).

    Requests are one JSON object per line; every request and response
    carries a top-level ["schema"] field (see {!Report.schema_version}).
    Ops: [load] (full configuration text), [diff] (full replacement
    text; the daemon computes the changed-device delta), [query] (a
    list of property specs answered from the verdict cache, by delta
    replay, or by solving), [stats], [shutdown]. *)
module Protocol : sig
  val schema : int
  (** = {!Report.schema_version}. *)

  type query_spec = {
    property : string;  (** same vocabulary as the CLI's [--property] / [--batch] *)
    label : string option;
    sources : string list;
    dst_device : string option;
    dst_prefix : string option;
    bound : int;
    devices : string list;  (** equivalence pair *)
    allowed : string list;
    max_len : int;
    timeout : float option;
  }

  val default_spec : query_spec
  (** [reachability] with every default filled in — build specs with
      [{ default_spec with ... }]. *)

  type request =
    | Load of string
    | Diff of string
    | Query of { specs : query_spec list; jobs : int }
    | Stats
    | Shutdown

  val request_of_json : Msutil.Json.value -> (request, string) result

  val parse_request : string -> (request, string) result
  (** Parse one request line.  The error string is safe to echo back to
      the client. *)

  val spec_key : query_spec -> string
  (** The verdict-cache key: every field that can change the verdict,
      none that cannot (label, timeout). *)

  val queries_of_spec : Encode.t -> query_spec -> (Query.t list, string) result
  (** Expand a spec into labelled queries over the encoding;
      [all-pairs] fans out per destination device. *)
end
