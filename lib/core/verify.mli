(** Top-level verification entry points.

    [check enc prop] asserts the network semantics, the property's
    instrumentation and assumptions, and the negation of its goal.
    UNSAT ⇒ the property [Holds] in every stable state, for every packet
    and environment; SAT ⇒ a [Violation] with a decoded counterexample. *)

type outcome = Holds | Violation of Counterexample.t

val check : Encode.t -> Property.t -> outcome

val check_with_stats : Encode.t -> Property.t -> outcome * Smt.Solver.stats

val verify : Config.Ast.network -> Options.t -> (Encode.t -> Property.t) -> outcome
(** Convenience: build the encoding and check one property. *)

(** Incremental verification sessions: one network encoding answering
    many property queries on a single incremental solver.

    The network semantics [N] is asserted once at session creation.
    Each query's instrumentation, assumptions and negated goal are then
    guarded behind a fresh activation literal ([act => constraint]) and
    checked under the assumption [act]; the next query permanently
    retires the previous activation literal with a unit clause.  The
    SAT core keeps its clause database, learnt clauses, variable
    activities and saved phases across queries, and the CNF cache
    deduplicates terms shared between queries — so a suite of
    properties is markedly cheaper than one fresh solver per query
    (learnt-clause reuse is sound because learnt clauses are derived
    from asserted clauses only, never from the retractable
    assumptions). *)
module Session : sig
  type t

  val create : Config.Ast.network -> Options.t -> t
  (** Build the encoding and assert the network semantics once. *)

  val of_encoding : Encode.t -> t
  (** Start a session over an already-built encoding. *)

  val encoding : t -> Encode.t

  val check : t -> Property.t -> outcome
  (** Check one property (built against {!encoding}).  Any number of
      calls is allowed; verdicts are identical to {!Verify.check} on a
      fresh solver. *)

  val check_all : t -> (Encode.t -> Property.t) list -> outcome list
  (** Run a suite of property queries in order against the session's
      encoding. *)

  val queries : t -> int
  (** Number of queries checked so far. *)

  val stats : t -> Smt.Solver.stats
  (** Solver statistics accumulated over all queries of the session. *)
end

val equivalent : Config.Ast.network -> Config.Ast.network -> Options.t -> outcome
(** Full equivalence (§5): under pointwise-equal environments and the
    same packet, both networks make identical forwarding decisions and
    external exports.  Devices and peerings are matched by name. *)

val fault_invariant :
  Config.Ast.network -> Options.t -> k:int -> sources:string list -> Property.destination -> outcome
(** Fault-invariance testing (§5): reachability of the destination from
    each source is identical between a failure-free copy and a copy
    with up to [k] failures. *)
