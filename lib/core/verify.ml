module T = Smt.Term
module Solver = Smt.Solver

type outcome = Holds | Violation of Counterexample.t

let solve_assertions enc (prop : Property.t) =
  let solver = Solver.create () in
  List.iter (Solver.assert_term solver) (Encode.assertions enc);
  List.iter (Solver.assert_term solver) prop.Property.instrumentation;
  List.iter (Solver.assert_term solver) prop.Property.assumptions;
  Solver.assert_term solver (T.not_ prop.Property.goal);
  solver

let check_with_stats enc prop =
  let solver = solve_assertions enc prop in
  let outcome =
    match Solver.check solver with
    | Solver.Unsat -> Holds
    | Solver.Sat model -> Violation (Counterexample.decode enc model)
  in
  (outcome, Solver.stats solver)

let check enc prop = fst (check_with_stats enc prop)

let verify net opts make_prop =
  let enc = Encode.build net opts in
  check enc (make_prop enc)

(* -- incremental verification sessions ------------------------------------- *)

module Session = struct
  type session = {
    enc : Encode.t;
    solver : Solver.t;
    mutable next : int;
    mutable active : T.t option;  (* activation literal of the live query *)
  }

  type t = session

  let of_encoding enc =
    let solver = Solver.create ~incremental:true () in
    List.iter (Solver.assert_term solver) (Encode.assertions enc);
    { enc; solver; next = 0; active = None }

  let create net opts = of_encoding (Encode.build net opts)
  let encoding s = s.enc
  let queries s = s.next
  let stats s = Solver.stats s.solver

  let check s prop =
    (* Retire the previous query for good: the unit clause satisfies
       all of its guarded clauses, so clause-database reduction can
       drop any learnt clause that still mentions it. *)
    (match s.active with
     | Some act -> Solver.assert_term s.solver (T.not_ act)
     | None -> ());
    let act = T.var (Printf.sprintf "session!%d.act" s.next) Smt.Sort.Bool in
    s.next <- s.next + 1;
    s.active <- Some act;
    List.iter
      (Solver.assert_implied s.solver ~guard:act)
      (prop.Property.instrumentation @ prop.Property.assumptions);
    Solver.assert_implied s.solver ~guard:act (T.not_ prop.Property.goal);
    match Solver.check ~assumptions:[ act ] s.solver with
    | Solver.Unsat -> Holds
    | Solver.Sat model -> Violation (Counterexample.decode s.enc model)

  let check_all s make_props = List.map (fun make -> check s (make s.enc)) make_props
end

let record_eq (a : Sym_record.t) (b : Sym_record.t) =
  T.and_
    [
      T.iff a.Sym_record.valid b.Sym_record.valid;
      T.implies a.Sym_record.valid (Sym_record.equal_fields a b);
    ]

(* Equate the symbolic packets of two encodings built with the same
   options (hence the same field sorts). *)
let packets_equal enc1 enc2 =
  let p1 = Encode.packet enc1 and p2 = Encode.packet enc2 in
  [
    T.eq p1.Packet.dst_ip p2.Packet.dst_ip;
    T.eq p1.Packet.src_ip p2.Packet.src_ip;
    T.eq p1.Packet.dst_port p2.Packet.dst_port;
    T.eq p1.Packet.src_port p2.Packet.src_port;
    T.eq p1.Packet.protocol p2.Packet.protocol;
  ]

(* Pointwise-equal environments: external announcements matched by
   (device, peer) name across the two encodings. *)
let envs_equal enc1 enc2 =
  List.concat_map
    (fun d ->
      List.filter_map
        (fun (p, _) ->
          match List.assoc_opt p (Encode.external_peers enc2 d) with
          | Some _ -> Some (record_eq (Encode.env_record enc1 d p) (Encode.env_record enc2 d p))
          | None -> None)
        (Encode.external_peers enc1 d))
    (Encode.devices enc1)

let two_copy_check enc1 enc2 ~extra_assumptions ~goal =
  let prop =
    {
      Property.instrumentation = Encode.assertions enc2;
      assumptions = packets_equal enc1 enc2 @ envs_equal enc1 enc2 @ extra_assumptions;
      goal;
    }
  in
  check enc1 prop

let equivalent net1 net2 opts =
  let enc1 = Encode.build ~suffix:"@1" net1 opts in
  let enc2 = Encode.build ~suffix:"@2" net2 opts in
  let fwd_equal =
    List.concat_map
      (fun d ->
        List.map
          (fun h -> T.iff (Encode.datafwd enc1 d h) (Encode.datafwd enc2 d h))
          (Encode.hops enc1 d))
      (Encode.devices enc1)
  in
  let exports_equal =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun (p, _) ->
            match List.assoc_opt p (Encode.external_peers enc2 d) with
            | Some _ ->
              Some (record_eq (Encode.export_to_external enc1 d p) (Encode.export_to_external enc2 d p))
            | None -> None)
          (Encode.external_peers enc1 d))
      (Encode.devices enc1)
  in
  two_copy_check enc1 enc2 ~extra_assumptions:[] ~goal:(T.and_ (fwd_equal @ exports_equal))

let fault_invariant net opts ~k ~sources dest =
  let enc1 = Encode.build ~suffix:"@ok" net { opts with Options.max_failures = None } in
  let enc2 =
    Encode.build ~suffix:"@fail" net
      { opts with Options.max_failures = Some k; fail_internal_only = true }
  in
  let reach1, defs1 = Property.reach_terms enc1 dest in
  let reach2, defs2 = Property.reach_terms enc2 dest in
  let goal = T.and_ (List.map (fun s -> T.iff (reach1 s) (reach2 s)) sources) in
  let prop =
    {
      Property.instrumentation = Encode.assertions enc2 @ defs1 @ defs2;
      assumptions =
        packets_equal enc1 enc2 @ envs_equal enc1 enc2
        @ Property.(
            let p1 = (reachability enc1 ~sources dest).assumptions in
            p1);
      goal;
    }
  in
  check enc1 prop
