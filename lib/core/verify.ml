module T = Smt.Term
module Solver = Smt.Solver

type outcome = Holds | Violation of Counterexample.t

let solve_assertions enc (prop : Property.t) =
  let opts = Encode.options enc in
  let solver =
    Solver.create ~certify:opts.Options.certify ~strategy:opts.Options.strategy
      ~features:opts.Options.solver_features ()
  in
  List.iter (Solver.assert_term solver) (Encode.assertions enc);
  List.iter (Solver.assert_term solver) prop.Property.instrumentation;
  List.iter (Solver.assert_term solver) prop.Property.assumptions;
  Solver.assert_term solver (T.not_ prop.Property.goal);
  solver

(* -- the unified query/report surface -------------------------------------- *)

module Query = struct
  type t = {
    label : string;
    timeout : float option;  (* wall-clock seconds for this query alone *)
    prop : Encode.t -> Property.t;
  }

  let v ?timeout label prop = { label; timeout; prop }
  let of_property ?timeout label p = { label; timeout; prop = (fun _ -> p) }
  let with_default_timeout timeout q =
    match (q.timeout, timeout) with None, Some _ -> { q with timeout } | _ -> q
end

module Report = struct
  type verdict =
    | Verified
    | Violated of Counterexample.t
    | Timeout
    | Error of string

  (* Independent evidence for a verdict, produced when the encoding was
     built with [Options.certify].  [Checked_unsat_proof]: the solver's
     DRAT-style trace replayed through the standalone {!Proof.Checker}
     (theory lemmas re-justified by fresh Idl/Simplex runs) and found to
     derive the refutation.  [Checked_model]: the satisfying assignment
     re-evaluated over the original terms and the decoded counterexample
     replayed through the concrete routing simulator.  All fields are
     plain data, so certificates survive marshalling across the
     {!Engine} worker boundary. *)
  type certificate =
    | Uncertified
    | Checked_unsat_proof of { trace_steps : int; clauses : int; lemmas : int }
    | Checked_model
    | Certification_failed of string

  (* Which path produced a fault-invariance verdict: [Graph] the
     lib/faults min-cut fast path over the simulator's converged
     routes, [Smt] the full two-copy encoding, [Fallback] the SMT
     encoding reached because the graph path declined to decide.
     [None] on queries outside the fault workload. *)
  type meth = Graph | Smt | Fallback

  type t = {
    label : string;
    verdict : verdict;
    certificate : certificate;
    wall_ms : float;
    stats : Solver.stats;
        (* per-query solver work: absolute for a fresh solver, the
           delta over the enclosing session/worker otherwise *)
    worker : int;  (* 0 = in-process; workers of a pool count from 1 *)
    strategy : string option;  (* winning variant, in portfolio mode *)
    support : string list option;
        (* Verified verdicts from a support-tracking session: the
           devices whose assumption guards appear in the final-conflict
           core.  The refutation used only their configuration slices
           (plus shared structure), so the verdict survives any edit
           disjoint from this set. *)
    replayed : bool;
        (* the verdict was replayed from a cache (core-disjoint delta
           re-verification), not produced by a solver run *)
    method_ : meth option;
        (* which fault-workload path answered; plain data, so it
           survives marshalling across the {!Engine} worker boundary *)
  }

  (* The JSON schema version stamped on every report, bench file and
     serve-protocol message.  Bump on any breaking change to the JSON
     surface. *)
  let schema_version = 2

  let verdict_name = function
    | Verified -> "verified"
    | Violated _ -> "violated"
    | Timeout -> "timeout"
    | Error _ -> "error"

  let certificate_name = function
    | Uncertified -> "uncertified"
    | Checked_unsat_proof _ -> "checked_unsat_proof"
    | Checked_model -> "checked_model"
    | Certification_failed _ -> "certification_failed"

  let method_name = function Graph -> "graph" | Smt -> "smt" | Fallback -> "fallback"

  let of_outcome = function Holds -> Verified | Violation cx -> Violated cx

  let to_outcome r =
    match r.verdict with
    | Verified -> Holds
    | Violated cx -> Violation cx
    | Timeout -> invalid_arg (r.label ^ ": query timed out; no outcome")
    | Error e -> invalid_arg (r.label ^ ": query errored (" ^ e ^ "); no outcome")

  let empty_stats =
    {
      Solver.sat_vars = 0;
      sat_clauses = 0;
      conflicts = 0;
      decisions = 0;
      propagations = 0;
      restarts = 0;
      ema_restarts = 0;
      blocked_restarts = 0;
      rephases = 0;
      clauses_imported = 0;
      clauses_exported = 0;
      learned_clauses = 0;
      theory_rounds = 0;
      theory_propagations = 0;
      preprocessed_clauses = 0;
      lbd_reductions = 0;
      checks = 0;
      arena_words = 0;
      arena_compactions = 0;
      minor_words = 0.0;
    }

  (* Decisions per conflict: how much of the search is blind walking
     over don't-care variables versus conflict-driven progress (lower
     is tighter). *)
  let decisions_per_conflict (st : Solver.stats) =
    if st.Solver.conflicts = 0 then 0.0
    else float_of_int st.Solver.decisions /. float_of_int st.Solver.conflicts

  (* The one string-escaping implementation shared with the lint
     diagnostics and the bench writers (Msutil.Json); the historical
     name stays because the bench harness and CLI key on it. *)
  let json_escape = Msutil.Json.escape

  (* One JSON object per report — the single renderer behind both the
     CLI's --format json and the bench harness. *)
  let to_json r =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"schema\":%d,\"label\":\"%s\",\"verdict\":\"%s\",\"wall_ms\":%.2f,\"worker\":%d"
         schema_version (json_escape r.label) (verdict_name r.verdict) r.wall_ms r.worker);
    (match r.strategy with
     | Some s -> Buffer.add_string buf (Printf.sprintf ",\"strategy\":\"%s\"" (json_escape s))
     | None -> ());
    if r.replayed then Buffer.add_string buf ",\"replayed\":true";
    (match r.method_ with
     | Some m -> Buffer.add_string buf (Printf.sprintf ",\"method\":\"%s\"" (method_name m))
     | None -> ());
    (match r.support with
     | Some devs ->
       Buffer.add_string buf
         (Printf.sprintf ",\"support\":[%s]"
            (String.concat "," (List.map (fun d -> "\"" ^ json_escape d ^ "\"") devs)))
     | None -> ());
    (match r.verdict with
     | Error e -> Buffer.add_string buf (Printf.sprintf ",\"error\":\"%s\"" (json_escape e))
     | Violated cx ->
       Buffer.add_string buf
         (Printf.sprintf
            ",\"counterexample\":{\"dst_ip\":\"%s\",\"src_ip\":\"%s\",\"dst_port\":%d,\"failed_links\":[%s],\"announcements\":%d,\"forwarding_edges\":%d}"
            (Net.Ipv4.to_string cx.Counterexample.dst_ip)
            (Net.Ipv4.to_string cx.Counterexample.src_ip)
            cx.Counterexample.dst_port
            (String.concat ","
               (List.map
                  (fun (a, b) -> Printf.sprintf "[\"%s\",\"%s\"]" (json_escape a) (json_escape b))
                  cx.Counterexample.failures))
            (List.length cx.Counterexample.announcements)
            (List.length cx.Counterexample.forwarding));
       if cx.Counterexample.classes <> [] then
         Buffer.add_string buf
           (Printf.sprintf ",\"symmetry_classes\":[%s]"
              (String.concat ","
                 (List.map
                    (fun (rep, members) ->
                      Printf.sprintf "{\"representative\":\"%s\",\"members\":%d}"
                        (json_escape rep) (List.length members))
                    cx.Counterexample.classes)))
     | Verified | Timeout -> ());
    (match r.certificate with
     | Uncertified -> ()
     | Checked_unsat_proof { trace_steps; clauses; lemmas } ->
       Buffer.add_string buf
         (Printf.sprintf
            ",\"certificate\":{\"status\":\"checked_unsat_proof\",\"trace_steps\":%d,\"clauses\":%d,\"lemmas\":%d}"
            trace_steps clauses lemmas)
     | Checked_model ->
       Buffer.add_string buf ",\"certificate\":{\"status\":\"checked_model\"}"
     | Certification_failed msg ->
       Buffer.add_string buf
         (Printf.sprintf ",\"certificate\":{\"status\":\"failed\",\"reason\":\"%s\"}"
            (json_escape msg)));
    Buffer.add_string buf
      (Printf.sprintf
         ",\"stats\":{\"conflicts\":%d,\"decisions\":%d,\"propagations\":%d,\"learned_clauses\":%d,\"restarts\":%d,\"ema_restarts\":%d,\"blocked_restarts\":%d,\"rephases\":%d,\"clauses_imported\":%d,\"clauses_exported\":%d,\"theory_propagations\":%d,\"preprocessed_clauses\":%d,\"lbd_reductions\":%d,\"decisions_per_conflict\":%.2f,\"arena_bytes\":%d,\"arena_compactions\":%d,\"minor_words\":%.0f}}"
         r.stats.Solver.conflicts r.stats.Solver.decisions r.stats.Solver.propagations
         r.stats.Solver.learned_clauses r.stats.Solver.restarts
         r.stats.Solver.ema_restarts r.stats.Solver.blocked_restarts
         r.stats.Solver.rephases r.stats.Solver.clauses_imported
         r.stats.Solver.clauses_exported
         r.stats.Solver.theory_propagations r.stats.Solver.preprocessed_clauses
         r.stats.Solver.lbd_reductions
         (decisions_per_conflict r.stats)
         (r.stats.Solver.arena_words * (Sys.word_size / 8))
         r.stats.Solver.arena_compactions r.stats.Solver.minor_words);
    Buffer.contents buf

  let list_to_json rs =
    "[\n    " ^ String.concat ",\n    " (List.map to_json rs) ^ "\n  ]"

  (* Uniform process exit codes (single, batch and parallel mode):
     0 every query holds, 1 any violation, 3 any timeout or worker
     error, 4 any certification failure (2 is reserved for usage/parse
     errors, signalled before any query runs).  A violation dominates a
     timeout: it is the stronger, actionable answer.  A certification
     failure dominates everything — a verdict whose independent check
     failed cannot be trusted in either direction. *)
  let exit_code rs =
    if
      List.exists
        (fun r -> match r.certificate with Certification_failed _ -> true | _ -> false)
        rs
    then 4
    else if List.exists (fun r -> match r.verdict with Violated _ -> true | _ -> false) rs
    then 1
    else if
      List.exists (fun r -> match r.verdict with Timeout | Error _ -> true | _ -> false) rs
    then 3
    else 0
end

let now () = Unix.gettimeofday ()

let set_deadline solver = function
  | None -> Solver.set_stop solver None
  | Some secs ->
    let deadline = now () +. secs in
    (* >= so a zero budget cancels deterministically at the first poll *)
    Solver.set_stop solver (Some (fun () -> now () >= deadline))

(* -- certification ---------------------------------------------------------- *)

let certify_unsat solver : Report.certificate =
  match Proof.Certify.unsat solver with
  | Ok (s : Proof.Certify.unsat_summary) ->
    Report.Checked_unsat_proof
      { trace_steps = s.trace_steps; clauses = s.clauses; lemmas = s.lemmas }
  | Error msg -> Report.Certification_failed msg

let certify_model enc solver model : Report.certificate =
  match Proof.Certify.model solver model with
  | Error msg -> Report.Certification_failed msg
  | Ok () -> (
    match Counterexample.replay enc (Counterexample.decode enc model) with
    | Ok () -> Report.Checked_model
    | Error msg -> Report.Certification_failed msg)

(* Answer one query on a fresh single-shot solver. *)
let run_query enc (q : Query.t) : Report.t =
  let certify = (Encode.options enc).Options.certify in
  let t0 = now () in
  let finish verdict certificate stats =
    {
      Report.label = q.Query.label;
      verdict;
      certificate;
      wall_ms = (now () -. t0) *. 1000.0;
      stats;
      worker = 0;
      strategy = None;
      support = None;
      replayed = false;
      method_ = None;
    }
  in
  let solver = solve_assertions enc (q.Query.prop enc) in
  set_deadline solver q.Query.timeout;
  match Solver.check solver with
  | Solver.Unsat ->
    let cert = if certify then certify_unsat solver else Report.Uncertified in
    finish Report.Verified cert (Solver.stats solver)
  | Solver.Sat model ->
    let cert = if certify then certify_model enc solver model else Report.Uncertified in
    finish (Report.Violated (Counterexample.decode enc model)) cert (Solver.stats solver)
  | exception Solver.Canceled -> finish Report.Timeout Report.Uncertified (Solver.stats solver)

(* -- incremental verification sessions ------------------------------------- *)

module Session = struct
  type session = {
    enc : Encode.t;
    solver : Solver.t;
    owner : int;  (* pid of the creating process; see [guard_owner] *)
    guards : (string * T.t) list;
        (* support tracking: per-device assumption guard over that
           device's assertion slice; [] when tracking is off *)
    mutable next : int;
    mutable active : T.t option;  (* activation literal of the live query *)
    mutable last_model : Smt.Model.t option;  (* model of the last Sat check *)
    mutable last_support : string list option;
        (* device guards in the final-conflict core of the last Unsat
           check; [None] after Sat checks or without support tracking *)
  }

  type t = session

  let of_encoding ?strategy ?features ?(support = false) enc =
    let opts = Encode.options enc in
    let strategy =
      match strategy with Some st -> st | None -> opts.Options.strategy
    in
    let features =
      match features with Some f -> f | None -> opts.Options.solver_features
    in
    let solver =
      Solver.create ~incremental:true ~certify:opts.Options.certify ~strategy ~features ()
    in
    let guards =
      if not support then begin
        List.iter (Solver.assert_term solver) (Encode.assertions enc);
        []
      end
      else begin
        (* Guard each device's slice behind an assumption literal.
           Every check passes all the guards, so verdicts are those of
           the plain session; on Unsat the final-conflict core over the
           assumptions names the devices whose slices the refutation
           used — the verdict's support. *)
        let guards =
          List.map (fun d -> (d, T.var ("dev!" ^ d) Smt.Sort.Bool)) (Encode.devices enc)
        in
        List.iter
          (fun (scope, term) ->
            match scope with
            | None -> Solver.assert_term solver term
            | Some d -> Solver.assert_implied solver ~guard:(List.assoc d guards) term)
          (Encode.tagged_assertions enc);
        guards
      end
    in
    {
      enc;
      solver;
      owner = Unix.getpid ();
      guards;
      next = 0;
      active = None;
      last_model = None;
      last_support = None;
    }

  let create ?support net opts = of_encoding ?support (Encode.build net opts)
  let encoding s = s.enc
  let queries s = s.next
  let solver s = s.solver
  let stats s = Solver.stats s.solver
  let last_support s = s.last_support

  (* A session is a single-process object: the solver's assumption
     stack, activation-literal counter and proof trace all live in this
     process's heap.  Using one from a child after an [Engine]-style
     fork silently diverges the parent's and child's views of the
     activation literals and corrupts later verdicts, so fail fast
     instead. *)
  let guard_owner s =
    if Unix.getpid () <> s.owner then
      invalid_arg
        "Verify.Session: session used from a forked process; create one session per worker"

  let check s prop =
    guard_owner s;
    (* Retire the previous query for good: the unit clause satisfies
       all of its guarded clauses, so clause-database reduction can
       drop any learnt clause that still mentions it. *)
    (match s.active with
     | Some act -> Solver.assert_term s.solver (T.not_ act)
     | None -> ());
    let act = T.var (Printf.sprintf "session!%d.act" s.next) Smt.Sort.Bool in
    s.next <- s.next + 1;
    s.active <- Some act;
    List.iter
      (Solver.assert_implied s.solver ~guard:act)
      (prop.Property.instrumentation @ prop.Property.assumptions);
    Solver.assert_implied s.solver ~guard:act (T.not_ prop.Property.goal);
    match Solver.check ~assumptions:(act :: List.map snd s.guards) s.solver with
    | Solver.Unsat ->
      s.last_model <- None;
      (if s.guards = [] then s.last_support <- None
       else begin
         let core = Solver.unsat_core s.solver in
         s.last_support <-
           Some
             (List.filter_map
                (fun (d, g) -> if List.exists (T.equal g) core then Some d else None)
                s.guards)
       end);
      Holds
    | Solver.Sat model ->
      s.last_model <- Some model;
      s.last_support <- None;
      Violation (Counterexample.decode s.enc model)

  (* Per-query solver work: session counters accumulate forever, so a
     query's cost is the delta across its check. *)
  let stats_delta (a : Solver.stats) (b : Solver.stats) =
    {
      Solver.sat_vars = b.Solver.sat_vars;
      sat_clauses = b.Solver.sat_clauses;
      conflicts = b.Solver.conflicts - a.Solver.conflicts;
      decisions = b.Solver.decisions - a.Solver.decisions;
      propagations = b.Solver.propagations - a.Solver.propagations;
      restarts = b.Solver.restarts - a.Solver.restarts;
      ema_restarts = b.Solver.ema_restarts - a.Solver.ema_restarts;
      blocked_restarts = b.Solver.blocked_restarts - a.Solver.blocked_restarts;
      rephases = b.Solver.rephases - a.Solver.rephases;
      clauses_imported = b.Solver.clauses_imported - a.Solver.clauses_imported;
      clauses_exported = b.Solver.clauses_exported - a.Solver.clauses_exported;
      learned_clauses = b.Solver.learned_clauses - a.Solver.learned_clauses;
      theory_rounds = b.Solver.theory_rounds - a.Solver.theory_rounds;
      theory_propagations = b.Solver.theory_propagations - a.Solver.theory_propagations;
      preprocessed_clauses = b.Solver.preprocessed_clauses - a.Solver.preprocessed_clauses;
      lbd_reductions = b.Solver.lbd_reductions - a.Solver.lbd_reductions;
      checks = b.Solver.checks - a.Solver.checks;
      (* arena occupancy and compactions describe the shared session
         solver, not one query: report the current footprint and the
         per-query compaction/allocation deltas *)
      arena_words = b.Solver.arena_words;
      arena_compactions = b.Solver.arena_compactions - a.Solver.arena_compactions;
      minor_words = b.Solver.minor_words -. a.Solver.minor_words;
    }

  let run_one s (q : Query.t) : Report.t =
    let certify = (Encode.options s.enc).Options.certify in
    let t0 = now () in
    let before = Solver.stats s.solver in
    set_deadline s.solver q.Query.timeout;
    let verdict =
      match check s (q.Query.prop s.enc) with
      | o -> Report.of_outcome o
      | exception Solver.Canceled -> Report.Timeout
    in
    Solver.set_stop s.solver None;
    let certificate =
      if not certify then Report.Uncertified
      else
        match (verdict, s.last_model) with
        | Report.Verified, _ ->
          (* the trace spans every check of the session so far; the
             checker refutes this check's activation literal on top of
             the accumulated active set *)
          certify_unsat s.solver
        | Report.Violated _, Some model -> certify_model s.enc s.solver model
        | Report.Violated _, None ->
          Report.Certification_failed "no model stashed for a Violated verdict"
        | (Report.Timeout | Report.Error _), _ -> Report.Uncertified
    in
    {
      Report.label = q.Query.label;
      verdict;
      certificate;
      wall_ms = (now () -. t0) *. 1000.0;
      stats = stats_delta before (Solver.stats s.solver);
      worker = 0;
      strategy = None;
      support = (match verdict with Report.Verified -> s.last_support | _ -> None);
      replayed = false;
      method_ = None;
    }

  let run s queries = List.map (run_one s) queries
end

let record_eq (a : Sym_record.t) (b : Sym_record.t) =
  T.and_
    [
      T.iff a.Sym_record.valid b.Sym_record.valid;
      T.implies a.Sym_record.valid (Sym_record.equal_fields a b);
    ]

(* Equate the symbolic packets of two encodings built with the same
   options (hence the same field sorts). *)
let packets_equal enc1 enc2 =
  let p1 = Encode.packet enc1 and p2 = Encode.packet enc2 in
  [
    T.eq p1.Packet.dst_ip p2.Packet.dst_ip;
    T.eq p1.Packet.src_ip p2.Packet.src_ip;
    T.eq p1.Packet.dst_port p2.Packet.dst_port;
    T.eq p1.Packet.src_port p2.Packet.src_port;
    T.eq p1.Packet.protocol p2.Packet.protocol;
  ]

(* Pointwise-equal environments: external announcements matched by
   (device, peer) name across the two encodings. *)
let envs_equal enc1 enc2 =
  List.concat_map
    (fun d ->
      List.filter_map
        (fun (p, _) ->
          match List.assoc_opt p (Encode.external_peers enc2 d) with
          | Some _ -> Some (record_eq (Encode.env_record enc1 d p) (Encode.env_record enc2 d p))
          | None -> None)
        (Encode.external_peers enc1 d))
    (Encode.devices enc1)

let two_copy_check ?timeout ~label enc1 enc2 ~extra_assumptions ~goal =
  let prop =
    {
      Property.instrumentation = Encode.assertions enc2;
      assumptions = packets_equal enc1 enc2 @ envs_equal enc1 enc2 @ extra_assumptions;
      goal;
    }
  in
  run_query enc1 (Query.of_property ?timeout label prop)

let equivalent ?timeout net1 net2 opts =
  (* two-copy checks compare devices by name across both encodings, so
     each copy must contain every device: symmetry quotients (which may
     collapse the two networks differently) are forced off *)
  let opts = { opts with Options.symmetry = false } in
  let enc1 = Encode.build ~suffix:"@1" net1 opts in
  let enc2 = Encode.build ~suffix:"@2" net2 opts in
  let fwd_equal =
    List.concat_map
      (fun d ->
        List.map
          (fun h -> T.iff (Encode.datafwd enc1 d h) (Encode.datafwd enc2 d h))
          (Encode.hops enc1 d))
      (Encode.devices enc1)
  in
  let exports_equal =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun (p, _) ->
            match List.assoc_opt p (Encode.external_peers enc2 d) with
            | Some _ ->
              Some (record_eq (Encode.export_to_external enc1 d p) (Encode.export_to_external enc2 d p))
            | None -> None)
          (Encode.external_peers enc1 d))
      (Encode.devices enc1)
  in
  two_copy_check ?timeout ~label:"equivalent" enc1 enc2 ~extra_assumptions:[]
    ~goal:(T.and_ (fwd_equal @ exports_equal))

let fault_invariant_query ?timeout ?label net opts ~k ~sources dest =
  let label =
    match label with Some l -> l | None -> Printf.sprintf "fault-invariant k=%d" k
  in
  (* same two-copy argument as [equivalent]; the failure copy would bail
     out anyway ([max_failures] disables the reduction) but the healthy
     copy must match it device-for-device *)
  let opts = { opts with Options.symmetry = false } in
  let enc1 = Encode.build ~suffix:"@ok" net { opts with Options.max_failures = None } in
  let enc2 =
    Encode.build ~suffix:"@fail" net
      { opts with Options.max_failures = Some k; fail_internal_only = true }
  in
  let reach1, defs1 = Property.reach_terms enc1 dest in
  let reach2, defs2 = Property.reach_terms enc2 dest in
  let goal = T.and_ (List.map (fun s -> T.iff (reach1 s) (reach2 s)) sources) in
  let prop =
    {
      Property.instrumentation = Encode.assertions enc2 @ defs1 @ defs2;
      assumptions =
        packets_equal enc1 enc2 @ envs_equal enc1 enc2
        @ Property.(
            let p1 = (reachability enc1 ~sources dest).assumptions in
            p1);
      goal;
    }
  in
  (enc1, Query.of_property ?timeout label prop)

let fault_invariant ?timeout ?label net opts ~k ~sources dest =
  let enc1, q = fault_invariant_query ?timeout ?label net opts ~k ~sources dest in
  let r = run_query enc1 q in
  { r with Report.method_ = Some Report.Smt }

(* -- the versioned serve protocol ------------------------------------------- *)

module Protocol = struct
  module J = Msutil.Json

  let schema = Report.schema_version

  type query_spec = {
    property : string;
    label : string option;
    sources : string list;
    dst_device : string option;
    dst_prefix : string option;
    bound : int;
    devices : string list;
    allowed : string list;
    max_len : int;
    timeout : float option;
  }

  let default_spec =
    {
      property = "reachability";
      label = None;
      sources = [];
      dst_device = None;
      dst_prefix = None;
      bound = 4;
      devices = [];
      allowed = [];
      max_len = 24;
      timeout = None;
    }

  type request =
    | Load of string
    | Diff of string
    | Query of { specs : query_spec list; jobs : int }
    | Stats
    | Shutdown

  let spec_of_json v : (query_spec, string) result =
    match J.member "property" v with
    | None -> Error "query spec is missing \"property\""
    | Some p -> (
      match J.get_string p with
      | None -> Error "\"property\" must be a string"
      | Some property ->
        let str k = Option.bind (J.member k v) J.get_string in
        let strs k d = Option.value ~default:d (Option.bind (J.member k v) J.string_list) in
        let int_ k d = Option.value ~default:d (Option.bind (J.member k v) J.get_int) in
        Ok
          {
            property;
            label = str "label";
            sources = strs "sources" [];
            dst_device = str "dst_device";
            dst_prefix = str "dst_prefix";
            bound = int_ "bound" default_spec.bound;
            devices = strs "devices" [];
            allowed = strs "allowed" [];
            max_len = int_ "max_len" default_spec.max_len;
            timeout = Option.bind (J.member "timeout" v) J.get_float;
          })

  let request_of_json v : (request, string) result =
    match v with
    | J.Obj _ -> (
      (match J.member "schema" v with
       | Some s when J.get_int s <> Some schema ->
         Error (Printf.sprintf "unsupported schema (this daemon speaks schema %d)" schema)
       | Some _ | None -> Ok ())
      |> function
      | Error e -> Error e
      | Ok () -> (
        match Option.bind (J.member "op" v) J.get_string with
        | None -> Error "request is missing \"op\""
        | Some "load" -> (
          match Option.bind (J.member "config" v) J.get_string with
          | Some c -> Ok (Load c)
          | None -> Error "\"load\" needs a \"config\" string")
        | Some "diff" -> (
          match Option.bind (J.member "config" v) J.get_string with
          | Some c -> Ok (Diff c)
          | None -> Error "\"diff\" needs a \"config\" string")
        | Some "query" -> (
          let jobs =
            Option.value ~default:1 (Option.bind (J.member "jobs" v) J.get_int)
          in
          match Option.bind (J.member "queries" v) J.get_list with
          | None -> Error "\"query\" needs a \"queries\" array"
          | Some [] -> Error "\"queries\" must not be empty"
          | Some vs ->
            List.fold_right
              (fun v acc ->
                match (spec_of_json v, acc) with
                | Ok s, Ok tl -> Ok (s :: tl)
                | (Error _ as e), _ -> e
                | _, (Error _ as e) -> e)
              vs (Ok [])
            |> Result.map (fun specs -> Query { specs; jobs }))
        | Some "stats" -> Ok Stats
        | Some "shutdown" -> Ok Shutdown
        | Some other -> Error ("unknown op " ^ other)))
    | _ -> Error "request must be a JSON object"

  let parse_request line =
    match J.parse line with
    | Error e -> Error ("malformed JSON: " ^ e)
    | Ok v -> request_of_json v

  (* The verdict-cache key of a query spec: everything that can change
     the verdict, nothing that cannot (label, timeout). *)
  let spec_key s =
    String.concat "|"
      ([ s.property ]
      @ List.sort compare s.sources
      @ [ Option.value ~default:"-" s.dst_device; Option.value ~default:"-" s.dst_prefix ]
      @ [ string_of_int s.bound ]
      @ s.devices
      @ List.sort compare s.allowed
      @ [ string_of_int s.max_len ])

  (* A spec expands to one or more labelled queries over the shared
     encoding, mirroring the CLI's property vocabulary; [all-pairs]
     fans out per destination device. *)
  let queries_of_spec enc (s : query_spec) : (Query.t list, string) result =
    let all_devices = Encode.devices enc in
    let sources = match s.sources with [] -> all_devices | srcs -> srcs in
    let label default = match s.label with Some l -> l | None -> default in
    let dest () =
      match (s.dst_device, s.dst_prefix) with
      | Some d, Some p -> (
        match Net.Prefix.of_string p with
        | p -> Ok (Property.Subnet (d, p))
        | exception _ -> Error ("malformed dst_prefix " ^ p))
      | Some d, None -> Ok (Property.Device d)
      | None, _ -> Error ("property " ^ s.property ^ " needs a dst_device")
    in
    let pair () =
      match s.devices with
      | [ d1; d2 ] -> Ok (d1, d2)
      | _ -> Error ("property " ^ s.property ^ " needs \"devices\" naming exactly two devices")
    in
    let one name make = Ok [ Query.v ?timeout:s.timeout (label name) make ] in
    let with_dest name make = Result.bind (dest ()) (fun d -> one name (make d)) in
    let with_pair name make = Result.bind (pair ()) (fun p -> one name (make p)) in
    match s.property with
    | "reachability" ->
      with_dest "reachability" (fun d enc -> Property.reachability enc ~sources d)
    | "isolation" -> with_dest "isolation" (fun d enc -> Property.isolation enc ~sources d)
    | "bounded-length" ->
      with_dest "bounded-length" (fun d enc ->
          Property.bounded_length enc ~sources d ~bound:s.bound)
    | "blackholes" ->
      one "blackholes" (fun enc -> Property.no_blackholes enc ~allowed:s.allowed ())
    | "loops" -> one "loops" (fun enc -> Property.no_loops enc ())
    | "multipath-consistency" ->
      with_dest "multipath-consistency" (fun d enc -> Property.multipath_consistency enc d)
    | "acl-equivalence" ->
      with_pair "acl-equivalence" (fun (d1, d2) enc -> Property.acl_equivalence enc d1 d2)
    | "local-equivalence" ->
      with_pair "local-equivalence" (fun (d1, d2) enc -> Property.local_equivalence enc d1 d2)
    | "no-leak" -> one "no-leak" (fun enc -> Property.no_leak enc ~max_len:s.max_len)
    | "all-pairs" ->
      Ok
        (List.filter_map
           (fun d ->
             if Encode.subnets enc d = [] then None
             else begin
               let srcs = List.filter (fun x -> x <> d) all_devices in
               Some
                 (Query.v ?timeout:s.timeout
                    (label ("reachability *->" ^ d))
                    (fun enc -> Property.reachability enc ~sources:srcs (Property.Device d)))
             end)
           all_devices)
    | other -> Error ("unknown property " ^ other)
end
