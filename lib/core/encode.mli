(** The Minesweeper network encoding (§3–§4, §6).

    [build net opts] translates a network's configurations into a
    conjunction of SMT constraints whose satisfying assignments are the
    stable states of the control plane, sliced with respect to one
    symbolic packet, under a fully symbolic environment (arbitrary
    external announcements, and up to [opts.max_failures] link
    failures).

    Properties (see {!Property}) are expressed over the exposed
    forwarding variables and records and conjoined with the encoding by
    {!Verify}. *)

type t

val build : ?suffix:string -> ?pins:string list -> Config.Ast.network -> Options.t -> t
(** [suffix] distinguishes variable names when several encodings of the
    same network coexist in one formula (equivalence and
    fault-invariance checks).

    When [opts.preflight_lint] is set (the default), the {!Analysis}
    linter runs first and Error-level findings abort the build with
    {!Analysis.Lint.Lint_errors} — a broken configuration is reported,
    not encoded.  When [opts.lint_slice] is set, provably-dead policy
    clauses and filter entries are deleted before encoding (verdicts
    are unchanged; see {!Analysis.Slice}).

    When [opts.symmetry] is set, the symmetry analysis
    ({!Analysis.Symmetry.reduce}) replaces the network by its quotient:
    one representative device per interchangeability class.  [pins]
    names devices that must survive as themselves — pin every device a
    property refers to by name (destination, equivalence pair), or the
    property construction fails with [Invalid_argument].  The reduction
    bails out to the full encoding on asymmetric networks and on
    feature combinations whose quotient semantics would differ (iBGP,
    statics with internal next hops, intra-class links,
    [max_failures]); [pins] is ignored when symmetry is off.
    @raise Analysis.Lint.Lint_errors on Error-level lint findings. *)

val network : t -> Config.Ast.network
val options : t -> Options.t
val packet : t -> Packet.t

val assertions : t -> Smt.Term.t list
(** The network semantics [N]: assert all of these. *)

val tagged_assertions : t -> (string option * Smt.Term.t) list
(** {!assertions} with provenance: [Some d] tags constraints generated
    while encoding device [d]'s configuration (its candidates, policy
    applications, route selection and forwarding — including its slice
    of any iBGP-copy encodings), [None] tags shared structure (packet
    well-formedness, the failure-cardinality bound).  A support-tracking
    {!Verify.Session} guards each device's slice behind an assumption
    literal so UNSAT verdicts report which devices their refutation
    used. *)

val devices : t -> string list

val hops : t -> string -> Nexthop.t list
(** All forwarding targets of a device in the model. *)

val controlfwd : t -> string -> Nexthop.t -> Smt.Term.t
(** Control-plane decision to forward from a device to a hop
    ([Term.fls] for hops the device does not have). *)

val datafwd : t -> string -> Nexthop.t -> Smt.Term.t
(** Like {!controlfwd} but accounting for data-plane ACLs. *)

val best_overall : t -> string -> Sym_record.t

val best_bgp : t -> string -> Sym_record.t option
val best_ospf : t -> string -> Sym_record.t option

val external_peers : t -> string -> (string * Net.Ipv4.t) list
(** [(peer_name, neighbor_ip)] of each symbolic external neighbor of a
    device. *)

val env_record : t -> string -> string -> Sym_record.t
(** [env_record t dev peer]: the peer's raw (unconstrained) announcement
    record arriving at [dev]. *)

val import_from_external : t -> string -> string -> Sym_record.t
(** The record after [dev]'s import policy on that peering. *)

val internal_imports : t -> string -> (string * Sym_record.t) list
(** [(peer_device, record)] for every internal BGP session of a device,
    sorted by peer name; used by the equivalence properties. *)

val export_to_external : t -> string -> string -> Sym_record.t
(** The record [dev] exports to the external peer. *)

val failed_links : t -> ((string * string) * Smt.Term.t) list
(** Failure variable of every link (internal and to external peers);
    constant [fls] when failures are disabled. *)

val failed : t -> string -> string -> Smt.Term.t

val internal_neighbors : t -> string -> string list
(** Internal devices this device can forward to in the model. *)

val subnets : t -> string -> Net.Prefix.t list
(** Locally attached destination subnets of a device. *)

val stats : t -> int * int
(** (number of assertions, total term DAG size) — for reporting. *)

val sym_classes : t -> (string * string list) list
(** [(representative, concrete class members)] for every symmetry class
    of size at least two that the quotient collapsed; [[]] for a full
    encoding.  The verdict for a representative lifts to every member
    of its class. *)

val representative : t -> string -> string
(** The device standing for [d] in this encoding: [d] itself unless it
    was collapsed into a symmetry class representative. *)

val project_devices : t -> string list -> string list
(** Map concrete device names through {!representative} and keep the
    ones present in this encoding, sorted and deduplicated — how
    source/allowed device sets written against the full network are
    carried into a quotient encoding. *)
