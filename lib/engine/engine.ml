(* Fork-based parallel verification.

   The parent builds the encoding once, then forks workers that inherit
   it (and the query closures) by copy-on-write — nothing is serialized
   on the way in; only reports cross a process boundary, as framed
   marshalled messages on a per-worker pipe.  Each worker answers its
   shard on a private incremental session, so learnt clauses amortize
   within a shard but never cross processes.

   Scheduler invariants:
   - results are indexed by query position and reassembled at the end,
     so the report order is the query order, whatever the completion
     order;
   - a worker announces [Started i] before attacking query [i]; on a
     crash (EOF without a clean shard) the parent therefore knows
     exactly which query to blame, requeues it once on a fresh worker,
     and marks it [Error] on a second crash — queries the dead worker
     had not started are requeued without penalty;
   - per-query timeouts are enforced cooperatively in the worker (the
     solver's stop hook; verdict [Timeout]) and by a parent-side
     watchdog that SIGKILLs a worker stuck past twice the budget. *)

module Verify = Minesweeper.Verify
module Query = Minesweeper.Verify.Query
module Report = Minesweeper.Verify.Report

type wire =
  | Started of int
  | Finished of int * Report.t
  | Learned of int array list
      (* low-LBD clauses a portfolio racer learnt, in the shared CNF's
         literal numbering; the parent rebroadcasts them to siblings *)

let available_cores () = Domain.recommended_domain_count ()

(* -- pipe framing: 4-byte big-endian length + marshalled payload ----------- *)

let rec write_all fd b off len =
  if len > 0 then begin
    let k = Unix.write fd b off len in
    write_all fd b (off + k) (len - k)
  end

let frame_of (m : wire) =
  let payload = Marshal.to_bytes m [] in
  let n = Bytes.length payload in
  let frame = Bytes.create (4 + n) in
  Bytes.set_uint8 frame 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 frame 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 frame 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 frame 3 (n land 0xff);
  Bytes.blit payload 0 frame 4 n;
  frame

let write_msg fd (m : wire) =
  let frame = frame_of m in
  write_all fd frame 0 (Bytes.length frame)

(* POSIX guarantees pipe writes of at most PIPE_BUF bytes are atomic:
   on a non-blocking fd they land whole or fail with EAGAIN — never a
   torn frame.  Clause rebroadcast leans on this, so frames must stay
   under the floor. *)
let pipe_buf = 4096

(* Best-effort clause rebroadcast on a non-blocking pipe: chunk the
   batch so each frame fits the atomicity floor (halving on the rare
   marshalled-size overflow), and drop the chunk if the receiver's pipe
   is full (EAGAIN) or closed (EPIPE) — shared clauses are redundant
   hints, losing some costs nothing but speed. *)
let rec send_clauses fd = function
  | [] -> ()
  | clauses ->
    let batch, rest =
      let rec take n acc = function
        | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      take 8 [] clauses
    in
    let frame = frame_of (Learned batch) in
    if Bytes.length frame > pipe_buf then begin
      match batch with
      | [ _ ] -> send_clauses fd rest (* oversized singleton: drop *)
      | _ ->
        let k = List.length batch / 2 in
        let rec split n acc = function
          | x :: tl when n > 0 -> split (n - 1) (x :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        let a, b = split k [] batch in
        send_clauses fd a;
        send_clauses fd (b @ rest)
    end
    else begin
      (try ignore (Unix.write fd frame 0 (Bytes.length frame)) with
       | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()
       | Unix.Unix_error _ -> ());
      send_clauses fd rest
    end

(* Consume every complete frame buffered for a worker.  [Marshal] needs
   a contiguous view, so the buffer is rebuilt from the leftover — the
   messages are small and rare enough that this never matters. *)
let drain_frames buf handle =
  let progress = ref true in
  while !progress do
    progress := false;
    let len = Buffer.length buf in
    if len >= 4 then begin
      let b = Buffer.to_bytes buf in
      let n =
        (Bytes.get_uint8 b 0 lsl 24)
        lor (Bytes.get_uint8 b 1 lsl 16)
        lor (Bytes.get_uint8 b 2 lsl 8)
        lor Bytes.get_uint8 b 3
      in
      if len >= 4 + n then begin
        let (m : wire) = Marshal.from_bytes b 4 in
        Buffer.clear buf;
        Buffer.add_subbytes buf b (4 + n) (len - 4 - n);
        handle m;
        progress := true
      end
    end
  done

(* -- worker side ----------------------------------------------------------- *)

(* Wire a portfolio racer's session into the clause exchange: export
   low-LBD learnt clauses up the report pipe, and poll the import pipe
   for siblings' clauses.  Both happen inside the solver's restart hook
   — decision level 0, propagation complete — where imported clauses
   attach with valid watches (and, under --certify, pass the RUP check
   that keeps the proof trace sound; see Smt.Solver.import_clause). *)
let wire_sharing session ~import_fd ~report_fd =
  let solver = Verify.Session.solver session in
  Smt.Solver.enable_sharing solver;
  let ibuf = Buffer.create 1024 in
  let tmp = Bytes.create 65536 in
  Smt.Solver.set_on_restart solver
    (Some
       (fun () ->
         (match Smt.Solver.drain_exported solver with
          | [] -> ()
          | clauses -> ( try write_msg report_fd (Learned clauses) with _ -> ()));
         let rec pump () =
           match Unix.select [ import_fd ] [] [] 0.0 with
           | [ _ ], _, _ ->
             (match Unix.read import_fd tmp 0 (Bytes.length tmp) with
              | 0 -> () (* parent gone; stop pulling *)
              | k ->
                Buffer.add_subbytes ibuf tmp 0 k;
                drain_frames ibuf (function
                  | Learned clauses ->
                    List.iter (fun c -> ignore (Smt.Solver.import_clause solver c)) clauses
                  | Started _ | Finished _ -> ());
                pump ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
              | exception _ -> ())
           | _ -> ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         in
         pump ()))

let worker_main ~worker_id ?strategy ?strategy_name ?support ?import enc shard wfd =
  (try
     let session = Verify.Session.of_encoding ?strategy ?support enc in
     (match import with
      | Some import_fd -> wire_sharing session ~import_fd ~report_fd:wfd
      | None -> ());
     List.iter
       (fun (idx, q) ->
         write_msg wfd (Started idx);
         let r =
           try Verify.Session.run_one session q with
           | e ->
             {
               Report.label = q.Query.label;
               verdict = Report.Error (Printexc.to_string e);
               certificate = Report.Uncertified;
               wall_ms = 0.0;
               stats = Report.empty_stats;
               worker = worker_id;
               strategy = None;
               support = None;
               replayed = false;
               method_ = None;
             }
         in
         write_msg wfd
           (Finished (idx, { r with Report.worker = worker_id; strategy = strategy_name })))
       shard
   with _ -> ());
  (try Unix.close wfd with _ -> ());
  Unix._exit 0

(* -- parent side ----------------------------------------------------------- *)

type worker = {
  pid : int;
  wid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable current : int option;  (* query index in flight *)
  mutable started_at : float;
  mutable remaining : (int * Query.t) list;  (* shard minus finished queries *)
}

let sequential ?support enc queries =
  Verify.Session.run (Verify.Session.of_encoding ?support enc) queries

let run ?jobs ?timeout ?support enc queries =
  let queries = List.map (Query.with_default_timeout timeout) queries in
  let jobs = match jobs with Some j -> max 1 j | None -> available_cores () in
  let n = List.length queries in
  if jobs <= 1 || n <= 1 then sequential ?support enc queries
  else begin
    let qarr = Array.of_list queries in
    let results = Array.make n None in
    let attempts = Array.make n 0 in
    (* Deal queries round-robin so adjacent (often similar) queries
       spread across workers. *)
    let shards = Array.make jobs [] in
    Array.iteri (fun i q -> shards.(i mod jobs) <- (i, q) :: shards.(i mod jobs)) qarr;
    let shards = Array.map List.rev shards in
    let next_wid = ref 0 in
    let workers = ref [] in
    let spawn shard =
      if shard <> [] then begin
        incr next_wid;
        let wid = !next_wid in
        let r, w = Unix.pipe () in
        let sibling_fds = List.map (fun wk -> wk.fd) !workers in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
          Unix.close r;
          List.iter (fun fd -> try Unix.close fd with _ -> ()) sibling_fds;
          worker_main ~worker_id:wid ?support enc shard w
        | pid ->
          Unix.close w;
          workers :=
            {
              pid;
              wid;
              fd = r;
              buf = Buffer.create 1024;
              current = None;
              started_at = Unix.gettimeofday ();
              remaining = shard;
            }
            :: !workers
      end
    in
    let synthetic idx verdict wid =
      {
        Report.label = qarr.(idx).Query.label;
        verdict;
        certificate = Report.Uncertified;
        wall_ms = 0.0;
        stats = Report.empty_stats;
        worker = wid;
        strategy = None;
        support = None;
        replayed = false;
        method_ = None;
      }
    in
    let unfinished w = List.filter (fun (i, _) -> results.(i) = None) w.remaining in
    (* A worker died (EOF or watchdog kill) with work outstanding:
       blame the in-flight query — or the next one up, if it died
       between queries — and requeue the rest on a fresh worker. *)
    let finish_worker w ~timed_out =
      workers := List.filter (fun x -> x.wid <> w.wid) !workers;
      (try Unix.close w.fd with _ -> ());
      (try ignore (Unix.waitpid [] w.pid) with _ -> ());
      match unfinished w with
      | [] -> ()
      | (head, _) :: rest_q ->
        let blamed =
          match w.current with
          | Some i when results.(i) = None -> i
          | _ -> head
        in
        let rest = List.filter (fun (i, _) -> i <> blamed) ((head, qarr.(head)) :: rest_q) in
        let requeue =
          if timed_out then begin
            results.(blamed) <-
              Some
                {
                  (synthetic blamed Report.Timeout w.wid) with
                  Report.wall_ms = (Unix.gettimeofday () -. w.started_at) *. 1000.0;
                };
            rest
          end
          else begin
            attempts.(blamed) <- attempts.(blamed) + 1;
            if attempts.(blamed) >= 2 then begin
              results.(blamed) <-
                Some
                  (synthetic blamed
                     (Report.Error "worker crashed twice on this query (one requeue attempted)")
                     w.wid);
              rest
            end
            else (blamed, qarr.(blamed)) :: rest
          end
        in
        spawn requeue
    in
    let handle_msg w = function
      | Started i ->
        w.current <- Some i;
        w.started_at <- Unix.gettimeofday ()
      | Finished (i, r) ->
        if results.(i) = None then results.(i) <- Some r;
        w.current <- None;
        w.remaining <- List.filter (fun (j, _) -> j <> i) w.remaining
      | Learned _ -> ()  (* sharded runs don't share clauses *)
    in
    let tmp = Bytes.create 65536 in
    let read_worker w =
      match Unix.read w.fd tmp 0 (Bytes.length tmp) with
      | 0 ->
        drain_frames w.buf (handle_msg w);
        finish_worker w ~timed_out:false
      | k ->
        Buffer.add_subbytes w.buf tmp 0 k;
        drain_frames w.buf (handle_msg w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    Array.iter spawn shards;
    while !workers <> [] do
      (* Watchdog: a worker stuck past twice its current query's budget
         missed its cooperative cancellation — kill it.  Drain the pipe
         first in case the report is already in flight. *)
      let now = Unix.gettimeofday () in
      let overdue, next_deadline =
        List.fold_left
          (fun (ov, dl) w ->
            match w.current with
            | Some i ->
              (match qarr.(i).Query.timeout with
               | Some t ->
                 let kill_at = w.started_at +. (2.0 *. t) +. 1.0 in
                 if now >= kill_at then (w :: ov, dl) else (ov, Float.min dl (kill_at -. now))
               | None -> (ov, dl))
            | None -> (ov, dl))
          ([], 3600.0) !workers
      in
      List.iter
        (fun w ->
          (match Unix.select [ w.fd ] [] [] 0.0 with
           | [ _ ], _, _ -> read_worker w
           | _ -> ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          if List.exists (fun x -> x.wid = w.wid) !workers && w.current <> None then begin
            (try Unix.kill w.pid Sys.sigkill with _ -> ());
            finish_worker w ~timed_out:true
          end)
        overdue;
      match !workers with
      | [] -> ()
      | ws -> (
        let fds = List.map (fun w -> w.fd) ws in
        match Unix.select fds [] [] next_deadline with
        | ready, _, _ ->
          List.iter
            (fun fd ->
              match List.find_opt (fun w -> w.fd = fd) !workers with
              | Some w -> read_worker w
              | None -> ())
            ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Some r -> r
           | None -> synthetic i (Report.Error "query lost by the scheduler") 0)
         results)
  end

(* -- portfolio: race strategies on one query, first decisive answer wins --- *)

let portfolio ?timeout ?(strategies = Minesweeper.Options.portfolio) ?(share = true)
    ?(extra = []) enc q =
  if strategies = [] && extra = [] then
    invalid_arg "Engine.portfolio: empty strategy list";
  let q = Query.with_default_timeout timeout q in
  let racers = Array.of_list strategies in
  let n_strat = Array.length racers in
  let started = Unix.gettimeofday () in
  (* Rebroadcasting to a racer that just won (and exited) must not kill
     the parent with SIGPIPE; restore the handler on the way out. *)
  let prev_sigpipe =
    if share then Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) else None
  in
  let fds = ref [] in
  let procs =
    Array.mapi
      (fun i (name, strat) ->
        let r, w = Unix.pipe () in
        (* The import pipe runs parent -> child; the parent's write end
           is non-blocking so a slow importer can never stall the
           scheduler (clause hints are droppable). *)
        let ir, iw = Unix.pipe () in
        Unix.set_nonblock iw;
        let sibling_fds = !fds in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
          Unix.close r;
          Unix.close iw;
          List.iter (fun fd -> try Unix.close fd with _ -> ()) sibling_fds;
          let import = if share then Some ir else None in
          worker_main ~worker_id:(i + 1) ~strategy:strat ~strategy_name:name ?import enc
            [ (0, q) ] w
        | pid ->
          Unix.close w;
          Unix.close ir;
          fds := r :: iw :: !fds;
          (pid, r, iw, Buffer.create 512, ref true (* alive *)))
      racers
  in
  (* Non-solver racers (e.g. the lib/faults graph fast path): one
     process per thunk, reporting a single [Finished] like any other
     racer.  An indecisive thunk returns [Error]/[Timeout], which lands
     in [fallback] and lets a solver racer win — exactly the
     fall-back-to-SMT semantics.  The import pipe exists only so the
     tuple matches the solver racers; its read end is closed at birth
     and rebroadcasts to it are dropped on EPIPE. *)
  let extra_procs =
    Array.of_list extra
    |> Array.mapi (fun i ((name : string), (thunk : unit -> Report.t)) ->
           let r, w = Unix.pipe () in
           let ir, iw = Unix.pipe () in
           Unix.set_nonblock iw;
           let sibling_fds = !fds in
           flush stdout;
           flush stderr;
           match Unix.fork () with
           | 0 ->
             Unix.close r;
             Unix.close iw;
             Unix.close ir;
             List.iter (fun fd -> try Unix.close fd with _ -> ()) sibling_fds;
             (try
                let rep =
                  try thunk ()
                  with e ->
                    {
                      Report.label = q.Query.label;
                      verdict = Report.Error (Printexc.to_string e);
                      certificate = Report.Uncertified;
                      wall_ms = 0.0;
                      stats = Report.empty_stats;
                      worker = 0;
                      strategy = None;
                      support = None;
                      replayed = false;
                      method_ = None;
                    }
                in
                write_msg w
                  (Finished
                     ( 0,
                       {
                         rep with
                         Report.worker = n_strat + i + 1;
                         strategy = Some name;
                       } ))
              with _ -> ());
             (try Unix.close w with _ -> ());
             Unix._exit 0
           | pid ->
             Unix.close w;
             Unix.close ir;
             fds := r :: iw :: !fds;
             (pid, r, iw, Buffer.create 512, ref true))
  in
  let procs = Array.append procs extra_procs in
  let winner = ref None in
  let fallback = ref None in
  let note (r : Report.t) =
    match r.Report.verdict with
    | Report.Verified | Report.Violated _ -> if !winner = None then winner := Some r
    | Report.Timeout | Report.Error _ -> if !fallback = None then fallback := Some r
  in
  (* Clauses one racer learns go to every other live racer. *)
  let rebroadcast ~from clauses =
    if share then
      Array.iteri
        (fun j (_, _, iw, _, alive) ->
          if !alive && j <> from then send_clauses iw clauses)
        procs
  in
  let tmp = Bytes.create 65536 in
  let kill_deadline =
    match q.Query.timeout with Some t -> Some (started +. (2.0 *. t) +. 1.0) | None -> None
  in
  let watchdog_fired = ref false in
  let some_alive () = Array.exists (fun (_, _, _, _, alive) -> !alive) procs in
  while !winner = None && (not !watchdog_fired) && some_alive () do
    let timeout_left =
      match kill_deadline with
      | Some d -> Float.max 0.0 (d -. Unix.gettimeofday ())
      | None -> 3600.0
    in
    let fdl =
      Array.to_list procs
      |> List.filter_map (fun (_, fd, _, _, alive) -> if !alive then Some fd else None)
    in
    (match Unix.select fdl [] [] timeout_left with
     | [], _, _ -> if kill_deadline <> None && timeout_left <= 0.0 then watchdog_fired := true
     | ready, _, _ ->
       List.iter
         (fun fd ->
           Array.iteri
             (fun i (_, pfd, _, buf, alive) ->
               let handle = function
                 | Finished (_, r) -> note r
                 | Learned clauses -> rebroadcast ~from:i clauses
                 | Started _ -> ()
               in
               if !alive && pfd = fd then begin
                 match Unix.read fd tmp 0 (Bytes.length tmp) with
                 | 0 ->
                   drain_frames buf handle;
                   alive := false
                 | n ->
                   Buffer.add_subbytes buf tmp 0 n;
                   drain_frames buf handle
                 | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               end)
             procs)
         ready
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  (* Cancel the losers (and any watchdog-stuck racer) and reap everyone. *)
  Array.iter
    (fun (pid, fd, iw, _, alive) ->
      if !alive then (try Unix.kill pid Sys.sigkill with _ -> ());
      (try Unix.close fd with _ -> ());
      (try Unix.close iw with _ -> ());
      (try ignore (Unix.waitpid [] pid) with _ -> ()))
    procs;
  (match prev_sigpipe with
   | Some h -> ignore (Sys.signal Sys.sigpipe h)
   | None -> ());
  let elapsed_ms = (Unix.gettimeofday () -. started) *. 1000.0 in
  match (!winner, !fallback) with
  | Some r, _ -> r
  | None, Some r -> r
  | None, None ->
    {
      Report.label = q.Query.label;
      verdict =
        (if !watchdog_fired then Report.Timeout
         else Report.Error "all portfolio racers crashed");
      certificate = Report.Uncertified;
      wall_ms = elapsed_ms;
      stats = Report.empty_stats;
      worker = 0;
      strategy = None;
      support = None;
      replayed = false;
      method_ = None;
    }
