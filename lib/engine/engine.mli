(** Parallel verification engine: shard a suite of property queries
    across OS processes, or race solver strategies on one hard query.

    A property suite is embarrassingly parallel — every query is an
    independent UNSAT call against the same network semantics (the
    paper runs its Figure 7/8 suites "in parallel on a machine with 96
    cores").  {!run} forks [jobs] workers from the parent after the
    encoding is built (cheap copy-on-write sharing of the encoding and
    the query closures), gives each worker its own incremental
    {!Minesweeper.Verify.Session} over its shard, and streams framed,
    marshalled reports back over a pipe.

    Soundness of per-worker sessions: a session's learnt clauses are
    derived from the network assertions plus retired query guards of
    {e that} solver only, and no solver state ever crosses a process
    boundary — each verdict is therefore exactly the verdict of a
    sequential session running that shard, which PR-2's differential
    suite pins to the fresh-solver semantics.

    Robustness: per-query wall-clock timeouts are enforced twice —
    cooperatively inside the worker (the solver's stop hook, verdict
    [Timeout]) and by a parent-side watchdog that SIGKILLs a worker
    stuck past twice its budget.  A worker that crashes or EOFs
    mid-shard has its in-flight query requeued once onto a fresh
    worker; a second crash marks that query [Error] and the rest of
    the shard is still completed.  Results are reassembled in query
    order, so the report list is deterministic regardless of
    completion order. *)

module Verify = Minesweeper.Verify

val available_cores : unit -> int
(** Cores the runtime believes are available
    ([Domain.recommended_domain_count]). *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?support:bool ->
  Minesweeper.Encode.t ->
  Verify.Query.t list ->
  Verify.Report.t list
(** [run ~jobs ~timeout enc queries] answers every query and returns
    the reports in query order.

    [jobs] (default {!available_cores}) is the worker-process count;
    with [jobs <= 1] or a single query the suite runs in-process on one
    sequential session (no fork), which is also the mode the
    differential tests compare against.  [timeout] is a default
    per-query budget in seconds applied to queries that carry none.
    Queries are dealt round-robin to shards, so adjacent (often
    similar) queries spread across workers.

    [support] (default [false]) makes every worker session
    support-tracking (see {!Verify.Session.of_encoding}): [Verified]
    reports come back with their [support] device set — it is plain
    data, so it survives the marshalled worker boundary.  The serve
    daemon runs its query fan-out this way. *)

val portfolio :
  ?timeout:float ->
  ?strategies:(string * Smt.Solver.strategy) list ->
  ?share:bool ->
  ?extra:(string * (unit -> Verify.Report.t)) list ->
  Minesweeper.Encode.t ->
  Verify.Query.t ->
  Verify.Report.t
(** Race one query under [strategies] (default
    {!Minesweeper.Options.portfolio}), one process per strategy, and
    return the first decisive report — [Verified] or [Violated] — with
    its [strategy] field naming the winner; the losers are killed.
    Every strategy is sound and complete, so any winner's verdict is
    the query's verdict.  If no racer is decisive (all time out, crash
    or error), the first-completed indecisive report is returned.

    [extra] racers are non-solver methods raced alongside the strategy
    processes — one forked process per [(name, thunk)], the thunk's
    report treated like any racer's ([strategy] is set to [name], the
    [worker] field counts after the strategy racers).  The fault
    workload races the {!Faults} graph fast path this way: a thunk
    that cannot decide returns an [Error]/[Timeout] report, which can
    never win over a decisive solver racer — the race itself encodes
    the fall-back-to-SMT semantics.  The caller must ensure each
    thunk's decisive verdicts agree with the query's SMT semantics
    (the differential suite and [bench fault] gate this for the graph
    path).

    [share] (default [true]) turns the race into a cooperating
    portfolio: each racer exports its low-LBD (glue) learnt clauses at
    restarts, the parent rebroadcasts them, and the other racers attach
    them via the solver's import path.  Sharing is sound because every
    racer solves the {e same} CNF with identical variable numbering
    (all are forked from one parent after the encoding is built), so a
    clause learnt by one is a logical consequence of the shared input
    formula for all; under [--certify] each import is additionally
    RUP-checked by the importer and logged, keeping proof traces
    independently checkable (see {!Smt.Solver.import_clause}).  The
    exchange is best-effort — frames ride the atomic-pipe-write
    guarantee and are dropped rather than ever blocking the race.
    The winner's [clauses_imported]/[clauses_exported] stats record
    the traffic. *)
