type error = { line : int; col : int; token : string option; message : string }

exception Parse_error of error

let error_to_string ?file (e : error) =
  let pos =
    match file with
    | Some f -> Printf.sprintf "%s:%d" f e.line
    | None -> Printf.sprintf "line %d" e.line
  in
  let pos = if e.col > 0 then Printf.sprintf "%s:%d" pos e.col else pos in
  let near = match e.token with Some t -> Printf.sprintf " (near %S)" t | None -> "" in
  Printf.sprintf "%s: %s%s" pos e.message near

let fail ?(col = 0) ?token line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; col; token; message })) fmt

(* 1-based column of the first occurrence of [tok] in [raw]; 0 when not
   found (e.g. the line was rewritten by trimming). *)
let column_of raw tok =
  let n = String.length raw and m = String.length tok in
  let rec go i = if i + m > n then 0 else if String.sub raw i m = tok then i + 1 else go (i + 1) in
  if m = 0 then 0 else go 0

let tokens_of_line l =
  String.split_on_char ' ' l |> List.filter (fun t -> t <> "")

(* Accept both "10.0.0.0/24" and "10.0.0.0 255.255.255.0". *)
let prefix_of ~line addr rest =
  match Net.Prefix.of_string_opt addr with
  | Some p -> (p, rest)
  | None ->
    (match rest with
     | mask :: rest' ->
       (match (Net.Ipv4.of_string_opt addr, Net.Ipv4.of_string_opt mask) with
        | Some ip, Some m ->
          (* netmask to length; must be contiguous *)
          let rec len bit acc =
            if bit < 0 then acc
            else if (m lsr bit) land 1 = 1 then len (bit - 1) (acc + 1)
            else acc
          in
          let l = len 31 0 in
          let expected = if l = 0 then 0 else (Net.Ipv4.max lsr (32 - l)) lsl (32 - l) in
          if m <> expected then fail line "non-contiguous netmask %s" mask
          else (Net.Prefix.make ip l, rest')
        | _ -> fail line "bad prefix %s" addr)
     | [] -> fail line "bad prefix %s" addr)

(* Wildcard form used by access-lists: "172.10.1.0 0.0.0.255". *)
let wildcard_prefix ~line addr wild =
  match (Net.Ipv4.of_string_opt addr, Net.Ipv4.of_string_opt wild) with
  | Some ip, Some w ->
    let rec len bit acc =
      if bit < 0 then acc else if (w lsr bit) land 1 = 0 then len (bit - 1) (acc + 1) else acc
    in
    let l = len 31 0 in
    let expected = if l = 32 then 0 else Net.Ipv4.max lsr l in
    if w <> expected then fail line "non-contiguous wildcard %s" wild
    else Net.Prefix.make ip l
  | _ -> fail line "bad wildcard address %s %s" addr wild

let int_of ~line s what =
  match int_of_string_opt s with Some n -> n | None -> fail line "bad %s: %s" what s

let ip_of ~line s =
  match Net.Ipv4.of_string_opt s with Some ip -> ip | None -> fail line "bad address: %s" s

let action_of ~line = function
  | "permit" -> Ast.Permit
  | "deny" -> Ast.Deny
  | s -> fail line "expected permit/deny, got %s" s

(* -- builder state ------------------------------------------------------------ *)

type iface_b = {
  mutable ib_prefix : Net.Prefix.t option;
  mutable ib_ip : Net.Ipv4.t option;
  mutable ib_acl_in : string option;
  mutable ib_acl_out : string option;
  mutable ib_cost : int;
}

type context =
  | Top
  | In_interface of string * iface_b
  | In_bgp
  | In_ospf
  | In_route_map of string * int * Ast.action

type device_b = {
  db_name : string;
  mutable db_interfaces : Ast.interface list;
  mutable db_prefix_lists : (string * Ast.prefix_list_entry list) list;  (* reversed entries *)
  mutable db_route_maps : (string * Ast.rm_clause list) list;  (* reversed clauses *)
  mutable db_acls : (string * Ast.acl_entry list) list;
  mutable db_bgp : Ast.bgp_config option;
  mutable db_ospf : Ast.ospf_config option;
  mutable db_statics : Ast.static_route list;
  mutable db_rm_matches : Ast.match_cond list;  (* current clause, reversed *)
  mutable db_rm_sets : Ast.set_action list;
}

let new_device_b name =
  {
    db_name = name;
    db_interfaces = [];
    db_prefix_lists = [];
    db_route_maps = [];
    db_acls = [];
    db_bgp = None;
    db_ospf = None;
    db_statics = [];
    db_rm_matches = [];
    db_rm_sets = [];
  }

let append_assoc key value assoc =
  let rec go = function
    | [] -> [ (key, [ value ]) ]
    | (k, vs) :: rest when k = key -> (k, value :: vs) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let flush_context b ctx =
  match ctx with
  | Top | In_bgp | In_ospf -> ()
  | In_interface (name, ib) ->
    b.db_interfaces <-
      b.db_interfaces
      @ [
          {
            Ast.if_name = name;
            if_prefix = ib.ib_prefix;
            if_ip = ib.ib_ip;
            if_acl_in = ib.ib_acl_in;
            if_acl_out = ib.ib_acl_out;
            if_cost = ib.ib_cost;
          };
        ]
  | In_route_map (name, seq, action) ->
    let clause =
      {
        Ast.rm_seq = seq;
        rm_action = action;
        rm_matches = List.rev b.db_rm_matches;
        rm_sets = List.rev b.db_rm_sets;
      }
    in
    b.db_rm_matches <- [];
    b.db_rm_sets <- [];
    b.db_route_maps <- append_assoc name clause b.db_route_maps

let finish_device b =
  {
    Ast.dev_name = b.db_name;
    dev_interfaces = b.db_interfaces;
    dev_prefix_lists =
      List.map
        (fun (name, entries) -> { Ast.pl_name = name; pl_entries = List.rev entries })
        b.db_prefix_lists;
    dev_route_maps =
      List.map
        (fun (name, clauses) ->
          let sorted =
            List.sort (fun a b -> compare a.Ast.rm_seq b.Ast.rm_seq) (List.rev clauses)
          in
          { Ast.rm_name = name; rm_clauses = sorted })
        b.db_route_maps;
    dev_acls =
      List.map (fun (name, entries) -> { Ast.acl_name = name; acl_entries = List.rev entries })
        b.db_acls;
    dev_bgp = b.db_bgp;
    dev_ospf = b.db_ospf;
    dev_statics = List.rev b.db_statics;
  }

let require_bgp ~line b =
  match b.db_bgp with Some c -> c | None -> fail line "not inside router bgp"

let require_ospf ~line b =
  match b.db_ospf with Some c -> c | None -> fail line "not inside router ospf"

let update_neighbor bgp ip f =
  let found = ref false in
  let neighbors =
    List.map
      (fun (n : Ast.bgp_neighbor) ->
        if Net.Ipv4.equal n.nbr_ip ip then begin
          found := true;
          f n
        end
        else n)
      bgp.Ast.bgp_neighbors
  in
  let neighbors =
    if !found then neighbors
    else
      neighbors
      @ [
          f
            {
              Ast.nbr_ip = ip;
              nbr_remote_as = 0;
              nbr_rm_in = None;
              nbr_rm_out = None;
              nbr_rr_client = false;
            };
        ]
  in
  { bgp with Ast.bgp_neighbors = neighbors }

(* -- main dispatcher ------------------------------------------------------------ *)

type net_b = {
  mutable devices : Ast.device list;
  mutable links : (string * string * string * string) list;
}

let parse_lines text ~(on_unknown_hostname : [ `Implicit | `Error ]) =
  let net = { devices = []; links = [] } in
  let device = ref None in
  let ctx = ref Top in
  let get_device line =
    match !device with
    | Some b -> b
    | None ->
      (match on_unknown_hostname with
       | `Implicit ->
         let b = new_device_b "device" in
         device := Some b;
         b
       | `Error -> fail line "configuration before hostname")
  in
  let flush_device () =
    match !device with
    | None -> ()
    | Some b ->
      flush_context b !ctx;
      ctx := Top;
      net.devices <- net.devices @ [ finish_device b ];
      device := None
  in
  let handle line raw toks =
    let b () = get_device line in
    match (!ctx, toks) with
    | _, [] -> ()
    | _, "!" :: _ ->
      (match !device with
       | Some b ->
         flush_context b !ctx;
         ctx := Top
       | None -> ())
    | _, [ "hostname"; name ] ->
      flush_device ();
      device := Some (new_device_b name)
    | _, [ "link"; d1; i1; d2; i2 ] -> net.links <- (d1, i1, d2, i2) :: net.links
    | _, "interface" :: [ name ] ->
      let b = b () in
      flush_context b !ctx;
      ctx :=
        In_interface
          (name, { ib_prefix = None; ib_ip = None; ib_acl_in = None; ib_acl_out = None; ib_cost = 1 })
    | _, "router" :: "bgp" :: [ asn ] ->
      let b = b () in
      flush_context b !ctx;
      if b.db_bgp = None then b.db_bgp <- Some (Ast.empty_bgp (int_of ~line asn "ASN"));
      ctx := In_bgp
    | _, "router" :: "ospf" :: _ ->
      let b = b () in
      flush_context b !ctx;
      if b.db_ospf = None then b.db_ospf <- Some Ast.empty_ospf;
      ctx := In_ospf
    | _, [ "route-map"; name; act; seq ] ->
      let b = b () in
      flush_context b !ctx;
      ctx := In_route_map (name, int_of ~line seq "sequence number", action_of ~line act)
    | _, "ip" :: "prefix-list" :: name :: act :: rest ->
      let b = b () in
      let act = action_of ~line act in
      let entry =
        match rest with
        | pfx :: rest ->
          let p, rest = prefix_of ~line pfx rest in
          let rec opts ge le = function
            | "ge" :: n :: rest -> opts (Some (int_of ~line n "ge")) le rest
            | "le" :: n :: rest -> opts ge (Some (int_of ~line n "le")) rest
            | [] -> (ge, le)
            | t :: _ -> fail line "unexpected token %s in prefix-list" t
          in
          let ge, le = opts None None rest in
          { Ast.pl_action = act; pl_prefix = p; pl_ge = ge; pl_le = le }
        | [] ->
          (* bare permit/deny matches everything *)
          {
            Ast.pl_action = act;
            pl_prefix = Net.Prefix.make Net.Ipv4.zero 0;
            pl_ge = Some 0;
            pl_le = Some 32;
          }
      in
      b.db_prefix_lists <- append_assoc name entry b.db_prefix_lists
    | _, "access-list" :: name :: act :: "ip" :: rest ->
      let b = b () in
      let act = action_of ~line act in
      let dst =
        match rest with
        | [ "any"; "any" ] | [ "any" ] -> Net.Prefix.make Net.Ipv4.zero 0
        | [ "any"; addr; wild ] -> wildcard_prefix ~line addr wild
        | [ "any"; pfx ] ->
          let p, _ = prefix_of ~line pfx [] in
          p
        | [ addr; wild ] -> wildcard_prefix ~line addr wild
        | [ pfx ] ->
          let p, _ = prefix_of ~line pfx [] in
          p
        | _ -> fail line "unsupported access-list form"
      in
      b.db_acls <- append_assoc name { Ast.acl_action = act; acl_dst = dst } b.db_acls
    | _, "ip" :: "route" :: pfx :: rest ->
      let b = b () in
      let p, rest = prefix_of ~line pfx rest in
      let st =
        match rest with
        | [ hop ] ->
          (match Net.Ipv4.of_string_opt hop with
           | Some ip -> { Ast.st_prefix = p; st_next_hop = Some ip; st_interface = None }
           | None -> { Ast.st_prefix = p; st_next_hop = None; st_interface = Some hop })
        | _ -> fail line "bad static route"
      in
      b.db_statics <- st :: b.db_statics
    (* ---- interface context ---- *)
    | In_interface (_, ib), "ip" :: "address" :: addr :: rest ->
      (match Net.Prefix.of_string_opt addr with
       | Some _ ->
         (* slash notation carries both the host address and the length *)
         (match String.index_opt addr '/' with
          | Some i ->
            let host = String.sub addr 0 i in
            let len = int_of ~line (String.sub addr (i + 1) (String.length addr - i - 1)) "length" in
            let ip = ip_of ~line host in
            ib.ib_ip <- Some ip;
            ib.ib_prefix <- Some (Net.Prefix.make ip len)
          | None -> assert false)
       | None ->
         let ip = ip_of ~line addr in
         let p, _ = prefix_of ~line addr rest in
         ib.ib_ip <- Some ip;
         ib.ib_prefix <- Some p)
    | In_interface (_, ib), [ "ip"; "access-group"; name; dir ] ->
      (match dir with
       | "in" -> ib.ib_acl_in <- Some name
       | "out" -> ib.ib_acl_out <- Some name
       | _ -> fail line "expected in/out")
    | In_interface (_, ib), [ "ip"; "ospf"; "cost"; n ] -> ib.ib_cost <- int_of ~line n "cost"
    (* ---- bgp context ---- *)
    | In_bgp, [ "bgp"; "router-id"; ip ] ->
      let b = b () in
      let c = require_bgp ~line b in
      b.db_bgp <- Some { c with Ast.bgp_router_id = Some (ip_of ~line ip) }
    | In_bgp, [ "network"; pfx ] ->
      let b = b () in
      let c = require_bgp ~line b in
      let p, _ = prefix_of ~line pfx [] in
      b.db_bgp <- Some { c with Ast.bgp_networks = c.Ast.bgp_networks @ [ p ] }
    | In_bgp, [ "maximum-paths"; _n ] ->
      let b = b () in
      let c = require_bgp ~line b in
      b.db_bgp <- Some { c with Ast.bgp_multipath = true }
    | In_bgp, "aggregate-address" :: pfx :: rest ->
      let b = b () in
      let c = require_bgp ~line b in
      let p, rest = prefix_of ~line pfx rest in
      let summary_only = rest = [ "summary-only" ] in
      b.db_bgp <- Some { c with Ast.bgp_aggregates = c.Ast.bgp_aggregates @ [ (p, summary_only) ] }
    | In_bgp, "redistribute" :: proto :: rest ->
      let b = b () in
      let c = require_bgp ~line b in
      (match Ast.protocol_of_string proto with
       | None -> fail line "unknown protocol %s" proto
       | Some pr ->
         let metric =
           match rest with
           | [ "metric"; n ] -> Some (int_of ~line n "metric")
           | [] -> None
           | _ -> fail line "bad redistribute"
         in
         b.db_bgp <-
           Some
             {
               c with
               Ast.bgp_redistribute = c.Ast.bgp_redistribute @ [ { Ast.rd_from = pr; rd_metric = metric } ];
             })
    | In_bgp, "neighbor" :: ip :: rest ->
      let b = b () in
      let c = require_bgp ~line b in
      let ip = ip_of ~line ip in
      let c =
        match rest with
        | [ "remote-as"; asn ] ->
          let asn = int_of ~line asn "ASN" in
          update_neighbor c ip (fun n -> { n with Ast.nbr_remote_as = asn })
        | [ "route-map"; name; "in" ] -> update_neighbor c ip (fun n -> { n with Ast.nbr_rm_in = Some name })
        | [ "route-map"; name; "out" ] ->
          update_neighbor c ip (fun n -> { n with Ast.nbr_rm_out = Some name })
        | [ "route-reflector-client" ] ->
          update_neighbor c ip (fun n -> { n with Ast.nbr_rr_client = true })
        | _ -> fail line "bad neighbor command"
      in
      b.db_bgp <- Some c
    (* ---- ospf context ---- *)
    | In_ospf, "network" :: pfx :: rest ->
      let b = b () in
      let c = require_ospf ~line b in
      let p, rest = prefix_of ~line pfx rest in
      (match rest with
       | [] | [ "area"; _ ] ->
         b.db_ospf <- Some { c with Ast.ospf_networks = c.Ast.ospf_networks @ [ p ] }
       | _ -> fail line "bad ospf network")
    | In_ospf, "redistribute" :: proto :: rest ->
      let b = b () in
      let c = require_ospf ~line b in
      (match Ast.protocol_of_string proto with
       | None -> fail line "unknown protocol %s" proto
       | Some pr ->
         let metric =
           match rest with
           | [ "metric"; n ] -> Some (int_of ~line n "metric")
           | [] -> None
           | _ -> fail line "bad redistribute"
         in
         b.db_ospf <-
           Some
             {
               c with
               Ast.ospf_redistribute =
                 c.Ast.ospf_redistribute @ [ { Ast.rd_from = pr; rd_metric = metric } ];
             })
    (* ---- route-map context ---- *)
    | In_route_map _, [ "match"; "ip"; "address"; "prefix-list"; name ] ->
      (b ()).db_rm_matches <- Ast.Match_prefix_list name :: (b ()).db_rm_matches
    | In_route_map _, [ "match"; "community"; comm ] ->
      (match Net.Community.of_string_opt comm with
       | Some c -> (b ()).db_rm_matches <- Ast.Match_community c :: (b ()).db_rm_matches
       | None -> fail line "bad community %s" comm)
    | In_route_map _, [ "set"; "local-preference"; n ] ->
      (b ()).db_rm_sets <- Ast.Set_local_pref (int_of ~line n "local-preference") :: (b ()).db_rm_sets
    | In_route_map _, [ "set"; "metric"; n ] ->
      (b ()).db_rm_sets <- Ast.Set_metric (int_of ~line n "metric") :: (b ()).db_rm_sets
    | In_route_map _, [ "set"; "med"; n ] ->
      (b ()).db_rm_sets <- Ast.Set_med (int_of ~line n "med") :: (b ()).db_rm_sets
    | In_route_map _, "set" :: "community" :: comm :: rest ->
      (match Net.Community.of_string_opt comm with
       | Some c when rest = [] || rest = [ "additive" ] ->
         (b ()).db_rm_sets <- Ast.Set_community c :: (b ()).db_rm_sets
       | _ -> fail line "bad set community")
    | In_route_map _, [ "delete"; "community"; comm ] ->
      (match Net.Community.of_string_opt comm with
       | Some c -> (b ()).db_rm_sets <- Ast.Delete_community c :: (b ()).db_rm_sets
       | None -> fail line "bad community %s" comm)
    | _, tok :: _ ->
      fail line ~col:(column_of raw tok) ~token:tok "unknown or misplaced command"
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i l ->
      let trimmed = String.trim l in
      handle (i + 1) l (tokens_of_line trimmed))
    lines;
  flush_device ();
  net

(* Two interfaces of one device in the same subnet would pair up below
   as a link from the device to itself; reject the configuration with a
   lint-grade message instead. *)
let check_no_self_subnets devices =
  List.iter
    (fun (d : Ast.device) ->
      let rec go = function
        | [] -> ()
        | (i1 : Ast.interface) :: rest ->
          (match i1.Ast.if_prefix with
           | Some p1 ->
             (match
                List.find_opt
                  (fun (i2 : Ast.interface) ->
                    match i2.Ast.if_prefix with
                    | Some p2 -> Net.Prefix.equal p1 p2
                    | None -> false)
                  rest
              with
              | Some i2 ->
                fail 0 "device %s: interfaces %s and %s share subnet %s" d.Ast.dev_name
                  i1.Ast.if_name i2.Ast.if_name (Net.Prefix.to_string p1)
              | None -> ())
           | None -> ());
          go rest
      in
      go d.Ast.dev_interfaces)
    devices

let infer_topology devices =
  check_no_self_subnets devices;
  let topo = List.fold_left (fun t (d : Ast.device) -> Net.Topology.add_device t d.Ast.dev_name) Net.Topology.empty devices in
  (* Link interfaces that share a connected subnet but have different IPs. *)
  let endpoints =
    List.concat_map
      (fun (d : Ast.device) ->
        List.filter_map
          (fun (i : Ast.interface) ->
            match (i.Ast.if_prefix, i.Ast.if_ip) with
            | Some p, Some ip -> Some (d.Ast.dev_name, i.Ast.if_name, p, ip)
            | _ -> None)
          d.Ast.dev_interfaces)
      devices
  in
  let rec pair_up acc = function
    | [] -> acc
    | (d1, i1, p1, ip1) :: rest ->
      let matches =
        List.filter
          (fun (d2, _, p2, ip2) ->
            d2 <> d1 && Net.Prefix.equal p1 p2 && not (Net.Ipv4.equal ip1 ip2))
          rest
      in
      let acc =
        List.fold_left
          (fun acc (d2, i2, _, _) ->
            Net.Topology.add_link acc
              { Net.Topology.a = { device = d1; interface = i1 }; b = { device = d2; interface = i2 } })
          acc matches
      in
      pair_up acc rest
  in
  pair_up topo endpoints

let parse_device text =
  let net = parse_lines text ~on_unknown_hostname:`Implicit in
  match net.devices with
  | [ d ] -> d
  | [] -> fail 0 "empty configuration"
  | _ -> fail 0 "multiple devices in parse_device"

let parse_network text =
  let net = parse_lines text ~on_unknown_hostname:`Error in
  let topo = infer_topology net.devices in
  let topo =
    List.fold_left
      (fun t (d1, i1, d2, i2) ->
        Net.Topology.add_link t
          { Net.Topology.a = { device = d1; interface = i1 }; b = { device = d2; interface = i2 } })
      topo net.links
  in
  { Ast.net_devices = net.devices; net_topology = topo }
