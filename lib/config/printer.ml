let add = Buffer.add_string

let addf b fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt

let action_str = function Ast.Permit -> "permit" | Ast.Deny -> "deny"

let print_interface b (i : Ast.interface) =
  addf b "interface %s\n" i.if_name;
  (match (i.if_ip, i.if_prefix) with
   | Some ip, Some p -> addf b " ip address %s/%d\n" (Net.Ipv4.to_string ip) (Net.Prefix.length p)
   | _ -> ());
  (match i.if_acl_in with Some a -> addf b " ip access-group %s in\n" a | None -> ());
  (match i.if_acl_out with Some a -> addf b " ip access-group %s out\n" a | None -> ());
  if i.if_cost <> 1 then addf b " ip ospf cost %d\n" i.if_cost;
  add b "!\n"

let print_prefix_list b (pl : Ast.prefix_list) =
  List.iter
    (fun (e : Ast.prefix_list_entry) ->
      addf b "ip prefix-list %s %s %s" pl.pl_name (action_str e.pl_action)
        (Net.Prefix.to_string e.pl_prefix);
      (match e.pl_ge with Some n -> addf b " ge %d" n | None -> ());
      (match e.pl_le with Some n -> addf b " le %d" n | None -> ());
      add b "\n")
    pl.pl_entries

let print_acl b (a : Ast.acl) =
  List.iter
    (fun (e : Ast.acl_entry) ->
      if Net.Prefix.length e.acl_dst = 0 then
        addf b "access-list %s %s ip any any\n" a.acl_name (action_str e.acl_action)
      else
        addf b "access-list %s %s ip any %s\n" a.acl_name (action_str e.acl_action)
          (Net.Prefix.to_string e.acl_dst))
    a.acl_entries

let print_route_map b (rm : Ast.route_map) =
  List.iter
    (fun (cl : Ast.rm_clause) ->
      addf b "route-map %s %s %d\n" rm.rm_name (action_str cl.rm_action) cl.rm_seq;
      List.iter
        (function
          | Ast.Match_prefix_list n -> addf b " match ip address prefix-list %s\n" n
          | Ast.Match_community c -> addf b " match community %s\n" (Net.Community.to_string c))
        cl.rm_matches;
      List.iter
        (function
          | Ast.Set_local_pref n -> addf b " set local-preference %d\n" n
          | Ast.Set_metric n -> addf b " set metric %d\n" n
          | Ast.Set_med n -> addf b " set med %d\n" n
          | Ast.Set_community c -> addf b " set community %s\n" (Net.Community.to_string c)
          | Ast.Delete_community c -> addf b " delete community %s\n" (Net.Community.to_string c))
        cl.rm_sets;
      add b "!\n")
    rm.rm_clauses

let print_bgp b (c : Ast.bgp_config) =
  addf b "router bgp %d\n" c.bgp_asn;
  (match c.bgp_router_id with
   | Some ip -> addf b " bgp router-id %s\n" (Net.Ipv4.to_string ip)
   | None -> ());
  if c.bgp_multipath then add b " maximum-paths 4\n";
  List.iter (fun p -> addf b " network %s\n" (Net.Prefix.to_string p)) c.bgp_networks;
  List.iter
    (fun (p, summary) ->
      addf b " aggregate-address %s%s\n" (Net.Prefix.to_string p)
        (if summary then " summary-only" else ""))
    c.bgp_aggregates;
  List.iter
    (fun (r : Ast.redistribute) ->
      addf b " redistribute %s%s\n"
        (Ast.protocol_to_string r.rd_from)
        (match r.rd_metric with Some m -> Printf.sprintf " metric %d" m | None -> ""))
    c.bgp_redistribute;
  List.iter
    (fun (n : Ast.bgp_neighbor) ->
      let ip = Net.Ipv4.to_string n.nbr_ip in
      addf b " neighbor %s remote-as %d\n" ip n.nbr_remote_as;
      (match n.nbr_rm_in with Some rm -> addf b " neighbor %s route-map %s in\n" ip rm | None -> ());
      (match n.nbr_rm_out with
       | Some rm -> addf b " neighbor %s route-map %s out\n" ip rm
       | None -> ());
      if n.nbr_rr_client then addf b " neighbor %s route-reflector-client\n" ip)
    c.bgp_neighbors;
  add b "!\n"

let print_ospf b (c : Ast.ospf_config) =
  add b "router ospf 1\n";
  List.iter (fun p -> addf b " network %s area 0\n" (Net.Prefix.to_string p)) c.ospf_networks;
  List.iter
    (fun (r : Ast.redistribute) ->
      addf b " redistribute %s%s\n"
        (Ast.protocol_to_string r.rd_from)
        (match r.rd_metric with Some m -> Printf.sprintf " metric %d" m | None -> ""))
    c.ospf_redistribute;
  add b "!\n"

let print_static b (s : Ast.static_route) =
  addf b "ip route %s %s\n"
    (Net.Prefix.to_string s.st_prefix)
    (match (s.st_next_hop, s.st_interface) with
     | Some ip, _ -> Net.Ipv4.to_string ip
     | None, Some i -> i
     | None, None -> "Null0")

let device_to_string (d : Ast.device) =
  let b = Buffer.create 1024 in
  addf b "hostname %s\n!\n" d.dev_name;
  List.iter (print_interface b) d.dev_interfaces;
  List.iter (print_prefix_list b) d.dev_prefix_lists;
  List.iter (print_acl b) d.dev_acls;
  List.iter (print_route_map b) d.dev_route_maps;
  (match d.dev_bgp with Some c -> print_bgp b c | None -> ());
  (match d.dev_ospf with Some c -> print_ospf b c | None -> ());
  List.iter (print_static b) d.dev_statics;
  add b "!\n";
  Buffer.contents b

let network_to_string (n : Ast.network) =
  let b = Buffer.create 4096 in
  List.iter (fun d -> add b (device_to_string d)) n.net_devices;
  (* Emit explicit links so the round trip does not depend on inference;
     canonical endpoint order and sorting make the output a function of
     the link set, not of construction order. *)
  let canonical (l : Net.Topology.link) =
    if (l.a.device, l.a.interface) <= (l.b.device, l.b.interface) then l
    else { Net.Topology.a = l.b; b = l.a }
  in
  List.iter
    (fun (l : Net.Topology.link) ->
      addf b "link %s %s %s %s\n" l.a.device l.a.interface l.b.device l.b.interface)
    (List.sort compare (List.map canonical (Net.Topology.links n.net_topology)));
  Buffer.contents b

let count_config_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && l <> "!")
  |> List.length

let config_lines d = count_config_lines (device_to_string d)
let network_config_lines n = count_config_lines (network_to_string n)
