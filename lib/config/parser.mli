(** Parser for the Cisco-flavoured configuration language.

    The language is line-oriented.  Top-level stanzas are introduced by
    [hostname], [interface], [router bgp], [router ospf], [route-map],
    and single-line commands ([ip prefix-list], [access-list],
    [ip route]).  Lines consisting of ['!'] or blanks are separators.

    A multi-device file contains several [hostname] stanzas; links
    between devices are inferred from interfaces sharing a subnet, or
    declared explicitly with [link <dev1> <if1> <dev2> <if2>] lines. *)

type error = {
  line : int;  (** 1-based; 0 when the error is not tied to a line *)
  col : int;  (** 1-based column of the offending token; 0 when unknown *)
  token : string option;  (** the offending token, when identified *)
  message : string;
}

exception Parse_error of error

val error_to_string : ?file:string -> error -> string
(** ["net.cfg:12:4: unknown or misplaced command (near \"bananas\")"];
    without [?file], ["line 12:4: ..."]. *)

val parse_device : string -> Ast.device
(** Parse a single device configuration.
    @raise Parse_error on malformed input. *)

val parse_network : string -> Ast.network
(** Parse a multi-device configuration file; topology from explicit
    [link] lines plus subnet inference. *)

val infer_topology : Ast.device list -> Net.Topology.t
(** Link two devices whenever they own distinct addresses inside the
    same connected subnet.
    @raise Parse_error if two interfaces of one device share a subnet
    (that would be a self-link). *)
