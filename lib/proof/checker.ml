(* An independent RUP/DRAT trace checker.

   Deliberately shares nothing with the CDCL solver beyond the literal
   convention (variable [v] is literal [2*v] positively, [2*v+1]
   negatively) and the [Smt.Sat.proof_step] type itself.  Propagation
   here is the naive counting scheme over occurrence lists — no watched
   literals, no activity, no learning — so a bug in the solver's clever
   machinery cannot hide in the checker.  The only concessions to speed
   are representational: occurrence lists are flat integer vectors, and
   entries of deleted clauses are compacted away once they outnumber
   half the live set.

   The checker replays the trace front to back, maintaining an "active
   set" of clauses that mirrors the solver's database:
   - [P_input] clauses are admitted on trust (their provenance — that
     they encode the original formula — is the caller's concern);
   - [P_rup] clauses must pass reverse unit propagation: asserting the
     negation of every literal and propagating over the active set must
     yield a conflict;
   - [P_lemma] clauses are handed to the caller's theory callback for
     re-justification and rejected if it declines;
   - [P_pure l] requires that no alive clause contains [lit_neg l]
     (a width-0 RAT check);
   - [P_delete] must name a clause alive in the active set, compared as
     a sorted literal set, and kills one copy of it.

   Root units (alive unit clauses and pure literals) are propagated
   persistently; deletions never retract them, which is sound for
   refutation checking (the active set only shrinks, so any conflict
   derived remains derivable). *)

type step = Smt.Sat.proof_step

type goal = Empty | Assumptions of int list

type summary = {
  steps : int;
  inputs : int;
  rup_checked : int;
  lemmas_checked : int;
  pures : int;
  deletions : int;
}

let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0
let lit_neg l = l lxor 1

type cls = {
  lits : int array;  (* sorted, duplicate-free *)
  mutable alive : bool;
  mutable n_false : int;  (* literals currently assigned false *)
}

(* Growable flat integer vector: occurrence lists and the propagation
   stack, without a cons cell per entry. *)
type ivec = { mutable a : int array; mutable n : int }

let iv_make () = { a = Array.make 4 0; n = 0 }

let iv_push v x =
  if v.n = Array.length v.a then begin
    let b = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 b 0 v.n;
    v.a <- b
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

type t = {
  mutable value : int array;  (* per variable: 0 unassigned, 1 true, -1 false *)
  mutable occ : ivec array;  (* per literal: ids of clauses containing it *)
  mutable clauses : cls array;
  mutable n_clauses : int;
  mutable n_live : int;
  mutable n_dead : int;  (* deleted since the last occurrence compaction *)
  index : (int list, int list) Hashtbl.t;  (* canonical lits -> ids *)
  mutable root_queue : int list;  (* literals awaiting persistent propagation *)
  mutable root_conflict : bool;
}

let create () =
  {
    value = Array.make 64 0;
    occ = Array.init 128 (fun _ -> iv_make ());
    clauses = Array.make 64 { lits = [||]; alive = false; n_false = 0 };
    n_clauses = 0;
    n_live = 0;
    n_dead = 0;
    index = Hashtbl.create 1024;
    root_queue = [];
    root_conflict = false;
  }

let ensure_var t v =
  let n = Array.length t.value in
  if v >= n then begin
    let m = max (v + 1) (2 * n) in
    let value = Array.make m 0 in
    Array.blit t.value 0 value 0 n;
    t.value <- value;
    let old = t.occ in
    let occ = Array.init (2 * m) (fun i -> if i < Array.length old then old.(i) else iv_make ()) in
    t.occ <- occ
  end

let lit_value t l =
  let v = t.value.(lit_var l) in
  if lit_sign l then v else -v

exception Conflict

(* Make [l] true, bumping the false-counters of every alive clause
   containing [lit_neg l]; newly-unit clauses push their remaining
   literal onto [work].  The walk always completes before a conflict is
   raised, so an undo that decrements the same occurrence list is
   exact.  Dead clauses are skipped on both sides: they can never be
   consulted again, and no deletion happens between an assignment and
   its undo. *)
let assign t undo work l =
  match lit_value t l with
  | 1 -> ()
  | -1 -> raise Conflict
  | _ ->
    t.value.(lit_var l) <- (if lit_sign l then 1 else -1);
    (match undo with Some r -> r := l :: !r | None -> ());
    let conflict = ref false in
    let o = t.occ.(lit_neg l) in
    for i = 0 to o.n - 1 do
      let c = t.clauses.(o.a.(i)) in
      if c.alive then begin
        c.n_false <- c.n_false + 1;
        let len = Array.length c.lits in
        if c.n_false >= len then conflict := true
        else if c.n_false = len - 1 then begin
          (* exactly one literal not (yet) false: propagate it unless
             the clause is already satisfied *)
          let unassigned = ref (-1) in
          let satisfied = ref false in
          Array.iter
            (fun x ->
              match lit_value t x with
              | 1 -> satisfied := true
              | 0 -> unassigned := x
              | _ -> ())
            c.lits;
          if (not !satisfied) && !unassigned >= 0 then iv_push work !unassigned
        end
      end
    done;
    if !conflict then raise Conflict

(* Propagate [roots] (and their consequences) to fixpoint.  Returns
   [true] when a conflict arises.  Temporary assignments are recorded
   in [undo]. *)
let propagate t undo roots =
  let work = iv_make () in
  List.iter (fun l -> iv_push work l) roots;
  match
    while work.n > 0 do
      work.n <- work.n - 1;
      assign t undo work work.a.(work.n)
    done
  with
  | () -> false
  | exception Conflict -> true

let undo_all t undo =
  List.iter
    (fun l ->
      t.value.(lit_var l) <- 0;
      let o = t.occ.(lit_neg l) in
      for i = 0 to o.n - 1 do
        let c = t.clauses.(o.a.(i)) in
        if c.alive then c.n_false <- c.n_false - 1
      done)
    undo

(* Persistently propagate any pending root units. *)
let flush_root t =
  if not t.root_conflict then begin
    let roots = t.root_queue in
    t.root_queue <- [];
    if roots <> [] && propagate t None roots then t.root_conflict <- true
  end

let canonical lits = List.sort_uniq compare (Array.to_list lits)

(* Admit a clause into the active set (after whatever justification its
   step kind demanded). *)
let add_clause t lits =
  let key = canonical lits in
  let arr = Array.of_list key in
  List.iter (fun l -> ensure_var t (lit_var l)) key;
  let id = t.n_clauses in
  if id >= Array.length t.clauses then begin
    let grown = Array.make (max 64 (2 * id)) { lits = [||]; alive = false; n_false = 0 } in
    Array.blit t.clauses 0 grown 0 id;
    t.clauses <- grown
  end;
  let n_false = Array.fold_left (fun n l -> if lit_value t l = -1 then n + 1 else n) 0 arr in
  let c = { lits = arr; alive = true; n_false } in
  t.clauses.(id) <- c;
  t.n_clauses <- id + 1;
  t.n_live <- t.n_live + 1;
  Array.iter (fun l -> iv_push t.occ.(l) id) arr;
  Hashtbl.replace t.index key (id :: (try Hashtbl.find t.index key with Not_found -> []));
  let len = Array.length arr in
  if len = 0 || n_false = len then t.root_conflict <- true
  else if n_false = len - 1 then begin
    (* unit under the root assignment (unless already satisfied) *)
    let unassigned = ref (-1) in
    let satisfied = ref false in
    Array.iter
      (fun x ->
        match lit_value t x with 1 -> satisfied := true | 0 -> unassigned := x | _ -> ())
      arr;
    if (not !satisfied) && !unassigned >= 0 then
      t.root_queue <- !unassigned :: t.root_queue
  end

(* Reverse unit propagation: the clause is entailed if asserting its
   negation conflicts under propagation. *)
let rup_entailed t lits =
  flush_root t;
  t.root_conflict
  ||
  let undo = ref [] in
  let conflict = propagate t (Some undo) (List.map lit_neg (canonical lits)) in
  undo_all t !undo;
  conflict

(* Drop dead ids from the occurrence lists once they outnumber half the
   live set: long traces delete thousands of clauses, and every
   propagation otherwise keeps walking their corpses. *)
let compact_occ t =
  Array.iter
    (fun o ->
      let j = ref 0 in
      for i = 0 to o.n - 1 do
        let id = o.a.(i) in
        if t.clauses.(id).alive then begin
          o.a.(!j) <- id;
          incr j
        end
      done;
      o.n <- !j)
    t.occ;
  t.n_dead <- 0

let delete_clause t lits =
  let key = canonical lits in
  match Hashtbl.find_opt t.index key with
  | None -> false
  | Some ids ->
    let rec kill = function
      | [] -> false
      | id :: rest ->
        let c = t.clauses.(id) in
        if c.alive then begin
          c.alive <- false;
          t.n_live <- t.n_live - 1;
          t.n_dead <- t.n_dead + 1;
          if t.n_dead > 256 && t.n_dead * 2 > t.n_live then compact_occ t;
          true
        end
        else kill rest
    in
    kill ids

let pure_ok t l =
  ensure_var t (lit_var l);
  flush_root t;
  t.root_conflict
  ||
  let o = t.occ.(lit_neg l) in
  let impure = ref false in
  for i = 0 to o.n - 1 do
    if t.clauses.(o.a.(i)).alive then impure := true
  done;
  not !impure

let check_goal t goal =
  flush_root t;
  if t.root_conflict then Ok ()
  else
    match goal with
    | Empty -> Error "trace does not derive the empty clause"
    | Assumptions [] -> Error "trace does not derive the empty clause"
    | Assumptions lits ->
      let undo = ref [] in
      let conflict = propagate t (Some undo) lits in
      undo_all t !undo;
      if conflict then Ok ()
      else Error "assumptions are not refuted by propagation over the final active set"

let pp_clause lits =
  "["
  ^ String.concat " "
      (List.map
         (fun l -> (if lit_sign l then "" else "-") ^ string_of_int (lit_var l))
         (Array.to_list lits))
  ^ "]"

let run ?(theory = fun (_ : int array) -> Error "no theory checker provided") ~goal steps =
  let t = create () in
  let inputs = ref 0 in
  let rups = ref 0 in
  let lemmas = ref 0 in
  let pures = ref 0 in
  let dels = ref 0 in
  let n = ref 0 in
  let err = ref None in
  List.iter
    (fun step ->
      if !err = None then begin
        incr n;
        match (step : step) with
        | Smt.Sat.P_input lits ->
          incr inputs;
          add_clause t lits
        | Smt.Sat.P_rup lits ->
          if rup_entailed t lits then begin
            incr rups;
            add_clause t lits
          end
          else
            err :=
              Some (Printf.sprintf "step %d: clause %s is not RUP" !n (pp_clause lits))
        | Smt.Sat.P_lemma lits -> (
          match theory lits with
          | Ok () ->
            incr lemmas;
            add_clause t lits
          | Error msg ->
            err :=
              Some
                (Printf.sprintf "step %d: theory lemma %s rejected: %s" !n
                   (pp_clause lits) msg))
        | Smt.Sat.P_pure l ->
          if pure_ok t l then begin
            incr pures;
            add_clause t [| l |]
          end
          else
            err :=
              Some
                (Printf.sprintf "step %d: literal %s is not pure in the active set" !n
                   (pp_clause [| l |]))
        | Smt.Sat.P_delete lits ->
          (* propagate pending root units while the clause is still
             alive: the solver may have derived a persistent literal
             through this very clause just before deleting it as
             satisfied, and a lazy flush after the deletion would lose
             that derivation *)
          flush_root t;
          if delete_clause t lits then incr dels
          else
            err :=
              Some
                (Printf.sprintf "step %d: deletion of %s, which is not in the active set"
                   !n (pp_clause lits))
      end)
    steps;
  match !err with
  | Some msg -> Error msg
  | None -> (
    match check_goal t goal with
    | Error msg -> Error msg
    | Ok () ->
      Ok
        {
          steps = !n;
          inputs = !inputs;
          rup_checked = !rups;
          lemmas_checked = !lemmas;
          pures = !pures;
          deletions = !dels;
        })
