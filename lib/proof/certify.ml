(* Certification glue between the SMT solver and the independent
   checker: theory-lemma revalidation against the standalone [Idl] and
   [Simplex] procedures, trace checking for Unsat verdicts, and model
   evaluation for Sat verdicts. *)

module Sat = Smt.Sat
module Solver = Smt.Solver
module Cnf = Smt.Cnf
module Model = Smt.Model

(* A lemma clause l1 ∨ ... ∨ ln over theory-atom variables is valid iff
   the conjunction of the negated literals is theory-infeasible.  Each
   literal maps through the solver's atom registry:
   - positive literal on an IDL atom [x - y <= k]: negated, the atom is
     false, i.e. [y - x <= -k - 1];
   - negative literal: the atom holds, [x - y <= k];
   and dually for rational atoms (assert / negate in the simplex).
   Lemmas mixing theories, or mentioning a variable that is no theory
   atom, are rejected — the solver never produces them. *)
let theory_revalidator solver =
  let int_atoms = Hashtbl.create 256 in
  List.iter
    (fun ((v, a) : int * Cnf.int_atom) -> Hashtbl.replace int_atoms v a)
    (Solver.int_atom_table solver);
  let rat_list = Array.of_list (Solver.rat_atom_table solver) in
  let rat_atoms = Hashtbl.create 64 in
  Array.iteri
    (fun i ((v, _) : int * Cnf.rat_atom) -> Hashtbl.replace rat_atoms v i)
    rat_list;
  let zero = Solver.num_int_vars solver in
  let n_rat = Solver.num_rat_vars solver in
  (* The simplex tableau over every registered rational atom, built
     lazily (most networks have no rational atoms at all). *)
  let simplex = ref None in
  let get_simplex () =
    match !simplex with
    | Some s -> s
    | None ->
      let s =
        Smt.Simplex.create ~nvars:n_rat
          (Array.map
             (fun ((_, a) : int * Cnf.rat_atom) : Smt.Simplex.atom ->
               { coeffs = a.rcoeffs; bound = a.rbound })
             rat_list)
      in
      simplex := Some s;
      s
  in
  fun (lits : int array) ->
    let idl_constrs = ref [] in
    let rat_assertions = ref [] in
    let unmapped = ref None in
    Array.iter
      (fun l ->
        let v = Sat.lit_var l in
        match Hashtbl.find_opt int_atoms v with
        | Some a ->
          let x = if a.Cnf.ix < 0 then zero else a.Cnf.ix in
          let y = if a.Cnf.iy < 0 then zero else a.Cnf.iy in
          let c =
            if Sat.lit_sign l then
              (* negated positive literal: atom false, y - x <= -k-1 *)
              { Smt.Idl.x = y; y = x; k = -a.Cnf.ik - 1; tag = 0 }
            else { Smt.Idl.x; y; k = a.Cnf.ik; tag = 0 }
          in
          idl_constrs := c :: !idl_constrs
        | None -> (
          match Hashtbl.find_opt rat_atoms v with
          | Some i ->
            let _, a = rat_list.(i) in
            let assertion =
              if Sat.lit_sign l then (i, false, not a.Cnf.rstrict)
              else (i, true, a.Cnf.rstrict)
            in
            rat_assertions := assertion :: !rat_assertions
          | None -> unmapped := Some v))
      lits;
    match (!unmapped, !idl_constrs, !rat_assertions) with
    | Some v, _, _ ->
      Error (Printf.sprintf "literal over variable %d is not a theory atom" v)
    | None, [], [] -> Error "empty lemma"
    | None, _ :: _, _ :: _ -> Error "lemma mixes integer and rational atoms"
    | None, (_ :: _ as cs), [] -> (
      match Smt.Idl.check ~nvars:(zero + 1) cs with
      | Error _ -> Ok ()
      | Ok _ -> Error "negated lemma is difference-logic satisfiable")
    | None, [], (_ :: _ as asserts) -> (
      match Smt.Simplex.check (get_simplex ()) ~assertions:asserts with
      | Error _ -> Ok ()
      | Ok _ -> Error "negated lemma is simplex-satisfiable")

type unsat_summary = {
  trace_steps : int;
  clauses : int;  (** derived clauses confirmed by reverse unit propagation *)
  lemmas : int;  (** theory lemmas re-justified by standalone solvers *)
}

let unsat solver =
  if not (Solver.certify_enabled solver) then
    Error "solver was created without ~certify:true; no trace was recorded"
  else begin
    let goal =
      match Solver.last_assumption_lits solver with
      | [] -> Checker.Empty
      | lits -> Checker.Assumptions lits
    in
    match Checker.run ~theory:(theory_revalidator solver) ~goal (Solver.proof solver) with
    | Error _ as e -> e
    | Ok (s : Checker.summary) ->
      Ok { trace_steps = s.steps; clauses = s.rup_checked; lemmas = s.lemmas_checked }
  end

(* A Sat verdict is certified by re-evaluating the original formula —
   the terms as asserted, not their CNF — under the extracted model with
   the reference evaluator. *)
let model solver m =
  if not (Solver.certify_enabled solver) then
    Error "solver was created without ~certify:true; assertions were not recorded"
  else begin
    let bad = ref None in
    let check_true what t =
      if !bad = None && not (Model.eval_bool m t) then bad := Some what
    in
    List.iter (check_true "an asserted term") (Solver.asserted_terms solver);
    List.iter (check_true "an assumption") (Solver.last_assumption_terms solver);
    List.iter
      (fun (guard, body) ->
        if !bad = None && Model.eval_bool m guard && not (Model.eval_bool m body) then
          bad := Some "a guarded assertion (guard true, body false)")
      (Solver.implied_terms solver);
    match !bad with
    | None -> Ok ()
    | Some what -> Error (Printf.sprintf "model does not satisfy %s" what)
  end
