(** Certification of SMT verdicts against independent machinery.

    An Unsat verdict is certified by replaying the solver's DRAT-style
    trace through {!Checker} (naive unit propagation, nothing shared
    with the CDCL core) with every theory lemma re-justified by the
    standalone [Idl] / [Simplex] decision procedures.  A Sat verdict is
    certified by re-evaluating the original asserted terms under the
    extracted model with the reference evaluator.

    Both entry points require the solver to have been created with
    [Solver.create ~certify:true]. *)

val theory_revalidator : Smt.Solver.t -> int array -> (unit, string) result
(** A {!Checker.run} [theory] callback for the given solver's atom
    registries: a lemma clause is accepted iff the conjunction of its
    negated literals is infeasible for the standalone theory solver
    (difference-logic negative-cycle search, or a fresh simplex). *)

type unsat_summary = {
  trace_steps : int;
  clauses : int;  (** derived clauses confirmed by reverse unit propagation *)
  lemmas : int;  (** theory lemmas re-justified by standalone solvers *)
}

val unsat : Smt.Solver.t -> (unsat_summary, string) result
(** Certify the most recent [Unsat] answer of [solver]: the recorded
    trace must derive the empty clause, or refute the check's
    assumption literals by propagation. *)

val model : Smt.Solver.t -> Smt.Model.t -> (unit, string) result
(** Certify a [Sat] answer: every asserted term and every assumption of
    the last check must evaluate to true under [m], and every
    [assert_implied] guard that is true must have a true body. *)
