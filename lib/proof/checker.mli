(** An independent RUP/DRAT proof-trace checker.

    Replays an {!Smt.Sat.proof_step} trace against nothing but naive
    unit propagation over occurrence lists — no watched literals, no
    learning, no code shared with the CDCL solver — and confirms that
    the trace derives a refutation:

    - [P_input] clauses are admitted on trust (the caller owns their
      provenance);
    - [P_rup] clauses must be entailed by reverse unit propagation over
      the clauses admitted so far;
    - [P_lemma] clauses are re-justified by the [theory] callback
      (typically a standalone theory-solver run, see {!Certify});
    - [P_pure l] is accepted only when no alive clause contains the
      negation of [l];
    - [P_delete] must name an alive clause (compared as a sorted
      literal set) and removes one copy.

    The checker is falsifiable by construction: a bogus RUP step, a
    deletion of an absent clause, a use of a deleted clause, or a
    mis-justified lemma each make {!run} return [Error]. *)

type goal =
  | Empty  (** the trace must derive the empty clause *)
  | Assumptions of int list
      (** the given literals, asserted on top of the final active set,
          must be refuted by propagation (or the empty clause must have
          been derived outright) *)

type summary = {
  steps : int;  (** trace steps replayed *)
  inputs : int;
  rup_checked : int;  (** derived clauses confirmed by propagation *)
  lemmas_checked : int;  (** theory lemmas re-justified *)
  pures : int;
  deletions : int;
}

val run :
  ?theory:(int array -> (unit, string) result) ->
  goal:goal ->
  Smt.Sat.proof_step list ->
  (summary, string) result
(** Replay a trace.  [theory] re-justifies [P_lemma] steps; its default
    rejects every lemma, so purely propositional traces need not supply
    it.  [Error msg] pinpoints the first failing step. *)
