# Convenience targets; `make check` is the full local gate: build,
# test suite, and a lint pass over every example configuration.

.PHONY: all build test lint check clean

all: build

build:
	dune build

test: build
	dune runtest

lint: build
	@for f in examples/configs/*.cfg; do \
	  echo "lint $$f"; \
	  dune exec bin/minesweeper_cli.exe -- lint $$f || exit 1; \
	done

check: build test lint

clean:
	dune clean
