# Convenience targets; `make check` is the full local gate: build,
# test suite, a lint pass over every example configuration, and the
# batch-verification smoke benchmark (one incremental session must
# beat N fresh solvers with identical verdicts).

.PHONY: all build test lint bench-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

lint: build
	@for f in examples/configs/*.cfg; do \
	  echo "lint $$f"; \
	  dune exec bin/minesweeper_cli.exe -- lint $$f || exit 1; \
	done

bench-smoke: build
	dune exec bench/main.exe -- batch --smoke

check: build test lint bench-smoke

clean:
	dune clean
