# Convenience targets; `make check` is the full local gate: build,
# test suite, a lint pass over every example configuration, the
# batch-verification smoke benchmark (one incremental session must
# beat N fresh solvers with identical verdicts), the parallel
# smoke benchmark (sharded -j2 run must agree with the sequential
# session on every verdict, and beat it by >=1.3x when the machine
# has at least 2 cores), the solver-ablation smoke benchmark
# (all 2^4-grid corners must give identical verdicts; the all-on
# speedup is additionally gated when the baseline suite is slow
# enough for the ratio to be signal rather than timer noise, and the
# restart-mode/rephasing strategy grid must agree with the feature
# baseline everywhere), and
# the certification smoke benchmark (every verdict of the enterprise
# and fattree suites must carry a positive certificate — UNSAT proofs
# replayed through the independent checker, SAT models evaluated and
# simulated — with zero Uncertified verdicts and verdict agreement
# against the uncertified pass), and the symmetry-scale smoke
# benchmark (the quotient encoding must agree with the full encoding
# on every fat-tree point both modes ran — as must Ema_lbd vs Luby
# restarts and the clause-sharing portfolio vs the sharing-off race —
# with the speedup gated above a noise floor only where symmetry
# classes actually collapse devices; clause sharing must demonstrably
# fire on the full encoding, the winner importing at least one
# clause; full-mode points past the wall-clock budget are skipped
# with an explicit label, mirroring the parallel bench's
# skipped_low_cores convention), and the arena smoke benchmark (the
# SAT core's steady-state propagation loop must allocate ~0 minor
# words per propagation, all-off and all-on must agree on the hardest
# query with all-on at least 2x faster above a noise floor, and the
# arena-compaction path must actually run under reduction stress),
# and the serve smoke benchmark (the delta daemon absorbing config
# churn via core-disjoint verdict replay must agree with cold full
# re-verification on every step, show non-zero replay and cache-hit
# counters, and be at least 2x faster than the cold path when the
# diff touches <= 20% of the devices), and the fault smoke benchmark
# (the hybrid graph-min-cut/SMT race must agree with the two-copy SMT
# encoding alone on every <=k-failure query of both generators, the
# graph fast path must decide at least one query, and the hybrid must
# be at least 2x faster than SMT on the graph-decided subset above a
# noise floor).

.PHONY: all build test lint fuzz coverage bench-smoke bench-parallel-smoke bench-solver-smoke certify-smoke bench-scale-smoke bench-arena-smoke bench-serve-smoke bench-fault-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

lint: build
	@for f in examples/configs/*.cfg; do \
	  echo "lint $$f"; \
	  dune exec bin/minesweeper_cli.exe -- lint $$f || exit 1; \
	done

# Long-budget differential fuzzing: QCheck mutations of generated
# enterprise/fattree configurations, verified with --certify and
# cross-checked against the concrete simulator.  `dune runtest` runs
# the same property with a small bounded sample; this raises it.
fuzz: build
	MS_FUZZ_COUNT=$${MS_FUZZ_COUNT:-60} dune exec test/test_fuzz.exe

# Line/branch coverage of the test suite via bisect_ppx.  The library
# stanzas carry `(instrumentation (backend bisect_ppx))`, which is
# inert unless dune is invoked with --instrument-with, so the target
# degrades honestly to a skip message on containers without the
# package installed (this repo's CI image does not ship it).
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  mkdir -p _coverage && rm -f _coverage/*.coverage; \
	  BISECT_FILE=$$(pwd)/_coverage/bisect dune runtest --instrument-with bisect_ppx --force && \
	  bisect-ppx-report html --coverage-path _coverage && \
	  bisect-ppx-report summary --coverage-path _coverage; \
	else \
	  echo "coverage: bisect_ppx is not installed; skipping (the dune"; \
	  echo "instrumentation stanzas are inert without --instrument-with,"; \
	  echo "so no build configuration changes are needed to enable it"; \
	  echo "later: opam install bisect_ppx, then re-run make coverage)"; \
	fi

bench-smoke: build
	dune exec bench/main.exe -- batch --smoke

bench-parallel-smoke: build
	dune exec bench/main.exe -- parallel --smoke

bench-solver-smoke: build
	dune exec bench/main.exe -- solver --smoke

certify-smoke: build
	dune exec bench/main.exe -- certify --smoke

bench-scale-smoke: build
	dune exec bench/main.exe -- scale --smoke

bench-arena-smoke: build
	dune exec bench/main.exe -- arena --smoke

bench-serve-smoke: build
	dune exec bench/main.exe -- serve --smoke

bench-fault-smoke: build
	dune exec bench/main.exe -- fault --smoke

check: build test lint bench-smoke bench-parallel-smoke bench-solver-smoke certify-smoke bench-scale-smoke bench-arena-smoke bench-serve-smoke bench-fault-smoke

clean:
	dune clean
