# Convenience targets; `make check` is the full local gate: build,
# test suite, a lint pass over every example configuration, the
# batch-verification smoke benchmark (one incremental session must
# beat N fresh solvers with identical verdicts), the parallel
# smoke benchmark (sharded -j2 run must agree with the sequential
# session on every verdict, and beat it by >=1.3x when the machine
# has at least 2 cores), and the solver-ablation smoke benchmark
# (all 2^4-grid corners must give identical verdicts; the all-on
# speedup is additionally gated when the baseline suite is slow
# enough for the ratio to be signal rather than timer noise).

.PHONY: all build test lint bench-smoke bench-parallel-smoke bench-solver-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

lint: build
	@for f in examples/configs/*.cfg; do \
	  echo "lint $$f"; \
	  dune exec bin/minesweeper_cli.exe -- lint $$f || exit 1; \
	done

bench-smoke: build
	dune exec bench/main.exe -- batch --smoke

bench-parallel-smoke: build
	dune exec bench/main.exe -- parallel --smoke

bench-solver-smoke: build
	dune exec bench/main.exe -- solver --smoke

check: build test lint bench-smoke bench-parallel-smoke bench-solver-smoke

clean:
	dune clean
